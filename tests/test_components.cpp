// Tests for the Section 5 building blocks: line algorithm (5.1), merging
// algorithm (5.2), propagation algorithm (5.3), and the region split
// (5.4.1).
#include <gtest/gtest.h>

#include "baselines/checker.hpp"
#include "portals/portal_primitives.hpp"
#include "shapes/generators.hpp"
#include "spf/line_algorithm.hpp"
#include "spf/merging.hpp"
#include "spf/propagation.hpp"
#include "spf/regions.hpp"
#include "spf/spt.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

class ComponentSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComponentSeeds, LineAlgorithmIsExact) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int m = 20 + static_cast<int>(rng.below(60));
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  std::vector<int> chain(m);
  for (int q = 0; q < m; ++q) chain[q] = region.localOf(s.idOf({q, 0}));
  std::vector<char> isSource(m, 0);
  std::vector<int> sources;
  const int k = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < k; ++i) {
    const int pos = static_cast<int>(rng.below(m));
    if (!isSource[pos]) {
      isSource[pos] = 1;
      sources.push_back(chain[pos]);
    }
  }
  const LineSpfResult got = lineSpf(region, chain, isSource);
  std::vector<int> dests(region.size());
  for (int i = 0; i < region.size(); ++i) dests[i] = i;
  const ForestCheck check =
      checkShortestPathForest(region, got.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
  // Lemma 40: O(log n) rounds.
  EXPECT_LE(got.rounds, 2 * bitWidth(static_cast<std::uint64_t>(m)) + 8);
}

TEST_P(ComponentSeeds, MergingTwoForestsIsExact) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(100, seed + 300);
  const Region region = Region::whole(s);
  Rng rng(seed * 3 + 1);
  const int s1 = static_cast<int>(rng.below(region.size()));
  int s2 = static_cast<int>(rng.below(region.size()));
  if (s2 == s1) s2 = (s2 + 1) % region.size();
  const std::vector<char> all(region.size(), 1);
  const SptResult t1 = shortestPathTree(region, s1, all);
  const SptResult t2 = shortestPathTree(region, s2, all);
  const MergeResult merged = mergeForests(region, t1.parent, t2.parent);
  std::vector<int> sources{s1, s2};
  std::vector<int> dests(region.size());
  for (int i = 0; i < region.size(); ++i) dests[i] = i;
  const ForestCheck check =
      checkShortestPathForest(region, merged.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(ComponentSeeds, PropagationFillsTheOtherSide) {
  // Build a shape, pick an x-portal, compute an SSSP forest restricted to
  // one side + portal via a sub-SPT, then propagate and verify the full
  // forest against BFS from the sources.
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(120, seed + 500);
  const Region region = Region::whole(s);
  const PortalDecomposition decomp = computePortals(region, Axis::X);

  // Pick the portal with the most members for a meaningful split.
  int portal = 0;
  for (int p = 0; p < decomp.portalCount(); ++p) {
    if (decomp.members[p].size() > decomp.members[portal].size()) portal = p;
  }
  const std::int32_t row =
      region.coordOf(decomp.members[portal].front()).r;

  // A u P: the portal plus everything reachable without entering the
  // *south* side (components of X \ P attaching from the north).
  std::vector<char> inAP(region.size(), 0);
  for (const int u : decomp.members[portal]) inAP[u] = 1;
  std::vector<int> stack;
  for (const int u : decomp.members[portal]) stack.push_back(u);
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v < 0 || inAP[v]) continue;
      const bool fromPortal = decomp.portalOf[u] == portal;
      if (fromPortal) {
        // Only step north off the portal.
        if (region.coordOf(v).r <= row) continue;
      }
      if (decomp.portalOf[v] == portal) continue;
      inAP[v] = 1;
      stack.push_back(v);
    }
  }

  // Sources: a couple of amoebots on the portal.
  Rng rng(seed);
  std::vector<int> sources;
  const auto& pm = decomp.members[portal];
  sources.push_back(pm[rng.below(pm.size())]);
  sources.push_back(pm[rng.below(pm.size())]);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  // Forest on A u P via reference BFS restricted to A u P (the input to
  // propagation is assumed correct).
  std::vector<int> apGlobals;
  for (int u = 0; u < region.size(); ++u)
    if (inAP[u]) apGlobals.push_back(region.globalId(u));
  const Region apRegion = Region::of(region.structure(), apGlobals);
  std::vector<int> apSources;
  for (const int u : sources)
    apSources.push_back(apRegion.localOf(region.globalId(u)));
  // BFS forest inside A u P.
  const auto apDist = apRegion.bfsDistancesLocal(apSources);
  std::vector<int> parentAP(region.size(), -2);
  for (const int u : sources) parentAP[u] = -1;
  for (int zu = 0; zu < apRegion.size(); ++zu) {
    const int u = region.localOf(apRegion.globalId(zu));
    if (parentAP[u] == -1) continue;
    for (Dir d : kAllDirs) {
      const int zv = apRegion.neighbor(zu, d);
      if (zv >= 0 && apDist[zv] == apDist[zu] - 1) {
        parentAP[u] = region.localOf(apRegion.globalId(zv));
        break;
      }
    }
  }

  // Are distances inside A u P already the true structure distances? For
  // sources on the portal they are: every path from P into the north side
  // stays on that side (Lemma 13).
  const PropagationResult prop =
      propagateForest(region, decomp, portal, parentAP);
  std::vector<int> dests(region.size());
  for (int i = 0; i < region.size(); ++i) dests[i] = i;
  const ForestCheck check =
      checkShortestPathForest(region, prop.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error << " seed=" << seed;
}

TEST_P(ComponentSeeds, RegionSplitCoversStructure) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(110, seed + 700);
  const Region region = Region::whole(s);
  const PortalDecomposition decomp = computePortals(region, Axis::X);
  Rng rng(seed);
  std::vector<char> portalInQ(decomp.portalCount(), 0);
  for (int i = 0; i < 4; ++i)
    portalInQ[rng.below(decomp.portalCount())] = 1;
  int root = 0;
  while (!portalInQ[root]) ++root;

  Comm comm(region, 4);
  const PortalRootPruneResult rooted =
      portalRootAndPrune(comm, decomp, {}, root, portalInQ, true);
  std::vector<char> qPrime(decomp.portalCount(), 0);
  for (int p = 0; p < decomp.portalCount(); ++p)
    qPrime[p] = (portalInQ[p] || rooted.inAug[p]) ? 1 : 0;

  const RegionSplit split = splitAtPortals(region, decomp, rooted, qPrime);

  // Coverage: every amoebot is in at least one region; every region has
  // 1 or 2 segments; region members are connected.
  std::vector<int> cover(region.size(), 0);
  for (const auto& reg : split.regions) {
    EXPECT_GE(reg.segments.size(), 1u);
    EXPECT_LE(reg.segments.size(), 2u);
    for (const int u : reg.members) ++cover[u];
    std::vector<int> globals;
    for (const int u : reg.members) globals.push_back(region.globalId(u));
    const Region sub = Region::of(region.structure(), globals);
    EXPECT_TRUE(sub.isConnectedInduced());
  }
  for (int u = 0; u < region.size(); ++u)
    EXPECT_GE(cover[u], 1) << "uncovered amoebot " << u;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace aspf

// Query-serving tier: one persistent structure, many SPF queries.
//   - QuerySession: seeded replay determinism of the query stream, and the
//     core differential property -- every warm query solve is
//     field-identical (forest, rounds, delivers, beeps) to a cold
//     from-scratch solve -- for all three algorithms, both circuit
//     engines, sim-threads 1 vs 4, and across batch --threads.
//   - Mutating sessions: structure mutations between query groups keep the
//     warm substrate correct through Comm::rebind.
//   - The warm-serving payoff: the wave substrate's union count collapses
//     versus the cold oracle once the circuits are established.
//   - Fault injection (ServeSpec::faultQuery) trips the oracle -- the CI
//     exit-2 self-test path.
//   - Comm::clearPending: the query-boundary reset drops undelivered beeps
//     and invalidates received() state without touching the union-find.
//   - Report: the `serving` section round-trips, validates, is omitted
//     when empty, and is covered by equalDeterministic.
#include <gtest/gtest.h>

#include <numeric>
#include <type_traits>

#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/serve.hpp"
#include "shapes/generators.hpp"
#include "sim/comm.hpp"
#include "spf/solve_cache.hpp"

namespace aspf::scenario {
namespace {

/// Hexagon radius 6 (n = 127): big enough for nontrivial portals, small
/// enough that {3 algos} x {warm + cold} x {engine, sim-thread} sweeps
/// stay in test budget.
Scenario smallScenario() { return make(Shape::Hexagon, 6, 0, 4, 8, 1); }

RunOptions baseOptions() {
  RunOptions o;
  o.threads = 1;
  o.timing = false;
  return o;
}

ServeSpec baseSpec(int queries) {
  ServeSpec spec;
  spec.queries = queries;
  spec.seed = 3;
  return spec;
}

/// Runs one session through the batch runner (whose workers install the
/// engine / sim-thread thread_locals the cold solves' internal Comms read).
ServingReport serveOne(const Scenario& scenario, const ServeSpec& spec,
                       const RunOptions& options) {
  const BenchReport report =
      runServeBatch("test", {scenario}, spec, options);
  EXPECT_EQ(report.serving.size(), 1u);
  return report.serving[0];
}

void expectAllQueriesOk(const ServingReport& sv) {
  for (const ServeRun& run : sv.runs) {
    EXPECT_TRUE(run.error.empty()) << run.algo << ": " << run.error;
    EXPECT_TRUE(run.checkerOk) << run.algo;
    EXPECT_TRUE(run.warmMatchesCold) << run.algo;
    EXPECT_EQ(run.queriesOk, sv.queries) << run.algo;
  }
}

TEST(QueryKind, TagsRoundTrip) {
  for (const QueryKind k : kAllQueryKinds) {
    QueryKind back;
    ASSERT_TRUE(queryKindFromString(toString(k), &back));
    EXPECT_EQ(back, k);
  }
  QueryKind out;
  EXPECT_FALSE(queryKindFromString("teleport", &out));
  EXPECT_FALSE(queryKindFromString("", &out));
}

TEST(QuerySession, ReplaysIdentically) {
  // The stream is a pure function of (scenario, spec): with timing off,
  // the whole record -- forests solved, counters, verdicts -- must be
  // value-identical across runs.
  const ServingReport a =
      serveOne(smallScenario(), baseSpec(10), baseOptions());
  const ServingReport b =
      serveOne(smallScenario(), baseSpec(10), baseOptions());
  EXPECT_EQ(a, b);
  expectAllQueriesOk(a);
  EXPECT_EQ(a.n, 127);
  EXPECT_EQ(a.finalN, 127);  // no structure mutation requested
  EXPECT_EQ(a.runs.size(), 3u);
}

TEST(QuerySession, WarmMatchesColdForEveryEngineAndSimThreadCount) {
  for (const CircuitEngine engine :
       {CircuitEngine::Incremental, CircuitEngine::Rebuild}) {
    ServingReport at1;
    for (const int simThreads : {1, 4}) {
      RunOptions options = baseOptions();
      options.engine = engine;
      options.simThreads = simThreads;
      const ServingReport sv =
          serveOne(smallScenario(), baseSpec(12), options);
      expectAllQueriesOk(sv);
      if (simThreads == 1) {
        at1 = sv;
      } else {
        // The sharded substrate must be bit-identical to the serial one.
        EXPECT_EQ(sv, at1) << "engine " << static_cast<int>(engine);
      }
    }
  }
}

TEST(QuerySession, EnginesAgreeOnModelFields) {
  RunOptions incremental = baseOptions();
  RunOptions rebuild = baseOptions();
  rebuild.engine = CircuitEngine::Rebuild;
  const ServingReport a = serveOne(smallScenario(), baseSpec(8), incremental);
  const ServingReport b = serveOne(smallScenario(), baseSpec(8), rebuild);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.sdApplied, b.sdApplied);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].rounds, b.runs[i].rounds) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].delivers, b.runs[i].delivers) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].beeps, b.runs[i].beeps) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].queriesOk, b.runs[i].queriesOk) << a.runs[i].algo;
  }
}

TEST(QuerySession, MutatingSessionsStayCorrect) {
  ServeSpec spec = baseSpec(15);
  spec.mutateEvery = 3;
  spec.mutateCells = 5;
  const ServingReport sv = serveOne(smallScenario(), spec, baseOptions());
  expectAllQueriesOk(sv);
  EXPECT_EQ(sv.structureMutations, 4);  // queries 3, 6, 9, 12
  EXPECT_GT(sv.attached + sv.detached, 0);
  EXPECT_EQ(sv.finalN, sv.n + sv.attached - sv.detached);
  // The mutating path must replay exactly, too.
  EXPECT_EQ(sv, serveOne(smallScenario(), spec, baseOptions()));
}

TEST(QuerySession, WaveWarmSubstrateCollapsesUnions) {
  // The payoff the serving split exists for: wave pins are singleton-only,
  // so the warm substrate's circuits survive S/D changes unchanged while
  // every cold solve re-merges ~n pin sets per query.
  RunOptions options = baseOptions();
  options.algos = {Algo::Wave};
  const ServingReport sv = serveOne(smallScenario(), baseSpec(30), options);
  expectAllQueriesOk(sv);
  ASSERT_EQ(sv.runs.size(), 1u);
  EXPECT_GT(sv.runs[0].coldUnions, 0);
  EXPECT_LT(sv.runs[0].warmUnions * 5, sv.runs[0].coldUnions);
}

TEST(QuerySession, FaultInjectionTripsTheOracle) {
  ServeSpec spec = baseSpec(6);
  spec.faultQuery = 2;
  RunOptions options = baseOptions();
  options.algos = {Algo::Wave};
  options.check = false;  // isolate the oracle from the checker
  const ServingReport sv = serveOne(smallScenario(), spec, options);
  ASSERT_EQ(sv.runs.size(), 1u);
  EXPECT_FALSE(sv.runs[0].warmMatchesCold);
  EXPECT_EQ(sv.runs[0].queriesOk, 5);  // every query but the corrupted one
}

TEST(QuerySession, SolveCacheKeepsEveryDeterministicFieldIdentical) {
  // The tentpole determinism contract: --serve-cache on/off may differ
  // only in substrate-effort counters (warm unions / engine-round split)
  // and the cache_* stats. Every deterministic field -- forests, rounds,
  // delivers, beeps, verdicts -- must be bit-identical, on MUTATING
  // sessions (every rebind must invalidate), for both engines and
  // sim-thread counts.
  ServeSpec spec = baseSpec(12);
  spec.mutateEvery = 3;
  spec.mutateCells = 5;
  for (const CircuitEngine engine :
       {CircuitEngine::Incremental, CircuitEngine::Rebuild}) {
    for (const int simThreads : {1, 4}) {
      RunOptions on = baseOptions();
      on.algos = {Algo::Polylog, Algo::Wave};  // wave = uncached control
      on.engine = engine;
      on.simThreads = simThreads;
      RunOptions off = on;
      off.serveCache = false;
      const ServingReport a = serveOne(smallScenario(), spec, on);
      const ServingReport b = serveOne(smallScenario(), spec, off);
      expectAllQueriesOk(a);
      expectAllQueriesOk(b);
      EXPECT_EQ(a.sdApplied, b.sdApplied);
      EXPECT_EQ(a.finalN, b.finalN);
      ASSERT_EQ(a.runs.size(), b.runs.size());
      for (std::size_t i = 0; i < a.runs.size(); ++i) {
        const ServeRun& ra = a.runs[i];
        const ServeRun& rb = b.runs[i];
        EXPECT_EQ(ra.rounds, rb.rounds) << ra.algo;
        EXPECT_EQ(ra.delivers, rb.delivers) << ra.algo;
        EXPECT_EQ(ra.beeps, rb.beeps) << ra.algo;
        EXPECT_EQ(ra.queriesOk, rb.queriesOk) << ra.algo;
        EXPECT_EQ(ra.warmMatchesCold, rb.warmMatchesCold) << ra.algo;
        // Cold solves never see the cache.
        EXPECT_EQ(ra.coldUnions, rb.coldUnions) << ra.algo;
        if (ra.algo == "polylog") {
          EXPECT_TRUE(ra.cacheEnabled);
          EXPECT_FALSE(rb.cacheEnabled);
          EXPECT_GT(ra.cacheHits, 0);
          // Every structure mutation invalidates the whole epoch.
          EXPECT_GT(ra.cacheInvalidations, 0);
          EXPECT_GT(ra.cacheSavedUnions, 0);
        } else {
          // The cache is polylog-only: other warm paths are untouched.
          EXPECT_EQ(ra.warmUnions, rb.warmUnions) << ra.algo;
          EXPECT_FALSE(ra.cacheEnabled);
        }
      }
    }
  }
}

TEST(QuerySession, PlantedStaleCacheEntryTripsTheOracle) {
  // Fault-injection self-test of the exit-2 path: corrupt the cache
  // before query 3; the dest-add-only mix keeps the source set fixed, so
  // query 3 (and every later query) must HIT the stale entry and diverge
  // from the cold oracle.
  ServeSpec spec = baseSpec(6);
  spec.mix = {QueryKind::DestAdd};
  spec.cacheFaultQuery = 3;
  RunOptions options = baseOptions();
  options.algos = {Algo::Polylog};
  options.check = false;  // isolate the oracle from the checker
  const ServingReport sv = serveOne(smallScenario(), spec, options);
  ASSERT_EQ(sv.runs.size(), 1u);
  EXPECT_FALSE(sv.runs[0].warmMatchesCold);
  EXPECT_EQ(sv.runs[0].queriesOk, 3);  // only the pre-plant queries pass
  EXPECT_GT(sv.runs[0].cacheHits, 0);

  // The identical plant is inert with the cache off: the corruption can
  // only reach the oracle through a cache hit.
  RunOptions off = options;
  off.serveCache = false;
  const ServingReport clean = serveOne(smallScenario(), spec, off);
  ASSERT_EQ(clean.runs.size(), 1u);
  EXPECT_TRUE(clean.runs[0].warmMatchesCold);
  EXPECT_EQ(clean.runs[0].queriesOk, 6);
}

TEST(QuerySession, FailedQueriesAreExcludedFromLatencyAndThroughput) {
  // Serving-latency semantics: failed / diverged queries contribute no
  // latency sample and never inflate queries_per_sec -- percentiles and
  // throughput describe successful queries only; wall_ms keeps the whole
  // stream.
  RunOptions options = baseOptions();
  options.algos = {Algo::Wave};
  options.check = false;
  options.timing = true;

  ServeSpec allFail = baseSpec(1);
  allFail.faultQuery = 0;  // the only query diverges
  const ServingReport a = serveOne(smallScenario(), allFail, options);
  ASSERT_EQ(a.runs.size(), 1u);
  EXPECT_EQ(a.runs[0].queriesOk, 0);
  EXPECT_EQ(a.runs[0].queriesPerSec, 0.0);
  EXPECT_EQ(a.runs[0].latencyMsP50, 0.0);
  EXPECT_EQ(a.runs[0].latencyMsP90, 0.0);
  EXPECT_EQ(a.runs[0].latencyMsP99, 0.0);
  EXPECT_GT(a.runs[0].wallMs, 0.0);  // the stream itself still ran

  ServeSpec oneFails = baseSpec(2);
  oneFails.faultQuery = 0;
  const ServingReport b = serveOne(smallScenario(), oneFails, options);
  ASSERT_EQ(b.runs.size(), 1u);
  EXPECT_EQ(b.runs[0].queriesOk, 1);
  EXPECT_GT(b.runs[0].queriesPerSec, 0.0)
      << "successful queries must still produce a throughput";
}

TEST(StructureEpoch, RebindBumpsTheSixtyFourBitCounter) {
  // Satellite regression: the epoch the solve cache keys on must be
  // 64-bit -- a narrower counter wraps in a long-lived serving session
  // and aliases stale entries as fresh (see the SolveCache wrap test).
  static_assert(
      std::is_same_v<decltype(std::declval<const Comm&>().structureEpoch()),
                     std::uint64_t>,
      "structure epoch must be 64-bit");
  const BuiltScenario built(smallScenario());
  Comm comm(built.region(), 1);
  EXPECT_EQ(comm.structureEpoch(), 0u);
  std::vector<int> identity(static_cast<std::size_t>(built.n()));
  std::iota(identity.begin(), identity.end(), 0);
  comm.rebind(built.region(), identity);
  EXPECT_EQ(comm.structureEpoch(), 1u);
  comm.rebind(built.region(), identity);
  EXPECT_EQ(comm.structureEpoch(), 2u);
}

TEST(SolveCache, EpochsDoNotAliasAcrossThirtyTwoBitWrap) {
  // The wraparound regression the 64-bit epoch exists to prevent: under a
  // 32-bit key, epoch E and E + 2^32 truncate to the same value and a
  // stale entry would be served as fresh. Force exactly that distance and
  // demand a miss + invalidation.
  SolveCache cache;
  SolveCache::ForestEntry entry;
  entry.lanes = 4;
  entry.axis = Axis::X;
  entry.sources = {1, 2};
  entry.parent = {3, -1, -2};
  const std::vector<int> sources{1, 2};
  cache.storeForest(5, entry);
  EXPECT_NE(cache.findForest(5, 4, Axis::X, sources), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);

  const std::uint64_t wrapped = 5 + (std::uint64_t{1} << 32);
  EXPECT_EQ(cache.findForest(wrapped, 4, Axis::X, sources), nullptr)
      << "stale entry aliased as fresh across a 32-bit epoch wrap";
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.epoch(), wrapped);
  // The epoch change evicted the stale entry for good: going back to the
  // old epoch invalidates again instead of resurrecting it.
  EXPECT_EQ(cache.findForest(5, 4, Axis::X, sources), nullptr);
}

TEST(ServeBatch, DeterministicAcrossWorkerThreads) {
  const Suite* smoke = findSuite("smoke");
  ASSERT_NE(smoke, nullptr);
  ASSERT_GE(smoke->scenarios.size(), 3u);
  const std::vector<Scenario> scenarios(smoke->scenarios.begin(),
                                        smoke->scenarios.begin() + 3);
  RunOptions at1 = baseOptions();
  RunOptions at4 = baseOptions();
  at4.threads = 4;
  const BenchReport a = runServeBatch("smoke", scenarios, baseSpec(6), at1);
  const BenchReport b = runServeBatch("smoke", scenarios, baseSpec(6), at4);
  EXPECT_EQ(a.serving, b.serving);  // sessions land in input order
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;
  for (const ServingReport& sv : a.serving) expectAllQueriesOk(sv);
}

TEST(ClearPending, DropsUndeliveredBeepsAndReceivedState) {
  const BuiltScenario built(smallScenario());
  Comm comm(built.region(), 1);
  comm.beep(0, 0);
  comm.deliver();
  EXPECT_TRUE(comm.received(0, 0));
  const long rounds = comm.rounds();

  comm.beep(1, 0);      // undelivered
  comm.clearPending();  // the query boundary
  EXPECT_FALSE(comm.received(0, 0)) << "stale received() survived";
  EXPECT_EQ(comm.rounds(), rounds) << "clearPending must not cost rounds";
  comm.deliver();
  EXPECT_FALSE(comm.received(0, 0)) << "dropped beep was delivered";
  EXPECT_FALSE(comm.received(1, 0)) << "dropped beep was delivered";
}

// --- Report: the `serving` section ----------------------------------------

BenchReport sampleServingReport() {
  BenchReport report;
  report.suite = "serve";
  report.algos = {"wave"};
  report.threads = 1;
  ServingReport sv;
  sv.scenario = make(Shape::Hexagon, 6, 0, 4, 8, 1);
  sv.n = 127;
  sv.finalN = 131;
  sv.queries = 50;
  sv.seed = 3;
  sv.mutateEvery = 10;
  sv.mix = {"dest-swap", "toggle-source"};
  sv.sdApplied = 48;
  sv.structureMutations = 4;
  sv.attached = 9;
  sv.detached = 5;
  ServeRun run;
  run.algo = "wave";
  run.rounds = 900;
  run.wallMs = 1.5;
  run.checkerOk = true;
  run.delivers = 900;
  run.beeps = 17100;
  run.warmUnions = 160;
  run.coldUnions = 6350;
  run.warmIncrRounds = 900;
  run.coldIncrRounds = 880;
  run.coldRebuildRounds = 20;
  run.queriesOk = 50;
  run.warmMatchesCold = true;
  run.queriesPerSec = 33333.3;
  run.latencyMsP50 = 0.02;
  run.latencyMsP90 = 0.03;
  run.latencyMsP99 = 0.05;
  // A second run carrying the optional cache_* stats group.
  ServeRun cached = run;
  cached.algo = "polylog";
  cached.cacheEnabled = true;
  cached.cacheHits = 30;
  cached.cacheMisses = 21;
  cached.cacheInvalidations = 4;
  cached.cacheSavedUnions = 123456;
  sv.runs = {run, cached};
  report.serving = {sv};
  report.algos = {"wave", "polylog"};
  return report;
}

TEST(Report, ServingSectionRoundTrips) {
  const BenchReport report = sampleServingReport();
  const Json doc = toJson(report);
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  const BenchReport back = reportFromJson(Json::parse(doc.dump(2)));
  EXPECT_EQ(back, report);
  EXPECT_EQ(back.serving, report.serving);
}

TEST(Report, ServingSectionIsOmittedWhenEmpty) {
  // Pre-serving reports must stay byte-identical: no `serving` key.
  BenchReport report = sampleServingReport();
  report.serving.clear();
  const Json doc = toJson(report);
  EXPECT_EQ(doc.find("serving"), nullptr);
  std::string error;
  EXPECT_TRUE(validateReport(doc, &error)) << error;
}

TEST(Report, ServingValidationCatchesBadDocuments) {
  std::string error;
  BenchReport badMix = sampleServingReport();
  badMix.serving[0].mix = {"teleport"};
  EXPECT_FALSE(validateReport(toJson(badMix), &error));
  EXPECT_NE(error.find("query kind"), std::string::npos) << error;

  BenchReport badQueries = sampleServingReport();
  badQueries.serving[0].queries = 0;
  EXPECT_FALSE(validateReport(toJson(badQueries), &error));
  EXPECT_NE(error.find("queries"), std::string::npos) << error;

  // Drop a required counter from the serialized text: the serving section
  // is new with this tier and has no legacy documents to accommodate.
  std::string text = toJson(sampleServingReport()).dump();
  const std::string needle = "\"queries_ok\":50,";
  for (std::size_t pos; (pos = text.find(needle)) != std::string::npos;)
    text.erase(pos, needle.size());
  const Json missingCounter = Json::parse(text);
  EXPECT_FALSE(validateReport(missingCounter, &error));
  EXPECT_NE(error.find("queries_ok"), std::string::npos) << error;

  // The cache_* stats group is optional but all-or-nothing: a document
  // with cache_hits and no cache_misses is malformed, not "partly cached".
  std::string cacheText = toJson(sampleServingReport()).dump();
  const std::string cacheNeedle = "\"cache_misses\":21,";
  const std::size_t cachePos = cacheText.find(cacheNeedle);
  ASSERT_NE(cachePos, std::string::npos);
  cacheText.erase(cachePos, cacheNeedle.size());
  EXPECT_FALSE(validateReport(Json::parse(cacheText), &error));
  EXPECT_NE(error.find("cache_misses"), std::string::npos) << error;
}

TEST(Report, EqualDeterministicCoversServingFields) {
  const BenchReport a = sampleServingReport();
  BenchReport b = a;
  for (ServingReport& sv : b.serving) {
    for (ServeRun& run : sv.runs) {
      run.wallMs = 99.0;  // timing-derived: all ignored
      run.queriesPerSec = 1.0;
      run.latencyMsP50 = 9.0;
      run.latencyMsP90 = 9.0;
      run.latencyMsP99 = 9.0;
      // Cache stats describe which work was SKIPPED, not what was
      // computed: cached and uncached runs must compare equal.
      run.cacheEnabled = !run.cacheEnabled;
      run.cacheHits += 100;
      run.cacheMisses += 100;
      run.cacheInvalidations += 100;
      run.cacheSavedUnions += 100;
    }
  }
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;

  b.serving[0].runs[0].rounds += 1;
  EXPECT_FALSE(equalDeterministic(a, b, &why));
  EXPECT_NE(why.find("rounds"), std::string::npos) << why;

  BenchReport c = a;
  c.serving[0].runs[0].queriesOk -= 1;
  EXPECT_FALSE(equalDeterministic(a, c, &why));
  EXPECT_NE(why.find("queries_ok"), std::string::npos) << why;

  BenchReport d = a;
  d.serving[0].runs[0].warmUnions += 7;
  EXPECT_FALSE(equalDeterministic(a, d, &why));
  EXPECT_NE(why.find("warm_unions"), std::string::npos) << why;
  // ... but warm/cold substrate counters are engine-specific: model-only
  // comparisons ignore them (the CI engine-equivalence step relies on it).
  EXPECT_TRUE(equalDeterministic(a, d, &why, /*modelOnly=*/true)) << why;

  BenchReport e = a;
  e.serving[0].runs[0].warmMatchesCold = false;
  EXPECT_FALSE(equalDeterministic(a, e, &why, /*modelOnly=*/true));
  EXPECT_NE(why.find("warm_matches_cold"), std::string::npos) << why;

  BenchReport f = a;
  f.serving[0].sdApplied += 1;
  EXPECT_FALSE(equalDeterministic(a, f, &why));
  EXPECT_NE(why.find("sd_applied"), std::string::npos) << why;
}

}  // namespace
}  // namespace aspf::scenario

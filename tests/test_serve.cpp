// Query-serving tier: one persistent structure, many SPF queries.
//   - QuerySession: seeded replay determinism of the query stream, and the
//     core differential property -- every warm query solve is
//     field-identical (forest, rounds, delivers, beeps) to a cold
//     from-scratch solve -- for all three algorithms, both circuit
//     engines, sim-threads 1 vs 4, and across batch --threads.
//   - Mutating sessions: structure mutations between query groups keep the
//     warm substrate correct through Comm::rebind.
//   - The warm-serving payoff: the wave substrate's union count collapses
//     versus the cold oracle once the circuits are established.
//   - Fault injection (ServeSpec::faultQuery) trips the oracle -- the CI
//     exit-2 self-test path.
//   - Comm::clearPending: the query-boundary reset drops undelivered beeps
//     and invalidates received() state without touching the union-find.
//   - Report: the `serving` section round-trips, validates, is omitted
//     when empty, and is covered by equalDeterministic.
#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/serve.hpp"
#include "shapes/generators.hpp"
#include "sim/comm.hpp"

namespace aspf::scenario {
namespace {

/// Hexagon radius 6 (n = 127): big enough for nontrivial portals, small
/// enough that {3 algos} x {warm + cold} x {engine, sim-thread} sweeps
/// stay in test budget.
Scenario smallScenario() { return make(Shape::Hexagon, 6, 0, 4, 8, 1); }

RunOptions baseOptions() {
  RunOptions o;
  o.threads = 1;
  o.timing = false;
  return o;
}

ServeSpec baseSpec(int queries) {
  ServeSpec spec;
  spec.queries = queries;
  spec.seed = 3;
  return spec;
}

/// Runs one session through the batch runner (whose workers install the
/// engine / sim-thread thread_locals the cold solves' internal Comms read).
ServingReport serveOne(const Scenario& scenario, const ServeSpec& spec,
                       const RunOptions& options) {
  const BenchReport report =
      runServeBatch("test", {scenario}, spec, options);
  EXPECT_EQ(report.serving.size(), 1u);
  return report.serving[0];
}

void expectAllQueriesOk(const ServingReport& sv) {
  for (const ServeRun& run : sv.runs) {
    EXPECT_TRUE(run.error.empty()) << run.algo << ": " << run.error;
    EXPECT_TRUE(run.checkerOk) << run.algo;
    EXPECT_TRUE(run.warmMatchesCold) << run.algo;
    EXPECT_EQ(run.queriesOk, sv.queries) << run.algo;
  }
}

TEST(QueryKind, TagsRoundTrip) {
  for (const QueryKind k : kAllQueryKinds) {
    QueryKind back;
    ASSERT_TRUE(queryKindFromString(toString(k), &back));
    EXPECT_EQ(back, k);
  }
  QueryKind out;
  EXPECT_FALSE(queryKindFromString("teleport", &out));
  EXPECT_FALSE(queryKindFromString("", &out));
}

TEST(QuerySession, ReplaysIdentically) {
  // The stream is a pure function of (scenario, spec): with timing off,
  // the whole record -- forests solved, counters, verdicts -- must be
  // value-identical across runs.
  const ServingReport a =
      serveOne(smallScenario(), baseSpec(10), baseOptions());
  const ServingReport b =
      serveOne(smallScenario(), baseSpec(10), baseOptions());
  EXPECT_EQ(a, b);
  expectAllQueriesOk(a);
  EXPECT_EQ(a.n, 127);
  EXPECT_EQ(a.finalN, 127);  // no structure mutation requested
  EXPECT_EQ(a.runs.size(), 3u);
}

TEST(QuerySession, WarmMatchesColdForEveryEngineAndSimThreadCount) {
  for (const CircuitEngine engine :
       {CircuitEngine::Incremental, CircuitEngine::Rebuild}) {
    ServingReport at1;
    for (const int simThreads : {1, 4}) {
      RunOptions options = baseOptions();
      options.engine = engine;
      options.simThreads = simThreads;
      const ServingReport sv =
          serveOne(smallScenario(), baseSpec(12), options);
      expectAllQueriesOk(sv);
      if (simThreads == 1) {
        at1 = sv;
      } else {
        // The sharded substrate must be bit-identical to the serial one.
        EXPECT_EQ(sv, at1) << "engine " << static_cast<int>(engine);
      }
    }
  }
}

TEST(QuerySession, EnginesAgreeOnModelFields) {
  RunOptions incremental = baseOptions();
  RunOptions rebuild = baseOptions();
  rebuild.engine = CircuitEngine::Rebuild;
  const ServingReport a = serveOne(smallScenario(), baseSpec(8), incremental);
  const ServingReport b = serveOne(smallScenario(), baseSpec(8), rebuild);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  EXPECT_EQ(a.sdApplied, b.sdApplied);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].rounds, b.runs[i].rounds) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].delivers, b.runs[i].delivers) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].beeps, b.runs[i].beeps) << a.runs[i].algo;
    EXPECT_EQ(a.runs[i].queriesOk, b.runs[i].queriesOk) << a.runs[i].algo;
  }
}

TEST(QuerySession, MutatingSessionsStayCorrect) {
  ServeSpec spec = baseSpec(15);
  spec.mutateEvery = 3;
  spec.mutateCells = 5;
  const ServingReport sv = serveOne(smallScenario(), spec, baseOptions());
  expectAllQueriesOk(sv);
  EXPECT_EQ(sv.structureMutations, 4);  // queries 3, 6, 9, 12
  EXPECT_GT(sv.attached + sv.detached, 0);
  EXPECT_EQ(sv.finalN, sv.n + sv.attached - sv.detached);
  // The mutating path must replay exactly, too.
  EXPECT_EQ(sv, serveOne(smallScenario(), spec, baseOptions()));
}

TEST(QuerySession, WaveWarmSubstrateCollapsesUnions) {
  // The payoff the serving split exists for: wave pins are singleton-only,
  // so the warm substrate's circuits survive S/D changes unchanged while
  // every cold solve re-merges ~n pin sets per query.
  RunOptions options = baseOptions();
  options.algos = {Algo::Wave};
  const ServingReport sv = serveOne(smallScenario(), baseSpec(30), options);
  expectAllQueriesOk(sv);
  ASSERT_EQ(sv.runs.size(), 1u);
  EXPECT_GT(sv.runs[0].coldUnions, 0);
  EXPECT_LT(sv.runs[0].warmUnions * 5, sv.runs[0].coldUnions);
}

TEST(QuerySession, FaultInjectionTripsTheOracle) {
  ServeSpec spec = baseSpec(6);
  spec.faultQuery = 2;
  RunOptions options = baseOptions();
  options.algos = {Algo::Wave};
  options.check = false;  // isolate the oracle from the checker
  const ServingReport sv = serveOne(smallScenario(), spec, options);
  ASSERT_EQ(sv.runs.size(), 1u);
  EXPECT_FALSE(sv.runs[0].warmMatchesCold);
  EXPECT_EQ(sv.runs[0].queriesOk, 5);  // every query but the corrupted one
}

TEST(ServeBatch, DeterministicAcrossWorkerThreads) {
  const Suite* smoke = findSuite("smoke");
  ASSERT_NE(smoke, nullptr);
  ASSERT_GE(smoke->scenarios.size(), 3u);
  const std::vector<Scenario> scenarios(smoke->scenarios.begin(),
                                        smoke->scenarios.begin() + 3);
  RunOptions at1 = baseOptions();
  RunOptions at4 = baseOptions();
  at4.threads = 4;
  const BenchReport a = runServeBatch("smoke", scenarios, baseSpec(6), at1);
  const BenchReport b = runServeBatch("smoke", scenarios, baseSpec(6), at4);
  EXPECT_EQ(a.serving, b.serving);  // sessions land in input order
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;
  for (const ServingReport& sv : a.serving) expectAllQueriesOk(sv);
}

TEST(ClearPending, DropsUndeliveredBeepsAndReceivedState) {
  const BuiltScenario built(smallScenario());
  Comm comm(built.region(), 1);
  comm.beep(0, 0);
  comm.deliver();
  EXPECT_TRUE(comm.received(0, 0));
  const long rounds = comm.rounds();

  comm.beep(1, 0);      // undelivered
  comm.clearPending();  // the query boundary
  EXPECT_FALSE(comm.received(0, 0)) << "stale received() survived";
  EXPECT_EQ(comm.rounds(), rounds) << "clearPending must not cost rounds";
  comm.deliver();
  EXPECT_FALSE(comm.received(0, 0)) << "dropped beep was delivered";
  EXPECT_FALSE(comm.received(1, 0)) << "dropped beep was delivered";
}

// --- Report: the `serving` section ----------------------------------------

BenchReport sampleServingReport() {
  BenchReport report;
  report.suite = "serve";
  report.algos = {"wave"};
  report.threads = 1;
  ServingReport sv;
  sv.scenario = make(Shape::Hexagon, 6, 0, 4, 8, 1);
  sv.n = 127;
  sv.finalN = 131;
  sv.queries = 50;
  sv.seed = 3;
  sv.mutateEvery = 10;
  sv.mix = {"dest-swap", "toggle-source"};
  sv.sdApplied = 48;
  sv.structureMutations = 4;
  sv.attached = 9;
  sv.detached = 5;
  ServeRun run;
  run.algo = "wave";
  run.rounds = 900;
  run.wallMs = 1.5;
  run.checkerOk = true;
  run.delivers = 900;
  run.beeps = 17100;
  run.warmUnions = 160;
  run.coldUnions = 6350;
  run.warmIncrRounds = 900;
  run.coldIncrRounds = 880;
  run.coldRebuildRounds = 20;
  run.queriesOk = 50;
  run.warmMatchesCold = true;
  run.queriesPerSec = 33333.3;
  run.latencyMsP50 = 0.02;
  run.latencyMsP90 = 0.03;
  run.latencyMsP99 = 0.05;
  sv.runs = {run};
  report.serving = {sv};
  return report;
}

TEST(Report, ServingSectionRoundTrips) {
  const BenchReport report = sampleServingReport();
  const Json doc = toJson(report);
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  const BenchReport back = reportFromJson(Json::parse(doc.dump(2)));
  EXPECT_EQ(back, report);
  EXPECT_EQ(back.serving, report.serving);
}

TEST(Report, ServingSectionIsOmittedWhenEmpty) {
  // Pre-serving reports must stay byte-identical: no `serving` key.
  BenchReport report = sampleServingReport();
  report.serving.clear();
  const Json doc = toJson(report);
  EXPECT_EQ(doc.find("serving"), nullptr);
  std::string error;
  EXPECT_TRUE(validateReport(doc, &error)) << error;
}

TEST(Report, ServingValidationCatchesBadDocuments) {
  std::string error;
  BenchReport badMix = sampleServingReport();
  badMix.serving[0].mix = {"teleport"};
  EXPECT_FALSE(validateReport(toJson(badMix), &error));
  EXPECT_NE(error.find("query kind"), std::string::npos) << error;

  BenchReport badQueries = sampleServingReport();
  badQueries.serving[0].queries = 0;
  EXPECT_FALSE(validateReport(toJson(badQueries), &error));
  EXPECT_NE(error.find("queries"), std::string::npos) << error;

  // Drop a required counter from the serialized text: the serving section
  // is new with this tier and has no legacy documents to accommodate.
  std::string text = toJson(sampleServingReport()).dump();
  const std::string needle = "\"queries_ok\":50,";
  for (std::size_t pos; (pos = text.find(needle)) != std::string::npos;)
    text.erase(pos, needle.size());
  const Json missingCounter = Json::parse(text);
  EXPECT_FALSE(validateReport(missingCounter, &error));
  EXPECT_NE(error.find("queries_ok"), std::string::npos) << error;
}

TEST(Report, EqualDeterministicCoversServingFields) {
  const BenchReport a = sampleServingReport();
  BenchReport b = a;
  for (ServingReport& sv : b.serving) {
    for (ServeRun& run : sv.runs) {
      run.wallMs = 99.0;  // timing-derived: all ignored
      run.queriesPerSec = 1.0;
      run.latencyMsP50 = 9.0;
      run.latencyMsP90 = 9.0;
      run.latencyMsP99 = 9.0;
    }
  }
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;

  b.serving[0].runs[0].rounds += 1;
  EXPECT_FALSE(equalDeterministic(a, b, &why));
  EXPECT_NE(why.find("rounds"), std::string::npos) << why;

  BenchReport c = a;
  c.serving[0].runs[0].queriesOk -= 1;
  EXPECT_FALSE(equalDeterministic(a, c, &why));
  EXPECT_NE(why.find("queries_ok"), std::string::npos) << why;

  BenchReport d = a;
  d.serving[0].runs[0].warmUnions += 7;
  EXPECT_FALSE(equalDeterministic(a, d, &why));
  EXPECT_NE(why.find("warm_unions"), std::string::npos) << why;
  // ... but warm/cold substrate counters are engine-specific: model-only
  // comparisons ignore them (the CI engine-equivalence step relies on it).
  EXPECT_TRUE(equalDeterministic(a, d, &why, /*modelOnly=*/true)) << why;

  BenchReport e = a;
  e.serving[0].runs[0].warmMatchesCold = false;
  EXPECT_FALSE(equalDeterministic(a, e, &why, /*modelOnly=*/true));
  EXPECT_NE(why.find("warm_matches_cold"), std::string::npos) << why;

  BenchReport f = a;
  f.serving[0].sdApplied += 1;
  EXPECT_FALSE(equalDeterministic(a, f, &why));
  EXPECT_NE(why.find("sd_applied"), std::string::npos) << why;
}

}  // namespace
}  // namespace aspf::scenario

// Differential fuzz harness for the two circuit engines: the incremental,
// dirty-tracked deliver() must be observationally indistinguishable from
// the from-scratch rebuild on arbitrary reconfiguration sequences. Every
// sequence is seeded and deterministic, so any failure replays from the
// (structure, sequence) indices in the test name/trace alone.
//
// Per round the harness mutates a random subset of amoebots (random joins
// and resets, including no-op rewrites of identical labels, which the
// dirty tracker must filter out), queues random beeps, delivers on both
// engines, and compares the complete observable state: received() for
// every (amoebot, label) pair, receivedAny() for every amoebot, and the
// round counters. 1000+ reconfiguration rounds run across several shape
// families, including subset regions.
#include <gtest/gtest.h>

#include <vector>

#include "shapes/generators.hpp"
#include "sim/circuit_engine.hpp"
#include "sim/comm.hpp"
#include "sim/sim_counters.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

/// One random reconfiguration + beep + deliver round applied identically
/// to every engine variant (comms[0] is the reference); records gtest
/// failures on the first observable divergence.
void fuzzRound(std::span<Comm* const> comms, Rng& rng, int lanes) {
  Comm& ref = *comms[0];
  const Region& region = ref.region();
  const int n = region.size();
  const int ppa = kNumDirs * lanes;

  // Mutate a random subset (possibly empty; occasionally everyone, which
  // exercises the rebuild fallback of the incremental engine).
  const int mutations =
      rng.chance(0.1) ? n : static_cast<int>(rng.below(n / 2 + 2));
  for (int m = 0; m < mutations; ++m) {
    const int a = static_cast<int>(rng.below(n));
    switch (rng.below(4)) {
      case 0: {  // reset to singletons
        for (Comm* comm : comms) comm->pins(a).reset();
        break;
      }
      case 1: {  // full reset-then-rejoin of the current labels (no-op
                 // rewrite; must not count as dirty)
        std::vector<std::vector<Pin>> sets(ppa);
        for (int p = 0; p < ppa; ++p) {
          sets[ref.pins(a).labelAt(p)].push_back(
              Pin{static_cast<Dir>(p / lanes),
                  static_cast<std::uint8_t>(p % lanes)});
        }
        for (Comm* comm : comms) comm->pins(a).reset();
        for (const auto& set : sets) {
          if (set.size() > 1) {
            for (Comm* comm : comms) comm->pins(a).join(set);
          }
        }
        break;
      }
      default: {  // join 2..ppa random pins
        const int count = 2 + static_cast<int>(rng.below(ppa - 1));
        std::vector<Pin> pins;
        for (int i = 0; i < count; ++i) {
          const int p = static_cast<int>(rng.below(ppa));
          pins.push_back(Pin{static_cast<Dir>(p / lanes),
                             static_cast<std::uint8_t>(p % lanes)});
        }
        for (Comm* comm : comms) comm->pins(a).join(pins);
        break;
      }
    }
  }

  // Occasionally reset the whole region.
  if (rng.chance(0.05)) {
    for (Comm* comm : comms) comm->resetPins();
  }

  // Random beeps.
  const int beeps = 1 + static_cast<int>(rng.below(4));
  for (int bi = 0; bi < beeps; ++bi) {
    const int a = static_cast<int>(rng.below(n));
    const Pin p{static_cast<Dir>(rng.below(kNumDirs)),
                static_cast<std::uint8_t>(rng.below(lanes))};
    for (Comm* comm : comms) comm->beepPin(a, p);
  }

  for (Comm* comm : comms) comm->deliver();

  for (std::size_t c = 1; c < comms.size(); ++c) {
    Comm& other = *comms[c];
    // Labels evolve identically (same mutation stream) ...
    for (int a = 0; a < n; ++a) {
      for (int p = 0; p < ppa; ++p) {
        ASSERT_EQ(ref.pins(a).labelAt(p), other.pins(a).labelAt(p))
            << "label divergence at amoebot " << a << " pin " << p
            << " variant " << c;
      }
    }
    // ... so any divergence below is the engines disagreeing on circuits.
    for (int a = 0; a < n; ++a) {
      ASSERT_EQ(ref.receivedAny(a), other.receivedAny(a))
          << "receivedAny divergence at amoebot " << a << " variant " << c;
      for (int label = 0; label < ppa; ++label) {
        ASSERT_EQ(ref.received(a, label), other.received(a, label))
            << "received divergence at amoebot " << a << " label " << label
            << " variant " << c;
      }
    }
    ASSERT_EQ(ref.rounds(), other.rounds());
  }
}

void fuzzRound(Comm& inc, Comm& reb, Rng& rng, int lanes) {
  Comm* const comms[] = {&inc, &reb};
  fuzzRound(comms, rng, lanes);
}

void fuzzStructure(const AmoebotStructure& s, int lanes, int sequences,
                   int roundsPerSequence, std::uint64_t seed) {
  const Region region = Region::whole(s);
  for (int seq = 0; seq < sequences; ++seq) {
    SCOPED_TRACE("sequence " + std::to_string(seq));
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(seq));
    Comm inc(region, lanes, CircuitEngine::Incremental);
    Comm reb(region, lanes, CircuitEngine::Rebuild);
    for (int round = 0; round < roundsPerSequence; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      fuzzRound(inc, reb, rng, lanes);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalFuzz, LineMatchesRebuild) {
  fuzzStructure(shapes::line(14), 2, 10, 25, 11);  // 250 rounds
}

TEST(IncrementalFuzz, HexagonMatchesRebuild) {
  fuzzStructure(shapes::hexagon(2), 4, 10, 25, 12);  // 250 rounds
}

TEST(IncrementalFuzz, RandomBlobMatchesRebuild) {
  fuzzStructure(shapes::randomBlob(40, 5), 3, 10, 25, 13);  // 250 rounds
}

TEST(IncrementalFuzz, CombMatchesRebuild) {
  fuzzStructure(shapes::comb(4, 3), 2, 10, 25, 14);  // 250 rounds
}

TEST(IncrementalFuzz, SubsetRegionMatchesRebuild) {
  // Subset regions drop external links at the region boundary; the
  // incremental traversal must respect the induced adjacency.
  const auto s = shapes::parallelogram(8, 6);
  std::vector<int> ids;
  for (int i = 0; i < s.size(); ++i) {
    if (i % 7 != 0) ids.push_back(i);  // punch holes into the region
  }
  const Region region = Region::of(s, ids);
  for (int seq = 0; seq < 5; ++seq) {
    SCOPED_TRACE("sequence " + std::to_string(seq));
    Rng rng(1000 + static_cast<std::uint64_t>(seq));
    Comm inc(region, 2, CircuitEngine::Incremental);
    Comm reb(region, 2, CircuitEngine::Rebuild);
    for (int round = 0; round < 20; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      fuzzRound(inc, reb, rng, 2);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// --- Sharded-engine fuzz axis ---------------------------------------------
// Structures above the sharding gate (>= 512 amoebots), fuzzed with the
// serial incremental engine as reference against the sharded incremental
// engine AND the serial from-scratch rebuild: any divergence in the
// parallel traversal, boundary merge, beep scatter or dirty drain
// surfaces as a received()/label/round mismatch with a replayable seed.

void fuzzStructureSharded(const AmoebotStructure& s, int lanes, int sequences,
                          int roundsPerSequence, std::uint64_t seed,
                          int simThreads) {
  const Region region = Region::whole(s);
  for (int seq = 0; seq < sequences; ++seq) {
    SCOPED_TRACE("sequence " + std::to_string(seq));
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(seq));
    Comm inc(region, lanes, CircuitEngine::Incremental, 1);
    Comm par(region, lanes, CircuitEngine::Incremental, simThreads);
    Comm reb(region, lanes, CircuitEngine::Rebuild, 1);
    ASSERT_GT(par.shardCount(), 1) << "structure too small to shard";
    Comm* const comms[] = {&inc, &par, &reb};
    for (int round = 0; round < roundsPerSequence; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      fuzzRound(comms, rng, lanes);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalFuzz, ShardedLineMatchesSerialAndRebuild) {
  // A 1400-amoebot line sharded 5 ways: long chain circuits crossing
  // every shard boundary.
  fuzzStructureSharded(shapes::line(1400), 2, 2, 18, 21, 5);
}

TEST(IncrementalFuzz, ShardedHoleyRegionMatchesSerialAndRebuild) {
  // Subset region above the gate: boundary links must respect the
  // induced adjacency in every shard.
  const auto s = shapes::parallelogram(40, 20);
  std::vector<int> ids;
  for (int i = 0; i < s.size(); ++i) {
    if (i % 7 != 0) ids.push_back(i);  // punch holes into the region
  }
  const Region region = Region::of(s, ids);
  ASSERT_GE(region.size(), 512);
  for (int seq = 0; seq < 2; ++seq) {
    SCOPED_TRACE("sequence " + std::to_string(seq));
    Rng rng(3000 + static_cast<std::uint64_t>(seq));
    Comm inc(region, 2, CircuitEngine::Incremental, 1);
    Comm par(region, 2, CircuitEngine::Incremental, 5);
    Comm reb(region, 2, CircuitEngine::Rebuild, 1);
    ASSERT_GT(par.shardCount(), 1);
    Comm* const comms[] = {&inc, &par, &reb};
    for (int round = 0; round < 20; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      fuzzRound(comms, rng, 2);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalFuzz, DirtyTrackingNeverRebuildsOnQuietRounds) {
  // Statistical sanity on the counters: across a fuzz sequence the split
  // incremental + rebuild rounds must account for every deliver, and a
  // sequence of delivers without reconfiguration must stay incremental.
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  comm.deliver();  // initial rebuild
  const SimCounters before = simCounters();
  for (int i = 0; i < 20; ++i) {
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
  }
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.delivers, 20);
  EXPECT_EQ(delta.incrementalRounds, 20);
  EXPECT_EQ(delta.rebuildRounds, 0);
  EXPECT_EQ(delta.unions, 0);
  EXPECT_EQ(delta.dirtyAmoebots, 0);
}

}  // namespace
}  // namespace aspf

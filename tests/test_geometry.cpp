// Geometry unit tests: directions, axes, axial coordinates, grid distance,
// and the six rotational frames.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/coord.hpp"
#include "geometry/frame.hpp"

namespace aspf {
namespace {

TEST(Direction, OppositeIsInvolution) {
  for (Dir d : kAllDirs) {
    EXPECT_NE(d, opposite(d));
    EXPECT_EQ(d, opposite(opposite(d)));
  }
}

TEST(Direction, CcwCyclesInSixSteps) {
  for (Dir d : kAllDirs) {
    EXPECT_EQ(d, ccw(d, 6));
    EXPECT_EQ(d, cw(ccw(d)));
  }
}

TEST(Direction, AxisClassification) {
  EXPECT_EQ(axisOf(Dir::E), Axis::X);
  EXPECT_EQ(axisOf(Dir::W), Axis::X);
  EXPECT_EQ(axisOf(Dir::NE), Axis::Y);
  EXPECT_EQ(axisOf(Dir::SW), Axis::Y);
  EXPECT_EQ(axisOf(Dir::NW), Axis::Z);
  EXPECT_EQ(axisOf(Dir::SE), Axis::Z);
}

TEST(Direction, DirsOfAxisAreOpposite) {
  for (Axis a : kAllAxes) {
    const auto [pos, neg] = dirsOf(a);
    EXPECT_EQ(neg, opposite(pos));
    EXPECT_EQ(axisOf(pos), a);
    EXPECT_EQ(axisOf(neg), a);
  }
}

TEST(Coord, NeighborOffsetsSumToZero) {
  Coord c{3, -2};
  Coord sum{0, 0};
  for (Dir d : kAllDirs) sum = sum + (c.neighbor(d) - c);
  EXPECT_EQ(sum, (Coord{0, 0}));
}

TEST(Coord, OppositeNeighborsCancel) {
  const Coord c{7, 11};
  for (Dir d : kAllDirs) EXPECT_EQ(c.neighbor(d).neighbor(opposite(d)), c);
}

TEST(Coord, GridDistanceOfNeighborsIsOne) {
  const Coord c{0, 0};
  for (Dir d : kAllDirs) EXPECT_EQ(gridDistance(c, c.neighbor(d)), 1);
}

TEST(Coord, GridDistanceAlongAxes) {
  Coord c{0, 0};
  for (Axis a : kAllAxes) {
    Coord walk = c;
    for (int i = 1; i <= 10; ++i) {
      walk = walk.neighbor(dirsOf(a)[0]);
      EXPECT_EQ(gridDistance(c, walk), i);
    }
  }
}

TEST(Coord, GridDistanceIsAMetric) {
  const Coord pts[] = {{0, 0}, {3, -1}, {-2, 5}, {4, 4}, {-3, -3}};
  for (const Coord a : pts) {
    EXPECT_EQ(gridDistance(a, a), 0);
    for (const Coord b : pts) {
      EXPECT_EQ(gridDistance(a, b), gridDistance(b, a));
      for (const Coord c : pts) {
        EXPECT_LE(gridDistance(a, c),
                  gridDistance(a, b) + gridDistance(b, c));
      }
    }
  }
}

TEST(Coord, DirBetweenMatchesNeighbor) {
  const Coord c{5, -7};
  for (Dir d : kAllDirs) EXPECT_EQ(dirBetween(c, c.neighbor(d)), d);
}

TEST(Frame, RotationPermutesDirectionsCcw) {
  const Frame f = Frame::rotationCcw(1);
  EXPECT_EQ(f.apply(Dir::E), Dir::NE);
  EXPECT_EQ(f.apply(Dir::NE), Dir::NW);
  EXPECT_EQ(f.apply(Dir::SE), Dir::E);
}

TEST(Frame, CoordRotationMatchesDirRotation) {
  for (int steps = 0; steps < 6; ++steps) {
    const Frame f = Frame::rotationCcw(steps);
    for (Dir d : kAllDirs) {
      const Coord rotated = f.apply(kDirOffset[static_cast<int>(d)]);
      EXPECT_EQ(rotated, kDirOffset[static_cast<int>(f.apply(d))])
          << "steps=" << steps << " dir=" << toString(d);
    }
  }
}

TEST(Frame, CoordRotationPreservesCartesianAngle) {
  const Frame f = Frame::rotationCcw(1);
  const Coord c{3, 2};
  const Coord rc = f.apply(c);
  const double angleBefore = std::atan2(c.cartY(), c.cartX());
  const double angleAfter = std::atan2(rc.cartY(), rc.cartX());
  double delta = angleAfter - angleBefore;
  while (delta < 0) delta += 2 * M_PI;
  EXPECT_NEAR(delta, M_PI / 3, 1e-9);
}

TEST(Frame, InverseUndoesRotation) {
  for (int steps = 0; steps < 6; ++steps) {
    const Frame f = Frame::rotationCcw(steps);
    const Coord c{-4, 9};
    EXPECT_EQ(f.applyInverse(f.apply(c)), c);
    for (Dir d : kAllDirs) EXPECT_EQ(f.applyInverse(f.apply(d)), d);
  }
}

TEST(Frame, CanonicalizeAxisMapsAxisToX) {
  for (Axis a : kAllAxes) {
    const Frame f = Frame::canonicalizeAxis(a);
    EXPECT_EQ(f.apply(a), Axis::X) << toString(a);
  }
}

TEST(Frame, RotationPreservesDistances) {
  const Frame f = Frame::rotationCcw(2);
  const Coord a{1, 2}, b{-5, 3};
  EXPECT_EQ(gridDistance(a, b), gridDistance(f.apply(a), f.apply(b)));
}

}  // namespace
}  // namespace aspf

// Unit tests for the extracted CLI parsing helpers (tools/cli_args.*):
// the full-match integer contract (junk rejection), the `lo..hi` range
// grammar with its expansion cap, and the nonNegative seed rule. These
// lock in the two historical aspf-run bugs: list items silently accepting
// trailing junk ("1x" -> 1) and unbounded range expansion
// ("0..2000000000" -> a multi-gigabyte allocation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli_args.hpp"

namespace aspf::cli {
namespace {

TEST(ParseInt, AcceptsPlainIntegers) {
  int v = 0;
  std::string error;
  EXPECT_TRUE(parseInt("12", &v, &error));
  EXPECT_EQ(v, 12);
  EXPECT_TRUE(parseInt("-3", &v, &error));
  EXPECT_EQ(v, -3);
  EXPECT_TRUE(parseInt("0", &v, &error));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt, RejectsTrailingJunk) {
  int v = 0;
  std::string error;
  EXPECT_FALSE(parseInt("1x", &v, &error));
  EXPECT_NE(error.find("trailing junk"), std::string::npos) << error;
  EXPECT_FALSE(parseInt("12 ", &v, &error));
  EXPECT_FALSE(parseInt("3.5", &v, &error));
}

TEST(ParseInt, RejectsEmptyAndNonNumeric) {
  int v = 0;
  std::string error;
  EXPECT_FALSE(parseInt("", &v, &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;
  EXPECT_FALSE(parseInt("abc", &v, &error));
  EXPECT_NE(error.find("not an integer"), std::string::npos) << error;
}

TEST(ParseInt, RejectsOutOfRange) {
  int v = 0;
  std::string error;
  EXPECT_FALSE(parseInt("99999999999999999999", &v, &error));
  EXPECT_NE(error.find("out of the int range"), std::string::npos) << error;
}

TEST(ParseIntList, AcceptsValuesAndRanges) {
  std::vector<int> out;
  std::string error;
  ASSERT_TRUE(parseIntList("2,8,32", &out, &error));
  EXPECT_EQ(out, (std::vector<int>{2, 8, 32}));
  out.clear();
  ASSERT_TRUE(parseIntList("1..4", &out, &error));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  out.clear();
  ASSERT_TRUE(parseIntList("1,4..6,9", &out, &error));
  EXPECT_EQ(out, (std::vector<int>{1, 4, 5, 6, 9}));
  out.clear();
  ASSERT_TRUE(parseIntList("5..5", &out, &error));  // degenerate range
  EXPECT_EQ(out, (std::vector<int>{5}));
}

TEST(ParseIntList, RejectsJunkInAnyPosition) {
  // The historical bug: items went through a bare std::stoi, so "1x,2y"
  // parsed as {1, 2}. Every token must now consume fully.
  std::vector<int> out;
  std::string error;
  EXPECT_FALSE(parseIntList("1x", &out, &error));
  EXPECT_NE(error.find("trailing junk"), std::string::npos) << error;
  EXPECT_FALSE(parseIntList("1,2y", &out, &error));
  EXPECT_FALSE(parseIntList("1x..3", &out, &error));
  EXPECT_FALSE(parseIntList("1..3z", &out, &error));
  EXPECT_FALSE(parseIntList("", &out, &error));
  EXPECT_FALSE(parseIntList("1,,3", &out, &error));
}

TEST(ParseIntList, CapsRangeExpansion) {
  // The other historical bug: "0..2000000000" expanded eagerly and
  // allocated gigabytes before anything could object.
  std::vector<int> out;
  std::string error;
  EXPECT_FALSE(parseIntList("0..2000000000", &out, &error));
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
  EXPECT_TRUE(out.empty());  // rejected BEFORE expanding
  // Exactly at the cap is fine; one past is not.
  out.clear();
  const std::string atCap = "1.." + std::to_string(kMaxRangeSpan);
  EXPECT_TRUE(parseIntList(atCap, &out, &error)) << error;
  EXPECT_EQ(static_cast<long>(out.size()), kMaxRangeSpan);
  out.clear();
  const std::string pastCap = "0.." + std::to_string(kMaxRangeSpan);
  EXPECT_FALSE(parseIntList(pastCap, &out, &error));
}

TEST(ParseIntList, RejectsReversedRanges) {
  std::vector<int> out;
  std::string error;
  EXPECT_FALSE(parseIntList("4..1", &out, &error));
  EXPECT_NE(error.find("reversed"), std::string::npos) << error;
}

TEST(ParseIntList, NonNegativeModeRejectsNegatives) {
  std::vector<int> out;
  std::string error;
  EXPECT_FALSE(parseIntList("-3", &out, &error, /*nonNegative=*/true));
  EXPECT_NE(error.find("negative"), std::string::npos) << error;
  EXPECT_FALSE(parseIntList("1,-2", &out, &error, /*nonNegative=*/true));
  EXPECT_FALSE(parseIntList("-2..3", &out, &error, /*nonNegative=*/true));
  out.clear();
  EXPECT_TRUE(parseIntList("0..3", &out, &error, /*nonNegative=*/true));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Negative values stay legal in the default mode (sweep parameters).
  out.clear();
  EXPECT_TRUE(parseIntList("-2..1", &out, &error));
  EXPECT_EQ(out, (std::vector<int>{-2, -1, 0, 1}));
}

}  // namespace
}  // namespace aspf::cli

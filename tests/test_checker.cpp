// Negative tests for the forest checker: each of the five properties of an
// (S,D)-shortest-path forest must be individually detected when violated.
// The checker guards every other test and every bench, so it must be
// trustworthy in both directions.
#include <gtest/gtest.h>

#include "baselines/checker.hpp"
#include "baselines/reference.hpp"
#include "shapes/generators.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

struct Fixture {
  AmoebotStructure s = shapes::parallelogram(8, 4);
  Region region = Region::whole(s);
  std::vector<int> sources;
  std::vector<int> dests;
  std::vector<int> parent;

  Fixture() {
    sources = {s.idOf({0, 0}), s.idOf({7, 3})};
    dests = {s.idOf({7, 0}), s.idOf({0, 3}), s.idOf({4, 2})};
    parent = referenceForest(region, sources, dests);
  }
};

TEST(Checker, AcceptsAValidForest) {
  Fixture f;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Checker, DetectsSourceThatIsNotARoot) {
  Fixture f;
  // Give a source a parent.
  for (Dir d : kAllDirs) {
    const int v = f.region.neighbor(f.sources[0], d);
    if (v >= 0) {
      f.parent[f.sources[0]] = v;
      break;
    }
  }
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsNonNeighborParent) {
  Fixture f;
  const int u = f.dests[0];
  ASSERT_GE(f.parent[u], 0);
  f.parent[u] = f.sources[0];  // far away
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsCycle) {
  Fixture f;
  // Two adjacent non-source nodes pointing at each other.
  const int a = f.s.idOf({3, 1});
  const int b = f.s.idOf({4, 1});
  f.parent[a] = b;
  f.parent[b] = a;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_FALSE(check.ok);
}

TEST(Checker, DetectsUncoveredDestination) {
  Fixture f;
  f.parent[f.dests[0]] = -2;
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsNonShortestPath) {
  // Hand-built instance where only property 5 (shortest paths) is violated:
  // source (0,0), destination (4,0) at distance 4, routed over the length-5
  // detour (4,0)->(3,1)->(2,1)->(1,1)->(0,1)->(0,0). Every node on the
  // detour except the destination is at its own shortest distance, so trees,
  // leaves, disjointness and coverage all still hold.
  const AmoebotStructure s = shapes::parallelogram(5, 2);
  const Region region = Region::whole(s);
  const std::vector<int> sources{s.idOf({0, 0})};
  const std::vector<int> dests{s.idOf({4, 0})};
  std::vector<int> parent(region.size(), -2);
  parent[s.idOf({0, 0})] = -1;
  parent[s.idOf({4, 0})] = s.idOf({3, 1});
  parent[s.idOf({3, 1})] = s.idOf({2, 1});
  parent[s.idOf({2, 1})] = s.idOf({1, 1});
  parent[s.idOf({1, 1})] = s.idOf({0, 1});
  parent[s.idOf({0, 1})] = s.idOf({0, 0});

  const ForestCheck check =
      checkShortestPathForest(region, parent, sources, dests);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("depth"), std::string::npos) << check.error;

  // The same tree rerouted along the bottom row is a valid forest.
  parent.assign(region.size(), -2);
  parent[s.idOf({0, 0})] = -1;
  parent[s.idOf({4, 0})] = s.idOf({3, 0});
  parent[s.idOf({3, 0})] = s.idOf({2, 0});
  parent[s.idOf({2, 0})] = s.idOf({1, 0});
  parent[s.idOf({1, 0})] = s.idOf({0, 0});
  const ForestCheck valid =
      checkShortestPathForest(region, parent, sources, dests);
  EXPECT_TRUE(valid.ok) << valid.error;
}

TEST(Checker, DetectsLeafThatIsNeitherSourceNorDestination) {
  Fixture f;
  // Extend a branch past a destination to a node that then becomes a leaf.
  const ReferenceDistances ref = multiSourceBfs(f.region, f.sources);
  for (int u = 0; u < f.region.size(); ++u) {
    if (f.parent[u] != -2) continue;
    for (Dir d : kAllDirs) {
      const int v = f.region.neighbor(u, d);
      if (v >= 0 && f.parent[v] != -2 && ref.dist[v] == ref.dist[u] - 1) {
        f.parent[u] = v;  // valid shortest-path edge, but u is a bare leaf
        const ForestCheck check =
            checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
        EXPECT_FALSE(check.ok);
        EXPECT_NE(check.error.find("leaf"), std::string::npos);
        return;
      }
    }
  }
  GTEST_SKIP() << "no extension spot found";
}

TEST(Checker, DetectsRootThatIsNotASource) {
  Fixture f;
  // Declare an extra root not in S.
  const int impostor = f.s.idOf({4, 0});
  ASSERT_NE(impostor, f.sources[0]);
  f.parent[impostor] = -1;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_FALSE(check.ok);
}

TEST(Checker, DetectsSizeMismatch) {
  Fixture f;
  f.parent.pop_back();
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, ReferenceForestIsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s = shapes::randomBlob(80, seed);
    const Region region = Region::whole(s);
    Rng rng(seed * 101);
    std::vector<int> sources, dests;
    for (int i = 0; i < 3; ++i)
      sources.push_back(static_cast<int>(rng.below(region.size())));
    for (int i = 0; i < 6; ++i)
      dests.push_back(static_cast<int>(rng.below(region.size())));
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    const auto parent = referenceForest(region, sources, dests);
    const ForestCheck check =
        checkShortestPathForest(region, parent, sources, dests);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

}  // namespace
}  // namespace aspf

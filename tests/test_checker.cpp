// Negative tests for the forest checker: each of the five properties of an
// (S,D)-shortest-path forest must be individually detected when violated.
// The checker guards every other test and every bench, so it must be
// trustworthy in both directions.
#include <gtest/gtest.h>

#include "baselines/checker.hpp"
#include "baselines/reference.hpp"
#include "shapes/generators.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

struct Fixture {
  AmoebotStructure s = shapes::parallelogram(8, 4);
  Region region = Region::whole(s);
  std::vector<int> sources;
  std::vector<int> dests;
  std::vector<int> parent;

  Fixture() {
    sources = {s.idOf({0, 0}), s.idOf({7, 3})};
    dests = {s.idOf({7, 0}), s.idOf({0, 3}), s.idOf({4, 2})};
    parent = referenceForest(region, sources, dests);
  }
};

TEST(Checker, AcceptsAValidForest) {
  Fixture f;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Checker, DetectsSourceThatIsNotARoot) {
  Fixture f;
  // Give a source a parent.
  for (Dir d : kAllDirs) {
    const int v = f.region.neighbor(f.sources[0], d);
    if (v >= 0) {
      f.parent[f.sources[0]] = v;
      break;
    }
  }
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsNonNeighborParent) {
  Fixture f;
  const int u = f.dests[0];
  ASSERT_GE(f.parent[u], 0);
  f.parent[u] = f.sources[0];  // far away
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsCycle) {
  Fixture f;
  // Two adjacent non-source nodes pointing at each other.
  const int a = f.s.idOf({3, 1});
  const int b = f.s.idOf({4, 1});
  f.parent[a] = b;
  f.parent[b] = a;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_FALSE(check.ok);
}

TEST(Checker, DetectsUncoveredDestination) {
  Fixture f;
  f.parent[f.dests[0]] = -2;
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, DetectsNonShortestPath) {
  Fixture f;
  // Re-root a destination through a detour: replace its parent with a
  // neighbor at equal-or-greater BFS distance.
  const ReferenceDistances ref = multiSourceBfs(f.region, f.sources);
  for (const int t : f.dests) {
    for (Dir d : kAllDirs) {
      const int v = f.region.neighbor(t, d);
      if (v >= 0 && ref.dist[v] >= ref.dist[t] && f.parent[v] != -2 &&
          f.parent[v] != t && v != t) {
        f.parent[t] = v;
        const ForestCheck check =
            checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
        EXPECT_FALSE(check.ok);
        return;
      }
    }
  }
  GTEST_SKIP() << "no detour neighbor available";
}

TEST(Checker, DetectsLeafThatIsNeitherSourceNorDestination) {
  Fixture f;
  // Extend a branch past a destination to a node that then becomes a leaf.
  const ReferenceDistances ref = multiSourceBfs(f.region, f.sources);
  for (int u = 0; u < f.region.size(); ++u) {
    if (f.parent[u] != -2) continue;
    for (Dir d : kAllDirs) {
      const int v = f.region.neighbor(u, d);
      if (v >= 0 && f.parent[v] != -2 && ref.dist[v] == ref.dist[u] - 1) {
        f.parent[u] = v;  // valid shortest-path edge, but u is a bare leaf
        const ForestCheck check =
            checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
        EXPECT_FALSE(check.ok);
        EXPECT_NE(check.error.find("leaf"), std::string::npos);
        return;
      }
    }
  }
  GTEST_SKIP() << "no extension spot found";
}

TEST(Checker, DetectsRootThatIsNotASource) {
  Fixture f;
  // Declare an extra root not in S.
  const int impostor = f.s.idOf({4, 0});
  ASSERT_NE(impostor, f.sources[0]);
  f.parent[impostor] = -1;
  const ForestCheck check =
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests);
  EXPECT_FALSE(check.ok);
}

TEST(Checker, DetectsSizeMismatch) {
  Fixture f;
  f.parent.pop_back();
  EXPECT_FALSE(
      checkShortestPathForest(f.region, f.parent, f.sources, f.dests).ok);
}

TEST(Checker, ReferenceForestIsAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s = shapes::randomBlob(80, seed);
    const Region region = Region::whole(s);
    Rng rng(seed * 101);
    std::vector<int> sources, dests;
    for (int i = 0; i < 3; ++i)
      sources.push_back(static_cast<int>(rng.below(region.size())));
    for (int i = 0; i < 6; ++i)
      dests.push_back(static_cast<int>(rng.below(region.size())));
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    const auto parent = referenceForest(region, sources, dests);
    const ForestCheck check =
        checkShortestPathForest(region, parent, sources, dests);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

}  // namespace
}  // namespace aspf

// Tree primitive tests (Sections 3.2-3.4): root & prune vs. brute force,
// election (Lemma 21), Q-centroids vs. brute force (Lemma 23), augmentation
// set bounds (Corollary 29), centroid existence (Lemma 27), and the
// decomposition tree with its O(log|Q|) height (Lemmas 30/31).
#include <gtest/gtest.h>

#include <queue>

#include "primitives/centroid.hpp"
#include "primitives/decomposition.hpp"
#include "primitives/election.hpp"
#include "primitives/root_prune.hpp"
#include "shapes/generators.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

TreeAdj randomSpanningTree(const Region& region, std::uint64_t seed) {
  Rng rng(seed);
  TreeAdj tree = TreeAdj::empty(region.size());
  std::vector<char> seen(region.size(), 0);
  std::vector<int> frontier{0};
  seen[0] = 1;
  while (!frontier.empty()) {
    const std::size_t pick = rng.below(frontier.size());
    const int u = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    std::array<Dir, 6> dirs = kAllDirs;
    for (int i = 5; i > 0; --i) std::swap(dirs[i], dirs[rng.below(i + 1)]);
    for (const Dir d : dirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        tree.add(region, u, v);
        frontier.push_back(v);
      }
    }
  }
  return tree;
}

std::vector<char> randomQ(int n, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> inQ(n, 0);
  for (int u = 0; u < n; ++u) inQ[u] = rng.chance(p) ? 1 : 0;
  bool any = false;
  for (const char c : inQ) any = any || c;
  if (!any) inQ[n / 2] = 1;
  return inQ;
}

// Reference: parents via BFS from root over tree edges, and V_Q via subtree
// Q-counts.
struct ReferenceRooted {
  std::vector<int> parent;
  std::vector<char> inVQ;
};

ReferenceRooted referenceRootPrune(const Region& region, const TreeAdj& tree,
                                   int root, const std::vector<char>& inQ) {
  const int n = region.size();
  ReferenceRooted ref;
  ref.parent.assign(n, -2);
  ref.inVQ.assign(n, 0);
  std::vector<int> order;
  std::vector<int> par(n, -2);
  std::queue<int> q;
  q.push(root);
  par[root] = -1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    order.push_back(u);
    for (int d = 0; d < 6; ++d) {
      if (!tree.edge[u][d]) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      if (v >= 0 && par[v] == -2) {
        par[v] = u;
        q.push(v);
      }
    }
  }
  std::vector<int> qInSubtree(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int u = *it;
    qInSubtree[u] += inQ[u] ? 1 : 0;
    if (par[u] >= 0) qInSubtree[par[u]] += qInSubtree[u];
  }
  for (const int u : order) {
    if (qInSubtree[u] > 0) {
      ref.inVQ[u] = 1;
      ref.parent[u] = par[u];
    }
  }
  return ref;
}

class PrimitiveSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimitiveSeeds, RootPruneMatchesReference) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(70, seed);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed ^ 0xabc);
  const int root = static_cast<int>((seed * 13) % region.size());
  const auto inQ = randomQ(region.size(), 0.2, seed * 3 + 1);
  const EulerTour tour = buildEulerTour(region, tree, root);
  Comm comm(region, 4);
  const RootPruneResult got = rootAndPrune(comm, tour, inQ);
  const ReferenceRooted ref = referenceRootPrune(region, tree, root, inQ);
  for (int u = 0; u < region.size(); ++u) {
    EXPECT_EQ(static_cast<bool>(got.inVQ[u]), static_cast<bool>(ref.inVQ[u]))
        << "node " << u;
    if (ref.inVQ[u]) {
      EXPECT_EQ(got.parent[u], ref.parent[u]) << "node " << u;
    }
  }
}

TEST_P(PrimitiveSeeds, RootPruneRoundBound) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(120, seed + 40);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed);
  const auto inQ = randomQ(region.size(), 0.15, seed);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  Comm comm(region, 4);
  const RootPruneResult got = rootAndPrune(comm, tour, inQ);
  // Lemma 20: O(log |Q|) rounds; concretely 2 * (bitWidth(|Q|) + 1).
  EXPECT_LE(got.rounds, 2 * (bitWidth(got.qCount) + 1));
}

TEST_P(PrimitiveSeeds, AugmentationSetBound) {
  // Corollary 29: |A_Q| <= |Q| - 1.
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(90, seed + 7);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 11);
  const auto inQ = randomQ(region.size(), 0.1, seed + 2);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  Comm comm(region, 4);
  const RootPruneResult got = rootAndPrune(comm, tour, inQ);
  std::uint64_t aug = 0;
  for (const char c : got.inAug) aug += c;
  ASSERT_GT(got.qCount, 0u);
  EXPECT_LE(aug, got.qCount - 1);
}

TEST_P(PrimitiveSeeds, ElectionPicksAMemberOfQ) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(50, seed + 3);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 17);
  const auto inQ = randomQ(region.size(), 0.25, seed + 5);
  const EulerTour tour = buildEulerTour(region, tree, 1 % region.size());
  Comm comm(region, 4);
  const ElectionResult got = electFromQ(comm, tour, inQ);
  ASSERT_GE(got.elected, 0);
  EXPECT_TRUE(inQ[got.elected]);
  EXPECT_EQ(got.rounds, 1);  // Lemma 21: O(1) rounds
}

TEST(Election, ElectsRootWhenRootIsInQ) {
  // The canonical mark of the root is on the very first tour edge, so the
  // root must elect itself.
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, 9);
  const EulerTour tour = buildEulerTour(region, tree, 4);
  std::vector<char> inQ(region.size(), 0);
  inQ[4] = 1;
  inQ[0] = 1;
  Comm comm(region, 4);
  EXPECT_EQ(electFromQ(comm, tour, inQ).elected, 4);
}

TEST(Election, SingleNodeTree) {
  const auto s = shapes::line(1);
  const Region region = Region::whole(s);
  const EulerTour tour = buildEulerTour(region, TreeAdj::empty(1), 0);
  std::vector<char> inQ{1};
  Comm comm(region, 4);
  EXPECT_EQ(electFromQ(comm, tour, inQ).elected, 0);
}

// Brute-force Q-centroids.
std::vector<char> referenceCentroids(const Region& region,
                                     const TreeAdj& tree,
                                     const std::vector<char>& inQ) {
  const int n = region.size();
  std::uint64_t total = 0;
  for (const char c : inQ) total += c;
  std::vector<char> is(n, 0);
  for (int u = 0; u < n; ++u) {
    if (!inQ[u]) continue;
    bool ok = true;
    for (int d = 0; d < 6 && ok; ++d) {
      if (!tree.edge[u][d]) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      // Count Q in v's component with u removed.
      std::vector<char> seen(n, 0);
      seen[u] = 1;
      seen[v] = 1;
      std::vector<int> stack{v};
      std::uint64_t count = 0;
      while (!stack.empty()) {
        const int w = stack.back();
        stack.pop_back();
        count += inQ[w] ? 1 : 0;
        for (int dd = 0; dd < 6; ++dd) {
          if (!tree.edge[w][dd]) continue;
          const int x = region.neighbor(w, static_cast<Dir>(dd));
          if (x >= 0 && !seen[x]) {
            seen[x] = 1;
            stack.push_back(x);
          }
        }
      }
      if (2 * count > total) ok = false;
    }
    is[u] = ok ? 1 : 0;
  }
  return is;
}

TEST_P(PrimitiveSeeds, CentroidsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(60, seed + 21);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 23);
  const auto inQ = randomQ(region.size(), 0.3, seed + 29);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  Comm comm(region, 4);
  const CentroidResult got = computeQCentroids(comm, tour, inQ);
  const auto ref = referenceCentroids(region, tree, inQ);
  for (int u = 0; u < region.size(); ++u)
    EXPECT_EQ(static_cast<bool>(got.isCentroid[u]),
              static_cast<bool>(ref[u]))
        << "node " << u;
}

TEST_P(PrimitiveSeeds, AugmentedCentroidsExist) {
  // Lemma 27: with Q' = Q + A_Q there are one or two Q'-centroids, and if
  // two, they are adjacent.
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(80, seed + 31);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 37);
  const auto inQ = randomQ(region.size(), 0.15, seed + 41);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  Comm comm(region, 4);
  const RootPruneResult rooted = rootAndPrune(comm, tour, inQ);
  std::vector<char> inQPrime(region.size(), 0);
  for (int u = 0; u < region.size(); ++u)
    inQPrime[u] = (inQ[u] || rooted.inAug[u]) ? 1 : 0;
  Comm comm2(region, 4);
  const CentroidResult got = computeQCentroids(comm2, tour, inQPrime);
  std::vector<int> centroids;
  for (int u = 0; u < region.size(); ++u)
    if (got.isCentroid[u]) centroids.push_back(u);
  ASSERT_GE(centroids.size(), 1u);
  ASSERT_LE(centroids.size(), 2u);
  if (centroids.size() == 2) {
    // Theorem 25 applies to the contracted tree T'' (proof of Lemma 27):
    // the two centroids are adjacent there, i.e. the tree path between
    // them contains no further Q' node.
    std::queue<int> bfs;
    std::vector<int> par(region.size(), -2);
    bfs.push(centroids[0]);
    par[centroids[0]] = -1;
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop();
      for (int d = 0; d < 6; ++d) {
        if (!tree.edge[u][d]) continue;
        const int v = region.neighbor(u, static_cast<Dir>(d));
        if (v >= 0 && par[v] == -2) {
          par[v] = u;
          bfs.push(v);
        }
      }
    }
    for (int w = par[centroids[1]]; w != centroids[0] && w >= 0; w = par[w])
      EXPECT_FALSE(inQPrime[w]) << "interior Q' node between centroids";
  }
}

TEST_P(PrimitiveSeeds, DecompositionCoversQPrimeWithLogHeight) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(80, seed + 51);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 53);
  const auto inQ = randomQ(region.size(), 0.2, seed + 59);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  Comm comm(region, 4);
  const RootPruneResult rooted = rootAndPrune(comm, tour, inQ);
  std::vector<char> inQPrime(region.size(), 0);
  std::uint64_t qPrimeSize = 0;
  for (int u = 0; u < region.size(); ++u) {
    inQPrime[u] = (inQ[u] || rooted.inAug[u]) ? 1 : 0;
    qPrimeSize += inQPrime[u];
  }
  const DecompositionResult dt =
      decomposeAtCentroids(region, tree, 0, inQPrime);
  // Every Q' node appears in the decomposition tree exactly once, with a
  // depth; nothing else does.
  for (int u = 0; u < region.size(); ++u) {
    if (inQPrime[u]) {
      EXPECT_GE(dt.depth[u], 0) << "node " << u;
    } else {
      EXPECT_EQ(dt.depth[u], -1) << "node " << u;
    }
  }
  // Lemma 30: height O(log |Q'|); each level at least halves Q' per
  // subtree, so height <= bitWidth(|Q'|).
  EXPECT_LE(dt.height, bitWidth(qPrimeSize) + 1);
  // DT parents are centroids of the previous depth.
  for (int u = 0; u < region.size(); ++u) {
    if (dt.depth[u] > 0) {
      ASSERT_GE(dt.parentInDT[u], 0);
      EXPECT_EQ(dt.depth[dt.parentInDT[u]] + 1, dt.depth[u]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimitiveSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace aspf

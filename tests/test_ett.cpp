// Euler tour technique tests (Section 3.1): tour construction, prefix-sum
// differences vs. brute-force subtree counts (Lemma 17 / Corollary 18), and
// |Q| at the root (Corollary 15).
#include <gtest/gtest.h>

#include <queue>

#include "ett/ett_runner.hpp"
#include "shapes/generators.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

// Random spanning tree of a region via randomized BFS.
TreeAdj randomSpanningTree(const Region& region, std::uint64_t seed) {
  Rng rng(seed);
  TreeAdj tree = TreeAdj::empty(region.size());
  std::vector<char> seen(region.size(), 0);
  std::vector<int> frontier{0};
  seen[0] = 1;
  while (!frontier.empty()) {
    const std::size_t pick = rng.below(frontier.size());
    const int u = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    std::array<Dir, 6> dirs = kAllDirs;
    for (int i = 5; i > 0; --i)
      std::swap(dirs[i], dirs[rng.below(i + 1)]);
    for (const Dir d : dirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        tree.add(region, u, v);
        frontier.push_back(v);
      }
    }
  }
  return tree;
}

// Brute force: number of Q-nodes in the subtree hanging off `child` when
// the edge (node, child) is cut.
int subtreeQCount(const Region& region, const TreeAdj& tree, int node,
                  int child, const std::vector<char>& inQ) {
  int count = 0;
  std::vector<int> stack{child};
  std::vector<char> seen(region.size(), 0);
  seen[node] = 1;
  seen[child] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    count += inQ[u] ? 1 : 0;
    for (int d = 0; d < 6; ++d) {
      if (!tree.edge[u][d]) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return count;
}

TEST(EulerTour, VisitsEveryDirectedEdgeOnce) {
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, 7);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  EXPECT_EQ(tour.edgeCount(), 2 * (region.size() - 1));
  EXPECT_EQ(tour.instanceCount(), tour.edgeCount() + 1);
  EXPECT_EQ(tour.stops.front(), 0);
  EXPECT_EQ(tour.stops.back(), 0);
  // Consecutive stops are adjacent via the recorded direction.
  for (int i = 0; i < tour.edgeCount(); ++i) {
    const int v = region.neighbor(tour.stops[i], tour.outDir[i]);
    EXPECT_EQ(v, tour.stops[i + 1]);
  }
}

TEST(EulerTour, InstanceLookupTablesAreConsistent) {
  const auto s = shapes::parallelogram(5, 3);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, 3);
  const EulerTour tour = buildEulerTour(region, tree, 2);
  for (int u = 0; u < region.size(); ++u) {
    for (int d = 0; d < 6; ++d) {
      const int out = tour.instanceOfOutEdge[u][d];
      if (out >= 0) {
        EXPECT_EQ(tour.stops[out], u);
        EXPECT_EQ(tour.outDir[out], static_cast<Dir>(d));
      }
      const int in = tour.instanceAfterInEdge[u][d];
      if (in >= 0) {
        EXPECT_EQ(tour.stops[in], u);
      }
    }
  }
}

TEST(EulerTour, SingleNodeTree) {
  const auto s = shapes::line(1);
  const Region region = Region::whole(s);
  const TreeAdj tree = TreeAdj::empty(1);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  EXPECT_EQ(tour.instanceCount(), 1);
  EXPECT_EQ(tour.edgeCount(), 0);
}

class EttRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EttRandom, DifferencesEqualSubtreeCounts) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(60, seed);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed * 31 + 1);
  const int root = static_cast<int>(seed) % region.size();
  const EulerTour tour = buildEulerTour(region, tree, root);

  Rng rng(seed * 977);
  std::vector<char> inQ(region.size(), 0);
  std::uint64_t qSize = 0;
  for (int u = 0; u < region.size(); ++u) {
    inQ[u] = rng.chance(0.3) ? 1 : 0;
    qSize += inQ[u];
  }
  if (qSize == 0) {
    inQ[0] = 1;
    qSize = 1;
  }

  Comm comm(region, 4);
  const auto marks = canonicalMarks(tour, inQ);
  const EttResult ett = runEtt(comm, tour, marks);
  EXPECT_EQ(ett.totalWeight, qSize);  // Corollary 15

  // Lemma 17: cutting the edge {u,v} splits the tree in two; let `across`
  // be the Q-count on v's side. If v is u's parent, diff equals the Q-count
  // of u's subtree = |Q| - across; if v is a child, -diff equals across.
  // (diff == 0 is legal in both cases when the respective side is empty of
  // Q, so the parent relation is established independently via BFS.)
  std::vector<int> par(region.size(), -2);
  {
    std::queue<int> bfs;
    bfs.push(root);
    par[root] = -1;
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop();
      for (int d = 0; d < 6; ++d) {
        if (!tree.edge[u][d]) continue;
        const int v = region.neighbor(u, static_cast<Dir>(d));
        if (v >= 0 && par[v] == -2) {
          par[v] = u;
          bfs.push(v);
        }
      }
    }
  }
  for (int u = 0; u < region.size(); ++u) {
    for (int d = 0; d < 6; ++d) {
      if (tour.instanceOfOutEdge[u][d] < 0) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      const int acrossCount = subtreeQCount(region, tree, u, v, inQ);
      const std::int64_t diff = ett.diff[u][d];
      if (par[u] == v) {
        EXPECT_EQ(diff, static_cast<std::int64_t>(qSize) - acrossCount);
      } else {
        EXPECT_EQ(-diff, acrossCount);
      }
    }
  }
}

TEST_P(EttRandom, AntisymmetryAcrossEdges) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(40, seed + 100);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, seed + 5);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  std::vector<char> inQ(region.size(), 0);
  Rng rng(seed);
  for (int u = 0; u < region.size(); ++u) inQ[u] = rng.chance(0.5) ? 1 : 0;
  inQ[region.size() / 2] = 1;
  Comm comm(region, 4);
  const EttResult ett = runEtt(comm, tour, canonicalMarks(tour, inQ));
  for (int u = 0; u < region.size(); ++u) {
    for (int d = 0; d < 6; ++d) {
      if (tour.instanceOfOutEdge[u][d] < 0) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      const Dir back = opposite(static_cast<Dir>(d));
      EXPECT_EQ(ett.diff[u][d], -ett.diff[v][static_cast<int>(back)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EttRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace aspf

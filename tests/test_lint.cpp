// aspf-lint engine tests: one planted violation per rule, the
// allow-annotation grammar (reason mandatory, rule name checked, wrapped
// comment blocks honored), scope selection by path, and the clean-tree
// self-check -- lintTree() over the real repo root must exit with zero
// findings, which is exactly what CI's lint job asserts via the binary.
//
// Every fixture lives in a raw string literal: the scanner blanks string
// literals before matching, so planted `rand()` calls and annotation
// examples in this file are invisible when aspf-lint scans its own tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "lint_core.hpp"

namespace aspf::lint {
namespace {

int countRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

TEST(LintRules, KnownRuleNames) {
  EXPECT_TRUE(knownRule("unordered-iter"));
  EXPECT_TRUE(knownRule("nondeterminism"));
  EXPECT_TRUE(knownRule("raw-pinarena"));
  EXPECT_TRUE(knownRule("float-field"));
  EXPECT_TRUE(knownRule("ctest-timeout"));
  EXPECT_FALSE(knownRule("annotation"));  // reserved for audit findings
  EXPECT_FALSE(knownRule("made-up-rule"));
  EXPECT_FALSE(knownRule(""));
}

TEST(LintRules, FormatFindingIsGrepable) {
  const Finding f{"src/x.cpp", 42, "nondeterminism", "call to 'rand()'"};
  EXPECT_EQ(formatFinding(f), "src/x.cpp:42: nondeterminism: call to 'rand()'");
}

// ---------------------------------------------------------------------------
// Rule (a): unordered-container iteration.
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, RangeForOverUnorderedSetFlagged) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
#include <unordered_set>
void f() {
  std::unordered_set<int> seen;
  for (const int v : seen) use(v);
}
)cpp");
  ASSERT_EQ(countRule(findings, "unordered-iter"), 1);
  const Finding& f = findings.front();
  EXPECT_EQ(f.rule, "unordered-iter");
  EXPECT_EQ(f.line, 5);  // the for line (raw string opens with a newline)
  EXPECT_NE(f.message.find("seen"), std::string::npos);
}

TEST(LintUnorderedIter, BeginOnUnorderedMapFlagged) {
  const auto findings = scanSource("tests/t.cpp", R"cpp(
std::unordered_map<int, int> counts;
auto it = counts.begin();
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, AliasedTypeTracked) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
using CoordSet = std::unordered_set<Coord, CoordHash>;
void f(const CoordSet& set) {
  for (const Coord& c : set) use(c);
}
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, FindAndEndComparisonLegal) {
  // Membership tests and the find()/end() idiom never iterate.
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_map<int, int> index;
bool has(int k) { return index.find(k) != index.end(); }
bool has2(int k) { return index.contains(k); }
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, OrderedContainersLegal) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::map<int, int> ordered;
std::vector<int> vec;
void f() {
  for (const auto& [k, v] : ordered) use(k, v);
  for (int x : vec) use(x);
  std::sort(vec.begin(), vec.end());
}
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0);
}

TEST(LintUnorderedIter, HeaderMembersVisibleWhenScanningCpp) {
  // Members declared in the same-stem header (the region.hpp pattern)
  // must be tracked when the .cpp iterates them.
  const char* header = R"cpp(
class Region {
  std::unordered_map<int, int> localMap_;
};
)cpp";
  const auto findings = scanSource("src/sim/region.cpp", R"cpp(
void Region::dump() {
  for (const auto& kv : localMap_) use(kv);
}
)cpp",
                                   header);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1);
}

// ---------------------------------------------------------------------------
// Allow-annotations.
// ---------------------------------------------------------------------------

TEST(LintAnnotations, SameLineAnnotationSuppresses) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
for (int v : s) use(v);  // aspf-lint: allow(unordered-iter) fold is commutative
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0);
  EXPECT_EQ(countRule(findings, "annotation"), 0);
}

TEST(LintAnnotations, PrecedingLineAnnotationSuppresses) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
// aspf-lint: allow(unordered-iter) drained into a vector and sorted below
for (int v : s) tmp.push_back(v);
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0);
}

TEST(LintAnnotations, WrappedCommentBlockSuppresses) {
  // Annotations wrap under the 80-column limit: the allow(...) line may
  // sit several comment lines above the flagged statement.
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
// aspf-lint: allow(unordered-iter) commutative min/max fold over the
// set; the result is independent of visit order on every platform
for (int v : s) lo = std::min(lo, v);
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 0);
}

TEST(LintAnnotations, AnnotationDoesNotLeakPastCode) {
  // A code line between the annotation and the violation breaks the
  // contiguous comment block: the second loop is NOT covered.
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
// aspf-lint: allow(unordered-iter) covers only the next statement
for (int v : s) a(v);
for (int v : s) b(v);
)cpp");
  ASSERT_EQ(countRule(findings, "unordered-iter"), 1);
  EXPECT_EQ(findings.front().line, 5);
}

TEST(LintAnnotations, WrongRuleDoesNotSuppress) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
// aspf-lint: allow(nondeterminism) wrong rule for this site
for (int v : s) use(v);
)cpp");
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1);
}

TEST(LintAnnotations, EmptyReasonRejectedAndViolationStands) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
std::unordered_set<int> s;
// aspf-lint: allow(unordered-iter)
for (int v : s) use(v);
)cpp");
  EXPECT_EQ(countRule(findings, "annotation"), 1);
  EXPECT_EQ(countRule(findings, "unordered-iter"), 1);
}

TEST(LintAnnotations, UnknownRuleFlagged) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
// aspf-lint: allow(no-such-rule) bogus
int x = 0;
)cpp");
  ASSERT_EQ(countRule(findings, "annotation"), 1);
  EXPECT_NE(findings.front().message.find("no-such-rule"), std::string::npos);
}

TEST(LintAnnotations, DocPlaceholderIsNotAnAnnotation) {
  // `allow(<rule>)` in prose (angle brackets are not rule-name chars)
  // must parse as a non-annotation, not as an unknown-rule error.
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
// Waive a finding with: aspf-lint: allow(<rule>) <reason>
int x = 0;
)cpp");
  EXPECT_EQ(countRule(findings, "annotation"), 0);
}

// ---------------------------------------------------------------------------
// Rule (b): nondeterminism sources.
// ---------------------------------------------------------------------------

TEST(LintNondeterminism, BannedCallsAndIdsFlaggedInSrc) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
int f() {
  srand(42);
  int a = rand();
  std::random_device rd;
  auto t = std::chrono::system_clock::now();
  auto w = time(nullptr);
  return a;
}
)cpp");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 5);
}

TEST(LintNondeterminism, RuleScopedToSrcAndTools) {
  // The same text in tests/ is legal: tests may measure wall time.
  const char* fixture = R"cpp(
auto t = std::chrono::system_clock::now();
)cpp";
  EXPECT_EQ(countRule(scanSource("tests/t.cpp", fixture), "nondeterminism"),
            0);
  EXPECT_EQ(countRule(scanSource("src/spf/x.cpp", fixture), "nondeterminism"),
            1);
  EXPECT_EQ(countRule(scanSource("tools/x.cpp", fixture), "nondeterminism"),
            1);
}

TEST(LintNondeterminism, SteadyClockOnlyInTimingFiles) {
  const char* fixture = R"cpp(
auto t0 = std::chrono::steady_clock::now();
)cpp";
  EXPECT_EQ(countRule(scanSource("src/scenario/runner.cpp", fixture),
                      "nondeterminism"),
            0);
  EXPECT_EQ(countRule(scanSource("src/scenario/serve.cpp", fixture),
                      "nondeterminism"),
            0);
  EXPECT_EQ(
      countRule(scanSource("src/spf/forest.cpp", fixture), "nondeterminism"),
      1);
}

TEST(LintNondeterminism, CallPositionOnly) {
  // `wallTime` contains no banned token; `.time()` is a member call; a
  // variable named `time` without a call is plain data flow.
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
double wallTime(int x) { return x * 2.0; }
void g(const Report& r) {
  auto v = r.time();
  long time = 7;
  use(time + 1);
}
)cpp");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0);
}

TEST(LintNondeterminism, StringsAndCommentsInvisible) {
  const auto findings = scanSource("src/spf/x.cpp", R"cpp(
// rand() and system_clock in a comment are fine.
const char* kMsg = "rand() and std::random_device in a string are fine";
)cpp");
  EXPECT_EQ(countRule(findings, "nondeterminism"), 0);
}

// ---------------------------------------------------------------------------
// Rule (c): raw substrate access outside src/sim/.
// ---------------------------------------------------------------------------

TEST(LintRawPinArena, FlaggedOutsideSimLayer) {
  const char* fixture = R"cpp(
void poke(PinArena& arena) { arena.set(0, 1); }
)cpp";
  EXPECT_EQ(
      countRule(scanSource("src/spf/forest.cpp", fixture), "raw-pinarena"),
      1);
  EXPECT_EQ(
      countRule(scanSource("src/sim/pin_arena.cpp", fixture), "raw-pinarena"),
      0);
  // Tests may poke the substrate directly (they assert on its internals).
  EXPECT_EQ(countRule(scanSource("tests/t.cpp", fixture), "raw-pinarena"), 0);
}

TEST(LintRawPinArena, PinConfigRefIsTheBlessedPath) {
  const auto findings = scanSource("src/spf/forest.cpp", R"cpp(
void step(Comm& comm) {
  PinConfigRef pins = comm.pins();
  pins.setHead(2, true);
}
)cpp");
  EXPECT_EQ(countRule(findings, "raw-pinarena"), 0);
}

// ---------------------------------------------------------------------------
// Rule (d): float fields vs equalDeterministic.
// ---------------------------------------------------------------------------

const char* kReportHpp = R"cpp(
struct EpochReport {
  long rounds = 0;
  double wallMs = 0.0;
  long unions = 0;
};
)cpp";

TEST(LintFloatField, ComparedFloatFieldFlagged) {
  const auto findings = checkFloatManifest("src/scenario/report.hpp",
                                           kReportHpp, "src/scenario/report.cpp",
                                           R"cpp(
bool equalDeterministic(const R& a, const R& b, std::string* why) {
  if (a.rounds != b.rounds) return false;
  if (a.wallMs != b.wallMs) return false;
  return true;
}
)cpp");
  ASSERT_EQ(countRule(findings, "float-field"), 1);
  EXPECT_NE(findings.front().message.find("wallMs"), std::string::npos);
}

TEST(LintFloatField, IntegerOnlyComparisonClean) {
  const auto findings = checkFloatManifest("src/scenario/report.hpp",
                                           kReportHpp, "src/scenario/report.cpp",
                                           R"cpp(
double wallMsTotal(const R& r) { return r.wallMs; }  // outside equalDeterministic
bool equalDeterministic(const R& a, const R& b, std::string* why) {
  if (a.rounds != b.rounds) return false;
  if (a.unions != b.unions) return false;
  return true;
}
)cpp");
  EXPECT_EQ(countRule(findings, "float-field"), 0);
}

TEST(LintFloatField, AnnotatedComparisonAllowed) {
  const auto findings = checkFloatManifest("src/scenario/report.hpp",
                                           kReportHpp, "src/scenario/report.cpp",
                                           R"cpp(
bool equalDeterministic(const R& a, const R& b, std::string* why) {
  // aspf-lint: allow(float-field) exact dyadic ratio of integer counters
  if (a.wallMs != b.wallMs) return false;
  return true;
}
)cpp");
  EXPECT_EQ(countRule(findings, "float-field"), 0);
}

TEST(LintFloatField, BrokenManifestExtractionIsItselfAFinding) {
  // If the header grows no float fields the extraction self-check fires
  // (guards against the manifest silently matching nothing after a
  // refactor); same for a vanished equalDeterministic.
  const auto noFloats = checkFloatManifest(
      "h.hpp", "struct R { long rounds = 0; };", "c.cpp", "bool f();");
  ASSERT_EQ(countRule(noFloats, "float-field"), 1);
  EXPECT_NE(noFloats.front().message.find("manifest"), std::string::npos);

  const auto noEqual =
      checkFloatManifest("h.hpp", kReportHpp, "c.cpp", "bool f();");
  ASSERT_EQ(countRule(noEqual, "float-field"), 1);
  EXPECT_NE(noEqual.front().message.find("equalDeterministic"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule (e): ctest timeout/label hygiene in CMake listfiles.
// ---------------------------------------------------------------------------

TEST(LintCMake, MissingTimeoutFlagged) {
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
gtest_discover_tests(test_foo
  PROPERTIES LABELS "smoke"
  DISCOVERY_TIMEOUT 60)
)cmake");
  // DISCOVERY_TIMEOUT must not satisfy the TIMEOUT word-boundary match.
  ASSERT_EQ(countRule(findings, "ctest-timeout"), 1);
  EXPECT_NE(findings.front().message.find("TIMEOUT"), std::string::npos);
}

TEST(LintCMake, MissingLabelsFlagged) {
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
gtest_discover_tests(test_foo PROPERTIES TIMEOUT 300)
)cmake");
  EXPECT_EQ(countRule(findings, "ctest-timeout"), 1);
}

TEST(LintCMake, WrongLabelValueFlagged) {
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
gtest_discover_tests(test_foo
  PROPERTIES LABELS "misc" TIMEOUT 300)
)cmake");
  EXPECT_EQ(countRule(findings, "ctest-timeout"), 1);
}

TEST(LintCMake, TimeoutAndSmokeLabelClean) {
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
gtest_discover_tests(test_foo
  PROPERTIES LABELS "smoke" TIMEOUT 300
  DISCOVERY_TIMEOUT 60)
)cmake");
  EXPECT_TRUE(findings.empty());
}

TEST(LintCMake, VariableExpansionAccepted) {
  // The real tree sets LABELS "${ASPF_TEST_LABELS}" in a foreach; a
  // variable expansion is accepted (its value is asserted by this very
  // suite running under `ctest -L smoke`).
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
gtest_discover_tests(${test_name}
  PROPERTIES LABELS "${ASPF_TEST_LABELS}" TIMEOUT ${ASPF_TEST_TIMEOUT}
  DISCOVERY_TIMEOUT 60)
)cmake");
  EXPECT_TRUE(findings.empty());
}

TEST(LintCMake, CommentedCallIgnored) {
  const auto findings = scanCMake("CMakeLists.txt", R"cmake(
# gtest_discover_tests(test_foo)
)cmake");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// The clean-tree self-check: the shipped tree must lint clean. This is
// the same invariant CI asserts with the aspf-lint binary; running it in
// the smoke tier means a violating commit fails before CI even builds
// the lint job.
// ---------------------------------------------------------------------------

TEST(LintTree, ShippedTreeIsClean) {
  std::ostringstream sink;
  const int findings = lintTree(ASPF_SOURCE_DIR, sink);
  EXPECT_EQ(findings, 0) << sink.str();
}

TEST(LintTree, RejectsNonRepoRoot) {
  std::ostringstream sink;
  EXPECT_THROW(lintTree("/nonexistent/not-a-repo", sink), std::runtime_error);
}

}  // namespace
}  // namespace aspf::lint

// PASC tests (Lemmas 3/4, Corollaries 5/6): distance bits on chains, tree
// and forest depths, weighted prefix sums, iteration/round bounds, lane
// reuse on snake-shaped chains.
#include <gtest/gtest.h>

#include <numeric>

#include "pasc/pasc_chain.hpp"
#include "pasc/pasc_prefix.hpp"
#include "pasc/pasc_tree.hpp"
#include "shapes/generators.hpp"
#include "util/bitstream.hpp"

namespace aspf {
namespace {

std::vector<int> lineStops(const AmoebotStructure& s, const Region& region) {
  std::vector<int> stops;
  for (int q = 0; q < s.size(); ++q)
    stops.push_back(region.localOf(s.idOf({q, 0})));
  return stops;
}

class PascChainSizes : public ::testing::TestWithParam<int> {};

TEST_P(PascChainSizes, DistancesAreExact) {
  const int m = GetParam();
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const auto stops = lineStops(s, region);
  const PascResult res = runPascChain(comm, stops);
  for (int i = 0; i < m; ++i)
    EXPECT_EQ(res.value[i], static_cast<std::uint64_t>(i)) << "stop " << i;
}

TEST_P(PascChainSizes, IterationAndRoundBounds) {
  const int m = GetParam();
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const auto stops = lineStops(s, region);
  const PascResult res = runPascChain(comm, stops);
  // Lemma 4: O(log m) iterations, two rounds each. Exactly bitWidth(m-1)
  // iterations are needed to eliminate all m-1 active stops.
  EXPECT_EQ(res.iterations, bitWidth(static_cast<std::uint64_t>(m - 1)));
  EXPECT_EQ(res.rounds, 2 * res.iterations);
  EXPECT_EQ(comm.rounds(), res.rounds);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PascChainSizes,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 16, 31, 32,
                                           33, 64, 100, 127, 255, 256, 1000));

TEST(PascChain, ShardedCommMatchesSerialBitForBit) {
  // The chain protocol on a sharded Comm (parallel rewiring sweeps,
  // batched bit reads, sharded circuit repair) must reproduce the serial
  // execution exactly: same values, same per-iteration bit matrix, same
  // round count.
  const int m = 800;  // above the sharding gate
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  const auto stops = lineStops(s, region);
  Comm serial(region, 4, CircuitEngine::Incremental, 1);
  Comm sharded(region, 4, CircuitEngine::Incremental, 4);
  ASSERT_GT(sharded.shardCount(), 1);
  const PascResult a = runPascChain(serial, stops);
  const PascResult b = runPascChain(sharded, stops);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(serial.rounds(), sharded.rounds());
  for (int i = 0; i < m; ++i)
    ASSERT_EQ(a.value[i], static_cast<std::uint64_t>(i)) << "stop " << i;
}

TEST(PascChain, ShardedWeightedPrefixSumMatchesSerial) {
  const int m = 700;
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  const auto stops = lineStops(s, region);
  std::vector<char> weight(m, 0);
  for (int i = 0; i < m; i += 3) weight[i] = 1;  // every third stop weighs 1
  Comm serial(region, 4, CircuitEngine::Incremental, 1);
  Comm sharded(region, 4, CircuitEngine::Incremental, 8);
  const PascResult a = runPascPrefixSum(serial, stops, weight);
  const PascResult b = runPascPrefixSum(sharded, stops, weight);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(PascForest, ShardedCommMatchesSerial) {
  const int n = 900;
  const auto s = shapes::line(n);
  const Region region = Region::whole(s);
  // A path tree rooted in the middle: both directions cross shards.
  std::vector<int> parent(n);
  const int root = n / 2;
  for (int u = 0; u < n; ++u)
    parent[u] = u < root ? u + 1 : (u == root ? -1 : u - 1);
  Comm serial(region, 2, CircuitEngine::Incremental, 1);
  Comm sharded(region, 2, CircuitEngine::Incremental, 4);
  ASSERT_GT(sharded.shardCount(), 1);
  const TreePascResult a = runPascForest(serial, parent);
  const TreePascResult b = runPascForest(sharded, parent);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.rounds, b.rounds);
  for (int u = 0; u < n; ++u)
    ASSERT_EQ(a.depth[u], static_cast<std::uint64_t>(std::abs(u - root)))
        << "node " << u;
}

TEST(PascChain, SingleStopDegenerates) {
  const auto s = shapes::line(1);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const int stops[] = {0};
  const PascResult res = runPascChain(comm, stops);
  EXPECT_EQ(res.value[0], 0u);
  EXPECT_EQ(res.rounds, 0);
}

TEST(PascChain, BitsAreLsbFirst) {
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const auto stops = lineStops(s, region);
  const PascResult res = runPascChain(comm, stops);
  for (int i = 0; i < 6; ++i) {
    BitAccumulator acc;
    for (const auto& bitsAtIteration : res.bits) acc.feed(bitsAtIteration[i]);
    EXPECT_EQ(acc.value(), static_cast<std::uint64_t>(i));
  }
}

TEST(PascChain, SnakeChainReusesEdgesInBothDirections) {
  // A chain that walks east along a line and back west over the same
  // amoebots: every physical edge is traversed in both directions, which
  // exercises the 4-lane discipline used by Euler tours.
  const int m = 9;
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  std::vector<int> stops;
  for (int q = 0; q < m; ++q) stops.push_back(region.localOf(s.idOf({q, 0})));
  for (int q = m - 2; q >= 0; --q)
    stops.push_back(region.localOf(s.idOf({q, 0})));
  const PascResult res = runPascChain(comm, stops);
  for (int i = 0; i < static_cast<int>(stops.size()); ++i)
    EXPECT_EQ(res.value[i], static_cast<std::uint64_t>(i));
}

TEST(PascChain, ChainOverTwoRowsUsesDistinctLanes) {
  // A zig-zag chain across a 2-row parallelogram (E, NE, W, NE, E ...).
  const auto s = shapes::parallelogram(4, 2);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  std::vector<int> stops;
  for (int q = 0; q < 4; ++q) stops.push_back(region.localOf(s.idOf({q, 0})));
  for (int q = 0; q < 4; ++q)
    stops.push_back(region.localOf(s.idOf({3 - q, 1})));
  const PascResult res = runPascChain(comm, stops);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(res.value[i], static_cast<std::uint64_t>(i));
}

class PascPrefixWeights
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(PascPrefixWeights, PrefixSumsAreExact) {
  const std::vector<int> weightInts = GetParam();
  const int m = static_cast<int>(weightInts.size());
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const auto stops = lineStops(s, region);
  std::vector<char> weight(weightInts.begin(), weightInts.end());
  const PascResult res = runPascPrefixSum(comm, stops, weight);
  std::uint64_t prefix = 0;
  for (int i = 0; i < m; ++i) {
    prefix += weightInts[i];
    EXPECT_EQ(res.value[i], prefix) << "stop " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, PascPrefixWeights,
    ::testing::Values(std::vector<int>{1, 1, 1, 1, 1},
                      std::vector<int>{0, 0, 0, 0, 0},
                      std::vector<int>{1, 0, 1, 0, 1, 0, 1},
                      std::vector<int>{0, 1, 1, 0, 0, 1, 0, 1, 1, 1},
                      std::vector<int>{1}, std::vector<int>{0},
                      std::vector<int>{0, 0, 0, 1},
                      std::vector<int>{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                                       1, 1, 1}));

TEST(PascPrefix, RoundsDependOnTotalWeightNotLength) {
  // Corollary 6: O(log W) rounds. A long chain with W = 1 needs exactly one
  // iteration.
  const int m = 300;
  const auto s = shapes::line(m);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  const auto stops = lineStops(s, region);
  std::vector<char> weight(m, 0);
  weight[m / 2] = 1;
  const PascResult res = runPascPrefixSum(comm, stops, weight);
  EXPECT_EQ(res.iterations, 1);
  for (int i = 0; i < m; ++i)
    EXPECT_EQ(res.value[i], static_cast<std::uint64_t>(i >= m / 2 ? 1 : 0));
}

TEST(PascForest, SingleTreeOnLine) {
  const auto s = shapes::line(9);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  std::vector<int> parent(region.size(), -2);
  // Root at west end, parent = west neighbor.
  for (int q = 0; q < 9; ++q) {
    const int u = region.localOf(s.idOf({q, 0}));
    parent[u] = q == 0 ? -1 : region.localOf(s.idOf({q - 1, 0}));
  }
  const TreePascResult res = runPascForest(comm, parent);
  for (int q = 0; q < 9; ++q)
    EXPECT_EQ(res.depth[region.localOf(s.idOf({q, 0}))],
              static_cast<std::uint64_t>(q));
}

TEST(PascForest, BranchingTreeDepths) {
  // BFS tree of a hexagon from its center: depth must equal BFS distance.
  const auto s = shapes::hexagon(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  const int center = region.localOf(s.idOf({0, 0}));
  const int src[] = {center};
  const auto dist = region.bfsDistancesLocal(src);
  std::vector<int> parent(region.size(), -2);
  parent[center] = -1;
  for (int u = 0; u < region.size(); ++u) {
    if (u == center) continue;
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && dist[v] == dist[u] - 1) {
        parent[u] = v;
        break;
      }
    }
  }
  const TreePascResult res = runPascForest(comm, parent);
  for (int u = 0; u < region.size(); ++u)
    EXPECT_EQ(res.depth[u], static_cast<std::uint64_t>(dist[u]));
  // Height of this tree is 3 -> 2 iterations; rounds = 2 * iterations.
  EXPECT_EQ(res.iterations, bitWidth(3));
  EXPECT_EQ(res.rounds, 2 * res.iterations);
}

TEST(PascForest, MultipleTreesRunInParallel) {
  // Two disjoint path trees on one line; distances per tree.
  const auto s = shapes::line(10);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  std::vector<int> parent(region.size(), -2);
  for (int q = 0; q < 5; ++q) {
    const int u = region.localOf(s.idOf({q, 0}));
    parent[u] = q == 0 ? -1 : region.localOf(s.idOf({q - 1, 0}));
  }
  for (int q = 5; q < 10; ++q) {
    const int u = region.localOf(s.idOf({q, 0}));
    parent[u] = q == 5 ? -1 : region.localOf(s.idOf({q - 1, 0}));
  }
  const TreePascResult res = runPascForest(comm, parent);
  for (int q = 0; q < 10; ++q)
    EXPECT_EQ(res.depth[region.localOf(s.idOf({q, 0}))],
              static_cast<std::uint64_t>(q % 5));
  // Parallel composition: rounds are driven by the tallest tree.
  EXPECT_EQ(res.iterations, bitWidth(4));
}

TEST(PascForest, NonMembersUntouched) {
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  std::vector<int> parent(region.size(), -2);
  for (int q = 0; q < 3; ++q) {
    const int u = region.localOf(s.idOf({q, 0}));
    parent[u] = q == 0 ? -1 : region.localOf(s.idOf({q - 1, 0}));
  }
  const TreePascResult res = runPascForest(comm, parent);
  for (int q = 3; q < 6; ++q)
    EXPECT_EQ(res.depth[region.localOf(s.idOf({q, 0}))], 0u);
}

}  // namespace
}  // namespace aspf

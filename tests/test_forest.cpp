// Full (k,l)-SPF tests (Theorem 56 / Corollary 57): the divide & conquer
// forest algorithm and the naive sequential baseline verified against the
// checker on randomized shapes, sources and destinations; round scaling.
#include <gtest/gtest.h>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "core/amoebot_spf.hpp"
#include "shapes/generators.hpp"
#include "spf/forest.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

struct Instance {
  std::vector<int> sources;
  std::vector<int> destinations;
  std::vector<char> isSource;
  std::vector<char> isDest;
};

Instance randomInstance(const Region& region, int k, int l,
                        std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.isSource.assign(region.size(), 0);
  inst.isDest.assign(region.size(), 0);
  while (static_cast<int>(inst.sources.size()) < k) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!inst.isSource[u]) {
      inst.isSource[u] = 1;
      inst.sources.push_back(u);
    }
  }
  while (static_cast<int>(inst.destinations.size()) < l) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!inst.isDest[u]) {
      inst.isDest[u] = 1;
      inst.destinations.push_back(u);
    }
  }
  return inst;
}

class ForestSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestSeeds, DivideAndConquerForestIsExact) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(100 + 10 * static_cast<int>(seed % 5), seed);
  const Region region = Region::whole(s);
  Rng rng(seed + 1);
  const int k = 2 + static_cast<int>(rng.below(6));
  const int l = 1 + static_cast<int>(rng.below(12));
  const Instance inst =
      randomInstance(region, std::min(k, region.size() / 2),
                     std::min(l, region.size() / 2), seed * 13);
  const ForestResult forest =
      shortestPathForest(region, inst.isSource, inst.isDest);
  const ForestCheck check = checkShortestPathForest(
      region, forest.parent, inst.sources, inst.destinations);
  EXPECT_TRUE(check.ok) << check.error << " seed=" << seed;
}

TEST_P(ForestSeeds, NaiveSequentialForestIsExact) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(80, seed + 90);
  const Region region = Region::whole(s);
  Rng rng(seed + 2);
  const int k = 2 + static_cast<int>(rng.below(4));
  const Instance inst = randomInstance(region, k, 6, seed * 17);
  const NaiveForestResult forest =
      naiveSequentialForest(region, inst.isSource, inst.isDest);
  const ForestCheck check = checkShortestPathForest(
      region, forest.parent, inst.sources, inst.destinations);
  EXPECT_TRUE(check.ok) << check.error << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

TEST(Forest, RegularShapesManySources) {
  for (const int k : {2, 4, 8, 16}) {
    const auto s = shapes::hexagon(8);
    const Region region = Region::whole(s);
    const Instance inst = randomInstance(region, k, 20, 1234 + k);
    const ForestResult forest =
        shortestPathForest(region, inst.isSource, inst.isDest);
    const ForestCheck check = checkShortestPathForest(
        region, forest.parent, inst.sources, inst.destinations);
    EXPECT_TRUE(check.ok) << check.error << " k=" << k;
  }
}

TEST(Forest, SourcesAndDestinationsMayCoincide) {
  const auto s = shapes::parallelogram(12, 6);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources{0, region.size() - 1};
  for (const int u : sources) isSource[u] = 1;
  // every source is also a destination
  std::vector<int> dests = sources;
  dests.push_back(region.size() / 2);
  for (const int u : dests) isDest[u] = 1;
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Forest, AllAmoebotsSources) {
  const auto s = shapes::hexagon(3);
  const Region region = Region::whole(s);
  std::vector<char> all(region.size(), 1);
  std::vector<int> allIds(region.size());
  for (int i = 0; i < region.size(); ++i) allIds[i] = i;
  const ForestResult forest = shortestPathForest(region, all, all);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, allIds, allIds);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Forest, ThrowsWithoutSources) {
  // k = 0 is not a valid (k,l)-SPF instance: both forest algorithms refuse
  // it up front; the beep-wave baseline degenerates to the empty forest.
  const auto s = shapes::line(5);
  const Region region = Region::whole(s);
  const std::vector<char> none(region.size(), 0), all(region.size(), 1);
  EXPECT_THROW(shortestPathForest(region, none, all), std::invalid_argument);
  EXPECT_THROW(naiveSequentialForest(region, none, all),
               std::invalid_argument);
  const BfsWaveResult wave = bfsWaveForest(region, {}, {});
  EXPECT_EQ(wave.rounds, 0);
  for (const int p : wave.parent) EXPECT_EQ(p, -2);
}

TEST(Forest, SingleAmoebot) {
  // n = 1, S = D = {0}: the forest is the trivial tree, zero rounds of
  // communication needed, and all three algorithms agree.
  const auto s = shapes::line(1);
  const Region region = Region::whole(s);
  const std::vector<char> one(1, 1);
  const std::vector<int> ids{0};

  const ForestResult forest = shortestPathForest(region, one, one);
  EXPECT_EQ(forest.parent, std::vector<int>{-1});
  EXPECT_EQ(forest.rounds, 0);
  EXPECT_TRUE(checkShortestPathForest(region, forest.parent, ids, ids).ok);

  const NaiveForestResult naive = naiveSequentialForest(region, one, one);
  EXPECT_EQ(naive.parent, std::vector<int>{-1});

  const BfsWaveResult wave = bfsWaveForest(region, ids, ids);
  EXPECT_EQ(wave.parent, std::vector<int>{-1});
}

TEST(Forest, AllSourcesAgreeAcrossAlgorithms) {
  // S = D = X: every amoebot is its own root; the forest is k singleton
  // trees whatever the algorithm.
  const auto s = shapes::hexagon(3);
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  std::vector<int> allIds(region.size());
  for (int i = 0; i < region.size(); ++i) allIds[i] = i;

  const ForestResult forest = shortestPathForest(region, all, all);
  const NaiveForestResult naive = naiveSequentialForest(region, all, all);
  const BfsWaveResult wave = bfsWaveForest(region, allIds, allIds);
  for (int u = 0; u < region.size(); ++u) {
    EXPECT_EQ(forest.parent[u], -1) << "node " << u;
    EXPECT_EQ(naive.parent[u], -1) << "node " << u;
    EXPECT_EQ(wave.parent[u], -1) << "node " << u;
  }
}

TEST(Forest, RejectsDisconnectedRegion) {
  // A region whose induced subgraph is disconnected is rejected up front
  // (previously this surfaced as an internal SPT failure mid-protocol).
  const auto s = shapes::line(10);
  const Region region = Region::of(s, {0, 1, 2, 7, 8, 9});
  ASSERT_FALSE(region.isConnectedInduced());
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  isSource[0] = 1;
  isDest[region.size() - 1] = 1;
  EXPECT_THROW(shortestPathForest(region, isSource, isDest),
               std::invalid_argument);
  EXPECT_THROW(naiveSequentialForest(region, isSource, isDest),
               std::invalid_argument);
}

TEST(Forest, ScatteredDestinationSet) {
  // A destination set that is itself disconnected (isolated far-apart
  // corners) is a perfectly valid instance: D never needs to be connected.
  const auto s = shapes::parallelogram(14, 5);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  const std::vector<int> sources{region.localOf(s.idOf({7, 2}))};
  const std::vector<int> dests{
      region.localOf(s.idOf({0, 0})), region.localOf(s.idOf({13, 0})),
      region.localOf(s.idOf({0, 4})), region.localOf(s.idOf({13, 4}))};
  for (const int u : sources) isSource[u] = 1;
  for (const int u : dests) isDest[u] = 1;
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Forest, PublicApiFacade) {
  const auto s = shapes::hexagon(6);
  const Spf spf(s);
  const int a = s.idOf({-6, 0}), b = s.idOf({6, 0}), c = s.idOf({0, 6});
  const std::vector<int> sources{a, b};
  const std::vector<int> dests{c};
  const SpfSolution sol = spf.solve(sources, dests);
  EXPECT_TRUE(spf.verify(sol, sources, dests).ok);
  EXPECT_GT(sol.rounds, 0);

  const SpfSolution single = spf.sssp(a);
  std::vector<int> allIds(s.size());
  for (int i = 0; i < s.size(); ++i) allIds[i] = i;
  EXPECT_TRUE(spf.verify(single, {{a}}, allIds).ok);

  const SpfSolution pair = spf.spsp(a, b);
  EXPECT_TRUE(spf.verify(pair, {{a}}, {{b}}).ok);
  EXPECT_LT(pair.rounds, single.rounds);
}

TEST(Forest, RejectsStructuresWithHoles) {
  const auto hex = shapes::hexagon(2);
  std::vector<Coord> ring;
  for (const Coord c : hex.coords()) {
    if (std::max({std::abs(c.q), std::abs(c.r), std::abs(c.q + c.r)}) == 2)
      ring.push_back(c);
  }
  const auto holey = AmoebotStructure::fromCoords(std::move(ring));
  EXPECT_THROW(Spf{holey}, std::invalid_argument);
}

TEST(Forest, RoundScalingInK) {
  // Theorem 56: rounds grow like log n log^2 k -- in particular they must
  // grow far slower than linearly in k (the naive bound).
  const auto s = shapes::hexagon(10);
  const Region region = Region::whole(s);
  std::vector<long> rounds;
  for (const int k : {2, 8, 32}) {
    const Instance inst = randomInstance(region, k, 10, 777 + k);
    const ForestResult forest =
        shortestPathForest(region, inst.isSource, inst.isDest);
    const ForestCheck check = checkShortestPathForest(
        region, forest.parent, inst.sources, inst.destinations);
    ASSERT_TRUE(check.ok) << check.error;
    rounds.push_back(forest.rounds);
  }
  // k grew by 16x; polylog growth must stay well under 8x.
  EXPECT_LT(rounds[2], rounds[0] * 8);
}

}  // namespace
}  // namespace aspf

// Full-tier serving stress: ONE production-scale structure (the huge
// suite's parallelogram500x200_k8_l16_s1, n = 100k) serving >= 1000
// queries, every warm solve checked bit-for-bit against the cold
// from-scratch oracle. Wave-only and checker-off to keep the runtime in
// minutes -- the differential oracle (warm == cold per query) stays on and
// IS the correctness property here; the five-property checker already
// covers this scenario in the huge suite. This is the acceptance bound for
// the query-serving tier: a session this long exercises ~1000 consecutive
// clearPending / resetPins cycles on one persistent substrate, where any
// leaked pin-partition or received() state would compound and diverge.
#include <gtest/gtest.h>

#include "scenario/serve.hpp"

namespace aspf::scenario {
namespace {

TEST(ServeStress, ThousandQueriesOnHundredThousandCells) {
  const Scenario scenario = make(Shape::Parallelogram, 500, 200, 8, 16, 1);
  ServeSpec spec;
  spec.queries = 1000;
  spec.seed = 7;
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  options.check = false;  // the warm-vs-cold oracle is the property
  options.algos = {Algo::Wave};
  const BenchReport report =
      runServeBatch("serve-stress", {scenario}, spec, options);
  ASSERT_EQ(report.serving.size(), 1u);
  const ServingReport& sv = report.serving[0];
  EXPECT_GE(sv.n, 100000);
  EXPECT_EQ(sv.queries, 1000);
  ASSERT_EQ(sv.runs.size(), 1u);
  const ServeRun& run = sv.runs[0];
  EXPECT_TRUE(run.error.empty()) << run.error;
  EXPECT_TRUE(run.warmMatchesCold);
  EXPECT_EQ(run.queriesOk, 1000);
  // The point of serving warm: the persistent substrate's circuits settle
  // while the cold oracle re-merges ~n pin sets per query.
  EXPECT_GT(run.coldUnions, 0);
  EXPECT_LT(run.warmUnions * 100, run.coldUnions);
}

}  // namespace
}  // namespace aspf::scenario

// Round-scaling conformance: pins the *asymptotic shape* of each
// algorithm's round count on deterministic instance families, so a
// regression that silently degrades the polylog behaviour (the paper's
// whole point) fails loudly even while the forests stay correct.
//
//   - polylog forest (Theorem 56): O(log n log^2 k) -- must grow
//     additively-logarithmically along a line family and sublinearly in k;
//   - beep-wave baseline: Theta(eccentricity(S)) -- the information-flow
//     lower bound without long-range circuits;
//   - naive sequential baseline: O(k log n) -- linear in k.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/bfs_wave.hpp"
#include "baselines/naive_forest.hpp"
#include "shapes/generators.hpp"
#include "spf/forest.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

struct LineRun {
  long polylog = 0;
  long wave = 0;
  int ecc = 0;
};

LineRun runLine(int n) {
  const auto s = shapes::line(n);
  const Region region = Region::whole(s);
  std::vector<char> isSource(n, 0), isDest(n, 0);
  const std::vector<int> sources{0, n / 3};
  const std::vector<int> dests{n - 1, n / 2};
  for (const int u : sources) isSource[u] = 1;
  for (const int u : dests) isDest[u] = 1;
  LineRun run;
  run.polylog = shortestPathForest(region, isSource, isDest).rounds;
  run.wave = bfsWaveForest(region, sources, dests).rounds;
  const std::vector<int> dist = region.bfsDistancesLocal(sources);
  run.ecc = *std::max_element(dist.begin(), dist.end());
  return run;
}

TEST(RoundBounds, PolylogIsLogarithmicOnLineFamily) {
  // Doubling n three times adds O(1) * log-factor rounds to the polylog
  // algorithm while the wave baseline doubles each time.
  const LineRun small = runLine(128);
  const LineRun large = runLine(1024);
  // 3 doublings: each may add a constant number of rounds per log-level.
  EXPECT_LE(large.polylog, small.polylog + 32)
      << "polylog rounds jumped from " << small.polylog << " (n=128) to "
      << large.polylog << " (n=1024): no longer logarithmic in n";
  EXPECT_GE(large.wave, 2 * small.wave)
      << "wave baseline stopped paying the diameter -- accounting broken?";
}

TEST(RoundBounds, PolylogBeatsWaveOnHighDiameterInstances) {
  // The exponential separation the paper claims, visible at n = 1024:
  // the circuit algorithm needs ~50 rounds where the wave needs ~1400.
  const LineRun run = runLine(1024);
  EXPECT_GT(run.wave, 8 * run.polylog)
      << "wave=" << run.wave << " polylog=" << run.polylog;
}

TEST(RoundBounds, WaveTracksEccentricity) {
  // The baseline is honest: wave + convergecast prune cost between ecc(S)
  // and 2 * ecc(S) + O(1) rounds.
  for (const int n : {128, 256, 512}) {
    const LineRun run = runLine(n);
    EXPECT_GE(run.wave, run.ecc) << "n=" << n;
    EXPECT_LE(run.wave, 2 * run.ecc + 8) << "n=" << n;
  }
}

TEST(RoundBounds, NaiveLinearInKPolylogSublinear) {
  // On a hexagon, grow k by 8x: the naive sequential baseline (one SPT +
  // merge per source) must scale ~linearly; the divide & conquer algorithm
  // far slower. Instances are seeded and nested (k=2 sources are a subset
  // of the k=16 sources).
  const auto s = shapes::hexagon(8);
  const Region region = Region::whole(s);
  std::vector<int> sourcePool;
  {
    Rng rng(99);
    std::vector<char> seen(region.size(), 0);
    while (static_cast<int>(sourcePool.size()) < 16) {
      const int u = static_cast<int>(rng.below(region.size()));
      if (!seen[u]) {
        seen[u] = 1;
        sourcePool.push_back(u);
      }
    }
  }
  auto runAt = [&](int k) {
    std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
    for (int i = 0; i < k; ++i) isSource[sourcePool[i]] = 1;
    isDest[0] = 1;
    return std::pair<long, long>{
        naiveSequentialForest(region, isSource, isDest).rounds,
        shortestPathForest(region, isSource, isDest).rounds};
  };
  const auto [naive2, poly2] = runAt(2);
  const auto [naive16, poly16] = runAt(16);
  EXPECT_GE(naive16, 6 * naive2)
      << "naive should pay ~8x for 8x the sources (k log n)";
  EXPECT_LE(poly16, 4 * poly2)
      << "polylog rounds grew near-linearly in k: log^2 k regression";
  EXPECT_LT(poly16, naive16)
      << "divide & conquer lost to the naive baseline at k=16";
}

}  // namespace
}  // namespace aspf

#pragma once
// Deterministic scenario matrix for the cross-algorithm conformance suite.
//
// Since PR 2 the scenario vocabulary lives in the library
// (src/scenario/): Scenario, shape construction, seeded S/D placement and
// the named suite registry are shared by this suite, the benches and the
// `aspf-run` CLI. This header only aliases the library types under the
// historical aspf::conformance names; the matrix itself is the registry's
// frozen "conformance" suite, bit-identical to the PR-1 instances (same
// names, same seed derivation, same placement order).
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace aspf::conformance {

using scenario::Scenario;
using scenario::ScenarioInstance;
using scenario::Shape;
using scenario::buildShape;
using scenario::placeSourcesAndDests;

/// The sweep: every shape family x a spread of (k,l) configurations x
/// seeds -- {8 shapes x 4 (k,l) x 2 seeds} = 64 scenarios, fully pinned by
/// name so a failing scenario can be replayed exactly (also via
/// `aspf-run --scenario <name>`).
inline std::vector<Scenario> scenarioMatrix() {
  return scenario::conformanceMatrix();
}

}  // namespace aspf::conformance

#pragma once
// Deterministic scenario matrix for the cross-algorithm conformance suite.
//
// A Scenario pins down one (shape, k, l, seed) instance completely: the
// structure is rebuilt from the named generator, and sources/destinations
// are placed with the seeded library Rng (xoshiro256**), so every run on
// every platform sees bit-identical instances. The conformance test sweeps
// the matrix and requires the polylog forest (Theorem 56), the beep-wave
// BFS baseline and the naive sequential baseline to agree.
#include <cstdint>
#include <string>
#include <vector>

#include "shapes/generators.hpp"
#include "sim/region.hpp"
#include "util/rng.hpp"

namespace aspf::conformance {

enum class Shape {
  Parallelogram,  // a x b
  Triangle,       // side a
  Hexagon,        // radius a
  Line,           // a amoebots
  Comb,           // a teeth of length b (adversarial portals)
  Staircase,      // a steps of size b (portal-heavy)
  RandomBlob,     // ~a amoebots, grown with the scenario seed
  RandomSpider,   // a arms of length b, thin high-diameter instance
};

struct Scenario {
  std::string name;        // stable id; doubles as the gtest param name
  Shape shape;
  int a = 0;               // first shape parameter (see Shape)
  int b = 0;               // second shape parameter (unused for some shapes)
  int k = 1;               // requested |S| (clamped to n)
  int l = 1;               // requested |D| (clamped to n)
  std::uint64_t seed = 0;  // drives random shapes and S/D placement
};

inline AmoebotStructure buildShape(const Scenario& sc) {
  switch (sc.shape) {
    case Shape::Parallelogram:
      return shapes::parallelogram(sc.a, sc.b);
    case Shape::Triangle:
      return shapes::triangle(sc.a);
    case Shape::Hexagon:
      return shapes::hexagon(sc.a);
    case Shape::Line:
      return shapes::line(sc.a);
    case Shape::Comb:
      return shapes::comb(sc.a, sc.b);
    case Shape::Staircase:
      return shapes::staircase(sc.a, sc.b);
    case Shape::RandomBlob:
      return shapes::randomBlob(sc.a, sc.seed);
    case Shape::RandomSpider:
      return shapes::randomSpider(sc.a, sc.b, sc.seed);
  }
  return shapes::line(1);  // unreachable
}

struct ScenarioInstance {
  std::vector<int> sources;
  std::vector<int> destinations;
  std::vector<char> isSource;
  std::vector<char> isDest;
};

/// Seeded placement: k distinct sources, l distinct destinations (the two
/// sets may overlap, which the SPF definition permits). Counts are clamped
/// to the region size so small shapes stay valid instances.
inline ScenarioInstance placeSourcesAndDests(const Region& region,
                                             const Scenario& sc) {
  Rng rng(sc.seed * 0x9E3779B97F4A7C15ULL + 0xA5A5A5A5ULL);
  ScenarioInstance inst;
  const int n = region.size();
  const int k = std::min(sc.k, n);
  const int l = std::min(sc.l, n);
  inst.isSource.assign(n, 0);
  inst.isDest.assign(n, 0);
  while (static_cast<int>(inst.sources.size()) < k) {
    const int u = static_cast<int>(rng.below(n));
    if (!inst.isSource[u]) {
      inst.isSource[u] = 1;
      inst.sources.push_back(u);
    }
  }
  while (static_cast<int>(inst.destinations.size()) < l) {
    const int u = static_cast<int>(rng.below(n));
    if (!inst.isDest[u]) {
      inst.isDest[u] = 1;
      inst.destinations.push_back(u);
    }
  }
  return inst;
}

/// The sweep: every shape family x a spread of (k,l) configurations x
/// seeds. Kept deliberately explicit (no runtime randomness in the matrix
/// itself) so a failing scenario can be named and replayed exactly.
inline std::vector<Scenario> scenarioMatrix() {
  struct ShapeSpec {
    const char* tag;
    Shape shape;
    int a, b;
  };
  // n is ~100-180 per shape: large enough for nontrivial portal trees and
  // region merging, small enough that the full sweep stays in CI budget.
  const ShapeSpec shapeSpecs[] = {
      {"parallelogram16x8", Shape::Parallelogram, 16, 8},
      {"triangle14", Shape::Triangle, 14, 0},
      {"hexagon6", Shape::Hexagon, 6, 0},
      {"line96", Shape::Line, 96, 0},
      {"comb10x8", Shape::Comb, 10, 8},
      {"staircase8x4", Shape::Staircase, 8, 4},
      {"blob140", Shape::RandomBlob, 140, 0},
      {"spider4x18", Shape::RandomSpider, 4, 18},
  };
  struct KlSpec {
    int k, l;
  };
  // From SSSP-ish (k=1) through the many-source regime where the divide &
  // conquer depth (log^2 k factor) is actually exercised.
  const KlSpec klSpecs[] = {{1, 6}, {2, 8}, {5, 12}, {12, 20}};
  const std::uint64_t seeds[] = {1, 2};

  std::vector<Scenario> matrix;
  for (const auto& ss : shapeSpecs) {
    for (const auto& kl : klSpecs) {
      for (const std::uint64_t seed : seeds) {
        Scenario sc;
        sc.name = std::string(ss.tag) + "_k" + std::to_string(kl.k) + "_l" +
                  std::to_string(kl.l) + "_s" + std::to_string(seed);
        sc.shape = ss.shape;
        sc.a = ss.a;
        sc.b = ss.b;
        sc.k = kl.k;
        sc.l = kl.l;
        sc.seed = seed;
        matrix.push_back(sc);
      }
    }
  }
  return matrix;
}

}  // namespace aspf::conformance

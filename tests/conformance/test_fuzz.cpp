// Property-based fuzz conformance tier: the registry's `fuzz` suite -- 32
// seeded pure-accretion blobs (shapes::fuzzBlob) with swept (k, l) -- run
// through all three SPF algorithms. Unlike the hand-designed conformance
// families, these regions have no structural bias: boundary outlines,
// portal trees and region splits are whatever accretion produced for the
// seed, which is the point. Every instance must
//   (a) pass the five-property forest checker under every algorithm,
//   (b) be distance-identical across algorithms (every destination at its
//       exact BFS distance in every forest), and
//   (c) replay bit-identically from the scenario name alone.
// The generator itself is pinned too: exact size, connectivity,
// hole-freeness at every seed, and per-seed distinctness.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "scenario/registry.hpp"
#include "shapes/generators.hpp"
#include "spf/forest.hpp"

namespace aspf {
namespace {

using scenario::BuiltScenario;
using scenario::Scenario;

/// Tree-path length from u to its root, or -1 if u is outside the forest.
int forestDepth(const std::vector<int>& parent, int u) {
  if (parent[u] == -2) return -1;
  int depth = 0;
  int cur = u;
  const int n = static_cast<int>(parent.size());
  while (parent[cur] >= 0 && depth <= n) {
    cur = parent[cur];
    ++depth;
  }
  return depth;
}

std::vector<Scenario> fuzzScenarios() {
  const scenario::Suite* suite = scenario::findSuite("fuzz");
  if (!suite) return {};
  return suite->scenarios;
}

class FuzzConformance : public ::testing::TestWithParam<Scenario> {};

TEST_P(FuzzConformance, AllAlgorithmsValidAndDistanceIdentical) {
  const Scenario& sc = GetParam();
  const BuiltScenario built(sc);
  const Region& region = built.region();
  const auto& inst = built.instance();
  const int n = region.size();

  // Generator contract: exact size (pure accretion, no hole filling).
  EXPECT_EQ(n, sc.a);
  EXPECT_TRUE(built.structure().isConnected());
  EXPECT_TRUE(built.structure().isHoleFree());

  const std::vector<int> dist = region.bfsDistancesLocal(inst.sources);

  const ForestResult polylog =
      shortestPathForest(region, inst.isSource, inst.isDest);
  const BfsWaveResult wave =
      bfsWaveForest(region, inst.sources, inst.destinations);
  const NaiveForestResult naive =
      naiveSequentialForest(region, inst.isSource, inst.isDest);

  for (const auto& [tag, parent] :
       {std::pair<const char*, const std::vector<int>*>{"polylog",
                                                        &polylog.parent},
        {"wave", &wave.parent},
        {"naive", &naive.parent}}) {
    const ForestCheck check = checkShortestPathForest(
        region, *parent, inst.sources, inst.destinations);
    EXPECT_TRUE(check.ok) << tag << ": " << check.error;
    for (const int t : inst.destinations) {
      EXPECT_EQ(forestDepth(*parent, t), dist[t])
          << tag << " detours destination " << t;
    }
  }
}

TEST_P(FuzzConformance, DeterministicReplay) {
  const Scenario& sc = GetParam();
  const BuiltScenario a(sc);
  const BuiltScenario b(sc);
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.structure().coords(), b.structure().coords());
  ASSERT_EQ(a.instance().sources, b.instance().sources);
  ASSERT_EQ(a.instance().destinations, b.instance().destinations);

  const ForestResult ra =
      shortestPathForest(a.region(), a.instance().isSource,
                         a.instance().isDest);
  const ForestResult rb =
      shortestPathForest(b.region(), b.instance().isSource,
                         b.instance().isDest);
  EXPECT_EQ(ra.parent, rb.parent);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Blobs, FuzzConformance, ::testing::ValuesIn(fuzzScenarios()),
    [](const ::testing::TestParamInfo<Scenario>& paramInfo) {
      return paramInfo.param.name;
    });

TEST(FuzzBlobGenerator, SeedsProduceDistinctDeterministicStructures) {
  std::set<std::vector<Coord>> outlines;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AmoebotStructure s1 = shapes::fuzzBlob(150, seed);
    const AmoebotStructure s2 = shapes::fuzzBlob(150, seed);
    EXPECT_EQ(s1.coords(), s2.coords()) << "seed " << seed;
    EXPECT_EQ(s1.size(), 150);
    EXPECT_TRUE(s1.isConnected());
    EXPECT_TRUE(s1.isHoleFree());
    outlines.insert(s1.coords());
  }
  EXPECT_EQ(outlines.size(), 8u) << "seeds must differentiate the growth";
}

TEST(FuzzBlobGenerator, RejectsNonPositiveSize) {
  EXPECT_THROW(shapes::fuzzBlob(0, 1), std::invalid_argument);
  EXPECT_EQ(shapes::fuzzBlob(1, 1).size(), 1);
}

TEST(FuzzBlobGenerator, DiffersFromRandomBlob) {
  // Decorrelated streams: same (size, seed) must not mirror randomBlob's
  // growth (the whole point of a second generator is a second opinion).
  const AmoebotStructure fuzz = shapes::fuzzBlob(150, 3);
  const AmoebotStructure blob = shapes::randomBlob(150, 3);
  EXPECT_NE(fuzz.coords(), blob.coords());
}

}  // namespace
}  // namespace aspf

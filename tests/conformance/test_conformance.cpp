// Cross-algorithm conformance suite: for every scenario in the deterministic
// {shape x (k,l) x seed} matrix, the polylog divide & conquer forest
// (Theorem 56), the beep-wave BFS baseline and the naive sequential baseline
// must all
//   (a) pass the five-property forest checker,
//   (b) route every destination over a path of exactly the BFS distance to
//       its closest source (so all three are *distance-identical*), and
//   (c) stay inside their round bounds -- the polylog algorithm inside
//       C * log n * log^2 k, far below the Omega(diameter) wave baseline.
// Scenarios are fully pinned by their name, so any failure is replayable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "conformance/scenario_matrix.hpp"
#include "spf/forest.hpp"
#include "util/bitstream.hpp"

namespace aspf {
namespace {

using conformance::Scenario;
using conformance::ScenarioInstance;

/// Tree-path length from u to its root, or -1 if u is outside the forest.
/// Walks at most n parent pointers, so a (checker-detected) cycle cannot
/// hang the suite.
int forestDepth(const std::vector<int>& parent, int u) {
  if (parent[u] == -2) return -1;
  int depth = 0;
  int cur = u;
  const int n = static_cast<int>(parent.size());
  while (parent[cur] >= 0 && depth <= n) {
    cur = parent[cur];
    ++depth;
  }
  return depth;
}

class Conformance : public ::testing::TestWithParam<Scenario> {};

TEST_P(Conformance, AllAlgorithmsAgree) {
  const Scenario& sc = GetParam();
  const AmoebotStructure s = conformance::buildShape(sc);
  const Region region = Region::whole(s);
  const ScenarioInstance inst = conformance::placeSourcesAndDests(region, sc);
  const int n = region.size();
  const int k = static_cast<int>(inst.sources.size());

  const std::vector<int> dist = region.bfsDistancesLocal(inst.sources);

  // --- Run all three algorithms on the identical instance.
  const ForestResult polylog =
      shortestPathForest(region, inst.isSource, inst.isDest);
  const BfsWaveResult wave =
      bfsWaveForest(region, inst.sources, inst.destinations);
  const NaiveForestResult naive =
      naiveSequentialForest(region, inst.isSource, inst.isDest);

  // --- (a) Checker validity for each algorithm.
  const ForestCheck polylogCheck = checkShortestPathForest(
      region, polylog.parent, inst.sources, inst.destinations);
  EXPECT_TRUE(polylogCheck.ok) << "polylog: " << polylogCheck.error;
  const ForestCheck waveCheck = checkShortestPathForest(
      region, wave.parent, inst.sources, inst.destinations);
  EXPECT_TRUE(waveCheck.ok) << "bfs_wave: " << waveCheck.error;
  const ForestCheck naiveCheck = checkShortestPathForest(
      region, naive.parent, inst.sources, inst.destinations);
  EXPECT_TRUE(naiveCheck.ok) << "naive: " << naiveCheck.error;

  // --- (b) Distance-identical: every destination sits at its exact BFS
  // distance in all three forests, and every forest member (not just the
  // destinations) is routed over a shortest path.
  for (const int t : inst.destinations) {
    EXPECT_EQ(forestDepth(polylog.parent, t), dist[t])
        << "polylog detours destination " << t;
    EXPECT_EQ(forestDepth(wave.parent, t), dist[t])
        << "bfs_wave detours destination " << t;
    EXPECT_EQ(forestDepth(naive.parent, t), dist[t])
        << "naive detours destination " << t;
  }
  for (int u = 0; u < n; ++u) {
    for (const std::vector<int>* parent :
         {&polylog.parent, &wave.parent, &naive.parent}) {
      const int depth = forestDepth(*parent, u);
      if (depth >= 0) {
        EXPECT_EQ(depth, dist[u]) << "node " << u;
      }
    }
  }

  // --- (c) Round accounting. Theorem 56: O(log n log^2 k). The constant
  // is calibrated against the simulator's measured per-phase charges; a
  // regression that breaks the asymptotic shape trips this long before the
  // constant itself is in doubt.
  const long logN = bitWidth(static_cast<std::uint64_t>(n));
  const long logK = bitWidth(static_cast<std::uint64_t>(k));
  // Calibrated: the matrix's worst case measures ~11 * log n log^2 k
  // (spider/comb shapes at k=2), so 30 leaves ~2.5x headroom.
  const long polylogBound = 30 * logN * logK * logK + 60;
  EXPECT_LE(polylog.rounds, polylogBound)
      << "polylog rounds " << polylog.rounds << " exceed C log n log^2 k = "
      << polylogBound << " (n=" << n << ", k=" << k << ")";
  RecordProperty("n", n);
  RecordProperty("k", k);
  RecordProperty("polylog_rounds", static_cast<int>(polylog.rounds));
  RecordProperty("wave_rounds", static_cast<int>(wave.rounds));
  RecordProperty("naive_rounds", static_cast<int>(naive.rounds));
  RecordProperty("polylog_bound", static_cast<int>(polylogBound));

  // The wave baseline pays at least the eccentricity of S: information has
  // to physically travel. (Sanity check that the baseline is honest.)
  const int ecc = *std::max_element(dist.begin(), dist.end());
  EXPECT_GE(wave.rounds, ecc);
}

TEST_P(Conformance, DeterministicReplay) {
  // The whole pipeline is seeded: rebuilding the scenario and re-running
  // the polylog algorithm must reproduce the identical forest and round
  // count. This is the bit-replayability contract the harness rests on.
  const Scenario& sc = GetParam();
  const AmoebotStructure s1 = conformance::buildShape(sc);
  const AmoebotStructure s2 = conformance::buildShape(sc);
  ASSERT_EQ(s1.size(), s2.size());
  const Region r1 = Region::whole(s1);
  const Region r2 = Region::whole(s2);
  const ScenarioInstance i1 = conformance::placeSourcesAndDests(r1, sc);
  const ScenarioInstance i2 = conformance::placeSourcesAndDests(r2, sc);
  ASSERT_EQ(i1.sources, i2.sources);
  ASSERT_EQ(i1.destinations, i2.destinations);

  const ForestResult a = shortestPathForest(r1, i1.isSource, i1.isDest);
  const ForestResult b = shortestPathForest(r2, i2.isSource, i2.isDest);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.rounds, b.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Conformance, ::testing::ValuesIn(conformance::scenarioMatrix()),
    [](const ::testing::TestParamInfo<Scenario>& paramInfo) {
      return paramInfo.param.name;
    });

}  // namespace
}  // namespace aspf

// Hole detection tests (library extension; the paper's algorithms require
// hole-freeness and its conclusion leaves holes as future work): the
// boundary-circuit construction must produce exactly one circuit for
// hole-free structures and one extra circuit per hole, and the O(1)-round
// protocol must classify structures correctly across shapes and seeds.
#include <gtest/gtest.h>

#include <unordered_set>

#include "shapes/generators.hpp"
#include "topology/hole_detection.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

AmoebotStructure withHoles(int width, int height,
                           const std::vector<Coord>& holes) {
  std::vector<Coord> coords;
  std::unordered_set<Coord, CoordHash> banned(holes.begin(), holes.end());
  for (int r = 0; r < height; ++r) {
    for (int q = 0; q < width; ++q) {
      if (!banned.contains({q, r})) coords.push_back({q, r});
    }
  }
  return AmoebotStructure::fromCoords(std::move(coords));
}

TEST(HoleDetection, HoleFreeShapesPass) {
  const AmoebotStructure shapes[] = {
      shapes::parallelogram(8, 5), shapes::triangle(7), shapes::hexagon(4),
      shapes::comb(4, 5, 2),       shapes::line(12),    shapes::staircase(3, 4),
  };
  for (const auto& s : shapes) {
    const Region region = Region::whole(s);
    const HoleDetectionResult res = detectHoles(region);
    EXPECT_TRUE(res.holeFree) << "n=" << s.size();
    EXPECT_EQ(res.boundaryCircuits, 1);
    EXPECT_TRUE(res.holeWitnesses.empty());
    EXPECT_LE(res.rounds, 2);
  }
}

TEST(HoleDetection, SingleHoleDetected) {
  const auto s = withHoles(7, 7, {{3, 3}});
  ASSERT_TRUE(s.isConnected());
  ASSERT_FALSE(s.isHoleFree());
  const Region region = Region::whole(s);
  const HoleDetectionResult res = detectHoles(region);
  EXPECT_FALSE(res.holeFree);
  EXPECT_EQ(res.boundaryCircuits, 2);
  EXPECT_FALSE(res.holeWitnesses.empty());
  // Every witness must be adjacent to the hole cell.
  for (const int u : res.holeWitnesses)
    EXPECT_EQ(gridDistance(region.coordOf(u), {3, 3}), 1);
}

TEST(HoleDetection, MultipleHolesCounted) {
  const auto s = withHoles(11, 7, {{2, 3}, {5, 3}, {8, 3}});
  ASSERT_FALSE(s.isHoleFree());
  const Region region = Region::whole(s);
  const HoleDetectionResult res = detectHoles(region);
  EXPECT_FALSE(res.holeFree);
  EXPECT_EQ(res.boundaryCircuits, 4);  // outer + 3 holes
}

TEST(HoleDetection, BigHole) {
  // A 2x2-ish cavity.
  const auto s = withHoles(9, 8, {{3, 3}, {4, 3}, {3, 4}, {4, 4}});
  ASSERT_FALSE(s.isHoleFree());
  const HoleDetectionResult res = detectHoles(Region::whole(s));
  EXPECT_FALSE(res.holeFree);
  EXPECT_EQ(res.boundaryCircuits, 2);
}

TEST(HoleDetection, AgreesWithCentralizedCheckOnRandomStructures) {
  // Random growth *without* hole filling: some seeds produce holes, some do
  // not; the distributed detector must agree with the centralized check.
  Rng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    // Random connected structure: random growth.
    std::unordered_set<Coord, CoordHash> set{{0, 0}};
    std::vector<Coord> frontier{{0, 0}};
    const int target = 40 + static_cast<int>(rng.below(60));
    while (static_cast<int>(set.size()) < target) {
      const Coord base = frontier[rng.below(frontier.size())];
      const Coord next =
          base.neighbor(static_cast<Dir>(rng.below(6)));
      if (set.insert(next).second) frontier.push_back(next);
    }
    // aspf-lint: allow(unordered-iter) drained into a vector and sorted
    // on the next line; order-independent
    std::vector<Coord> coords(set.begin(), set.end());
    std::sort(coords.begin(), coords.end());
    const auto s = AmoebotStructure::fromCoords(std::move(coords));
    const Region region = Region::whole(s);
    const HoleDetectionResult res = detectHoles(region);
    EXPECT_EQ(res.holeFree, s.isHoleFree()) << "trial " << trial;
    EXPECT_EQ(res.holeFree, res.boundaryCircuits <= 1);
  }
}

TEST(HoleDetection, BoundaryWiringLocalRule) {
  // Interior amoebots form no boundary sets; corner amoebots of a line
  // form exactly one (wrap-around); middle line amoebots form two (north
  // and south sides).
  const auto hexS = shapes::hexagon(2);
  const Region hexRegion = Region::whole(hexS);
  const int center = hexRegion.localOf(hexS.idOf({0, 0}));
  EXPECT_TRUE(boundaryPartitionSets(hexRegion, center).empty());

  const auto lineS = shapes::line(5);
  const Region lineRegion = Region::whole(lineS);
  EXPECT_EQ(boundaryPartitionSets(lineRegion, 0).size(), 1u);
  const int mid = lineRegion.localOf(lineS.idOf({2, 0}));
  EXPECT_EQ(boundaryPartitionSets(lineRegion, mid).size(), 2u);
}

TEST(HoleDetection, SingleAmoebotTrivial) {
  const auto s = shapes::line(1);
  const HoleDetectionResult res = detectHoles(Region::whole(s));
  EXPECT_TRUE(res.holeFree);
}

}  // namespace
}  // namespace aspf

// Public facade + failure-injection tests: input validation across the
// library (holes, disconnection, empty sets, malformed chains/weights) and
// end-to-end API behavior including the axis-parameterized forest.
#include <gtest/gtest.h>

#include "baselines/naive_forest.hpp"
#include "core/amoebot_spf.hpp"
#include "pasc/pasc_chain.hpp"
#include "pasc/pasc_prefix.hpp"
#include "spf/forest.hpp"
#include "spf/line_algorithm.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

TEST(Api, RejectsDisconnectedStructures) {
  const auto s = AmoebotStructure::fromCoords({{0, 0}, {3, 0}});
  EXPECT_THROW(Spf{s}, std::invalid_argument);
}

TEST(Api, RejectsHoles) {
  // Hexagonal ring of radius 1 around an empty center... radius-1 ring
  // encloses exactly the origin.
  std::vector<Coord> ring;
  for (Dir d : kAllDirs) ring.push_back(Coord{0, 0}.neighbor(d));
  const auto s = AmoebotStructure::fromCoords(std::move(ring));
  ASSERT_TRUE(s.isConnected());
  ASSERT_FALSE(s.isHoleFree());
  EXPECT_THROW(Spf{s}, std::invalid_argument);
}

TEST(Api, SolveOnSingleAmoebot) {
  const auto s = shapes::line(1);
  const Spf spf(s);
  const SpfSolution sol = spf.solve({{0}}, {{0}});
  EXPECT_EQ(sol.parent[0], -1);
  EXPECT_TRUE(spf.verify(sol, {{0}}, {{0}}).ok);
}

TEST(Api, ForestRequiresSources) {
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  const std::vector<char> none(region.size(), 0);
  const std::vector<char> all(region.size(), 1);
  EXPECT_THROW(shortestPathForest(region, none, all), std::invalid_argument);
  EXPECT_THROW(naiveSequentialForest(region, none, all),
               std::invalid_argument);
}

TEST(Api, LineAlgorithmValidatesInput) {
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  std::vector<int> chain{0, 1, 2, 3, 4, 5};
  const std::vector<char> noSources(6, 0);
  EXPECT_THROW(lineSpf(region, chain, noSources), std::invalid_argument);
  const std::vector<char> wrongSize(3, 1);
  EXPECT_THROW(lineSpf(region, chain, wrongSize), std::invalid_argument);
}

TEST(Api, PascValidatesChains) {
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  // Non-adjacent consecutive stops.
  const int stops[] = {0, 3};
  EXPECT_THROW(runPascChain(comm, stops), std::invalid_argument);
  // Weight size mismatch.
  const int ok[] = {0, 1, 2};
  std::vector<char> badWeights{1};
  EXPECT_THROW(runPascPrefixSum(comm, ok, badWeights),
               std::invalid_argument);
  // Too few lanes.
  Comm narrow(region, 1);
  const int pair[] = {0, 1};
  EXPECT_THROW(runPascChain(narrow, pair), std::invalid_argument);
}

TEST(Api, ForestWorksOnEveryAxis) {
  const auto s = shapes::parallelogram(14, 6);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources{0, region.size() - 1, region.size() / 2};
  std::vector<int> dests{3, region.size() - 4};
  for (const int u : sources) isSource[u] = 1;
  for (const int u : dests) isDest[u] = 1;
  for (const Axis axis : kAllAxes) {
    const ForestResult forest =
        shortestPathForest(region, isSource, isDest, 4, axis);
    const ForestCheck check =
        checkShortestPathForest(region, forest.parent, sources, dests);
    EXPECT_TRUE(check.ok) << toString(axis) << ": " << check.error;
  }
}

TEST(Api, SolveMatchesManualPipeline) {
  const auto s = shapes::hexagon(4);
  const Spf spf(s);
  const std::vector<int> sources{s.idOf({-4, 0}), s.idOf({4, 0})};
  const std::vector<int> dests{s.idOf({0, 4}), s.idOf({0, -4})};
  const SpfSolution viaApi = spf.solve(sources, dests);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  for (const int u : sources) isSource[u] = 1;
  for (const int u : dests) isDest[u] = 1;
  const ForestResult direct = shortestPathForest(region, isSource, isDest);
  EXPECT_EQ(viaApi.parent, direct.parent);
  EXPECT_EQ(viaApi.rounds, direct.rounds);
}

TEST(Api, SsspCoversEveryAmoebot) {
  const auto s = shapes::randomBlob(150, 3);
  const Spf spf(s);
  const SpfSolution sol = spf.sssp(0);
  for (int u = 0; u < s.size(); ++u)
    EXPECT_NE(sol.parent[u], -2) << "amoebot " << u << " uncovered";
}

TEST(Api, RoundsAreReportedAndPositive) {
  const auto s = shapes::hexagon(3);
  const Spf spf(s);
  EXPECT_GT(spf.sssp(0).rounds, 0);
  EXPECT_GT(spf.spsp(0, s.size() - 1).rounds, 0);
}

}  // namespace
}  // namespace aspf

// Portal graph tests: Definitions 7/8/12, Lemma 9 (portal graphs of
// hole-free structures are trees), Lemma 11 (the distance identity
// 2*dist = dist_x + dist_y + dist_z), Lemma 13 (portal separation), and the
// portal-level primitives of Section 3.5 against brute force.
#include <gtest/gtest.h>

#include <queue>

#include "portals/portal_primitives.hpp"
#include "portals/portals.hpp"
#include "shapes/generators.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

std::vector<AmoebotStructure> testShapes() {
  std::vector<AmoebotStructure> shapes;
  shapes.push_back(shapes::parallelogram(6, 4));
  shapes.push_back(shapes::triangle(6));
  shapes.push_back(shapes::hexagon(3));
  shapes.push_back(shapes::comb(4, 4, 2));
  shapes.push_back(shapes::staircase(4, 3));
  shapes.push_back(shapes::line(9));
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    shapes.push_back(shapes::randomBlob(80, seed));
  return shapes;
}

TEST(Portals, EveryAmoebotInExactlyOnePortalPerAxis) {
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      std::vector<int> count(region.size(), 0);
      for (const auto& ms : d.members)
        for (const int u : ms) ++count[u];
      for (int u = 0; u < region.size(); ++u) {
        EXPECT_EQ(count[u], 1);
        EXPECT_GE(d.portalOf[u], 0);
      }
    }
  }
}

TEST(Portals, MembersFormAxisRuns) {
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      const Dir east = d.frame.applyInverse(Dir::E);
      for (const auto& ms : d.members) {
        for (std::size_t i = 0; i + 1 < ms.size(); ++i)
          EXPECT_EQ(region.neighbor(ms[i], east), ms[i + 1]);
        // Maximality: nothing west of the first or east of the last.
        EXPECT_EQ(region.neighbor(ms.front(), opposite(east)), -1);
        EXPECT_EQ(region.neighbor(ms.back(), east), -1);
      }
    }
  }
}

TEST(Portals, Lemma9PortalGraphsAreTrees) {
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      EXPECT_TRUE(d.portalGraphIsTree());
    }
  }
}

TEST(Portals, ImplicitTreeIsASpanningTree) {
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      // Count undirected edges.
      std::size_t endpoints = 0;
      for (int u = 0; u < region.size(); ++u)
        for (int dd = 0; dd < 6; ++dd) endpoints += d.implicitTree.edge[u][dd];
      EXPECT_EQ(endpoints, 2 * static_cast<std::size_t>(region.size() - 1));
      // Connected: BFS over tree edges.
      std::vector<char> seen(region.size(), 0);
      std::queue<int> q;
      q.push(0);
      seen[0] = 1;
      int reached = 1;
      while (!q.empty()) {
        const int u = q.front();
        q.pop();
        for (int dd = 0; dd < 6; ++dd) {
          if (!d.implicitTree.edge[u][dd]) continue;
          const int v = region.neighbor(u, static_cast<Dir>(dd));
          ASSERT_GE(v, 0);
          if (!seen[v]) {
            seen[v] = 1;
            ++reached;
            q.push(v);
          }
        }
      }
      EXPECT_EQ(reached, region.size());
    }
  }
}

TEST(Portals, ExactlyOneConnectingEdgePerAdjacentPair) {
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      for (int p = 0; p < d.portalCount(); ++p) {
        std::vector<int> peers;
        for (const auto& e : d.adj[p]) peers.push_back(e.peerPortal);
        std::sort(peers.begin(), peers.end());
        EXPECT_TRUE(std::adjacent_find(peers.begin(), peers.end()) ==
                    peers.end())
            << "duplicate connecting edge";
      }
      // Every physically adjacent portal pair appears.
      for (int u = 0; u < region.size(); ++u) {
        for (Dir dd : kAllDirs) {
          if (axisOf(dd) == axis) continue;
          const int v = region.neighbor(u, dd);
          if (v < 0) continue;
          const int p1 = d.portalOf[u], p2 = d.portalOf[v];
          if (p1 == p2) continue;
          EXPECT_GE(d.connector(p1, p2), 0)
              << "missing adjacency " << p1 << "-" << p2;
        }
      }
    }
  }
}

TEST(Portals, Lemma11DistanceIdentity) {
  Rng rng(424242);
  for (const auto& s : testShapes()) {
    const Region region = Region::whole(s);
    std::array<PortalDecomposition, 3> d{computePortals(region, Axis::X),
                                         computePortals(region, Axis::Y),
                                         computePortals(region, Axis::Z)};
    for (int trial = 0; trial < 12; ++trial) {
      const int u = static_cast<int>(rng.below(region.size()));
      const int v = static_cast<int>(rng.below(region.size()));
      const int src[] = {u};
      const int duv = region.bfsDistancesLocal(src)[v];
      int portalSum = 0;
      for (int a = 0; a < 3; ++a) {
        const auto pd = d[a].portalGraphDistances(d[a].portalOf[u]);
        portalSum += pd[d[a].portalOf[v]];
      }
      EXPECT_EQ(2 * duv, portalSum)
          << "u=" << u << " v=" << v << " n=" << region.size();
    }
  }
}

TEST(Portals, Lemma13PortalSeparation) {
  // The shortest path between u and v crosses portal P iff u and v are in
  // different components of X \ P. Verify on a hexagon with its middle
  // x-portal.
  const auto s = shapes::hexagon(3);
  const Region region = Region::whole(s);
  const PortalDecomposition d = computePortals(region, Axis::X);
  const int midPortal = d.portalOf[region.localOf(s.idOf({0, 0}))];
  const int north = region.localOf(s.idOf({0, 2}));
  const int south = region.localOf(s.idOf({0, -2}));
  const int alsoNorth = region.localOf(s.idOf({1, 2}));
  // north/south separated by the middle portal; BFS through X must pass it.
  const int src[] = {north};
  const auto dist = region.bfsDistancesLocal(src);
  // walk back a shortest path and check it visits the portal
  int cur = south;
  bool visited = false;
  while (cur != north) {
    if (d.portalOf[cur] == midPortal) visited = true;
    for (Dir dd : kAllDirs) {
      const int nb = region.neighbor(cur, dd);
      if (nb >= 0 && dist[nb] == dist[cur] - 1) {
        cur = nb;
        break;
      }
    }
  }
  EXPECT_TRUE(visited);
  // Same side: a shortest path between the two northern nodes that stays
  // north exists (their BFS distance equals their grid distance, and the
  // straight connection does not touch row 0).
  const int src2[] = {alsoNorth};
  const auto dist2 = region.bfsDistancesLocal(src2);
  EXPECT_EQ(dist2[north], 1);
}

// ---- Portal primitives ----

struct PortalFixtureData {
  AmoebotStructure s;
  Region region;
  PortalDecomposition decomp;
  PortalFixtureData(AmoebotStructure st, Axis axis)
      : s(std::move(st)), region(Region::whole(s)),
        decomp(computePortals(region, axis)) {}
};

std::vector<char> randomPortalSet(int count, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> set(count, 0);
  for (int i = 0; i < count; ++i) set[i] = rng.chance(p) ? 1 : 0;
  bool any = false;
  for (const char c : set) any = any || c;
  if (!any) set[count / 2] = 1;
  return set;
}

class PortalPrimitiveSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PortalPrimitiveSeeds, RootPruneMatchesPortalGraphBfs) {
  const std::uint64_t seed = GetParam();
  PortalFixtureData f(shapes::randomBlob(70, seed),
                      static_cast<Axis>(seed % 3));
  const int portals = f.decomp.portalCount();
  const auto inQ = randomPortalSet(portals, 0.3, seed * 7 + 1);
  const int root = static_cast<int>(seed) % portals;

  Comm comm(f.region, 4);
  const PortalRootPruneResult got = portalRootAndPrune(
      comm, f.decomp, {}, root, inQ, true);

  // Reference: BFS in the portal graph, V_Q via subtree Q-counts.
  std::vector<int> par(portals, -2);
  std::vector<int> order;
  std::queue<int> q;
  q.push(root);
  par[root] = -1;
  while (!q.empty()) {
    const int p = q.front();
    q.pop();
    order.push_back(p);
    for (const auto& e : f.decomp.adj[p]) {
      if (par[e.peerPortal] == -2) {
        par[e.peerPortal] = p;
        q.push(e.peerPortal);
      }
    }
  }
  std::vector<int> qInSubtree(portals, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    qInSubtree[*it] += inQ[*it] ? 1 : 0;
    if (par[*it] >= 0) qInSubtree[par[*it]] += qInSubtree[*it];
  }
  std::uint64_t total = 0;
  for (int p = 0; p < portals; ++p) total += inQ[p];
  EXPECT_EQ(got.qCount, total);
  for (int p = 0; p < portals; ++p) {
    EXPECT_EQ(static_cast<bool>(got.portalInVQ[p]), qInSubtree[p] > 0)
        << "portal " << p;
    if (qInSubtree[p] > 0) {
      EXPECT_EQ(got.parentPortal[p], par[p]);
    }
  }
  // Augmentation definition: degree within the pruned tree.
  for (int p = 0; p < portals; ++p) {
    if (!got.portalInVQ[p]) continue;
    EXPECT_EQ(got.inAug[p], got.degQ[p] >= 3 ? 1 : 0);
  }
}

TEST_P(PortalPrimitiveSeeds, ElectionPicksAQPortal) {
  const std::uint64_t seed = GetParam();
  PortalFixtureData f(shapes::randomBlob(60, seed + 17),
                      static_cast<Axis>((seed + 1) % 3));
  const int portals = f.decomp.portalCount();
  const auto inQ = randomPortalSet(portals, 0.4, seed + 3);
  Comm comm(f.region, 4);
  const PortalElectionResult got =
      portalElect(comm, f.decomp, {}, 0, inQ);
  ASSERT_GE(got.electedPortal, 0);
  EXPECT_TRUE(inQ[got.electedPortal]);
  EXPECT_LE(got.rounds, 2);
}

TEST_P(PortalPrimitiveSeeds, CentroidsMatchBruteForce) {
  const std::uint64_t seed = GetParam();
  PortalFixtureData f(shapes::randomBlob(60, seed + 29),
                      static_cast<Axis>(seed % 3));
  const int portals = f.decomp.portalCount();
  const auto inQ = randomPortalSet(portals, 0.35, seed + 31);
  Comm comm(f.region, 4);
  const PortalCentroidResult got =
      portalCentroids(comm, f.decomp, {}, 0, inQ);

  std::uint64_t total = 0;
  for (const char c : inQ) total += c;
  for (int p = 0; p < portals; ++p) {
    if (!inQ[p]) {
      EXPECT_FALSE(got.isCentroid[p]);
      continue;
    }
    // Brute force: Q-count of every component of the portal tree minus p.
    bool ok = true;
    for (const auto& e : f.decomp.adj[p]) {
      std::vector<char> seen(portals, 0);
      seen[p] = 1;
      std::queue<int> q;
      q.push(e.peerPortal);
      seen[e.peerPortal] = 1;
      std::uint64_t count = 0;
      while (!q.empty()) {
        const int w = q.front();
        q.pop();
        count += inQ[w] ? 1 : 0;
        for (const auto& e2 : f.decomp.adj[w]) {
          if (!seen[e2.peerPortal]) {
            seen[e2.peerPortal] = 1;
            q.push(e2.peerPortal);
          }
        }
      }
      if (2 * count > total) ok = false;
    }
    EXPECT_EQ(static_cast<bool>(got.isCentroid[p]), ok) << "portal " << p;
  }
}

TEST_P(PortalPrimitiveSeeds, DecompositionCoversAugmentedSet) {
  const std::uint64_t seed = GetParam();
  PortalFixtureData f(shapes::randomBlob(80, seed + 41),
                      static_cast<Axis>((seed + 2) % 3));
  const int portals = f.decomp.portalCount();
  const auto inQ = randomPortalSet(portals, 0.3, seed + 43);
  Comm comm(f.region, 4);
  const PortalRootPruneResult rooted =
      portalRootAndPrune(comm, f.decomp, {}, 0, inQ, true);
  std::vector<char> inQPrime(portals, 0);
  for (int p = 0; p < portals; ++p)
    inQPrime[p] = (inQ[p] || rooted.inAug[p]) ? 1 : 0;

  const PortalDecompositionResult dt =
      portalDecompose(f.region, f.decomp, 0, inQPrime);
  for (int p = 0; p < portals; ++p) {
    if (inQPrime[p]) {
      EXPECT_GE(dt.depthOfPortal[p], 0);
    } else {
      EXPECT_EQ(dt.depthOfPortal[p], -1);
    }
    if (dt.depthOfPortal[p] > 0) {
      ASSERT_GE(dt.parentPortalInDT[p], 0);
      EXPECT_EQ(dt.depthOfPortal[dt.parentPortalInDT[p]] + 1,
                dt.depthOfPortal[p]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortalPrimitiveSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace aspf

// SIMD substrate tests: runtime kernel dispatch, scalar-vs-vector kernel
// equivalence on randomized 32-byte blocks, WordBitset word-boundary
// semantics, the pin arena's 32-byte alignment guarantee, the fused
// HotPin hot/cold split invariants, and whole-simulation bit-identity
// across forced kernel ISAs (the in-process form of the CI dispatch
// matrix's report cmp).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "shapes/generators.hpp"
#include "sim/comm.hpp"
#include "sim/pin_config.hpp"
#include "sim/sim_counters.hpp"
#include "sim/simd_kernels.hpp"
#include "sim/word_bitset.hpp"

namespace aspf {
namespace {

using simd::Isa;
using simd::kBlockBytes;
using simd::KernelTable;

// Every table compiled in AND executable on this host. The scalar table
// is always first, so tables[0] is the reference implementation.
std::vector<const KernelTable*> supportedTables() {
  std::vector<const KernelTable*> tables = {&simd::scalarTable()};
  if (simd::isaSupported(Isa::Sse2)) tables.push_back(simd::sse2Table());
  if (simd::isaSupported(Isa::Avx2)) tables.push_back(simd::avx2Table());
  return tables;
}

// Restores the process-wide active table on scope exit, so a test that
// forces an ISA cannot leak the selection into later suites.
struct IsaGuard {
  Isa prev = simd::activeIsa();
  ~IsaGuard() { simd::setActiveIsa(prev); }
};

TEST(SimdDispatch, ScalarAlwaysPresentAndActiveIsaConsistent) {
  const KernelTable& scalar = simd::scalarTable();
  EXPECT_EQ(scalar.isa, Isa::Scalar);
  EXPECT_STREQ(scalar.name, simd::isaName(Isa::Scalar));
  EXPECT_TRUE(simd::isaSupported(Isa::Scalar));
  EXPECT_TRUE(simd::isaSupported(simd::bestSupportedIsa()));
  EXPECT_EQ(simd::kernels().isa, simd::activeIsa());
}

TEST(SimdDispatch, SetActiveIsaForcesSupportedAndRejectsUnsupported) {
  IsaGuard guard;
  ASSERT_TRUE(simd::setActiveIsa(Isa::Scalar));
  EXPECT_EQ(simd::activeIsa(), Isa::Scalar);
  EXPECT_EQ(simd::kernels().isa, Isa::Scalar);
  for (const Isa isa : {Isa::Sse2, Isa::Avx2}) {
    if (simd::isaSupported(isa)) {
      EXPECT_TRUE(simd::setActiveIsa(isa));
      EXPECT_EQ(simd::activeIsa(), isa);
    } else {
      const Isa before = simd::activeIsa();
      EXPECT_FALSE(simd::setActiveIsa(isa));
      EXPECT_EQ(simd::activeIsa(), before);  // selection unchanged
    }
  }
}

TEST(SimdKernels, BlockEqualMatchesScalarIncludingSingleByteDiffs) {
  std::mt19937 rng(20240801);
  std::uniform_int_distribution<int> byte(-128, 127);
  for (const KernelTable* t : supportedTables()) {
    for (int trial = 0; trial < 64; ++trial) {
      std::int8_t a[kBlockBytes], b[kBlockBytes];
      for (int i = 0; i < kBlockBytes; ++i)
        a[i] = static_cast<std::int8_t>(byte(rng));
      // Equal blocks.
      t->blockCopy(b, a);
      EXPECT_TRUE(t->blockEqual(a, b));
      // A difference at every single byte position must be detected.
      for (int p = 0; p < kBlockBytes; ++p) {
        const std::int8_t keep = b[p];
        b[p] = static_cast<std::int8_t>(keep ^ 0x5b);
        EXPECT_FALSE(t->blockEqual(a, b)) << t->name << " byte " << p;
        b[p] = keep;
      }
    }
  }
}

TEST(SimdKernels, BlockCopyCopiesAllThirtyTwoBytes) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(-128, 127);
  for (const KernelTable* t : supportedTables()) {
    std::int8_t src[kBlockBytes], dst[kBlockBytes];
    for (int i = 0; i < kBlockBytes; ++i) {
      src[i] = static_cast<std::int8_t>(byte(rng));
      dst[i] = static_cast<std::int8_t>(~src[i]);
    }
    t->blockCopy(dst, src);
    for (int i = 0; i < kBlockBytes; ++i)
      EXPECT_EQ(dst[i], src[i]) << t->name << " byte " << i;
  }
}

TEST(SimdKernels, BlockEqualManyMatchesPerBlockScalar) {
  std::mt19937 rng(31337);
  std::uniform_int_distribution<int> byte(-128, 127);
  constexpr int kBlocks = 23;
  std::vector<std::int8_t> cur(kBlocks * kBlockBytes);
  std::vector<std::int8_t> prev(kBlocks * kBlockBytes);
  for (auto& v : cur) v = static_cast<std::int8_t>(byte(rng));
  prev = cur;
  // Flip one byte in a known subset of blocks.
  for (const int changed : {0, 3, 7, 8, 15, 22})
    cur[static_cast<std::size_t>(changed) * kBlockBytes + changed] ^= 1;
  // Query an out-of-order, repeating subset of locals (the drain hands
  // the kernel the touched list, which is neither sorted nor dense).
  const std::vector<int> locals = {22, 0, 5, 8, 8, 1, 15, 3, 7, 9};
  std::vector<std::uint8_t> want(locals.size());
  const KernelTable& scalar = simd::scalarTable();
  scalar.blockEqualMany(cur.data(), prev.data(), locals.data(),
                        locals.size(), want.data());
  for (const KernelTable* t : supportedTables()) {
    std::vector<std::uint8_t> got(locals.size(), 0xcd);
    t->blockEqualMany(cur.data(), prev.data(), locals.data(), locals.size(),
                      got.data());
    EXPECT_EQ(got, want) << t->name;
    t->blockEqualMany(cur.data(), prev.data(), locals.data(), 0, got.data());
    EXPECT_EQ(got, want) << t->name << " (count 0 must not write)";
  }
}

TEST(SimdKernels, FindLabelPinReturnsFirstMatchWithIdentityTail) {
  // Arena-shaped block: random labels in [0, ppa) with duplicates, then
  // the identity tail (labels[p] == p for p >= ppa). Every table must
  // report the FIRST matching byte -- including tail self-matches, which
  // the caller rejects via its p < ppa bound.
  std::mt19937 rng(99);
  for (const int ppa : {12, 24}) {
    std::uniform_int_distribution<int> label(0, ppa - 1);
    for (int trial = 0; trial < 64; ++trial) {
      std::int8_t block[kBlockBytes];
      for (int p = 0; p < ppa; ++p)
        block[p] = static_cast<std::int8_t>(label(rng));
      for (int p = ppa; p < kBlockBytes; ++p)
        block[p] = static_cast<std::int8_t>(p);
      for (int probe = -2; probe < kBlockBytes + 2; ++probe) {
        const auto l = static_cast<std::int8_t>(probe);
        int want = -1;
        for (int p = 0; p < kBlockBytes; ++p) {
          if (block[p] == l) {
            want = p;
            break;
          }
        }
        for (const KernelTable* t : supportedTables())
          EXPECT_EQ(t->findLabelPin(block, l), want)
              << t->name << " label " << probe;
      }
    }
  }
}

TEST(SimdKernels, ResolveRootsMatchesSerialChase) {
  // Random parent forests (negative entry == root, others point strictly
  // downward, so chases terminate). Batch sizes straddle the AVX2 8-lane
  // boundary to exercise both the gathered loop and the scalar tail.
  std::mt19937 rng(4242);
  constexpr int kNodes = 1000;
  std::vector<int> parent(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    std::uniform_int_distribution<int> pick(-40, i - 1);
    const int p = i == 0 ? -1 : pick(rng);
    parent[i] = p < 0 ? -1 - (p & 7) : p;  // roots hold assorted negatives
  }
  std::uniform_int_distribution<int> node(0, kNodes - 1);
  for (const std::size_t count : {0u, 1u, 7u, 8u, 9u, 67u}) {
    std::vector<int> nodes(count);
    for (auto& v : nodes) v = node(rng);
    std::vector<int> want(count);
    for (std::size_t i = 0; i < count; ++i) {
      int cur = nodes[i];
      while (parent[cur] >= 0) cur = parent[cur];
      want[i] = cur;
    }
    for (const KernelTable* t : supportedTables()) {
      std::vector<int> got(count, -999);
      t->resolveRoots(parent.data(), nodes.data(), count, got.data());
      EXPECT_EQ(got, want) << t->name << " count " << count;
    }
  }
}

TEST(WordBitset, WordBoundarySizes) {
  for (const std::size_t bits : {63u, 64u, 65u}) {
    WordBitset bs;
    bs.resize(bits);
    EXPECT_EQ(bs.sizeBits(), bits);
    EXPECT_EQ(bs.wordCount(), (bits + 63) / 64);
    for (std::size_t i = 0; i < bits; ++i) EXPECT_FALSE(bs.test(i));
    for (std::size_t i = 0; i < bits; ++i) {
      bs.set(i);
      EXPECT_TRUE(bs.test(i));
    }
    // Clearing a boundary bit must not disturb its neighbors.
    const std::size_t mid = bits / 2;
    bs.clear(mid);
    EXPECT_FALSE(bs.test(mid));
    if (mid > 0) {
      EXPECT_TRUE(bs.test(mid - 1));
    }
    if (mid + 1 < bits) {
      EXPECT_TRUE(bs.test(mid + 1));
    }
  }
}

TEST(WordBitset, ScanForwardAcrossWordBoundaries) {
  WordBitset bs;
  bs.resize(200);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 130u, 199u}) bs.set(i);
  EXPECT_EQ(bs.scanForward(0, 200), 0);
  EXPECT_EQ(bs.scanForward(1, 200), 63);
  EXPECT_EQ(bs.scanForward(63, 200), 63);
  EXPECT_EQ(bs.scanForward(64, 200), 64);
  EXPECT_EQ(bs.scanForward(65, 200), 127);
  EXPECT_EQ(bs.scanForward(128, 200), 130);
  EXPECT_EQ(bs.scanForward(131, 200), 199);
  // End bound is exclusive and must mask out later hits in the last word.
  EXPECT_EQ(bs.scanForward(131, 199), -1);
  EXPECT_EQ(bs.scanForward(1, 63), -1);
  EXPECT_EQ(bs.scanForward(50, 50), -1);
  EXPECT_EQ(bs.scanForward(199, 200), 199);
}

TEST(WordBitset, ResetTrackedZeroesExactlyTouchedWords) {
  WordBitset bs;
  bs.resize(256);  // 4 words
  bs.setTracked(3);
  bs.setTracked(40);    // same word as 3: dedup
  bs.setTracked(129);   // word 2
  EXPECT_EQ(bs.resetTracked(), 2u);  // words 0 and 2, not 4
  for (const std::size_t i : {3u, 40u, 129u}) EXPECT_FALSE(bs.test(i));
  EXPECT_EQ(bs.resetTracked(), 0u);  // tracking consumed
  // Untracked writes survive resetTracked (their owner clears through its
  // own member list -- the closure scan's visitedPins_).
  bs.set(200);
  EXPECT_EQ(bs.resetTracked(), 0u);
  EXPECT_TRUE(bs.test(200));
}

TEST(WordBitset, SetRangeTrackedSpansWords) {
  WordBitset bs;
  bs.resize(256);
  bs.setRangeTracked(60, 10);  // bits 60..69: straddles words 0 and 1
  for (std::size_t i = 58; i < 72; ++i)
    EXPECT_EQ(bs.test(i), i >= 60 && i < 70) << "bit " << i;
  EXPECT_EQ(bs.resetTracked(), 2u);
  EXPECT_EQ(bs.scanForward(0, 256), -1);
  // A whole-word range (the take == 64 mask path).
  bs.setRangeTracked(64, 64);
  for (std::size_t i = 64; i < 128; ++i) EXPECT_TRUE(bs.test(i));
  EXPECT_FALSE(bs.test(63));
  EXPECT_FALSE(bs.test(128));
  EXPECT_EQ(bs.resetTracked(), 1u);
}

TEST(PinArena, LabelPlanesAre32ByteAligned) {
  // The SIMD block kernels operate on one amoebot's 32-byte label block;
  // the arena guarantees the planes are 32-byte aligned AND strided so no
  // block ever straddles an alignment boundary (the satellite bugfix:
  // plain std::vector<int8_t> only guaranteed 1-byte alignment).
  for (const int n : {1, 7, 100}) {
    PinArena arena(n, 4);
    for (const int local : {0, n / 2, n - 1}) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.labelsOf(local)) %
                    kPinStride,
                0u)
          << "labels local " << local;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.snapshotOf(local)) %
                    kPinStride,
                0u)
          << "snapshot local " << local;
    }
  }
  static_assert(kPinStride == kBlockBytes,
                "arena stride and kernel block width must agree");
}

TEST(PinArena, HotPinStaysOneWordAndSplitInvariantHolds) {
  EXPECT_EQ(sizeof(HotPin), 8u);
  // Build a few non-trivial partition sets, reconcile via takeDirty, and
  // check the fused hot records against the cold label plane: the
  // successor delta enumerates exactly the same-label pins as a cycle,
  // and the lead delta points at the set's lowest-indexed member (lead
  // iff leadDelta == 0).
  PinArena arena(4, 2);
  const int ppa = arena.pinsPerAmoebot();
  const auto checkLive = [&] {
    const HotPin* hot = arena.hot();
    for (int a = 0; a < arena.size(); ++a) {
      const std::int8_t* labels = arena.labelsOf(a);
      for (int p = 0; p < ppa; ++p) {
        const int node = a * ppa + p;
        const HotPin h = hot[node];
        // Lowest same-label pin == the lead the first-match scan finds.
        int lowest = -1, members = 0;
        for (int q = 0; q < ppa; ++q) {
          if (labels[q] == labels[p]) {
            if (lowest < 0) lowest = q;
            ++members;
          }
        }
        EXPECT_EQ(node + h.leadDelta, a * ppa + lowest) << "node " << node;
        EXPECT_EQ(h.leadDelta == 0, p == lowest) << "node " << node;
        // The circular successor enumerates the whole set and returns.
        int cur = p, seen = 0;
        do {
          EXPECT_EQ(labels[cur], labels[p]) << "node " << node;
          cur = cur + hot[a * ppa + cur].delta;
          ++seen;
          ASSERT_LE(seen, ppa);
        } while (cur != p);
        EXPECT_EQ(seen, members) << "node " << node;
      }
    }
  };
  arena.join(0, std::array{Pin{Dir::E, 0}, Pin{Dir::W, 0}});
  arena.join(1, std::array{Pin{Dir::E, 0}, Pin{Dir::W, 1}, Pin{Dir::NE, 0}});
  arena.join(2, std::array{Pin{Dir::NW, 1}, Pin{Dir::SW, 0}});
  arena.join(2, std::array{Pin{Dir::E, 0}, Pin{Dir::SE, 1}});
  std::vector<int> dirty;
  arena.takeDirty(&dirty);
  EXPECT_EQ(dirty.size(), 3u);
  checkLive();
  // Snapshot-delta window: prevDelta/prevLeadDelta are the deltas as of
  // the last takeDirty, valid for the amoebots the NEXT takeDirty reports
  // dirty. Round 1's pre-mutation state was all-singleton, so re-mutating
  // amoebot 1 must expose round-1's reconciled deltas in prev*.
  std::vector<HotPin> round1(arena.hot(), arena.hot() + arena.size() * ppa);
  arena.reset(1);
  arena.join(1, std::array{Pin{Dir::SW, 0}, Pin{Dir::SE, 0}});
  dirty.clear();
  arena.takeDirty(&dirty);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 1);
  checkLive();
  for (int p = 0; p < ppa; ++p) {
    const int node = 1 * ppa + p;
    EXPECT_EQ(arena.hot()[node].prevDelta, round1[node].delta) << p;
    EXPECT_EQ(arena.hot()[node].prevLeadDelta, round1[node].leadDelta) << p;
  }
}

// Signature of one scripted simulation: every received bit of every round
// plus the substrate counter deltas. Bit-identity of this signature across
// forced ISAs is the in-process form of the CI dispatch matrix (which
// cmp's whole report files with the "simd" stamp stripped).
std::vector<long> runScriptedSim(int lanes) {
  const auto s = shapes::hexagon(3);
  const Region region = Region::whole(s);
  const SimCounters before = simCounters();
  Comm comm(region, lanes);
  const int n = region.size();
  const int ppa = comm.pins(0).pinCount();
  std::mt19937 rng(20240808);  // same seed per ISA => same script
  std::uniform_int_distribution<int> pickA(0, n - 1);
  std::uniform_int_distribution<int> pickDir(0, kNumDirs - 1);
  std::uniform_int_distribution<int> pickLane(0, lanes - 1);
  std::vector<long> sig;
  for (int round = 0; round < 40; ++round) {
    // Rewire a few amoebots (drives the incremental closure scan), beep a
    // few pins, deliver, and record every received bit.
    for (int m = 0; m < 3; ++m) {
      const int a = pickA(rng);
      comm.pins(a).reset();
      const Pin pins[] = {
          {static_cast<Dir>(pickDir(rng)), static_cast<std::uint8_t>(pickLane(rng))},
          {static_cast<Dir>(pickDir(rng)), static_cast<std::uint8_t>(pickLane(rng))},
          {static_cast<Dir>(pickDir(rng)), static_cast<std::uint8_t>(pickLane(rng))}};
      comm.pins(a).join(pins);
    }
    for (int b = 0; b < 4; ++b)
      comm.beepPin(pickA(rng), {static_cast<Dir>(pickDir(rng)),
                                static_cast<std::uint8_t>(pickLane(rng))});
    comm.deliver();
    for (int a = 0; a < n; ++a)
      for (int p = 0; p < ppa; ++p)
        sig.push_back(comm.receivedPin(
            a, {static_cast<Dir>(p / lanes), static_cast<std::uint8_t>(p % lanes)}));
  }
  const SimCounters d = simCounters() - before;
  sig.insert(sig.end(), {d.delivers, d.beeps, d.unions, d.dirtyAmoebots,
                         d.amoebotRounds, d.incrementalRounds, d.rebuildRounds,
                         d.blockCompares, d.bitsetWordsScanned});
  return sig;
}

TEST(SimdComm, ScriptedSimulationIsBitIdenticalAcrossIsas) {
  IsaGuard guard;
  ASSERT_TRUE(simd::setActiveIsa(Isa::Scalar));
  const std::vector<long> want = runScriptedSim(2);
  EXPECT_GT(want.back(), 0) << "script must exercise the tracked bitsets";
  for (const Isa isa : {Isa::Sse2, Isa::Avx2}) {
    if (!simd::isaSupported(isa)) continue;
    ASSERT_TRUE(simd::setActiveIsa(isa));
    EXPECT_EQ(runScriptedSim(2), want) << simd::isaName(isa);
  }
}

}  // namespace
}  // namespace aspf

// Dynamic-timeline tier: per-epoch differential tests for online SPF
// maintenance over mutating structures.
//   - TimelineState: seeded replay determinism, structure invariants
//     (connected + hole-free after every epoch), S/D invariants, and the
//     warm-rebind id mapping.
//   - Comm::rebind: argument validation, and circuit equivalence of a
//     rebound Comm vs a cold Comm on the mutated structure.
//   - The core differential property: every warm epoch solve is
//     field-identical (forest, rounds, delivers, beeps) to a cold
//     from-scratch solve of the same mutated structure -- for all three
//     algorithms, every mutation kind, both circuit engines, and
//     sim-threads 1 vs 4.
//   - Checker hardening: a stale pre-mutation forest presented against the
//     post-mutation structure is rejected.
//   - Registry: duplicate scenario names are rejected at registration time
//     (std::invalid_argument), and the dynamic timelines are well-formed.
//   - Report: the `timelines` section round-trips, validates, and is
//     covered by equalDeterministic.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/timeline.hpp"
#include "shapes/generators.hpp"

namespace aspf::scenario {
namespace {

/// A compact timeline that exercises every mutation kind once. Hexagon
/// radius 6 (n = 127): big enough for nontrivial portals, small enough
/// that {3 algos} x {warm + cold} x {7 epochs} x {engine, sim-thread}
/// sweeps stay in test budget.
Timeline allKindsTimeline() {
  Timeline t;
  t.name = "test_all_kinds";
  t.base = make(Shape::Hexagon, 6, 0, 4, 8, 1);
  t.seed = 7;
  t.mutations = {
      {MutationKind::AttachPatch, 5},  {MutationKind::DetachPatch, 4},
      {MutationKind::AddDest, 2},      {MutationKind::RemoveDest, 1},
      {MutationKind::RelocateDest, 2}, {MutationKind::ToggleSource, 2},
  };
  return t;
}

// --- TimelineState --------------------------------------------------------

TEST(TimelineState, ReplaysIdentically) {
  const Timeline t = allKindsTimeline();
  TimelineState a(t);
  TimelineState b(t);
  for (int e = 0; e + 1 < t.epochs(); ++e) {
    const EpochDelta da = a.advance();
    const EpochDelta db = b.advance();
    ASSERT_EQ(a.structure().coords(), b.structure().coords())
        << "epoch " << e + 1;
    EXPECT_EQ(a.sources(), b.sources());
    EXPECT_EQ(a.destinations(), b.destinations());
    EXPECT_EQ(da.oldLocalOfNew, db.oldLocalOfNew);
    EXPECT_EQ(da.applied, db.applied);
  }
}

TEST(TimelineState, PreservesStructureAndInstanceInvariants) {
  const Timeline t = allKindsTimeline();
  TimelineState state(t);
  int epoch = 0;
  while (!state.done()) {
    const int oldN = state.n();
    const EpochDelta delta = state.advance();
    ++epoch;
    EXPECT_EQ(delta.epoch, epoch);
    EXPECT_TRUE(state.structure().isConnected()) << epoch;
    EXPECT_TRUE(state.structure().isHoleFree()) << epoch;
    EXPECT_GE(state.sources().size(), 1u);
    EXPECT_GE(state.destinations().size(), 1u);
    EXPECT_EQ(state.n(), oldN + delta.attached - delta.detached);
    // Mapping: one entry per new amoebot; surviving ids valid and unique.
    ASSERT_EQ(static_cast<int>(delta.oldLocalOfNew.size()), state.n());
    std::set<int> seen;
    int fresh = 0;
    for (const int o : delta.oldLocalOfNew) {
      if (o < 0) {
        ++fresh;
        continue;
      }
      EXPECT_LT(o, oldN);
      EXPECT_TRUE(seen.insert(o).second) << "duplicate old id " << o;
    }
    EXPECT_EQ(fresh, delta.attached);
  }
  EXPECT_THROW(state.advance(), std::logic_error);
}

TEST(TimelineState, MutationKindTagsRoundTrip) {
  for (const MutationKind k : kAllMutationKinds) {
    MutationKind parsed;
    ASSERT_TRUE(mutationKindFromString(toString(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  MutationKind parsed;
  EXPECT_FALSE(mutationKindFromString("teleport", &parsed));
  EXPECT_FALSE(mutationKindFromString("none", &parsed));
}

// --- Comm::rebind ---------------------------------------------------------

TEST(Rebind, ValidatesTheMapping) {
  const AmoebotStructure s = shapes::line(6);
  const Region region = Region::whole(s);
  const AmoebotStructure s2 = shapes::line(7);
  const Region region2 = Region::whole(s2);
  Comm comm(region, 2);
  // Wrong size.
  EXPECT_THROW(comm.rebind(region2, std::vector<int>{0, 1, 2}),
               std::invalid_argument);
  // Out-of-range old id.
  EXPECT_THROW(
      comm.rebind(region2, std::vector<int>{0, 1, 2, 3, 4, 5, 99}),
      std::invalid_argument);
  // Duplicate old id.
  EXPECT_THROW(comm.rebind(region2, std::vector<int>{0, 1, 2, 3, 4, 5, 5}),
               std::invalid_argument);
  // Valid: line grown by one amoebot at the end.
  comm.rebind(region2, std::vector<int>{0, 1, 2, 3, 4, 5, -1});
  EXPECT_EQ(&comm.region(), &region2);
  EXPECT_EQ(comm.rounds(), 0);
}

TEST(Rebind, RejectedRebindLeavesTheCommIntact) {
  // A rejected mapping must not consume the dirty-tracking state: pin
  // mutations issued before the failed rebind still repair at the next
  // deliver(), bit-identical to a cold Comm with the same configuration.
  const AmoebotStructure s = shapes::line(6);
  const Region region = Region::whole(s);
  const AmoebotStructure s2 = shapes::line(7);
  const Region region2 = Region::whole(s2);

  Comm warm(region, 1);
  warm.deliver();  // singleton circuits established
  warm.pins(2).join(std::vector<Pin>{{Dir::E, 0}, {Dir::W, 0}});
  EXPECT_THROW(warm.rebind(region2, std::vector<int>{0, 1, 2, 3, 4, 5, 99}),
               std::invalid_argument);

  Comm cold(region, 1);
  cold.pins(2).join(std::vector<Pin>{{Dir::E, 0}, {Dir::W, 0}});
  warm.beep(1, warm.pins(1).labelOf({Dir::E, 0}));
  cold.beep(1, cold.pins(1).labelOf({Dir::E, 0}));
  warm.deliver();
  cold.deliver();
  // The joined set at amoebot 2 relays the beep through to amoebot 3 --
  // only if the pre-throw mutation was still tracked and repaired.
  EXPECT_TRUE(warm.receivedPin(3, {Dir::W, 0}));
  for (int u = 0; u < region.size(); ++u) {
    EXPECT_EQ(warm.receivedAny(u), cold.receivedAny(u)) << u;
  }
}

/// Rebound Comm vs cold Comm on the mutated structure: identical circuits
/// as observed through received() for every pin, under joined (non-
/// singleton) configurations spanning the detached amoebot -- the case
/// where a stale union-find merge would be visible.
TEST(Rebind, RepairedCircuitsMatchAColdComm) {
  const int lanes = 2;
  const AmoebotStructure grown = shapes::line(8);
  const Region grownRegion = Region::whole(grown);
  // Mutated structure: drop the LAST amoebot (ids stay aligned).
  const AmoebotStructure shrunk = shapes::line(7);
  const Region shrunkRegion = Region::whole(shrunk);

  // Wire a two-pin-joined lane circuit along the whole line so circuits
  // span many amoebots (the hard case for the repair traversal).
  const auto wire = [&](Comm& comm, const Region& region) {
    for (int u = 0; u < region.size(); ++u) {
      comm.pins(u).reset();
      std::vector<Pin> joined;
      if (region.neighbor(u, Dir::E) >= 0) joined.push_back({Dir::E, 0});
      if (region.neighbor(u, Dir::W) >= 0) joined.push_back({Dir::W, 0});
      if (!joined.empty()) comm.pins(u).join(joined);
    }
  };

  Comm warm(grownRegion, lanes);
  wire(warm, grownRegion);
  warm.beep(0, warm.pins(0).labelOf({Dir::E, 0}));
  warm.deliver();
  ASSERT_TRUE(warm.received(7, warm.pins(7).labelOf({Dir::W, 0})));

  std::vector<int> mapping(7);
  for (int i = 0; i < 7; ++i) mapping[i] = i;
  warm.rebind(shrunkRegion, mapping);
  wire(warm, shrunkRegion);

  Comm cold(shrunkRegion, lanes);
  wire(cold, shrunkRegion);

  // Same beeps on both; every (amoebot, pin) must hear identically.
  warm.beep(0, warm.pins(0).labelOf({Dir::E, 0}));
  cold.beep(0, cold.pins(0).labelOf({Dir::E, 0}));
  warm.deliver();
  cold.deliver();
  for (int u = 0; u < shrunkRegion.size(); ++u) {
    for (int p = 0; p < kNumDirs * lanes; ++p) {
      const Pin pin{static_cast<Dir>(p / lanes),
                    static_cast<std::uint8_t>(p % lanes)};
      EXPECT_EQ(warm.receivedPin(u, pin), cold.receivedPin(u, pin))
          << "amoebot " << u << " pin " << p;
    }
    EXPECT_EQ(warm.receivedAny(u), cold.receivedAny(u)) << u;
  }
  EXPECT_EQ(warm.rounds(), cold.rounds());
}

// --- The core warm-vs-cold differential ----------------------------------

struct DynamicConfig {
  CircuitEngine engine;
  int simThreads;
};

class DynamicDifferential : public ::testing::TestWithParam<DynamicConfig> {};

TEST_P(DynamicDifferential, WarmEpochSolvesMatchColdOracles) {
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  options.engine = GetParam().engine;
  options.simThreads = GetParam().simThreads;
  const BenchReport report =
      runTimelineBatch("t", {allKindsTimeline()}, options);
  ASSERT_EQ(report.timelines.size(), 1u);
  const TimelineReport& tr = report.timelines[0];
  ASSERT_EQ(static_cast<int>(tr.epochs.size()),
            allKindsTimeline().epochs());
  std::set<std::string> mutationsSeen;
  for (const EpochReport& er : tr.epochs) {
    mutationsSeen.insert(er.mutation);
    ASSERT_EQ(er.runs.size(), 3u);
    for (const EpochRun& run : er.runs) {
      SCOPED_TRACE(tr.name + " epoch " + std::to_string(er.epoch) + " " +
                   run.algo);
      EXPECT_TRUE(run.error.empty()) << run.error;
      EXPECT_TRUE(run.checkerOk);
      EXPECT_TRUE(run.warmMatchesCold);
      EXPECT_GT(run.rounds, 0);
      EXPECT_GT(run.delivers, 0);
    }
  }
  // Every mutation kind (plus the epoch-0 "none") must have been applied.
  EXPECT_EQ(mutationsSeen.size(), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndShards, DynamicDifferential,
    ::testing::Values(DynamicConfig{CircuitEngine::Incremental, 1},
                      DynamicConfig{CircuitEngine::Incremental, 4},
                      DynamicConfig{CircuitEngine::Rebuild, 1},
                      DynamicConfig{CircuitEngine::Rebuild, 4}),
    [](const ::testing::TestParamInfo<DynamicConfig>& paramInfo) {
      return std::string(paramInfo.param.engine == CircuitEngine::Rebuild
                             ? "rebuild"
                             : "incremental") +
             "_sim" + std::to_string(paramInfo.param.simThreads);
    });

TEST(DynamicDifferential, ReportsBitIdenticalAcrossSimThreadsAndThreads) {
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  options.simThreads = 1;
  const BenchReport serial =
      runTimelineBatch("t", {allKindsTimeline()}, options);
  options.simThreads = 4;
  options.threads = 2;
  BenchReport sharded = runTimelineBatch("t", {allKindsTimeline()}, options);
  EXPECT_EQ(sharded.timelines, serial.timelines);
  std::string why;
  EXPECT_TRUE(equalDeterministic(serial, sharded, &why)) << why;
}

TEST(DynamicDifferential, EnginesAgreeOnModelFields) {
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  const BenchReport inc = runTimelineBatch("t", {allKindsTimeline()}, options);
  options.engine = CircuitEngine::Rebuild;
  const BenchReport reb = runTimelineBatch("t", {allKindsTimeline()}, options);
  std::string why;
  EXPECT_FALSE(equalDeterministic(inc, reb, &why));  // engine tag + counters
  EXPECT_TRUE(equalDeterministic(inc, reb, &why, /*modelOnly=*/true)) << why;
}

TEST(DynamicDifferential, WarmSubstrateActuallySavesUnions) {
  // The incremental engine's reason to exist in the dynamic tier: on
  // structure-preserving epochs the warm wave re-delivers over fully
  // carried-over circuits (zero re-union work), and on structure epochs it
  // repairs a small boundary neighborhood instead of rebuilding all
  // circuits. The polylog preprocessing phase saves its whole-region
  // first-round rebuild the same way.
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  const BenchReport report =
      runTimelineBatch("t", {allKindsTimeline()}, options);
  ASSERT_EQ(report.timelines.size(), 1u);
  for (const EpochReport& er : report.timelines[0].epochs) {
    if (er.epoch == 0) continue;  // both sides start cold
    for (const EpochRun& run : er.runs) {
      SCOPED_TRACE("epoch " + std::to_string(er.epoch) + " " + run.algo);
      if (run.algo == "wave") {
        EXPECT_LT(run.warmUnions, run.coldUnions);
        const bool structural =
            er.mutation == "attach" || er.mutation == "detach";
        if (!structural) {
          EXPECT_EQ(run.warmUnions, 0);
        }
      } else if (run.algo == "polylog") {
        EXPECT_LE(run.warmUnions, run.coldUnions);
      } else {
        EXPECT_EQ(run.warmUnions, run.coldUnions);  // naive has no substrate
      }
    }
  }
}

// --- Checker hardening ----------------------------------------------------

TEST(CheckerHardening, RejectsStaleForestAfterStructureGrowth) {
  // A warm loop that leaked a pre-mutation forest across an attach epoch
  // must be caught: the parent array no longer matches the region.
  Timeline t;
  t.name = "test_attach_only";
  t.base = make(Shape::Hexagon, 4, 0, 2, 4, 1);
  t.seed = 3;
  t.mutations = {{MutationKind::AttachPatch, 4}};
  TimelineState state(t);
  const BfsWaveResult stale =
      bfsWaveForest(state.region(), state.sources(), state.destinations());
  ASSERT_TRUE(checkShortestPathForest(state.region(), stale.parent,
                                      state.sources(), state.destinations())
                  .ok);
  state.advance();
  const ForestCheck check =
      checkShortestPathForest(state.region(), stale.parent, state.sources(),
                              state.destinations());
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("size mismatch"), std::string::npos)
      << check.error;
}

TEST(CheckerHardening, RejectsStaleForestWhenSourcesChange) {
  // Same-size mutation (no structural change): a forest computed before a
  // source appeared must fail -- the new source is not a root of the stale
  // forest (it either hangs below another tree or sits outside the forest).
  const AmoebotStructure s = shapes::hexagon(4);
  const Region region = Region::whole(s);
  std::vector<int> sources{0};
  const std::vector<int> destinations{region.size() - 1};
  const BfsWaveResult stale = bfsWaveForest(region, sources, destinations);
  ASSERT_TRUE(
      checkShortestPathForest(region, stale.parent, sources, destinations)
          .ok);
  // Post-mutation instance: a second source toggled on at a covered,
  // non-root amoebot (the destination is on the forest, use its parent).
  const int added = stale.parent[destinations[0]];
  ASSERT_GE(added, 0);
  sources.push_back(added);
  const ForestCheck check =
      checkShortestPathForest(region, stale.parent, sources, destinations);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("source is not a root"), std::string::npos)
      << check.error;
}

TEST(CheckerHardening, RejectsStaleForestWhenDestinationEscapes) {
  // Relocating a destination off the stale forest must trip property 4.
  const AmoebotStructure s = shapes::line(12);
  const Region region = Region::whole(s);
  const std::vector<int> sources{0};
  const std::vector<int> oldDests{5};
  const BfsWaveResult stale = bfsWaveForest(region, sources, oldDests);
  ASSERT_TRUE(checkShortestPathForest(region, stale.parent, sources, oldDests)
                  .ok);
  ASSERT_EQ(stale.parent[11], -2);  // pruned: beyond the old destination
  const std::vector<int> newDests{11};
  const ForestCheck check =
      checkShortestPathForest(region, stale.parent, sources, newDests);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("destination not covered"), std::string::npos)
      << check.error;
}

// --- Registry -------------------------------------------------------------

TEST(Registry, RegisterSuiteRejectsDuplicates) {
  std::vector<Suite> all;
  const Scenario sc = make(Shape::Hexagon, 3, 0, 1, 2, 1);
  registerSuite(all, {"first", "ok", {sc}});

  // Duplicate suite name.
  EXPECT_THROW(registerSuite(all, {"first", "dup", {}}),
               std::invalid_argument);
  // Duplicate scenario name within one suite.
  EXPECT_THROW(registerSuite(all, {"second", "dup-inside", {sc, sc}}),
               std::invalid_argument);
  // Same name bound to a DIFFERENT scenario in an earlier suite.
  Scenario conflicting = sc;
  conflicting.k = 2;  // same canonical inputs pretended under the old name
  conflicting.name = sc.name;
  EXPECT_THROW(registerSuite(all, {"third", "conflict", {conflicting}}),
               std::invalid_argument);
  // The same scenario in several suites is deliberate and allowed.
  registerSuite(all, {"fourth", "reuse", {sc}});
  EXPECT_EQ(all.size(), 2u);
}

TEST(Registry, DynamicTimelinesAreWellFormed) {
  const std::vector<Timeline>& all = timelines();
  ASSERT_EQ(all.size(), 10u) << "one timeline per shape family";
  std::set<std::string> names;
  std::set<Shape> families;
  for (const Timeline& t : all) {
    EXPECT_TRUE(names.insert(t.name).second) << "duplicate " << t.name;
    families.insert(t.base.shape);
    EXPECT_GE(t.epochs(), 9);
    EXPECT_LE(t.epochs(), 12);
    EXPECT_EQ(t.name, "dyn_" + t.base.name);
    const Timeline* found = findTimeline(t.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, t);
  }
  EXPECT_EQ(families.size(), 10u);
  EXPECT_EQ(findTimeline("dyn_no_such"), nullptr);
}

TEST(Registry, FuzzSuiteIsRegistered) {
  const Suite* fuzz = findSuite("fuzz");
  ASSERT_NE(fuzz, nullptr);
  ASSERT_EQ(fuzz->scenarios.size(), 32u);
  for (const Scenario& sc : fuzz->scenarios) {
    EXPECT_EQ(sc.shape, Shape::FuzzBlob);
    EXPECT_EQ(sc.name, canonicalName(sc));
  }
}

// --- Report: the `timelines` section --------------------------------------

BenchReport sampleTimelineReport() {
  BenchReport report;
  report.suite = "dynamic";
  report.algos = {"polylog", "wave", "naive"};
  report.threads = 1;
  TimelineReport tr;
  tr.name = "dyn_hexagon6_k5_l12_s1";
  tr.base = make(Shape::Hexagon, 6, 0, 5, 12, 1);
  tr.seed = 3;
  EpochReport e0;
  e0.epoch = 0;
  e0.mutation = "none";
  e0.n = 127;
  e0.kEff = 5;
  e0.lEff = 12;
  EpochRun run;
  run.algo = "wave";
  run.rounds = 18;
  run.wallMs = 0.25;
  run.checkerOk = true;
  run.delivers = 18;
  run.beeps = 342;
  run.warmUnions = 0;
  run.coldUnions = 342;
  run.warmIncrRounds = 18;
  run.coldIncrRounds = 17;
  run.coldRebuildRounds = 1;
  run.warmMatchesCold = true;
  e0.runs = {run};
  EpochReport e1 = e0;
  e1.epoch = 1;
  e1.mutation = "attach";
  e1.applied = 4;
  e1.n = 131;
  tr.epochs = {e0, e1};
  report.timelines = {tr};
  return report;
}

TEST(Report, TimelineSectionRoundTrips) {
  const BenchReport report = sampleTimelineReport();
  const Json doc = toJson(report);
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  const BenchReport back = reportFromJson(Json::parse(doc.dump(2)));
  EXPECT_EQ(back, report);
  EXPECT_EQ(back.timelines, report.timelines);
}

TEST(Report, TimelineSectionIsOmittedWhenEmpty) {
  // Pre-dynamic reports must stay byte-identical: no `timelines` key.
  BenchReport report = sampleTimelineReport();
  report.timelines.clear();
  const Json doc = toJson(report);
  EXPECT_EQ(doc.find("timelines"), nullptr);
  std::string error;
  EXPECT_TRUE(validateReport(doc, &error)) << error;
}

TEST(Report, TimelineValidationCatchesBadDocuments) {
  std::string error;
  BenchReport badMutation = sampleTimelineReport();
  badMutation.timelines[0].epochs[1].mutation = "teleport";
  EXPECT_FALSE(validateReport(toJson(badMutation), &error));
  EXPECT_NE(error.find("mutation"), std::string::npos) << error;

  // Drop a required counter from the serialized text: unlike the AlgoRun
  // engine counters (optional for legacy reports), the timeline section is
  // new with the dynamic tier and has no legacy to accommodate.
  std::string text = toJson(sampleTimelineReport()).dump();
  const std::string needle = "\"warm_unions\":0,";
  for (std::size_t pos; (pos = text.find(needle)) != std::string::npos;)
    text.erase(pos, needle.size());
  const Json missingCounter = Json::parse(text);
  EXPECT_FALSE(validateReport(missingCounter, &error));
  EXPECT_NE(error.find("warm_unions"), std::string::npos) << error;
}

TEST(Report, EqualDeterministicCoversTimelineFields) {
  const BenchReport a = sampleTimelineReport();
  BenchReport b = a;
  for (TimelineReport& tr : b.timelines)
    for (EpochReport& er : tr.epochs)
      for (EpochRun& run : er.runs) run.wallMs = 99.0;  // timing: ignored
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;

  b.timelines[0].epochs[1].runs[0].rounds += 1;
  EXPECT_FALSE(equalDeterministic(a, b, &why));
  EXPECT_NE(why.find("rounds"), std::string::npos) << why;

  BenchReport c = a;
  c.timelines[0].epochs[0].runs[0].warmUnions += 7;
  EXPECT_FALSE(equalDeterministic(a, c, &why));
  EXPECT_NE(why.find("warm_unions"), std::string::npos) << why;
  // ... but warm/cold substrate counters are engine-specific: model-only
  // comparisons ignore them (the CI engine-equivalence step relies on it).
  EXPECT_TRUE(equalDeterministic(a, c, &why, /*modelOnly=*/true)) << why;

  BenchReport d = a;
  d.timelines[0].epochs[1].runs[0].warmMatchesCold = false;
  EXPECT_FALSE(equalDeterministic(a, d, &why, /*modelOnly=*/true));
  EXPECT_NE(why.find("warm_matches_cold"), std::string::npos) << why;
}

}  // namespace
}  // namespace aspf::scenario

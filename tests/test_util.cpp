// Utility-layer tests: PRNG determinism and distribution sanity, streaming
// bit arithmetic (the O(1)-state comparators the amoebots rely on), table
// formatting, and the ASCII renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "shapes/generators.hpp"
#include "util/bitstream.hpp"
#include "util/render.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace aspf {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::array<int, 10> seen{};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (const int count : seen) EXPECT_GT(count, 40);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    sawLo = sawLo || v == -3;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);
}

TEST(Rng, GoldenStreamIsPlatformIndependent) {
  // xoshiro256** seeded through splitmix64 is fully specified; these values
  // must never change, on any platform or compiler. Every seeded scenario
  // in the conformance matrix rests on this bit-level contract.
  Rng r(42);
  const std::uint64_t golden42[] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL, 0xae17533239e499a1ULL,
      0xecb8ad4703b360a1ULL, 0xfde6dc7fe2ec5e64ULL};
  for (const std::uint64_t want : golden42) EXPECT_EQ(r.next(), want);

  // Seed 0 is a valid seed (splitmix expansion never yields all-zero state).
  Rng z(0);
  const std::uint64_t golden0[] = {0x99ec5f36cb75f2b4ULL,
                                   0xbf6e1f784956452aULL,
                                   0x1a5f849d4933e6e0ULL};
  for (const std::uint64_t want : golden0) EXPECT_EQ(z.next(), want);
}

TEST(Rng, GoldenBoundedStream) {
  // below() uses Lemire rejection on top of next(); pin its output too so
  // instance placement (sources/destinations) replays identically.
  Rng r(123);
  const std::uint64_t golden[] = {196, 969, 467, 126, 337, 999, 377, 656};
  for (const std::uint64_t want : golden) EXPECT_EQ(r.below(1000), want);
}

TEST(Rng, GoldenUniformStream) {
  // uniform() is next() >> 11 scaled by 2^-53: exact in double, so equality
  // comparison is legitimate.
  Rng r(7);
  const double golden[] = {0.7005764821796896, 0.27875122947378428,
                           0.83962746187641979, 0.98109772501493508};
  for (const double want : golden) EXPECT_EQ(r.uniform(), want);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng r(42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(r.next());
  r.reseed(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.next(), first[i]);
  // Reseeding with a different seed diverges immediately.
  r.reseed(43);
  EXPECT_NE(r.next(), first[0]);
}

TEST(Bits, FloorLog2AndBitWidth) {
  EXPECT_EQ(floorLog2(1), 0);
  EXPECT_EQ(floorLog2(2), 1);
  EXPECT_EQ(floorLog2(3), 1);
  EXPECT_EQ(floorLog2(1024), 10);
  EXPECT_EQ(bitWidth(0), 1);
  EXPECT_EQ(bitWidth(1), 1);
  EXPECT_EQ(bitWidth(2), 2);
  EXPECT_EQ(bitWidth(255), 8);
  EXPECT_EQ(bitWidth(256), 9);
}

TEST(Bits, StreamCompareLsbFirst) {
  // Compare pairs of values by feeding bits LSB first.
  const std::uint64_t cases[][2] = {{0, 0},   {1, 0},    {0, 1},  {5, 5},
                                    {6, 9},   {9, 6},    {7, 8},  {255, 256},
                                    {1024, 1023}};
  for (const auto& c : cases) {
    StreamCompare cmp;
    for (int t = 0; t < 12; ++t)
      cmp.feed((c[0] >> t) & 1, (c[1] >> t) & 1);
    if (c[0] == c[1]) {
      EXPECT_TRUE(cmp.equal());
    }
    if (c[0] < c[1]) {
      EXPECT_TRUE(cmp.less());
    }
    if (c[0] > c[1]) {
      EXPECT_TRUE(cmp.greater());
    }
    EXPECT_EQ(cmp.lessEqual(), c[0] <= c[1]);
  }
}

TEST(Bits, StreamSubtractMatchesIntegerSubtraction) {
  for (std::uint64_t a = 0; a < 20; ++a) {
    for (std::uint64_t b = 0; b < 20; ++b) {
      StreamSubtract sub;
      BitAccumulator acc;
      for (int t = 0; t < 8; ++t)
        acc.feed(sub.feed((a >> t) & 1, (b >> t) & 1));
      if (a >= b) {
        EXPECT_FALSE(sub.negative());
        EXPECT_EQ(acc.value(), a - b);
      } else {
        EXPECT_TRUE(sub.negative());
        // Two's complement within 8 bits.
        EXPECT_EQ(acc.value(), (a - b) & 0xff);
      }
    }
  }
}

TEST(Bits, AccumulatorRoundTrips) {
  BitAccumulator acc;
  const std::uint64_t v = 0b1011001;
  for (int t = 0; t < 7; ++t) acc.feed((v >> t) & 1);
  EXPECT_EQ(acc.value(), v);
  EXPECT_EQ(acc.bitsSeen(), 7);
  acc.reset();
  EXPECT_EQ(acc.value(), 0u);
}

TEST(Bits, StreamStateResetsCleanly) {
  // The protocols reuse one comparator/subtractor object across PASC
  // iterations; reset() must restore the exact initial state or verdicts
  // would leak between iterations.
  StreamCompare cmp;
  cmp.feed(true, false);
  ASSERT_TRUE(cmp.greater());
  cmp.reset();
  EXPECT_TRUE(cmp.equal());
  cmp.feed(false, true);
  EXPECT_TRUE(cmp.less());

  StreamSubtract sub;
  sub.feed(false, true);  // 0 - 1: borrow pending
  ASSERT_TRUE(sub.negative());
  sub.reset();
  EXPECT_FALSE(sub.negative());
  EXPECT_TRUE(sub.feed(true, false));  // 1 - 0 = 1, no stale borrow
  EXPECT_FALSE(sub.negative());
}

TEST(Bits, SeededStreamArithmeticMatchesIntegers) {
  // Deterministic fuzz: pairs drawn from the seeded library Rng, compared
  // and subtracted bit-serially exactly as the circuit protocols do. Same
  // seed, same verdicts, forever.
  Rng rng(0xb175);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t a = rng.below(1u << 20), b = rng.below(1u << 20);
    StreamCompare cmp;
    StreamSubtract sub;
    BitAccumulator acc;
    for (int t = 0; t < 22; ++t) {
      const bool ba = (a >> t) & 1, bb = (b >> t) & 1;
      cmp.feed(ba, bb);
      acc.feed(sub.feed(ba, bb));
    }
    EXPECT_EQ(cmp.equal(), a == b);
    EXPECT_EQ(cmp.less(), a < b);
    EXPECT_EQ(cmp.greater(), a > b);
    EXPECT_EQ(sub.negative(), a < b);
    if (a >= b) {
      EXPECT_EQ(acc.value(), a - b);
    }
  }
}

TEST(Table, FormatsAlignedColumnsAndCsv) {
  Table table({"name", "value"});
  table.add("alpha", 1);
  table.add("b", 23.5);
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| alpha | 1      |"), std::string::npos);
  EXPECT_NE(text.find("+-------+--------+"), std::string::npos);
  std::ostringstream csv;
  table.printCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\nb,23.500\n");
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Render, StructureRenderingHasOneGlyphPerAmoebot) {
  const auto s = shapes::triangle(4);
  const std::string art = renderStructure(s);
  int stars = 0;
  for (const char c : art) stars += c == '*' ? 1 : 0;
  EXPECT_EQ(stars, s.size());
}

TEST(Render, ForestRenderingMarksSourcesAndDestinations) {
  const auto s = shapes::line(5);
  std::vector<int> parent(s.size(), -2);
  std::vector<char> isSource(s.size(), 0), isDest(s.size(), 0);
  const int src = s.idOf({0, 0}), dst = s.idOf({4, 0});
  isSource[src] = 1;
  isDest[dst] = 1;
  parent[src] = -1;
  for (int q = 1; q <= 4; ++q)
    parent[s.idOf({q, 0})] = s.idOf({q - 1, 0});
  const std::string art = renderForest(s, parent, isSource, isDest);
  EXPECT_NE(art.find('S'), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);
  EXPECT_NE(art.find('<'), std::string::npos);  // westward arrows
}

TEST(Render, RegionGlyphCallback) {
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  const std::string art =
      renderRegion(region, [](int i) { return static_cast<char>('a' + i); });
  EXPECT_NE(art.find('a'), std::string::npos);
  EXPECT_NE(art.find('c'), std::string::npos);
}

}  // namespace
}  // namespace aspf

// AmoebotStructure and Region tests: adjacency, connectivity, hole
// detection, BFS distances, induced subregions.
#include <gtest/gtest.h>

#include "shapes/generators.hpp"
#include "sim/region.hpp"
#include "sim/structure.hpp"

namespace aspf {
namespace {

TEST(Structure, SingleAmoebot) {
  const auto s = AmoebotStructure::fromCoords({{0, 0}});
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.isConnected());
  EXPECT_TRUE(s.isHoleFree());
  for (Dir d : kAllDirs) EXPECT_EQ(s.neighbor(0, d), -1);
}

TEST(Structure, DuplicateCoordinateThrows) {
  EXPECT_THROW(AmoebotStructure::fromCoords({{0, 0}, {1, 0}, {0, 0}}),
               std::invalid_argument);
}

TEST(Structure, NeighborSymmetry) {
  const auto s = shapes::hexagon(3);
  for (int u = 0; u < s.size(); ++u) {
    for (Dir d : kAllDirs) {
      const int v = s.neighbor(u, d);
      if (v >= 0) {
        EXPECT_EQ(s.neighbor(v, opposite(d)), u);
      }
    }
  }
}

TEST(Structure, HexagonIsConnectedAndHoleFree) {
  const auto s = shapes::hexagon(4);
  EXPECT_EQ(s.size(), 3 * 4 * 5 + 1);
  EXPECT_TRUE(s.isConnected());
  EXPECT_TRUE(s.isHoleFree());
}

TEST(Structure, RingHasAHole) {
  // A hexagon ring of radius 2 (hexagon minus its center and inner ring
  // kept): build radius-2 hexagon boundary only.
  const auto hex = shapes::hexagon(2);
  std::vector<Coord> boundary;
  for (const Coord c : hex.coords()) {
    const int m = std::max({std::abs(c.q), std::abs(c.r), std::abs(c.q + c.r)});
    if (m == 2) boundary.push_back(c);
  }
  const auto ring = AmoebotStructure::fromCoords(std::move(boundary));
  EXPECT_TRUE(ring.isConnected());
  EXPECT_FALSE(ring.isHoleFree());
}

TEST(Structure, DisconnectedDetected) {
  const auto s = AmoebotStructure::fromCoords({{0, 0}, {5, 0}});
  EXPECT_FALSE(s.isConnected());
}

TEST(Structure, BfsDistancesOnLine) {
  const auto s = shapes::line(10);
  const int src[] = {s.idOf({0, 0})};
  const auto dist = s.bfsDistances(src);
  for (int q = 0; q < 10; ++q) EXPECT_EQ(dist[s.idOf({q, 0})], q);
}

TEST(Structure, MultiSourceBfs) {
  const auto s = shapes::line(10);
  const int src[] = {s.idOf({0, 0}), s.idOf({9, 0})};
  const auto dist = s.bfsDistances(src);
  for (int q = 0; q < 10; ++q)
    EXPECT_EQ(dist[s.idOf({q, 0})], std::min(q, 9 - q));
}

TEST(Structure, EccentricityOfLineEnd) {
  const auto s = shapes::line(17);
  EXPECT_EQ(s.eccentricity(s.idOf({0, 0})), 16);
}

TEST(Structure, BfsMatchesGridDistanceOnConvexShape) {
  // On a hexagon (a convex, hole-free shape) graph distance equals grid
  // distance.
  const auto s = shapes::hexagon(3);
  const int center = s.idOf({0, 0});
  const int src[] = {center};
  const auto dist = s.bfsDistances(src);
  for (int i = 0; i < s.size(); ++i)
    EXPECT_EQ(dist[i], gridDistance(s.coordOf(i), s.coordOf(center)));
}

TEST(Region, WholeRegionMirrorsStructure) {
  const auto s = shapes::parallelogram(4, 3);
  const Region r = Region::whole(s);
  EXPECT_EQ(r.size(), s.size());
  for (int i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r.globalId(i), i);
    EXPECT_EQ(r.localOf(i), i);
    for (Dir d : kAllDirs)
      EXPECT_EQ(r.neighbor(i, d), s.neighbor(i, d));
  }
}

TEST(Region, SubRegionInducedAdjacency) {
  const auto s = shapes::parallelogram(5, 1);  // a line of 5
  // Take the first three amoebots.
  std::vector<int> ids = {s.idOf({0, 0}), s.idOf({1, 0}), s.idOf({2, 0})};
  const Region r = Region::of(s, ids);
  EXPECT_EQ(r.size(), 3);
  const int l2 = r.localOf(s.idOf({2, 0}));
  // Amoebot at (2,0) has an east neighbor in the structure but not in the
  // region.
  EXPECT_EQ(r.neighbor(l2, Dir::E), -1);
  EXPECT_GE(r.neighbor(l2, Dir::W), 0);
  EXPECT_TRUE(r.isConnectedInduced());
}

TEST(Region, DisconnectedSubRegion) {
  const auto s = shapes::line(5);
  const Region r = Region::of(s, {s.idOf({0, 0}), s.idOf({4, 0})});
  EXPECT_FALSE(r.isConnectedInduced());
}

TEST(Region, LocalBfs) {
  const auto s = shapes::parallelogram(6, 2);
  std::vector<int> ids;
  for (int q = 0; q < 6; ++q) ids.push_back(s.idOf({q, 0}));
  const Region r = Region::of(s, ids);
  const int src[] = {r.localOf(s.idOf({0, 0}))};
  const auto dist = r.bfsDistancesLocal(src);
  for (int q = 0; q < 6; ++q)
    EXPECT_EQ(dist[r.localOf(s.idOf({q, 0}))], q);
}

TEST(Shapes, GeneratorsProduceHoleFreeConnectedStructures) {
  const AmoebotStructure cases[] = {
      shapes::parallelogram(7, 4), shapes::triangle(6),  shapes::hexagon(3),
      shapes::line(12),            shapes::comb(4, 5, 2), shapes::staircase(4, 3),
  };
  for (const auto& s : cases) {
    EXPECT_TRUE(s.isConnected());
    EXPECT_TRUE(s.isHoleFree());
    EXPECT_GT(s.size(), 0);
  }
}

TEST(Shapes, RandomBlobsAreHoleFreeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto s = shapes::randomBlob(150, seed);
    EXPECT_GE(s.size(), 150);
    EXPECT_TRUE(s.isConnected()) << "seed " << seed;
    EXPECT_TRUE(s.isHoleFree()) << "seed " << seed;
  }
}

TEST(Shapes, RandomSpidersAreHoleFreeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto s = shapes::randomSpider(4, 30, seed);
    EXPECT_TRUE(s.isConnected()) << "seed " << seed;
    EXPECT_TRUE(s.isHoleFree()) << "seed " << seed;
  }
}

TEST(Shapes, FillHolesFillsAnEnclosedPocket) {
  // A radius-2 hexagon ring; fillHoles must add the interior.
  const auto hex = shapes::hexagon(2);
  std::vector<Coord> boundary;
  for (const Coord c : hex.coords()) {
    const int m = std::max({std::abs(c.q), std::abs(c.r), std::abs(c.q + c.r)});
    if (m == 2) boundary.push_back(c);
  }
  const auto filled = shapes::fillHoles(boundary);
  EXPECT_TRUE(filled.isHoleFree());
  EXPECT_EQ(filled.size(), shapes::hexagon(2).size());
}

}  // namespace
}  // namespace aspf

// libFuzzer harness for the scenario JSON parser (src/scenario/json.hpp).
// Json::parse is the trust boundary of query-serving mode: every --serve
// request body goes through it, so it must reject arbitrary bytes with a
// clean std::runtime_error -- never a crash, hang, or sanitizer report.
//
// Properties checked beyond "does not crash":
//   * accepted inputs round-trip: parse(dump(parse(x))) == parse(x), for
//     both compact and pretty-printed dumps;
//   * rejection is the *only* failure mode (any other exception aborts).
//
// Built under Clang with -fsanitize=fuzzer,address (the CI fuzz job);
// under other compilers tests/fuzz/standalone_main.cpp replays the
// committed corpus files so the harness still runs everywhere.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "scenario/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  aspf::scenario::Json parsed;
  try {
    parsed = aspf::scenario::Json::parse(text);
  } catch (const std::runtime_error&) {
    return 0;  // clean rejection is the contract for malformed input
  }
  // Round-trip: a dump of an accepted value must re-parse to an equal
  // value (dump and operator== are what the --diff trajectory checks and
  // the serve-mode responses are built on).
  for (const int indent : {0, 2}) {
    const std::string dumped = parsed.dump(indent);
    try {
      if (!(aspf::scenario::Json::parse(dumped) == parsed)) std::abort();
    } catch (const std::runtime_error&) {
      std::abort();  // dump() emitted something parse() rejects
    }
  }
  return 0;
}

// Corpus-replay driver for toolchains without libFuzzer (gcc, MSVC):
// links against the same LLVMFuzzerTestOneInput entry point and feeds it
// every file named on the command line (CI passes the committed corpus
// directory expanded by the shell). No coverage feedback, no mutation --
// it proves the harness builds and the corpus passes everywhere, while
// the Clang CI job does the actual fuzzing with -fsanitize=fuzzer.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s corpus-file...\n"
                 "(standalone replay driver; build with Clang for real "
                 "libFuzzer mutation)\n",
                 argv[0]);
    return 0;  // no corpus is not a failure -- keeps bare invocations green
  }
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read corpus file: %s\n", argv[i]);
      return 2;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++ran;
  }
  std::fprintf(stderr, "replayed %d corpus file(s), no crashes\n", ran);
  return 0;
}

// libFuzzer harness for the CLI flag grammar (tools/cli_args.hpp).
// parseInt/parseIntList sit directly behind every aspf-run flag, so they
// chew on whatever the shell hands over. The documented contracts double
// as fuzz properties:
//   * no crash, no exception -- failure is `false` plus a reason string;
//   * full-match: a successful parseInt must re-serialize to the input
//     after sign/zero normalization is ruled out by rejecting junk, so
//     here we only require failure => non-empty error;
//   * range cap: a successful parseIntList never appends more than
//     kMaxRangeSpan values per comma-separated item;
//   * nonNegative mode never lets a negative value through.
//
// Built under Clang with -fsanitize=fuzzer,address; elsewhere the
// standalone corpus driver replays tests/fuzz/corpus/cli_args/.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_args.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  int value = 0;
  std::string error;
  if (!aspf::cli::parseInt(text, &value, &error) && error.empty())
    std::abort();  // failures must carry a reason

  for (const bool nonNegative : {false, true}) {
    std::vector<int> values;
    error.clear();
    const bool ok =
        aspf::cli::parseIntList(text, &values, &error, nonNegative);
    if (!ok && error.empty()) std::abort();
    if (ok) {
      // One item expands to at most kMaxRangeSpan values; items are
      // comma-separated, so the total is bounded by (commas+1) * cap.
      std::size_t items = 1;
      for (const char c : text)
        if (c == ',') ++items;
      if (values.size() >
          items * static_cast<std::size_t>(aspf::cli::kMaxRangeSpan))
        std::abort();
      if (nonNegative)
        for (const int v : values)
          if (v < 0) std::abort();
    }
  }
  return 0;
}

// Unit tests for the scenario subsystem: registry integrity (every named
// scenario constructs a connected, hole-free structure and replays
// bit-identically from its seed), sweep building, the JSON value
// round-trip, report schema validation, and runner determinism across
// thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "scenario/json.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace aspf::scenario {
namespace {

// --- Registry ------------------------------------------------------------

TEST(Registry, SuitesArePresent) {
  EXPECT_NE(findSuite("conformance"), nullptr);
  EXPECT_NE(findSuite("smoke"), nullptr);
  EXPECT_NE(findSuite("large"), nullptr);
  EXPECT_NE(findSuite("huge"), nullptr);
  EXPECT_EQ(findSuite("no-such-suite"), nullptr);
}

TEST(Registry, HugeSuiteCoversAllFamiliesAtScale) {
  // The huge tier's contract (docs/BENCHMARKS.md): one instance per shape
  // family, each with n >= 100k. Sizes are checked via the closed-form
  // family formulas; the random families are constructed by the dedicated
  // scale test below, not here.
  const Suite* huge = findSuite("huge");
  ASSERT_NE(huge, nullptr);
  ASSERT_EQ(huge->scenarios.size(), 10u);
  std::set<Shape> families;
  for (const Scenario& sc : huge->scenarios) families.insert(sc.shape);
  EXPECT_EQ(families.size(), 10u) << "every shape family exactly once";
}

TEST(Registry, ConformanceMatrixIsFrozen) {
  // 8 shape families x 4 (k,l) x 2 seeds, and the PR-1 names, which pin
  // the recorded instances of the conformance harness.
  const std::vector<Scenario> matrix = conformanceMatrix();
  ASSERT_EQ(matrix.size(), 64u);
  EXPECT_EQ(matrix.front().name, "parallelogram16x8_k1_l6_s1");
  EXPECT_EQ(matrix.back().name, "spider4x18_k12_l20_s2");
  std::set<std::string> names;
  for (const Scenario& sc : matrix) names.insert(sc.name);
  EXPECT_EQ(names.size(), matrix.size()) << "duplicate scenario names";
}

TEST(Registry, NamesAreCanonicalAndUnambiguous) {
  // A name may appear in several suites (smoke reuses conformance
  // instances on purpose) but then must denote the *identical* scenario,
  // so `aspf-run --scenario <name>` and gtest replay are unambiguous.
  std::map<std::string, Scenario> byName;
  for (const Suite& suite : suites()) {
    std::set<std::string> inSuite;
    for (const Scenario& sc : suite.scenarios) {
      EXPECT_TRUE(inSuite.insert(sc.name).second)
          << "duplicate name " << sc.name << " within suite " << suite.name;
      EXPECT_EQ(sc.name, canonicalName(sc));
      const auto [it, inserted] = byName.emplace(sc.name, sc);
      if (!inserted) {
        EXPECT_EQ(it->second, sc)
            << "name " << sc.name << " denotes two different scenarios";
      }
      const Scenario* found = findScenario(sc.name);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, sc);
    }
  }
}

TEST(Registry, EveryScenarioConstructsConnectedAndHoleFree) {
  for (const Suite& suite : suites()) {
    // The large/huge suites are covered by their own (slower) construction
    // paths via smoke/conformance shape families; constructing ~4k to 100k
    // amoebot instances for every shape here would dominate the suite.
    // Spot-check instead (huge: the cheap closed-form parallelogram).
    std::size_t limit = suite.scenarios.size();
    if (suite.name == "large") limit = 3;
    if (suite.name == "huge") limit = 1;
    for (std::size_t i = 0; i < limit; ++i) {
      const Scenario& sc = suite.scenarios[i];
      SCOPED_TRACE(sc.name);
      const BuiltScenario built(sc);
      EXPECT_GT(built.n(), 0);
      EXPECT_TRUE(built.structure().isConnected());
      EXPECT_TRUE(built.structure().isHoleFree());
      EXPECT_EQ(static_cast<int>(built.instance().sources.size()),
                std::min(sc.k, built.n()));
      EXPECT_EQ(static_cast<int>(built.instance().destinations.size()),
                std::min(sc.l, built.n()));
    }
  }
}

TEST(Registry, NewShapeFamiliesAreValidInstances) {
  for (const Scenario& sc : {make(Shape::Zigzag, 12, 8, 2, 4, 7),
                             make(Shape::DiamondChain, 5, 3, 2, 4, 7)}) {
    SCOPED_TRACE(sc.name);
    const BuiltScenario built(sc);
    EXPECT_TRUE(built.structure().isConnected());
    EXPECT_TRUE(built.structure().isHoleFree());
  }
  // Sizes are exact and deterministic: a zigzag has a*b + 1 amoebots, a
  // diamond chain a hexagons of 3b(b+1)+1 plus a-1 bridges.
  EXPECT_EQ(buildShape(make(Shape::Zigzag, 12, 8, 1, 1, 0)).size(),
            12 * 8 + 1);
  EXPECT_EQ(buildShape(make(Shape::DiamondChain, 5, 3, 1, 1, 0)).size(),
            5 * (3 * 3 * 4 + 1) + 4);
}

TEST(Registry, ScenariosReplayIdentically) {
  for (const Suite& suite : suites()) {
    if (suite.name == "large" || suite.name == "huge")
      continue;  // replay covered by runner test / huge-tier CLI runs
    for (const Scenario& sc : suite.scenarios) {
      SCOPED_TRACE(sc.name);
      const BuiltScenario a(sc);
      const BuiltScenario b(sc);
      ASSERT_EQ(a.n(), b.n());
      EXPECT_EQ(a.structure().coords(), b.structure().coords());
      EXPECT_EQ(a.instance().sources, b.instance().sources);
      EXPECT_EQ(a.instance().destinations, b.instance().destinations);
    }
  }
}

TEST(Registry, BuildSweepTakesTheCrossProduct) {
  SweepSpec spec;
  spec.shape = Shape::Hexagon;
  spec.a = 4;
  spec.ks = {1, 4};
  spec.ls = {2, 8};
  spec.seeds = {1, 2, 3};
  const std::vector<Scenario> swept = buildSweep(spec);
  ASSERT_EQ(swept.size(), 2u * 2u * 3u);
  EXPECT_EQ(swept.front().name, "hexagon4_k1_l2_s1");
  EXPECT_EQ(swept.back().name, "hexagon4_k4_l8_s3");
}

TEST(Registry, ShapeTagsRoundTrip) {
  for (const Shape s :
       {Shape::Parallelogram, Shape::Triangle, Shape::Hexagon, Shape::Line,
        Shape::Comb, Shape::Staircase, Shape::RandomBlob, Shape::RandomSpider,
        Shape::Zigzag, Shape::DiamondChain}) {
    Shape parsed;
    ASSERT_TRUE(shapeFromString(toString(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  Shape parsed;
  EXPECT_FALSE(shapeFromString("dodecahedron", &parsed));
}

// --- Json ----------------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  Json doc = Json::object();
  doc["s"] = Json("quote \" backslash \\ newline \n tab \t");
  doc["i"] = Json(42);
  doc["neg"] = Json(-7);
  doc["f"] = Json(1.25);
  doc["big"] = Json(1234567890123LL);
  doc["t"] = Json(true);
  doc["nil"] = Json();
  Json arr = Json::array();
  arr.push(Json(1));
  arr.push(Json("two"));
  arr.push(Json::object());
  doc["arr"] = std::move(arr);

  for (const int indent : {0, 2}) {
    const Json reparsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(reparsed, doc) << "indent=" << indent;
  }
}

TEST(Json, ParseRejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}", "nul"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  // "%.17g" used to emit `nan`/`inf`, producing documents our own parser
  // (and every conforming one) rejects. JSON has no non-finite literal:
  // null is the only faithful spelling, and the output stays valid.
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(0.0).dump(), "0");

  // Round-trip: a document with a non-finite leaf must dump to something
  // parse() accepts, with the leaf read back as null.
  Json doc = Json::object();
  doc["ok"] = Json(2.5);
  doc["bad"] = Json(std::numeric_limits<double>::quiet_NaN());
  const Json back = Json::parse(doc.dump(2));
  EXPECT_EQ(back.find("ok")->asNumber(), 2.5);
  EXPECT_TRUE(back.find("bad")->isNull());
}

TEST(Json, ParseRejectsNonFiniteNumbers) {
  // strtod accepts `inf`/`nan` spellings and overflows "1e999" to
  // infinity; the JSON grammar allows neither.
  for (const char* bad : {"inf", "-inf", "nan", "-nan", "Infinity", "NaN",
                          "1e999", "-1e999", "[1e400]"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
  // Large-but-finite values still parse.
  EXPECT_EQ(Json::parse("1e308").asNumber(), 1e308);
}

TEST(Json, ObjectKeepsInsertionOrderAndFinds) {
  Json obj = Json::object();
  obj["z"] = Json(1);
  obj["a"] = Json(2);
  obj["z"] = Json(3);  // overwrite, not duplicate
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "z");
  EXPECT_EQ(obj.find("z")->asInt(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

// --- Report round-trip + validation --------------------------------------

BenchReport sampleReport() {
  BenchReport report;
  report.suite = "smoke";
  report.algos = {"polylog", "wave"};
  report.threads = 2;
  report.lanes = 4;
  report.timing = true;
  ScenarioReport sr;
  sr.scenario = make(Shape::Comb, 10, 8, 5, 12, 2);
  sr.n = 99;
  sr.kEff = 5;
  sr.lEff = 12;
  AlgoRun polylog;
  polylog.algo = "polylog";
  polylog.rounds = 300;
  polylog.wallMs = 12.375;  // dyadic, exact through the double round-trip
  polylog.checkerOk = true;
  polylog.delivers = 530;
  polylog.beeps = 2923;
  polylog.hasPhases = true;
  polylog.phases = {10, 20, 30, 40, 50, 60};
  AlgoRun wave;
  wave.algo = "wave";
  wave.rounds = 44;
  wave.wallMs = 0.5;
  wave.checkerOk = true;
  wave.delivers = 22;
  wave.beeps = 214;
  sr.runs = {polylog, wave};
  report.scenarios = {sr};
  report.totalWallMs = 13.5;
  report.peakRssKb = 4664;
  return report;
}

TEST(Report, JsonRoundTripReproducesTheStruct) {
  const BenchReport report = sampleReport();
  const Json doc = toJson(report);
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
  const BenchReport back = reportFromJson(reparsed);
  EXPECT_EQ(back, report);
}

TEST(Report, ValidateRejectsSchemaViolations) {
  const Json good = toJson(sampleReport());
  std::string error;

  Json wrongVersion = good;
  wrongVersion["schema_version"] = Json(99);
  EXPECT_FALSE(validateReport(wrongVersion, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);

  Json missingTotals = good;
  missingTotals["totals"] = Json();  // null, not an object
  EXPECT_FALSE(validateReport(missingTotals, &error));

  Json badTotals = good;
  badTotals["totals"]["runs"] = Json(99);  // inconsistent with runs[] sums
  EXPECT_FALSE(validateReport(badTotals, &error));
  EXPECT_NE(error.find("totals.runs"), std::string::npos);

  Json badAlgo = good;
  badAlgo["scenarios"] = Json::parse(
      R"([{"name":"x","shape":"comb","a":1,"b":1,"k":1,"l":1,"seed":1,
           "n":3,"k_eff":1,"l_eff":1,
           "runs":[{"algo":"dijkstra","rounds":1,"wall_ms":0,
                    "checker_ok":true,"error":"","delivers":0,"beeps":0}]}])");
  // totals.scenarios still says 1, so only the algo name is wrong.
  EXPECT_FALSE(validateReport(badAlgo, &error));
  EXPECT_NE(error.find("algo"), std::string::npos);

  EXPECT_THROW(reportFromJson(wrongVersion), std::runtime_error);
}

// --- Runner --------------------------------------------------------------

TEST(Runner, DeterministicAcrossRunsAndThreadCounts) {
  const std::vector<Scenario> batch = {make(Shape::Hexagon, 5, 0, 3, 6, 1),
                                       make(Shape::Comb, 6, 5, 2, 4, 2),
                                       make(Shape::Zigzag, 6, 6, 2, 4, 1)};
  RunOptions options;
  options.timing = false;  // zero wall-time so reports compare exactly
  options.threads = 1;
  const BenchReport a = runBatch("t", batch, options);
  options.threads = 3;
  const BenchReport b = runBatch("t", batch, options);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  // Scenario payloads must be bit-identical; only the recorded thread
  // count may differ.
  EXPECT_EQ(a.scenarios, b.scenarios);
  for (const ScenarioReport& sr : a.scenarios) {
    ASSERT_EQ(sr.runs.size(), 3u);
    for (const AlgoRun& run : sr.runs) {
      EXPECT_TRUE(run.checkerOk) << sr.scenario.name << " " << run.algo;
      EXPECT_TRUE(run.error.empty()) << run.error;
      EXPECT_EQ(run.wallMs, 0.0);
      EXPECT_GT(run.rounds, 0);
      EXPECT_GT(run.delivers, 0);
    }
    // The polylog run carries the per-phase breakdown and it sums to the
    // total (the breakdown partitions the round count).
    const AlgoRun& polylog = sr.runs[0];
    ASSERT_TRUE(polylog.hasPhases);
    long sum = 0;
    for (const long p : polylog.phases) sum += p;
    EXPECT_EQ(sum, polylog.rounds);
  }
}

TEST(Runner, SimThreadsDoNotChangeAnyDeterministicField) {
  // The sharded substrate's core contract at the report level: runs at
  // any --sim-threads value are bit-identical except for the recorded
  // config.sim_threads stamp. The hexagon instance is large enough to
  // clear the sharding gate, so the sharded code paths really execute.
  const std::vector<Scenario> batch = {make(Shape::Hexagon, 16, 0, 3, 6, 1),
                                       make(Shape::Zigzag, 40, 16, 2, 4, 2)};
  RunOptions options;
  options.timing = false;
  options.threads = 1;
  options.simThreads = 1;
  const BenchReport serial = runBatch("t", batch, options);
  for (const int simThreads : {2, 8}) {
    options.simThreads = simThreads;
    BenchReport sharded = runBatch("t", batch, options);
    EXPECT_EQ(sharded.simThreads, simThreads);
    ASSERT_EQ(sharded.scenarios, serial.scenarios) << simThreads;
    // Normalizing the one execution-resource stamp makes the WHOLE
    // struct equal -- nothing else may differ.
    sharded.simThreads = serial.simThreads;
    EXPECT_EQ(sharded, serial) << simThreads;
    std::string why;
    EXPECT_TRUE(equalDeterministic(serial, sharded, &why)) << why;
  }
}

TEST(Report, SimThreadsRoundTripsAndIsOptionalOnInput) {
  BenchReport report = sampleReport();
  report.simThreads = 8;
  const Json doc = toJson(report);
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  EXPECT_EQ(doc.find("config")->find("sim_threads")->asInt(), 8);
  EXPECT_EQ(reportFromJson(doc).simThreads, 8);

  // Reports from PR <= 3 predate the field: still schema-valid, default 1.
  Json legacy = toJson(sampleReport());
  Json config = Json::object();
  for (const auto& [key, value] : legacy.find("config")->members()) {
    if (key != "sim_threads") config[key] = value;
  }
  legacy["config"] = std::move(config);
  ASSERT_TRUE(validateReport(legacy, &error)) << error;
  EXPECT_EQ(reportFromJson(legacy).simThreads, 1);

  // ... but a present field must be a sane number.
  Json bad = toJson(sampleReport());
  bad["config"]["sim_threads"] = Json(0);
  EXPECT_FALSE(validateReport(bad, &error));
  EXPECT_NE(error.find("sim_threads"), std::string::npos);
  Json wrongType = toJson(sampleReport());
  wrongType["config"]["sim_threads"] = Json("eight");
  EXPECT_FALSE(validateReport(wrongType, &error));
}

TEST(Runner, RecordsFailuresInsteadOfAborting) {
  // k = 0: every algorithm throws std::invalid_argument; the batch must
  // complete and carry the error message on each run.
  Scenario sc = make(Shape::Hexagon, 3, 0, 0, 2, 1);
  RunOptions options;
  options.timing = false;
  const BenchReport report = runBatch("t", {sc}, options);
  ASSERT_EQ(report.scenarios.size(), 1u);
  for (const AlgoRun& run : report.scenarios[0].runs) {
    EXPECT_FALSE(run.checkerOk) << run.algo;
    EXPECT_FALSE(run.error.empty()) << run.algo;
  }
  std::string error;
  EXPECT_TRUE(validateReport(toJson(report), &error)) << error;
}

TEST(Runner, UncheckedRunsAreMarkedInTheConfigBlock) {
  // With check = false the checker verdicts are trust, not verification;
  // the report must say so, or an unverified baseline could masquerade as
  // a checked one.
  RunOptions options;
  options.timing = false;
  options.check = false;
  const BenchReport report =
      runBatch("t", {make(Shape::Hexagon, 3, 0, 2, 4, 1)}, options);
  EXPECT_FALSE(report.check);
  const Json doc = toJson(report);
  ASSERT_NE(doc.find("config")->find("check"), nullptr);
  EXPECT_FALSE(doc.find("config")->find("check")->asBool());
  EXPECT_TRUE(reportFromJson(doc) == report);
}

TEST(Runner, EnginesProduceIdenticalModelResults) {
  // The incremental engine must be observationally equivalent to the
  // from-scratch rebuild: same rounds, delivers, beeps, checker verdicts
  // and phase breakdowns on every run. Only the substrate counters
  // (unions, incr/rebuild round split) may differ -- that is their point.
  const std::vector<Scenario> batch = {make(Shape::Hexagon, 5, 0, 3, 6, 1),
                                       make(Shape::Comb, 6, 5, 2, 4, 2),
                                       make(Shape::Zigzag, 6, 6, 2, 4, 1)};
  RunOptions options;
  options.timing = false;
  options.threads = 1;
  const BenchReport inc = runBatch("t", batch, options);
  options.engine = CircuitEngine::Rebuild;
  const BenchReport reb = runBatch("t", batch, options);
  EXPECT_EQ(inc.engine, "incremental");
  EXPECT_EQ(reb.engine, "rebuild");
  ASSERT_EQ(inc.scenarios.size(), reb.scenarios.size());
  for (std::size_t i = 0; i < inc.scenarios.size(); ++i) {
    const ScenarioReport& a = inc.scenarios[i];
    const ScenarioReport& b = reb.scenarios[i];
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t j = 0; j < a.runs.size(); ++j) {
      SCOPED_TRACE(a.scenario.name + " " + a.runs[j].algo);
      EXPECT_EQ(a.runs[j].rounds, b.runs[j].rounds);
      EXPECT_EQ(a.runs[j].delivers, b.runs[j].delivers);
      EXPECT_EQ(a.runs[j].beeps, b.runs[j].beeps);
      EXPECT_EQ(a.runs[j].checkerOk, b.runs[j].checkerOk);
      EXPECT_EQ(a.runs[j].error, b.runs[j].error);
      EXPECT_EQ(a.runs[j].phases, b.runs[j].phases);
      // Dirty tracking is engine-independent; the rebuild engine just
      // ignores it, doing every union from scratch each round.
      EXPECT_EQ(a.runs[j].dirtyFrac, b.runs[j].dirtyFrac);
      EXPECT_LE(a.runs[j].unions, b.runs[j].unions);
      EXPECT_EQ(b.runs[j].incrRounds, 0);
      EXPECT_EQ(b.runs[j].rebuildRounds, b.runs[j].delivers);
      EXPECT_EQ(a.runs[j].incrRounds + a.runs[j].rebuildRounds,
                a.runs[j].delivers);
    }
  }
}

TEST(Report, EqualDeterministicIgnoresTimingOnly) {
  const BenchReport a = sampleReport();
  BenchReport b = a;
  b.threads = 16;
  b.timing = false;
  b.totalWallMs = 0.0;
  b.peakRssKb = 0;
  for (ScenarioReport& sr : b.scenarios)
    for (AlgoRun& run : sr.runs) run.wallMs = 0.0;
  std::string why;
  EXPECT_TRUE(equalDeterministic(a, b, &why)) << why;

  b.scenarios[0].runs[0].rounds += 1;
  EXPECT_FALSE(equalDeterministic(a, b, &why));
  EXPECT_NE(why.find("rounds"), std::string::npos) << why;

  BenchReport c = a;
  c.scenarios[0].runs[1].delivers += 5;
  EXPECT_FALSE(equalDeterministic(a, c, &why));
  EXPECT_NE(why.find("delivers"), std::string::npos) << why;
}

TEST(Report, ModelOnlyDiffIgnoresEngineFields) {
  // --diff-model semantics: the engine tag and union counters may differ
  // (incremental vs rebuild run), but model fields -- including the
  // engine-independent dirty fraction -- may not.
  const BenchReport a = sampleReport();
  BenchReport b = a;
  b.engine = "rebuild";
  for (ScenarioReport& sr : b.scenarios) {
    for (AlgoRun& run : sr.runs) {
      run.unions += 1000;
      run.incrRounds = 0;
      run.rebuildRounds = run.delivers;
    }
  }
  std::string why;
  EXPECT_FALSE(equalDeterministic(a, b, &why));
  EXPECT_TRUE(equalDeterministic(a, b, &why, /*modelOnly=*/true)) << why;

  b.scenarios[0].runs[0].dirtyFrac += 0.5;  // engine-independent: compared
  EXPECT_FALSE(equalDeterministic(a, b, &why, /*modelOnly=*/true));
  EXPECT_NE(why.find("dirty_frac"), std::string::npos) << why;
}

TEST(Report, LegacyReportsWithoutEngineFieldsStillValidate) {
  // Reports written before the incremental substrate carry neither
  // config.engine nor the per-run engine counters; they must keep
  // validating and parse with zero/default values (the committed
  // BENCH_*.json trajectory depends on this).
  const Json doc = Json::parse(R"({
    "schema_version": 1, "tool": "aspf-run", "suite": "smoke",
    "config": {"algos": ["wave"], "threads": 1, "lanes": 4,
               "check": true, "timing": false},
    "scenarios": [
      {"name": "hexagon3_k1_l1_s1", "shape": "hexagon", "a": 3, "b": 0,
       "k": 1, "l": 1, "seed": 1, "n": 37, "k_eff": 1, "l_eff": 1,
       "runs": [{"algo": "wave", "rounds": 9, "wall_ms": 0,
                 "checker_ok": true, "error": "",
                 "delivers": 9, "beeps": 120}]}],
    "totals": {"scenarios": 1, "runs": 1, "wall_ms": 0, "peak_rss_kb": 0}
  })");
  std::string error;
  ASSERT_TRUE(validateReport(doc, &error)) << error;
  const BenchReport back = reportFromJson(doc);
  EXPECT_EQ(back.engine, "incremental");
  ASSERT_EQ(back.scenarios.size(), 1u);
  for (const AlgoRun& run : back.scenarios[0].runs) {
    EXPECT_EQ(run.unions, 0);
    EXPECT_EQ(run.incrRounds, 0);
    EXPECT_EQ(run.rebuildRounds, 0);
    EXPECT_EQ(run.dirtyFrac, 0.0);
  }
}

TEST(Runner, AlgoTagsRoundTrip) {
  for (const Algo a : kAllAlgos) {
    Algo parsed;
    ASSERT_TRUE(algoFromString(toString(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
  Algo parsed;
  EXPECT_FALSE(algoFromString("dijkstra", &parsed));
}

}  // namespace
}  // namespace aspf::scenario

// Shortest path tree algorithm tests (Section 4, Theorem 39): correctness
// of SPSP / SSSP / (1,l)-SPF against exact BFS via the forest checker, and
// the O(log l) round behavior.
#include <gtest/gtest.h>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "shapes/generators.hpp"
#include "spf/spt.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

struct Scenario {
  AmoebotStructure s;
  Region region;
  explicit Scenario(AmoebotStructure st)
      : s(std::move(st)), region(Region::whole(s)) {}
};

std::vector<AmoebotStructure> spfShapes() {
  std::vector<AmoebotStructure> shapes;
  shapes.push_back(shapes::parallelogram(10, 6));
  shapes.push_back(shapes::triangle(8));
  shapes.push_back(shapes::hexagon(4));
  shapes.push_back(shapes::comb(5, 6, 2));
  shapes.push_back(shapes::staircase(5, 3));
  shapes.push_back(shapes::line(25));
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    shapes.push_back(shapes::randomBlob(120, seed));
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    shapes.push_back(shapes::randomSpider(4, 25, seed));
  return shapes;
}

TEST(Spt, SsspIsExactOnAllShapes) {
  Rng rng(99);
  for (const auto& s : spfShapes()) {
    const Region region = Region::whole(s);
    const int source = static_cast<int>(rng.below(region.size()));
    const std::vector<char> all(region.size(), 1);
    const SptResult spt = shortestPathTree(region, source, all);
    std::vector<int> dests(region.size());
    for (int i = 0; i < region.size(); ++i) dests[i] = i;
    const int src[] = {source};
    const ForestCheck check =
        checkShortestPathForest(region, spt.parent, src, dests);
    EXPECT_TRUE(check.ok) << check.error << " (n=" << region.size() << ")";
  }
}

class SptRandomSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptRandomSeeds, RandomDestinationSets) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(100, seed + 1000);
  const Region region = Region::whole(s);
  Rng rng(seed * 77);
  const int source = static_cast<int>(rng.below(region.size()));
  std::vector<char> isDest(region.size(), 0);
  std::vector<int> dests;
  const int l = 1 + static_cast<int>(rng.below(20));
  for (int i = 0; i < l; ++i) {
    const int t = static_cast<int>(rng.below(region.size()));
    if (!isDest[t]) {
      isDest[t] = 1;
      dests.push_back(t);
    }
  }
  const SptResult spt = shortestPathTree(region, source, isDest);
  const int src[] = {source};
  const ForestCheck check =
      checkShortestPathForest(region, spt.parent, src, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(SptRandomSeeds, SpspProducesAShortestPath) {
  const std::uint64_t seed = GetParam();
  const auto s = shapes::randomBlob(90, seed + 2000);
  const Region region = Region::whole(s);
  Rng rng(seed);
  const int source = static_cast<int>(rng.below(region.size()));
  int dest = static_cast<int>(rng.below(region.size()));
  std::vector<char> isDest(region.size(), 0);
  isDest[dest] = 1;
  const SptResult spt = shortestPathTree(region, source, isDest);
  // The forest must be exactly the path from dest to source.
  const int src[] = {source};
  const int dst[] = {dest};
  const ForestCheck check =
      checkShortestPathForest(region, spt.parent, src, dst);
  EXPECT_TRUE(check.ok) << check.error;
  // Path length = BFS distance; member count = distance + 1.
  const auto dist = region.bfsDistancesLocal(src);
  int memberCount = 0;
  for (int u = 0; u < region.size(); ++u)
    memberCount += spt.parent[u] != -2 ? 1 : 0;
  EXPECT_EQ(memberCount, dist[dest] + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptRandomSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15));

TEST(Spt, SpspRoundsAreConstantInN) {
  // Theorem 39 with l = 1: O(1) rounds, independent of n.
  long maxRounds = 0;
  for (const int radius : {4, 8, 16, 24}) {
    const auto s = shapes::hexagon(radius);
    const Region region = Region::whole(s);
    std::vector<char> isDest(region.size(), 0);
    const int source = region.localOf(s.idOf({-radius, 0}));
    const int dest = region.localOf(s.idOf({radius, 0}));
    isDest[dest] = 1;
    const SptResult spt = shortestPathTree(region, source, isDest);
    maxRounds = std::max(maxRounds, spt.rounds);
  }
  // The constant: a handful of O(1)-iteration primitives.
  EXPECT_LE(maxRounds, 40);
}

TEST(Spt, SsspRoundsGrowLogarithmically) {
  // Theorem 39 with l = n: O(log n) rounds.
  std::vector<std::pair<int, long>> samples;
  for (const int radius : {4, 8, 16, 32}) {
    const auto s = shapes::hexagon(radius);
    const Region region = Region::whole(s);
    const std::vector<char> all(region.size(), 1);
    const SptResult spt =
        shortestPathTree(region, region.localOf(s.idOf({0, 0})), all);
    samples.emplace_back(region.size(), spt.rounds);
  }
  for (const auto& [n, rounds] : samples) {
    EXPECT_LE(rounds, 14 * bitWidth(static_cast<std::uint64_t>(n)) + 30)
        << "n=" << n;
  }
  // And SSSP beats the BFS wave on large diameters.
  const auto s = shapes::line(512);
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  const SptResult spt = shortestPathTree(region, 0, all);
  std::vector<int> allDest(region.size());
  for (int i = 0; i < region.size(); ++i) allDest[i] = i;
  const int src[] = {0};
  const BfsWaveResult wave = bfsWaveForest(region, src, allDest);
  EXPECT_LT(spt.rounds, wave.rounds / 4);
}

TEST(Spt, BfsWaveBaselineIsCorrect) {
  Rng rng(5);
  for (const auto& s : spfShapes()) {
    const Region region = Region::whole(s);
    const int source = static_cast<int>(rng.below(region.size()));
    std::vector<int> dests;
    for (int i = 0; i < 5; ++i)
      dests.push_back(static_cast<int>(rng.below(region.size())));
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    const int src[] = {source};
    const BfsWaveResult wave = bfsWaveForest(region, src, dests);
    const ForestCheck check =
        checkShortestPathForest(region, wave.parent, src, dests);
    EXPECT_TRUE(check.ok) << check.error;
  }
}

TEST(Spt, SingleAmoebot) {
  const auto s = shapes::line(1);
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  const SptResult spt = shortestPathTree(region, 0, all);
  EXPECT_EQ(spt.parent[0], -1);
}

}  // namespace
}  // namespace aspf

// Circuit engine tests: partition sets, circuits as connected components,
// beep delivery semantics (no origin, no multiplicity), region isolation,
// parallel-round accounting, and the dirty-tracking contract of the
// incremental engine (substrate counters).
#include <gtest/gtest.h>

#include "sim/circuit_engine.hpp"
#include "sim/comm.hpp"
#include "sim/sim_counters.hpp"
#include "shapes/generators.hpp"

namespace aspf {
namespace {

// Joins pins E/W on lane 0 for every amoebot of a line: one global circuit.
void wireLineLane0(Comm& comm) {
  const Region& r = comm.region();
  for (int a = 0; a < r.size(); ++a) {
    const Pin pins[] = {{Dir::E, 0}, {Dir::W, 0}};
    comm.pins(a).join(pins);
  }
}

TEST(Circuits, SingletonPinsDoNotRelay) {
  // Three amoebots in a line, all pins singleton: a beep at one end reaches
  // the direct neighbor's facing pin (the external link) but not the far
  // amoebot.
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(0, {Dir::E, 0}));
  EXPECT_TRUE(comm.receivedPin(1, {Dir::W, 0}));
  EXPECT_FALSE(comm.receivedPin(1, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedAny(2));
}

TEST(Circuits, JoinedPinsRelayAcrossTheLine) {
  const auto s = shapes::line(5);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < 5; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
  // Lane 1 stays silent.
  for (int a = 0; a < 5; ++a) EXPECT_FALSE(comm.receivedPin(a, {Dir::E, 1}));
}

TEST(Circuits, BeepsHaveNoMultiplicity) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.beepPin(3, {Dir::W, 0});
  comm.beepPin(1, {Dir::E, 0});
  comm.deliver();
  // All stations hear exactly "beep" (one bit), regardless of sender count.
  for (int a = 0; a < 4; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::W, 0}));
}

TEST(Circuits, DeliveryIsOneRound) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  EXPECT_EQ(comm.rounds(), 0);
  comm.deliver();
  comm.deliver();
  EXPECT_EQ(comm.rounds(), 2);
  comm.chargeRounds(3);
  EXPECT_EQ(comm.rounds(), 5);
}

TEST(Circuits, BeepsDoNotPersistAcrossRounds) {
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(2, {Dir::W, 0}));
  comm.deliver();  // nobody beeps
  EXPECT_FALSE(comm.receivedPin(2, {Dir::W, 0}));
}

TEST(Circuits, RegionIsolation) {
  // Two sub-regions of a line; a circuit in one region never carries beeps
  // into the other even though the amoebots are physically adjacent.
  const auto s = shapes::line(6);
  std::vector<int> left, right;
  for (int q = 0; q < 3; ++q) left.push_back(s.idOf({q, 0}));
  for (int q = 3; q < 6; ++q) right.push_back(s.idOf({q, 0}));
  const Region rl = Region::of(s, left);
  const Region rr = Region::of(s, right);
  Comm cl(rl, 2), cr(rr, 2);
  wireLineLane0(cl);
  wireLineLane0(cr);
  cl.beepPin(0, {Dir::E, 0});
  cl.deliver();
  cr.deliver();
  for (int a = 0; a < rl.size(); ++a) EXPECT_TRUE(cl.receivedPin(a, {Dir::E, 0}));
  for (int a = 0; a < rr.size(); ++a) EXPECT_FALSE(cr.receivedAny(a));
}

TEST(Circuits, AnalyzeCountsGlobalCircuit) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  const CircuitInfo info = analyzeCircuits(comm);
  // Lane 0: one spanning circuit. Lane 1: pins stay singleton; each edge's
  // two facing pins form one 2-amoebot circuit, interior singletons as well.
  int spanning = 0;
  for (int c = 0; c < info.circuitCount; ++c)
    if (info.amoebotsOnCircuit[c] == 4) ++spanning;
  EXPECT_EQ(spanning, 1);
}

TEST(Circuits, AnalyzeSingletonConfiguration) {
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  Comm comm(region, 1);
  const CircuitInfo info = analyzeCircuits(comm);
  // With all-singleton configurations every circuit is exactly one external
  // link (two pins) or a lone boundary pin.
  for (int c = 0; c < info.circuitCount; ++c)
    EXPECT_LE(info.amoebotsOnCircuit[c], 2);
}

TEST(Circuits, ParallelRoundsOfNothingIsFree) {
  // Regression: an empty execution set used to be charged the global sync
  // beep (returned 1). No sub-protocol ran, so no round may be charged.
  EXPECT_EQ(parallelRounds({}), 0);
  const long one[] = {5};
  EXPECT_EQ(parallelRounds(one), 6);
  const long several[] = {3, 9, 4};
  EXPECT_EQ(parallelRounds(several), 10);
}

TEST(Circuits, ReceivedBeforeAnyDeliverIsFalse) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  const Comm comm(region, 2);
  EXPECT_FALSE(comm.receivedPin(0, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedAny(1));
}

TEST(Circuits, UnchangedConfigurationsAreNotDirty) {
  // The protocol idiom "resetPins(); re-join the same sets" must not count
  // as reconfiguration: deliver() sees identical labels and the
  // incremental engine performs no unions at all.
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  wireLineLane0(comm);
  comm.deliver();  // first round: full rebuild by design

  const SimCounters before = simCounters();
  comm.resetPins();
  wireLineLane0(comm);  // identical configuration
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.delivers, 1);
  EXPECT_EQ(delta.dirtyAmoebots, 0);
  EXPECT_EQ(delta.unions, 0);
  EXPECT_EQ(delta.incrementalRounds, 1);
  EXPECT_EQ(delta.rebuildRounds, 0);
  // ... and the beep still reaches the whole line on the cached circuits.
  for (int a = 0; a < 6; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
}

TEST(Circuits, LocalChangeTriggersLocalUpdate) {
  // Splitting one amoebot's partition set dirties exactly that amoebot;
  // the incremental engine re-unions only the affected circuit. (The line
  // is long enough that the cut circuit stays under the traversal budget,
  // which falls back to a rebuild for structure-spanning fractions.)
  const auto s = shapes::line(64);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  wireLineLane0(comm);
  comm.deliver();

  const SimCounters before = simCounters();
  comm.pins(32).reset();  // cut the global lane-0 circuit at amoebot 32
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.dirtyAmoebots, 1);
  EXPECT_EQ(delta.incrementalRounds, 1);
  EXPECT_EQ(delta.rebuildRounds, 0);
  EXPECT_GT(delta.unions, 0);
  // The beep now stops at the cut: amoebots left of 32 (and 32's W pin
  // via the external link) hear it, those right of it do not.
  EXPECT_TRUE(comm.receivedPin(31, {Dir::E, 0}));
  EXPECT_TRUE(comm.receivedPin(32, {Dir::W, 0}));
  EXPECT_FALSE(comm.receivedPin(32, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedPin(40, {Dir::W, 0}));
  // Re-joining heals the circuit again.
  const Pin pins[] = {{Dir::E, 0}, {Dir::W, 0}};
  comm.pins(32).join(pins);
  comm.beepPin(63, {Dir::W, 0});
  comm.deliver();
  for (int a = 0; a < 64; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
}

TEST(Circuits, HighDirtyFractionFallsBackToRebuild) {
  // Reconfiguring (almost) every amoebot makes the affected-component
  // traversal pointless; deliver() must take the from-scratch path.
  const auto s = shapes::line(8);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  comm.deliver();
  const SimCounters before = simCounters();
  wireLineLane0(comm);  // all 8 amoebots change
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.dirtyAmoebots, 8);
  EXPECT_EQ(delta.rebuildRounds, 1);
  EXPECT_EQ(delta.incrementalRounds, 0);
}

TEST(Circuits, RebuildEngineMatchesIncrementalDelivery) {
  // Same reconfiguration sequence on both engines: identical received()
  // results every round (the differential fuzz test in test_incremental
  // widens this to random sequences).
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  Comm inc(region, 2, CircuitEngine::Incremental);
  Comm reb(region, 2, CircuitEngine::Rebuild);
  for (Comm* comm : {&inc, &reb}) {
    wireLineLane0(*comm);
    comm->beepPin(0, {Dir::E, 0});
    comm->deliver();
    comm->pins(3).reset();
    comm->beepPin(0, {Dir::E, 0});
    comm->deliver();
  }
  for (int a = 0; a < region.size(); ++a) {
    for (Dir d : kAllDirs) {
      for (std::uint8_t lane = 0; lane < 2; ++lane) {
        EXPECT_EQ(inc.receivedPin(a, {d, lane}), reb.receivedPin(a, {d, lane}))
            << "amoebot " << a << " dir " << static_cast<int>(d) << " lane "
            << static_cast<int>(lane);
      }
    }
  }
  EXPECT_EQ(inc.rounds(), reb.rounds());
}

TEST(Validation, ConstructorsRejectOutOfRangeLanes) {
  // The lane bound used to be a debug-only assert; a release build could
  // construct an arena whose labels overflow the fixed 32-byte stride and
  // silently corrupt the neighboring amoebot's block. Now every build
  // throws.
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  for (const int lanes : {-1, 0, kMaxLanes + 1, 99}) {
    EXPECT_THROW(PinArena(4, lanes), std::invalid_argument) << lanes;
    EXPECT_THROW(Comm(region, lanes), std::invalid_argument) << lanes;
  }
  for (int lanes = 1; lanes <= kMaxLanes; ++lanes) {
    EXPECT_NO_THROW(Comm(region, lanes)) << lanes;
  }
  EXPECT_THROW(PinArena(-1, 2), std::invalid_argument);
}

TEST(Validation, ConstructorRejectsOutOfRangeSimThreads) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  for (const int t : {0, -3, kMaxSimThreads + 1}) {
    EXPECT_THROW(Comm(region, 2, CircuitEngine::Incremental, t),
                 std::invalid_argument)
        << t;
  }
  EXPECT_NO_THROW(Comm(region, 2, CircuitEngine::Incremental, kMaxSimThreads));
}

TEST(Validation, EmptyJoinThrows) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  EXPECT_THROW(comm.pins(0).join({}), std::invalid_argument);
}

// --- Sharded engine ------------------------------------------------------
//
// A Comm with simThreads > 1 on a large-enough region partitions its
// arena into shards and runs deliver()'s hot phases on the SimPool. The
// contract: every observable (received bits, rounds, ALL SimCounters) is
// bit-identical to the serial engine. These tests drive serial and
// sharded Comms through identical reconfiguration scripts and compare
// the complete observable state; the seeded fuzz harness in
// test_incremental widens this to random sequences.

/// Large enough to clear the sharding gate (kShardMinRegion) AND give
/// 8-thread Comms a full 8 shards (the shard floor is 256 amoebots).
constexpr int kShardTestLine = 2100;

void expectSameObservables(Comm& a, Comm& b, int lanes) {
  ASSERT_EQ(a.region().size(), b.region().size());
  for (int u = 0; u < a.region().size(); ++u) {
    ASSERT_EQ(a.receivedAny(u), b.receivedAny(u)) << "amoebot " << u;
    for (Dir d : kAllDirs) {
      for (int lane = 0; lane < lanes; ++lane) {
        const Pin p{d, static_cast<std::uint8_t>(lane)};
        ASSERT_EQ(a.receivedPin(u, p), b.receivedPin(u, p))
            << "amoebot " << u << " dir " << static_cast<int>(d) << " lane "
            << lane;
      }
    }
  }
  EXPECT_EQ(a.rounds(), b.rounds());
}

TEST(ShardedEngine, ShardGeometryCoversTheRegion) {
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental, 4);
  ASSERT_GT(comm.shardCount(), 1);  // the gate must engage at this size
  for (int u = 0; u < region.size(); ++u) {
    ASSERT_GE(comm.shardOf(u), 0);
    ASSERT_LT(comm.shardOf(u), comm.shardCount());
    if (u > 0) {
      ASSERT_GE(comm.shardOf(u), comm.shardOf(u - 1));  // contiguous ranges
    }
  }
  // Small regions never shard, whatever the thread count.
  const auto tiny = shapes::line(16);
  const Region tinyRegion = Region::whole(tiny);
  Comm tinyComm(tinyRegion, 2, CircuitEngine::Incremental, 8);
  EXPECT_EQ(tinyComm.shardCount(), 1);
}

TEST(ShardedEngine, GlobalCircuitAndLocalCutsMatchSerial) {
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm serial(region, 2, CircuitEngine::Incremental, 1);
  Comm sharded(region, 2, CircuitEngine::Incremental, 4);
  ASSERT_GT(sharded.shardCount(), 1);

  SimCounters serialDelta{}, shardedDelta{};
  auto script = [&](Comm& comm, SimCounters* delta) {
    const SimCounters before = simCounters();
    wireLineLane0(comm);
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();  // first round: full (sharded) rebuild
    // Cut the global circuit at a few spread-out amoebots: the affected
    // closure spans shard boundaries in both directions.
    for (const int cut : {100, 950, 1800}) comm.pins(cut).reset();
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();  // incremental repair across shards
    const Pin heal[] = {{Dir::E, 0}, {Dir::W, 0}};
    for (const int cut : {100, 950, 1800}) comm.pins(cut).join(heal);
    comm.beepPin(kShardTestLine - 1, {Dir::W, 0});
    comm.deliver();
    *delta = simCounters() - before;
  };
  script(serial, &serialDelta);
  script(sharded, &shardedDelta);

  expectSameObservables(serial, sharded, 2);
  // Counter roll-up: bit-identical, not merely close.
  EXPECT_EQ(serialDelta.unions, shardedDelta.unions);
  EXPECT_EQ(serialDelta.delivers, shardedDelta.delivers);
  EXPECT_EQ(serialDelta.dirtyAmoebots, shardedDelta.dirtyAmoebots);
  EXPECT_EQ(serialDelta.incrementalRounds, shardedDelta.incrementalRounds);
  EXPECT_EQ(serialDelta.rebuildRounds, shardedDelta.rebuildRounds);
  EXPECT_EQ(serialDelta.beeps, shardedDelta.beeps);
}

TEST(ShardedEngine, TraversalBudgetFallbackMatchesSerial) {
  // Join every pin of every amoebot into one arena-spanning circuit; a
  // single later cut makes the affected closure exceed the traversal
  // budget, so both engines must abort to the from-scratch rebuild and
  // report identical counters.
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm serial(region, 2, CircuitEngine::Incremental, 1);
  Comm sharded(region, 2, CircuitEngine::Incremental, 4);

  SimCounters serialDelta{}, shardedDelta{};
  auto script = [&](Comm& comm, SimCounters* delta) {
    std::vector<Pin> all;
    for (Dir d : kAllDirs)
      for (std::uint8_t lane = 0; lane < 2; ++lane) all.push_back({d, lane});
    for (int u = 0; u < region.size(); ++u) comm.pins(u).join(all);
    comm.deliver();
    const SimCounters before = simCounters();
    comm.pins(kShardTestLine / 2).reset();  // closure = the whole arena
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
    *delta = simCounters() - before;
  };
  script(serial, &serialDelta);
  script(sharded, &shardedDelta);

  EXPECT_EQ(serialDelta.rebuildRounds, 1);
  EXPECT_EQ(shardedDelta.rebuildRounds, 1);
  EXPECT_EQ(serialDelta.incrementalRounds, shardedDelta.incrementalRounds);
  EXPECT_EQ(serialDelta.unions, shardedDelta.unions);
  expectSameObservables(serial, sharded, 2);
}

TEST(ShardedEngine, LargeBeepBatchScattersIdentically) {
  // Enough queued beeps to cross the parallel-scatter grain: the sharded
  // Comm resolves beep roots concurrently (non-compressing finds) and
  // must stamp exactly the circuits the serial engine stamps.
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm serial(region, 2, CircuitEngine::Incremental, 1);
  Comm sharded(region, 2, CircuitEngine::Incremental, 4);
  for (Comm* comm : {&serial, &sharded}) {
    wireLineLane0(*comm);
    comm->deliver();
    // Cut the line into many segments, then beep from every 7th amoebot:
    // only the segments containing a beeper may light up.
    for (int u = 150; u < kShardTestLine; u += 150) comm->pins(u).reset();
    for (int u = 0; u < kShardTestLine; u += 7)
      comm->beepPin(u, {Dir::E, 0});
    comm->deliver();
  }
  expectSameObservables(serial, sharded, 2);
}

TEST(ShardedEngine, ReceivedBatchMatchesPointQueries) {
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental, 4);
  wireLineLane0(comm);
  comm.pins(1333).reset();
  comm.beepPin(2, {Dir::E, 0});
  comm.deliver();
  std::vector<PinQuery> queries;
  for (int u = 0; u < region.size(); ++u) {
    for (Dir d : kAllDirs)
      for (std::uint8_t lane = 0; lane < 2; ++lane)
        queries.push_back({u, {d, lane}});
  }
  std::vector<char> bits;
  comm.receivedBatch(queries, &bits);  // over the parallel grain
  ASSERT_EQ(bits.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(bits[i] != 0,
              comm.receivedPin(queries[i].local, queries[i].pin))
        << "query " << i;
  }
  // Small batches take the serial path; results must agree as well.
  std::vector<PinQuery> few(queries.begin(), queries.begin() + 5);
  std::vector<char> fewBits;
  comm.receivedBatch(few, &fewBits);
  for (std::size_t i = 0; i < few.size(); ++i)
    EXPECT_EQ(fewBits[i], bits[i]);
}

TEST(ShardedEngine, RebuildEngineShardsIdentically) {
  // The from-scratch oracle also shards; serial and sharded rebuilds
  // must agree on every observable and on the union counter.
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm serial(region, 2, CircuitEngine::Rebuild, 1);
  Comm sharded(region, 2, CircuitEngine::Rebuild, 8);
  ASSERT_EQ(sharded.shardCount(), 8);
  SimCounters serialDelta{}, shardedDelta{};
  auto script = [&](Comm& comm, SimCounters* delta) {
    const SimCounters before = simCounters();
    wireLineLane0(comm);
    comm.beepPin(17, {Dir::E, 0});
    comm.deliver();
    comm.pins(1500).reset();
    comm.beepPin(17, {Dir::E, 0});
    comm.deliver();
    *delta = simCounters() - before;
  };
  script(serial, &serialDelta);
  script(sharded, &shardedDelta);
  expectSameObservables(serial, sharded, 2);
  EXPECT_EQ(serialDelta.unions, shardedDelta.unions);
  EXPECT_EQ(serialDelta.rebuildRounds, shardedDelta.rebuildRounds);
}

TEST(ShardedEngine, ThreadCountDoesNotChangeObservables) {
  // 2-, 4- and 8-way sharding of the same script: all bit-identical.
  const auto s = shapes::line(kShardTestLine);
  const Region region = Region::whole(s);
  Comm reference(region, 2, CircuitEngine::Incremental, 1);
  std::vector<SimCounters> deltas;
  auto script = [&](Comm& comm) {
    const SimCounters before = simCounters();
    wireLineLane0(comm);
    comm.deliver();
    comm.pins(123).reset();
    comm.pins(1456).reset();
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
    deltas.push_back(simCounters() - before);
  };
  script(reference);
  for (const int threads : {2, 4, 8}) {
    Comm comm(region, 2, CircuitEngine::Incremental, threads);
    script(comm);
    expectSameObservables(reference, comm, 2);
    EXPECT_EQ(deltas.front().unions, deltas.back().unions) << threads;
    EXPECT_EQ(deltas.front().incrementalRounds, deltas.back().incrementalRounds)
        << threads;
    EXPECT_EQ(deltas.front().rebuildRounds, deltas.back().rebuildRounds)
        << threads;
  }
}

TEST(Circuits, StarConfigurationReachesAllNeighbors) {
  // Center of a radius-1 hexagon joins one pin per direction into one set;
  // every neighbor hears the center's beep.
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  const int center = region.localOf(s.idOf({0, 0}));
  Comm comm(region, 2);
  std::vector<Pin> star;
  for (Dir d : kAllDirs) star.push_back({d, 0});
  comm.pins(center).join(star);
  comm.beepPin(center, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < region.size(); ++a) {
    if (a == center) continue;
    bool heard = false;
    for (Dir d : kAllDirs)
      heard = heard || comm.receivedPin(a, {d, 0});
    EXPECT_TRUE(heard);
  }
}

}  // namespace
}  // namespace aspf

// Circuit engine tests: partition sets, circuits as connected components,
// beep delivery semantics (no origin, no multiplicity), region isolation.
#include <gtest/gtest.h>

#include "sim/circuit_engine.hpp"
#include "sim/comm.hpp"
#include "shapes/generators.hpp"

namespace aspf {
namespace {

// Joins pins E/W on lane 0 for every amoebot of a line: one global circuit.
void wireLineLane0(Comm& comm) {
  const Region& r = comm.region();
  for (int a = 0; a < r.size(); ++a) {
    const Pin pins[] = {{Dir::E, 0}, {Dir::W, 0}};
    comm.pins(a).join(pins);
  }
}

TEST(Circuits, SingletonPinsDoNotRelay) {
  // Three amoebots in a line, all pins singleton: a beep at one end reaches
  // the direct neighbor's facing pin (the external link) but not the far
  // amoebot.
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(0, {Dir::E, 0}));
  EXPECT_TRUE(comm.receivedPin(1, {Dir::W, 0}));
  EXPECT_FALSE(comm.receivedPin(1, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedAny(2));
}

TEST(Circuits, JoinedPinsRelayAcrossTheLine) {
  const auto s = shapes::line(5);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < 5; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
  // Lane 1 stays silent.
  for (int a = 0; a < 5; ++a) EXPECT_FALSE(comm.receivedPin(a, {Dir::E, 1}));
}

TEST(Circuits, BeepsHaveNoMultiplicity) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.beepPin(3, {Dir::W, 0});
  comm.beepPin(1, {Dir::E, 0});
  comm.deliver();
  // All stations hear exactly "beep" (one bit), regardless of sender count.
  for (int a = 0; a < 4; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::W, 0}));
}

TEST(Circuits, DeliveryIsOneRound) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  EXPECT_EQ(comm.rounds(), 0);
  comm.deliver();
  comm.deliver();
  EXPECT_EQ(comm.rounds(), 2);
  comm.chargeRounds(3);
  EXPECT_EQ(comm.rounds(), 5);
}

TEST(Circuits, BeepsDoNotPersistAcrossRounds) {
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(2, {Dir::W, 0}));
  comm.deliver();  // nobody beeps
  EXPECT_FALSE(comm.receivedPin(2, {Dir::W, 0}));
}

TEST(Circuits, RegionIsolation) {
  // Two sub-regions of a line; a circuit in one region never carries beeps
  // into the other even though the amoebots are physically adjacent.
  const auto s = shapes::line(6);
  std::vector<int> left, right;
  for (int q = 0; q < 3; ++q) left.push_back(s.idOf({q, 0}));
  for (int q = 3; q < 6; ++q) right.push_back(s.idOf({q, 0}));
  const Region rl = Region::of(s, left);
  const Region rr = Region::of(s, right);
  Comm cl(rl, 2), cr(rr, 2);
  wireLineLane0(cl);
  wireLineLane0(cr);
  cl.beepPin(0, {Dir::E, 0});
  cl.deliver();
  cr.deliver();
  for (int a = 0; a < rl.size(); ++a) EXPECT_TRUE(cl.receivedPin(a, {Dir::E, 0}));
  for (int a = 0; a < rr.size(); ++a) EXPECT_FALSE(cr.receivedAny(a));
}

TEST(Circuits, AnalyzeCountsGlobalCircuit) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  const CircuitInfo info = analyzeCircuits(comm);
  // Lane 0: one spanning circuit. Lane 1: pins stay singleton; each edge's
  // two facing pins form one 2-amoebot circuit, interior singletons as well.
  int spanning = 0;
  for (int c = 0; c < info.circuitCount; ++c)
    if (info.amoebotsOnCircuit[c] == 4) ++spanning;
  EXPECT_EQ(spanning, 1);
}

TEST(Circuits, AnalyzeSingletonConfiguration) {
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  Comm comm(region, 1);
  const CircuitInfo info = analyzeCircuits(comm);
  // With all-singleton configurations every circuit is exactly one external
  // link (two pins) or a lone boundary pin.
  for (int c = 0; c < info.circuitCount; ++c)
    EXPECT_LE(info.amoebotsOnCircuit[c], 2);
}

TEST(Circuits, StarConfigurationReachesAllNeighbors) {
  // Center of a radius-1 hexagon joins one pin per direction into one set;
  // every neighbor hears the center's beep.
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  const int center = region.localOf(s.idOf({0, 0}));
  Comm comm(region, 2);
  std::vector<Pin> star;
  for (Dir d : kAllDirs) star.push_back({d, 0});
  comm.pins(center).join(star);
  comm.beepPin(center, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < region.size(); ++a) {
    if (a == center) continue;
    bool heard = false;
    for (Dir d : kAllDirs)
      heard = heard || comm.receivedPin(a, {d, 0});
    EXPECT_TRUE(heard);
  }
}

}  // namespace
}  // namespace aspf

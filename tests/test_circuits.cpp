// Circuit engine tests: partition sets, circuits as connected components,
// beep delivery semantics (no origin, no multiplicity), region isolation,
// parallel-round accounting, and the dirty-tracking contract of the
// incremental engine (substrate counters).
#include <gtest/gtest.h>

#include "sim/circuit_engine.hpp"
#include "sim/comm.hpp"
#include "sim/sim_counters.hpp"
#include "shapes/generators.hpp"

namespace aspf {
namespace {

// Joins pins E/W on lane 0 for every amoebot of a line: one global circuit.
void wireLineLane0(Comm& comm) {
  const Region& r = comm.region();
  for (int a = 0; a < r.size(); ++a) {
    const Pin pins[] = {{Dir::E, 0}, {Dir::W, 0}};
    comm.pins(a).join(pins);
  }
}

TEST(Circuits, SingletonPinsDoNotRelay) {
  // Three amoebots in a line, all pins singleton: a beep at one end reaches
  // the direct neighbor's facing pin (the external link) but not the far
  // amoebot.
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(0, {Dir::E, 0}));
  EXPECT_TRUE(comm.receivedPin(1, {Dir::W, 0}));
  EXPECT_FALSE(comm.receivedPin(1, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedAny(2));
}

TEST(Circuits, JoinedPinsRelayAcrossTheLine) {
  const auto s = shapes::line(5);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < 5; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
  // Lane 1 stays silent.
  for (int a = 0; a < 5; ++a) EXPECT_FALSE(comm.receivedPin(a, {Dir::E, 1}));
}

TEST(Circuits, BeepsHaveNoMultiplicity) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.beepPin(3, {Dir::W, 0});
  comm.beepPin(1, {Dir::E, 0});
  comm.deliver();
  // All stations hear exactly "beep" (one bit), regardless of sender count.
  for (int a = 0; a < 4; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::W, 0}));
}

TEST(Circuits, DeliveryIsOneRound) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  EXPECT_EQ(comm.rounds(), 0);
  comm.deliver();
  comm.deliver();
  EXPECT_EQ(comm.rounds(), 2);
  comm.chargeRounds(3);
  EXPECT_EQ(comm.rounds(), 5);
}

TEST(Circuits, BeepsDoNotPersistAcrossRounds) {
  const auto s = shapes::line(3);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  EXPECT_TRUE(comm.receivedPin(2, {Dir::W, 0}));
  comm.deliver();  // nobody beeps
  EXPECT_FALSE(comm.receivedPin(2, {Dir::W, 0}));
}

TEST(Circuits, RegionIsolation) {
  // Two sub-regions of a line; a circuit in one region never carries beeps
  // into the other even though the amoebots are physically adjacent.
  const auto s = shapes::line(6);
  std::vector<int> left, right;
  for (int q = 0; q < 3; ++q) left.push_back(s.idOf({q, 0}));
  for (int q = 3; q < 6; ++q) right.push_back(s.idOf({q, 0}));
  const Region rl = Region::of(s, left);
  const Region rr = Region::of(s, right);
  Comm cl(rl, 2), cr(rr, 2);
  wireLineLane0(cl);
  wireLineLane0(cr);
  cl.beepPin(0, {Dir::E, 0});
  cl.deliver();
  cr.deliver();
  for (int a = 0; a < rl.size(); ++a) EXPECT_TRUE(cl.receivedPin(a, {Dir::E, 0}));
  for (int a = 0; a < rr.size(); ++a) EXPECT_FALSE(cr.receivedAny(a));
}

TEST(Circuits, AnalyzeCountsGlobalCircuit) {
  const auto s = shapes::line(4);
  const Region region = Region::whole(s);
  Comm comm(region, 2);
  wireLineLane0(comm);
  const CircuitInfo info = analyzeCircuits(comm);
  // Lane 0: one spanning circuit. Lane 1: pins stay singleton; each edge's
  // two facing pins form one 2-amoebot circuit, interior singletons as well.
  int spanning = 0;
  for (int c = 0; c < info.circuitCount; ++c)
    if (info.amoebotsOnCircuit[c] == 4) ++spanning;
  EXPECT_EQ(spanning, 1);
}

TEST(Circuits, AnalyzeSingletonConfiguration) {
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  Comm comm(region, 1);
  const CircuitInfo info = analyzeCircuits(comm);
  // With all-singleton configurations every circuit is exactly one external
  // link (two pins) or a lone boundary pin.
  for (int c = 0; c < info.circuitCount; ++c)
    EXPECT_LE(info.amoebotsOnCircuit[c], 2);
}

TEST(Circuits, ParallelRoundsOfNothingIsFree) {
  // Regression: an empty execution set used to be charged the global sync
  // beep (returned 1). No sub-protocol ran, so no round may be charged.
  EXPECT_EQ(parallelRounds({}), 0);
  const long one[] = {5};
  EXPECT_EQ(parallelRounds(one), 6);
  const long several[] = {3, 9, 4};
  EXPECT_EQ(parallelRounds(several), 10);
}

TEST(Circuits, ReceivedBeforeAnyDeliverIsFalse) {
  const auto s = shapes::line(2);
  const Region region = Region::whole(s);
  const Comm comm(region, 2);
  EXPECT_FALSE(comm.receivedPin(0, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedAny(1));
}

TEST(Circuits, UnchangedConfigurationsAreNotDirty) {
  // The protocol idiom "resetPins(); re-join the same sets" must not count
  // as reconfiguration: deliver() sees identical labels and the
  // incremental engine performs no unions at all.
  const auto s = shapes::line(6);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  wireLineLane0(comm);
  comm.deliver();  // first round: full rebuild by design

  const SimCounters before = simCounters();
  comm.resetPins();
  wireLineLane0(comm);  // identical configuration
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.delivers, 1);
  EXPECT_EQ(delta.dirtyAmoebots, 0);
  EXPECT_EQ(delta.unions, 0);
  EXPECT_EQ(delta.incrementalRounds, 1);
  EXPECT_EQ(delta.rebuildRounds, 0);
  // ... and the beep still reaches the whole line on the cached circuits.
  for (int a = 0; a < 6; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
}

TEST(Circuits, LocalChangeTriggersLocalUpdate) {
  // Splitting one amoebot's partition set dirties exactly that amoebot;
  // the incremental engine re-unions only the affected circuit. (The line
  // is long enough that the cut circuit stays under the traversal budget,
  // which falls back to a rebuild for structure-spanning fractions.)
  const auto s = shapes::line(64);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  wireLineLane0(comm);
  comm.deliver();

  const SimCounters before = simCounters();
  comm.pins(32).reset();  // cut the global lane-0 circuit at amoebot 32
  comm.beepPin(0, {Dir::E, 0});
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.dirtyAmoebots, 1);
  EXPECT_EQ(delta.incrementalRounds, 1);
  EXPECT_EQ(delta.rebuildRounds, 0);
  EXPECT_GT(delta.unions, 0);
  // The beep now stops at the cut: amoebots left of 32 (and 32's W pin
  // via the external link) hear it, those right of it do not.
  EXPECT_TRUE(comm.receivedPin(31, {Dir::E, 0}));
  EXPECT_TRUE(comm.receivedPin(32, {Dir::W, 0}));
  EXPECT_FALSE(comm.receivedPin(32, {Dir::E, 0}));
  EXPECT_FALSE(comm.receivedPin(40, {Dir::W, 0}));
  // Re-joining heals the circuit again.
  const Pin pins[] = {{Dir::E, 0}, {Dir::W, 0}};
  comm.pins(32).join(pins);
  comm.beepPin(63, {Dir::W, 0});
  comm.deliver();
  for (int a = 0; a < 64; ++a) EXPECT_TRUE(comm.receivedPin(a, {Dir::E, 0}));
}

TEST(Circuits, HighDirtyFractionFallsBackToRebuild) {
  // Reconfiguring (almost) every amoebot makes the affected-component
  // traversal pointless; deliver() must take the from-scratch path.
  const auto s = shapes::line(8);
  const Region region = Region::whole(s);
  Comm comm(region, 2, CircuitEngine::Incremental);
  comm.deliver();
  const SimCounters before = simCounters();
  wireLineLane0(comm);  // all 8 amoebots change
  comm.deliver();
  const SimCounters delta = simCounters() - before;
  EXPECT_EQ(delta.dirtyAmoebots, 8);
  EXPECT_EQ(delta.rebuildRounds, 1);
  EXPECT_EQ(delta.incrementalRounds, 0);
}

TEST(Circuits, RebuildEngineMatchesIncrementalDelivery) {
  // Same reconfiguration sequence on both engines: identical received()
  // results every round (the differential fuzz test in test_incremental
  // widens this to random sequences).
  const auto s = shapes::hexagon(2);
  const Region region = Region::whole(s);
  Comm inc(region, 2, CircuitEngine::Incremental);
  Comm reb(region, 2, CircuitEngine::Rebuild);
  for (Comm* comm : {&inc, &reb}) {
    wireLineLane0(*comm);
    comm->beepPin(0, {Dir::E, 0});
    comm->deliver();
    comm->pins(3).reset();
    comm->beepPin(0, {Dir::E, 0});
    comm->deliver();
  }
  for (int a = 0; a < region.size(); ++a) {
    for (Dir d : kAllDirs) {
      for (std::uint8_t lane = 0; lane < 2; ++lane) {
        EXPECT_EQ(inc.receivedPin(a, {d, lane}), reb.receivedPin(a, {d, lane}))
            << "amoebot " << a << " dir " << static_cast<int>(d) << " lane "
            << static_cast<int>(lane);
      }
    }
  }
  EXPECT_EQ(inc.rounds(), reb.rounds());
}

TEST(Circuits, StarConfigurationReachesAllNeighbors) {
  // Center of a radius-1 hexagon joins one pin per direction into one set;
  // every neighbor hears the center's beep.
  const auto s = shapes::hexagon(1);
  const Region region = Region::whole(s);
  const int center = region.localOf(s.idOf({0, 0}));
  Comm comm(region, 2);
  std::vector<Pin> star;
  for (Dir d : kAllDirs) star.push_back({d, 0});
  comm.pins(center).join(star);
  comm.beepPin(center, {Dir::E, 0});
  comm.deliver();
  for (int a = 0; a < region.size(); ++a) {
    if (a == center) continue;
    bool heard = false;
    for (Dir d : kAllDirs)
      heard = heard || comm.receivedPin(a, {d, 0});
    EXPECT_TRUE(heard);
  }
}

}  // namespace
}  // namespace aspf

// Stress / property sweeps: the full algorithm stack across shape families,
// splitting axes, source/destination densities and seeds. Every instance is
// validated against exact BFS by the checker. These are the paper's
// correctness theorems exercised as properties.
#include <gtest/gtest.h>

#include "baselines/checker.hpp"
#include "shapes/generators.hpp"
#include "spf/forest.hpp"
#include "spf/spt.hpp"
#include "util/rng.hpp"

namespace aspf {
namespace {

enum class Family { Parallelogram, Triangle, Hexagon, Comb, Staircase, Blob,
                    Spider };

AmoebotStructure makeShape(Family family, std::uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case Family::Parallelogram:
      return shapes::parallelogram(6 + static_cast<int>(rng.below(12)),
                                   3 + static_cast<int>(rng.below(6)));
    case Family::Triangle:
      return shapes::triangle(5 + static_cast<int>(rng.below(8)));
    case Family::Hexagon:
      return shapes::hexagon(2 + static_cast<int>(rng.below(4)));
    case Family::Comb:
      return shapes::comb(3 + static_cast<int>(rng.below(5)),
                          3 + static_cast<int>(rng.below(8)), 2);
    case Family::Staircase:
      return shapes::staircase(2 + static_cast<int>(rng.below(4)),
                               2 + static_cast<int>(rng.below(4)));
    case Family::Blob:
      return shapes::randomBlob(60 + static_cast<int>(rng.below(120)), seed);
    case Family::Spider:
      return shapes::randomSpider(3 + static_cast<int>(rng.below(3)),
                                  15 + static_cast<int>(rng.below(20)), seed);
  }
  return shapes::line(5);
}

struct StressCase {
  Family family;
  std::uint64_t seed;
};

class StressMatrix : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressMatrix, ForestAcrossDensitiesAndAxes) {
  const StressCase c = GetParam();
  const auto s = makeShape(c.family, c.seed);
  ASSERT_TRUE(s.isConnected());
  ASSERT_TRUE(s.isHoleFree());
  const Region region = Region::whole(s);
  Rng rng(c.seed * 7919 + 13);

  for (const double sourceDensity : {0.05, 0.3}) {
    std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
    std::vector<int> sources, dests;
    for (int u = 0; u < region.size(); ++u) {
      if (rng.chance(sourceDensity)) {
        isSource[u] = 1;
        sources.push_back(u);
      }
      if (rng.chance(0.2)) {
        isDest[u] = 1;
        dests.push_back(u);
      }
    }
    if (sources.empty()) {
      isSource[0] = 1;
      sources.push_back(0);
    }
    if (dests.empty()) {
      const int t = region.size() - 1;
      isDest[t] = 1;
      dests.push_back(t);
    }
    const Axis axis = static_cast<Axis>(c.seed % 3);
    const ForestResult forest =
        shortestPathForest(region, isSource, isDest, 4, axis);
    const ForestCheck check =
        checkShortestPathForest(region, forest.parent, sources, dests);
    EXPECT_TRUE(check.ok)
        << check.error << " family=" << static_cast<int>(c.family)
        << " seed=" << c.seed << " density=" << sourceDensity
        << " axis=" << toString(axis);
  }
}

TEST_P(StressMatrix, SsspFromExtremalAmoebots) {
  const StressCase c = GetParam();
  const auto s = makeShape(c.family, c.seed + 5000);
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  std::vector<int> allIds(region.size());
  for (int i = 0; i < region.size(); ++i) allIds[i] = i;
  // Extremal sources stress the portal rooting: west-most and north-most.
  int west = 0, north = 0;
  for (int u = 0; u < region.size(); ++u) {
    if (region.coordOf(u).cartX() < region.coordOf(west).cartX()) west = u;
    if (region.coordOf(u).r > region.coordOf(north).r) north = u;
  }
  for (const int source : {west, north}) {
    const SptResult spt = shortestPathTree(region, source, all);
    const int src[] = {source};
    const ForestCheck check =
        checkShortestPathForest(region, spt.parent, src, allIds);
    EXPECT_TRUE(check.ok) << check.error << " seed=" << c.seed;
  }
}

std::vector<StressCase> allCases() {
  std::vector<StressCase> cases;
  for (const Family family :
       {Family::Parallelogram, Family::Triangle, Family::Hexagon,
        Family::Comb, Family::Staircase, Family::Blob, Family::Spider}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
      cases.push_back({family, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, StressMatrix,
                         ::testing::ValuesIn(allCases()));

TEST(Stress, SourcesOnASharedPortal) {
  // All sources collinear on one portal: Q has a single portal, exercising
  // the degenerate decomposition path.
  const auto s = shapes::parallelogram(20, 8);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources, dests;
  for (int q = 2; q < 18; q += 5) {
    const int u = region.localOf(s.idOf({q, 4}));
    isSource[u] = 1;
    sources.push_back(u);
  }
  for (int q = 0; q < 20; q += 7) {
    const int u = region.localOf(s.idOf({q, 0}));
    isDest[u] = 1;
    dests.push_back(u);
  }
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Stress, AdjacentSources) {
  // Sources packed next to each other: many ties, zero-size trees.
  const auto s = shapes::hexagon(5);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources, dests;
  for (const Coord c : {Coord{0, 0}, Coord{1, 0}, Coord{0, 1}, Coord{-1, 1}}) {
    const int u = region.localOf(s.idOf(c));
    isSource[u] = 1;
    sources.push_back(u);
  }
  const int t = region.localOf(s.idOf({5, 0}));
  isDest[t] = 1;
  dests.push_back(t);
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Stress, DestinationEqualsSource) {
  const auto s = shapes::triangle(7);
  const Region region = Region::whole(s);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources{0, region.size() - 1};
  for (const int u : sources) {
    isSource[u] = 1;
    isDest[u] = 1;  // destinations coincide with the sources
  }
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, sources);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Stress, LongThinLineManySources) {
  const auto s = shapes::line(300);
  const Region region = Region::whole(s);
  Rng rng(31337);
  std::vector<char> isSource(region.size(), 0), isDest(region.size(), 0);
  std::vector<int> sources, dests;
  for (int i = 0; i < 12; ++i) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!isSource[u]) {
      isSource[u] = 1;
      sources.push_back(u);
    }
  }
  for (int i = 0; i < 30; ++i) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!isDest[u]) {
      isDest[u] = 1;
      dests.push_back(u);
    }
  }
  const ForestResult forest = shortestPathForest(region, isSource, isDest);
  const ForestCheck check =
      checkShortestPathForest(region, forest.parent, sources, dests);
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace aspf

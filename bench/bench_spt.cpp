// E1 — Theorem 39: the shortest path tree algorithm solves (1,l)-SPF in
// O(log l) rounds. Regenerates two series: rounds vs l at fixed n, and
// rounds vs n at fixed l (both should track the log of the swept variable).
// Structures come from the shared shape vocabulary; the source is pinned
// to the hexagon center so only the swept variable changes per row.
#include "bench_common.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

using bench::log2d;
using scenario::Shape;

void tableRoundsVsL() {
  bench::printHeader("E1a", "(1,l)-SPF rounds vs l (hexagon, fixed n)");
  // Controlled series: structure and source (the hexagon center) are
  // fixed; only the destination count sweeps.
  const auto s = bench::workloadShape(Shape::Hexagon, 24);  // n = 1801
  const Region region = Region::whole(s);
  const int source = region.localOf(s.idOf({0, 0}));
  Table table({"n", "l", "rounds", "rounds/log2(l+1)"});
  for (const int l : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const auto dests = bench::pickDistinct(region, l, 42 + l);
    const auto isDest = bench::flags(region, dests);
    const SptResult spt = shortestPathTree(region, source, isDest);
    bench::mustBeValid(region, spt.parent, {source}, dests, "E1a");
    table.add(region.size(), l, spt.rounds,
              static_cast<double>(spt.rounds) / log2d(l + 1));
  }
  table.print(std::cout);
}

void tableRoundsVsN() {
  bench::printHeader("E1b", "(1,l)-SPF rounds vs n (fixed l = 16)");
  Table table({"n", "diam", "l", "rounds"});
  for (const int radius : {4, 8, 16, 32, 48, 64}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    const auto dests = bench::pickDistinct(region, 16, 7);
    const auto isDest = bench::flags(region, dests);
    const int source = region.localOf(s.idOf({0, 0}));
    const SptResult spt = shortestPathTree(region, source, isDest);
    bench::mustBeValid(region, spt.parent, {source}, dests, "E1b");
    table.add(region.size(), 2 * radius, 16, spt.rounds);
  }
  table.print(std::cout);
}

void BM_SptHexagon(benchmark::State& state) {
  const auto s =
      bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  const auto dests = bench::pickDistinct(region, 16, 7);
  const auto isDest = bench::flags(region, dests);
  const int source = region.localOf(s.idOf({0, 0}));
  long rounds = 0;
  for (auto _ : state) {
    const SptResult spt = shortestPathTree(region, source, isDest);
    rounds = spt.rounds;
    benchmark::DoNotOptimize(spt.parent.data());
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["n"] = region.size();
}
BENCHMARK(BM_SptHexagon)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableRoundsVsL();
  aspf::tableRoundsVsN();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E10 — substrate quality: wall-clock throughput of the circuit engine
// (one deliver() = one synchronous round = one union-find pass over all
// pins) and of the structure/portal computations, as a function of n.
#include <chrono>

#include "bench_common.hpp"
#include "portals/portals.hpp"
#include "sim/circuit_engine.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableSimThroughput() {
  bench::printHeader("E10", "circuit engine: cost of one round vs n");
  Table table({"n", "pins", "us/round (global circuit)", "circuits"});
  for (const int radius : {8, 16, 32, 64, 96}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    Comm comm(region, 4);
    // Global circuit: everyone joins all pins of lane 0.
    for (int a = 0; a < region.size(); ++a) {
      std::vector<Pin> star;
      for (Dir d : kAllDirs) star.push_back({d, 0});
      comm.pins(a).join(star);
    }
    const CircuitInfo info = analyzeCircuits(comm);
    const auto start = std::chrono::steady_clock::now();
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      comm.beepPin(0, {Dir::E, 0});
      comm.deliver();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count() /
        reps;
    table.add(region.size(), region.size() * 24, us, info.circuitCount);
  }
  table.print(std::cout);
}

void BM_Deliver(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  for (int a = 0; a < region.size(); ++a) {
    std::vector<Pin> star;
    for (Dir d : kAllDirs) star.push_back({d, 0});
    comm.pins(a).join(star);
  }
  for (auto _ : state) {
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
  }
  state.SetItemsProcessed(state.iterations() * region.size());
  state.counters["n"] = region.size();
}
BENCHMARK(BM_Deliver)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_HoleFreeCheck(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::RandomBlob, static_cast<int>(state.range(0)), 0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.isHoleFree());
  }
}
BENCHMARK(BM_HoleFreeCheck)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableSimThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E10 — substrate quality: wall-clock throughput of the circuit engine
// (one deliver() = one synchronous round; the incremental engine only
// re-unions circuits whose amoebots reconfigured) and of the
// structure/portal computations, as a function of n.
#include <chrono>
#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "portals/portals.hpp"
#include "sim/circuit_engine.hpp"
#include "sim/pin_config.hpp"
#include "sim/simd_kernels.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableSimThroughput() {
  bench::printHeader("E10", "circuit engine: cost of one round vs n");
  Table table({"n", "pins", "us/round (global circuit)", "circuits"});
  for (const int radius : {8, 16, 32, 64, 96}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    Comm comm(region, 4);
    // Global circuit: everyone joins all pins of lane 0.
    for (int a = 0; a < region.size(); ++a) {
      std::vector<Pin> star;
      for (Dir d : kAllDirs) star.push_back({d, 0});
      comm.pins(a).join(star);
    }
    const CircuitInfo info = analyzeCircuits(comm);
    const auto start = std::chrono::steady_clock::now();
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      comm.beepPin(0, {Dir::E, 0});
      comm.deliver();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(stop - start).count() /
        reps;
    table.add(region.size(), region.size() * 24, us, info.circuitCount);
  }
  table.print(std::cout);
}

void BM_Deliver(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  Comm comm(region, 4);
  for (int a = 0; a < region.size(); ++a) {
    std::vector<Pin> star;
    for (Dir d : kAllDirs) star.push_back({d, 0});
    comm.pins(a).join(star);
  }
  for (auto _ : state) {
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
  }
  state.SetItemsProcessed(state.iterations() * region.size());
  state.counters["n"] = region.size();
}
BENCHMARK(BM_Deliver)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Incremental vs from-scratch engine on the canonical sparse-change
// workload: a stable global circuit with one amoebot reconfiguring per
// round (the frontier pattern of the paper's protocols). The incremental
// engine recomputes only the affected circuit; the rebuild engine pays
// the full n * lanes union-find pass every round. The third argument is
// the sim-thread count (sharded substrate) for the thread ablation --
// note the sharding gate keeps radius-32 hexagons (n ~ 3k) sharded only
// from 2 threads up, and results are bit-identical at every count.
void BM_DeliverSparseChange(benchmark::State& state) {
  const auto engine = state.range(1) == 0 ? CircuitEngine::Incremental
                                          : CircuitEngine::Rebuild;
  const int simThreads = static_cast<int>(state.range(2));
  const auto s = bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  Comm comm(region, 4, engine, simThreads);
  const Pin pair[] = {{Dir::E, 0}, {Dir::W, 0}};
  for (int a = 0; a < region.size(); ++a) comm.pins(a).join(pair);
  comm.deliver();  // initial full build in both engines
  int flip = 0;
  for (auto _ : state) {
    // One amoebot cuts and then heals the lane-0 chain: a 1-amoebot
    // dirty set against an n-amoebot structure, alternating reset/join
    // on the SAME amoebot so every round has exactly one real change.
    const int a = 1 + ((flip / 2) % (region.size() - 2));
    if (flip % 2 == 0)
      comm.pins(a).reset();
    else
      comm.pins(a).join(pair);
    ++flip;
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
  }
  state.SetItemsProcessed(state.iterations() * region.size());
  state.counters["n"] = region.size();
  state.counters["shards"] = comm.shardCount();
}
BENCHMARK(BM_DeliverSparseChange)
    ->Args({32, 0, 1})
    ->Args({32, 0, 2})
    ->Args({32, 0, 8})
    ->Args({32, 1, 1})
    ->Args({32, 1, 8})
    ->Args({64, 0, 1})
    ->Args({64, 0, 2})
    ->Args({64, 0, 8})
    ->Args({64, 1, 1})
    ->Args({64, 1, 8})
    ->Unit(benchmark::kMicrosecond);

// Huge-tier deliver: a structure-spanning lane circuit over n >= 100k
// amoebots with a small spread-out dirty set per round -- the shape of a
// PASC iteration at the `huge` registry tier, where the sharded engine's
// per-batch fan-out is amortized by ~100k-pin shard work. Ablate
// sim-threads {1, 2, 8}.
void BM_DeliverHugeChain(benchmark::State& state) {
  const int simThreads = static_cast<int>(state.range(0));
  const auto s = bench::workloadShape(Shape::Parallelogram, 1000, 100);
  const Region region = Region::whole(s);  // n = 100k
  Comm comm(region, 4, CircuitEngine::Incremental, simThreads);
  const Pin pair[] = {{Dir::E, 0}, {Dir::W, 0}};
  for (int a = 0; a < region.size(); ++a) comm.pins(a).join(pair);
  comm.deliver();
  int flip = 0;
  for (auto _ : state) {
    // 16 spread-out amoebots cut (or heal) their row circuit per round:
    // the affected closure spans whole rows across every shard.
    const int stride = region.size() / 16;
    for (int i = 0; i < 16; ++i) {
      const int a = 1 + ((flip / 2 + i * stride) % (region.size() - 2));
      if (flip % 2 == 0)
        comm.pins(a).reset();
      else
        comm.pins(a).join(pair);
    }
    ++flip;
    comm.beepPin(0, {Dir::E, 0});
    comm.deliver();
  }
  state.SetItemsProcessed(state.iterations() * region.size());
  state.counters["n"] = region.size();
  state.counters["shards"] = comm.shardCount();
}
BENCHMARK(BM_DeliverHugeChain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Kernel microbenches: per-kernel attribution for the deliver() hot path,
// each dispatched per ISA (Arg: 0 = scalar, 1 = sse2, 2 = avx2) so a
// regression can be pinned to one kernel on one table. Unsupported ISAs
// skip with an error instead of silently measuring the fallback.
// ---------------------------------------------------------------------

const simd::KernelTable* tableFor(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  if (!simd::isaSupported(isa)) {
    state.SkipWithError("ISA not supported on this host/toolchain");
    return nullptr;
  }
  const simd::KernelTable* t =
      isa == simd::Isa::Scalar ? &simd::scalarTable()
      : isa == simd::Isa::Sse2 ? simd::sse2Table()
                               : simd::avx2Table();
  state.SetLabel(t->name);
  return t;
}

// The dirty drain's batched 32-byte snapshot compare (takeDirtyShard):
// one blockEqualMany sweep over a shuffled touched list, half the blocks
// genuinely changed.
void BM_BlockCompare(benchmark::State& state) {
  const simd::KernelTable* t = tableFor(state);
  if (t == nullptr) return;
  constexpr int kBlocks = 4096;
  AlignedLabelVec cur(static_cast<std::size_t>(kBlocks) * kPinStride);
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> byte(-128, 127);
  for (auto& v : cur) v = static_cast<std::int8_t>(byte(rng));
  AlignedLabelVec prev = cur;
  for (int b = 0; b < kBlocks; b += 2)
    cur[static_cast<std::size_t>(b) * kPinStride + (b % 29)] ^= 1;
  std::vector<int> locals(kBlocks);
  std::iota(locals.begin(), locals.end(), 0);
  std::shuffle(locals.begin(), locals.end(), rng);
  std::vector<std::uint8_t> eq(kBlocks);
  for (auto _ : state) {
    t->blockEqualMany(cur.data(), prev.data(), locals.data(), locals.size(),
                      eq.data());
    benchmark::DoNotOptimize(eq.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * kBlocks * kPinStride * 2);
}
BENCHMARK(BM_BlockCompare)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// The fused closure scan's memory pattern: one 8-byte HotPin load per
// visited pin over a shuffled visit order (the cache-layout win of the
// hot/cold split -- ISA-independent, so no Arg).
void BM_ChaseHotArray(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  std::vector<HotPin> hot(nodes);
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> d(-12, 12);
  std::uniform_int_distribution<int> link(-1, nodes - 1);
  for (auto& h : hot) {
    h.delta = static_cast<std::int8_t>(d(rng));
    h.leadDelta = static_cast<std::int8_t>(d(rng));
    h.link = link(rng);
  }
  std::vector<int> visit(nodes);
  std::iota(visit.begin(), visit.end(), 0);
  std::shuffle(visit.begin(), visit.end(), rng);
  for (auto _ : state) {
    long acc = 0;
    for (std::size_t i = 0; i < visit.size(); ++i) {
      if (i + 8 < visit.size()) __builtin_prefetch(&hot[visit[i + 8]]);
      const HotPin h = hot[visit[i]];
      acc += h.delta + h.leadDelta + (h.link >= 0 ? 1 : 0);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ChaseHotArray)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// Beep-root / receivedBatch resolution: batched non-writing union-find
// chases on a random forest (AVX2 runs 8 gathered chases per iteration).
void BM_BeepRootResolve(benchmark::State& state) {
  const simd::KernelTable* t = tableFor(state);
  if (t == nullptr) return;
  constexpr int kNodes = 1 << 16;
  constexpr int kQueries = 4096;
  std::mt19937 rng(3);
  std::vector<int> parent(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    std::uniform_int_distribution<int> pick(-64, i - 1);
    const int p = i == 0 ? -1 : pick(rng);
    parent[i] = p < 0 ? -1 : p;
  }
  std::uniform_int_distribution<int> node(0, kNodes - 1);
  std::vector<int> nodes(kQueries);
  for (auto& v : nodes) v = node(rng);
  std::vector<int> roots(kQueries);
  for (auto _ : state) {
    t->resolveRoots(parent.data(), nodes.data(), nodes.size(), roots.data());
    benchmark::DoNotOptimize(roots.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_BeepRootResolve)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_HoleFreeCheck(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::RandomBlob, static_cast<int>(state.range(0)), 0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.isHoleFree());
  }
}
BENCHMARK(BM_HoleFreeCheck)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableSimThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

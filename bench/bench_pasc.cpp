// E6 — Lemmas 3/4 and Corollaries 5/6: PASC needs exactly two rounds per
// iteration and O(log m) iterations on chains (O(log h) on trees, O(log W)
// for weighted prefix sums).
#include "bench_common.hpp"
#include "pasc/pasc_chain.hpp"
#include "pasc/pasc_prefix.hpp"
#include "pasc/pasc_tree.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableChain() {
  bench::printHeader("E6a", "PASC chain: iterations and rounds vs m");
  Table table({"m", "iterations", "rounds", "bitWidth(m-1)"});
  for (const int m : {8, 32, 128, 512, 2048, 8192}) {
    const auto s = bench::workloadShape(Shape::Line, m);
    const Region region = Region::whole(s);
    std::vector<int> stops(m);
    for (int q = 0; q < m; ++q) stops[q] = region.localOf(s.idOf({q, 0}));
    Comm comm(region, 4);
    const PascResult res = runPascChain(comm, stops);
    table.add(m, res.iterations, res.rounds,
              bitWidth(static_cast<std::uint64_t>(m - 1)));
  }
  table.print(std::cout);
}

void tablePrefix() {
  bench::printHeader("E6b",
                     "prefix-sum PASC: rounds depend on W, not chain length");
  Table table({"m", "W", "iterations", "rounds"});
  const int m = 4096;
  const auto s = bench::workloadShape(Shape::Line, m);
  const Region region = Region::whole(s);
  std::vector<int> stops(m);
  for (int q = 0; q < m; ++q) stops[q] = region.localOf(s.idOf({q, 0}));
  for (const int w : {1, 4, 16, 64, 256, 1024, 4096}) {
    std::vector<char> weight(m, 0);
    for (int i = 0; i < w; ++i) weight[(i * m) / w] = 1;
    Comm comm(region, 4);
    const PascResult res = runPascPrefixSum(comm, stops, weight);
    int actualW = 0;
    for (const char c : weight) actualW += c;
    table.add(m, actualW, res.iterations, res.rounds);
  }
  table.print(std::cout);
}

void tableTree() {
  bench::printHeader("E6c", "tree PASC (Cor 5): rounds vs height");
  Table table({"n", "height", "iterations", "rounds"});
  for (const int radius : {4, 8, 16, 32, 64}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    const int center = region.localOf(s.idOf({0, 0}));
    const int src[] = {center};
    const auto dist = region.bfsDistancesLocal(src);
    std::vector<int> parent(region.size(), -2);
    parent[center] = -1;
    for (int u = 0; u < region.size(); ++u) {
      if (u == center) continue;
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(u, d);
        if (v >= 0 && dist[v] == dist[u] - 1) {
          parent[u] = v;
          break;
        }
      }
    }
    Comm comm(region, 2);
    const TreePascResult res = runPascForest(comm, parent);
    table.add(region.size(), radius, res.iterations, res.rounds);
  }
  table.print(std::cout);
}

void BM_PascChain(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto s = bench::workloadShape(Shape::Line, m);
  const Region region = Region::whole(s);
  std::vector<int> stops(m);
  for (int q = 0; q < m; ++q) stops[q] = region.localOf(s.idOf({q, 0}));
  for (auto _ : state) {
    Comm comm(region, 4);
    const PascResult res = runPascChain(comm, stops);
    benchmark::DoNotOptimize(res.value.data());
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_PascChain)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->Complexity();

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableChain();
  aspf::tablePrefix();
  aspf::tableTree();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E9 — ablation (Section 5 intro): the naive sequential construction
// (SSSP per source + fold with the merging algorithm, O(k log n) rounds)
// against the divide & conquer forest algorithm (O(log n log^2 k)). The
// naive approach wins for tiny k (smaller constants); the crossover comes
// early and the gap then widens roughly like k / log^2 k.
#include "baselines/naive_forest.hpp"
#include "bench_common.hpp"
#include "spf/forest.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableAblation() {
  bench::printHeader("E9",
                     "naive O(k log n) vs divide & conquer O(log n log^2 k)");
  // Controlled series: structure and the 16-destination set (seed 77)
  // stay fixed across rows so the naive/D&C ratio isolates k.
  const auto s = bench::workloadShape(Shape::Hexagon, 12);  // n = 469
  const Region region = Region::whole(s);
  const auto dests = bench::pickDistinct(region, 16, 77);
  const auto isDest = bench::flags(region, dests);
  Table table({"n", "k", "naive rounds", "D&C rounds", "naive/D&C"});
  for (const int k : {2, 4, 8, 16, 32, 64}) {
    const auto sources = bench::pickDistinct(region, k, 10 + k);
    const auto isSource = bench::flags(region, sources);

    const NaiveForestResult naive =
        naiveSequentialForest(region, isSource, isDest);
    bench::mustBeValid(region, naive.parent, sources, dests, "E9/naive");
    const ForestResult dc = shortestPathForest(region, isSource, isDest);
    bench::mustBeValid(region, dc.parent, sources, dests, "E9/dc");

    table.add(region.size(), k, naive.rounds, dc.rounds,
              static_cast<double>(naive.rounds) /
                  static_cast<double>(dc.rounds));
  }
  table.print(std::cout);
  std::cout << "Expected shape: the ratio grows roughly linearly in k over\n"
               "polylog(k); the divide & conquer algorithm overtakes the\n"
               "naive sequential merge as k grows.\n";
}

void tableAxisChoice() {
  bench::printHeader("E9b",
                     "ablation: splitting-axis choice in the D&C algorithm "
                     "(the paper fixes one w.l.o.g.)");
  Table table({"scenario", "k", "axis x", "axis y", "axis z"});
  auto run = [&](const scenario::BuiltScenario& built) {
    const auto& inst = built.instance();
    std::array<long, 3> rounds{};
    for (const Axis axis : kAllAxes) {
      const ForestResult f = shortestPathForest(built.region(), inst.isSource,
                                                inst.isDest, 4, axis);
      bench::mustBeValid(built, f.parent, "E9b");
      rounds[static_cast<int>(axis)] = f.rounds;
    }
    table.add(built.scenario().name, built.scenario().k, rounds[0],
              rounds[1], rounds[2]);
  };
  run(bench::workload(Shape::Hexagon, 10, 0, 16, 12, 44));
  run(bench::workload(Shape::Parallelogram, 40, 8, 16, 12, 45));
  run(bench::workload(Shape::Comb, 8, 12, 8, 12, 46));
  run(bench::workload(Shape::RandomBlob, 500, 0, 16, 12, 47));
  table.print(std::cout);
  std::cout << "The choice is a constant-factor matter on isotropic shapes\n"
               "and can differ visibly on anisotropic ones (comb): the\n"
               "algorithm's asymptotics are axis-independent, as the paper\n"
               "asserts by fixing an axis w.l.o.g.\n";
}

void BM_Naive(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto built = bench::workload(Shape::Hexagon, 8, 0, k, 8, 10 + k);
  for (auto _ : state) {
    const NaiveForestResult r = naiveSequentialForest(
        built.region(), built.instance().isSource, built.instance().isDest);
    benchmark::DoNotOptimize(r.parent.data());
  }
}
BENCHMARK(BM_Naive)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableAblation();
  aspf::tableAxisChoice();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

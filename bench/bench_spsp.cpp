// E2 — Corollary of Theorem 39: SPSP (k = l = 1) takes O(1) rounds,
// independent of n and of the distance between the pair. The series sweeps
// n over two orders of magnitude; the rounds column must stay flat.
#include "bench_common.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableSpsp() {
  bench::printHeader("E2", "SPSP rounds vs n (must be constant)");
  Table table({"shape", "n", "pair distance", "rounds"});
  for (const int radius : {4, 8, 16, 32, 64, 96}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    const int source = region.localOf(s.idOf({-radius, 0}));
    const int dest = region.localOf(s.idOf({radius, 0}));
    std::vector<char> isDest(region.size(), 0);
    isDest[dest] = 1;
    const SptResult spt = shortestPathTree(region, source, isDest);
    bench::mustBeValid(region, spt.parent, {source}, {dest}, "E2");
    table.add("hexagon", region.size(), 2 * radius, spt.rounds);
  }
  for (const int len : {64, 256, 1024, 4096}) {
    const auto s = bench::workloadShape(Shape::Line, len);
    const Region region = Region::whole(s);
    std::vector<char> isDest(region.size(), 0);
    const int dest = region.localOf(s.idOf({len - 1, 0}));
    isDest[dest] = 1;
    const SptResult spt = shortestPathTree(region, 0, isDest);
    bench::mustBeValid(region, spt.parent, {0}, {dest}, "E2");
    table.add("line", region.size(), len - 1, spt.rounds);
  }
  table.print(std::cout);
}

void BM_Spsp(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const auto s = bench::workloadShape(Shape::Hexagon, radius);
  const Region region = Region::whole(s);
  const int source = region.localOf(s.idOf({-radius, 0}));
  std::vector<char> isDest(region.size(), 0);
  isDest[region.localOf(s.idOf({radius, 0}))] = 1;
  for (auto _ : state) {
    const SptResult spt = shortestPathTree(region, source, isDest);
    benchmark::DoNotOptimize(spt.parent.data());
  }
  state.counters["n"] = region.size();
}
BENCHMARK(BM_Spsp)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableSpsp();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

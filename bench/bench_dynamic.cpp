// E11 — dynamic timelines: online SPF maintenance over mutating
// structures. The paper-style table walks a registry timeline and reports,
// per epoch and per algorithm, the warm (persistent rebound substrate) vs
// cold (from-scratch oracle) substrate cost -- the union work the
// carried-over circuit state saves is exactly what the incremental engine
// was built for. The google-benchmark section ablates warm-vs-cold and
// incremental-vs-rebuild on a single repeated attach/detach epoch pattern.
#include <optional>

#include "baselines/bfs_wave.hpp"
#include "bench_common.hpp"
#include "scenario/runner.hpp"
#include "scenario/timeline.hpp"

namespace aspf {
namespace {

using scenario::Algo;
using scenario::BenchReport;
using scenario::EpochReport;
using scenario::EpochRun;
using scenario::MutationKind;
using scenario::RunOptions;
using scenario::Timeline;
using scenario::TimelineReport;
using scenario::TimelineState;

void tableWarmVsCold() {
  bench::printHeader("E11",
                     "dynamic timeline: warm vs cold substrate cost per "
                     "epoch");
  const scenario::Timeline* timeline =
      scenario::findTimeline("dyn_hexagon6_k5_l12_s1");
  if (!timeline) return;
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  const BenchReport report =
      scenario::runTimelineBatch("bench", {*timeline}, options);
  Table table({"epoch", "mutation", "n", "algo", "rounds", "warm unions",
               "cold unions", "saved %"});
  for (const TimelineReport& tr : report.timelines) {
    for (const EpochReport& er : tr.epochs) {
      for (const EpochRun& run : er.runs) {
        const double saved =
            run.coldUnions > 0
                ? 100.0 * (1.0 - static_cast<double>(run.warmUnions) /
                                     static_cast<double>(run.coldUnions))
                : 0.0;
        table.add(er.epoch, er.mutation, er.n, run.algo, run.rounds,
                  run.warmUnions, run.coldUnions, saved);
      }
    }
  }
  table.print(std::cout);
}

/// One attach-then-detach timeline pulse on a hexagon, solved with the
/// wave per epoch: warm keeps one substrate Comm alive and rebinds it,
/// cold constructs everything from scratch. range(0) = hexagon radius,
/// range(1) = 1 for warm.
void BM_DynamicWaveEpoch(benchmark::State& state) {
  Timeline t;
  t.name = "bench_pulse";
  t.base = scenario::make(scenario::Shape::Hexagon,
                          static_cast<int>(state.range(0)), 0, 4, 8, 1);
  t.seed = 5;
  // Long alternating script; the loop below cycles through it.
  for (int i = 0; i < 64; ++i)
    t.mutations.push_back({i % 2 == 0 ? MutationKind::AttachPatch
                                      : MutationKind::DetachPatch,
                           4});
  const bool warm = state.range(1) != 0;

  TimelineState timelineState(t);
  std::optional<Comm> substrate;
  if (warm) substrate.emplace(timelineState.region(), 1);
  long epochs = 0;
  for (auto _ : state) {
    if (timelineState.done()) {
      state.PauseTiming();  // re-arm the pulse rather than stop early
      timelineState = TimelineState(t);
      if (warm) substrate.emplace(timelineState.region(), 1);
      state.ResumeTiming();
    }
    const scenario::EpochDelta delta = timelineState.advance();
    if (warm) substrate->rebind(timelineState.region(), delta.oldLocalOfNew);
    const BfsWaveResult r = bfsWaveForest(
        timelineState.region(), timelineState.sources(),
        timelineState.destinations(), warm ? &*substrate : nullptr);
    benchmark::DoNotOptimize(r.parent.data());
    ++epochs;
  }
  state.SetItemsProcessed(epochs);
  state.counters["n"] = static_cast<double>(timelineState.n());
  state.counters["warm"] = warm ? 1 : 0;
}

BENCHMARK(BM_DynamicWaveEpoch)
    ->ArgsProduct({{8, 16, 32}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Engine ablation on the same pulse: the warm path under the incremental
/// engine vs the rebuild engine (rebind still carries circuits over, but
/// the rebuild engine discards them every deliver). range(1) = 1 for the
/// incremental engine.
void BM_DynamicEngineAblation(benchmark::State& state) {
  Timeline t;
  t.name = "bench_engines";
  t.base = scenario::make(scenario::Shape::Hexagon,
                          static_cast<int>(state.range(0)), 0, 4, 8, 1);
  t.seed = 9;
  for (int i = 0; i < 64; ++i)
    t.mutations.push_back({i % 2 == 0 ? MutationKind::AttachPatch
                                      : MutationKind::DetachPatch,
                           4});
  const CircuitEngine engine = state.range(1) != 0
                                   ? CircuitEngine::Incremental
                                   : CircuitEngine::Rebuild;

  TimelineState timelineState(t);
  std::optional<Comm> substrate;
  substrate.emplace(timelineState.region(), 1, engine);
  long epochs = 0;
  for (auto _ : state) {
    if (timelineState.done()) {
      state.PauseTiming();
      timelineState = TimelineState(t);
      substrate.emplace(timelineState.region(), 1, engine);
      state.ResumeTiming();
    }
    const scenario::EpochDelta delta = timelineState.advance();
    substrate->rebind(timelineState.region(), delta.oldLocalOfNew);
    const BfsWaveResult r =
        bfsWaveForest(timelineState.region(), timelineState.sources(),
                      timelineState.destinations(), &*substrate);
    benchmark::DoNotOptimize(r.parent.data());
    ++epochs;
  }
  state.SetItemsProcessed(epochs);
  state.counters["n"] = static_cast<double>(timelineState.n());
  state.counters["incremental"] = static_cast<double>(state.range(1));
}

BENCHMARK(BM_DynamicEngineAblation)
    ->ArgsProduct({{16, 32}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableWarmVsCold();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#pragma once
// Shared helpers for the experiment harness. Every bench binary prints the
// paper-style table(s) for its experiment (round counts measured on the
// circuit simulator) and then runs google-benchmark wall-time measurements
// of the underlying simulation, so `bench_*` with no arguments reproduces
// the experiment and `--benchmark_filter=...` profiles the substrate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "baselines/checker.hpp"
#include "shapes/generators.hpp"
#include "sim/region.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace aspf::bench {

/// Picks `count` distinct region-local ids, seeded.
inline std::vector<int> pickDistinct(const Region& region, int count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> taken(region.size(), 0);
  std::vector<int> out;
  count = std::min(count, region.size());
  while (static_cast<int>(out.size()) < count) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!taken[u]) {
      taken[u] = 1;
      out.push_back(u);
    }
  }
  return out;
}

inline std::vector<char> flags(const Region& region,
                               const std::vector<int>& ids) {
  std::vector<char> f(region.size(), 0);
  for (const int u : ids) f[u] = 1;
  return f;
}

/// log2-ish reference column so the table shows the predicted shape.
inline double log2d(double x) { return x <= 1 ? 0.0 : std::log2(x); }

inline void printHeader(const char* id, const char* claim) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n";
}

/// Asserts the run is a valid forest; aborts the experiment loudly if not,
/// so a bench never reports rounds of a wrong answer.
inline void mustBeValid(const Region& region, const std::vector<int>& parent,
                        const std::vector<int>& sources,
                        const std::vector<int>& dests, const char* what) {
  const ForestCheck check =
      checkShortestPathForest(region, parent, sources, dests);
  if (!check.ok) {
    std::cerr << "INVALID RESULT in " << what << ": " << check.error << "\n";
    std::abort();
  }
}

}  // namespace aspf::bench

#pragma once
// Shared helpers for the experiment harness. Every bench binary prints the
// paper-style table(s) for its experiment (round counts measured on the
// circuit simulator) and then runs google-benchmark wall-time measurements
// of the underlying simulation, so `bench_*` with no arguments reproduces
// the experiment and `--benchmark_filter=...` profiles the substrate.
//
// Workloads come from the scenario library (src/scenario/): structures are
// built through the shared shape vocabulary (`workloadShape`) and (S,D)
// instances through seeded scenario placement (`scenario::BuiltScenario`),
// so every bench row names a workload that tests and `aspf-run` can
// replay.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "baselines/checker.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/region.hpp"
#include "util/bitstream.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace aspf::bench {

/// Builds a structure through the scenario shape vocabulary (k/l unused).
inline AmoebotStructure workloadShape(scenario::Shape shape, int a, int b = 0,
                                      std::uint64_t seed = 0) {
  return scenario::buildShape(scenario::make(shape, a, b, 1, 1, seed));
}

/// Materializes a named (shape, k, l, seed) scenario instance.
inline scenario::BuiltScenario workload(scenario::Shape shape, int a, int b,
                                        int k, int l, std::uint64_t seed) {
  return scenario::BuiltScenario(scenario::make(shape, a, b, k, l, seed));
}

/// Picks `count` distinct region-local ids, seeded. For auxiliary sets that
/// are not scenario (S,D) placements (e.g. portal Q sets).
inline std::vector<int> pickDistinct(const Region& region, int count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<char> taken(region.size(), 0);
  std::vector<int> out;
  count = std::min(count, region.size());
  while (static_cast<int>(out.size()) < count) {
    const int u = static_cast<int>(rng.below(region.size()));
    if (!taken[u]) {
      taken[u] = 1;
      out.push_back(u);
    }
  }
  return out;
}

inline std::vector<char> flags(const Region& region,
                               const std::vector<int>& ids) {
  std::vector<char> f(region.size(), 0);
  for (const int u : ids) f[u] = 1;
  return f;
}

/// log2-ish reference column so the table shows the predicted shape.
inline double log2d(double x) { return x <= 1 ? 0.0 : std::log2(x); }

inline void printHeader(const char* id, const char* claim) {
  std::cout << "\n=== " << id << " — " << claim << " ===\n";
}

/// Asserts the run is a valid forest; aborts the experiment loudly if not,
/// so a bench never reports rounds of a wrong answer.
inline void mustBeValid(const Region& region, const std::vector<int>& parent,
                        const std::vector<int>& sources,
                        const std::vector<int>& dests, const char* what) {
  const ForestCheck check =
      checkShortestPathForest(region, parent, sources, dests);
  if (!check.ok) {
    std::cerr << "INVALID RESULT in " << what << ": " << check.error << "\n";
    std::abort();
  }
}

/// mustBeValid for a materialized scenario instance.
inline void mustBeValid(const scenario::BuiltScenario& built,
                        const std::vector<int>& parent, const char* what) {
  mustBeValid(built.region(), parent, built.instance().sources,
              built.instance().destinations, what);
}

}  // namespace aspf::bench

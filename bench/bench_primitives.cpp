// E5 — Lemmas 20/21/23/31: the tree primitives cost O(log|Q|) (root &
// prune, centroid), O(1) (election), and O(log^2 |Q|) (decomposition)
// rounds. Sweeps |Q| on random spanning trees of random blobs.
#include "bench_common.hpp"
#include "primitives/centroid.hpp"
#include "primitives/decomposition.hpp"
#include "primitives/election.hpp"
#include "primitives/root_prune.hpp"

namespace aspf {
namespace {

using scenario::Shape;

using bench::log2d;

TreeAdj randomSpanningTree(const Region& region, std::uint64_t seed) {
  Rng rng(seed);
  TreeAdj tree = TreeAdj::empty(region.size());
  std::vector<char> seen(region.size(), 0);
  std::vector<int> frontier{0};
  seen[0] = 1;
  while (!frontier.empty()) {
    const std::size_t pick = rng.below(frontier.size());
    const int u = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        tree.add(region, u, v);
        frontier.push_back(v);
      }
    }
  }
  return tree;
}

void tablePrimitives() {
  bench::printHeader(
      "E5", "tree primitive rounds vs |Q| (random blob, n = 2000)");
  const auto s = bench::workloadShape(Shape::RandomBlob, 2000, 0, 11);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, 23);
  const EulerTour tour = buildEulerTour(region, tree, 0);

  Table table({"|Q|", "root&prune", "election", "centroid", "decomposition",
               "r&p/log2|Q|", "decomp/log2^2|Q|"});
  for (const int q : {2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    const auto qIds = bench::pickDistinct(region, q, 31 * q);
    const auto inQ = bench::flags(region, qIds);

    Comm c1(region, 4);
    const RootPruneResult rp = rootAndPrune(c1, tour, inQ);
    Comm c2(region, 4);
    const ElectionResult el = electFromQ(c2, tour, inQ);
    Comm c3(region, 4);
    const CentroidResult ce = computeQCentroids(c3, tour, inQ);

    std::vector<char> qPrime(region.size(), 0);
    for (int u = 0; u < region.size(); ++u)
      qPrime[u] = (inQ[u] || rp.inAug[u]) ? 1 : 0;
    const DecompositionResult dt =
        decomposeAtCentroids(region, tree, 0, qPrime);

    table.add(q, rp.rounds, el.rounds, ce.rounds, dt.rounds,
              static_cast<double>(rp.rounds) / log2d(q),
              static_cast<double>(dt.rounds) / (log2d(q) * log2d(q)));
  }
  table.print(std::cout);
}

void BM_RootPrune(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::RandomBlob, 1000, 0, 3);
  const Region region = Region::whole(s);
  const TreeAdj tree = randomSpanningTree(region, 5);
  const EulerTour tour = buildEulerTour(region, tree, 0);
  const auto inQ = bench::flags(
      region, bench::pickDistinct(region, static_cast<int>(state.range(0)), 7));
  for (auto _ : state) {
    Comm comm(region, 4);
    const RootPruneResult rp = rootAndPrune(comm, tour, inQ);
    benchmark::DoNotOptimize(rp.qCount);
  }
}
BENCHMARK(BM_RootPrune)->Arg(16)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tablePrimitives();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

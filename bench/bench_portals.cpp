// E8 — Lemmas 9/11 and the portal machinery of Figure 2 / Section 3.5:
// portal-tree statistics on the benchmark shapes, a randomized audit of the
// distance identity 2*dist = dist_x + dist_y + dist_z, and the rounds of
// the portal-level primitives vs |Q|.
#include "bench_common.hpp"
#include "portals/portal_primitives.hpp"
#include "portals/portals.hpp"

namespace aspf {
namespace {

using scenario::Shape;

using bench::log2d;

void tablePortalStats() {
  bench::printHeader("E8a", "portal-tree statistics (Lemma 9, Figure 2)");
  Table table({"shape", "n", "axis", "portals", "tree?", "depth"});
  auto row = [&](const char* name, const AmoebotStructure& s) {
    const Region region = Region::whole(s);
    for (const Axis axis : kAllAxes) {
      const PortalDecomposition d = computePortals(region, axis);
      const auto dist = d.portalGraphDistances(0);
      int depth = 0;
      for (const int x : dist) depth = std::max(depth, x);
      table.add(name, region.size(), toString(axis), d.portalCount(),
                d.portalGraphIsTree() ? "yes" : "NO", depth);
    }
  };
  row("hexagon r=16", bench::workloadShape(Shape::Hexagon, 16));
  row("parallelogram 64x16", bench::workloadShape(Shape::Parallelogram, 64, 16));
  row("comb 16x32", bench::workloadShape(Shape::Comb, 16, 32));
  row("staircase 12x4", bench::workloadShape(Shape::Staircase, 12, 4));
  row("blob n~1500", bench::workloadShape(Shape::RandomBlob, 1500, 0, 4));
  table.print(std::cout);
}

void tableDistanceIdentity() {
  bench::printHeader("E8b",
                     "Lemma 11 audit: 2*dist(u,v) == dist_x + dist_y + "
                     "dist_z over random pairs");
  Table table({"shape", "n", "pairs checked", "violations"});
  Rng rng(2024);
  auto audit = [&](const char* name, const AmoebotStructure& s) {
    const Region region = Region::whole(s);
    std::array<PortalDecomposition, 3> d{computePortals(region, Axis::X),
                                         computePortals(region, Axis::Y),
                                         computePortals(region, Axis::Z)};
    int violations = 0;
    const int pairs = 200;
    for (int t = 0; t < pairs; ++t) {
      const int u = static_cast<int>(rng.below(region.size()));
      const int v = static_cast<int>(rng.below(region.size()));
      const int src[] = {u};
      const int duv = region.bfsDistancesLocal(src)[v];
      int sum = 0;
      for (int a = 0; a < 3; ++a)
        sum += d[a].portalGraphDistances(d[a].portalOf[u])[d[a].portalOf[v]];
      if (2 * duv != sum) ++violations;
    }
    table.add(name, region.size(), pairs, violations);
  };
  audit("hexagon r=12", bench::workloadShape(Shape::Hexagon, 12));
  audit("blob n~600", bench::workloadShape(Shape::RandomBlob, 600, 0, 8));
  audit("spider", bench::workloadShape(Shape::RandomSpider, 5, 40, 3));
  audit("staircase", bench::workloadShape(Shape::Staircase, 8, 4));
  table.print(std::cout);
}

void tablePortalPrimitives() {
  bench::printHeader("E8c", "portal primitive rounds vs |Q| (blob n~2000)");
  const auto s = bench::workloadShape(Shape::RandomBlob, 2000, 0, 17);
  const Region region = Region::whole(s);
  const PortalDecomposition decomp = computePortals(region, Axis::X);
  Table table({"portals", "|Q|", "root&prune", "election", "centroid",
               "decomposition"});
  Rng rng(5);
  for (const int q : {2, 4, 8, 16, 32, 64}) {
    if (q > decomp.portalCount()) break;
    std::vector<char> inQ(decomp.portalCount(), 0);
    int placed = 0;
    while (placed < q) {
      const int p = static_cast<int>(rng.below(decomp.portalCount()));
      if (!inQ[p]) {
        inQ[p] = 1;
        ++placed;
      }
    }
    Comm c1(region, 4);
    const PortalRootPruneResult rp =
        portalRootAndPrune(c1, decomp, {}, 0, inQ, true);
    Comm c2(region, 4);
    const PortalElectionResult el = portalElect(c2, decomp, {}, 0, inQ);
    Comm c3(region, 4);
    const PortalCentroidResult ce = portalCentroids(c3, decomp, {}, 0, inQ);
    std::vector<char> qPrime(decomp.portalCount(), 0);
    for (int p = 0; p < decomp.portalCount(); ++p)
      qPrime[p] = (inQ[p] || rp.inAug[p]) ? 1 : 0;
    const PortalDecompositionResult dt =
        portalDecompose(region, decomp, 0, qPrime);
    table.add(decomp.portalCount(), q, rp.rounds, el.rounds, ce.rounds,
              dt.rounds);
  }
  table.print(std::cout);
}

void BM_ComputePortals(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  for (auto _ : state) {
    const PortalDecomposition d = computePortals(region, Axis::X);
    benchmark::DoNotOptimize(d.portalOf.data());
  }
  state.counters["n"] = region.size();
}
BENCHMARK(BM_ComputePortals)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tablePortalStats();
  aspf::tableDistanceIdentity();
  aspf::tablePortalPrimitives();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E3 — Corollary of Theorem 39: SSSP in O(log n) rounds, versus the
// natural Omega(diam) information-flow baseline (beep-wave BFS). The
// speedup must grow roughly like diam / log n, i.e. exponentially in the
// input scale; the crossover sits at tiny n.
#include "baselines/bfs_wave.hpp"
#include "bench_common.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

using scenario::Shape;

void tableSssp() {
  bench::printHeader(
      "E3", "SSSP: circuit algorithm O(log n) vs beep-wave BFS O(diam)");
  Table table({"shape", "n", "diam", "SPT rounds", "BFS-wave rounds",
               "speedup"});
  auto runShape = [&](Shape shape, int a, int b, Coord sourceCoord) {
    const AmoebotStructure s = bench::workloadShape(shape, a, b);
    const Region region = Region::whole(s);
    const std::vector<char> all(region.size(), 1);
    std::vector<int> allIds(region.size());
    for (int i = 0; i < region.size(); ++i) allIds[i] = i;
    const int source = region.localOf(s.idOf(sourceCoord));
    const SptResult spt = shortestPathTree(region, source, all);
    bench::mustBeValid(region, spt.parent, {source}, allIds, "E3/spt");
    const int src[] = {source};
    const BfsWaveResult wave = bfsWaveForest(region, src, allIds);
    bench::mustBeValid(region, wave.parent, {source}, allIds, "E3/wave");
    table.add(std::string(toString(shape)), region.size(),
              s.eccentricity(source), spt.rounds, wave.rounds,
              static_cast<double>(wave.rounds) /
                  static_cast<double>(spt.rounds));
  };
  for (const int radius : {4, 8, 16, 32, 64})
    runShape(Shape::Hexagon, radius, 0, {0, 0});
  for (const int len : {64, 256, 1024, 4096})
    runShape(Shape::Line, len, 0, {0, 0});
  for (const int teeth : {4, 8, 16}) runShape(Shape::Comb, teeth, 32, {0, 0});
  table.print(std::cout);
  std::cout << "The speedup column grows with diam/log n: the circuit\n"
               "algorithm wins everywhere except trivially small inputs,\n"
               "matching the paper's exponential separation.\n";
}

void BM_Sssp(benchmark::State& state) {
  const auto s =
      bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  const int source = region.localOf(s.idOf({0, 0}));
  for (auto _ : state) {
    const SptResult spt = shortestPathTree(region, source, all);
    benchmark::DoNotOptimize(spt.parent.data());
  }
  state.counters["n"] = region.size();
}
BENCHMARK(BM_Sssp)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableSssp();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E3 — Corollary of Theorem 39: SSSP in O(log n) rounds, versus the
// natural Omega(diam) information-flow baseline (beep-wave BFS). The
// speedup must grow roughly like diam / log n, i.e. exponentially in the
// input scale; the crossover sits at tiny n.
#include "baselines/bfs_wave.hpp"
#include "bench_common.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

void tableSssp() {
  bench::printHeader(
      "E3", "SSSP: circuit algorithm O(log n) vs beep-wave BFS O(diam)");
  Table table({"shape", "n", "diam", "SPT rounds", "BFS-wave rounds",
               "speedup"});
  auto run = [&](const char* name, const AmoebotStructure& s, int source) {
    const Region region = Region::whole(s);
    const std::vector<char> all(region.size(), 1);
    std::vector<int> allIds(region.size());
    for (int i = 0; i < region.size(); ++i) allIds[i] = i;
    const SptResult spt = shortestPathTree(region, source, all);
    bench::mustBeValid(region, spt.parent, {source}, allIds, "E3/spt");
    const int src[] = {source};
    const BfsWaveResult wave = bfsWaveForest(region, src, allIds);
    bench::mustBeValid(region, wave.parent, {source}, allIds, "E3/wave");
    table.add(name, region.size(), s.eccentricity(source), spt.rounds,
              wave.rounds,
              static_cast<double>(wave.rounds) / spt.rounds);
  };
  for (const int radius : {4, 8, 16, 32, 64}) {
    const auto s = shapes::hexagon(radius);
    run("hexagon", s, s.idOf({0, 0}));
  }
  for (const int len : {64, 256, 1024, 4096}) {
    const auto s = shapes::line(len);
    run("line", s, 0);
  }
  for (const int teeth : {4, 8, 16}) {
    const auto s = shapes::comb(teeth, 32, 2);
    run("comb", s, 0);
  }
  table.print(std::cout);
  std::cout << "The speedup column grows with diam/log n: the circuit\n"
               "algorithm wins everywhere except trivially small inputs,\n"
               "matching the paper's exponential separation.\n";
}

void BM_Sssp(benchmark::State& state) {
  const auto s = shapes::hexagon(static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  const int source = region.localOf(s.idOf({0, 0}));
  for (auto _ : state) {
    const SptResult spt = shortestPathTree(region, source, all);
    benchmark::DoNotOptimize(spt.parent.data());
  }
  state.counters["n"] = region.size();
}
BENCHMARK(BM_Sssp)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableSssp();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E12 — query serving: one persistent structure, many SPF queries. The
// paper-style table serves a query stream per algorithm and reports the
// warm (persistent substrate) vs cold (from-scratch oracle) substrate cost
// over the whole stream -- for the singleton-pin wave the warm circuits
// settle after the first query and the per-query union work collapses.
// The google-benchmark section measures single-query latency, warm vs
// cold, under a rotating dest-swap load (the serving hot loop without the
// oracle overhead).
#include <optional>

#include "baselines/bfs_wave.hpp"
#include "bench_common.hpp"
#include "scenario/serve.hpp"

namespace aspf {
namespace {

using scenario::Algo;
using scenario::BenchReport;
using scenario::RunOptions;
using scenario::Scenario;
using scenario::ServeRun;
using scenario::ServeSpec;
using scenario::ServingReport;

void tableWarmVsCold() {
  bench::printHeader("E12",
                     "query serving: warm vs cold substrate cost over a "
                     "50-query stream");
  const Scenario sc = scenario::make(scenario::Shape::Hexagon, 16, 0, 4, 16, 1);
  ServeSpec spec;
  spec.queries = 50;
  spec.seed = 3;
  RunOptions options;
  options.threads = 1;
  options.timing = false;
  const BenchReport report =
      scenario::runServeBatch("bench", {sc}, spec, options);
  Table table({"scenario", "n", "queries", "algo", "rounds", "warm unions",
               "cold unions", "saved %"});
  for (const ServingReport& sv : report.serving) {
    for (const ServeRun& run : sv.runs) {
      const double saved =
          run.coldUnions > 0
              ? 100.0 * (1.0 - static_cast<double>(run.warmUnions) /
                                   static_cast<double>(run.coldUnions))
              : 0.0;
      table.add(sv.scenario.name, sv.n, sv.queries, run.algo, run.rounds,
                run.warmUnions, run.coldUnions, saved);
    }
  }
  table.print(std::cout);
}

/// The serving hot loop, one iteration = one query: rotate one destination
/// (dest-swap), then solve the wave. Warm keeps one substrate Comm for the
/// whole benchmark and pays only the query-boundary clearPending();
/// cold rebuilds a Comm from scratch inside bfsWaveForest every query.
/// range(0) = hexagon radius, range(1) = 1 for warm.
void BM_ServeWaveQuery(benchmark::State& state) {
  const Scenario sc = scenario::make(
      scenario::Shape::Hexagon, static_cast<int>(state.range(0)), 0, 4, 16, 1);
  const scenario::BuiltScenario built(sc);
  const int n = built.n();
  std::vector<int> sources = built.instance().sources;
  std::vector<int> dests = built.instance().destinations;
  std::vector<char> isDest = built.instance().isDest;
  const bool warm = state.range(1) != 0;
  std::optional<Comm> substrate;
  if (warm) substrate.emplace(built.region(), 1);

  long queries = 0;
  int slot = 0, probe = 0;
  for (auto _ : state) {
    // dest-swap: retire dests[slot], scan forward for the next free cell.
    isDest[dests[slot]] = 0;
    while (isDest[probe]) probe = (probe + 1) % n;
    dests[slot] = probe;
    isDest[probe] = 1;
    slot = (slot + 1) % static_cast<int>(dests.size());

    if (warm) substrate->clearPending();
    const BfsWaveResult r = bfsWaveForest(built.region(), sources, dests,
                                          warm ? &*substrate : nullptr);
    benchmark::DoNotOptimize(r.parent.data());
    ++queries;
  }
  state.SetItemsProcessed(queries);
  state.counters["n"] = n;
  state.counters["warm"] = warm ? 1 : 0;
}

BENCHMARK(BM_ServeWaveQuery)
    ->ArgsProduct({{8, 16, 32}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableWarmVsCold();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E4 — Theorem 56 / Corollary 57: the divide & conquer forest algorithm
// solves (k,l)-SPF in O(log n log^2 k) rounds. Series: rounds vs k at
// fixed n (normalized by log n log^2 k) and rounds vs n at fixed k
// (normalized by log n).
#include "bench_common.hpp"
#include "spf/forest.hpp"

namespace aspf {
namespace {

using bench::log2d;

void tableRoundsVsK() {
  bench::printHeader("E4a", "(k,l)-SPF rounds vs k (hexagon, fixed n)");
  const auto s = shapes::hexagon(16);  // n = 817
  const Region region = Region::whole(s);
  Table table({"n", "k", "l", "rounds", "rounds/(log n * log^2 k)"});
  for (const int k : {2, 4, 8, 16, 32, 64, 128}) {
    const auto sources = bench::pickDistinct(region, k, 100 + k);
    const auto dests = bench::pickDistinct(region, 32, 999);
    const ForestResult forest = shortestPathForest(
        region, bench::flags(region, sources), bench::flags(region, dests));
    bench::mustBeValid(region, forest.parent, sources, dests, "E4a");
    const double norm =
        log2d(region.size()) * log2d(k) * log2d(k);
    table.add(region.size(), k, 32, forest.rounds,
              static_cast<double>(forest.rounds) / std::max(norm, 1.0));
  }
  table.print(std::cout);
}

void tableRoundsVsN() {
  bench::printHeader("E4b", "(k,l)-SPF rounds vs n (fixed k = 16)");
  Table table({"n", "k", "rounds", "rounds/log2(n)"});
  for (const int radius : {6, 10, 16, 24, 32}) {
    const auto s = shapes::hexagon(radius);
    const Region region = Region::whole(s);
    const auto sources = bench::pickDistinct(region, 16, 5);
    const auto dests = bench::pickDistinct(region, 32, 6);
    const ForestResult forest = shortestPathForest(
        region, bench::flags(region, sources), bench::flags(region, dests));
    bench::mustBeValid(region, forest.parent, sources, dests, "E4b");
    table.add(region.size(), 16, forest.rounds,
              static_cast<double>(forest.rounds) / log2d(region.size()));
  }
  table.print(std::cout);
}

void tableRandomShapes() {
  bench::printHeader("E4c", "(k,l)-SPF on random hole-free blobs");
  Table table({"seed", "n", "k", "rounds"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto s = shapes::randomBlob(800, seed);
    const Region region = Region::whole(s);
    const auto sources = bench::pickDistinct(region, 12, seed * 3);
    const auto dests = bench::pickDistinct(region, 24, seed * 7);
    const ForestResult forest = shortestPathForest(
        region, bench::flags(region, sources), bench::flags(region, dests));
    bench::mustBeValid(region, forest.parent, sources, dests, "E4c");
    table.add(static_cast<long long>(seed), region.size(), 12,
              forest.rounds);
  }
  table.print(std::cout);
}

void tablePhaseBreakdown() {
  bench::printHeader("E4d",
                     "round breakdown by phase (hexagon n = 817, l = 32)");
  const auto s = shapes::hexagon(16);
  const Region region = Region::whole(s);
  Table table({"k", "preproc", "split", "base", "decomp", "merging", "prune",
               "total"});
  for (const int k : {2, 8, 32, 128}) {
    const auto sources = bench::pickDistinct(region, k, 100 + k);
    const auto dests = bench::pickDistinct(region, 32, 999);
    const ForestResult f = shortestPathForest(
        region, bench::flags(region, sources), bench::flags(region, dests));
    bench::mustBeValid(region, f.parent, sources, dests, "E4d");
    table.add(k, f.phases.preprocessing, f.phases.split, f.phases.base,
              f.phases.decomposition, f.phases.merging, f.phases.prune,
              f.rounds);
  }
  table.print(std::cout);
  std::cout << "The decomposition column is the binary-counter recomputation"
               " cost\n(height * O(log^2 k)); merging dominates at large k"
               " as the paper predicts.\n";
}

void BM_Forest(benchmark::State& state) {
  const auto s = shapes::hexagon(12);
  const Region region = Region::whole(s);
  const int k = static_cast<int>(state.range(0));
  const auto sources = bench::pickDistinct(region, k, 100 + k);
  const auto dests = bench::pickDistinct(region, 16, 999);
  const auto isSource = bench::flags(region, sources);
  const auto isDest = bench::flags(region, dests);
  for (auto _ : state) {
    const ForestResult forest = shortestPathForest(region, isSource, isDest);
    benchmark::DoNotOptimize(forest.parent.data());
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_Forest)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableRoundsVsK();
  aspf::tableRoundsVsN();
  aspf::tableRandomShapes();
  aspf::tablePhaseBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E4 — Theorem 56 / Corollary 57: the divide & conquer forest algorithm
// solves (k,l)-SPF in O(log n log^2 k) rounds. Series: rounds vs k at
// fixed n (normalized by log n log^2 k) and rounds vs n at fixed k
// (normalized by log n). All workloads are named scenarios; any row
// replays via `aspf-run --shape ... --k ... --seeds ...`.
#include "bench_common.hpp"
#include "spf/forest.hpp"

namespace aspf {
namespace {

using bench::log2d;
using scenario::Shape;

void tableRoundsVsK() {
  bench::printHeader("E4a", "(k,l)-SPF rounds vs k (hexagon, fixed n)");
  // Controlled series: the structure and the 32-destination set stay
  // fixed (seed 999) across rows so only k varies; scenario placement
  // would re-deal D per row because S draws first from the same stream.
  const auto s = bench::workloadShape(Shape::Hexagon, 16);  // n = 817
  const Region region = Region::whole(s);
  const auto dests = bench::pickDistinct(region, 32, 999);
  const auto isDest = bench::flags(region, dests);
  Table table({"n", "k", "l", "rounds", "rounds/(log n * log^2 k)"});
  for (const int k : {2, 4, 8, 16, 32, 64, 128}) {
    const auto sources = bench::pickDistinct(region, k, 100 + k);
    const ForestResult forest =
        shortestPathForest(region, bench::flags(region, sources), isDest);
    bench::mustBeValid(region, forest.parent, sources, dests, "E4a");
    const double norm = log2d(region.size()) * log2d(k) * log2d(k);
    table.add(region.size(), k, 32, forest.rounds,
              static_cast<double>(forest.rounds) / std::max(norm, 1.0));
  }
  table.print(std::cout);
}

void tableRoundsVsN() {
  bench::printHeader("E4b", "(k,l)-SPF rounds vs n (fixed k = 16)");
  Table table({"scenario", "n", "k", "rounds", "rounds/log2(n)"});
  for (const int radius : {6, 10, 16, 24, 32}) {
    const auto built = bench::workload(Shape::Hexagon, radius, 0, 16, 32, 5);
    const ForestResult forest =
        shortestPathForest(built.region(), built.instance().isSource,
                           built.instance().isDest);
    bench::mustBeValid(built, forest.parent, "E4b");
    table.add(built.scenario().name, built.n(), 16, forest.rounds,
              static_cast<double>(forest.rounds) / log2d(built.n()));
  }
  table.print(std::cout);
}

void tableRandomShapes() {
  bench::printHeader("E4c", "(k,l)-SPF on random hole-free blobs");
  Table table({"scenario", "n", "k", "rounds"});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto built = bench::workload(Shape::RandomBlob, 800, 0, 12, 24, seed);
    const ForestResult forest =
        shortestPathForest(built.region(), built.instance().isSource,
                           built.instance().isDest);
    bench::mustBeValid(built, forest.parent, "E4c");
    table.add(built.scenario().name, built.n(), 12, forest.rounds);
  }
  table.print(std::cout);
}

void tablePhaseBreakdown() {
  bench::printHeader("E4d",
                     "round breakdown by phase (hexagon n = 817, l = 32)");
  const auto s = bench::workloadShape(Shape::Hexagon, 16);
  const Region region = Region::whole(s);
  const auto dests = bench::pickDistinct(region, 32, 999);  // fixed control
  const auto isDest = bench::flags(region, dests);
  Table table({"k", "preproc", "split", "base", "decomp", "merging", "prune",
               "total"});
  for (const int k : {2, 8, 32, 128}) {
    const auto sources = bench::pickDistinct(region, k, 100 + k);
    const ForestResult f =
        shortestPathForest(region, bench::flags(region, sources), isDest);
    bench::mustBeValid(region, f.parent, sources, dests, "E4d");
    table.add(k, f.phases.preprocessing, f.phases.split, f.phases.base,
              f.phases.decomposition, f.phases.merging, f.phases.prune,
              f.rounds);
  }
  table.print(std::cout);
  std::cout << "The decomposition column is the binary-counter recomputation"
               " cost\n(height * O(log^2 k)); merging dominates at large k"
               " as the paper predicts.\n";
}

void BM_Forest(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto built = bench::workload(Shape::Hexagon, 12, 0, k, 16, 100 + k);
  for (auto _ : state) {
    const ForestResult forest =
        shortestPathForest(built.region(), built.instance().isSource,
                           built.instance().isDest);
    benchmark::DoNotOptimize(forest.parent.data());
  }
  state.counters["k"] = k;
}
BENCHMARK(BM_Forest)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableRoundsVsK();
  aspf::tableRoundsVsN();
  aspf::tableRandomShapes();
  aspf::tablePhaseBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// E7 — Lemmas 40/42/50: the line algorithm, the merging algorithm, and the
// propagation algorithm each run within O(log n) rounds.
#include "baselines/reference.hpp"
#include "bench_common.hpp"
#include "portals/portals.hpp"
#include "spf/line_algorithm.hpp"
#include "spf/merging.hpp"
#include "spf/propagation.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

using scenario::Shape;

using bench::log2d;

void tableLine() {
  bench::printHeader("E7a", "line algorithm rounds vs n (k = 8 sources)");
  Table table({"n", "rounds", "rounds/log2(n)"});
  for (const int m : {64, 256, 1024, 4096}) {
    const auto s = bench::workloadShape(Shape::Line, m);
    const Region region = Region::whole(s);
    std::vector<int> chain(m);
    for (int q = 0; q < m; ++q) chain[q] = region.localOf(s.idOf({q, 0}));
    std::vector<char> isSource(m, 0);
    Rng rng(m);
    for (int i = 0; i < 8; ++i) isSource[rng.below(m)] = 1;
    const LineSpfResult res = lineSpf(region, chain, isSource);
    table.add(m, res.rounds, static_cast<double>(res.rounds) / log2d(m));
  }
  table.print(std::cout);
}

void tableMerge() {
  bench::printHeader("E7b", "merging algorithm rounds vs n");
  Table table({"n", "rounds", "rounds/log2(n)"});
  for (const int radius : {8, 16, 32, 48}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    const std::vector<char> all(region.size(), 1);
    const int s1 = region.localOf(s.idOf({-radius, 0}));
    const int s2 = region.localOf(s.idOf({radius, 0}));
    const SptResult t1 = shortestPathTree(region, s1, all);
    const SptResult t2 = shortestPathTree(region, s2, all);
    const MergeResult merged = mergeForests(region, t1.parent, t2.parent);
    std::vector<int> allIds(region.size());
    for (int i = 0; i < region.size(); ++i) allIds[i] = i;
    bench::mustBeValid(region, merged.parent, {s1, s2}, allIds, "E7b");
    table.add(region.size(), merged.rounds,
              static_cast<double>(merged.rounds) / log2d(region.size()));
  }
  table.print(std::cout);
}

void tablePropagation() {
  bench::printHeader("E7c",
                     "propagation rounds vs n (forest pushed across the "
                     "equator portal of a hexagon)");
  Table table({"n", "|B|", "rounds", "rounds/log2(n)"});
  for (const int radius : {8, 16, 32, 48}) {
    const auto s = bench::workloadShape(Shape::Hexagon, radius);
    const Region region = Region::whole(s);
    const PortalDecomposition decomp = computePortals(region, Axis::X);
    const int portal = decomp.portalOf[region.localOf(s.idOf({0, 0}))];

    // A u P = equator and everything north of it.
    std::vector<int> parentAP(region.size(), -2);
    std::vector<int> apLocals;
    for (int u = 0; u < region.size(); ++u) {
      if (region.coordOf(u).r >= 0) apLocals.push_back(u);
    }
    std::vector<int> globals;
    for (const int u : apLocals) globals.push_back(region.globalId(u));
    const Region ap = Region::of(region.structure(), globals);
    const int source = region.localOf(s.idOf({0, 0}));
    std::vector<int> apSrc{ap.localOf(region.globalId(source))};
    const auto dist = ap.bfsDistancesLocal(apSrc);
    parentAP[source] = -1;
    for (int zu = 0; zu < ap.size(); ++zu) {
      const int u = region.localOf(ap.globalId(zu));
      if (u == source) continue;
      for (Dir d : kAllDirs) {
        const int zv = ap.neighbor(zu, d);
        if (zv >= 0 && dist[zv] == dist[zu] - 1) {
          parentAP[u] = region.localOf(ap.globalId(zv));
          break;
        }
      }
    }
    const PropagationResult prop =
        propagateForest(region, decomp, portal, parentAP);
    std::vector<int> allIds(region.size());
    for (int i = 0; i < region.size(); ++i) allIds[i] = i;
    bench::mustBeValid(region, prop.parent, {source}, allIds, "E7c");
    table.add(region.size(),
              region.size() - static_cast<int>(apLocals.size()), prop.rounds,
              static_cast<double>(prop.rounds) / log2d(region.size()));
  }
  table.print(std::cout);
}

void BM_Merge(benchmark::State& state) {
  const auto s = bench::workloadShape(Shape::Hexagon, static_cast<int>(state.range(0)));
  const Region region = Region::whole(s);
  const std::vector<char> all(region.size(), 1);
  const int radius = static_cast<int>(state.range(0));
  const SptResult t1 =
      shortestPathTree(region, region.localOf(s.idOf({-radius, 0})), all);
  const SptResult t2 =
      shortestPathTree(region, region.localOf(s.idOf({radius, 0})), all);
  for (auto _ : state) {
    const MergeResult merged = mergeForests(region, t1.parent, t2.parent);
    benchmark::DoNotOptimize(merged.parent.data());
  }
}
BENCHMARK(BM_Merge)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aspf

int main(int argc, char** argv) {
  aspf::tableLine();
  aspf::tableMerge();
  aspf::tablePropagation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace aspf::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule tables. Banned names live in string literals only: the scanner
// strips literals before matching, so this file never flags itself.
// ---------------------------------------------------------------------------

constexpr const char* kRules[] = {"unordered-iter", "nondeterminism",
                                  "raw-pinarena", "float-field",
                                  "ctest-timeout"};

// Identifiers that are nondeterministic on their own (any use is a leak
// of hash order, ASLR, or the host clock into a deterministic path).
constexpr const char* kBannedIds[] = {
    "random_device", "system_clock",          "high_resolution_clock",
    "mt19937",       "mt19937_64",            "default_random_engine",
    "gettimeofday",  "getrandom",
};

// Identifiers banned only in call position (`time(...)`, not `wallTime`).
constexpr const char* kBannedCalls[] = {"rand", "srand", "rand_r", "time",
                                        "clock"};

// The one clock the runner's timing blocks may read; everywhere else a
// monotonic clock is still a wall clock.
constexpr const char* kSteadyClock = "steady_clock";
constexpr const char* kTimingFiles[] = {"src/scenario/runner.cpp",
                                        "src/scenario/serve.cpp"};

// Direct-substrate types protocols must not name outside src/sim/: pins
// are mutated only through Comm::pins() -> PinConfigRef so the arena can
// snapshot first-mutation state ("PinConfig" is the pre-PR-3 raw class;
// naming it again would resurrect the unsnapshotted access path).
constexpr const char* kRawSubstrateIds[] = {"PinArena", "PinConfig"};

constexpr const char* kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                           "unordered_multimap",
                                           "unordered_multiset"};

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

template <std::size_t N>
bool inTable(const char* const (&table)[N], const std::string& s) {
  for (const char* entry : table)
    if (s == entry) return true;
  return false;
}

std::string trim(std::string s) {
  const auto notSpace = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notSpace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notSpace).base(), s.end());
  return s;
}

// ---------------------------------------------------------------------------
// Lexing: split the file into lines twice -- once with comments and
// string/char literals blanked (code view: rules match here) and once
// with everything BUT comment text blanked (comment view: annotations
// are extracted here, so a banned token quoted in a string, or an
// annotation example inside a test fixture literal, is invisible).
// ---------------------------------------------------------------------------

struct LineViews {
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

LineViews splitViews(const std::string& text) {
  enum class State { Code, Slash, Line, Block, Str, Chr, Raw };
  LineViews views;
  std::string code, comment;
  State st = State::Code;
  std::string rawDelim;  // for R"delim( ... )delim"
  auto flush = [&] {
    views.code.push_back(code);
    views.comment.push_back(comment);
    code.clear();
    comment.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == State::Slash) {  // lone '/' at end of line stays code
        st = State::Code;
      }
      if (st == State::Line) st = State::Code;
      flush();
      continue;
    }
    switch (st) {
      case State::Code:
        if (c == '/') {
          st = State::Slash;
        } else if (c == '"') {
          // Raw string literal? Look back for the R prefix.
          if (!code.empty() && code.back() == 'R' &&
              (code.size() < 2 || !isIdentChar(code[code.size() - 2]))) {
            rawDelim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(')
              rawDelim.push_back(text[j++]);
            st = State::Raw;
          } else {
            st = State::Str;
          }
          code.push_back(' ');
          comment.push_back(' ');
        } else if (c == '\'') {
          st = State::Chr;
          code.push_back(' ');
          comment.push_back(' ');
        } else {
          code.push_back(c);
          comment.push_back(' ');
        }
        break;
      case State::Slash:
        if (c == '/') {
          st = State::Line;
          code.push_back(' ');
          code.push_back(' ');
          comment.push_back(' ');
          comment.push_back(' ');
        } else if (c == '*') {
          st = State::Block;
          code.push_back(' ');
          code.push_back(' ');
          comment.push_back(' ');
          comment.push_back(' ');
        } else {
          code.push_back('/');
          code.push_back(c);
          comment.push_back(' ');
          comment.push_back(' ');
          st = State::Code;
        }
        break;
      case State::Line:
        code.push_back(' ');
        comment.push_back(c);
        break;
      case State::Block:
        code.push_back(' ');
        if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          comment.push_back(' ');
          code.push_back(' ');
          comment.push_back(' ');
          ++i;
          st = State::Code;
        } else {
          comment.push_back(c);
        }
        break;
      case State::Str:
        code.push_back(' ');
        comment.push_back(' ');
        if (c == '\\' && i + 1 < text.size()) {
          code.push_back(' ');
          comment.push_back(' ');
          ++i;
        } else if (c == '"') {
          st = State::Code;
        }
        break;
      case State::Chr:
        code.push_back(' ');
        comment.push_back(' ');
        if (c == '\\' && i + 1 < text.size()) {
          code.push_back(' ');
          comment.push_back(' ');
          ++i;
        } else if (c == '\'') {
          st = State::Code;
        }
        break;
      case State::Raw: {
        code.push_back(' ');
        comment.push_back(' ');
        if (c == ')' && text.compare(i + 1, rawDelim.size(), rawDelim) == 0 &&
            i + 1 + rawDelim.size() < text.size() &&
            text[i + 1 + rawDelim.size()] == '"') {
          for (std::size_t k = 0; k < rawDelim.size() + 1; ++k) {
            code.push_back(' ');
            comment.push_back(' ');
          }
          i += rawDelim.size() + 1;
          st = State::Code;
        }
        break;
      }
    }
  }
  flush();
  return views;
}

// ---------------------------------------------------------------------------
// Annotations: `aspf-lint: allow(<rule>) <reason>` inside a comment.
// ---------------------------------------------------------------------------

struct Annotation {
  bool present = false;
  std::string rule;
  std::string reason;
};

Annotation parseAnnotation(const std::string& commentLine) {
  Annotation a;
  const std::string tag = "aspf-lint:";
  const std::size_t at = commentLine.find(tag);
  if (at == std::string::npos) return a;
  std::size_t i = at + tag.size();
  while (i < commentLine.size() &&
         std::isspace(static_cast<unsigned char>(commentLine[i])))
    ++i;
  const std::string kw = "allow(";
  if (commentLine.compare(i, kw.size(), kw) != 0) return a;
  i += kw.size();
  std::string rule;
  while (i < commentLine.size() &&
         (std::islower(static_cast<unsigned char>(commentLine[i])) ||
          commentLine[i] == '-'))
    rule.push_back(commentLine[i++]);
  if (rule.empty() || i >= commentLine.size() || commentLine[i] != ')')
    return a;  // not the annotation grammar (e.g. a doc placeholder)
  a.present = true;
  a.rule = rule;
  std::string reason = commentLine.substr(i + 1);
  // A block-comment annotation may close on the same line.
  if (const std::size_t close = reason.find("*/"); close != std::string::npos)
    reason = reason.substr(0, close);
  a.reason = trim(reason);
  return a;
}

// ---------------------------------------------------------------------------
// Small code-view matchers.
// ---------------------------------------------------------------------------

struct IdentRef {
  std::string name;
  std::size_t pos = 0;
};

std::vector<IdentRef> identifiers(const std::string& line) {
  std::vector<IdentRef> ids;
  std::size_t i = 0;
  while (i < line.size()) {
    if (isIdentStart(line[i]) && (i == 0 || !isIdentChar(line[i - 1]))) {
      std::size_t j = i;
      while (j < line.size() && isIdentChar(line[j])) ++j;
      ids.push_back({line.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return ids;
}

/// True iff the identifier at `pos` is called: next non-space char is '('
/// and it is not a member access (`.x(` / `->x(`) -- the banned C calls
/// are free functions.
bool isFreeCall(const std::string& line, const IdentRef& id) {
  std::size_t j = id.pos + id.name.size();
  while (j < line.size() &&
         std::isspace(static_cast<unsigned char>(line[j])))
    ++j;
  if (j >= line.size() || line[j] != '(') return false;
  if (id.pos >= 1 && (line[id.pos - 1] == '.' || line[id.pos - 1] == '>'))
    return false;
  return true;
}

/// If `line` holds a range-based for over a bare identifier, returns it.
std::string rangeForTarget(const std::string& line) {
  std::size_t at = line.find("for");
  while (at != std::string::npos) {
    const bool boundary =
        (at == 0 || !isIdentChar(line[at - 1])) &&
        (at + 3 >= line.size() || !isIdentChar(line[at + 3]));
    if (boundary) {
      std::size_t i = at + 3;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i < line.size() && line[i] == '(') {
        int depth = 1;
        std::size_t j = i + 1;
        std::size_t colon = std::string::npos;
        bool semicolon = false;
        for (; j < line.size() && depth > 0; ++j) {
          if (line[j] == '(')
            ++depth;
          else if (line[j] == ')')
            --depth;
          else if (line[j] == ';' && depth == 1)
            semicolon = true;
          else if (line[j] == ':' && depth == 1) {
            const bool dbl = (j + 1 < line.size() && line[j + 1] == ':') ||
                             (j >= 1 && line[j - 1] == ':');
            if (!dbl) colon = j;
          }
        }
        if (!semicolon && depth == 0 && colon != std::string::npos) {
          const std::string target = trim(line.substr(colon + 1, j - colon - 2));
          if (!target.empty() && isIdentStart(target[0]) &&
              std::all_of(target.begin(), target.end(), isIdentChar))
            return target;
        }
      }
    }
    at = line.find("for", at + 1);
  }
  return {};
}

/// Names of variables `x` appearing as `x.begin(` / `x.cbegin(` /
/// `x.rbegin(` on the line (iteration entry points; `.end()` alone is the
/// find()-comparison idiom and stays legal).
std::vector<std::string> beginReceivers(const std::string& line) {
  std::vector<std::string> out;
  for (const char* fn : {".begin", ".cbegin", ".rbegin"}) {
    std::size_t at = line.find(fn);
    const std::size_t fnLen = std::string(fn).size();
    while (at != std::string::npos) {
      std::size_t j = at + fnLen;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j < line.size() && line[j] == '(' &&
          (at + fnLen >= line.size() || !isIdentChar(line[at + fnLen]))) {
        std::size_t e = at;  // scan the receiver identifier backwards
        std::size_t s = e;
        while (s > 0 && isIdentChar(line[s - 1])) --s;
        if (s < e && isIdentStart(line[s]))
          out.push_back(line.substr(s, e - s));
      }
      at = line.find(fn, at + 1);
    }
  }
  return out;
}

/// Collects unordered-container aliases and variable/member names
/// declared on this line, growing `aliases` / `names`.
void collectUnorderedDecls(const std::string& line,
                           std::vector<std::string>* aliases,
                           std::vector<std::string>* names) {
  // `using X = std::unordered_set<...>` introduces a type alias.
  for (const IdentRef& id : identifiers(line)) {
    if (!inTable(kUnorderedTypes, id.name) && !contains(*aliases, id.name))
      continue;
    // Alias definition: `using NAME = ...<this token>...`.
    const std::size_t usingAt = line.find("using ");
    if (usingAt != std::string::npos && usingAt < id.pos) {
      const std::size_t eq = line.find('=', usingAt);
      if (eq != std::string::npos && eq < id.pos) {
        std::string alias =
            trim(line.substr(usingAt + 6, eq - usingAt - 6));
        if (!alias.empty() &&
            std::all_of(alias.begin(), alias.end(), isIdentChar)) {
          if (!contains(*aliases, alias)) aliases->push_back(alias);
          continue;
        }
      }
    }
    // Declaration: TYPE [<...>] [&] NAME [;={(,)].
    std::size_t i = id.pos + id.name.size();
    if (i < line.size() && line[i] == '<') {
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
    }
    while (i < line.size() &&
           (std::isspace(static_cast<unsigned char>(line[i])) ||
            line[i] == '&'))
      ++i;
    std::size_t s = i;
    while (i < line.size() && isIdentChar(line[i])) ++i;
    if (i == s || !isIdentStart(line[s])) continue;
    const std::string name = line.substr(s, i - s);
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] == ';' || line[i] == '=' ||
        line[i] == '{' || line[i] == '(' || line[i] == ',' ||
        line[i] == ')') {
      if (!contains(*names, name)) names->push_back(name);
    }
  }
}

// ---------------------------------------------------------------------------
// Scope: which rules apply where, derived from the repo-relative path.
// ---------------------------------------------------------------------------

struct Scope {
  bool unorderedIter = false;  // everywhere we scan C++
  bool nondeterminism = false; // src/ + tools/
  bool rawSubstrate = false;   // src/ outside src/sim/
  bool timingAllowed = false;  // the runner's timing blocks
};

std::string normalized(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

Scope scopeFor(const std::string& rawPath) {
  const std::string path = normalized(rawPath);
  Scope s;
  s.unorderedIter = true;
  const bool inSrc = path.rfind("src/", 0) == 0;
  const bool inTools = path.rfind("tools/", 0) == 0;
  s.nondeterminism = inSrc || inTools;
  s.rawSubstrate = inSrc && path.rfind("src/sim/", 0) != 0;
  s.timingAllowed = inTable(kTimingFiles, path);
  return s;
}

// ---------------------------------------------------------------------------
// Shared annotation-aware reporting.
// ---------------------------------------------------------------------------

class Reporter {
 public:
  Reporter(const std::string& file, const LineViews& views)
      : file_(file), views_(views) {}

  /// Validates every annotation once (empty reason / unknown rule).
  void auditAnnotations(std::vector<Finding>* out) const {
    for (std::size_t i = 0; i < views_.comment.size(); ++i) {
      const Annotation a = parseAnnotation(views_.comment[i]);
      if (!a.present) continue;
      if (!knownRule(a.rule)) {
        out->push_back({file_, static_cast<int>(i + 1), "annotation",
                        "unknown rule '" + a.rule +
                            "' in aspf-lint allow-annotation"});
      } else if (a.reason.empty()) {
        out->push_back({file_, static_cast<int>(i + 1), "annotation",
                        "allow(" + a.rule +
                            ") annotation must carry a reason"});
      }
    }
  }

  /// Reports unless an allow-annotation for `rule` (with a reason)
  /// covers the line: on the line itself, or anywhere in the contiguous
  /// comment block immediately above it (annotations routinely wrap to a
  /// continuation line under the 80-column limit).
  void report(std::vector<Finding>* out, std::size_t lineIdx,
              const std::string& rule, std::string message) const {
    if (allowedAt(lineIdx, rule)) return;
    for (std::size_t j = lineIdx; j-- > 0;) {
      const std::string& code = views_.code[j];
      const bool codeBlank = std::all_of(
          code.begin(), code.end(),
          [](unsigned char c) { return std::isspace(c); });
      if (!codeBlank) break;
      if (allowedAt(j, rule)) return;
    }
    out->push_back({file_, static_cast<int>(lineIdx + 1), rule,
                    std::move(message)});
  }

 private:
  bool allowedAt(std::size_t lineIdx, const std::string& rule) const {
    const Annotation a = parseAnnotation(views_.comment[lineIdx]);
    return a.present && a.rule == rule && !a.reason.empty();
  }

  const std::string& file_;
  const LineViews& views_;
};

}  // namespace

bool knownRule(const std::string& name) { return inTable(kRules, name); }

std::string formatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message;
  return os.str();
}

std::vector<Finding> scanSource(const std::string& path,
                                const std::string& text,
                                const std::string& headerText) {
  const Scope scope = scopeFor(path);
  const LineViews views = splitViews(text);
  std::vector<Finding> out;
  const Reporter reporter(path, views);
  reporter.auditAnnotations(&out);

  // Unordered-container names: the same-stem header's members (e.g.
  // `localMap_` from region.hpp) are visible to the .cpp scan.
  std::vector<std::string> aliases, names;
  if (!headerText.empty()) {
    for (const std::string& line : splitViews(headerText).code)
      collectUnorderedDecls(line, &aliases, &names);
  }
  for (const std::string& line : views.code)
    collectUnorderedDecls(line, &aliases, &names);

  for (std::size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    if (scope.unorderedIter) {
      const std::string target = rangeForTarget(line);
      if (!target.empty() && contains(names, target))
        reporter.report(&out, i, "unordered-iter",
                        "range-for over unordered container '" + target +
                            "': iteration order is hash/platform dependent");
      for (const std::string& recv : beginReceivers(line)) {
        if (contains(names, recv))
          reporter.report(&out, i, "unordered-iter",
                          "iteration over unordered container '" + recv +
                              "' via begin(): order is hash/platform "
                              "dependent");
      }
    }
    if (scope.nondeterminism || scope.rawSubstrate) {
      for (const IdentRef& id : identifiers(line)) {
        if (scope.nondeterminism) {
          if (inTable(kBannedIds, id.name)) {
            reporter.report(&out, i, "nondeterminism",
                            "'" + id.name +
                                "' leaks nondeterminism into a "
                                "deterministic path; use the seeded "
                                "util/rng.hpp");
          } else if (id.name == kSteadyClock && !scope.timingAllowed) {
            reporter.report(&out, i, "nondeterminism",
                            "wall-clock read outside the runner's timing "
                            "blocks (allowed: src/scenario/runner.cpp, "
                            "src/scenario/serve.cpp)");
          } else if (inTable(kBannedCalls, id.name) &&
                     isFreeCall(line, id)) {
            reporter.report(&out, i, "nondeterminism",
                            "call to '" + id.name +
                                "()' is nondeterministic; use the seeded "
                                "util/rng.hpp (randomness) or the runner's "
                                "timing block (clocks)");
          }
        }
        if (scope.rawSubstrate && inTable(kRawSubstrateIds, id.name)) {
          reporter.report(&out, i, "raw-pinarena",
                          "direct '" + id.name +
                              "' access outside src/sim/: protocols mutate "
                              "pins only through Comm::pins() -> "
                              "PinConfigRef (dirty tracking depends on it)");
        }
      }
    }
  }
  return out;
}

std::vector<Finding> scanCMake(const std::string& path,
                               const std::string& text) {
  // Strip per-line '#' comments (quote-aware enough for this tree).
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      bool quoted = false;
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '"') quoted = !quoted;
        if (line[i] == '#' && !quoted) {
          line = line.substr(0, i);
          break;
        }
      }
      lines.push_back(line);
    }
  }
  std::vector<Finding> out;
  const std::string kw = "gtest_discover_tests";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t at = lines[i].find(kw);
    if (at == std::string::npos) continue;
    if (at > 0 && isIdentChar(lines[i][at - 1])) continue;
    // Capture the balanced argument list, possibly spanning lines.
    std::string args;
    int depth = 0;
    bool started = false;
    for (std::size_t j = i; j < lines.size() && (!started || depth > 0);
         ++j) {
      const std::string& l = lines[j];
      for (std::size_t c = (j == i ? at : 0); c < l.size(); ++c) {
        if (l[c] == '(') {
          ++depth;
          started = true;
        } else if (l[c] == ')') {
          if (--depth == 0) break;
        } else if (started) {
          args.push_back(l[c]);
        }
      }
      args.push_back(' ');
      if (started && depth == 0) break;
    }
    const auto hasWord = [&args](const std::string& w) {
      std::size_t p = args.find(w);
      while (p != std::string::npos) {
        const bool lb = p == 0 || !isIdentChar(args[p - 1]);
        const bool rb = p + w.size() >= args.size() ||
                        !isIdentChar(args[p + w.size()]);
        if (lb && rb) return true;
        p = args.find(w, p + 1);
      }
      return false;
    };
    if (!hasWord("TIMEOUT"))
      out.push_back({path, static_cast<int>(i + 1), "ctest-timeout",
                     "gtest_discover_tests() without an explicit TIMEOUT "
                     "property: a huge-tier hang would stall CI silently"});
    if (!hasWord("LABELS")) {
      out.push_back({path, static_cast<int>(i + 1), "ctest-timeout",
                     "gtest_discover_tests() without a LABELS property: "
                     "every suite must be labelled smoke or full"});
    } else {
      const std::size_t lp = args.find("LABELS");
      const std::string after = args.substr(lp + 6);
      if (after.find("smoke") == std::string::npos &&
          after.find("full") == std::string::npos &&
          after.find("${") == std::string::npos)
        out.push_back({path, static_cast<int>(i + 1), "ctest-timeout",
                       "gtest_discover_tests() LABELS must name smoke or "
                       "full (or expand a variable that does)"});
    }
  }
  return out;
}

std::vector<Finding> checkFloatManifest(const std::string& hppPath,
                                        const std::string& hppText,
                                        const std::string& cppPath,
                                        const std::string& cppText) {
  std::vector<Finding> out;
  // Manifest: every double/float member declared in report.hpp.
  std::vector<std::string> floatFields;
  for (const std::string& line : splitViews(hppText).code) {
    const std::string t = trim(line);
    for (const std::string prefix : {"double ", "float "}) {
      if (t.rfind(prefix, 0) != 0) continue;
      std::size_t s = prefix.size();
      std::size_t e = s;
      while (e < t.size() && isIdentChar(t[e])) ++e;
      if (e > s && isIdentStart(t[s]) &&
          (e == t.size() || t[e] != '(')) {  // skip function declarations
        const std::string field = t.substr(s, e - s);
        if (!contains(floatFields, field)) floatFields.push_back(field);
      }
    }
  }
  if (floatFields.empty()) {
    out.push_back({hppPath, 1, "float-field",
                   "no floating-point fields found in the report header; "
                   "manifest extraction is broken"});
    return out;
  }
  // Comparison sites: inside equalDeterministic in report.cpp, any
  // `.field` reference to a manifest field.
  const LineViews views = splitViews(cppText);
  const Reporter reporter(cppPath, views);
  std::size_t begin = views.code.size();
  for (std::size_t i = 0; i < views.code.size(); ++i) {
    if (views.code[i].find("equalDeterministic(") != std::string::npos &&
        views.code[i].find("bool ") != std::string::npos) {
      begin = i;
      break;
    }
  }
  if (begin == views.code.size()) {
    out.push_back({cppPath, 1, "float-field",
                   "equalDeterministic definition not found; manifest "
                   "cross-check is broken"});
    return out;
  }
  for (std::size_t i = begin; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    for (const std::string& field : floatFields) {
      std::size_t p = line.find("." + field);
      bool hit = false;
      while (p != std::string::npos && !hit) {
        const std::size_t after = p + 1 + field.size();
        if (after >= line.size() || !isIdentChar(line[after])) hit = true;
        p = line.find("." + field, p + 1);
      }
      if (hit)
        reporter.report(&out, i, "float-field",
                        "floating-point report field '" + field +
                            "' is compared by equalDeterministic; floats "
                            "belong only in excluded (timing) fields");
    }
  }
  return out;
}

int lintTree(const std::string& root, std::ostream& out) {
  namespace fs = std::filesystem;
  const fs::path rootPath(root);
  if (!fs::is_directory(rootPath / "src"))
    throw std::runtime_error("aspf-lint: '" + root +
                             "' does not look like the repo root (no src/)");

  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "tools", "bench", "examples"}) {
    const fs::path base = rootPath / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  const auto readFile = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const auto relative = [&rootPath](const fs::path& p) {
    return normalized(fs::relative(p, rootPath).string());
  };

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::string headerText;
    if (file.extension() == ".cpp") {
      fs::path header = file;
      header.replace_extension(".hpp");
      if (fs::is_regular_file(header)) headerText = readFile(header);
    }
    const std::vector<Finding> fs_ =
        scanSource(relative(file), readFile(file), headerText);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  const fs::path reportHpp = rootPath / "src/scenario/report.hpp";
  const fs::path reportCpp = rootPath / "src/scenario/report.cpp";
  if (fs::is_regular_file(reportHpp) && fs::is_regular_file(reportCpp)) {
    const std::vector<Finding> fs_ = checkFloatManifest(
        relative(reportHpp), readFile(reportHpp), relative(reportCpp),
        readFile(reportCpp));
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  const fs::path cmake = rootPath / "CMakeLists.txt";
  if (fs::is_regular_file(cmake)) {
    const std::vector<Finding> fs_ =
        scanCMake("CMakeLists.txt", readFile(cmake));
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) out << formatFinding(f) << "\n";
  return static_cast<int>(findings.size());
}

}  // namespace aspf::lint

#pragma once
// Dependency-free CLI parsing helpers shared by the aspf tools and unit
// tests (tests/test_cli_args.cpp). Extracted from aspf_run.cpp so the
// junk-rejection and range-cap rules are testable without spawning the
// binary.
//
// Contracts (all enforced, all covered by tests):
//   * Integers must consume the ENTIRE token: "1x" is an error, not 1.
//     This closes the historical gap where list items went through a bare
//     std::stoi while scalar flags checked the consumed length -- so
//     `--seeds 1x,2y` silently ran seeds 1,2.
//   * `lo..hi` ranges expand to at most kMaxRangeSpan values. A typo like
//     `0..2000000000` is a usage error, not a multi-gigabyte allocation.
//   * Ranges with hi < lo are errors (an empty range is never what the
//     user meant).
//   * With `nonNegative` every parsed value must be >= 0 (seed lists: the
//     registry derives uint64 seeds from them).
//
// On failure every function returns false and, when `error` is non-null,
// stores a human-readable reason (no flag name -- the caller prefixes it).
#include <string>
#include <vector>

namespace aspf::cli {

/// Largest number of values a single `lo..hi` range may expand to.
inline constexpr long kMaxRangeSpan = 1'000'000;

/// Full-match integer parse ("12", "-3"); trailing junk, empty input and
/// overflow are errors.
bool parseInt(const std::string& text, int* out, std::string* error);

/// Comma-separated integer list with inclusive `lo..hi` ranges
/// ("2,8,32", "1..4", "1,4..6,9"). Appends to *out. Empty lists, empty
/// items, partial matches, reversed or over-wide ranges are errors; with
/// `nonNegative`, so is any value < 0.
bool parseIntList(const std::string& text, std::vector<int>* out,
                  std::string* error, bool nonNegative = false);

}  // namespace aspf::cli

// aspf-lint -- the project's determinism-and-invariant static checker.
// Thin main over tools/lint_core.{hpp,cpp} (the engine is a library so
// tests/test_lint.cpp can drive it on fixture strings without spawning
// the binary). See lint_core.hpp for the rule list and the
// allow-annotation grammar; docs/ARCHITECTURE.md "Determinism rules" has
// the prose rationale.
//
// Usage:
//   aspf-lint [--root DIR] [--list-rules]
//
// Exit codes: 0 clean, 1 violations printed (one `file:line: rule:
// message` per line), 2 usage or I/O error.
#include <cstring>
#include <iostream>
#include <string>

#include "lint_core.hpp"

namespace {

constexpr const char* kUsage =
    "usage: aspf-lint [--root DIR] [--list-rules]\n"
    "\n"
    "Statically enforces the repo's written determinism invariants over\n"
    "src/, tests/, tools/, bench/, examples/ and CMakeLists.txt.\n"
    "Violations print as `file:line: rule: message`; exit 1 if any.\n"
    "Waive a finding with an annotation on the same or preceding line:\n"
    "  // aspf-lint: allow(<rule>) <non-empty reason>\n";

constexpr const char* kRuleHelp =
    "unordered-iter   no iteration over std::unordered_map/set "
    "(hash-order dependent)\n"
    "nondeterminism   no rand/time()/clock()/random_device/system_clock "
    "in src/ or tools/\n"
    "raw-pinarena     no direct PinArena/PinConfig access outside "
    "src/sim/\n"
    "float-field      no floating-point report field compared by "
    "equalDeterministic\n"
    "ctest-timeout    every gtest_discover_tests() carries TIMEOUT and "
    "smoke/full LABELS\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      std::cout << kRuleHelp;
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "aspf-lint: unknown argument '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }
  try {
    const int findings = aspf::lint::lintTree(root, std::cout);
    if (findings > 0) {
      std::cerr << "aspf-lint: " << findings << " violation"
                << (findings == 1 ? "" : "s") << " (annotate deliberate "
                << "exceptions with `// aspf-lint: allow(<rule>) <reason>`)"
                << "\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}

#pragma once
// aspf-lint: the project-specific static checker behind the `aspf-lint`
// CLI. Every guarantee this reproduction makes -- warm==cold oracles,
// sim-threads 1-vs-N byte-identity, scalar-vs-AVX2 bit-identity -- is
// enforced *dynamically* by cmp/--diff runs in CI; this pass proves the
// easy half of the bit-identity contract statically, so an
// unordered_map iteration or a stray wall-clock read in a deterministic
// path fails the build instead of shipping until a platform flips hash
// order.
//
// Rules (each with the contract it protects; the prose version lives in
// docs/ARCHITECTURE.md "Determinism rules"):
//
//   unordered-iter   No iteration over std::unordered_map/set (range-for,
//                    .begin/.cbegin/.rbegin): iteration order is
//                    hash/platform dependent. Membership tests and
//                    find() are fine.
//   nondeterminism   No rand/srand/random_device/time()/clock()/
//                    system_clock/high_resolution_clock in src/ or
//                    tools/; steady_clock only in the runner's timing
//                    blocks (src/scenario/runner.cpp, serve.cpp). All
//                    randomness flows through the seeded util/rng.hpp.
//   raw-pinarena     Outside src/sim/, no direct PinArena access (and no
//                    resurrecting the pre-PR-3 raw PinConfig class):
//                    protocols mutate pins only through Comm::pins() ->
//                    PinConfigRef, which is what snapshots first-mutation
//                    state and feeds the incremental engine's dirty
//                    tracking.
//   float-field      No floating-point report field may be compared by
//                    equalDeterministic (report.cpp) -- floats belong
//                    only in the excluded timing fields. The manifest of
//                    double/float fields is extracted from report.hpp.
//   ctest-timeout    Every gtest_discover_tests() call carries an
//                    explicit TIMEOUT property and a smoke/full LABELS
//                    property, so a huge-tier hang fails the job loudly.
//
// A violation may be waived with an annotation on the same or the
// immediately preceding line:
//
//   // aspf-lint: allow(<rule>) <non-empty reason>
//
// The reason is mandatory (an empty one is itself reported) and the rule
// name must be one of the five above. The scanner strips comments and
// string literals before matching, so rule tables and doc comments never
// self-flag -- annotations are extracted from the raw line first.
//
// The engine is a library (linked by tests/test_lint.cpp) and the CLI
// (tools/aspf_lint.cpp) is a thin main over lintTree(), mirroring the
// aspf_cli split.
#include <ostream>
#include <string>
#include <vector>

namespace aspf::lint {

struct Finding {
  std::string file;  // path as handed to the scanner (repo-relative)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

/// True iff `name` is one of the rule tags an allow-annotation may name.
bool knownRule(const std::string& name);

/// Formats a finding as "file:line: rule: message" (the grep-able
/// contract asserted by CI and tests).
std::string formatFinding(const Finding& f);

/// Scans one C++ translation unit or header. `path` is repo-relative and
/// selects which rules apply (src/ vs tests/ vs tools/, the sim layer,
/// the timing-allowed files). `headerText` optionally carries the text of
/// the same-stem sibling header so member names declared there (e.g.
/// `std::unordered_map<int, int> localMap_;` in region.hpp) are visible
/// when scanning the .cpp.
std::vector<Finding> scanSource(const std::string& path,
                                const std::string& text,
                                const std::string& headerText = {});

/// Scans a CMake listfile for gtest_discover_tests() calls missing an
/// explicit TIMEOUT or a smoke/full LABELS property.
std::vector<Finding> scanCMake(const std::string& path,
                               const std::string& text);

/// Cross-checks the floating-point field manifest: every double/float
/// struct member declared in report.hpp that equalDeterministic
/// (report.cpp) compares is a violation unless annotated at the
/// comparison site.
std::vector<Finding> checkFloatManifest(const std::string& hppPath,
                                        const std::string& hppText,
                                        const std::string& cppPath,
                                        const std::string& cppText);

/// Walks `root` (src/, tests/, tools/, bench/, examples/ plus the
/// top-level CMakeLists.txt), runs every rule, prints findings to `out`
/// one per line, and returns the number of findings. Throws
/// std::runtime_error if `root` does not look like the repo (no src/).
int lintTree(const std::string& root, std::ostream& out);

}  // namespace aspf::lint

// aspf-run -- the unified scenario runner.
//
// Loads scenarios from the named registry (src/scenario/registry.*) or from
// a CLI-described sweep, executes any subset of the three SPF algorithms
// over the batch on a thread pool, prints a paper-style table and emits the
// schema-stable JSON report (docs/BENCHMARKS.md). Every workload is named
// in the shared scenario vocabulary, so a row in a report replays exactly
// in the conformance tests and benches.
//
//   aspf-run --list
//   aspf-run --suite smoke --algo all --json out.json
//   aspf-run --scenario comb10x8_k5_l12_s2 --algo polylog
//   aspf-run --shape hexagon --a 16 --k 2,8,32 --l 32 --seeds 1..3
//   aspf-run --check out.json
//
// Exit codes: 0 success; 1 usage / --check validation failure; 2 at least
// one run errored, failed the forest checker, or (timeline / serve modes)
// had a warm solve diverge from the cold from-scratch oracle.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/serve.hpp"
#include "util/table.hpp"

namespace {

using namespace aspf;
using namespace aspf::scenario;

void printUsage(std::ostream& os) {
  os << "aspf-run: scenario runner for the amoebot SPF library\n\n"
        "Selection (combinable; duplicates are kept in order):\n"
        "  --list                 list registered suites and scenarios\n"
        "  --suite NAME           add every scenario of a registry suite\n"
        "  --scenario NAME        add one scenario by its stable name\n"
        "  --shape TAG --a N [--b N] [--k LIST] [--l LIST] [--seeds LIST]\n"
        "                         add a sweep (LIST: comma values and lo..hi\n"
        "                         ranges, e.g. 2,8,32 or 1..4)\n"
        "  --timeline NAME|all    run dynamic timeline(s) instead of static\n"
        "                         scenarios: per epoch, mutate the structure\n"
        "                         and re-solve warm (persistent rebound\n"
        "                         substrate) with a cold from-scratch solve\n"
        "                         as the differential oracle\n"
        "  --epochs N             truncate every timeline to N epochs\n"
        "                         (including epoch 0)\n\n"
        "Serving (one persistent structure, many queries):\n"
        "  --serve N              resolve N seeded S/D queries per selected\n"
        "                         scenario against ONE persistent structure\n"
        "                         with warm substrate Comms; every query is\n"
        "                         verified bit-for-bit against a cold\n"
        "                         from-scratch oracle\n"
        "  --serve-seed N         query-stream seed (default 1, >= 0)\n"
        "  --serve-mix LIST       query kinds drawn per query: dest-swap,\n"
        "                         dest-add, dest-remove, toggle-source or\n"
        "                         all (default all)\n"
        "  --serve-mutate N       additionally mutate the structure every\n"
        "                         Nth query (single-arc attach/detach steps\n"
        "                         + warm rebind; default: never)\n"
        "  --serve-fault Q        corrupt the warm forest of query Q to\n"
        "                         force an oracle divergence (self-test of\n"
        "                         the exit-2 path)\n"
        "  --serve-cache MODE     cross-query solve cache for the warm\n"
        "                         polylog pipeline: on (default) or off.\n"
        "                         Changes no deterministic report field;\n"
        "                         adds cache_* stats to polylog serve runs\n"
        "  --serve-cache-fault Q  plant a stale entry in the solve cache\n"
        "                         before query Q: the next hit must trip\n"
        "                         the cold oracle (exit-2 self-test)\n\n"
        "Execution:\n"
        "  --algo LIST            polylog, wave, naive or all (default all)\n"
        "  --threads N            scenario worker threads (default: "
        "hardware)\n"
        "  --sim-threads N        worker threads INSIDE the circuit\n"
        "                         simulator (sharded deliver(); default 1).\n"
        "                         All deterministic report fields are\n"
        "                         bit-identical at any value\n"
        "  --lanes N              pin lanes for the circuit protocols "
        "(default 4,\n"
        "                         valid range 1..4)\n"
        "  --engine NAME          circuit engine: incremental (default) or\n"
        "                         rebuild (from-scratch differential oracle)\n"
        "  --no-check             skip the five-property forest checker\n"
        "  --no-timing            zero wall-time/RSS fields (byte-stable "
        "output)\n\n"
        "Output:\n"
        "  --json PATH            write the JSON report ('-' for stdout)\n"
        "  --quiet                suppress the table\n\n"
        "Validation:\n"
        "  --check PATH           validate an existing report against the\n"
        "                         schema and exit\n"
        "  --diff PATH PATH       compare the deterministic fields of two\n"
        "                         reports (rounds, counters, verdicts;\n"
        "                         wall-times/RSS/threads ignored) and exit\n"
        "                         0 iff they match\n"
        "  --diff-model PATH PATH same, additionally ignoring the engine\n"
        "                         tag and engine counters -- compares the\n"
        "                         fields both circuit engines must agree "
        "on\n";
}

/// cli::parseInt with the CLI's usage-error contract (exit 1, message with
/// the flag name, no terminate).
int parseIntFlag(const std::string& text, const char* flag) {
  int v = 0;
  std::string error;
  if (!cli::parseInt(text, &v, &error)) {
    std::cerr << "aspf-run: " << flag << ": " << error << "\n";
    std::exit(1);
  }
  return v;
}

/// cli::parseIntList with the same contract (grammar and limits live in
/// tools/cli_args.*, unit-tested in tests/test_cli_args.cpp).
std::vector<int> parseIntListFlag(const std::string& text, const char* flag,
                                  bool nonNegative = false) {
  std::vector<int> out;
  std::string error;
  if (!cli::parseIntList(text, &out, &error, nonNegative)) {
    std::cerr << "aspf-run: " << flag << ": " << error << "\n";
    std::exit(1);
  }
  return out;
}

int doList() {
  for (const Suite& suite : suites()) {
    std::cout << suite.name << " — " << suite.description << " ("
              << suite.scenarios.size() << " scenarios)\n";
    for (const Scenario& sc : suite.scenarios)
      std::cout << "  " << sc.name << "\n";
  }
  std::cout << "dynamic — seeded mutation timelines, one per shape family "
               "(--timeline; "
            << timelines().size() << " timelines)\n";
  for (const Timeline& t : timelines())
    std::cout << "  " << t.name << " (" << t.epochs() << " epochs)\n";
  return 0;
}

/// Reads and parses a JSON document; exits 1 with a message on any
/// open/parse failure (shared by --check and --diff).
Json loadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "aspf-run: cannot open " << path << "\n";
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return Json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "aspf-run: " << path << " failed to parse: " << e.what()
              << "\n";
    std::exit(1);
  }
}

/// Loads and schema-validates a report; exits 1 on any failure.
BenchReport loadReport(const std::string& path) {
  try {
    return reportFromJson(loadJson(path));
  } catch (const std::exception& e) {
    std::cerr << "aspf-run: " << path << ": " << e.what() << "\n";
    std::exit(1);
  }
}

int doDiff(const std::string& pathA, const std::string& pathB,
           bool modelOnly) {
  const BenchReport a = loadReport(pathA);
  const BenchReport b = loadReport(pathB);
  std::string why;
  if (!equalDeterministic(a, b, &why, modelOnly)) {
    std::cerr << "aspf-run: " << (modelOnly ? "model" : "deterministic")
              << " fields differ at " << why << "\n";
    return 1;
  }
  std::cout << pathA << " and " << pathB << ": "
            << (modelOnly ? "model" : "deterministic")
            << " fields identical\n";
  return 0;
}

int doCheck(const std::string& path) {
  const Json doc = loadJson(path);
  std::string error;
  if (!validateReport(doc, &error)) {
    std::cerr << "aspf-run: " << path << " is NOT schema-valid: " << error
              << "\n";
    return 1;
  }
  // Full round-trip: struct -> json must reproduce a valid document too.
  const BenchReport report = reportFromJson(doc);
  if (!validateReport(toJson(report), &error)) {
    std::cerr << "aspf-run: round-trip of " << path
              << " broke validity: " << error << "\n";
    return 1;
  }
  std::cout << path << ": schema-valid (version " << kReportSchemaVersion
            << ")\n";
  return 0;
}

struct Cli {
  std::vector<Scenario> scenarios;
  std::vector<std::string> suiteNames;
  std::vector<Timeline> timelines;
  int maxEpochs = 0;  // 0 => full timelines
  ServeSpec serve;    // used iff haveServe
  bool haveServe = false;
  RunOptions options;
  std::string jsonPath;
  bool quiet = false;
};

/// Writes the JSON report when --json was given ('-' = stdout); returns
/// false on an unwritable path (shared by all three batch modes).
bool emitJson(const BenchReport& report, const std::string& path) {
  if (path.empty()) return true;
  const std::string text = toJson(report).dump(2);
  if (path == "-") {
    std::cout << text;
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "aspf-run: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

void printTimelineTable(const BenchReport& report) {
  Table table({"timeline", "ep", "mutation", "n", "k", "l", "algo", "rounds",
               "w-unions", "c-unions", "wall ms", "ok"});
  for (const TimelineReport& tr : report.timelines) {
    for (const EpochReport& er : tr.epochs) {
      for (const EpochRun& run : er.runs) {
        const bool ok =
            run.error.empty() && run.checkerOk && run.warmMatchesCold;
        table.add(tr.name, er.epoch, er.mutation, er.n, er.kEff, er.lEff,
                  run.algo, run.rounds, run.warmUnions, run.coldUnions,
                  run.wallMs, ok ? "yes" : "NO");
      }
    }
  }
  table.print(std::cout);
  std::cout << report.timelines.size() << " timeline(s), "
            << report.algos.size() << " algorithm(s), " << report.threads
            << " thread(s), " << report.simThreads << " sim-thread(s)";
  if (report.timing)
    std::cout << ", " << report.totalWallMs << " ms total, peak RSS "
              << report.peakRssKb << " kB";
  std::cout << "\n";
}

void printServeTable(const BenchReport& report) {
  Table table({"scenario", "n", "n'", "queries", "algo", "rounds",
               "w-unions", "c-unions", "hit%", "q/s", "p50 ms", "p99 ms",
               "ok"});
  for (const ServingReport& sv : report.serving) {
    for (const ServeRun& run : sv.runs) {
      const bool ok = run.error.empty() && run.checkerOk &&
                      run.warmMatchesCold && run.queriesOk == sv.queries;
      const long lookups = run.cacheHits + run.cacheMisses;
      const double hitPct =
          lookups > 0 ? 100.0 * static_cast<double>(run.cacheHits) /
                            static_cast<double>(lookups)
                      : 0.0;
      table.add(sv.scenario.name, sv.n, sv.finalN, sv.queries, run.algo,
                run.rounds, run.warmUnions, run.coldUnions, hitPct,
                run.queriesPerSec, run.latencyMsP50, run.latencyMsP99,
                ok ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << report.serving.size() << " session(s), "
            << report.algos.size() << " algorithm(s), " << report.threads
            << " thread(s), " << report.simThreads << " sim-thread(s)";
  if (report.timing)
    std::cout << ", " << report.totalWallMs << " ms total, peak RSS "
              << report.peakRssKb << " kB";
  std::cout << "\n";
}

void printTable(const BenchReport& report) {
  Table table({"scenario", "n", "k", "l", "algo", "rounds", "delivers",
               "unions", "dirty%", "beeps", "wall ms", "ok"});
  for (const ScenarioReport& sr : report.scenarios) {
    for (const AlgoRun& run : sr.runs) {
      table.add(sr.scenario.name, sr.n, sr.kEff, sr.lEff, run.algo,
                run.rounds, run.delivers, run.unions, 100.0 * run.dirtyFrac,
                run.beeps, run.wallMs,
                run.error.empty() && run.checkerOk ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << report.scenarios.size() << " scenarios, "
            << report.algos.size() << " algorithm(s), " << report.threads
            << " thread(s), " << report.simThreads << " sim-thread(s)";
  if (report.timing)
    std::cout << ", " << report.totalWallMs << " ms total, peak RSS "
              << report.peakRssKb << " kB";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  SweepSpec sweep;
  bool haveSweep = false;
  std::string serveOptFlag;  // first --serve-* ancillary flag seen

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto value = [&](std::size_t& i, const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) {
      std::cerr << "aspf-run: " << flag << " needs a value\n";
      std::exit(1);
    }
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (arg == "--list") {
      return doList();
    } else if (arg == "--check") {
      return doCheck(value(i, arg));
    } else if (arg == "--diff" || arg == "--diff-model") {
      const std::string pathA = value(i, arg);
      const std::string pathB = value(i, arg);
      return doDiff(pathA, pathB, arg == "--diff-model");
    } else if (arg == "--suite") {
      const std::string name = value(i, arg);
      const Suite* suite = findSuite(name);
      if (!suite) {
        std::cerr << "aspf-run: unknown suite '" << name
                  << "' (try --list)\n";
        return 1;
      }
      cli.suiteNames.push_back(name);
      cli.scenarios.insert(cli.scenarios.end(), suite->scenarios.begin(),
                           suite->scenarios.end());
    } else if (arg == "--scenario") {
      const std::string name = value(i, arg);
      const Scenario* sc = findScenario(name);
      if (!sc) {
        std::cerr << "aspf-run: unknown scenario '" << name
                  << "' (try --list)\n";
        return 1;
      }
      cli.scenarios.push_back(*sc);
    } else if (arg == "--timeline") {
      const std::string name = value(i, arg);
      if (name == "all") {
        cli.timelines.assign(timelines().begin(), timelines().end());
      } else {
        const Timeline* t = findTimeline(name);
        if (!t) {
          std::cerr << "aspf-run: unknown timeline '" << name
                    << "' (try --list)\n";
          return 1;
        }
        cli.timelines.push_back(*t);
      }
    } else if (arg == "--epochs") {
      cli.maxEpochs = parseIntFlag(value(i, arg), "--epochs");
      if (cli.maxEpochs < 1) {
        std::cerr << "aspf-run: --epochs must be >= 1, got " << cli.maxEpochs
                  << "\n";
        return 1;
      }
    } else if (arg == "--serve") {
      cli.serve.queries = parseIntFlag(value(i, arg), "--serve");
      if (cli.serve.queries < 1) {
        std::cerr << "aspf-run: --serve must be >= 1, got "
                  << cli.serve.queries << "\n";
        return 1;
      }
      cli.haveServe = true;
    } else if (arg == "--serve-seed") {
      const int seed = parseIntFlag(value(i, arg), "--serve-seed");
      if (seed < 0) {
        std::cerr << "aspf-run: --serve-seed must be >= 0, got " << seed
                  << "\n";
        return 1;
      }
      cli.serve.seed = static_cast<std::uint64_t>(seed);
      serveOptFlag = arg;
    } else if (arg == "--serve-mix") {
      cli.serve.mix.clear();
      std::stringstream ss(value(i, arg));
      std::string tag;
      while (std::getline(ss, tag, ',')) {
        if (tag == "all") {
          cli.serve.mix.assign(kAllQueryKinds.begin(), kAllQueryKinds.end());
          continue;
        }
        QueryKind kind;
        if (!queryKindFromString(tag, &kind)) {
          std::cerr << "aspf-run: unknown query kind '" << tag
                    << "' (dest-swap|dest-add|dest-remove|toggle-source)\n";
          return 1;
        }
        cli.serve.mix.push_back(kind);
      }
      if (cli.serve.mix.empty()) {
        std::cerr << "aspf-run: --serve-mix selected nothing\n";
        return 1;
      }
      serveOptFlag = arg;
    } else if (arg == "--serve-mutate") {
      cli.serve.mutateEvery = parseIntFlag(value(i, arg), "--serve-mutate");
      if (cli.serve.mutateEvery < 1) {
        std::cerr << "aspf-run: --serve-mutate must be >= 1, got "
                  << cli.serve.mutateEvery << "\n";
        return 1;
      }
      serveOptFlag = arg;
    } else if (arg == "--serve-fault") {
      cli.serve.faultQuery = parseIntFlag(value(i, arg), "--serve-fault");
      if (cli.serve.faultQuery < 0) {
        std::cerr << "aspf-run: --serve-fault must be >= 0, got "
                  << cli.serve.faultQuery << "\n";
        return 1;
      }
      serveOptFlag = arg;
    } else if (arg == "--serve-cache") {
      const std::string mode = value(i, arg);
      if (mode == "on") {
        cli.options.serveCache = true;
      } else if (mode == "off") {
        cli.options.serveCache = false;
      } else {
        std::cerr << "aspf-run: --serve-cache must be 'on' or 'off', got '"
                  << mode << "'\n";
        return 1;
      }
      serveOptFlag = arg;
    } else if (arg == "--serve-cache-fault") {
      cli.serve.cacheFaultQuery =
          parseIntFlag(value(i, arg), "--serve-cache-fault");
      if (cli.serve.cacheFaultQuery < 0) {
        std::cerr << "aspf-run: --serve-cache-fault must be >= 0, got "
                  << cli.serve.cacheFaultQuery << "\n";
        return 1;
      }
      serveOptFlag = arg;
    } else if (arg == "--shape") {
      const std::string tag = value(i, arg);
      if (!shapeFromString(tag, &sweep.shape)) {
        std::cerr << "aspf-run: unknown shape '" << tag << "'\n";
        return 1;
      }
      haveSweep = true;
    } else if (arg == "--a") {
      sweep.a = parseIntFlag(value(i, arg), "--a");
    } else if (arg == "--b") {
      sweep.b = parseIntFlag(value(i, arg), "--b");
    } else if (arg == "--k") {
      sweep.ks = parseIntListFlag(value(i, arg), "--k");
    } else if (arg == "--l") {
      sweep.ls = parseIntListFlag(value(i, arg), "--l");
    } else if (arg == "--seeds") {
      // Seeds become uint64 registry seeds; negative values are rejected
      // here instead of wrapping around.
      const std::vector<int> seeds =
          parseIntListFlag(value(i, arg), "--seeds", /*nonNegative=*/true);
      sweep.seeds.clear();
      for (const int s : seeds)
        sweep.seeds.push_back(static_cast<std::uint64_t>(s));
    } else if (arg == "--algo") {
      cli.options.algos.clear();
      std::stringstream ss(value(i, arg));
      std::string tag;
      while (std::getline(ss, tag, ',')) {
        if (tag == "all") {
          cli.options.algos.assign(kAllAlgos.begin(), kAllAlgos.end());
          continue;
        }
        Algo algo;
        if (!algoFromString(tag, &algo)) {
          std::cerr << "aspf-run: unknown algorithm '" << tag << "'\n";
          return 1;
        }
        cli.options.algos.push_back(algo);
      }
      if (cli.options.algos.empty()) {
        std::cerr << "aspf-run: --algo selected nothing\n";
        return 1;
      }
    } else if (arg == "--engine") {
      const std::string name = value(i, arg);
      if (name == "incremental") {
        cli.options.engine = CircuitEngine::Incremental;
      } else if (name == "rebuild") {
        cli.options.engine = CircuitEngine::Rebuild;
      } else {
        std::cerr << "aspf-run: unknown engine '" << name
                  << "' (incremental|rebuild)\n";
        return 1;
      }
    } else if (arg == "--threads") {
      cli.options.threads = parseIntFlag(value(i, arg), "--threads");
    } else if (arg == "--sim-threads") {
      cli.options.simThreads = parseIntFlag(value(i, arg), "--sim-threads");
      if (cli.options.simThreads < 1 ||
          cli.options.simThreads > kMaxSimThreads) {
        std::cerr << "aspf-run: --sim-threads must be in [1, "
                  << kMaxSimThreads << "], got " << cli.options.simThreads
                  << "\n";
        return 1;
      }
    } else if (arg == "--lanes") {
      cli.options.lanes = parseIntFlag(value(i, arg), "--lanes");
      if (cli.options.lanes < 1 || cli.options.lanes > kMaxLanes) {
        std::cerr << "aspf-run: --lanes must be in [1, " << kMaxLanes
                  << "], got " << cli.options.lanes
                  << " (the pin arena's block stride fits at most "
                  << kMaxLanes << " lanes)\n";
        return 1;
      }
    } else if (arg == "--no-check") {
      cli.options.check = false;
    } else if (arg == "--no-timing") {
      cli.options.timing = false;
    } else if (arg == "--json") {
      cli.jsonPath = value(i, arg);
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      std::cerr << "aspf-run: unknown argument '" << arg << "'\n\n";
      printUsage(std::cerr);
      return 1;
    }
  }

  if (haveSweep) {
    if (sweep.a <= 0) {
      std::cerr << "aspf-run: --shape needs --a\n";
      return 1;
    }
    const std::vector<Scenario> swept = buildSweep(sweep);
    cli.scenarios.insert(cli.scenarios.end(), swept.begin(), swept.end());
  }

  if (cli.maxEpochs > 0 && cli.timelines.empty()) {
    std::cerr << "aspf-run: --epochs only applies to --timeline runs\n";
    return 1;
  }
  if (!cli.haveServe && !serveOptFlag.empty()) {
    std::cerr << "aspf-run: " << serveOptFlag << " requires --serve\n";
    return 1;
  }
  if (cli.haveServe && !cli.timelines.empty()) {
    std::cerr << "aspf-run: --serve cannot be combined with --timeline "
                 "(run two invocations)\n";
    return 1;
  }
  if (!cli.timelines.empty()) {
    if (!cli.scenarios.empty()) {
      std::cerr << "aspf-run: --timeline cannot be combined with scenario "
                   "selection (run two invocations)\n";
      return 1;
    }
    const std::string suiteName =
        cli.timelines.size() == timelines().size() ? "dynamic" : "custom";
    const BenchReport report = runTimelineBatch(
        suiteName, cli.timelines, cli.options, cli.maxEpochs);
    if (!cli.quiet) printTimelineTable(report);
    if (!emitJson(report, cli.jsonPath)) return 1;
    for (const TimelineReport& tr : report.timelines) {
      for (const EpochReport& er : tr.epochs) {
        for (const EpochRun& run : er.runs) {
          if (!run.error.empty() || !run.checkerOk || !run.warmMatchesCold) {
            std::cerr << "aspf-run: FAILED " << tr.name << " epoch "
                      << er.epoch << " [" << run.algo << "]: "
                      << (!run.error.empty()
                              ? run.error
                              : (!run.checkerOk
                                     ? std::string("checker failed")
                                     : std::string(
                                           "warm solve diverged from the "
                                           "cold oracle")))
                      << "\n";
            return 2;
          }
        }
      }
    }
    return 0;
  }

  if (cli.scenarios.empty()) {
    std::cerr << "aspf-run: no scenarios selected (use --suite, --scenario, "
                 "--shape or --timeline; --list shows the registry)\n";
    return 1;
  }

  std::string suiteName;
  if (cli.suiteNames.size() == 1 && !haveSweep &&
      cli.scenarios.size() == findSuite(cli.suiteNames[0])->scenarios.size()) {
    suiteName = cli.suiteNames[0];
  } else {
    suiteName = "custom";
  }

  if (cli.haveServe) {
    const BenchReport report =
        runServeBatch(suiteName, cli.scenarios, cli.serve, cli.options);
    if (!cli.quiet) printServeTable(report);
    if (!emitJson(report, cli.jsonPath)) return 1;
    for (const ServingReport& sv : report.serving) {
      for (const ServeRun& run : sv.runs) {
        if (!run.error.empty() || !run.checkerOk || !run.warmMatchesCold ||
            run.queriesOk != sv.queries) {
          std::cerr << "aspf-run: FAILED " << sv.scenario.name << " ["
                    << run.algo << "]: "
                    << (!run.error.empty()
                            ? run.error
                            : (!run.warmMatchesCold
                                   ? std::string("warm solve diverged from "
                                                 "the cold oracle")
                                   : std::string("checker failed")))
                    << " (" << run.queriesOk << "/" << sv.queries
                    << " queries ok)\n";
          return 2;
        }
      }
    }
    return 0;
  }

  const BenchReport report =
      runBatch(suiteName, cli.scenarios, cli.options);

  if (!cli.quiet) printTable(report);

  if (!emitJson(report, cli.jsonPath)) return 1;

  for (const ScenarioReport& sr : report.scenarios) {
    for (const AlgoRun& run : sr.runs) {
      if (!run.error.empty() || !run.checkerOk) {
        std::cerr << "aspf-run: FAILED " << sr.scenario.name << " ["
                  << run.algo << "]: "
                  << (run.error.empty() ? "checker failed" : run.error)
                  << "\n";
        return 2;
      }
    }
  }
  return 0;
}

// aspf-run -- the unified scenario runner.
//
// Loads scenarios from the named registry (src/scenario/registry.*) or from
// a CLI-described sweep, executes any subset of the three SPF algorithms
// over the batch on a thread pool, prints a paper-style table and emits the
// schema-stable JSON report (docs/BENCHMARKS.md). Every workload is named
// in the shared scenario vocabulary, so a row in a report replays exactly
// in the conformance tests and benches.
//
//   aspf-run --list
//   aspf-run --suite smoke --algo all --json out.json
//   aspf-run --scenario comb10x8_k5_l12_s2 --algo polylog
//   aspf-run --shape hexagon --a 16 --k 2,8,32 --l 32 --seeds 1..3
//   aspf-run --check out.json
//
// Exit codes: 0 success; 1 usage / --check validation failure; 2 at least
// one run errored or failed the forest checker.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "util/table.hpp"

namespace {

using namespace aspf;
using namespace aspf::scenario;

void printUsage(std::ostream& os) {
  os << "aspf-run: scenario runner for the amoebot SPF library\n\n"
        "Selection (combinable; duplicates are kept in order):\n"
        "  --list                 list registered suites and scenarios\n"
        "  --suite NAME           add every scenario of a registry suite\n"
        "  --scenario NAME        add one scenario by its stable name\n"
        "  --shape TAG --a N [--b N] [--k LIST] [--l LIST] [--seeds LIST]\n"
        "                         add a sweep (LIST: comma values and lo..hi\n"
        "                         ranges, e.g. 2,8,32 or 1..4)\n"
        "  --timeline NAME|all    run dynamic timeline(s) instead of static\n"
        "                         scenarios: per epoch, mutate the structure\n"
        "                         and re-solve warm (persistent rebound\n"
        "                         substrate) with a cold from-scratch solve\n"
        "                         as the differential oracle\n"
        "  --epochs N             truncate every timeline to N epochs\n"
        "                         (including epoch 0)\n\n"
        "Execution:\n"
        "  --algo LIST            polylog, wave, naive or all (default all)\n"
        "  --threads N            scenario worker threads (default: "
        "hardware)\n"
        "  --sim-threads N        worker threads INSIDE the circuit\n"
        "                         simulator (sharded deliver(); default 1).\n"
        "                         All deterministic report fields are\n"
        "                         bit-identical at any value\n"
        "  --lanes N              pin lanes for the circuit protocols "
        "(default 4,\n"
        "                         valid range 1..4)\n"
        "  --engine NAME          circuit engine: incremental (default) or\n"
        "                         rebuild (from-scratch differential oracle)\n"
        "  --no-check             skip the five-property forest checker\n"
        "  --no-timing            zero wall-time/RSS fields (byte-stable "
        "output)\n\n"
        "Output:\n"
        "  --json PATH            write the JSON report ('-' for stdout)\n"
        "  --quiet                suppress the table\n\n"
        "Validation:\n"
        "  --check PATH           validate an existing report against the\n"
        "                         schema and exit\n"
        "  --diff PATH PATH       compare the deterministic fields of two\n"
        "                         reports (rounds, counters, verdicts;\n"
        "                         wall-times/RSS/threads ignored) and exit\n"
        "                         0 iff they match\n"
        "  --diff-model PATH PATH same, additionally ignoring the engine\n"
        "                         tag and engine counters -- compares the\n"
        "                         fields both circuit engines must agree "
        "on\n";
}

/// std::stoi with the CLI's usage-error contract (exit 1, no terminate).
int parseIntFlag(const std::string& text, const char* flag) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    std::cerr << "aspf-run: " << flag << " needs an integer, got '" << text
              << "'\n";
    std::exit(1);
  }
}

bool parseIntList(const std::string& text, std::vector<int>* out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t dots = item.find("..");
    try {
      if (dots != std::string::npos) {
        const int lo = std::stoi(item.substr(0, dots));
        const int hi = std::stoi(item.substr(dots + 2));
        if (hi < lo) return false;
        for (int v = lo; v <= hi; ++v) out->push_back(v);
      } else {
        out->push_back(std::stoi(item));
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

int doList() {
  for (const Suite& suite : suites()) {
    std::cout << suite.name << " — " << suite.description << " ("
              << suite.scenarios.size() << " scenarios)\n";
    for (const Scenario& sc : suite.scenarios)
      std::cout << "  " << sc.name << "\n";
  }
  std::cout << "dynamic — seeded mutation timelines, one per shape family "
               "(--timeline; "
            << timelines().size() << " timelines)\n";
  for (const Timeline& t : timelines())
    std::cout << "  " << t.name << " (" << t.epochs() << " epochs)\n";
  return 0;
}

/// Reads and parses a JSON document; exits 1 with a message on any
/// open/parse failure (shared by --check and --diff).
Json loadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "aspf-run: cannot open " << path << "\n";
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return Json::parse(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "aspf-run: " << path << " failed to parse: " << e.what()
              << "\n";
    std::exit(1);
  }
}

/// Loads and schema-validates a report; exits 1 on any failure.
BenchReport loadReport(const std::string& path) {
  try {
    return reportFromJson(loadJson(path));
  } catch (const std::exception& e) {
    std::cerr << "aspf-run: " << path << ": " << e.what() << "\n";
    std::exit(1);
  }
}

int doDiff(const std::string& pathA, const std::string& pathB,
           bool modelOnly) {
  const BenchReport a = loadReport(pathA);
  const BenchReport b = loadReport(pathB);
  std::string why;
  if (!equalDeterministic(a, b, &why, modelOnly)) {
    std::cerr << "aspf-run: " << (modelOnly ? "model" : "deterministic")
              << " fields differ at " << why << "\n";
    return 1;
  }
  std::cout << pathA << " and " << pathB << ": "
            << (modelOnly ? "model" : "deterministic")
            << " fields identical\n";
  return 0;
}

int doCheck(const std::string& path) {
  const Json doc = loadJson(path);
  std::string error;
  if (!validateReport(doc, &error)) {
    std::cerr << "aspf-run: " << path << " is NOT schema-valid: " << error
              << "\n";
    return 1;
  }
  // Full round-trip: struct -> json must reproduce a valid document too.
  const BenchReport report = reportFromJson(doc);
  if (!validateReport(toJson(report), &error)) {
    std::cerr << "aspf-run: round-trip of " << path
              << " broke validity: " << error << "\n";
    return 1;
  }
  std::cout << path << ": schema-valid (version " << kReportSchemaVersion
            << ")\n";
  return 0;
}

struct Cli {
  std::vector<Scenario> scenarios;
  std::vector<std::string> suiteNames;
  std::vector<Timeline> timelines;
  int maxEpochs = 0;  // 0 => full timelines
  RunOptions options;
  std::string jsonPath;
  bool quiet = false;
};

void printTimelineTable(const BenchReport& report) {
  Table table({"timeline", "ep", "mutation", "n", "k", "l", "algo", "rounds",
               "w-unions", "c-unions", "wall ms", "ok"});
  for (const TimelineReport& tr : report.timelines) {
    for (const EpochReport& er : tr.epochs) {
      for (const EpochRun& run : er.runs) {
        const bool ok =
            run.error.empty() && run.checkerOk && run.warmMatchesCold;
        table.add(tr.name, er.epoch, er.mutation, er.n, er.kEff, er.lEff,
                  run.algo, run.rounds, run.warmUnions, run.coldUnions,
                  run.wallMs, ok ? "yes" : "NO");
      }
    }
  }
  table.print(std::cout);
  std::cout << report.timelines.size() << " timeline(s), "
            << report.algos.size() << " algorithm(s), " << report.threads
            << " thread(s), " << report.simThreads << " sim-thread(s)";
  if (report.timing)
    std::cout << ", " << report.totalWallMs << " ms total, peak RSS "
              << report.peakRssKb << " kB";
  std::cout << "\n";
}

void printTable(const BenchReport& report) {
  Table table({"scenario", "n", "k", "l", "algo", "rounds", "delivers",
               "unions", "dirty%", "beeps", "wall ms", "ok"});
  for (const ScenarioReport& sr : report.scenarios) {
    for (const AlgoRun& run : sr.runs) {
      table.add(sr.scenario.name, sr.n, sr.kEff, sr.lEff, run.algo,
                run.rounds, run.delivers, run.unions, 100.0 * run.dirtyFrac,
                run.beeps, run.wallMs,
                run.error.empty() && run.checkerOk ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << report.scenarios.size() << " scenarios, "
            << report.algos.size() << " algorithm(s), " << report.threads
            << " thread(s), " << report.simThreads << " sim-thread(s)";
  if (report.timing)
    std::cout << ", " << report.totalWallMs << " ms total, peak RSS "
              << report.peakRssKb << " kB";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  SweepSpec sweep;
  bool haveSweep = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  auto value = [&](std::size_t& i, const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) {
      std::cerr << "aspf-run: " << flag << " needs a value\n";
      std::exit(1);
    }
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (arg == "--list") {
      return doList();
    } else if (arg == "--check") {
      return doCheck(value(i, arg));
    } else if (arg == "--diff" || arg == "--diff-model") {
      const std::string pathA = value(i, arg);
      const std::string pathB = value(i, arg);
      return doDiff(pathA, pathB, arg == "--diff-model");
    } else if (arg == "--suite") {
      const std::string name = value(i, arg);
      const Suite* suite = findSuite(name);
      if (!suite) {
        std::cerr << "aspf-run: unknown suite '" << name
                  << "' (try --list)\n";
        return 1;
      }
      cli.suiteNames.push_back(name);
      cli.scenarios.insert(cli.scenarios.end(), suite->scenarios.begin(),
                           suite->scenarios.end());
    } else if (arg == "--scenario") {
      const std::string name = value(i, arg);
      const Scenario* sc = findScenario(name);
      if (!sc) {
        std::cerr << "aspf-run: unknown scenario '" << name
                  << "' (try --list)\n";
        return 1;
      }
      cli.scenarios.push_back(*sc);
    } else if (arg == "--timeline") {
      const std::string name = value(i, arg);
      if (name == "all") {
        cli.timelines.assign(timelines().begin(), timelines().end());
      } else {
        const Timeline* t = findTimeline(name);
        if (!t) {
          std::cerr << "aspf-run: unknown timeline '" << name
                    << "' (try --list)\n";
          return 1;
        }
        cli.timelines.push_back(*t);
      }
    } else if (arg == "--epochs") {
      cli.maxEpochs = parseIntFlag(value(i, arg), "--epochs");
      if (cli.maxEpochs < 1) {
        std::cerr << "aspf-run: --epochs must be >= 1, got " << cli.maxEpochs
                  << "\n";
        return 1;
      }
    } else if (arg == "--shape") {
      const std::string tag = value(i, arg);
      if (!shapeFromString(tag, &sweep.shape)) {
        std::cerr << "aspf-run: unknown shape '" << tag << "'\n";
        return 1;
      }
      haveSweep = true;
    } else if (arg == "--a") {
      sweep.a = parseIntFlag(value(i, arg), "--a");
    } else if (arg == "--b") {
      sweep.b = parseIntFlag(value(i, arg), "--b");
    } else if (arg == "--k") {
      sweep.ks.clear();
      if (!parseIntList(value(i, arg), &sweep.ks)) {
        std::cerr << "aspf-run: bad --k list\n";
        return 1;
      }
    } else if (arg == "--l") {
      sweep.ls.clear();
      if (!parseIntList(value(i, arg), &sweep.ls)) {
        std::cerr << "aspf-run: bad --l list\n";
        return 1;
      }
    } else if (arg == "--seeds") {
      std::vector<int> seeds;
      if (!parseIntList(value(i, arg), &seeds)) {
        std::cerr << "aspf-run: bad --seeds list\n";
        return 1;
      }
      sweep.seeds.clear();
      for (const int s : seeds)
        sweep.seeds.push_back(static_cast<std::uint64_t>(s));
    } else if (arg == "--algo") {
      cli.options.algos.clear();
      std::stringstream ss(value(i, arg));
      std::string tag;
      while (std::getline(ss, tag, ',')) {
        if (tag == "all") {
          cli.options.algos.assign(kAllAlgos.begin(), kAllAlgos.end());
          continue;
        }
        Algo algo;
        if (!algoFromString(tag, &algo)) {
          std::cerr << "aspf-run: unknown algorithm '" << tag << "'\n";
          return 1;
        }
        cli.options.algos.push_back(algo);
      }
      if (cli.options.algos.empty()) {
        std::cerr << "aspf-run: --algo selected nothing\n";
        return 1;
      }
    } else if (arg == "--engine") {
      const std::string name = value(i, arg);
      if (name == "incremental") {
        cli.options.engine = CircuitEngine::Incremental;
      } else if (name == "rebuild") {
        cli.options.engine = CircuitEngine::Rebuild;
      } else {
        std::cerr << "aspf-run: unknown engine '" << name
                  << "' (incremental|rebuild)\n";
        return 1;
      }
    } else if (arg == "--threads") {
      cli.options.threads = parseIntFlag(value(i, arg), "--threads");
    } else if (arg == "--sim-threads") {
      cli.options.simThreads = parseIntFlag(value(i, arg), "--sim-threads");
      if (cli.options.simThreads < 1 ||
          cli.options.simThreads > kMaxSimThreads) {
        std::cerr << "aspf-run: --sim-threads must be in [1, "
                  << kMaxSimThreads << "], got " << cli.options.simThreads
                  << "\n";
        return 1;
      }
    } else if (arg == "--lanes") {
      cli.options.lanes = parseIntFlag(value(i, arg), "--lanes");
      if (cli.options.lanes < 1 || cli.options.lanes > kMaxLanes) {
        std::cerr << "aspf-run: --lanes must be in [1, " << kMaxLanes
                  << "], got " << cli.options.lanes
                  << " (the pin arena's block stride fits at most "
                  << kMaxLanes << " lanes)\n";
        return 1;
      }
    } else if (arg == "--no-check") {
      cli.options.check = false;
    } else if (arg == "--no-timing") {
      cli.options.timing = false;
    } else if (arg == "--json") {
      cli.jsonPath = value(i, arg);
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      std::cerr << "aspf-run: unknown argument '" << arg << "'\n\n";
      printUsage(std::cerr);
      return 1;
    }
  }

  if (haveSweep) {
    if (sweep.a <= 0) {
      std::cerr << "aspf-run: --shape needs --a\n";
      return 1;
    }
    const std::vector<Scenario> swept = buildSweep(sweep);
    cli.scenarios.insert(cli.scenarios.end(), swept.begin(), swept.end());
  }

  if (cli.maxEpochs > 0 && cli.timelines.empty()) {
    std::cerr << "aspf-run: --epochs only applies to --timeline runs\n";
    return 1;
  }
  if (!cli.timelines.empty()) {
    if (!cli.scenarios.empty()) {
      std::cerr << "aspf-run: --timeline cannot be combined with scenario "
                   "selection (run two invocations)\n";
      return 1;
    }
    const std::string suiteName =
        cli.timelines.size() == timelines().size() ? "dynamic" : "custom";
    const BenchReport report = runTimelineBatch(
        suiteName, cli.timelines, cli.options, cli.maxEpochs);
    if (!cli.quiet) printTimelineTable(report);
    if (!cli.jsonPath.empty()) {
      const std::string text = toJson(report).dump(2);
      if (cli.jsonPath == "-") {
        std::cout << text;
      } else {
        std::ofstream out(cli.jsonPath);
        if (!out) {
          std::cerr << "aspf-run: cannot write " << cli.jsonPath << "\n";
          return 1;
        }
        out << text;
      }
    }
    for (const TimelineReport& tr : report.timelines) {
      for (const EpochReport& er : tr.epochs) {
        for (const EpochRun& run : er.runs) {
          if (!run.error.empty() || !run.checkerOk || !run.warmMatchesCold) {
            std::cerr << "aspf-run: FAILED " << tr.name << " epoch "
                      << er.epoch << " [" << run.algo << "]: "
                      << (!run.error.empty()
                              ? run.error
                              : (!run.checkerOk
                                     ? std::string("checker failed")
                                     : std::string(
                                           "warm solve diverged from the "
                                           "cold oracle")))
                      << "\n";
            return 2;
          }
        }
      }
    }
    return 0;
  }

  if (cli.scenarios.empty()) {
    std::cerr << "aspf-run: no scenarios selected (use --suite, --scenario, "
                 "--shape or --timeline; --list shows the registry)\n";
    return 1;
  }

  std::string suiteName;
  if (cli.suiteNames.size() == 1 && !haveSweep &&
      cli.scenarios.size() == findSuite(cli.suiteNames[0])->scenarios.size()) {
    suiteName = cli.suiteNames[0];
  } else {
    suiteName = "custom";
  }

  const BenchReport report =
      runBatch(suiteName, cli.scenarios, cli.options);

  if (!cli.quiet) printTable(report);

  if (!cli.jsonPath.empty()) {
    const std::string text = toJson(report).dump(2);
    if (cli.jsonPath == "-") {
      std::cout << text;
    } else {
      std::ofstream out(cli.jsonPath);
      if (!out) {
        std::cerr << "aspf-run: cannot write " << cli.jsonPath << "\n";
        return 1;
      }
      out << text;
    }
  }

  for (const ScenarioReport& sr : report.scenarios) {
    for (const AlgoRun& run : sr.runs) {
      if (!run.error.empty() || !run.checkerOk) {
        std::cerr << "aspf-run: FAILED " << sr.scenario.name << " ["
                  << run.algo << "]: "
                  << (run.error.empty() ? "checker failed" : run.error)
                  << "\n";
        return 2;
      }
    }
  }
  return 0;
}

#include "cli_args.hpp"

#include <sstream>
#include <stdexcept>

namespace aspf::cli {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

/// std::stoi with the full-match contract: the whole token must parse.
bool parseIntToken(const std::string& text, int* out, std::string* error) {
  if (text.empty()) return fail(error, "empty integer");
  try {
    std::size_t used = 0;
    const int v = std::stoi(text, &used);
    if (used != text.size())
      return fail(error, "trailing junk in '" + text + "'");
    *out = v;
    return true;
  } catch (const std::out_of_range&) {
    return fail(error, "'" + text + "' is out of the int range");
  } catch (const std::exception&) {
    return fail(error, "'" + text + "' is not an integer");
  }
}

}  // namespace

bool parseInt(const std::string& text, int* out, std::string* error) {
  return parseIntToken(text, out, error);
}

bool parseIntList(const std::string& text, std::vector<int>* out,
                  std::string* error, bool nonNegative) {
  std::stringstream ss(text);
  std::string item;
  bool any = false;
  while (std::getline(ss, item, ',')) {
    const std::size_t dots = item.find("..");
    int lo = 0, hi = 0;
    if (dots != std::string::npos) {
      if (!parseIntToken(item.substr(0, dots), &lo, error)) return false;
      if (!parseIntToken(item.substr(dots + 2), &hi, error)) return false;
      if (hi < lo)
        return fail(error, "range '" + item + "' is reversed (hi < lo)");
      const long span = static_cast<long>(hi) - static_cast<long>(lo) + 1;
      if (span > kMaxRangeSpan)
        return fail(error, "range '" + item + "' expands to " +
                               std::to_string(span) + " values (cap " +
                               std::to_string(kMaxRangeSpan) + ")");
    } else {
      if (!parseIntToken(item, &lo, error)) return false;
      hi = lo;
    }
    if (nonNegative && lo < 0)
      return fail(error, "'" + item + "' is negative (must be >= 0)");
    for (int v = lo; v <= hi; ++v) out->push_back(v);
    any = true;
  }
  if (!any) return fail(error, "empty list");
  return true;
}

}  // namespace aspf::cli

#pragma once
// amoebot-spf -- public facade.
//
// Reproduction of "Polylogarithmic Time Algorithms for Shortest Path
// Forests in Programmable Matter" (Padalkin & Scheideler, PODC 2024).
//
// Quick start:
//
//   using namespace aspf;
//   const auto structure = shapes::hexagon(20);
//   Spf spf(structure);
//   const SpfSolution sol = spf.solve({structure.idOf({0, 0})},   // sources
//                                     {structure.idOf({20, 0})}); // dests
//   // sol.parent[u]: next hop toward the closest source; sol.rounds: the
//   // number of synchronous rounds the circuit protocol needed.
//
// Round-complexity contract (paper, Sections 4/5): solve() dispatches to
// the O(log l) shortest path tree algorithm (Theorem 39) for one source
// and to the O(log n log^2 k) divide & conquer forest algorithm
// (Theorem 56 / Corollary 57) for several; sssp() is O(log n) and spsp()
// O(1), the classical special cases. `SpfSolution::rounds` is the measured
// synchronous-round count of the circuit protocol, and the conformance
// suite pins it under a calibrated C log n log^2 k. All algorithms require
// a connected, hole-free structure (checked on construction).
//
// Thread-safety: Spf is immutable after construction and holds only a
// pointer to the caller's structure; concurrent solve()/sssp()/spsp()
// calls on the same Spf are safe (each call builds its own simulation
// state), as long as the structure outlives the Spf and is not mutated.
#include <span>
#include <vector>

#include "baselines/checker.hpp"
#include "shapes/generators.hpp"
#include "sim/structure.hpp"
#include "spf/forest.hpp"

namespace aspf {

struct SpfSolution {
  /// parent[id]: structure id of the next hop toward the closest source;
  /// -1 for sources, -2 for amoebots outside the forest.
  std::vector<int> parent;
  /// Synchronous rounds of the reconfigurable-circuit protocol.
  long rounds = 0;
  /// Per-phase breakdown of `rounds` for solve() with several sources
  /// (all-zero for sssp()/spsp() and the single-source shortcut); the
  /// scenario runner reports these fields per run.
  ForestResult::Phases phases;
};

class Spf {
 public:
  /// Validates connectivity and hole-freeness (throws std::invalid_argument).
  explicit Spf(const AmoebotStructure& structure);

  /// (k,l)-SPF: forest connecting every destination to its closest source.
  SpfSolution solve(std::span<const int> sources,
                    std::span<const int> destinations) const;

  /// Single source shortest paths (D = X): O(log n) rounds.
  SpfSolution sssp(int source) const;

  /// Single pair shortest path: O(1) rounds.
  SpfSolution spsp(int source, int destination) const;

  /// Verifies a solution against exact BFS distances.
  ForestCheck verify(const SpfSolution& solution,
                     std::span<const int> sources,
                     std::span<const int> destinations) const;

  const AmoebotStructure& structure() const noexcept { return *structure_; }

 private:
  const AmoebotStructure* structure_;
};

}  // namespace aspf

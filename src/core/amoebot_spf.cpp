#include "core/amoebot_spf.hpp"

#include <stdexcept>

#include "sim/region.hpp"
#include "spf/forest.hpp"
#include "spf/spt.hpp"

namespace aspf {

Spf::Spf(const AmoebotStructure& structure) : structure_(&structure) {
  if (structure.size() == 0)
    throw std::invalid_argument("Spf: empty structure");
  if (!structure.isConnected())
    throw std::invalid_argument("Spf: structure must be connected");
  if (!structure.isHoleFree())
    throw std::invalid_argument(
        "Spf: structure must be hole-free (Section 1.1)");
}

SpfSolution Spf::solve(std::span<const int> sources,
                       std::span<const int> destinations) const {
  const Region whole = Region::whole(*structure_);
  std::vector<char> isSource(whole.size(), 0), isDest(whole.size(), 0);
  for (const int s : sources) isSource[s] = 1;
  for (const int t : destinations) isDest[t] = 1;
  const ForestResult forest = shortestPathForest(whole, isSource, isDest);
  return {forest.parent, forest.rounds, forest.phases};
}

SpfSolution Spf::sssp(int source) const {
  const Region whole = Region::whole(*structure_);
  const std::vector<char> all(whole.size(), 1);
  const SptResult spt = shortestPathTree(whole, source, all);
  return {spt.parent, spt.rounds, {}};
}

SpfSolution Spf::spsp(int source, int destination) const {
  const Region whole = Region::whole(*structure_);
  std::vector<char> isDest(whole.size(), 0);
  isDest[destination] = 1;
  const SptResult spt = shortestPathTree(whole, source, isDest);
  return {spt.parent, spt.rounds, {}};
}

ForestCheck Spf::verify(const SpfSolution& solution,
                        std::span<const int> sources,
                        std::span<const int> destinations) const {
  const Region whole = Region::whole(*structure_);
  return checkShortestPathForest(whole, solution.parent, sources,
                                 destinations);
}

}  // namespace aspf

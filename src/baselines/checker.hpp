#pragma once
// Verifies the five defining properties of an (S,D)-shortest-path forest
// (Section 1.3) against exact BFS distances:
//  1. parent pointers form trees rooted at sources (T_s per s in S),
//  2. every leaf of every tree is in S or D,
//  3. trees are vertex-disjoint,
//  4. every destination belongs to some tree,
//  5. tree paths are shortest paths to the *closest* source.
#include <span>
#include <string>
#include <vector>

#include "sim/region.hpp"

namespace aspf {

struct ForestCheck {
  bool ok = true;
  std::string error;  // first violated property, human-readable
};

/// parent[u]: region-local parent, -1 for sources (roots), -2 for amoebots
/// outside the forest. Sources with parent != -1 are reported as errors.
ForestCheck checkShortestPathForest(const Region& region,
                                    const std::vector<int>& parent,
                                    std::span<const int> sources,
                                    std::span<const int> destinations);

}  // namespace aspf

#pragma once
// Verifies the five defining properties of an (S,D)-shortest-path forest
// (Section 1.3) against exact BFS distances:
//  1. parent pointers form trees rooted at sources (T_s per s in S),
//  2. every leaf of every tree is in S or D,
//  3. trees are vertex-disjoint,
//  4. every destination belongs to some tree,
//  5. tree paths are shortest paths to the *closest* source.
//
// Complexity contract: host-side verification, O(n) plus one multi-source
// BFS -- charges no rounds. Every test, bench and scenario-runner result
// in the repo passes through this checker; it is the ground truth that
// keeps round counts honest.
//
// Thread-safety: stateless free function over read-only inputs; safe to
// call concurrently (the scenario runner checks results on worker
// threads).
#include <span>
#include <string>
#include <vector>

#include "sim/region.hpp"

namespace aspf {

struct ForestCheck {
  bool ok = true;
  std::string error;  // first violated property, human-readable
};

/// parent[u]: region-local parent, -1 for sources (roots), -2 for amoebots
/// outside the forest. Sources with parent != -1 are reported as errors.
ForestCheck checkShortestPathForest(const Region& region,
                                    const std::vector<int>& parent,
                                    std::span<const int> sources,
                                    std::span<const int> destinations);

}  // namespace aspf

#include "baselines/naive_forest.hpp"

#include <stdexcept>

#include "spf/forest.hpp"
#include "spf/merging.hpp"
#include "spf/spt.hpp"

namespace aspf {

NaiveForestResult naiveSequentialForest(const Region& region,
                                        std::span<const char> isSource,
                                        std::span<const char> isDest,
                                        int lanes) {
  const int n = region.size();
  std::vector<int> sources;
  for (int u = 0; u < n; ++u)
    if (isSource[u]) sources.push_back(u);
  if (sources.empty())
    throw std::invalid_argument("naiveSequentialForest: no sources");
  if (!region.isConnectedInduced())
    throw std::invalid_argument(
        "naiveSequentialForest: region is disconnected");

  NaiveForestResult result;
  const std::vector<char> all(n, 1);

  std::vector<int> forest;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    // SSSP tree for the next source (D = X; pruning happens at the end).
    const SptResult spt = shortestPathTree(region, sources[i], all, lanes);
    result.rounds += spt.rounds;
    if (i == 0) {
      forest = spt.parent;
      continue;
    }
    const MergeResult merged = mergeForests(region, forest, spt.parent, lanes);
    result.rounds += merged.rounds;
    forest = merged.parent;
  }

  const ForestResult pruned =
      pruneForestToDestinations(region, forest, isDest, lanes);
  result.parent = pruned.parent;
  result.rounds += pruned.rounds;
  return result;
}

}  // namespace aspf

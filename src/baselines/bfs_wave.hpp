#pragma once
// Beep-wave BFS: the natural amoebot-model baseline *without* long-range
// circuits. Every covered amoebot beeps to its direct neighbors on
// singleton partition sets; uncovered amoebots adopt a beeping neighbor as
// parent.
//
// Round-complexity contract: produces an exact (S,D)-shortest-path forest
// in eccentricity(S) + O(1) rounds -- the Omega(diameter) information-flow
// lower bound that holds for any algorithm without long-range circuits,
// and that the paper's circuit-based algorithms beat exponentially. The
// conformance suite asserts rounds >= eccentricity(S) (the baseline must
// stay honest).
//
// Thread-safety: stateless free function; each call builds its own Comm.
// Concurrent calls (even on the same Region) are safe.
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct BfsWaveResult {
  std::vector<int> parent;  // -1 sources, -2 untouched
  long rounds = 0;
};

BfsWaveResult bfsWaveForest(const Region& region,
                            std::span<const int> sources,
                            std::span<const int> destinations);

}  // namespace aspf

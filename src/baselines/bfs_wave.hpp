#pragma once
// Beep-wave BFS: the natural amoebot-model baseline *without* long-range
// circuits. Every covered amoebot beeps to its direct neighbors on
// singleton partition sets; uncovered amoebots adopt a beeping neighbor as
// parent.
//
// Round-complexity contract: produces an exact (S,D)-shortest-path forest
// in eccentricity(S) + O(1) rounds -- the Omega(diameter) information-flow
// lower bound that holds for any algorithm without long-range circuits,
// and that the paper's circuit-based algorithms beat exponentially. The
// conformance suite asserts rounds >= eccentricity(S) (the baseline must
// stay honest).
//
// Thread-safety: stateless free function; each call builds its own Comm
// unless a warm substrate is passed in. Concurrent calls (even on the same
// Region) are safe; a substrate Comm follows the usual one-caller rule.
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct BfsWaveResult {
  std::vector<int> parent;  // -1 sources, -2 untouched
  long rounds = 0;
};

/// `substrate` (optional) is a persistent whole-region Comm to run on --
/// the dynamic-timeline warm path: after a Comm::rebind onto a mutated
/// structure, the carried-over union-find means the wave's first round
/// repairs only the structurally affected circuits instead of rebuilding
/// all of them. Must be bound to `region`; any lane count works (the wave
/// uses lane 0 of singleton sets). Results and round counts are
/// bit-identical with and without a substrate.
BfsWaveResult bfsWaveForest(const Region& region,
                            std::span<const int> sources,
                            std::span<const int> destinations,
                            Comm* substrate = nullptr);

}  // namespace aspf

#include "baselines/bfs_wave.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <stdexcept>

namespace aspf {

BfsWaveResult bfsWaveForest(const Region& region,
                            std::span<const int> sources,
                            std::span<const int> destinations,
                            Comm* substrate) {
  const int n = region.size();
  BfsWaveResult result;
  result.parent.assign(n, -2);

  // Singleton pins only: neighbor-to-neighbor beeps. A warm substrate
  // replaces the throwaway Comm; resetPins() normalizes any leftover
  // configuration (free when pins are already singletons, i.e. always on
  // the cold path) and the rounds baseline makes the accounting relative
  // to this execution.
  if (substrate && &substrate->region() != &region)
    throw std::invalid_argument(
        "bfsWaveForest: substrate is bound to a different region");
  std::optional<Comm> local;
  if (!substrate) local.emplace(region, 1);
  Comm& comm = substrate ? *substrate : *local;
  comm.resetPins();
  const long roundsBase = comm.rounds();
  std::vector<char> covered(n, 0);
  std::vector<int> frontier;
  for (const int s : sources) {
    if (!covered[s]) {
      covered[s] = 1;
      result.parent[s] = -1;
      frontier.push_back(s);
    }
  }

  // Host-side the wave only ever inspects the frontier and its uncovered
  // neighbors (the only amoebots that can hear a beep under singleton
  // pins), so a round costs O(frontier) instead of O(n); results are
  // identical to the full per-round scan. The per-candidate receive scan
  // is one batched query, which a sharded Comm resolves concurrently.
  std::vector<int> candidates;
  std::vector<char> isCandidate(n, 0);
  std::vector<PinQuery> queries;
  std::vector<char> heard;
  while (!frontier.empty()) {
    candidates.clear();
    for (const int u : frontier) {
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(u, d);
        if (v < 0) continue;
        comm.beepPin(u, {d, 0});
        if (!covered[v] && !isCandidate[v]) {
          isCandidate[v] = 1;
          candidates.push_back(v);
        }
      }
    }
    comm.deliver();
    std::sort(candidates.begin(), candidates.end());
    queries.clear();
    for (const int u : candidates) {
      for (Dir d : kAllDirs) {
        if (region.neighbor(u, d) >= 0) queries.push_back({u, {d, 0}});
      }
    }
    comm.receivedBatch(queries, &heard);
    std::vector<int> next;
    std::size_t qi = 0;
    for (const int u : candidates) {
      isCandidate[u] = 0;
      // The candidate adopts the first hearing direction in kAllDirs
      // order, exactly as the former point-query loop did.
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(u, d);
        if (v < 0) continue;
        const bool bit = heard[qi++] != 0;
        if (bit && !covered[u]) {
          covered[u] = 1;
          result.parent[u] = v;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }

  // Prune to destination-covering branches (one reverse sweep; in the
  // distributed protocol this is a convergecast costing another
  // eccentricity(S) rounds, charged below).
  std::vector<char> keep(n, 0);
  for (const int t : destinations) {
    int u = t;
    while (u >= 0 && !keep[u]) {
      keep[u] = 1;
      u = result.parent[u] >= 0 ? result.parent[u] : -1;
    }
  }
  long pruneRounds = 0;
  for (int u = 0; u < n; ++u) {
    if (!keep[u] && result.parent[u] >= 0) result.parent[u] = -2;
  }
  pruneRounds = comm.rounds() - roundsBase;  // convergecast mirrors the wave
  comm.chargeRounds(pruneRounds);
  result.rounds = comm.rounds() - roundsBase;
  return result;
}

}  // namespace aspf

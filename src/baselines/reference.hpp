#pragma once
// Centralized references used for verification and as comparators:
// exact multi-source BFS distances and closest-source assignment (the
// distances the SPF definition of Section 1.3 quantifies over).
//
// Complexity contract: host-side O(n) BFS, charges no rounds; this is the
// oracle side of the harness, never part of a measured protocol.
//
// Thread-safety: stateless free functions over read-only regions; safe to
// call concurrently.
#include <span>
#include <vector>

#include "sim/region.hpp"

namespace aspf {

struct ReferenceDistances {
  /// dist[u] = min over sources of the hop distance in the region.
  std::vector<int> dist;
  /// closestSource[u] = some source attaining dist[u] (region-local).
  std::vector<int> closestSource;
};

/// Multi-source BFS over the region (local ids).
ReferenceDistances multiSourceBfs(const Region& region,
                                  std::span<const int> sources);

/// A valid (S,D)-shortest-path forest computed centrally (for ablations and
/// ground-truth comparisons): BFS forest pruned to destination-covering
/// subtrees.
std::vector<int> referenceForest(const Region& region,
                                 std::span<const int> sources,
                                 std::span<const int> destinations);

}  // namespace aspf

#include "baselines/checker.hpp"

#include <queue>
#include <sstream>

#include "baselines/reference.hpp"

namespace aspf {
namespace {

ForestCheck fail(const std::string& message) {
  ForestCheck c;
  c.ok = false;
  c.error = message;
  return c;
}

}  // namespace

ForestCheck checkShortestPathForest(const Region& region,
                                    const std::vector<int>& parent,
                                    std::span<const int> sources,
                                    std::span<const int> destinations) {
  const int n = region.size();
  if (static_cast<int>(parent.size()) != n)
    return fail("parent array size mismatch");

  std::vector<char> isSource(n, 0), isDest(n, 0);
  for (const int s : sources) isSource[s] = 1;
  for (const int t : destinations) isDest[t] = 1;

  // Property 1 (shape): sources are roots; every forest member reaches a
  // source along parent pointers without cycles, via grid-adjacent edges.
  for (const int s : sources) {
    if (parent[s] != -1) return fail("source is not a root");
  }
  std::vector<int> rootOf(n, -1);
  std::vector<int> depth(n, -1);
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2) continue;
    // Walk up with a step bound to detect cycles.
    int cur = u;
    int steps = 0;
    std::vector<int> trail;
    while (parent[cur] >= 0 && rootOf[cur] == -1) {
      const int p = parent[cur];
      if (gridDistance(region.coordOf(cur), region.coordOf(p)) != 1)
        return fail("parent pointer is not a neighbor");
      trail.push_back(cur);
      cur = p;
      if (++steps > n) return fail("cycle in parent pointers");
    }
    int base, baseDepth;
    if (rootOf[cur] != -1) {
      base = rootOf[cur];
      baseDepth = depth[cur];
    } else {
      if (parent[cur] != -1) return fail("forest member detached from roots");
      if (!isSource[cur]) return fail("root is not a source");
      base = cur;
      baseDepth = 0;
      rootOf[cur] = cur;
      depth[cur] = 0;
    }
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      rootOf[*it] = base;
      depth[*it] = ++baseDepth;
    }
  }

  // Property 3 is implied: each node has one parent pointer, hence belongs
  // to exactly one tree.

  // Property 4: every destination is covered.
  for (const int t : destinations) {
    if (parent[t] == -2) return fail("destination not covered by forest");
  }

  // Property 5: depth equals distance to the closest source.
  std::vector<int> src(sources.begin(), sources.end());
  const ReferenceDistances ref = multiSourceBfs(region, src);
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2) continue;
    if (depth[u] != ref.dist[u]) {
      std::ostringstream os;
      os << "node " << u << " has forest depth " << depth[u]
         << " but distance to closest source is " << ref.dist[u];
      return fail(os.str());
    }
  }

  // Property 2: every leaf is a source or destination.
  std::vector<char> hasChild(n, 0);
  for (int u = 0; u < n; ++u) {
    if (parent[u] >= 0) hasChild[parent[u]] = 1;
  }
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2 || hasChild[u]) continue;
    if (!isSource[u] && !isDest[u]) return fail("leaf neither source nor destination");
  }

  return {};
}

}  // namespace aspf

#include "baselines/reference.hpp"

#include <queue>

namespace aspf {

ReferenceDistances multiSourceBfs(const Region& region,
                                  std::span<const int> sources) {
  ReferenceDistances out;
  out.dist.assign(region.size(), -1);
  out.closestSource.assign(region.size(), -1);
  std::queue<int> q;
  for (const int s : sources) {
    if (out.dist[s] != 0) {
      out.dist[s] = 0;
      out.closestSource[s] = s;
      q.push(s);
    }
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && out.dist[v] == -1) {
        out.dist[v] = out.dist[u] + 1;
        out.closestSource[v] = out.closestSource[u];
        q.push(v);
      }
    }
  }
  return out;
}

std::vector<int> referenceForest(const Region& region,
                                 std::span<const int> sources,
                                 std::span<const int> destinations) {
  const ReferenceDistances ref = multiSourceBfs(region, sources);
  std::vector<int> parent(region.size(), -2);
  for (const int s : sources) parent[s] = -1;
  // BFS parents toward the assigned source.
  for (int u = 0; u < region.size(); ++u) {
    if (parent[u] == -1 || ref.dist[u] < 0) continue;
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v >= 0 && ref.dist[v] == ref.dist[u] - 1 &&
          ref.closestSource[v] == ref.closestSource[u]) {
        parent[u] = v;
        break;
      }
    }
  }
  // Prune to branches that reach destinations.
  std::vector<char> keep(region.size(), 0);
  for (const int t : destinations) {
    int u = t;
    while (u >= 0 && !keep[u]) {
      keep[u] = 1;
      u = parent[u] >= 0 ? parent[u] : -1;
    }
  }
  for (int u = 0; u < region.size(); ++u) {
    if (!keep[u] && parent[u] >= 0) parent[u] = -2;
  }
  return parent;
}

}  // namespace aspf

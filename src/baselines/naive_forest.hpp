#pragma once
// Naive sequential forest construction (Section 5 intro): compute an
// {s}-shortest-path forest per source with the shortest path tree
// algorithm and fold them together with the merging algorithm, one source
// at a time.
//
// Round-complexity contract: O(k log n) rounds -- k SPT runs (O(log n)
// each, Theorem 39) plus k-1 merges (O(log n) each, Lemma 42). The
// ablation benchmark (E9) compares this against the O(log n log^2 k)
// divide & conquer algorithm; the naive construction wins only at tiny k.
//
// Thread-safety: stateless free function; each call builds its own Comms.
// Concurrent calls are safe.
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct NaiveForestResult {
  std::vector<int> parent;
  long rounds = 0;
};

NaiveForestResult naiveSequentialForest(const Region& region,
                                        std::span<const char> isSource,
                                        std::span<const char> isDest,
                                        int lanes = 4);

}  // namespace aspf

#pragma once
// Naive sequential forest construction (Section 5 intro): compute an
// {s}-shortest-path forest per source with the shortest path tree
// algorithm and fold them together with the merging algorithm, one source
// at a time -- O(k log n) rounds. The ablation benchmark compares this
// against the O(log n log^2 k) divide & conquer algorithm.
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct NaiveForestResult {
  std::vector<int> parent;
  long rounds = 0;
};

NaiveForestResult naiveSequentialForest(const Region& region,
                                        std::span<const char> isSource,
                                        std::span<const char> isDest,
                                        int lanes = 4);

}  // namespace aspf

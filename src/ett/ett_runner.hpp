#pragma once
// The Euler tour technique on reconfigurable circuits (Lemma 14): runs
// prefix-sum PASC over the instance chain of an Euler tour with the weight
// function w_Q (every node of Q marks exactly one outgoing tour edge), and
// derives, for every tree edge {u,v}, the difference
//     prefixsum(u,v) - prefixsum(v,u)
// at both endpoints, bit by bit (streaming subtract/compare with O(1)
// state). The root additionally learns W = |Q| bit by bit (Corollary 15)
// and can broadcast it on a global circuit (one extra round per iteration),
// as required by the centroid primitive.
#include <cstdint>
#include <span>

#include "ett/euler_tour.hpp"
#include "sim/comm.hpp"

namespace aspf {

struct EttOptions {
  /// If true, the root broadcasts each bit of W after each iteration
  /// (costs one extra round per iteration).
  bool broadcastW = false;
};

struct EttResult {
  /// diff[u][d] = prefixsum(u,v) - prefixsum(v,u) for the tree edge in
  /// direction d (v = neighbor), 0 for non-tree directions. By Lemma 17
  /// this is the number of Q-nodes in u's subtree when v is u's parent,
  /// and minus the number of Q-nodes in v's subtree when v is a child.
  std::vector<std::array<std::int64_t, 6>> diff;

  /// W = |Q| (known to the root; with broadcastW, known to everyone).
  std::uint64_t totalWeight = 0;

  int iterations = 0;
  long rounds = 0;
};

/// markedOutDir[u] = the direction of the tour edge u marks (u in Q), or -1
/// (u not in Q). Each marked direction must be a tree edge of the tour.
EttResult runEtt(Comm& comm, const EulerTour& tour,
                 std::span<const int> markedOutDir,
                 const EttOptions& options = {});

/// Convenience: canonical marking for a node set Q -- every node of Q marks
/// its first outgoing instance on the tour (deterministic, locally known).
std::vector<int> canonicalMarks(const EulerTour& tour,
                                std::span<const char> inQ);

}  // namespace aspf

#include "ett/ett_runner.hpp"

#include <stdexcept>

#include "pasc/pasc_prefix.hpp"

namespace aspf {

std::vector<int> canonicalMarks(const EulerTour& tour,
                                std::span<const char> inQ) {
  const int n = static_cast<int>(inQ.size());
  std::vector<int> markedOutDir(n, -1);
  // Each node's first outgoing instance is the one with the smallest tour
  // index; equivalently the first time the tour visits the node. Scan once.
  std::vector<char> seen(n, 0);
  for (int i = 0; i < tour.edgeCount(); ++i) {
    const int u = tour.stops[i];
    if (!seen[u]) {
      seen[u] = 1;
      if (inQ[u])
        markedOutDir[u] = static_cast<int>(tour.outDir[i]);
    }
  }
  return markedOutDir;
}

EttResult runEtt(Comm& comm, const EulerTour& tour,
                 std::span<const int> markedOutDir,
                 const EttOptions& options) {
  const Region& region = comm.region();
  const int n = region.size();
  EttResult result;
  result.diff.assign(n, {});

  if (tour.edgeCount() == 0) {
    // Single-node tree: W is the root's own mark count; no rounds needed.
    result.totalWeight =
        tour.root >= 0 && markedOutDir[tour.root] >= 0 ? 1 : 0;
    return result;
  }

  // Instance weights: w(v_i) = w(e_i) = 1 iff instance i's outgoing tour
  // edge is the one marked by its node; the closing instance weighs 0.
  const int instances = tour.instanceCount();
  std::vector<char> weight(instances, 0);
  for (int i = 0; i < tour.edgeCount(); ++i) {
    const int u = tour.stops[i];
    if (markedOutDir[u] >= 0 &&
        tour.outDir[i] == static_cast<Dir>(markedOutDir[u]) &&
        tour.instanceOfOutEdge[u][markedOutDir[u]] == i)
      weight[i] = 1;
  }

  const PascResult pasc = runPascPrefixSum(comm, tour.stops, weight);
  result.iterations = pasc.iterations;
  result.rounds = pasc.rounds;
  if (options.broadcastW) {
    // One global-circuit round per iteration for the root's bit of W.
    comm.chargeRounds(pasc.iterations);
    result.rounds += pasc.iterations;
  }
  result.totalWeight = pasc.value.back();

  // Per tree edge and endpoint, derive the prefix-sum difference. The
  // amoebots do this with streaming bit arithmetic over the PASC bit
  // rounds (constant state per edge; see util/bitstream.hpp, pinned by
  // tests/test_util.cpp) -- the stream computes exactly
  // value[out] - (value[in] - w(in)) in two's complement, so the host
  // takes the integer shortcut on the already-accumulated PASC values
  // instead of replaying bits * edges rounds of bit plumbing.
  for (int u = 0; u < n; ++u) {
    for (int d = 0; d < 6; ++d) {
      const int outIdx = tour.instanceOfOutEdge[u][d];
      const int inIdx = tour.instanceAfterInEdge[u][d];
      if (outIdx < 0 || inIdx < 0) continue;
      // prefixsum(u,v): prefix sum of u's instance with outgoing edge (u,v).
      // prefixsum(v,u): prefix sum of u's instance right after (v,u), minus
      // that instance's own weight.
      result.diff[u][d] =
          static_cast<std::int64_t>(pasc.value[outIdx]) -
          (static_cast<std::int64_t>(pasc.value[inIdx]) -
           (weight[inIdx] != 0 ? 1 : 0));
    }
  }
  return result;
}

}  // namespace aspf

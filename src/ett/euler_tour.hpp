#pragma once
// Euler tours of amoebot trees (Section 3.1). The tree T is replaced by the
// symmetric digraph T'; the Euler tour follows Tarjan-Vishkin's local rule
// "after traversing (v,u), continue with (u,w) where w is the next
// counterclockwise tree-neighbor of u after v". Every node operates one
// *instance* per occurrence on the tour (deg many; the root one extra
// virtual closing instance), each with O(1) state -- Remark 16.
#include <array>
#include <span>
#include <vector>

#include "sim/region.hpp"

namespace aspf {

/// Symmetric tree adjacency over region-local ids: edge[u][d] != 0 iff the
/// tree contains the edge from u in direction d.
struct TreeAdj {
  std::vector<std::array<char, 6>> edge;

  static TreeAdj empty(int n) {
    TreeAdj t;
    t.edge.assign(n, {});
    return t;
  }

  void add(const Region& region, int u, int v) {
    const Dir d = dirBetween(region.coordOf(u), region.coordOf(v));
    edge[u][static_cast<int>(d)] = 1;
    edge[v][static_cast<int>(opposite(d))] = 1;
  }

  bool has(int u, Dir d) const { return edge[u][static_cast<int>(d)] != 0; }

  int degree(int u) const {
    int deg = 0;
    for (int d = 0; d < 6; ++d) deg += edge[u][d] ? 1 : 0;
    return deg;
  }
};

struct EulerTour {
  /// Amoebot (region-local id) of each instance, in tour order. The first
  /// and last instance belong to the root. Size 2(n-1)+1 for an n-node
  /// tree; {root} for a single-node tree.
  std::vector<int> stops;

  /// Direction of the tour edge leaving instance i (i < stops.size()-1).
  std::vector<Dir> outDir;

  /// instanceOfOutEdge[u][d] = tour index of u's instance whose outgoing
  /// tour edge is (u, d); -1 if (u, d) is not a tree edge.
  std::vector<std::array<int, 6>> instanceOfOutEdge;

  /// instanceAfterInEdge[u][d] = tour index of u's instance reached right
  /// after traversing the tour edge (v, u), where d is the direction from
  /// u to v; -1 if not a tree edge. This instance is operated by u.
  std::vector<std::array<int, 6>> instanceAfterInEdge;

  int root = -1;

  int instanceCount() const { return static_cast<int>(stops.size()); }
  int edgeCount() const { return static_cast<int>(outDir.size()); }
};

/// Builds the Euler tour of the tree containing `root`. Nodes of the region
/// that are not reachable via tree edges are simply not visited. The tree
/// must really be a tree (no cycles); this is asserted in debug builds.
EulerTour buildEulerTour(const Region& region, const TreeAdj& tree, int root);

}  // namespace aspf

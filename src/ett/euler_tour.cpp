#include "ett/euler_tour.hpp"

#include <cassert>
#include <stdexcept>

namespace aspf {
namespace {

/// First tree-neighbor direction of u scanning counterclockwise starting at
/// `from` (inclusive). Returns true and sets `out` if any tree edge exists.
bool firstTreeDirCcw(const TreeAdj& tree, int u, Dir from, Dir& out) {
  for (int k = 0; k < 6; ++k) {
    const Dir d = ccw(from, k);
    if (tree.has(u, d)) {
      out = d;
      return true;
    }
  }
  return false;
}

}  // namespace

EulerTour buildEulerTour(const Region& region, const TreeAdj& tree,
                         int root) {
  EulerTour tour;
  tour.root = root;
  const int n = region.size();
  tour.instanceOfOutEdge.assign(n, {-1, -1, -1, -1, -1, -1});
  tour.instanceAfterInEdge.assign(n, {-1, -1, -1, -1, -1, -1});

  Dir firstOut{};
  if (!firstTreeDirCcw(tree, root, Dir::E, firstOut)) {
    tour.stops = {root};  // single-node tree
    return tour;
  }

  int u = root;
  Dir d = firstOut;
  while (true) {
    const int idx = static_cast<int>(tour.stops.size());
    tour.stops.push_back(u);
    tour.outDir.push_back(d);
    assert(tour.instanceOfOutEdge[u][static_cast<int>(d)] == -1 &&
           "Euler tour revisits a directed edge: tree has a cycle");
    tour.instanceOfOutEdge[u][static_cast<int>(d)] = idx;

    const int v = region.neighbor(u, d);
    if (v < 0)
      throw std::invalid_argument("EulerTour: tree edge leaves the region");
    // Arrived at v via (u, v); record the instance and pick the next edge:
    // next ccw tree-neighbor of v strictly after u.
    const Dir dirBack = opposite(d);  // direction from v to u
    tour.instanceAfterInEdge[v][static_cast<int>(dirBack)] =
        static_cast<int>(tour.stops.size());
    if (v == root) {
      // Check whether the tour is complete: the next edge out of the root
      // would be the first one again.
      Dir next{};
      const bool found = firstTreeDirCcw(tree, v, ccw(dirBack, 1), next);
      assert(found);
      if (found && next == firstOut &&
          tour.instanceOfOutEdge[v][static_cast<int>(next)] != -1) {
        tour.stops.push_back(v);  // closing instance of the root
        break;
      }
      u = v;
      d = next;
    } else {
      Dir next{};
      const bool found = firstTreeDirCcw(tree, v, ccw(dirBack, 1), next);
      assert(found && "tree adjacency inconsistent");
      if (!found)
        throw std::invalid_argument("EulerTour: dangling tree edge");
      u = v;
      d = next;
    }
  }
  return tour;
}

}  // namespace aspf

#include "pasc/pasc_chain.hpp"

#include <cassert>
#include <stdexcept>

namespace aspf {
namespace {

struct Hop {
  Dir dir;                 // direction of travel from stop i to stop i+1
  std::uint8_t laneBase;   // 0 for E/NE/NW travel, 2 for W/SW/SE
};

std::uint8_t laneBaseOf(Dir travel) noexcept {
  return static_cast<int>(travel) < 3 ? 0 : 2;
}

}  // namespace

PascResult runPascChain(Comm& comm, std::span<const int> stops,
                        const PascOptions& options) {
  const Region& region = comm.region();
  const int m = static_cast<int>(stops.size());
  if (m == 0) return {};
  const bool weighted = !options.weight.empty();
  if (weighted && static_cast<int>(options.weight.size()) != m)
    throw std::invalid_argument("PASC: weight size mismatch");

  // Precompute hops and validate adjacency.
  std::vector<Hop> hop(m > 0 ? m - 1 : 0);
  for (int i = 0; i + 1 < m; ++i) {
    const Coord a = region.coordOf(stops[i]);
    const Coord b = region.coordOf(stops[i + 1]);
    if (gridDistance(a, b) != 1)
      throw std::invalid_argument("PASC: consecutive stops not adjacent");
    const Dir d = dirBetween(a, b);
    hop[i] = Hop{d, laneBaseOf(d)};
    if (comm.lanes() < hop[i].laneBase + 2)
      throw std::invalid_argument("PASC: Comm has too few lanes");
  }

  // Active flags: distance mode -> stops 1..m-1; weighted -> weight == 1
  // (including stop 0, whose crossing is applied to the injected signal).
  std::vector<char> active(m, 0);
  std::uint64_t totalWeight = 0;
  for (int i = 0; i < m; ++i) {
    active[i] = weighted ? options.weight[i] : static_cast<char>(i > 0);
    totalWeight += active[i];
  }

  PascResult result;
  result.value.assign(m, 0);
  if (m == 1 && totalWeight == 0) {
    // Degenerate single-stop chain: value 0, no rounds needed.
    return result;
  }

  // Per-stop pin roles. inP/inS: pins toward the predecessor; outP/outS:
  // pins toward the successor.
  auto inPin = [&](int i, int lane) -> Pin {
    const Hop& h = hop[i - 1];
    return Pin{opposite(h.dir),
               static_cast<std::uint8_t>(h.laneBase + lane)};
  };
  auto outPin = [&](int i, int lane) -> Pin {
    const Hop& h = hop[i];
    return Pin{h.dir, static_cast<std::uint8_t>(h.laneBase + lane)};
  };

  // Wire an interior stop's crossing. Each of the two joins fully
  // overwrites its own two pins, so rewiring one stop instance never
  // clobbers another instance of the same amoebot (Euler tours visit an
  // amoebot several times with distinct hop pins).
  auto wireStop = [&](int i) {
    const int a = stops[i];
    const Pin ip = inPin(i, 0), is = inPin(i, 1);
    const Pin op = outPin(i, 0), os = outPin(i, 1);
    if (active[i] != 0) {
      const Pin setA[] = {ip, os};
      const Pin setB[] = {is, op};
      comm.pins(a).join(setA);
      comm.pins(a).join(setB);
    } else {
      const Pin setA[] = {ip, op};
      const Pin setB[] = {is, os};
      comm.pins(a).join(setA);
      comm.pins(a).join(setB);
    }
  };

  // Rewires a batch of interior stops, sharded when the Comm is: stops
  // are bucketed by the shard of their amoebot, so concurrent shard
  // sweeps mutate disjoint arena state, and two instances of the SAME
  // amoebot (Euler tours revisit) land in the same bucket in chain
  // order. Small batches stay serial -- results are identical either
  // way, the fan-out just costs more than it saves.
  std::vector<std::vector<int>> rewireBuckets;
  auto rewireStops = [&](std::span<const int> batch) {
    // Only interior stops carry wiring (head/tail crossings are virtual).
    if (comm.shardCount() == 1 ||
        batch.size() < static_cast<std::size_t>(kShardSweepGrain)) {
      for (const int i : batch) {
        if (i > 0 && i + 1 < m) wireStop(i);
      }
      return;
    }
    rewireBuckets.resize(comm.shardCount());
    for (std::vector<int>& bucket : rewireBuckets) bucket.clear();
    for (const int i : batch) {
      if (i > 0 && i + 1 < m)
        rewireBuckets[comm.shardOf(stops[i])].push_back(i);
    }
    comm.forEachShard([&](int s) {
      for (const int i : rewireBuckets[s]) wireStop(i);
    });
  };

  // Configure the chain once; afterwards only stops whose activity
  // flipped rewire (the "active frontier" -- the dirty set the
  // incremental circuit engine exploits). The head has no physical
  // in-side (its crossing only selects the injection lane) and the tail's
  // in-pins stay singletons (they are the read points), so neither is
  // ever wired.
  comm.resetPins();
  std::vector<int> interior;
  for (int i = 1; i + 1 < m; ++i) interior.push_back(i);
  rewireStops(interior);
  interior.clear();
  interior.shrink_to_fit();

  // Precompiled query nodes: the per-iteration read sweep asks the same
  // (amoebot, pin) pairs every time except the tail, whose in-pin depends
  // on its current crossing. Compile the interior handles once and swap
  // only the tail entry between its two variants each iteration --
  // receivedNodes() then resolves the batch without re-deriving pin
  // indices. queryNodes[i - 1] belongs to stop i (matching bitOf).
  std::vector<int> queryNodes(m >= 2 ? m - 1 : 0);
  for (int i = 1; i + 1 < m; ++i)
    queryNodes[i - 1] = comm.pinNodeOf(stops[i], outPin(i, 1));
  const int tailCrossed =
      m >= 2 ? comm.pinNodeOf(stops[m - 1], inPin(m - 1, 0)) : -1;
  const int tailStraight =
      m >= 2 ? comm.pinNodeOf(stops[m - 1], inPin(m - 1, 1)) : -1;

  int iteration = 0;
  std::vector<char> bitsNow(m, 0);
  std::vector<int> flipped;
  std::vector<char> bitOf;
  while (true) {
    // --- Round 1: rewire flipped crossings, head injects, all read bits.
    // Flipped stops are interior by construction (the head never
    // deactivates in distance mode and its crossing needs no wiring; the
    // tail's flip only changes which in-pin it reads).
    rewireStops(flipped);
    flipped.clear();
    if (m >= 2) {
      const bool headCross = active[0] != 0;
      comm.beepPin(stops[0], outPin(0, headCross ? 1 : 0));
    }
    comm.deliver();

    // Read: bit = 1 iff the signal leaves the stop on the secondary lane,
    // i.e. the partition set containing the out-secondary pin received the
    // beep. Tail uses the in-pin that its (virtual) crossing would route to
    // the secondary out-lane. The whole sweep is one batched query so a
    // sharded Comm resolves the m roots concurrently.
    if (m >= 2)
      queryNodes[m - 2] = active[m - 1] != 0 ? tailCrossed : tailStraight;
    comm.receivedNodes(queryNodes, &bitOf);
    for (int i = 0; i < m; ++i) {
      // Head: its own crossing acts on the injected signal directly.
      const bool bit = i == 0 ? active[0] != 0 : bitOf[i - 1] != 0;
      bitsNow[i] = bit ? 1 : 0;
      if (bit) result.value[i] |= (std::uint64_t{1} << iteration);
    }
    result.bits.push_back(bitsNow);
    if (options.onBits) options.onBits(iteration, bitsNow);

    // Deactivate: active stops whose bit is 1 turn passive. Their new
    // (straight) crossing takes effect in the next iteration's round 1.
    bool anyActive = false;
    for (int i = 0; i < m; ++i) {
      if (active[i] && bitsNow[i]) {
        active[i] = 0;
        flipped.push_back(i);
      }
      anyActive = anyActive || active[i] != 0;
    }

    // --- Round 2: termination check. Keep the same lane circuits; every
    // still-active stop beeps on both of its partition sets; the head
    // observes. (The circuits span the whole chain, so one round suffices.)
    for (int i = 0; i < m; ++i) {
      if (!active[i]) continue;
      const int a = stops[i];
      if (i == m - 1 && m >= 2) {
        comm.beepPin(a, inPin(i, 0));
        comm.beepPin(a, inPin(i, 1));
      } else if (i > 0) {
        comm.beepPin(a, outPin(i, 0));
        comm.beepPin(a, outPin(i, 1));
      } else if (m >= 2) {
        comm.beepPin(a, outPin(0, 0));
        comm.beepPin(a, outPin(0, 1));
      }
    }
    comm.deliver();
    ++iteration;
    // The head terminates the algorithm when it hears no active stop.
    // (We already know anyActive; the beeps above realize the check.)
    if (!anyActive) break;
  }

  result.iterations = iteration;
  result.rounds = 2L * iteration;
  return result;
}

}  // namespace aspf

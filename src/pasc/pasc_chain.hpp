#pragma once
// PASC — the Primary And Secondary Circuit algorithm of Feldmann et al.,
// as restated in Lemmas 3/4 and Corollary 6 of the paper.
//
// Setting: a chain of stops (v_0, ..., v_{m-1}); consecutive stops occupy
// adjacent amoebots (one amoebot may appear several times, as in Euler tour
// instance chains). Every stop runs two "lanes" (primary/secondary) across
// each chain hop. Active stops cross the lanes, passive stops connect them
// straight. v_0 beeps on its primary lane; the lane on which the signal
// leaves a stop encodes the parity of the number of active stops up to and
// including it. Active stops that read parity 1 turn passive, halving the
// active count: iteration t therefore reveals bit t (LSB first) of each
// stop's distance (all stops active) or weighted prefix sum (stops with
// weight 1 active), in 2 rounds per iteration (signal + termination check).
//
// Lane discipline: a hop traversed in direction E/NE/NW uses lanes {0,1} of
// the edge, W/SW/SE uses {2,3}; an Euler tour traverses each physical edge
// once per direction, so four lanes per edge suffice (constant c, Remark 16).
//
// Cacheability contract (spf/solve_cache.hpp): a PASC execution is NOT an
// independently memoizable unit. It runs mid-protocol on a shared Comm,
// and the steps after it read the pin configurations it leaves behind --
// replaying only its result would have to reproduce that live pin state,
// which is the very work being skipped. The cross-query cache therefore
// memoizes enclosing units whose consumers take pure values (the rooted
// portal state, the pre-prune forest) and replays their recorded
// rounds/delivers/beeps, which are functions of protocol control flow
// alone; the PASC runs inside a skipped unit are skipped with it.
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/comm.hpp"

namespace aspf {

struct PascOptions {
  /// If non-empty: weighted (prefix-sum) mode, weight[i] in {0,1} per stop
  /// (Corollary 6). Empty: distance mode (every stop except v_0 weighs 1).
  std::vector<char> weight;

  /// Streaming consumer, called once per iteration with the bit of every
  /// stop (LSB first). Optional.
  std::function<void(int iteration, std::span<const char> bits)> onBits;
};

struct PascResult {
  /// Reconstructed per-stop value (distance to v_0 / prefix sum). This is
  /// verification-side bookkeeping; protocols consume the bit stream.
  std::vector<std::uint64_t> value;
  /// bits[t][i] = bit t of stop i's value.
  std::vector<std::vector<char>> bits;
  int iterations = 0;
  long rounds = 0;  // rounds consumed on the passed Comm
};

/// Runs PASC on a chain of region-local amoebot ids. Requires
/// comm.lanes() >= 4 when the chain reuses an edge in both directions,
/// >= 2 otherwise. Consecutive stops must be adjacent in the region.
PascResult runPascChain(Comm& comm, std::span<const int> stops,
                        const PascOptions& options = {});

}  // namespace aspf

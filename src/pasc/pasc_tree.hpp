#pragma once
// Tree/forest variant of PASC (Corollary 5 of the paper): given a rooted
// forest of amoebots (each node knows its parent, the roots know they are
// roots), compute the depth of every node bit by bit, in O(log h) iterations
// where h is the maximum tree height. The chain construction is applied to
// every root-leaf path simultaneously; a node reuses its two partition sets
// for all paths through it, so two lanes per tree edge suffice.
//
// Running the algorithm on a forest executes the per-tree instances in
// parallel on disjoint circuits, which is how the merging algorithm
// (Section 5.2) obtains dist(S, u) for every amoebot of an S-shortest-path
// forest at once.
#include <cstdint>
#include <vector>

#include "sim/comm.hpp"

namespace aspf {

struct TreePascResult {
  /// depth[local] = distance to the root of its tree; 0 for non-members.
  std::vector<std::uint64_t> depth;
  /// bits[t][local] = bit t (LSB first) of depth[local].
  std::vector<std::vector<char>> bits;
  int iterations = 0;
  long rounds = 0;
};

/// parent[local] = region-local parent id, -1 for roots, -2 for amoebots not
/// participating. Every parent edge must connect region neighbors.
/// Requires comm.lanes() >= 2.
TreePascResult runPascForest(Comm& comm, const std::vector<int>& parent);

}  // namespace aspf

#include "pasc/pasc_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace aspf {

TreePascResult runPascForest(Comm& comm, const std::vector<int>& parent) {
  const Region& region = comm.region();
  const int n = region.size();
  if (static_cast<int>(parent.size()) != n)
    throw std::invalid_argument("PASC forest: parent array size mismatch");
  if (comm.lanes() < 2)
    throw std::invalid_argument("PASC forest: need >= 2 lanes");

  // Tree edges always use lanes {0,1}; the orientation (who is parent) is
  // known to both endpoints, so the assignment is local and consistent.
  std::vector<std::vector<int>> children(n);
  std::vector<Dir> dirToParent(n, Dir::E);
  std::vector<char> member(n, 0);
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2) continue;
    member[u] = 1;
    if (parent[u] >= 0) {
      const Coord cu = region.coordOf(u);
      const Coord cp = region.coordOf(parent[u]);
      if (gridDistance(cu, cp) != 1)
        throw std::invalid_argument("PASC forest: parent not adjacent");
      dirToParent[u] = dirBetween(cu, cp);
      children[parent[u]].push_back(u);
    }
  }

  auto inP = [&](int u) { return Pin{dirToParent[u], 0}; };
  auto inS = [&](int u) { return Pin{dirToParent[u], 1}; };
  auto outP = [&](int u, int child) {
    return Pin{opposite(dirToParent[child]), 0};
    (void)u;
  };
  auto outS = [&](int u, int child) {
    return Pin{opposite(dirToParent[child]), 1};
    (void)u;
  };

  std::vector<char> active(n, 0);
  for (int u = 0; u < n; ++u) active[u] = member[u] && parent[u] >= 0;

  TreePascResult result;
  result.depth.assign(n, 0);

  // Wire one node's crossing (a tree node is one amoebot, so a reset
  // before re-joining cannot clobber other protocol state). The pin-set
  // scratch is caller-provided so concurrent shard sweeps don't share it.
  auto wireNode = [&](int u, std::vector<Pin>& setA, std::vector<Pin>& setB) {
    setA.clear();
    setB.clear();
    const bool cross = active[u] != 0;
    if (parent[u] >= 0) {
      setA.push_back(inP(u));
      setB.push_back(inS(u));
    }
    for (const int c : children[u]) {
      (cross ? setB : setA).push_back(outP(u, c));
      (cross ? setA : setB).push_back(outS(u, c));
    }
    if (setA.size() > 1) comm.pins(u).join(setA);
    if (setB.size() > 1) comm.pins(u).join(setB);
  };

  // Rewires a batch of nodes (each optionally reset first), bucketed by
  // shard so a sharded Comm runs the sweeps concurrently on disjoint
  // arena state. Node ids are region locals, so shardOf applies
  // directly; small batches stay serial with identical results.
  std::vector<std::vector<int>> rewireBuckets;
  auto rewireNodes = [&](std::span<const int> batch, bool resetFirst) {
    if (comm.shardCount() == 1 ||
        batch.size() < static_cast<std::size_t>(kShardSweepGrain)) {
      std::vector<Pin> setA, setB;
      for (const int u : batch) {
        if (resetFirst) comm.pins(u).reset();
        wireNode(u, setA, setB);
      }
      return;
    }
    rewireBuckets.resize(comm.shardCount());
    for (std::vector<int>& bucket : rewireBuckets) bucket.clear();
    for (const int u : batch) rewireBuckets[comm.shardOf(u)].push_back(u);
    comm.forEachShard([&](int s) {
      std::vector<Pin> setA, setB;
      for (const int u : rewireBuckets[s]) {
        if (resetFirst) comm.pins(u).reset();
        wireNode(u, setA, setB);
      }
    });
  };

  // Configure the forest once; afterwards only nodes whose activity
  // flipped rewire (the dirty set the incremental circuit engine
  // exploits).
  comm.resetPins();
  std::vector<int> members;
  for (int u = 0; u < n; ++u) {
    if (member[u]) members.push_back(u);
  }
  rewireNodes(members, /*resetFirst=*/false);

  // Precompiled query nodes. Internal nodes always read the secondary
  // out-lane toward their first child (static across the whole run); a
  // leaf reads the in-pin its crossing routes to the secondary out-lane,
  // which switches from inP to inS exactly once -- when the leaf
  // deactivates. So the batch is compiled once, and a flip patches the
  // leaf's slot in O(1); receivedNodes() then resolves the sweep without
  // re-deriving any pin indices.
  std::vector<int> queryNodes;
  std::vector<int> queryNode;
  std::vector<int> slotOf(n, -1);
  std::vector<int> leafStraight(n, -1);
  for (int u = 0; u < n; ++u) {
    if (!member[u]) continue;
    if (!children[u].empty()) {
      queryNodes.push_back(comm.pinNodeOf(u, outS(u, children[u].front())));
      queryNode.push_back(u);
    } else if (parent[u] >= 0) {
      slotOf[u] = static_cast<int>(queryNodes.size());
      leafStraight[u] = comm.pinNodeOf(u, inS(u));
      queryNodes.push_back(active[u] != 0 ? comm.pinNodeOf(u, inP(u))
                                          : leafStraight[u]);
      queryNode.push_back(u);
    }
  }

  int iteration = 0;
  std::vector<char> bitsNow(n, 0);
  std::vector<int> flipped;
  std::vector<char> bitOf;
  while (true) {
    // --- Round 1: rewire flipped crossings, roots inject, read bits.
    rewireNodes(flipped, /*resetFirst=*/true);
    flipped.clear();
    for (int u = 0; u < n; ++u) {
      if (member[u] && parent[u] == -1 && !children[u].empty())
        comm.beepPin(u, outP(u, children[u].front()));
    }
    comm.deliver();

    // One batched query for the whole forest sweep (sharded Comms
    // resolve the roots concurrently; isolated roots and non-members
    // never entered the precompiled batch and stay 0).
    comm.receivedNodes(queryNodes, &bitOf);
    std::fill(bitsNow.begin(), bitsNow.end(), 0);
    for (std::size_t qi = 0; qi < queryNodes.size(); ++qi) {
      if (!bitOf[qi]) continue;
      const int u = queryNode[qi];
      bitsNow[u] = 1;
      result.depth[u] |= (std::uint64_t{1} << iteration);
    }
    result.bits.push_back(bitsNow);

    bool anyActive = false;
    for (int u = 0; u < n; ++u) {
      if (active[u] && bitsNow[u]) {
        active[u] = 0;
        flipped.push_back(u);
        // A deactivated leaf now reads the straight in-pin.
        if (slotOf[u] >= 0) queryNodes[slotOf[u]] = leafStraight[u];
      }
      anyActive = anyActive || active[u] != 0;
    }

    // --- Round 2: termination check on the same circuits.
    for (int u = 0; u < n; ++u) {
      if (!active[u]) continue;
      comm.beepPin(u, inP(u));
      comm.beepPin(u, inS(u));
    }
    comm.deliver();
    ++iteration;
    if (!anyActive) break;
  }

  result.iterations = iteration;
  result.rounds = 2L * iteration;
  return result;
}

}  // namespace aspf

#include "pasc/pasc_tree.hpp"

#include <stdexcept>

namespace aspf {

TreePascResult runPascForest(Comm& comm, const std::vector<int>& parent) {
  const Region& region = comm.region();
  const int n = region.size();
  if (static_cast<int>(parent.size()) != n)
    throw std::invalid_argument("PASC forest: parent array size mismatch");
  if (comm.lanes() < 2)
    throw std::invalid_argument("PASC forest: need >= 2 lanes");

  // Tree edges always use lanes {0,1}; the orientation (who is parent) is
  // known to both endpoints, so the assignment is local and consistent.
  std::vector<std::vector<int>> children(n);
  std::vector<Dir> dirToParent(n, Dir::E);
  std::vector<char> member(n, 0);
  for (int u = 0; u < n; ++u) {
    if (parent[u] == -2) continue;
    member[u] = 1;
    if (parent[u] >= 0) {
      const Coord cu = region.coordOf(u);
      const Coord cp = region.coordOf(parent[u]);
      if (gridDistance(cu, cp) != 1)
        throw std::invalid_argument("PASC forest: parent not adjacent");
      dirToParent[u] = dirBetween(cu, cp);
      children[parent[u]].push_back(u);
    }
  }

  auto inP = [&](int u) { return Pin{dirToParent[u], 0}; };
  auto inS = [&](int u) { return Pin{dirToParent[u], 1}; };
  auto outP = [&](int u, int child) {
    return Pin{opposite(dirToParent[child]), 0};
    (void)u;
  };
  auto outS = [&](int u, int child) {
    return Pin{opposite(dirToParent[child]), 1};
    (void)u;
  };

  std::vector<char> active(n, 0);
  for (int u = 0; u < n; ++u) active[u] = member[u] && parent[u] >= 0;

  TreePascResult result;
  result.depth.assign(n, 0);

  // Wire one node's crossing (a tree node is one amoebot, so a reset
  // before re-joining cannot clobber other protocol state).
  std::vector<Pin> setA, setB;
  auto wireNode = [&](int u) {
    setA.clear();
    setB.clear();
    const bool cross = active[u] != 0;
    if (parent[u] >= 0) {
      setA.push_back(inP(u));
      setB.push_back(inS(u));
    }
    for (const int c : children[u]) {
      (cross ? setB : setA).push_back(outP(u, c));
      (cross ? setA : setB).push_back(outS(u, c));
    }
    if (setA.size() > 1) comm.pins(u).join(setA);
    if (setB.size() > 1) comm.pins(u).join(setB);
  };

  // Configure the forest once; afterwards only nodes whose activity
  // flipped rewire (the dirty set the incremental circuit engine
  // exploits).
  comm.resetPins();
  for (int u = 0; u < n; ++u) {
    if (member[u]) wireNode(u);
  }

  int iteration = 0;
  std::vector<char> bitsNow(n, 0);
  std::vector<int> flipped;
  while (true) {
    // --- Round 1: rewire flipped crossings, roots inject, read bits.
    for (const int u : flipped) {
      comm.pins(u).reset();
      wireNode(u);
    }
    flipped.clear();
    for (int u = 0; u < n; ++u) {
      if (member[u] && parent[u] == -1 && !children[u].empty())
        comm.beepPin(u, outP(u, children[u].front()));
    }
    comm.deliver();

    for (int u = 0; u < n; ++u) {
      bool bit = false;
      if (member[u]) {
        const bool cross = active[u] != 0;
        if (!children[u].empty()) {
          // The signal leaves on the secondary out-lane iff the partition
          // set containing an out-secondary pin received the beep; this
          // holds for both the straight and the crossed configuration.
          bit = comm.receivedPin(u, outS(u, children[u].front()));
        } else if (parent[u] >= 0) {
          // Leaf: virtual out side; its crossing routes inP (crossed) or
          // inS (straight) to the secondary out-lane.
          bit = comm.receivedPin(u, cross ? inP(u) : inS(u));
        } else {
          bit = false;  // isolated root
        }
      }
      bitsNow[u] = bit ? 1 : 0;
      if (bit) result.depth[u] |= (std::uint64_t{1} << iteration);
    }
    result.bits.push_back(bitsNow);

    bool anyActive = false;
    for (int u = 0; u < n; ++u) {
      if (active[u] && bitsNow[u]) {
        active[u] = 0;
        flipped.push_back(u);
      }
      anyActive = anyActive || active[u] != 0;
    }

    // --- Round 2: termination check on the same circuits.
    for (int u = 0; u < n; ++u) {
      if (!active[u]) continue;
      comm.beepPin(u, inP(u));
      comm.beepPin(u, inS(u));
    }
    comm.deliver();
    ++iteration;
    if (!anyActive) break;
  }

  result.iterations = iteration;
  result.rounds = 2L * iteration;
  return result;
}

}  // namespace aspf

#include "pasc/pasc_prefix.hpp"

namespace aspf {

PascResult runPascPrefixSum(Comm& comm, std::span<const int> stops,
                            std::span<const char> weight,
                            const PascOptions& extra) {
  PascOptions options;
  options.weight.assign(weight.begin(), weight.end());
  options.onBits = extra.onBits;
  return runPascChain(comm, stops, options);
}

}  // namespace aspf

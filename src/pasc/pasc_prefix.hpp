#pragma once
// Prefix-sum PASC (Corollary 6): given a chain of amoebots and 0/1 weights,
// every amoebot learns its weighted prefix sum bit by bit, in O(log W)
// iterations where W is the total weight. Weight-1 amoebots participate
// actively; weight-0 amoebots forward signals and read their prefix sums off
// the forwarded lanes. Thin wrapper around the unified chain implementation.
#include <span>

#include "pasc/pasc_chain.hpp"

namespace aspf {

/// weight[i] in {0,1} corresponds to stops[i].
PascResult runPascPrefixSum(Comm& comm, std::span<const int> stops,
                            std::span<const char> weight,
                            const PascOptions& extra = {});

}  // namespace aspf

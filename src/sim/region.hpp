#pragma once
// A Region is a (sub)set of the amoebot structure with its induced adjacency.
// All circuit protocols in this library run on a Region: the whole structure
// is just the trivial region. The divide & conquer algorithm (Sec 5.4) runs
// sub-protocols on overlapping regions; circuits built on a region never
// leave it (amoebots outside keep singleton partition sets, which do not
// relay signals -- exactly as in the model).
//
// Complexity contract: construction and the helpers (isConnectedInduced,
// bfsDistancesLocal) are host-side O(region size) computations charging no
// rounds; only protocols executed through a Comm on the region spend
// rounds.
//
// Thread-safety: immutable after whole()/of(); concurrent reads are safe.
// The referenced structure must outlive the region.
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/structure.hpp"

namespace aspf {

class Region {
 public:
  static Region whole(const AmoebotStructure& s);

  /// Region induced by the given global amoebot ids (deduplicated).
  static Region of(const AmoebotStructure& s, std::vector<int> globalIds);

  const AmoebotStructure& structure() const noexcept { return *s_; }

  int size() const noexcept { return static_cast<int>(globalIds_.size()); }

  /// Local index of the neighbor in direction d, or -1 if that node is
  /// unoccupied or outside the region. (Inline: this is the hottest call
  /// of the circuit engine's link wiring.)
  int neighbor(int local, Dir d) const noexcept {
    return nbr_[local][static_cast<int>(d)];
  }

  int degree(int local) const noexcept;

  Coord coordOf(int local) const noexcept {
    return s_->coordOf(globalIds_[local]);
  }

  int globalId(int local) const noexcept { return globalIds_[local]; }

  /// Local index of a global id, or -1 if not in the region.
  int localOf(int globalId) const noexcept;

  std::span<const int> globalIds() const noexcept { return globalIds_; }

  bool isWhole() const noexcept { return whole_; }

  /// True iff the induced subgraph is connected.
  bool isConnectedInduced() const;

  /// Exact BFS distances within the region from the given local sources.
  std::vector<int> bfsDistancesLocal(std::span<const int> localSources) const;

 private:
  const AmoebotStructure* s_ = nullptr;
  bool whole_ = false;
  std::vector<int> globalIds_;           // local -> global
  // global -> local reverse index for subset regions: a dense
  // structure-sized array (-1 outside) when the subset is a sizable
  // fraction of the structure, else a hash map so that building many
  // small sub-regions (the divide & conquer recursion) stays
  // O(|region|), not O(n).
  std::vector<int> localIndex_;          // dense mode (empty => map mode)
  std::unordered_map<int, int> localMap_;
  std::vector<std::array<int, 6>> nbr_;  // induced adjacency, local ids
};

}  // namespace aspf

#pragma once
// Lightweight substrate counters threaded through the circuit simulator.
//
// `rounds` (on Comm and in every algorithm result) is the *model* cost:
// synchronous rounds of the reconfigurable-circuit protocol, including
// charged-but-not-simulated synchronization rounds. These counters instead
// measure what the *simulator* physically did -- deliver() executions and
// beeps queued -- which is what host wall-time scales with. The scenario runner snapshots them around every algorithm
// execution and reports the deltas next to rounds and wall-time, so a perf
// PR can tell "fewer model rounds" apart from "cheaper simulation".
//
// Thread-safety: the counters are thread_local, so concurrent scenario
// executions on a thread pool never contend or cross-pollute; each worker
// reads deltas of its own stream. Increments cost one TLS add per event
// (events are whole rounds, not per-pin work), so the instrumentation is
// far below measurement noise.
namespace aspf {

struct SimCounters {
  long delivers = 0;  ///< Comm::deliver() executions (physical rounds).
  long beeps = 0;     ///< Beeps queued on partition sets.

  SimCounters operator-(const SimCounters& base) const noexcept {
    return {delivers - base.delivers, beeps - base.beeps};
  }
};

/// The calling thread's counters (mutable; monotonically increasing).
/// Callers wanting a per-execution reading snapshot before and subtract.
SimCounters& simCounters() noexcept;

}  // namespace aspf

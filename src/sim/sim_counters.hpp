#pragma once
// Lightweight substrate counters threaded through the circuit simulator.
//
// `rounds` (on Comm and in every algorithm result) is the *model* cost:
// synchronous rounds of the reconfigurable-circuit protocol, including
// charged-but-not-simulated synchronization rounds. These counters instead
// measure what the *simulator* physically did -- deliver() executions,
// beeps queued, union-find unions, and the dirty-tracking statistics of
// the incremental circuit engine -- which is what host wall-time scales
// with. The scenario runner snapshots them around every algorithm
// execution and reports the deltas next to rounds and wall-time, so a perf
// PR can tell "fewer model rounds" apart from "cheaper simulation".
//
// Thread-safety: the counters are thread_local, so concurrent scenario
// executions on a thread pool never contend or cross-pollute; each worker
// reads deltas of its own stream. Increments cost one TLS add per event
// (events are whole rounds or whole unions, not per-pin work), so the
// instrumentation is far below measurement noise.
//
// Sharded substrate (sim-threads > 1): SimPool workers never touch these
// counters. Comm::deliver() accumulates per-shard union counts in its own
// shard scratch and rolls them up into the protocol thread's counters
// once per round, so `unions`, `incr_rounds` and `rebuild_rounds` are
// bit-identical to a serial run at any sim-thread count (the successful
// union count of a (re)build is |pins| - |circuits| of the recomputed
// subgraph, independent of union order or partitioning).
namespace aspf {

struct SimCounters {
  long delivers = 0;  ///< Comm::deliver() executions (physical rounds).
  long beeps = 0;     ///< Beeps queued on partition sets.

  /// Successful union-find unions performed while (re)building circuits.
  /// The rebuild engine pays this for every pin pair every round; the
  /// incremental engine only for affected circuits.
  long unions = 0;

  /// Amoebots whose pin configuration truly changed, summed over all
  /// delivers. `dirtyAmoebots / amoebotRounds` is the dirty-amoebot
  /// fraction the BenchReport exposes as `dirty_frac`.
  long dirtyAmoebots = 0;

  /// Sum of region sizes over all delivers (the denominator of the
  /// dirty-amoebot fraction).
  long amoebotRounds = 0;

  /// Delivers served by the incremental union path (including no-change
  /// rounds, which cost O(queued beeps)).
  long incrementalRounds = 0;

  /// Delivers that rebuilt all circuits from scratch: every round of the
  /// Rebuild engine, plus the first round and high-dirty-fraction rounds
  /// of the incremental engine.
  long rebuildRounds = 0;

  /// 32-byte snapshot block compares performed by the dirty drain (one
  /// per touched amoebot per deliver, on either drain path and any
  /// kernel ISA -- a logical count, not a SIMD-instruction count).
  long blockCompares = 0;

  /// Words zeroed by the tracked bitset resets (delivered-beep plane +
  /// dirty-pin plane), i.e. the per-round invalidation cost the packed
  /// planes actually paid. ISA- and sim-thread-independent.
  long bitsetWordsScanned = 0;

  SimCounters operator-(const SimCounters& base) const noexcept {
    return {delivers - base.delivers,
            beeps - base.beeps,
            unions - base.unions,
            dirtyAmoebots - base.dirtyAmoebots,
            amoebotRounds - base.amoebotRounds,
            incrementalRounds - base.incrementalRounds,
            rebuildRounds - base.rebuildRounds,
            blockCompares - base.blockCompares,
            bitsetWordsScanned - base.bitsetWordsScanned};
  }
};

/// The calling thread's counters (mutable; monotonically increasing).
/// Callers wanting a per-execution reading snapshot before and subtract.
SimCounters& simCounters() noexcept;

}  // namespace aspf

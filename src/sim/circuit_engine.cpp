#include "sim/circuit_engine.hpp"

#include <algorithm>
#include <numeric>

namespace aspf {
namespace {

class Dsu {
 public:
  explicit Dsu(int n) : parent_(n, -1) {}

  int find(int x) {
    int r = x;
    while (parent_[r] >= 0) r = parent_[r];
    while (parent_[x] >= 0) {
      const int next = parent_[x];
      parent_[x] = r;
      x = next;
    }
    return r;
  }

  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (parent_[a] > parent_[b]) std::swap(a, b);
    parent_[a] += parent_[b];
    parent_[b] = a;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

CircuitInfo analyzeCircuits(const Comm& comm) {
  const Region& region = comm.region();
  const int n = region.size();
  const int lanes = comm.lanes();
  const int ppa = kNumDirs * lanes;
  Dsu dsu(n * ppa);
  auto pinNode = [&](int a, int pinIdx) { return a * ppa + pinIdx; };

  for (int a = 0; a < n; ++a) {
    const ConstPinConfigRef pc = comm.pins(a);
    std::array<int, kNumDirs * kMaxLanes> first{};
    first.fill(-1);
    for (int p = 0; p < ppa; ++p) {
      const int label = pc.labelAt(p);
      if (first[label] < 0)
        first[label] = p;
      else
        dsu.unite(pinNode(a, first[label]), pinNode(a, p));
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int di = 0; di < 3; ++di) {
      const Dir d = static_cast<Dir>(di);
      const int b = region.neighbor(a, d);
      if (b < 0) continue;
      for (int lane = 0; lane < lanes; ++lane) {
        dsu.unite(
            pinNode(a, pinIndex({d, static_cast<std::uint8_t>(lane)}, lanes)),
            pinNode(b, pinIndex({opposite(d), static_cast<std::uint8_t>(lane)},
                                lanes)));
      }
    }
  }

  CircuitInfo info;
  info.pinsPerAmoebot = ppa;
  info.circuitOf.assign(static_cast<std::size_t>(n) * ppa, -1);
  std::vector<int> dense(static_cast<std::size_t>(n) * ppa, -1);
  for (int a = 0; a < n; ++a) {
    for (int p = 0; p < ppa; ++p) {
      const int root = dsu.find(pinNode(a, p));
      if (dense[root] < 0) dense[root] = info.circuitCount++;
      info.circuitOf[static_cast<std::size_t>(a) * ppa + p] = dense[root];
    }
  }
  info.amoebotsOnCircuit.assign(info.circuitCount, 0);
  std::vector<int> lastSeen(info.circuitCount, -1);
  for (int a = 0; a < n; ++a) {
    for (int p = 0; p < ppa; ++p) {
      const int c = info.circuitAt(a, p);
      if (lastSeen[c] != a) {
        lastSeen[c] = a;
        ++info.amoebotsOnCircuit[c];
      }
    }
  }
  return info;
}

}  // namespace aspf

// SSE2 kernel table. Compiled with -msse2 (see CMakeLists.txt); on
// targets where the flag is unavailable the TU degrades to a stub that
// reports the table absent, so the dispatch layer never sees a function
// it cannot call.
#include "sim/simd_kernels.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace aspf::simd {
namespace {

bool blockEqualSse2(const std::int8_t* a, const std::int8_t* b) {
  const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 16));
  const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16));
  const __m128i eq =
      _mm_and_si128(_mm_cmpeq_epi8(a0, b0), _mm_cmpeq_epi8(a1, b1));
  return _mm_movemask_epi8(eq) == 0xFFFF;
}

void blockCopySse2(std::int8_t* dst, const std::int8_t* src) {
  const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
  const __m128i s1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 16));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), s0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16), s1);
}

void blockEqualManySse2(const std::int8_t* cur, const std::int8_t* prev,
                        const int* locals, std::size_t count,
                        std::uint8_t* eq) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off =
        static_cast<std::size_t>(locals[i]) * kBlockBytes;
    eq[i] = blockEqualSse2(cur + off, prev + off) ? 1 : 0;
  }
}

int findLabelPinSse2(const std::int8_t* labels, std::int8_t label) {
  const __m128i needle = _mm_set1_epi8(label);
  const __m128i l0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels));
  const __m128i l1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(labels + 16));
  const unsigned mask =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(l0, needle))) |
      (static_cast<unsigned>(
           _mm_movemask_epi8(_mm_cmpeq_epi8(l1, needle)))
       << 16);
  if (mask == 0) return -1;
  return __builtin_ctz(mask);  // lowest set bit == first matching byte
}

// SSE2 has no gathers; interleave four independent chases so the pointer
// walks overlap their cache misses. Each chase is independent, so the
// roots are identical to the one-at-a-time scalar loop.
void resolveRootsSse2(const int* parent, const int* nodes, std::size_t count,
                      int* roots) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    int x0 = nodes[i], x1 = nodes[i + 1], x2 = nodes[i + 2],
        x3 = nodes[i + 3];
    bool again = true;
    while (again) {
      again = false;
      if (parent[x0] >= 0) { x0 = parent[x0]; again = true; }
      if (parent[x1] >= 0) { x1 = parent[x1]; again = true; }
      if (parent[x2] >= 0) { x2 = parent[x2]; again = true; }
      if (parent[x3] >= 0) { x3 = parent[x3]; again = true; }
    }
    roots[i] = x0;
    roots[i + 1] = x1;
    roots[i + 2] = x2;
    roots[i + 3] = x3;
  }
  for (; i < count; ++i) {
    int x = nodes[i];
    while (parent[x] >= 0) x = parent[x];
    roots[i] = x;
  }
}

constexpr KernelTable kSse2Table = {
    Isa::Sse2,       "sse2",             blockEqualSse2,
    blockCopySse2,   blockEqualManySse2, findLabelPinSse2,
    resolveRootsSse2};

}  // namespace

const KernelTable* sse2Table() noexcept { return &kSse2Table; }

}  // namespace aspf::simd

#else  // !defined(__SSE2__)

namespace aspf::simd {
const KernelTable* sse2Table() noexcept { return nullptr; }
}  // namespace aspf::simd

#endif

#pragma once
// Minimal aligned allocator for the pin arena's byte planes.
//
// std::vector<int8_t> only guarantees alignof(int8_t) = 1; the arena's
// 32-byte-per-amoebot label blocks are loaded as whole SIMD registers by
// the kernels in simd_kernels.hpp, and while AVX2 loadu tolerates
// unaligned pointers, guaranteed 32-byte alignment keeps every block load
// within one cache line (a block never straddles two lines) and lets the
// kernels assume aligned semantics forever. The allocator forwards to the
// C++17 aligned operator new, so it works with any vector operation
// (copy, move, assign) and is stateless (all instances compare equal).
#include <cstddef>
#include <new>

namespace aspf {

template <class T, std::size_t Align>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace aspf

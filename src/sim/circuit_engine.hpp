#pragma once
// Standalone circuit analysis: given the pin configurations of a Comm,
// compute the circuits (connected components of partition sets, Section
// 1.2). Comm itself recomputes this per round internally; this module
// exposes the structure for tests, visualization, and statistics (e.g. how
// many circuits a configuration induces, which amoebots a circuit spans).
//
// Complexity contract: charges no rounds (it is an observer, not a
// protocol step); host cost is one union-find pass over all pins,
// O(n * lanes * alpha).
//
// Thread-safety: read-only on the Comm; safe concurrently with other
// readers, not with a concurrent deliver() on the same Comm.
#include <vector>

#include "sim/comm.hpp"

namespace aspf {

struct CircuitInfo {
  /// circuitOf[local][pinIdx] = dense circuit id of the circuit containing
  /// that pin's partition set.
  std::vector<std::vector<int>> circuitOf;
  int circuitCount = 0;

  /// Number of distinct amoebots each circuit touches.
  std::vector<int> amoebotsOnCircuit;
};

/// Analyzes the current pin configurations of the given Comm.
CircuitInfo analyzeCircuits(const Comm& comm);

}  // namespace aspf

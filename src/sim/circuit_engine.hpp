#pragma once
// Standalone circuit analysis: given the pin configurations of a Comm,
// compute the circuits (connected components of partition sets, Section
// 1.2). Comm itself maintains this incrementally per round; this module
// recomputes the structure from scratch for tests, visualization,
// statistics (e.g. how many circuits a configuration induces, which
// amoebots a circuit spans), and as the label-level oracle the
// differential tests compare both Comm engines against.
//
// Complexity contract: charges no rounds (it is an observer, not a
// protocol step); host cost is one union-find pass over all pins,
// O(n * lanes * alpha).
//
// Thread-safety: read-only on the Comm; safe concurrently with other
// readers, not with a concurrent deliver() on the same Comm.
#include <vector>

#include "sim/comm.hpp"

namespace aspf {

struct CircuitInfo {
  /// Dense circuit ids, one per pin, in a flat row-major array of
  /// n * pinsPerAmoebot entries (same layout as the pin arena).
  std::vector<int> circuitOf;
  int pinsPerAmoebot = 0;
  int circuitCount = 0;

  /// Number of distinct amoebots each circuit touches.
  std::vector<int> amoebotsOnCircuit;

  /// Dense circuit id of the circuit containing pin `pinIdx` of `local`.
  int circuitAt(int local, int pinIdx) const noexcept {
    return circuitOf[static_cast<std::size_t>(local) * pinsPerAmoebot +
                     pinIdx];
  }
};

/// Analyzes the current pin configurations of the given Comm.
CircuitInfo analyzeCircuits(const Comm& comm);

}  // namespace aspf

// AVX2 kernel table. Compiled with -mavx2 (see CMakeLists.txt); selected
// at runtime only after __builtin_cpu_supports("avx2"), so building it
// into a portable binary is safe. Degrades to an absent-table stub when
// the toolchain cannot target AVX2.
#include "sim/simd_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace aspf::simd {
namespace {

bool blockEqualAvx2(const std::int8_t* a, const std::int8_t* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  // All 32 compare lanes equal iff the movemask is all-ones.
  const __m256i eq = _mm256_cmpeq_epi8(va, vb);
  return _mm256_movemask_epi8(eq) == -1;
}

void blockCopyAvx2(std::int8_t* dst, const std::int8_t* src) {
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(dst),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
}

void blockEqualManyAvx2(const std::int8_t* cur, const std::int8_t* prev,
                        const int* locals, std::size_t count,
                        std::uint8_t* eq) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off =
        static_cast<std::size_t>(locals[i]) * kBlockBytes;
    eq[i] = blockEqualAvx2(cur + off, prev + off) ? 1 : 0;
  }
}

int findLabelPinAvx2(const std::int8_t* labels, std::int8_t label) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(labels));
  const __m256i eq = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(label));
  const unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(eq));
  if (mask == 0) return -1;
  return __builtin_ctz(mask);  // lowest set bit == first matching byte
}

// Eight parent-pointer chases per iteration via gathered loads. Lanes
// that reached a root (negative parent entry) keep their value through
// the blend, so re-gathering them is harmless; the loop exits once no
// lane advanced. Chases are independent and the walk never writes, so
// each lane's root equals the scalar chase exactly.
void resolveRootsAvx2(const int* parent, const int* nodes, std::size_t count,
                      int* roots) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nodes + i));
    while (true) {
      const __m256i par = _mm256_i32gather_epi32(parent, cur, 4);
      // Sign mask of the gathered parents: all-ones lanes are roots.
      const __m256i atRoot = _mm256_srai_epi32(par, 31);
      const __m256i next = _mm256_blendv_epi8(par, cur, atRoot);
      const __m256i moved = _mm256_xor_si256(next, cur);
      cur = next;
      if (_mm256_testz_si256(moved, moved)) break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(roots + i), cur);
  }
  for (; i < count; ++i) {
    int x = nodes[i];
    while (parent[x] >= 0) x = parent[x];
    roots[i] = x;
  }
}

constexpr KernelTable kAvx2Table = {
    Isa::Avx2,       "avx2",             blockEqualAvx2,
    blockCopyAvx2,   blockEqualManyAvx2, findLabelPinAvx2,
    resolveRootsAvx2};

}  // namespace

const KernelTable* avx2Table() noexcept { return &kAvx2Table; }

}  // namespace aspf::simd

#else  // !defined(__AVX2__)

namespace aspf::simd {
const KernelTable* avx2Table() noexcept { return nullptr; }
}  // namespace aspf::simd

#endif

#include "sim/pin_config.hpp"

#include <cassert>

namespace aspf {

PinConfig::PinConfig(int lanes) : lanes_(lanes) {
  assert(lanes >= 1 && lanes <= kMaxLanes);
  label_.resize(static_cast<std::size_t>(kNumDirs) * lanes);
  reset();
}

void PinConfig::reset() {
  for (int i = 0; i < pinCount(); ++i)
    label_[i] = static_cast<std::int8_t>(i);
}

int PinConfig::join(std::span<const Pin> pins) {
  assert(!pins.empty());
  const int lead = pinIndex(pins.front(), lanes_);
  for (const Pin p : pins)
    label_[pinIndex(p, lanes_)] = static_cast<std::int8_t>(lead);
  return lead;
}

}  // namespace aspf

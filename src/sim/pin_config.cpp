#include "sim/pin_config.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace aspf {
namespace {

// Fixed-size block helpers: a constant byte count lets the compiler lower
// these to a couple of word moves instead of libc calls (the arena's
// snapshot/compare/restore run once per touched amoebot per round, which
// on PASC-style protocols is every stop of a chain).
inline void copyBlock(std::int8_t* dst, const std::int8_t* src) noexcept {
  std::memcpy(dst, src, kPinStride);
}
inline bool equalBlock(const std::int8_t* a, const std::int8_t* b) noexcept {
  return std::memcmp(a, b, kPinStride) == 0;
}

}  // namespace

PinArena::PinArena(int n, int lanes, int shardCount)
    : n_(n), lanes_(lanes), ppa_(kNumDirs * lanes) {
  if (n < 0) throw std::invalid_argument("PinArena: negative size");
  if (lanes < 1 || lanes > kMaxLanes)
    throw std::invalid_argument(
        "PinArena: lanes must be in [1, " + std::to_string(kMaxLanes) +
        "], got " + std::to_string(lanes));
  shardCount_ = std::clamp(shardCount, 1, std::max(n_, 1));
  shardSize_ = (std::max(n_, 1) + shardCount_ - 1) / shardCount_;
  static_assert(kPinStride >= kNumDirs * kMaxLanes);
  const std::size_t bytes = static_cast<std::size_t>(n) * kPinStride;
  labels_.resize(bytes);
  next_.resize(bytes);
  prev_.resize(bytes);
  prevNext_.resize(bytes);
  for (int a = 0; a < n_; ++a) {
    std::int8_t* l = mutableLabelsOf(a);
    std::int8_t* nx = next_.data() + static_cast<std::size_t>(a) * kPinStride;
    // Identity over the whole stride: the tail beyond ppa_ is never
    // mutated, so block compares see stable bytes there.
    for (int p = 0; p < kPinStride; ++p) {
      l[p] = static_cast<std::int8_t>(p);
      nx[p] = static_cast<std::int8_t>(p);
    }
  }
  touched_.assign(n_, 0);
  joined_.assign(n_, 0);
  touchedLists_.resize(shardCount_);
  joinedLists_.resize(shardCount_);
}

void PinArena::beginMutate(int local) {
  if (touched_[local]) return;
  touched_[local] = 1;
  touchedLists_[shardOf(local)].push_back(local);
  const std::size_t off = static_cast<std::size_t>(local) * kPinStride;
  copyBlock(prev_.data() + off, labels_.data() + off);
  copyBlock(prevNext_.data() + off, next_.data() + off);
}

void PinArena::rebuildGroups(int local) {
  const std::int8_t* l = labelsOf(local);
  std::int8_t* nx = next_.data() + static_cast<std::size_t>(local) * kPinStride;
  std::int8_t first[kNumDirs * kMaxLanes];
  std::int8_t last[kNumDirs * kMaxLanes];
  for (int p = 0; p < ppa_; ++p) first[p] = -1;
  for (int p = 0; p < ppa_; ++p) {
    const int label = l[p];
    if (first[label] < 0) {
      first[label] = static_cast<std::int8_t>(p);
    } else {
      nx[last[label]] = static_cast<std::int8_t>(p);
    }
    last[label] = static_cast<std::int8_t>(p);
  }
  for (int p = 0; p < ppa_; ++p) {
    if (first[p] >= 0) nx[last[p]] = first[p];  // close the cycle
  }
}

void PinArena::reset(int local) {
  beginMutate(local);
  std::int8_t* l = mutableLabelsOf(local);
  for (int p = 0; p < ppa_; ++p) l[p] = static_cast<std::int8_t>(p);
}

int PinArena::join(int local, std::span<const Pin> pins) {
  if (pins.empty())
    throw std::invalid_argument("PinArena::join: empty pin set");
  beginMutate(local);
  std::int8_t* l = mutableLabelsOf(local);
  const int lead = pinIndex(pins.front(), lanes_);
  for (const Pin p : pins)
    l[pinIndex(p, lanes_)] = static_cast<std::int8_t>(lead);
  // next_ is left stale here and reconciled once per round in takeDirty():
  // protocols often issue several joins (or a reset-then-identical-rejoin)
  // per amoebot per round, and only the net effect matters.
  if (!joined_[local]) {
    joined_[local] = 1;
    joinedLists_[shardOf(local)].push_back(local);
  }
  return lead;
}

void PinArena::resetAllShard(int shard) {
  for (const int a : joinedLists_[shard]) {
    reset(a);
    joined_[a] = 0;
  }
  joinedLists_[shard].clear();
}

void PinArena::resetAll() {
  for (int s = 0; s < shardCount_; ++s) resetAllShard(s);
}

void PinArena::takeDirtyShard(int shard, std::vector<int>* out) {
  for (const int a : touchedLists_[shard]) {
    touched_[a] = 0;
    const std::size_t off = static_cast<std::size_t>(a) * kPinStride;
    if (!equalBlock(labels_.data() + off, prev_.data() + off)) {
      rebuildGroups(a);
      out->push_back(a);
    } else {
      // Net no-op rewrite: labels are back to the snapshot, so the
      // snapshot successor lists are the current ones too.
      copyBlock(next_.data() + off, prevNext_.data() + off);
    }
  }
  touchedLists_[shard].clear();
}

void PinArena::takeDirty(std::vector<int>* out) {
  for (int s = 0; s < shardCount_; ++s) takeDirtyShard(s, out);
}

void PinArena::remap(int newN, std::span<const int> oldOf, int shardCount) {
  if (newN < 0) throw std::invalid_argument("PinArena::remap: negative size");
  if (static_cast<int>(oldOf.size()) != newN)
    throw std::invalid_argument(
        "PinArena::remap: mapping size does not match the new amoebot count");
  const std::size_t bytes = static_cast<std::size_t>(newN) * kPinStride;
  std::vector<std::int8_t> labels(bytes);
  std::vector<std::int8_t> next(bytes);
  std::vector<std::uint8_t> joined(newN, 0);
  for (int i = 0; i < newN; ++i) {
    const int o = oldOf[i];
    std::int8_t* l = labels.data() + static_cast<std::size_t>(i) * kPinStride;
    std::int8_t* nx = next.data() + static_cast<std::size_t>(i) * kPinStride;
    if (o >= 0) {
      if (o >= n_)
        throw std::invalid_argument(
            "PinArena::remap: old local id out of range");
      copyBlock(l, labelsOf(o));
      copyBlock(nx, nextOf(o));
      joined[i] = joined_[o];
    } else {
      for (int p = 0; p < kPinStride; ++p) {
        l[p] = static_cast<std::int8_t>(p);
        nx[p] = static_cast<std::int8_t>(p);
      }
    }
  }
  n_ = newN;
  shardCount_ = std::clamp(shardCount, 1, std::max(n_, 1));
  shardSize_ = (std::max(n_, 1) + shardCount_ - 1) / shardCount_;
  labels_ = std::move(labels);
  next_ = std::move(next);
  // The carried-over configuration IS the last delivered state: snapshots
  // coincide with the current labels, so the incremental engine's
  // old-circuit traversal sees a consistent picture for every amoebot.
  prev_ = labels_;
  prevNext_ = next_;
  touched_.assign(n_, 0);
  joined_ = std::move(joined);
  touchedLists_.assign(shardCount_, {});
  joinedLists_.assign(shardCount_, {});
  for (int i = 0; i < n_; ++i) {
    if (joined_[i]) joinedLists_[shardOf(i)].push_back(i);
  }
}

int PinArena::touchedCount() const noexcept {
  int total = 0;
  for (const std::vector<int>& list : touchedLists_)
    total += static_cast<int>(list.size());
  return total;
}

}  // namespace aspf

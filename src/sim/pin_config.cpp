#include "sim/pin_config.hpp"

#include <stdexcept>
#include <string>

#include "sim/simd_kernels.hpp"

namespace aspf {

PinArena::PinArena(int n, int lanes, int shardCount)
    : n_(n),
      lanes_(lanes),
      ppa_(kNumDirs * lanes),
      kernels_(&simd::kernels()) {
  if (n < 0) throw std::invalid_argument("PinArena: negative size");
  if (lanes < 1 || lanes > kMaxLanes)
    throw std::invalid_argument(
        "PinArena: lanes must be in [1, " + std::to_string(kMaxLanes) +
        "], got " + std::to_string(lanes));
  shardCount_ = std::clamp(shardCount, 1, std::max(n_, 1));
  shardSize_ = (std::max(n_, 1) + shardCount_ - 1) / shardCount_;
  static_assert(kPinStride >= kNumDirs * kMaxLanes);
  static_assert(kPinStride == simd::kBlockBytes);
  const std::size_t bytes = static_cast<std::size_t>(n) * kPinStride;
  labels_.resize(bytes);
  prev_.resize(bytes);
  // Dense fused hot plane: singleton configurations are all-zero deltas
  // (every pin is its own successor and its own lead), so zero-filled
  // records are already correct. The link fields stay 0 until the owning
  // Comm fills them from the region adjacency.
  hot_.assign(static_cast<std::size_t>(n) * ppa_, HotPin{});
  for (int a = 0; a < n_; ++a) {
    std::int8_t* l = mutableLabelsOf(a);
    // Identity over the whole stride: the tail beyond ppa_ is never
    // mutated, so block compares see stable bytes there, and a label scan
    // can never report a tail byte as a valid pin (tail values >= ppa_).
    for (int p = 0; p < kPinStride; ++p) l[p] = static_cast<std::int8_t>(p);
  }
  touched_.assign(n_, 0);
  joined_.assign(n_, 0);
  touchedLists_.resize(shardCount_);
  joinedLists_.resize(shardCount_);
  eqScratch_.resize(shardCount_);
}

void PinArena::beginMutate(int local) {
  if (touched_[local]) return;
  touched_[local] = 1;
  touchedLists_[shardOf(local)].push_back(local);
  const std::size_t off = static_cast<std::size_t>(local) * kPinStride;
  kernels_->blockCopy(prev_.data() + off, labels_.data() + off);
  HotPin* h = hot_.data() + static_cast<std::size_t>(local) * ppa_;
  for (int p = 0; p < ppa_; ++p) {
    h[p].prevDelta = h[p].delta;
    h[p].prevLeadDelta = h[p].leadDelta;
  }
}

void PinArena::rebuildGroups(int local) {
  const std::int8_t* l = labelsOf(local);
  HotPin* h = hot_.data() + static_cast<std::size_t>(local) * ppa_;
  std::int8_t first[kNumDirs * kMaxLanes];
  std::int8_t last[kNumDirs * kMaxLanes];
  for (int p = 0; p < ppa_; ++p) first[p] = -1;
  for (int p = 0; p < ppa_; ++p) {
    const int label = l[p];
    if (first[label] < 0) {
      first[label] = static_cast<std::int8_t>(p);
    } else {
      h[last[label]].delta = static_cast<std::int8_t>(p - last[label]);
    }
    last[label] = static_cast<std::int8_t>(p);
    // Canonical lead = the set's lowest-indexed member (first[label] is
    // set by the time any member reaches this line). NOT the label
    // value: overlapping joins can alias labels (a pin keeps label L
    // after pin L itself was re-joined elsewhere), but the first member
    // with a given label is unambiguous -- and is exactly what a
    // first-match label scan (simd findLabelPin) returns.
    h[p].leadDelta = static_cast<std::int8_t>(first[label] - p);
  }
  for (int p = 0; p < ppa_; ++p) {
    if (first[p] >= 0)
      h[last[p]].delta = static_cast<std::int8_t>(first[p] - last[p]);  // close
  }
}

void PinArena::reset(int local) {
  beginMutate(local);
  std::int8_t* l = mutableLabelsOf(local);
  for (int p = 0; p < ppa_; ++p) l[p] = static_cast<std::int8_t>(p);
}

int PinArena::join(int local, std::span<const Pin> pins) {
  if (pins.empty())
    throw std::invalid_argument("PinArena::join: empty pin set");
  beginMutate(local);
  std::int8_t* l = mutableLabelsOf(local);
  const int lead = pinIndex(pins.front(), lanes_);
  for (const Pin p : pins)
    l[pinIndex(p, lanes_)] = static_cast<std::int8_t>(lead);
  // The hot deltas are left stale here and reconciled once per round in
  // takeDirty():
  // protocols often issue several joins (or a reset-then-identical-rejoin)
  // per amoebot per round, and only the net effect matters.
  if (!joined_[local]) {
    joined_[local] = 1;
    joinedLists_[shardOf(local)].push_back(local);
  }
  return lead;
}

void PinArena::resetAllShard(int shard) {
  for (const int a : joinedLists_[shard]) {
    reset(a);
    joined_[a] = 0;
  }
  joinedLists_[shard].clear();
}

void PinArena::resetAll() {
  for (int s = 0; s < shardCount_; ++s) resetAllShard(s);
}

void PinArena::takeDirtyShard(int shard, std::vector<int>* out) {
  std::vector<int>& touchedList = touchedLists_[shard];
  if (touchedList.empty()) return;
  // One batched pass of 32-byte block compares over all touched amoebots
  // (the dispatch table's blockEqualMany), then a serial sweep over the
  // 0/1 mask in list order -- so `out` is filled in exactly the order the
  // per-amoebot compare loop produced.
  std::vector<std::uint8_t>& eq = eqScratch_[shard];
  eq.resize(touchedList.size());
  kernels_->blockEqualMany(labels_.data(), prev_.data(), touchedList.data(),
                           touchedList.size(), eq.data());
  for (std::size_t i = 0; i < touchedList.size(); ++i) {
    const int a = touchedList[i];
    touched_[a] = 0;
    if (!eq[i]) {
      rebuildGroups(a);
      out->push_back(a);
    } else {
      // Net no-op rewrite: labels are back to the snapshot, so the
      // snapshot deltas are the current ones too.
      HotPin* h = hot_.data() + static_cast<std::size_t>(a) * ppa_;
      for (int p = 0; p < ppa_; ++p) {
        h[p].delta = h[p].prevDelta;
        h[p].leadDelta = h[p].prevLeadDelta;
      }
    }
  }
  touchedList.clear();
}

void PinArena::takeDirty(std::vector<int>* out) {
  for (int s = 0; s < shardCount_; ++s) takeDirtyShard(s, out);
}

void PinArena::remap(int newN, std::span<const int> oldOf, int shardCount) {
  if (newN < 0) throw std::invalid_argument("PinArena::remap: negative size");
  if (static_cast<int>(oldOf.size()) != newN)
    throw std::invalid_argument(
        "PinArena::remap: mapping size does not match the new amoebot count");
  const std::size_t bytes = static_cast<std::size_t>(newN) * kPinStride;
  AlignedLabelVec labels(bytes);
  std::vector<HotPin> hot(static_cast<std::size_t>(newN) * ppa_, HotPin{});
  std::vector<std::uint8_t> joined(newN, 0);
  for (int i = 0; i < newN; ++i) {
    const int o = oldOf[i];
    std::int8_t* l = labels.data() + static_cast<std::size_t>(i) * kPinStride;
    HotPin* h = hot.data() + static_cast<std::size_t>(i) * ppa_;
    if (o >= 0) {
      if (o >= n_)
        throw std::invalid_argument(
            "PinArena::remap: old local id out of range");
      kernels_->blockCopy(l, labelsOf(o));
      // All delta fields are base-independent, so the hot records move
      // verbatim to the new local id. The copied `link` fields are stale
      // absolute nodes of the OLD structure; the owning Comm rebuilds
      // them right after every remap, before any traversal runs.
      const HotPin* oh = hot_.data() + static_cast<std::size_t>(o) * ppa_;
      for (int p = 0; p < ppa_; ++p) {
        h[p] = oh[p];
        // The carried-over configuration IS the last delivered state.
        h[p].prevDelta = h[p].delta;
        h[p].prevLeadDelta = h[p].leadDelta;
      }
      joined[i] = joined_[o];
    } else {
      for (int p = 0; p < kPinStride; ++p) l[p] = static_cast<std::int8_t>(p);
      // h stays all-zero: singleton deltas, current == snapshot.
    }
  }
  n_ = newN;
  shardCount_ = std::clamp(shardCount, 1, std::max(n_, 1));
  shardSize_ = (std::max(n_, 1) + shardCount_ - 1) / shardCount_;
  labels_ = std::move(labels);
  hot_ = std::move(hot);
  // Snapshots coincide with the current labels (the last "delivered"
  // state is by definition the carried-over one), so the incremental
  // engine's old-circuit traversal sees a consistent picture.
  prev_ = labels_;
  touched_.assign(n_, 0);
  joined_ = std::move(joined);
  touchedLists_.assign(shardCount_, {});
  joinedLists_.assign(shardCount_, {});
  eqScratch_.assign(shardCount_, {});
  for (int i = 0; i < n_; ++i) {
    if (joined_[i]) joinedLists_[shardOf(i)].push_back(i);
  }
  ++structureEpoch_;
}

int PinArena::touchedCount() const noexcept {
  int total = 0;
  for (const std::vector<int>& list : touchedLists_)
    total += static_cast<int>(list.size());
  return total;
}

}  // namespace aspf

#pragma once
// Pin configurations (Section 1.2 of the paper). Each edge between adjacent
// amoebots carries `lanes` external links; each link endpoint is a pin. An
// amoebot partitions its pins into partition sets; connected components of
// partition sets (joined by external links) are circuits.
//
// A pin is addressed by (direction, lane). Partition sets are addressed by a
// small integer label local to the amoebot; by default every pin forms a
// singleton set labeled with its own pin index.
//
// Complexity contract: reconfiguring pins is free in the model -- only
// Comm::deliver() charges a round -- matching the paper, where an amoebot
// may set up an arbitrary pin configuration between two rounds.
//
// Thread-safety: a PinConfig is a plain value owned by its Comm; distinct
// Comms (hence distinct protocol executions) may run on distinct threads.
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/coord.hpp"

namespace aspf {

struct Pin {
  Dir dir;
  std::uint8_t lane = 0;
};

inline constexpr int kMaxLanes = 4;

/// Pin index within an amoebot: dir * lanes + lane.
constexpr int pinIndex(Pin p, int lanes) noexcept {
  return static_cast<int>(p.dir) * lanes + p.lane;
}

/// One amoebot's pin configuration: a label per pin. Pins sharing a label
/// form one partition set.
class PinConfig {
 public:
  explicit PinConfig(int lanes);

  int lanes() const noexcept { return lanes_; }
  int pinCount() const noexcept { return kNumDirs * lanes_; }

  /// Reverts to singletons (label of each pin = its own index).
  void reset();

  /// Puts all given pins into one partition set; returns its label.
  int join(std::span<const Pin> pins);

  int labelOf(Pin p) const noexcept { return label_[pinIndex(p, lanes_)]; }
  int labelAt(int pinIdx) const noexcept { return label_[pinIdx]; }

 private:
  int lanes_;
  std::vector<std::int8_t> label_;
};

}  // namespace aspf

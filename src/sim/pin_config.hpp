#pragma once
// Pin configurations (Section 1.2 of the paper) on a flat structure-of-
// arrays arena. Each edge between adjacent amoebots carries `lanes`
// external links; each link endpoint is a pin. An amoebot partitions its
// pins into partition sets; connected components of partition sets (joined
// by external links) are circuits.
//
// A pin is addressed by (direction, lane). Partition sets are addressed by
// a small integer label local to the amoebot; by default every pin forms a
// singleton set labeled with its own pin index.
//
// Storage model: one PinArena per Comm holds ALL amoebots' labels in a
// single contiguous int8 array (`n * kNumDirs * lanes` bytes), instead of a
// vector of per-amoebot objects. Protocols access an amoebot's
// configuration through a PinConfigRef handle (mutating) or a
// ConstPinConfigRef (read-only view); both are trivially-copyable fat
// pointers into the arena. Every mutation is routed through the arena so
// it can snapshot the previous labels and mark the amoebot *touched*; at
// the next Comm::deliver() the arena separates truly-dirty amoebots
// (labels actually changed) from amoebots that were rewritten with
// identical labels -- the common protocol idiom `resetPins(); join(...)`
// with an unchanged configuration therefore contributes nothing to the
// incremental circuit update.
//
// Complexity contract: reconfiguring pins is free in the model -- only
// Comm::deliver() charges a round -- matching the paper, where an amoebot
// may set up an arbitrary pin configuration between two rounds. Host cost:
// join/reset are O(pins written); resetAll is O(non-singleton amoebots),
// not O(n); takeDirty is O(touched amoebots).
//
// Sharding: the arena partitions its amoebots into `shardCount` contiguous
// index ranges and keeps the touched/joined bookkeeping per shard. All
// state an amoebot owns (label block, successor block, snapshot blocks,
// touch mark, shard touch list) lives in exactly one shard, so the
// *Shard() entry points may run concurrently for distinct shards -- this
// is what lets Comm parallelize takeDirty/resetPins and lets protocol
// layers rewire disjoint shards concurrently. The serial entry points
// drain shards in ascending shard order, so a 1-shard arena behaves
// exactly like the pre-sharding code.
//
// Thread-safety: a PinArena is a plain value owned by its Comm; distinct
// Comms (hence distinct protocol executions) may run on distinct threads.
// Within one Comm, concurrent mutation is allowed only through the
// shard-disjoint pattern above.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/coord.hpp"

namespace aspf {

struct Pin {
  Dir dir;
  std::uint8_t lane = 0;
};

inline constexpr int kMaxLanes = 4;

/// Per-amoebot block stride of the arena's label arrays: the next
/// power-of-two above kNumDirs * kMaxLanes (= 24 pins), so snapshot /
/// compare / restore of one amoebot's labels are fixed-size 32-byte
/// operations the compiler fully inlines (no libc memcpy calls on the
/// per-round hot path).
inline constexpr int kPinStride = 32;

/// Pin index within an amoebot: dir * lanes + lane.
constexpr int pinIndex(Pin p, int lanes) noexcept {
  return static_cast<int>(p.dir) * lanes + p.lane;
}

class PinArena;

/// Read-only view of one amoebot's pin configuration: a label per pin.
/// Pins sharing a label form one partition set. Trivially copyable; valid
/// as long as the owning arena (i.e. the Comm) lives.
class ConstPinConfigRef {
 public:
  ConstPinConfigRef(const std::int8_t* labels, int lanes) noexcept
      : labels_(labels), lanes_(lanes) {}

  int lanes() const noexcept { return lanes_; }
  int pinCount() const noexcept { return kNumDirs * lanes_; }

  int labelOf(Pin p) const noexcept { return labels_[pinIndex(p, lanes_)]; }
  int labelAt(int pinIdx) const noexcept { return labels_[pinIdx]; }

 private:
  const std::int8_t* labels_;
  int lanes_;
};

/// Mutating handle to one amoebot's pin configuration. All writes go
/// through the arena so deliver() can tell which amoebots changed.
class PinConfigRef {
 public:
  PinConfigRef(PinArena* arena, int local) noexcept
      : arena_(arena), local_(local) {}

  int lanes() const noexcept;
  int pinCount() const noexcept;

  /// Reverts to singletons (label of each pin = its own index).
  void reset();

  /// Puts all given pins into one partition set; returns its label.
  int join(std::span<const Pin> pins);

  int labelOf(Pin p) const noexcept;
  int labelAt(int pinIdx) const noexcept;

 private:
  PinArena* arena_;
  int local_;
};

/// Flat label storage for all amoebots of one Comm, with dirty tracking.
class PinArena {
 public:
  /// Throws std::invalid_argument unless 1 <= lanes <= kMaxLanes and
  /// n >= 0 (a release build must never size the fixed 32-byte stride for
  /// an out-of-range lane count -- labels past the stride would corrupt
  /// the neighboring amoebot's block). `shardCount` is clamped to
  /// [1, max(n, 1)].
  explicit PinArena(int n, int lanes, int shardCount = 1);

  int size() const noexcept { return n_; }
  int lanes() const noexcept { return lanes_; }
  int pinsPerAmoebot() const noexcept { return ppa_; }

  int shardCount() const noexcept { return shardCount_; }
  int shardOf(int local) const noexcept { return local / shardSize_; }
  /// Both ends clamp to n, so shardBegin(s) <= shardEnd(s) holds for
  /// every legal shard even when ceil-division would leave trailing
  /// shards empty (e.g. 7 amoebots in 5 shards).
  int shardBegin(int shard) const noexcept {
    return std::min(n_, shard * shardSize_);
  }
  int shardEnd(int shard) const noexcept {
    return std::min(n_, (shard + 1) * shardSize_);
  }

  PinConfigRef ref(int local) noexcept { return {this, local}; }
  ConstPinConfigRef cref(int local) const noexcept {
    return {labelsOf(local), lanes_};
  }

  const std::int8_t* labelsOf(int local) const noexcept {
    return labels_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// Circular successor lists: nextOf(a)[p] is the next pin of a's
  /// partition set containing p (wrapping; p itself for singletons).
  /// Following the list from any pin enumerates its whole partition set in
  /// O(set size) -- the incremental engine's component traversal relies on
  /// this instead of scanning all pins per step. Stale for amoebots
  /// mutated since the last takeDirty() (mid-round); takeDirty()
  /// reconciles them, so the lists are consistent whenever the engine
  /// reads them.
  const std::int8_t* nextOf(int local) const noexcept {
    return next_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// The labels the amoebot had at the last takeDirty() (i.e. the last
  /// deliver). Only meaningful for amoebots reported dirty by the most
  /// recent takeDirty(), until their next mutation.
  const std::int8_t* snapshotOf(int local) const noexcept {
    return prev_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// Circular successor lists matching snapshotOf() (the partition sets of
  /// the last delivered round); same validity window.
  const std::int8_t* snapshotNextOf(int local) const noexcept {
    return prevNext_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  int labelAt(int local, int pinIdx) const noexcept {
    return labelsOf(local)[pinIdx];
  }

  void reset(int local);
  int join(int local, std::span<const Pin> pins);

  /// Resets every amoebot to singletons. Cost is proportional to the
  /// number of currently non-singleton amoebots, not to n.
  void resetAll();

  /// Shard-scoped resetAll: resets the possibly-non-singleton amoebots of
  /// one shard. Touches only that shard's state, so distinct shards may
  /// run concurrently; resetAll() == resetAllShard(0..shardCount) in
  /// order.
  void resetAllShard(int shard);

  /// Appends to `out` the amoebots whose labels differ from their state at
  /// the previous takeDirty() call, and clears all touch marks. Snapshots
  /// of the returned amoebots stay readable until they are next mutated.
  /// Drains shards in ascending shard order.
  void takeDirty(std::vector<int>* out);

  /// Shard-scoped takeDirty (the parallel form: distinct shards touch
  /// disjoint state). takeDirty() == takeDirtyShard(0..shardCount) in
  /// order with the per-shard outputs concatenated.
  void takeDirtyShard(int shard, std::vector<int>* out);

  /// Amoebots mutated since the last takeDirty (upper bound on the next
  /// dirty count; used to size the parallel drain decision).
  int touchedCount() const noexcept;

  /// Warm-restart surface: re-shapes the arena for a grown/shrunk amoebot
  /// structure without losing the surviving amoebots' configurations.
  /// `oldOf[i]` names the previous local id whose pin configuration the
  /// new amoebot i inherits (-1 => a newly attached amoebot, which starts
  /// as singletons). Post-conditions: snapshots equal the current labels
  /// for every amoebot (the last "delivered" state is by definition the
  /// carried-over one), no amoebot is touched, joined flags follow the
  /// mapping, and the shard geometry is rebuilt for the new size. The
  /// caller must have reconciled pending mutations first (takeDirty),
  /// or their successor lists would be copied stale -- Comm::rebind does.
  /// Throws std::invalid_argument on a size/range-inconsistent mapping.
  void remap(int newN, std::span<const int> oldOf, int shardCount);

 private:
  friend class PinConfigRef;

  std::int8_t* mutableLabelsOf(int local) noexcept {
    return labels_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// Snapshots the amoebot's labels on its first mutation since the last
  /// takeDirty().
  void beginMutate(int local);

  /// Recomputes the circular successor list of one amoebot from its
  /// labels (called after every label rewrite; O(pins)).
  void rebuildGroups(int local);

  int n_;
  int lanes_;
  int ppa_;
  int shardCount_;
  int shardSize_;
  std::vector<std::int8_t> labels_;      // current labels, n * ppa
  std::vector<std::int8_t> next_;        // circular partition-set lists
  std::vector<std::int8_t> prev_;        // snapshots at last deliver
  std::vector<std::int8_t> prevNext_;
  std::vector<std::uint8_t> touched_;    // mutated since last takeDirty
  std::vector<std::uint8_t> joined_;     // possibly non-singleton
  // Per-shard touch/join lists: beginMutate/join append an amoebot to the
  // lists of its own shard only, keeping shard-disjoint mutation
  // race-free.
  std::vector<std::vector<int>> touchedLists_;
  std::vector<std::vector<int>> joinedLists_;
};

inline int PinConfigRef::lanes() const noexcept { return arena_->lanes(); }
inline int PinConfigRef::pinCount() const noexcept {
  return arena_->pinsPerAmoebot();
}
inline void PinConfigRef::reset() { arena_->reset(local_); }
inline int PinConfigRef::join(std::span<const Pin> pins) {
  return arena_->join(local_, pins);
}
inline int PinConfigRef::labelOf(Pin p) const noexcept {
  return arena_->labelAt(local_, pinIndex(p, arena_->lanes()));
}
inline int PinConfigRef::labelAt(int pinIdx) const noexcept {
  return arena_->labelAt(local_, pinIdx);
}

}  // namespace aspf

#pragma once
// Pin configurations (Section 1.2 of the paper) on a flat structure-of-
// arrays arena. Each edge between adjacent amoebots carries `lanes`
// external links; each link endpoint is a pin. An amoebot partitions its
// pins into partition sets; connected components of partition sets (joined
// by external links) are circuits.
//
// A pin is addressed by (direction, lane). Partition sets are addressed by
// a small integer label local to the amoebot; by default every pin forms a
// singleton set labeled with its own pin index.
//
// Storage model -- hot/cold split: COLD state is what protocols write and
// deliver() snapshots: all amoebots' labels in one contiguous int8 plane
// at a fixed 32-byte stride (kPinStride; one AVX2 register per amoebot),
// 32-byte aligned so the SIMD block kernels (simd_kernels.hpp) never
// split a block across cache lines. HOT state is everything the per-round
// circuit traversal reads per pin, fused into ONE dense 8-byte HotPin
// record per pin node (amoebot * ppa + pin): the external-link target,
// the circular partition-set successor delta, the lead-pin (root word)
// delta, and the snapshot copies of both deltas. Fusing buys the chase
// the decisive constant factor: one indexed 8-byte load per visited pin
// where the split layout took four scattered loads (successor plane, link
// table, snapshot plane, dirty word), with zero divisions (successor ==
// node + delta, lead == node + leadDelta; both base-independent int8
// deltas).
//
// Protocols access an amoebot's configuration through a PinConfigRef
// handle (mutating) or a ConstPinConfigRef (read-only view); both are
// trivially-copyable fat pointers into the arena. Every mutation is
// routed through the arena so it can snapshot the previous labels and
// mark the amoebot *touched*; at the next Comm::deliver() the arena
// separates truly-dirty amoebots (labels actually changed) from amoebots
// that were rewritten with identical labels -- the common protocol idiom
// `resetPins(); join(...)` with an unchanged configuration therefore
// contributes nothing to the incremental circuit update. The dirty drain
// batch-compares the 32-byte label blocks through the runtime-dispatched
// simd::blockEqualMany kernel.
//
// Complexity contract: reconfiguring pins is free in the model -- only
// Comm::deliver() charges a round -- matching the paper, where an amoebot
// may set up an arbitrary pin configuration between two rounds. Host cost:
// join/reset are O(pins written); resetAll is O(non-singleton amoebots),
// not O(n); takeDirty is O(touched amoebots).
//
// Sharding: the arena partitions its amoebots into `shardCount` contiguous
// index ranges and keeps the touched/joined bookkeeping per shard. All
// state an amoebot owns (label block, successor deltas, snapshot blocks,
// touch mark, shard touch list) lives in exactly one shard, so the
// *Shard() entry points may run concurrently for distinct shards -- this
// is what lets Comm parallelize takeDirty/resetPins and lets protocol
// layers rewire disjoint shards concurrently. The serial entry points
// drain shards in ascending shard order, so a 1-shard arena behaves
// exactly like the pre-sharding code.
//
// Thread-safety: a PinArena is a plain value owned by its Comm; distinct
// Comms (hence distinct protocol executions) may run on distinct threads.
// Within one Comm, concurrent mutation is allowed only through the
// shard-disjoint pattern above.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/coord.hpp"
#include "sim/aligned.hpp"

namespace aspf {

namespace simd {
struct KernelTable;
}

struct Pin {
  Dir dir;
  std::uint8_t lane = 0;
};

inline constexpr int kMaxLanes = 4;

/// Per-amoebot block stride of the arena's label arrays: the next
/// power-of-two above kNumDirs * kMaxLanes (= 24 pins), so snapshot /
/// compare / restore of one amoebot's labels are fixed-size 32-byte
/// operations -- exactly one AVX2 register (simd::kBlockBytes).
inline constexpr int kPinStride = 32;

/// 32-byte-aligned label plane: std::vector<int8_t> guarantees only
/// 1-byte alignment, which would let a block straddle cache lines (and
/// breaks any future aligned-load assumption in the kernels).
using AlignedLabelVec =
    std::vector<std::int8_t, AlignedAllocator<std::int8_t, kPinStride>>;

/// Pin index within an amoebot: dir * lanes + lane.
constexpr int pinIndex(Pin p, int lanes) noexcept {
  return static_cast<int>(p.dir) * lanes + p.lane;
}

/// One pin node's fused hot record -- everything the circuit traversal
/// reads about a pin in a single 8-byte load (8 pins per cache line).
///
///  - `link`: the pin node wired to this one across its external link, or
///    -1 on the structure boundary. A pure function of (region adjacency,
///    lanes); filled in by Comm (the arena does not know the region).
///    Every link has exactly one smaller endpoint, so edge-once
///    traversals use the orientation-free rule `link > node`.
///  - `delta`: circular partition-set successor, successor == node +
///    delta (0 for singletons). Following it from any pin enumerates the
///    whole set in O(set size).
///  - `leadDelta`: the set's lead pin (its union-find word), lead ==
///    node + leadDelta. The lead is the set's lowest-indexed member pin
///    (a pin is its set's lead iff leadDelta == 0) -- exactly the pin a
///    first-match label scan (simd findLabelPin) finds, and deliberately
///    NOT the label value, which overlapping joins can alias.
///  - `prevDelta` / `prevLeadDelta`: the same two deltas as of the last
///    takeDirty() (the previous delivered round), valid under the same
///    window as PinArena::snapshotOf().
///
/// All four deltas are base-independent (pin-index arithmetic inside one
/// amoebot), so remap() moves them verbatim; `link` is absolute and is
/// rebuilt by the Comm after any remap.
struct HotPin {
  std::int32_t link;
  std::int8_t delta;
  std::int8_t prevDelta;
  std::int8_t leadDelta;
  std::int8_t prevLeadDelta;
};
static_assert(sizeof(HotPin) == 8, "HotPin must stay one 8-byte word");

class PinArena;

/// Read-only view of one amoebot's pin configuration: a label per pin.
/// Pins sharing a label form one partition set. Trivially copyable; valid
/// as long as the owning arena (i.e. the Comm) lives.
class ConstPinConfigRef {
 public:
  ConstPinConfigRef(const std::int8_t* labels, int lanes) noexcept
      : labels_(labels), lanes_(lanes) {}

  int lanes() const noexcept { return lanes_; }
  int pinCount() const noexcept { return kNumDirs * lanes_; }

  int labelOf(Pin p) const noexcept { return labels_[pinIndex(p, lanes_)]; }
  int labelAt(int pinIdx) const noexcept { return labels_[pinIdx]; }

 private:
  const std::int8_t* labels_;
  int lanes_;
};

/// Mutating handle to one amoebot's pin configuration. All writes go
/// through the arena so deliver() can tell which amoebots changed.
class PinConfigRef {
 public:
  PinConfigRef(PinArena* arena, int local) noexcept
      : arena_(arena), local_(local) {}

  int lanes() const noexcept;
  int pinCount() const noexcept;

  /// Reverts to singletons (label of each pin = its own index).
  void reset();

  /// Puts all given pins into one partition set; returns its label.
  int join(std::span<const Pin> pins);

  int labelOf(Pin p) const noexcept;
  int labelAt(int pinIdx) const noexcept;

 private:
  PinArena* arena_;
  int local_;
};

/// Flat label storage for all amoebots of one Comm, with dirty tracking.
class PinArena {
 public:
  /// Throws std::invalid_argument unless 1 <= lanes <= kMaxLanes and
  /// n >= 0 (a release build must never size the fixed 32-byte stride for
  /// an out-of-range lane count -- labels past the stride would corrupt
  /// the neighboring amoebot's block). `shardCount` is clamped to
  /// [1, max(n, 1)].
  explicit PinArena(int n, int lanes, int shardCount = 1);

  int size() const noexcept { return n_; }
  int lanes() const noexcept { return lanes_; }
  int pinsPerAmoebot() const noexcept { return ppa_; }

  int shardCount() const noexcept { return shardCount_; }
  int shardOf(int local) const noexcept { return local / shardSize_; }
  /// Both ends clamp to n, so shardBegin(s) <= shardEnd(s) holds for
  /// every legal shard even when ceil-division would leave trailing
  /// shards empty (e.g. 7 amoebots in 5 shards).
  int shardBegin(int shard) const noexcept {
    return std::min(n_, shard * shardSize_);
  }
  int shardEnd(int shard) const noexcept {
    return std::min(n_, (shard + 1) * shardSize_);
  }

  PinConfigRef ref(int local) noexcept { return {this, local}; }
  ConstPinConfigRef cref(int local) const noexcept {
    return {labelsOf(local), lanes_};
  }

  const std::int8_t* labelsOf(int local) const noexcept {
    return labels_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// Dense fused hot plane, indexed by pin node (amoebot * ppa + pin);
  /// see HotPin. The delta fields are stale for amoebots mutated since
  /// the last takeDirty() (mid-round); takeDirty() reconciles them, so
  /// the records are consistent whenever the engine reads them.
  const HotPin* hot() const noexcept { return hot_.data(); }

  /// Mutable view for the owning Comm ONLY, which fills the `link` field
  /// after construction and after every remap (the arena cannot: links
  /// are a property of the region adjacency, not of pin configurations).
  HotPin* mutableHot() noexcept { return hot_.data(); }

  /// The labels the amoebot had at the last takeDirty() (i.e. the last
  /// deliver). Only meaningful for amoebots reported dirty by the most
  /// recent takeDirty(), until their next mutation.
  const std::int8_t* snapshotOf(int local) const noexcept {
    return prev_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  int labelAt(int local, int pinIdx) const noexcept {
    return labelsOf(local)[pinIdx];
  }

  void reset(int local);
  int join(int local, std::span<const Pin> pins);

  /// Resets every amoebot to singletons. Cost is proportional to the
  /// number of currently non-singleton amoebots, not to n.
  void resetAll();

  /// Shard-scoped resetAll: resets the possibly-non-singleton amoebots of
  /// one shard. Touches only that shard's state, so distinct shards may
  /// run concurrently; resetAll() == resetAllShard(0..shardCount) in
  /// order.
  void resetAllShard(int shard);

  /// Appends to `out` the amoebots whose labels differ from their state at
  /// the previous takeDirty() call, and clears all touch marks. Snapshots
  /// of the returned amoebots stay readable until they are next mutated.
  /// Drains shards in ascending shard order.
  void takeDirty(std::vector<int>* out);

  /// Shard-scoped takeDirty (the parallel form: distinct shards touch
  /// disjoint state). takeDirty() == takeDirtyShard(0..shardCount) in
  /// order with the per-shard outputs concatenated.
  void takeDirtyShard(int shard, std::vector<int>* out);

  /// Amoebots mutated since the last takeDirty (upper bound on the next
  /// dirty count; used to size the parallel drain decision). Also the
  /// number of 32-byte block compares the next drain will perform (the
  /// block_compares counter).
  int touchedCount() const noexcept;

  /// Warm-restart surface: re-shapes the arena for a grown/shrunk amoebot
  /// structure without losing the surviving amoebots' configurations.
  /// `oldOf[i]` names the previous local id whose pin configuration the
  /// new amoebot i inherits (-1 => a newly attached amoebot, which starts
  /// as singletons). Post-conditions: snapshots equal the current labels
  /// for every amoebot (the last "delivered" state is by definition the
  /// carried-over one), no amoebot is touched, joined flags follow the
  /// mapping, and the shard geometry is rebuilt for the new size. The
  /// caller must have reconciled pending mutations first (takeDirty),
  /// or their successor deltas would be copied stale -- Comm::rebind
  /// does. Throws std::invalid_argument on a size/range-inconsistent
  /// mapping.
  void remap(int newN, std::span<const int> oldOf, int shardCount);

  /// Structure epoch: the number of remap() calls this arena has absorbed
  /// (i.e. how many structure mutations the owning Comm was rebound
  /// across). Cross-query caches key on it, so two distinct epochs must
  /// NEVER compare equal: the counter is deliberately 64-bit -- a 32-bit
  /// epoch wraps after ~4.3e9 rebinds, at which point a long-lived serving
  /// session would alias stale cache entries as fresh.
  std::uint64_t structureEpoch() const noexcept { return structureEpoch_; }

 private:
  friend class PinConfigRef;

  std::int8_t* mutableLabelsOf(int local) noexcept {
    return labels_.data() + static_cast<std::size_t>(local) * kPinStride;
  }

  /// Snapshots the amoebot's labels on its first mutation since the last
  /// takeDirty().
  void beginMutate(int local);

  /// Recomputes the circular successor and lead deltas of one amoebot
  /// from its labels (called once per truly-dirty amoebot per round;
  /// O(pins)).
  void rebuildGroups(int local);

  int n_;
  int lanes_;
  int ppa_;
  int shardCount_;
  int shardSize_;
  const simd::KernelTable* kernels_;     // resolved once at construction
  AlignedLabelVec labels_;               // cold: current labels, n * 32
  AlignedLabelVec prev_;                 // cold: snapshots at last deliver
  std::vector<HotPin> hot_;              // hot: fused records, n * ppa
  std::vector<std::uint8_t> touched_;    // mutated since last takeDirty
  std::vector<std::uint8_t> joined_;     // possibly non-singleton
  // Per-shard touch/join lists: beginMutate/join append an amoebot to the
  // lists of its own shard only, keeping shard-disjoint mutation
  // race-free. eqScratch_ is takeDirtyShard's per-shard compare-mask
  // buffer (same disjointness).
  std::vector<std::vector<int>> touchedLists_;
  std::vector<std::vector<int>> joinedLists_;
  std::vector<std::vector<std::uint8_t>> eqScratch_;
  std::uint64_t structureEpoch_ = 0;  // remap() count; see structureEpoch()
};

inline int PinConfigRef::lanes() const noexcept { return arena_->lanes(); }
inline int PinConfigRef::pinCount() const noexcept {
  return arena_->pinsPerAmoebot();
}
inline void PinConfigRef::reset() { arena_->reset(local_); }
inline int PinConfigRef::join(std::span<const Pin> pins) {
  return arena_->join(local_, pins);
}
inline int PinConfigRef::labelOf(Pin p) const noexcept {
  return arena_->labelAt(local_, pinIndex(p, arena_->lanes()));
}
inline int PinConfigRef::labelAt(int pinIdx) const noexcept {
  return arena_->labelAt(local_, pinIdx);
}

}  // namespace aspf

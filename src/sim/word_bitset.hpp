#pragma once
// Word-packed bitset with tracked (epoch-style) resets, replacing the
// per-pin epoch-stamp arrays of the circuit substrate.
//
// The substrate keeps several boolean planes indexed by pin node
// ("this circuit root heard a beep", "this pin belongs to a dirty
// amoebot"). As uint32 epoch stamps those planes cost 4 bytes per pin
// (9.6 MB for a 100k-amoebot, 4-lane arena) -- far past L2 -- and every
// random probe is a cold cache line. Packed 64-to-a-word they fit in a
// few hundred KB, and a probe is one word load plus a shift.
//
// Reset semantics: epoch stamps made per-round invalidation O(1) by
// bumping the epoch. A packed plane gets the same complexity a different
// way: every *tracked* write records its word index (deduplicated), and
// resetTracked() zeroes exactly those words -- O(words actually touched),
// not O(plane size). Untracked set/clear are for planes whose owner
// already keeps an explicit member list (the serial closure scan clears
// through visitedPins_).
//
// Determinism: all mutating ops are plain masked word ops; the final word
// values depend only on the SET of bits written, never on the order the
// masks were applied (bitwise-or is commutative and associative), so any
// serialization of the same logical writes yields byte-identical words.
// Thread-safety: none -- every plane is written only by its owning Comm's
// protocol thread; parallel phases read but never write (see comm.cpp).
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aspf {

class WordBitset {
 public:
  /// Re-shapes to `bits` bits, all zero, tracking cleared.
  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
    trackedFlag_.assign(words_.size(), 0);
    tracked_.clear();
  }

  std::size_t sizeBits() const noexcept { return bits_; }
  std::size_t wordCount() const noexcept { return words_.size(); }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Untracked single-bit ops (caller owns invalidation via its own list).
  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ull << (i & 63); }
  void clear(std::size_t i) noexcept { words_[i >> 6] &= ~(1ull << (i & 63)); }

  /// Tracked set: resetTracked() will zero this bit's word.
  void setTracked(std::size_t i) {
    const std::size_t w = i >> 6;
    track(w);
    words_[w] |= 1ull << (i & 63);
  }

  /// Tracked masked range set: sets bits [begin, begin + count) with one
  /// masked op per touched word.
  void setRangeTracked(std::size_t begin, std::size_t count) {
    while (count > 0) {
      const std::size_t w = begin >> 6;
      const std::size_t off = begin & 63;
      const std::size_t take = count < 64 - off ? count : 64 - off;
      const std::uint64_t mask =
          (take == 64 ? ~0ull : (1ull << take) - 1) << off;
      track(w);
      words_[w] |= mask;
      begin += take;
      count -= take;
    }
  }

  /// Zeroes every word a tracked write touched since the last reset (the
  /// epoch bump of the stamp scheme, paid only for touched words).
  /// Returns the number of words zeroed, for the bitset_words_scanned
  /// counter.
  std::size_t resetTracked() noexcept {
    const std::size_t n = tracked_.size();
    for (const std::uint32_t w : tracked_) {
      words_[w] = 0;
      trackedFlag_[w] = 0;
    }
    tracked_.clear();
    return n;
  }

  /// Index of the first set bit in [begin, end), or -1.
  long scanForward(std::size_t begin, std::size_t end) const noexcept {
    if (begin >= end) return -1;
    std::size_t w = begin >> 6;
    const std::size_t lastW = (end - 1) >> 6;
    std::uint64_t word = words_[w] & (~0ull << (begin & 63));
    while (true) {
      if (word != 0) {
        const std::size_t bit = w * 64 +
            static_cast<std::size_t>(__builtin_ctzll(word));
        return bit < end ? static_cast<long>(bit) : -1;
      }
      if (w == lastW) return -1;
      word = words_[++w];
    }
  }

 private:
  void track(std::size_t w) {
    if (!trackedFlag_[w]) {
      trackedFlag_[w] = 1;
      tracked_.push_back(static_cast<std::uint32_t>(w));
    }
  }

  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> tracked_;      // word indices to zero on reset
  std::vector<std::uint8_t> trackedFlag_;   // dedup for tracked_
  std::size_t bits_ = 0;
};

}  // namespace aspf

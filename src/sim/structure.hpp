#pragma once
// The amoebot structure: a finite, connected set of occupied nodes of the
// triangular grid (the paper's X subset of G_Delta, Section 2). Provides
// adjacency, connectivity and hole-freeness checks (the paper's algorithms
// require a hole-free structure: the complement of X in G_Delta must be
// connected), and exact BFS distances for verification.
//
// Complexity contract: these are host-side computations, not circuit
// protocols -- they charge no rounds. fromCoords/isConnected/isHoleFree/
// bfsDistances are O(n) to O(n + area of the bounding box); the
// verification-side BFS is the ground truth the round-counted algorithms
// are checked against.
//
// Thread-safety: immutable after fromCoords(); concurrent reads from any
// number of threads are safe (the scenario runner relies on this).
#include <span>
#include <unordered_map>
#include <vector>

#include "geometry/coord.hpp"

namespace aspf {

class AmoebotStructure {
 public:
  /// Builds a structure from a list of occupied nodes. Duplicates are
  /// rejected (throws std::invalid_argument).
  static AmoebotStructure fromCoords(std::vector<Coord> coords);

  int size() const noexcept { return static_cast<int>(coords_.size()); }

  Coord coordOf(int id) const noexcept { return coords_[id]; }

  /// Id of the amoebot at c, or -1 if unoccupied. O(1): a dense
  /// bounding-box grid lookup for compact structures, a hash lookup for
  /// very sparse ones (bounding box > 64 * n cells).
  int idOf(Coord c) const noexcept;

  /// Neighbor id in direction d, or -1.
  int neighbor(int id, Dir d) const noexcept {
    return nbr_[id][static_cast<int>(d)];
  }

  int degree(int id) const noexcept;

  const std::vector<Coord>& coords() const noexcept { return coords_; }

  /// True iff the induced graph G_X is connected.
  bool isConnected() const;

  /// True iff the structure has no holes, i.e. the complement of X within
  /// G_Delta is connected (checked on a 1-padded bounding box, whose border
  /// always belongs to the single infinite complement component).
  bool isHoleFree() const;

  /// Exact hop distances in G_X from the closest of the given sources
  /// (multi-source BFS). Unreachable nodes get -1. Verification-side only.
  std::vector<int> bfsDistances(std::span<const int> sources) const;

  /// Eccentricity of a node in G_X (max BFS distance).
  int eccentricity(int id) const;

 private:
  bool inGrid(Coord c) const noexcept {
    return c.q >= qmin_ && c.q <= qmax_ && c.r >= rmin_ && c.r <= rmax_;
  }
  std::size_t gridIndex(Coord c) const noexcept {
    return static_cast<std::size_t>(c.r - rmin_) * width_ +
           static_cast<std::size_t>(c.q - qmin_);
  }

  std::vector<Coord> coords_;
  // Occupancy index: a dense bounding-box grid (id per cell, -1 empty)
  // when the box is not much larger than n, else the hash map fallback
  // for very sparse structures (e.g. long random-walk spiders).
  std::vector<int> grid_;  // empty => use index_
  std::int32_t qmin_ = 0, qmax_ = -1, rmin_ = 0, rmax_ = -1;
  std::int64_t width_ = 0;
  std::unordered_map<Coord, int, CoordHash> index_;
  std::vector<std::array<int, 6>> nbr_;
};

}  // namespace aspf

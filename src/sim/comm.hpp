#pragma once
// Comm is the synchronous-round executor for one protocol execution on a
// region: protocols reconfigure pin configurations, queue beeps, and call
// deliver(), which computes all circuits (connected components of partition
// sets across external links) and delivers beeps. Every deliver() is exactly
// one synchronous round of the model; rounds() is the measured complexity.
//
// Parallel composition (the synchronization technique of Padalkin et al.
// [26]) is modeled by parallelRounds(): sub-protocols on disjoint regions run
// sequentially in the simulator but are charged max(rounds) + sync overhead.
//
// Circuit engines: deliver() maintains a persistent union-find over all
// pin nodes and updates it *incrementally*. The PinArena (pin_config.hpp)
// reports which amoebots truly changed their configuration since the last
// round; deliver() re-unions only the circuits those amoebots participate
// in, discovered by a traversal of the affected components under the old
// labels. Rounds without configuration changes cost O(queued beeps);
// rounds changing d amoebots cost O(size of the circuits containing them),
// matching the model's "cheap local reconfiguration" locality. When the
// dirty fraction is large (or on the first round) deliver() falls back to
// a from-scratch rebuild, which is also available as a standalone engine
// (CircuitEngine::Rebuild) for differential testing -- both engines
// produce identical circuits, received() results and round counts.
//
// Complexity contract: rounds() is the model cost that the paper's bounds
// (O(log l), O(log n log^2 k), ...) speak about; it includes rounds charged
// via chargeRounds()/parallelRounds() without being simulated. Host cost
// per deliver() is O(affected pins * alpha) incremental or
// O(n * lanes * alpha) rebuild; the thread-local SimCounters
// (sim_counters.hpp) record delivers, beeps, unions and dirty-tracking
// statistics for the substrate-cost view.
//
// Thread-safety: a Comm is single-threaded by design (one protocol
// execution); run concurrent protocols on separate Comm instances --
// possibly over the same Region, which deliver() only reads. The default
// engine selection is thread-local.
#include <cstdint>
#include <span>
#include <vector>

#include "sim/pin_config.hpp"
#include "sim/region.hpp"

namespace aspf {

/// Substrate strategy for Comm::deliver(). Incremental is the production
/// engine; Rebuild recomputes every circuit from scratch each round and is
/// kept as the differential-testing oracle.
enum class CircuitEngine { Incremental, Rebuild };

/// Thread-local default engine for newly constructed Comms (used by the
/// scenario runner's --engine flag and the differential tests).
CircuitEngine defaultCircuitEngine() noexcept;
void setDefaultCircuitEngine(CircuitEngine engine) noexcept;

class Comm {
 public:
  Comm(const Region& region, int lanes);
  Comm(const Region& region, int lanes, CircuitEngine engine);

  const Region& region() const noexcept { return *region_; }
  int lanes() const noexcept { return lanes_; }
  CircuitEngine engine() const noexcept { return engine_; }

  /// Resets all amoebots' pin configurations to singletons. Host cost is
  /// proportional to the number of non-singleton amoebots.
  void resetPins();

  /// Mutating handle to an amoebot's pin configuration. All protocol-side
  /// reconfiguration goes through this handle, which is how deliver()
  /// knows exactly which amoebots changed since the last round.
  PinConfigRef pins(int local) noexcept { return arena_.ref(local); }
  ConstPinConfigRef pins(int local) const noexcept {
    return arena_.cref(local);
  }

  /// Queues a beep on the partition set with the given label.
  void beep(int local, int label);
  /// Queues a beep on the partition set containing the given pin.
  void beepPin(int local, Pin p) {
    beep(local, arena_.labelAt(local, pinIndex(p, lanes_)));
  }

  /// Executes one synchronous round: computes circuits from the current pin
  /// configurations and delivers all queued beeps.
  void deliver();

  /// True iff the partition set with this label received a beep in the last
  /// round.
  bool received(int local, int label) const;
  bool receivedPin(int local, Pin p) const {
    return received(local, arena_.labelAt(local, pinIndex(p, lanes_)));
  }

  /// True iff any partition set of the amoebot received a beep.
  bool receivedAny(int local) const;

  long rounds() const noexcept { return rounds_; }

  /// Accounts rounds that are synchronization/bookkeeping beeps whose
  /// outcome is not needed by the simulation (e.g. the per-phase global
  /// sync beep of [26]).
  void chargeRounds(long k) noexcept { rounds_ += k; }

 private:
  int pinNode(int local, int pinIdx) const noexcept {
    return local * ppa_ + pinIdx;
  }
  int findRoot(int x) const;
  void unite(int a, int b);
  void rebuildAll();
  /// Returns false if the traversal exceeded its budget and fell back to
  /// a full rebuild (already performed on return).
  bool incrementalUpdate();

  const Region* region_;
  int lanes_;
  int ppa_;
  CircuitEngine engine_;
  PinArena arena_;
  std::vector<std::pair<int, int>> pendingBeeps_;  // (local, label)
  mutable std::vector<int> dsu_;

  // Epoch-stamped beep cache: beepEpoch_[root] == epoch_ iff that circuit
  // received a beep in the last delivered round. Replaces a per-round
  // O(n * lanes) clear with O(beeps) stamping.
  std::vector<std::uint32_t> beepEpoch_;
  std::uint32_t epoch_ = 1;
  bool everDelivered_ = false;

  // Scratch state for the incremental update (allocated once, cleared via
  // the companion lists so each deliver() only pays for what it touched).
  std::vector<int> dirtyList_;
  std::vector<std::uint8_t> dirtyFlag_;    // per amoebot
  std::vector<std::uint8_t> pinVisited_;   // per pin node
  std::vector<int> visitedPins_;           // doubles as the BFS queue
  long unionsScratch_ = 0;                 // flushed per deliver

  long rounds_ = 0;
};

/// Round accounting for parallel sub-protocol execution: all executions run
/// concurrently, plus one global sync round (termination beep) per phase.
/// An empty execution set costs nothing -- no sub-protocol ran, so no sync
/// beep is charged.
long parallelRounds(std::span<const long> executions);

}  // namespace aspf

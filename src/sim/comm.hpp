#pragma once
// Comm is the synchronous-round executor for one protocol execution on a
// region: protocols reconfigure pin configurations, queue beeps, and call
// deliver(), which computes all circuits (connected components of partition
// sets across external links) and delivers beeps. Every deliver() is exactly
// one synchronous round of the model; rounds() is the measured complexity.
//
// Parallel composition (the synchronization technique of Padalkin et al.
// [26]) is modeled by parallelRounds(): sub-protocols on disjoint regions run
// sequentially in the simulator but are charged max(rounds) + sync overhead.
//
// Complexity contract: rounds() is the model cost that the paper's bounds
// (O(log l), O(log n log^2 k), ...) speak about; it includes rounds charged
// via chargeRounds()/parallelRounds() without being simulated. One
// deliver() costs the host O(n * lanes * alpha) (a union-find pass over all
// pins); the thread-local SimCounters (sim_counters.hpp) record delivers
// and beeps for the substrate-cost view.
//
// Thread-safety: a Comm is single-threaded by design (one protocol
// execution); run concurrent protocols on separate Comm instances --
// possibly over the same Region, which deliver() only reads.
#include <cstdint>
#include <span>
#include <vector>

#include "sim/pin_config.hpp"
#include "sim/region.hpp"

namespace aspf {

class Comm {
 public:
  Comm(const Region& region, int lanes);

  const Region& region() const noexcept { return *region_; }
  int lanes() const noexcept { return lanes_; }

  /// Resets all amoebots' pin configurations to singletons.
  void resetPins();

  PinConfig& pins(int local) noexcept { return pins_[local]; }
  const PinConfig& pins(int local) const noexcept { return pins_[local]; }

  /// Queues a beep on the partition set with the given label.
  void beep(int local, int label);
  /// Queues a beep on the partition set containing the given pin.
  void beepPin(int local, Pin p) { beep(local, pins_[local].labelOf(p)); }

  /// Executes one synchronous round: computes circuits from the current pin
  /// configurations and delivers all queued beeps.
  void deliver();

  /// True iff the partition set with this label received a beep in the last
  /// round.
  bool received(int local, int label) const;
  bool receivedPin(int local, Pin p) const {
    return received(local, pins_[local].labelOf(p));
  }

  /// True iff any partition set of the amoebot received a beep.
  bool receivedAny(int local) const;

  long rounds() const noexcept { return rounds_; }

  /// Accounts rounds that are synchronization/bookkeeping beeps whose
  /// outcome is not needed by the simulation (e.g. the per-phase global
  /// sync beep of [26]).
  void chargeRounds(long k) noexcept { rounds_ += k; }

 private:
  int pinNode(int local, int pinIdx) const noexcept {
    return local * pinsPerAmoebot_ + pinIdx;
  }
  int findRoot(int x) const;

  const Region* region_;
  int lanes_;
  int pinsPerAmoebot_;
  std::vector<PinConfig> pins_;
  std::vector<std::pair<int, int>> pendingBeeps_;  // (local, label)
  mutable std::vector<int> dsu_;
  std::vector<char> rootBeeped_;
  long rounds_ = 0;
};

/// Round accounting for parallel sub-protocol execution: all executions run
/// concurrently, plus one global sync round (termination beep) per phase.
long parallelRounds(std::span<const long> executions);

}  // namespace aspf

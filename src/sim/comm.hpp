#pragma once
// Comm is the synchronous-round executor for one protocol execution on a
// region: protocols reconfigure pin configurations, queue beeps, and call
// deliver(), which computes all circuits (connected components of partition
// sets across external links) and delivers beeps. Every deliver() is exactly
// one synchronous round of the model; rounds() is the measured complexity.
//
// Parallel composition (the synchronization technique of Padalkin et al.
// [26]) is modeled by parallelRounds(): sub-protocols on disjoint regions run
// sequentially in the simulator but are charged max(rounds) + sync overhead.
//
// Circuit engines: deliver() maintains a persistent union-find over all
// pin nodes and updates it *incrementally*. The PinArena (pin_config.hpp)
// reports which amoebots truly changed their configuration since the last
// round; deliver() re-unions only the circuits those amoebots participate
// in, discovered by a traversal of the affected components under the old
// labels. Rounds without configuration changes cost O(queued beeps);
// rounds changing d amoebots cost O(size of the circuits containing them),
// matching the model's "cheap local reconfiguration" locality. When the
// dirty fraction is large (or on the first round) deliver() falls back to
// a from-scratch rebuild, which is also available as a standalone engine
// (CircuitEngine::Rebuild) for differential testing -- both engines
// produce identical circuits, received() results and round counts.
//
// Hot-path data layout (see also pin_config.hpp and simd_kernels.hpp):
// the traversal walks the arena's fused 8-byte HotPin records (link
// target + successor/lead deltas, current and snapshot -- ONE indexed
// load per visited pin, no divisions, no region consultation), and the
// persistent union-find is SET-LEVEL: one dsu word per partition-set
// lead pin (lead == node + leadDelta; a set is born merged, so re-union
// pays one unite per external link instead of one per pin plus one per
// link). The reported `unions` counter keeps the historical pin-level
// semantics exactly: pin-level successful unions == set-level successful
// unions + |closure pins| - |closure sets|, and both terms are union-
// order- and shard-independent. Per-pin boolean planes (delivered beeps,
// dirty-pin marks, serial visited marks) are word-packed bitsets
// (word_bitset.hpp), and beep-root resolution / receivedBatch resolve
// union-find roots through the runtime-dispatched simd kernels (8
// gathered chases per iteration on AVX2, env-selectable scalar fallback
// via ASPF_SIMD).
//
// Sharded execution (sim-threads > 1): the pin arena is partitioned into
// contiguous amoebot shards and deliver()'s hot phases run per shard on
// the process-wide SimPool -- the union-find over shard-local circuit
// edges, the affected-component traversal (level-synchronous, chasing
// local successors to exhaustion per level), the beep scatter and the
// dirty-list drain. Only the shard-crossing link edges are merged in a
// deterministic serial pass. Every observable result -- received() /
// receivedAny(), rounds, and all SimCounters -- is bit-identical to the
// serial engine at any thread count AND any kernel ISA: circuits are
// determined by the edge set alone (union order only moves which pin
// represents a circuit, which no observer can see), the union counter
// equals |pins| - |circuits| of the recomputed subgraph regardless of
// order, and every SIMD kernel is a pure function of its operands with
// the scalar result. See docs/ARCHITECTURE.md for the full determinism
// argument.
//
// Complexity contract: rounds() is the model cost that the paper's bounds
// (O(log l), O(log n log^2 k), ...) speak about; it includes rounds charged
// via chargeRounds()/parallelRounds() without being simulated. Host cost
// per deliver() is O(affected pins * alpha) incremental or
// O(n * lanes * alpha) rebuild, divided across sim-threads plus the
// boundary-merge term; the thread-local SimCounters (sim_counters.hpp)
// record delivers, beeps, unions and dirty-tracking statistics for the
// substrate-cost view.
//
// Thread-safety: a Comm is single-threaded by design (one protocol
// execution); run concurrent protocols on separate Comm instances --
// possibly over the same Region, which deliver() only reads. A sharded
// Comm fans its own internal work out to the SimPool but its public API
// remains single-caller. The default engine and sim-thread selections are
// thread-local.
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/pin_config.hpp"
#include "sim/region.hpp"
#include "sim/sim_pool.hpp"
#include "sim/simd_kernels.hpp"
#include "sim/word_bitset.hpp"

namespace aspf {

/// Substrate strategy for Comm::deliver(). Incremental is the production
/// engine; Rebuild recomputes every circuit from scratch each round and is
/// kept as the differential-testing oracle.
enum class CircuitEngine { Incremental, Rebuild };

/// Thread-local default engine for newly constructed Comms (used by the
/// scenario runner's --engine flag and the differential tests).
CircuitEngine defaultCircuitEngine() noexcept;
void setDefaultCircuitEngine(CircuitEngine engine) noexcept;

/// Thread-local default sim-thread count for newly constructed Comms (the
/// scenario runner's --sim-threads flag; protocols construct Comms
/// internally, so the knob threads through here). Clamped to
/// [1, kMaxSimThreads].
int defaultSimThreads() noexcept;
void setDefaultSimThreads(int threads) noexcept;

/// One received-bit query of a batch: "did the partition set containing
/// `pin` of amoebot `local` hear a beep last round?"
struct PinQuery {
  int local;
  Pin pin;
};

/// Below this many items, protocol-layer reconfiguration sweeps
/// (forEachShard users like the PASC rewiring) stay serial: results are
/// identical either way, the fan-out just costs more than it saves.
inline constexpr int kShardSweepGrain = 256;

class Comm {
 public:
  /// All constructors throw std::invalid_argument unless
  /// 1 <= lanes <= kMaxLanes and 1 <= simThreads <= kMaxSimThreads --
  /// lane bounds guard the arena's fixed block stride in release builds
  /// too (not just the former debug assert).
  Comm(const Region& region, int lanes);
  Comm(const Region& region, int lanes, CircuitEngine engine);
  Comm(const Region& region, int lanes, CircuitEngine engine, int simThreads);

  const Region& region() const noexcept { return *region_; }
  int lanes() const noexcept { return lanes_; }
  CircuitEngine engine() const noexcept { return engine_; }
  int simThreads() const noexcept { return simThreads_; }

  /// Sharding geometry: > 1 shard iff this Comm parallelizes internally
  /// (simThreads > 1 and the region is large enough to amortize the
  /// fan-out). Exposed so protocol layers can partition their own
  /// reconfiguration sweeps shard-consistently (see forEachShard).
  int shardCount() const noexcept { return arena_.shardCount(); }
  int shardOf(int local) const noexcept { return arena_.shardOf(local); }

  /// Runs fn(shard) for every shard -- concurrently on the SimPool when
  /// sharded, as a plain ascending loop otherwise. Within the call, fn
  /// may mutate pin configurations of amoebots belonging to ITS shard
  /// only (reads are unrestricted); that keeps the arena's per-shard
  /// bookkeeping race-free. Protocol layers use this to parallelize
  /// frontier rewiring sweeps.
  template <class Fn>
  void forEachShard(Fn&& fn) {
    if (arena_.shardCount() == 1) {
      fn(0);
      return;
    }
    runShards(std::function<void(int)>(std::forward<Fn>(fn)));
  }

  /// Resets all amoebots' pin configurations to singletons. Host cost is
  /// proportional to the number of non-singleton amoebots (divided across
  /// shards when sharded).
  void resetPins();

  /// Mutating handle to an amoebot's pin configuration. All protocol-side
  /// reconfiguration goes through this handle, which is how deliver()
  /// knows exactly which amoebots changed since the last round.
  PinConfigRef pins(int local) noexcept { return arena_.ref(local); }
  ConstPinConfigRef pins(int local) const noexcept {
    return arena_.cref(local);
  }

  /// Queues a beep on the partition set with the given label.
  void beep(int local, int label);
  /// Queues a beep on the partition set containing the given pin.
  void beepPin(int local, Pin p) {
    beep(local, arena_.labelAt(local, pinIndex(p, lanes_)));
  }

  /// Executes one synchronous round: computes circuits from the current pin
  /// configurations and delivers all queued beeps.
  void deliver();

  /// Warm restart onto a mutated structure (the dynamic-timeline surface):
  /// re-points this Comm at `newRegion`, whose amoebot i inherits the pin
  /// configuration and circuit membership of previous local id
  /// `oldLocalOfNew[i]` (-1 => newly attached, starts as singletons).
  /// The persistent union-find is carried over: every surviving old
  /// circuit keeps a deterministic surviving representative, and exactly
  /// the amoebots that are new, lost/gained/renumbered a neighbor, or had
  /// undelivered mutations are queued as dirty for the next deliver(),
  /// which then repairs only the affected circuits incrementally (or
  /// falls back to a rebuild under the usual budget rules). Rounds reset
  /// to 0 (a rebind starts a new protocol execution), queued beeps are
  /// dropped, and all received() state is invalidated -- observables after
  /// the first post-rebind deliver() are bit-identical to a cold Comm on
  /// `newRegion` with the same configurations, at any engine/sim-thread
  /// setting.
  ///
  /// Preconditions (std::invalid_argument otherwise): the mapping has one
  /// entry per new amoebot, entries are -1 or distinct valid old ids. The
  /// previously bound Region must stay alive until rebind returns (old
  /// adjacency is consulted); `newRegion` must outlive the Comm. Both
  /// regions must be whole-structure regions of their structures in the
  /// sense that the mapping describes the same physical amoebots.
  void rebind(const Region& newRegion, std::span<const int> oldLocalOfNew);

  /// Query/execution boundary for a persistent serving substrate: drops
  /// any queued-but-undelivered beeps and invalidates all received()
  /// state, WITHOUT touching pin configurations, the persistent
  /// union-find, or rounds(). A protocol that threw between queueing a
  /// beep and deliver() cannot leak that beep into the next execution on
  /// the same Comm (the serving runner's failure-containment contract);
  /// rebind() subsumes this for the structure-mutation path.
  void clearPending() noexcept {
    pendingBeeps_.clear();
    beepBits_.resetTracked();  // no delivered-beep bit survives
  }

  /// Structure epoch of the bound arena: bumped once per rebind(). The
  /// cross-query solve cache (spf/solve_cache.hpp) keys every entry on it,
  /// so any structure mutation invalidates all derived state. 64-bit on
  /// purpose -- a narrower counter would wrap in a long-lived serving
  /// session and alias stale entries as fresh (see PinArena).
  std::uint64_t structureEpoch() const noexcept {
    return arena_.structureEpoch();
  }

  /// True iff the partition set with this label received a beep in the last
  /// round.
  bool received(int local, int label) const;
  bool receivedPin(int local, Pin p) const {
    return received(local, arena_.labelAt(local, pinIndex(p, lanes_)));
  }

  /// True iff any partition set of the amoebot received a beep.
  bool receivedAny(int local) const;

  /// Batched receivedPin: out->at(i) == receivedPin(queries[i]) for every
  /// query, evaluated concurrently over index ranges when the Comm is
  /// sharded. Protocol layers with structure-sized read sweeps (the PASC
  /// bit reads, the wave frontier scan) use this instead of n point
  /// queries. Resolution is pin-direct on every path (the queried pin's
  /// own circuit from the last deliver()), so batch size and thread
  /// count can never flip a bit; it coincides with receivedPin() for
  /// configurations unchanged since that deliver -- i.e. whenever
  /// received() itself is well-defined.
  void receivedBatch(std::span<const PinQuery> queries,
                     std::vector<char>* out) const;

  /// Opaque pin-node handle for receivedNodes(): stable across rounds as
  /// long as the structure is not rebind()-ed. Protocol layers whose
  /// query sets are static per phase (the PASC bit reads) precompute the
  /// handles once instead of re-deriving (local, Pin) every iteration.
  int pinNodeOf(int local, Pin p) const noexcept {
    return pinNode(local, pinIndex(p, lanes_));
  }

  /// receivedBatch over precomputed pinNodeOf() handles: out->at(i) is
  /// the received bit of the circuit containing node i. Same resolution
  /// and determinism contract as receivedBatch (which delegates here).
  void receivedNodes(std::span<const int> nodes, std::vector<char>* out) const;

  long rounds() const noexcept { return rounds_; }

  /// Accounts rounds that are synchronization/bookkeeping beeps whose
  /// outcome is not needed by the simulation (e.g. the per-phase global
  /// sync beep of [26]).
  void chargeRounds(long k) noexcept { rounds_ += k; }

 private:
  int pinNode(int local, int pinIdx) const noexcept {
    return local * ppa_ + pinIdx;
  }
  int findRoot(int x) const;
  /// Non-compressing find: never writes, so concurrent read-only phases
  /// (beep-root resolution, receivedBatch) are race-free. Roots are
  /// identical to findRoot()'s -- compression only shortens paths.
  int findRootConst(int x) const noexcept;
  void unite(int a, int b, long* unions);
  /// Fills the HotPin link fields from the bound region's adjacency
  /// (construction and rebind).
  void buildLinkMap();
  void rebuildAll();
  void rebuildAllSharded();
  /// Serial affected-closure traversal from the dirty set, FUSED with
  /// the re-union: every newly marked pin is detached at first sight
  /// (idempotent for non-leads), so by the time a link is united
  /// lead-to-lead both leads are fresh singletons or already-rebuilt
  /// roots, and one pass both tears down and recomputes the closure. On
  /// success the visited marks/list are retired and the union counter is
  /// padded to pin-level semantics. Returns false once more than `limit`
  /// pins are visited; the partial counter bump is rolled back here, and
  /// the caller erases the partial dsu writes (all of them are to
  /// visited pins) by re-detaching the visited list or rebuilding.
  bool serialClosureScan(std::size_t limit);
  /// Returns false if the traversal exceeded its budget and fell back to
  /// a full rebuild (already performed on return).
  bool incrementalUpdate();
  bool incrementalUpdateSharded();
  void collectDirty();
  void markDirtyPins();
  void clearDirtyPins();
  void scatterBeeps();
  void chaseShard(int shard, std::size_t budget);
  void reunionShard(int shard);
  /// Serial deterministic closing pass of both sharded engines: unions
  /// the collected shard-crossing links in ascending shard order and
  /// rolls per-shard union counts into unionsScratch_.
  void mergeShardBoundaries();
  void runShards(const std::function<void(int)>& fn);

  const Region* region_;
  int lanes_;
  int ppa_;
  CircuitEngine engine_;
  int simThreads_;
  bool sharded_;
  const simd::KernelTable* kernels_;  // resolved once at construction
  PinArena arena_;
  std::vector<std::pair<int, int>> pendingBeeps_;  // (local, label)

  /// Set-level persistent union-find, indexed by pin node but with the
  /// invariant that every node that is NOT the current lead pin of its
  /// partition set holds -1 (never written): sets enter the structure
  /// already merged under their lead, unions happen only between lead
  /// nodes across external links, and the closure scan detaches exactly
  /// the OLD lead nodes of affected circuits -- so trees always consist
  /// of current lead nodes only, and a find from any non-lead is a
  /// degenerate self-root (queries must map node -> lead first, one
  /// HotPin load).
  mutable std::vector<int> dsu_;

  // Delivered-beep plane: beepBits_.test(root) iff that circuit received
  // a beep in the last delivered round. Tracked-word resets replace the
  // former uint32 epoch stamps (4 B/pin -> 1 bit/pin, O(touched words)
  // invalidation per round).
  WordBitset beepBits_;
  bool everDelivered_ = false;

  // Scratch state for the incremental update (allocated once, cleared via
  // the companion lists / tracked words so each deliver() only pays for
  // what it touched). dirtyPinBits_ marks every pin of a dirty amoebot
  // for the closure scan's old-vs-current successor choice; it is written
  // serially before any parallel phase and only read inside them.
  std::vector<int> dirtyList_;
  WordBitset dirtyPinBits_;   // per pin node, range-set per dirty amoebot
  WordBitset visitedBits_;    // serial closure marks (cleared via list)
  std::vector<int> visitedPins_;  // doubles as the BFS queue
  // Sharded chase marks stay a BYTE array: shard boundaries (multiples of
  // ppa) are not 64-bit-word-aligned, so a packed plane would make
  // adjacent shards race on shared words; distinct bytes are race-free.
  std::vector<std::uint8_t> pinVisited_;
  long unionsScratch_ = 0;  // flushed per deliver

  // Amoebots whose circuits were invalidated by a rebind() (new-region
  // local ids); merged into dirtyList_ at the next deliver() so the
  // incremental engine re-forms exactly the affected circuits.
  std::vector<int> rebindDirty_;

  // Sharded-engine scratch (allocated only when sharded_). Each shard's
  // block is written exclusively by the task running that shard; the
  // serial orchestration between SimPool batches is the only reader
  // across shards.
  struct Shard {
    std::vector<int> visited;    // pins of this shard in the closure
    std::vector<int> frontier;   // local chase worklist
    std::vector<std::vector<int>> outbox;  // per destination shard
    std::vector<std::pair<int, int>> boundary;  // shard-crossing links
    std::vector<int> dirty;      // per-shard takeDirty output
    long unions = 0;
  };
  std::vector<Shard> shards_;
  std::vector<std::vector<int>> inbox_;  // per shard, fed between levels
  std::vector<int> beepRoots_;           // scatter scratch (roots)
  std::vector<int> scratchNodes_;        // scatter scratch (pin nodes)
  mutable std::vector<int> queryNodes_;  // receivedBatch handle scratch
  mutable std::vector<int> queryLeads_;  // receivedNodes lead mapping
  mutable std::vector<int> queryRoots_;  // receivedNodes scratch

  long rounds_ = 0;
};

/// Round accounting for parallel sub-protocol execution: all executions run
/// concurrently, plus one global sync round (termination beep) per phase.
/// An empty execution set costs nothing -- no sub-protocol ran, so no sync
/// beep is charged.
long parallelRounds(std::span<const long> executions);

}  // namespace aspf

#include "sim/sim_counters.hpp"

namespace aspf {

SimCounters& simCounters() noexcept {
  thread_local SimCounters counters;
  return counters;
}

}  // namespace aspf

#pragma once
// Runtime-dispatched SIMD kernels for the circuit substrate's hot loops.
//
// The pin arena stores one amoebot's labels in a fixed 32-byte block
// (kPinStride), which is exactly one AVX2 register or two SSE2 registers.
// The kernels below are the complete set of data-parallel primitives the
// substrate needs: whole-block compare/copy (snapshot bookkeeping in
// takeDirty/beginMutate), batched block compares (the dirty drain),
// first-pin-with-label scans (beep scatter and received queries), and
// batched union-find root resolution (beep-root stamping and the
// receivedBatch read sweep, 8 gathered chases per iteration on AVX2).
//
// Dispatch: the scalar table is always built; the SSE2/AVX2 tables are
// compiled in their own translation units with per-file ISA flags (see
// CMakeLists.txt) and report themselves unavailable when the toolchain or
// target does not support them. At first use, kernels() picks the best
// table the host CPU supports, overridable without a rebuild via the
// ASPF_SIMD environment variable (scalar | sse2 | avx2 | auto); an ISA
// the host cannot run falls back to the best supported one.
//
// Determinism contract: every kernel is a pure function of its operands
// with a single well-defined result -- blockEqual is a predicate,
// findLabelPin returns the FIRST matching index (lowest set bit of the
// compare mask == lowest matching byte, identical to the scalar scan),
// and resolveRoots chases parent pointers without writing (each lane's
// chase is independent, so batching cannot change any root). Hence every
// observable of the simulator is byte-identical across scalar/SSE2/AVX2;
// the CI dispatch matrix cmp's whole reports to enforce this.
#include <cstddef>
#include <cstdint>

namespace aspf::simd {

/// Byte width of the kernels' block operations (== kPinStride).
inline constexpr int kBlockBytes = 32;

enum class Isa : int { Scalar = 0, Sse2 = 1, Avx2 = 2 };

struct KernelTable {
  Isa isa;
  const char* name;

  /// 32-byte block predicate: a[0..32) == b[0..32).
  bool (*blockEqual)(const std::int8_t* a, const std::int8_t* b);

  /// 32-byte block copy.
  void (*blockCopy)(std::int8_t* dst, const std::int8_t* src);

  /// Batched block compare over strided planes: for each i,
  /// eq[i] = (cur + locals[i]*32 == prev + locals[i]*32) as 0/1.
  void (*blockEqualMany)(const std::int8_t* cur, const std::int8_t* prev,
                         const int* locals, std::size_t count,
                         std::uint8_t* eq);

  /// First index p in [0, 32) with labels[p] == label, or -1. The arena
  /// keeps identity values (>= pins-per-amoebot) in the block tail, so a
  /// tail hit is reported like any other and rejected by the caller's
  /// p < ppa bound -- every table sees the same 32 bytes and returns the
  /// same index.
  int (*findLabelPin)(const std::int8_t* labels, std::int8_t label);

  /// Batched non-writing union-find root resolution: for each i, chase
  /// parent[] from nodes[i] until a negative entry (a root) and store it
  /// in roots[i]. AVX2 resolves 8 chases per iteration via gathers.
  void (*resolveRoots)(const int* parent, const int* nodes,
                       std::size_t count, int* roots);
};

const char* isaName(Isa isa) noexcept;

/// Per-ISA tables. scalarTable() always exists; the others return nullptr
/// when their translation unit was built without the ISA (non-x86 target
/// or toolchain without the flag).
const KernelTable& scalarTable() noexcept;
const KernelTable* sse2Table() noexcept;
const KernelTable* avx2Table() noexcept;

/// True iff the table is compiled in AND the host CPU can execute it.
bool isaSupported(Isa isa) noexcept;

/// Best ISA the host supports (>= Scalar).
Isa bestSupportedIsa() noexcept;

/// The active kernel table. Resolved once on first use: ASPF_SIMD
/// (scalar | sse2 | avx2 | auto, case-insensitive) when set and
/// supported, otherwise bestSupportedIsa().
const KernelTable& kernels() noexcept;
Isa activeIsa() noexcept;

/// Test/bench hook: force the active table. Returns false (and leaves the
/// selection unchanged) if the ISA is not supported on this host. Not
/// thread-safe against concurrent kernel use; flip it between runs only.
bool setActiveIsa(Isa isa) noexcept;

}  // namespace aspf::simd

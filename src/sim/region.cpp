#include "sim/region.hpp"

#include <algorithm>
#include <queue>

namespace aspf {

Region Region::whole(const AmoebotStructure& s) {
  Region r;
  r.s_ = &s;
  r.whole_ = true;
  r.globalIds_.resize(s.size());
  for (int i = 0; i < s.size(); ++i) r.globalIds_[i] = i;
  r.nbr_.resize(s.size());
  for (int i = 0; i < s.size(); ++i)
    for (int d = 0; d < kNumDirs; ++d)
      r.nbr_[i][d] = s.neighbor(i, static_cast<Dir>(d));
  return r;
}

Region Region::of(const AmoebotStructure& s, std::vector<int> globalIds) {
  std::sort(globalIds.begin(), globalIds.end());
  globalIds.erase(std::unique(globalIds.begin(), globalIds.end()),
                  globalIds.end());
  Region r;
  r.s_ = &s;
  r.globalIds_ = std::move(globalIds);
  // Dense reverse index only when the subset covers a sizable fraction of
  // the structure; small sub-regions (the recursion's common case) use
  // the map and stay O(|region|) to build.
  if (r.globalIds_.size() * 8 >= static_cast<std::size_t>(s.size())) {
    r.localIndex_.assign(s.size(), -1);
    for (int i = 0; i < static_cast<int>(r.globalIds_.size()); ++i)
      r.localIndex_[r.globalIds_[i]] = i;
  } else {
    r.localMap_.reserve(r.globalIds_.size() * 2);
    for (int i = 0; i < static_cast<int>(r.globalIds_.size()); ++i)
      r.localMap_.emplace(r.globalIds_[i], i);
  }
  r.nbr_.resize(r.globalIds_.size());
  for (int i = 0; i < r.size(); ++i) {
    for (int d = 0; d < kNumDirs; ++d) {
      const int g = s.neighbor(r.globalIds_[i], static_cast<Dir>(d));
      r.nbr_[i][d] = g < 0 ? -1 : r.localOf(g);
    }
  }
  return r;
}

int Region::degree(int local) const noexcept {
  int deg = 0;
  for (int d = 0; d < kNumDirs; ++d) deg += nbr_[local][d] >= 0 ? 1 : 0;
  return deg;
}

int Region::localOf(int globalId) const noexcept {
  if (whole_) return globalId;
  if (!localIndex_.empty()) {
    if (globalId < 0 || globalId >= static_cast<int>(localIndex_.size()))
      return -1;
    return localIndex_[globalId];
  }
  const auto it = localMap_.find(globalId);
  return it == localMap_.end() ? -1 : it->second;
}

bool Region::isConnectedInduced() const {
  if (size() == 0) return true;
  std::vector<char> seen(size(), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int d = 0; d < kNumDirs; ++d) {
      const int v = nbr_[u][d];
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        ++reached;
        q.push(v);
      }
    }
  }
  return reached == size();
}

std::vector<int> Region::bfsDistancesLocal(
    std::span<const int> localSources) const {
  std::vector<int> dist(size(), -1);
  std::queue<int> q;
  for (const int s : localSources) {
    if (dist[s] == -1) {
      dist[s] = 0;
      q.push(s);
    }
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int d = 0; d < kNumDirs; ++d) {
      const int v = nbr_[u][d];
      if (v >= 0 && dist[v] == -1) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

}  // namespace aspf

#pragma once
// Process-wide worker pool behind the sharded circuit substrate
// (Comm with sim-threads > 1). The pool exists so that deliver() -- which
// runs tens of thousands of times per scenario -- can fan work out to a
// fixed set of long-lived threads instead of paying thread creation per
// round.
//
// Execution model: run(tasks, fn) executes fn(0) .. fn(tasks - 1) exactly
// once each and returns when all of them finished. The calling thread
// participates, so run(1, fn) degenerates to a plain call and a pool is
// never required for serial configurations. Tasks are claimed from a
// shared atomic cursor, so the assignment of tasks to threads is
// scheduling-dependent -- callers MUST NOT encode determinism in "which
// thread ran task i" (the sharded circuit engine derives determinism from
// set semantics instead; see docs/ARCHITECTURE.md).
//
// Batches are serialized: concurrent run() calls from different threads
// (e.g. two scenario-runner workers whose Comms both shard) queue on an
// internal mutex and execute one batch at a time. This keeps the pool a
// bounded resource no matter how callers compose scenario-level and
// substrate-level parallelism. A run() issued from INSIDE a pool task
// (e.g. a forEachShard callback doing a batched query) degrades to the
// inline serial loop instead of deadlocking on the batch mutex --
// callers never need to know whether they are already on a pool thread.
//
// Memory ordering: everything written before run() returns in a worker is
// visible to the caller after run() returns, and everything the caller
// wrote before run() is visible to the workers (release/acquire on the
// batch state). One run() call is therefore also the barrier primitive of
// the level-synchronous traversal in Comm.
//
// Thread-safety: all members are internally synchronized; instance() is
// safe from any thread.
#include <functional>

namespace aspf {

/// Upper bound on sim-threads accepted anywhere (CLI, RunOptions, Comm).
/// Far above any sane host; exists so worker counts stay bounded.
inline constexpr int kMaxSimThreads = 64;

class SimPool {
 public:
  /// The process-wide pool (lazily constructed, joined at exit).
  static SimPool& instance();

  /// Runs fn(task) for every task in [0, tasks) and returns once all have
  /// completed. The caller participates; at most `tasks - 1` pool workers
  /// join in. Grows the pool to `workers` threads on first need (clamped
  /// to kMaxSimThreads - 1). If any task throws, the batch still runs to
  /// completion (remaining tasks execute) and the first exception is
  /// rethrown to the caller afterwards -- `fn` is never destroyed while
  /// a worker can still reach it.
  void run(int tasks, int workers, const std::function<void(int)>& fn);

  SimPool(const SimPool&) = delete;
  SimPool& operator=(const SimPool&) = delete;

 private:
  SimPool();
  ~SimPool();

  struct Impl;
  Impl* impl_;
};

}  // namespace aspf

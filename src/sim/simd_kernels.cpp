#include "sim/simd_kernels.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace aspf::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Always built; semantics of every other table
// are defined as "byte-identical results to these".
// ---------------------------------------------------------------------------

bool blockEqualScalar(const std::int8_t* a, const std::int8_t* b) {
  return std::memcmp(a, b, kBlockBytes) == 0;
}

void blockCopyScalar(std::int8_t* dst, const std::int8_t* src) {
  std::memcpy(dst, src, kBlockBytes);
}

void blockEqualManyScalar(const std::int8_t* cur, const std::int8_t* prev,
                          const int* locals, std::size_t count,
                          std::uint8_t* eq) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off =
        static_cast<std::size_t>(locals[i]) * kBlockBytes;
    eq[i] = std::memcmp(cur + off, prev + off, kBlockBytes) == 0 ? 1 : 0;
  }
}

int findLabelPinScalar(const std::int8_t* labels, std::int8_t label) {
  for (int p = 0; p < kBlockBytes; ++p) {
    if (labels[p] == label) return p;
  }
  return -1;
}

void resolveRootsScalar(const int* parent, const int* nodes,
                        std::size_t count, int* roots) {
  for (std::size_t i = 0; i < count; ++i) {
    int x = nodes[i];
    while (parent[x] >= 0) x = parent[x];
    roots[i] = x;
  }
}

constexpr KernelTable kScalarTable = {
    Isa::Scalar,       "scalar",           blockEqualScalar,
    blockCopyScalar,   blockEqualManyScalar, findLabelPinScalar,
    resolveRootsScalar};

// ---------------------------------------------------------------------------
// Host CPU capability probes. On x86-64 SSE2 is architectural baseline;
// AVX2 is queried at runtime. Elsewhere neither vector table can run.
// ---------------------------------------------------------------------------

bool cpuHasSse2() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return true;
#elif defined(__i386__) && defined(__GNUC__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool cpuHasAvx2() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable* tableFor(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return &kScalarTable;
    case Isa::Sse2:
      return sse2Table();
    case Isa::Avx2:
      return avx2Table();
  }
  return nullptr;
}

const KernelTable* resolveFromEnv() noexcept {
  const char* env = std::getenv("ASPF_SIMD");
  std::string want = env ? env : "auto";
  for (char& c : want) c = static_cast<char>(std::tolower(c));
  if (want == "scalar") return &kScalarTable;
  if (want == "sse2" && isaSupported(Isa::Sse2)) return sse2Table();
  if (want == "avx2" && isaSupported(Isa::Avx2)) return avx2Table();
  // auto, unknown value, or an ISA this host cannot run: best supported.
  return tableFor(bestSupportedIsa());
}

std::atomic<const KernelTable*> gActive{nullptr};

}  // namespace

const char* isaName(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Sse2:
      return "sse2";
    case Isa::Avx2:
      return "avx2";
  }
  return "scalar";
}

const KernelTable& scalarTable() noexcept { return kScalarTable; }

bool isaSupported(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Sse2:
      return sse2Table() != nullptr && cpuHasSse2();
    case Isa::Avx2:
      return avx2Table() != nullptr && cpuHasAvx2();
  }
  return false;
}

Isa bestSupportedIsa() noexcept {
  if (isaSupported(Isa::Avx2)) return Isa::Avx2;
  if (isaSupported(Isa::Sse2)) return Isa::Sse2;
  return Isa::Scalar;
}

const KernelTable& kernels() noexcept {
  const KernelTable* t = gActive.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolveFromEnv();
    gActive.store(t, std::memory_order_release);
  }
  return *t;
}

Isa activeIsa() noexcept { return kernels().isa; }

bool setActiveIsa(Isa isa) noexcept {
  if (!isaSupported(isa)) return false;
  gActive.store(tableFor(isa), std::memory_order_release);
  return true;
}

}  // namespace aspf::simd

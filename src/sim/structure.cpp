#include "sim/structure.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace aspf {

AmoebotStructure AmoebotStructure::fromCoords(std::vector<Coord> coords) {
  AmoebotStructure s;
  s.coords_ = std::move(coords);
  const int n = s.size();

  if (n > 0) {
    s.qmin_ = std::numeric_limits<std::int32_t>::max();
    s.qmax_ = std::numeric_limits<std::int32_t>::min();
    s.rmin_ = s.qmin_;
    s.rmax_ = s.qmax_;
    for (const Coord c : s.coords_) {
      s.qmin_ = std::min(s.qmin_, c.q);
      s.qmax_ = std::max(s.qmax_, c.q);
      s.rmin_ = std::min(s.rmin_, c.r);
      s.rmax_ = std::max(s.rmax_, c.r);
    }
  }
  s.width_ = n > 0 ? static_cast<std::int64_t>(s.qmax_) - s.qmin_ + 1 : 0;
  const std::int64_t height =
      n > 0 ? static_cast<std::int64_t>(s.rmax_) - s.rmin_ + 1 : 0;
  const std::int64_t area = s.width_ * height;

  // Dense grid unless the bounding box dwarfs the structure (then a grid
  // would waste memory on empty cells and the hash map wins).
  const bool dense = n > 0 && area <= std::max<std::int64_t>(1024, 64LL * n);
  if (dense) {
    s.grid_.assign(static_cast<std::size_t>(area), -1);
    for (int i = 0; i < n; ++i) {
      int& cell = s.grid_[s.gridIndex(s.coords_[i])];
      if (cell >= 0)
        throw std::invalid_argument("AmoebotStructure: duplicate coordinate " +
                                    s.coords_[i].toString());
      cell = i;
    }
  } else {
    s.index_.reserve(s.coords_.size() * 2);
    for (int i = 0; i < n; ++i) {
      if (!s.index_.emplace(s.coords_[i], i).second)
        throw std::invalid_argument("AmoebotStructure: duplicate coordinate " +
                                    s.coords_[i].toString());
    }
  }

  s.nbr_.resize(s.coords_.size());
  for (int i = 0; i < n; ++i) {
    for (Dir d : kAllDirs) {
      s.nbr_[i][static_cast<int>(d)] = s.idOf(s.coords_[i].neighbor(d));
    }
  }
  return s;
}

int AmoebotStructure::idOf(Coord c) const noexcept {
  if (!grid_.empty())
    return inGrid(c) ? grid_[gridIndex(c)] : -1;
  const auto it = index_.find(c);
  return it == index_.end() ? -1 : it->second;
}

int AmoebotStructure::degree(int id) const noexcept {
  int deg = 0;
  for (int d = 0; d < kNumDirs; ++d) deg += nbr_[id][d] >= 0 ? 1 : 0;
  return deg;
}

bool AmoebotStructure::isConnected() const {
  if (coords_.empty()) return true;
  std::vector<char> seen(coords_.size(), 0);
  std::queue<int> q;
  q.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int d = 0; d < kNumDirs; ++d) {
      const int v = nbr_[u][d];
      if (v >= 0 && !seen[v]) {
        seen[v] = 1;
        ++reached;
        q.push(v);
      }
    }
  }
  return reached == size();
}

bool AmoebotStructure::isHoleFree() const {
  if (coords_.empty()) return true;
  std::int32_t qmin = std::numeric_limits<std::int32_t>::max(), qmax = -qmin;
  std::int32_t rmin = qmin, rmax = -qmin;
  for (const Coord c : coords_) {
    qmin = std::min(qmin, c.q);
    qmax = std::max(qmax, c.q);
    rmin = std::min(rmin, c.r);
    rmax = std::max(rmax, c.r);
  }
  // Pad by one ring; every empty node on the pad border is in the infinite
  // component of the complement. A hole exists iff some empty node inside
  // the box cannot reach the border through empty nodes.
  qmin -= 1;
  qmax += 1;
  rmin -= 1;
  rmax += 1;
  const std::int64_t width = qmax - qmin + 1, height = rmax - rmin + 1;
  auto cellIndex = [&](Coord c) -> std::int64_t {
    return (c.r - rmin) * width + (c.q - qmin);
  };
  std::vector<char> seen(static_cast<std::size_t>(width * height), 0);
  std::queue<Coord> q;
  auto tryPush = [&](Coord c) {
    if (c.q < qmin || c.q > qmax || c.r < rmin || c.r > rmax) return;
    const auto idx = static_cast<std::size_t>(cellIndex(c));
    if (seen[idx] || idOf(c) >= 0) return;
    seen[idx] = 1;
    q.push(c);
  };
  for (std::int32_t qq = qmin; qq <= qmax; ++qq) {
    tryPush({qq, rmin});
    tryPush({qq, rmax});
  }
  for (std::int32_t rr = rmin; rr <= rmax; ++rr) {
    tryPush({qmin, rr});
    tryPush({qmax, rr});
  }
  while (!q.empty()) {
    const Coord c = q.front();
    q.pop();
    for (Dir d : kAllDirs) tryPush(c.neighbor(d));
  }
  // Any empty, unseen node inside the box is part of a hole.
  for (std::int32_t rr = rmin; rr <= rmax; ++rr) {
    for (std::int32_t qq = qmin; qq <= qmax; ++qq) {
      const Coord c{qq, rr};
      if (idOf(c) < 0 && !seen[static_cast<std::size_t>(cellIndex(c))])
        return false;
    }
  }
  return true;
}

std::vector<int> AmoebotStructure::bfsDistances(
    std::span<const int> sources) const {
  std::vector<int> dist(coords_.size(), -1);
  std::queue<int> q;
  for (const int s : sources) {
    if (dist[s] == -1) {
      dist[s] = 0;
      q.push(s);
    }
  }
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int d = 0; d < kNumDirs; ++d) {
      const int v = nbr_[u][d];
      if (v >= 0 && dist[v] == -1) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

int AmoebotStructure::eccentricity(int id) const {
  const int src[] = {id};
  const auto dist = bfsDistances(src);
  int ecc = 0;
  for (const int d : dist) ecc = std::max(ecc, d);
  return ecc;
}

}  // namespace aspf

#include "sim/sim_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace aspf {
namespace {

// Set while this thread executes a pool task (worker threads always, the
// calling thread during its own batch). A nested run() from inside a
// task would self-deadlock on the batch mutex; the flag degrades it to
// the inline serial loop instead -- results are identical by the
// callers' determinism contract, only the fan-out is skipped.
thread_local bool tlsInPoolTask = false;

}  // namespace

struct SimPool::Impl {
  // Serializes whole batches: one run() executes at a time, so the batch
  // state below always describes the single in-flight batch.
  std::mutex batchMutex;

  // Batch state, guarded by stateMutex. Task claims happen under the
  // mutex and only while `generation` still matches the generation the
  // claimant woke up for -- a late-waking worker therefore can never
  // claim an index of a newer batch against an older fn. Claims are one
  // shard each (thousands of operations), so the lock round-trip per
  // claim is noise.
  std::mutex stateMutex;
  std::condition_variable wake;  // workers wait here for a new batch
  std::condition_variable done;  // the caller waits here for completion
  const std::function<void(int)>* fn = nullptr;
  int tasks = 0;
  int next = 0;
  int finished = 0;
  std::uint64_t generation = 0;
  bool stopping = false;
  std::exception_ptr firstError;  // first throw of the current batch

  std::vector<std::thread> workers;  // guarded by batchMutex (grow-only)

  void workerLoop() {
    tlsInPoolTask = true;  // workers only ever execute pool tasks
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(stateMutex);
    while (true) {
      wake.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      runTasks(lock);
    }
  }

  /// Claims and runs tasks of the current batch until none remain.
  /// Pre/post: `lock` held. A claimed task is always finished and counted
  /// before the batch can complete, so `generation` is stable across the
  /// unlocked fn call. Never throws: a throwing task is recorded in
  /// `firstError` and still counted, so the batch always runs to
  /// completion before run() returns (and rethrows) -- the caller's fn
  /// object can never be destroyed under a live worker.
  void runTasks(std::unique_lock<std::mutex>& lock) {
    while (next < tasks) {
      const int t = next++;
      const std::function<void(int)>* f = fn;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*f)(t);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !firstError) firstError = error;
      ++finished;
      if (finished == tasks) done.notify_all();
    }
  }
};

SimPool::SimPool() : impl_(new Impl) {}

SimPool::~SimPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->stateMutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

SimPool& SimPool::instance() {
  static SimPool pool;
  return pool;
}

void SimPool::run(int tasks, int workers, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (tasks == 1 || workers <= 1 || tlsInPoolTask) {
    // Serial inline loop; tlsInPoolTask additionally guards reentrancy
    // (a nested run() from inside a pool task would deadlock on
    // batchMutex, so it degrades to this loop instead).
    for (int t = 0; t < tasks; ++t) fn(t);
    return;
  }

  // Oversubscribing CPU-bound shard work buys nothing and costs a wake
  // storm per batch, so actual parallelism is capped by the hardware --
  // but never below 2 threads, so the synchronization machinery runs (and
  // is sanitizer-checked) even on single-core hosts. Results never depend
  // on the worker count (see Comm's determinism contract), only latency
  // does.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::min(workers, std::max(2, hw));

  std::lock_guard<std::mutex> batch(impl_->batchMutex);

  // Grow the pool to the requested size (the caller counts as one).
  const int want = std::min(std::min(workers, tasks), kMaxSimThreads) - 1;
  while (static_cast<int>(impl_->workers.size()) < want)
    impl_->workers.emplace_back([this] { impl_->workerLoop(); });

  std::unique_lock<std::mutex> lock(impl_->stateMutex);
  impl_->fn = &fn;
  impl_->tasks = tasks;
  impl_->next = 0;
  impl_->finished = 0;
  impl_->firstError = nullptr;
  ++impl_->generation;
  impl_->wake.notify_all();

  tlsInPoolTask = true;   // the caller participates in its own batch
  impl_->runTasks(lock);  // noexcept: errors land in firstError
  tlsInPoolTask = false;
  impl_->done.wait(lock, [&] { return impl_->finished == impl_->tasks; });
  impl_->fn = nullptr;
  if (impl_->firstError) {
    std::exception_ptr error = impl_->firstError;
    impl_->firstError = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace aspf

#include "sim/comm.hpp"

#include <algorithm>
#include <string>

#include "sim/sim_counters.hpp"

namespace aspf {
namespace {

// Incremental updates win while the dirty set is a small fraction of the
// region; beyond n / kRebuildDivisor dirty amoebots the affected-component
// traversal approaches a full pass and the branch-free rebuild is cheaper.
constexpr int kRebuildDivisor = 4;

// The affected-component traversal also aborts once it has visited more
// than totalPins / kTraversalBudgetDivisor pins (a few dirty amoebots can
// sit on structure-spanning circuits, e.g. the global lane circuits of a
// PASC chain); past that point finishing the traversal costs more than
// the branch-free rebuild it would save. Half the arena is the break-even
// observed on the large suite: even a structure-spanning PASC chain only
// involves ~1/3 of the pins, so it stays on the incremental path and the
// untouched singleton/link circuits are never re-unioned.
constexpr std::size_t kTraversalBudgetDivisor = 2;

// Sharding gates. A Comm only shards when the region is big enough to
// amortize the pool fan-out (the divide & conquer recursion constructs
// many small sub-Comms per phase, which must stay plain serial), and each
// shard keeps a minimum width so boundary merges stay a perimeter term.
constexpr int kShardMinRegion = 512;    // below this: always serial
constexpr int kShardMinAmoebots = 256;  // minimum amoebots per shard

// Per-operation grains: a sharded Comm still runs tiny operations
// serially (identical results; the fan-out costs more than it saves).
constexpr int kDirtyDrainGrain = 1024;   // touched amoebots
constexpr std::size_t kScatterGrain = 512;   // queued beeps
constexpr std::size_t kBatchGrain = 512;     // received queries
constexpr std::size_t kSerialClosureGrain = 4096;  // affected pins

thread_local CircuitEngine tlsDefaultEngine = CircuitEngine::Incremental;
thread_local int tlsDefaultSimThreads = 1;

int shardCountFor(int n, int simThreads) {
  if (simThreads <= 1 || n < kShardMinRegion) return 1;
  return std::min(simThreads, std::max(2, n / kShardMinAmoebots));
}

// Init-list validators: members like ppa_(kNumDirs * lanes) and the
// shard geometry consume these values before the constructor body runs,
// so the range checks must fire first (out-of-range lanes would already
// overflow / mis-size the arena by then).
int checkedLanes(int lanes) {
  if (lanes < 1 || lanes > kMaxLanes)
    throw std::invalid_argument(
        "Comm: lanes must be in [1, " + std::to_string(kMaxLanes) +
        "], got " + std::to_string(lanes));
  return lanes;
}

int checkedSimThreads(int simThreads) {
  if (simThreads < 1 || simThreads > kMaxSimThreads)
    throw std::invalid_argument("Comm: sim-threads must be in [1, " +
                                std::to_string(kMaxSimThreads) + "], got " +
                                std::to_string(simThreads));
  return simThreads;
}

}  // namespace

CircuitEngine defaultCircuitEngine() noexcept { return tlsDefaultEngine; }
void setDefaultCircuitEngine(CircuitEngine engine) noexcept {
  tlsDefaultEngine = engine;
}

int defaultSimThreads() noexcept { return tlsDefaultSimThreads; }
void setDefaultSimThreads(int threads) noexcept {
  tlsDefaultSimThreads = std::clamp(threads, 1, kMaxSimThreads);
}

Comm::Comm(const Region& region, int lanes)
    : Comm(region, lanes, defaultCircuitEngine(), defaultSimThreads()) {}

Comm::Comm(const Region& region, int lanes, CircuitEngine engine)
    : Comm(region, lanes, engine, defaultSimThreads()) {}

Comm::Comm(const Region& region, int lanes, CircuitEngine engine,
           int simThreads)
    : region_(&region),
      lanes_(checkedLanes(lanes)),
      ppa_(kNumDirs * lanes),
      engine_(engine),
      simThreads_(checkedSimThreads(simThreads)),
      sharded_(shardCountFor(region.size(), simThreads) > 1),
      kernels_(&simd::kernels()),
      arena_(region.size(), lanes,
             shardCountFor(region.size(), simThreads)) {
  const std::size_t pins = static_cast<std::size_t>(region.size()) * ppa_;
  dsu_.assign(pins, -1);
  beepBits_.resize(pins);
  if (engine_ == CircuitEngine::Incremental) {
    visitedBits_.resize(pins);
    dirtyPinBits_.resize(pins);
  }
  if (sharded_) {
    const int shardCount = arena_.shardCount();
    shards_.resize(shardCount);
    for (Shard& s : shards_) s.outbox.resize(shardCount);
    inbox_.resize(shardCount);
    if (engine_ == CircuitEngine::Incremental) pinVisited_.assign(pins, 0);
  }
  buildLinkMap();
}

void Comm::buildLinkMap() {
  const int n = region_->size();
  HotPin* row = arena_.mutableHot();
  for (int a = 0; a < n; ++a, row += ppa_) {
    for (int di = 0; di < kNumDirs; ++di) {
      const int b = region_->neighbor(a, static_cast<Dir>(di));
      if (b < 0) {
        for (int lane = 0; lane < lanes_; ++lane)
          row[di * lanes_ + lane].link = -1;
      } else {
        const int oppBase =
            b * ppa_ +
            static_cast<int>(opposite(static_cast<Dir>(di))) * lanes_;
        for (int lane = 0; lane < lanes_; ++lane)
          row[di * lanes_ + lane].link = oppBase + lane;
      }
    }
  }
}

void Comm::runShards(const std::function<void(int)>& fn) {
  SimPool::instance().run(arena_.shardCount(), simThreads_, fn);
}

void Comm::resetPins() {
  if (sharded_) {
    runShards([this](int s) { arena_.resetAllShard(s); });
  } else {
    arena_.resetAll();
  }
}

void Comm::beep(int local, int label) {
  ++simCounters().beeps;
  pendingBeeps_.emplace_back(local, label);
}

int Comm::findRoot(int x) const {
  // Path-halving find: every other node on the walk is re-pointed at its
  // grandparent, amortizing to the same near-constant bound as full
  // two-pass compression with a single pass. The returned root (and
  // hence every observable) is identical either way; only the internal
  // dsu_ shape differs, which nothing outside this class can see.
  while (dsu_[x] >= 0) {
    const int parent = dsu_[x];
    const int grand = dsu_[parent];
    if (grand < 0) return parent;
    dsu_[x] = grand;
    x = grand;
  }
  return x;
}

int Comm::findRootConst(int x) const noexcept {
  while (dsu_[x] >= 0) x = dsu_[x];
  return x;
}

void Comm::unite(int a, int b, long* unions) {
  a = findRoot(a);
  b = findRoot(b);
  if (a == b) return;
  if (dsu_[a] > dsu_[b]) std::swap(a, b);
  dsu_[a] += dsu_[b];
  dsu_[b] = a;
  ++*unions;  // flushed into simCounters() once per deliver
}

void Comm::rebuildAll() {
  const int pins = region_->size() * ppa_;
  std::fill(dsu_.begin(), dsu_.end(), -1);

  // Set-level rebuild: a partition set is born merged under its lead pin
  // (the -1 fill made every lead a fresh singleton root), so the only
  // unions are the external links -- each has exactly one smaller
  // endpoint, so `link > node` unions each once, lead-to-lead. The
  // reported counter keeps the pin-level semantics: the per-pin scheme
  // performed |pins| - |sets| additional successful unions (merging each
  // set's members), a number independent of union order.
  const HotPin* hot = arena_.hot();
  long sets = 0;
  for (int node = 0; node < pins; ++node) {
    const HotPin h = hot[node];
    if (h.leadDelta == 0) ++sets;
    const int nb = h.link;
    if (nb > node)
      unite(node + h.leadDelta, nb + hot[nb].leadDelta, &unionsScratch_);
  }
  unionsScratch_ += pins - sets;
}

void Comm::rebuildAllSharded() {
  // Phase A (parallel): each shard clears its own dsu range and unions
  // the links whose BOTH endpoints it owns, lead-to-lead. A lead node is
  // always in its pin's own amoebot, and `node < nb < hiPin` implies both
  // amoebots are in-shard, so union-find chains can never leave the shard:
  // the shards touch disjoint dsu index ranges, race-free by
  // construction. (Reading a neighbor shard's HotPin for its leadDelta is
  // fine -- the hot plane is read-only during parallel phases.)
  // Shard-crossing links are collected by the shard owning the smaller
  // endpoint (so each appears exactly once), already lead-mapped. The
  // pin-level counter padding |shard pins| - |shard sets| is additive
  // over shards.
  runShards([this](int s) {
    Shard& sc = shards_[s];
    const int loPin = arena_.shardBegin(s) * ppa_;
    const int hiPin = arena_.shardEnd(s) * ppa_;
    std::fill(dsu_.begin() + loPin, dsu_.begin() + hiPin, -1);
    const HotPin* hot = arena_.hot();
    long sets = 0;
    for (int node = loPin; node < hiPin; ++node) {
      const HotPin h = hot[node];
      if (h.leadDelta == 0) ++sets;
      const int nb = h.link;
      if (nb > node) {
        const int la = node + h.leadDelta;
        const int lb = nb + hot[nb].leadDelta;
        if (nb < hiPin)
          unite(la, lb, &sc.unions);
        else
          sc.boundary.emplace_back(la, lb);
      }
    }
    sc.unions += (hiPin - loPin) - sets;
  });
  mergeShardBoundaries();
}

void Comm::mergeShardBoundaries() {
  // Serial, deterministic closing pass of both sharded engines: merge
  // the shard-crossing links (already lead-mapped by their emitting
  // shard) in ascending shard order and roll the per-shard union counts
  // up. The reported total is exactly the serial engine's: the set-level
  // successful-union count is |sets| - |circuits| of the recomputed
  // subgraph no matter how the unions were ordered or partitioned, and
  // the per-shard pin-level paddings sum to |pins| - |sets| of the same
  // subgraph.
  for (Shard& sc : shards_) {
    for (const auto& [x, y] : sc.boundary) unite(x, y, &unionsScratch_);
    sc.boundary.clear();
    unionsScratch_ += sc.unions;
    sc.unions = 0;
  }
}

bool Comm::serialClosureScan(std::size_t limit) {
  // Invariant: partition sets never span circuits, and the two pins of an
  // external link always share a circuit. Hence the circuits that can
  // change this round are exactly the connected components (under the
  // *previous* configurations) containing a pin of a dirty amoebot, and a
  // traversal of the old circuit graph from all dirty pins discovers every
  // pin whose component must be recomputed -- including both endpoints of
  // every external link it crosses. Processing a pin reads ONE fused
  // HotPin record (snapshot deltas for pins of dirty amoebots, the
  // unchanged current deltas for clean ones -- and the seed prefix of the
  // worklist is exactly the dirty pins, so the choice is positional), so
  // each step is one indexed 8-byte load with no divisions, and the
  // whole update costs O(affected pins * alpha).
  //
  // Teardown and re-union are FUSED into the single traversal. The key is
  // the detach-at-first-sight rule inside visit(): every newly marked pin
  // gets dsu_[x] = -1 immediately. That is idempotent for non-leads (the
  // dsu_ invariant keeps them at -1), dissolves old-circuit trees (their
  // members are old leads, and every old lead of the closure is marked),
  // and turns every NEW lead into a fresh singleton root BEFORE any union
  // can touch it -- because a union's two arguments are always visit()ed
  // first, and union trees only ever contain already-detached leads, a
  // root chase can never escape into a stale tree. Each external link is
  // united lead-to-lead once, from its smaller endpoint; a lead is a pin
  // of the same amoebot as its member (partition sets never span
  // amoebots), so the lead lookups stay on the already-loaded hot row.
  //
  // visitedPins_ doubles as the traversal worklist (scanned by cursor,
  // appended in place). The reported counter is padded to the historical
  // pin-level semantics: the per-pin scheme performed |closure pins| -
  // |closure sets| extra successful unions, counted order-independently
  // (a closure set is identified by its lead pin). Returns false once
  // more than `limit` pins are visited -- the closure provably exceeds
  // the limit no matter the visit order, so the decision is
  // deterministic; partial unions and detaches are harmless because the
  // caller falls back to rebuildAll(), which refills the entire dsu, and
  // the partial counter bump is rolled back here.
  const HotPin* hot = arena_.hot();
  const long unionsBefore = unionsScratch_;
  auto visit = [&](int node) {
    if (!visitedBits_.test(node)) {
      visitedBits_.set(node);
      visitedPins_.push_back(node);
      dsu_[node] = -1;  // detach at first sight (idempotent for non-leads)
    }
  };
  for (const int a : dirtyList_) {
    const int base = a * ppa_;
    for (int p = 0; p < ppa_; ++p) visit(base + p);
  }
  // The seed prefix is exactly the dirty amoebots' pins, and any later
  // discovery of a dirty pin dedups against it -- so the snapshot-vs-
  // current choice needs no per-pin membership test: the first
  // `seedCount` worklist entries read the snapshot deltas, everything
  // after them is clean and reads the current ones.
  const std::size_t seedCount = visitedPins_.size();
  long newLeads = 0;
  for (std::size_t i = 0; i < visitedPins_.size(); ++i) {
    if (visitedPins_.size() > limit) {
      unionsScratch_ = unionsBefore;
      return false;
    }
    // The worklist ahead of the cursor is already materialized, so the
    // upcoming records can stream in behind the dependent loads.
    if (i + 8 < visitedPins_.size())
      __builtin_prefetch(&hot[visitedPins_[i + 8]]);
    const int node = visitedPins_[i];
    const HotPin h = hot[node];
    if (h.leadDelta == 0) ++newLeads;
    // Next pin of the same (old) partition set: following the circular
    // list visits the whole set by the time all its members are scanned.
    visit(node + (i < seedCount ? h.prevDelta : h.delta));
    const int nb = h.link;
    if (nb >= 0) {
      visit(nb);
      if (nb > node) {
        const int la = node + h.leadDelta;
        const int lb = nb + hot[nb].leadDelta;
        visit(la);
        visit(lb);
        unite(la, lb, &unionsScratch_);
      }
    }
  }
  unionsScratch_ += static_cast<long>(visitedPins_.size()) - newLeads;
  for (const int node : visitedPins_) visitedBits_.clear(node);
  visitedPins_.clear();
  return true;
}

void Comm::markDirtyPins() {
  for (const int a : dirtyList_)
    dirtyPinBits_.setRangeTracked(static_cast<std::size_t>(a) * ppa_,
                                  static_cast<std::size_t>(ppa_));
}

void Comm::clearDirtyPins() {
  simCounters().bitsetWordsScanned +=
      static_cast<long>(dirtyPinBits_.resetTracked());
}

bool Comm::incrementalUpdate() {
  markDirtyPins();
  const std::size_t budget = dsu_.size() / kTraversalBudgetDivisor;
  if (!serialClosureScan(budget)) {
    for (const int node : visitedPins_) visitedBits_.clear(node);
    visitedPins_.clear();
    clearDirtyPins();
    rebuildAll();
    return false;
  }
  clearDirtyPins();
  return true;
}

void Comm::chaseShard(int shard, std::size_t budget) {
  // One level of the sharded traversal: consume this shard's inbox and
  // chase every reachable in-shard pin to exhaustion (the level count is
  // therefore bounded by shard-boundary crossings, not circuit diameter);
  // pins discovered across a shard boundary go to that shard's outbox.
  // Duplicates across levels are possible (we cannot read another
  // shard's visited marks race-free) and are deduplicated by the owner.
  // Shard membership of a neighbor pin is one range compare against this
  // shard's pin window; the division to find the owning shard happens
  // only on the rare cross-boundary path.
  Shard& sc = shards_[shard];
  const int loPin = arena_.shardBegin(shard) * ppa_;
  const int hiPin = arena_.shardEnd(shard) * ppa_;
  const HotPin* hot = arena_.hot();
  auto visitLocal = [&](int node) {
    if (!pinVisited_[node]) {
      pinVisited_[node] = 1;
      sc.visited.push_back(node);
      sc.frontier.push_back(node);
    }
  };
  for (const int node : inbox_[shard]) visitLocal(node);
  inbox_[shard].clear();
  while (!sc.frontier.empty()) {
    // A shard past the global budget on its own can stop early: the
    // caller is guaranteed to abort this round to a full rebuild.
    if (sc.visited.size() > budget) {
      sc.frontier.clear();
      return;
    }
    const int node = sc.frontier.back();
    sc.frontier.pop_back();
    const HotPin h = hot[node];
    std::int8_t succDelta, leadDelta;
    if (dirtyPinBits_.test(node)) {
      succDelta = h.prevDelta;
      leadDelta = h.prevLeadDelta;
    } else {
      succDelta = h.delta;
      leadDelta = h.leadDelta;
    }
    // Old-lead detach, as in the serial scan. `node` is in-shard, so the
    // write stays inside this shard's dsu range: race-free.
    if (leadDelta == 0) dsu_[node] = -1;
    visitLocal(node + succDelta);  // same amoebot: always in-shard
    const int nb = h.link;
    if (nb >= 0) {
      if (nb >= loPin && nb < hiPin)
        visitLocal(nb);
      else
        sc.outbox[arena_.shardOf(nb / ppa_)].push_back(nb);
    }
  }
}

void Comm::reunionShard(int shard) {
  // Recompute the affected components from the current configurations,
  // shard-locally: the closure's lead nodes are all fresh singletons (see
  // serialReunion), and every union whose both link endpoints this shard
  // owns keeps its chains inside the shard (lead nodes live in their
  // pin's own amoebot). Shard-crossing links are deferred, lead-mapped,
  // to the serial boundary merge -- so this pass also retires the
  // visited set (mark clearing folded in to save a pool batch). Each
  // link is handled by its smaller endpoint, whose owning shard either
  // unions it locally or emits it once. The pin-level counter padding
  // |closure pins| - |closure sets| is additive over shards (each
  // closure pin is in exactly one shard's visited list).
  Shard& sc = shards_[shard];
  const int hiPin = arena_.shardEnd(shard) * ppa_;
  const HotPin* hot = arena_.hot();
  long newLeads = 0;
  const std::size_t count = sc.visited.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + 8 < count) __builtin_prefetch(&hot[sc.visited[i + 8]]);
    const int node = sc.visited[i];
    pinVisited_[node] = 0;
    const HotPin h = hot[node];
    if (h.leadDelta == 0) ++newLeads;
    const int nb = h.link;
    if (nb > node) {
      const int la = node + h.leadDelta;
      const int lb = nb + hot[nb].leadDelta;
      if (nb < hiPin)
        unite(la, lb, &sc.unions);
      else
        sc.boundary.emplace_back(la, lb);
    }
  }
  sc.unions += static_cast<long>(count) - newLeads;
  sc.visited.clear();
}

bool Comm::incrementalUpdateSharded() {
  // Same closure, same re-union edge set, same fallback decision as
  // incrementalUpdate() -- only the execution order differs, and no
  // observable depends on it (see the determinism note in the header).
  const int shardCount = arena_.shardCount();
  markDirtyPins();

  // Small-closure fast path: sparse-frontier rounds (the paper's "one
  // amoebot reconfigures" pattern) repair circuits of a few thousand
  // pins, where the pool fan-out costs more than the repair. Chase the
  // closure serially up to a grain; only a closure that provably
  // exceeds it pays for the sharded traversal. Rolling back is cheap
  // and exact: every dsu word the fused scan wrote (detaches and
  // partial union trees alike) belongs to a visited pin, so re-detaching
  // the visited list restores the "non-lead == -1" invariant verbatim,
  // the counter bump was already rolled back by the scan itself, and
  // every visited pin is in the closure and gets revisited.
  const std::size_t budget = dsu_.size() / kTraversalBudgetDivisor;
  const std::size_t grain = std::min(kSerialClosureGrain, budget);
  if (serialClosureScan(grain)) {
    clearDirtyPins();
    return true;
  }
  for (const int node : visitedPins_) {
    visitedBits_.clear(node);
    dsu_[node] = -1;
  }
  visitedPins_.clear();
  if (grain == budget) {
    // The closure already exceeds the traversal budget -- the same
    // abort decision the serial engine takes.
    clearDirtyPins();
    rebuildAllSharded();
    return false;
  }

  for (const int a : dirtyList_) {
    std::vector<int>& in = inbox_[arena_.shardOf(a)];
    const int base = a * ppa_;
    for (int p = 0; p < ppa_; ++p) in.push_back(base + p);
  }

  bool aborted = false;
  while (true) {
    runShards([this, budget](int s) { chaseShard(s, budget); });
    std::size_t total = 0;
    for (const Shard& sc : shards_) total += sc.visited.size();
    if (total > budget) {  // identical decision to the serial engine:
      aborted = true;      // abort iff |closure| > budget
      break;
    }
    bool pending = false;
    for (int s = 0; s < shardCount; ++s) {
      for (int t = 0; t < shardCount; ++t) {
        std::vector<int>& ob = shards_[s].outbox[t];
        if (ob.empty()) continue;
        inbox_[t].insert(inbox_[t].end(), ob.begin(), ob.end());
        ob.clear();
        pending = true;
      }
    }
    if (!pending) break;
  }

  if (aborted) {
    runShards([this](int s) {
      Shard& sc = shards_[s];
      for (const int node : sc.visited) pinVisited_[node] = 0;
      sc.visited.clear();
      sc.frontier.clear();
      for (std::vector<int>& ob : sc.outbox) ob.clear();
    });
    for (std::vector<int>& in : inbox_) in.clear();
    clearDirtyPins();
    rebuildAllSharded();
    return false;
  }

  runShards([this](int s) { reunionShard(s); });
  mergeShardBoundaries();
  clearDirtyPins();
  return true;
}

void Comm::collectDirty() {
  const int touched = arena_.touchedCount();
  // Every touched amoebot costs the drain exactly one 32-byte block
  // compare, on either drain path.
  simCounters().blockCompares += touched;
  if (sharded_ && touched >= kDirtyDrainGrain) {
    runShards([this](int s) {
      shards_[s].dirty.clear();
      arena_.takeDirtyShard(s, &shards_[s].dirty);
    });
    // Concatenate in ascending shard order -- the exact order the serial
    // drain produces, so dirtyList_ is identical on both paths.
    for (const Shard& sc : shards_)
      dirtyList_.insert(dirtyList_.end(), sc.dirty.begin(), sc.dirty.end());
  } else {
    arena_.takeDirty(&dirtyList_);
  }
}

void Comm::scatterBeeps() {
  // Tracked reset == the old epoch bump: no bit from the previous round
  // survives, at O(words actually stamped) cost.
  simCounters().bitsetWordsScanned +=
      static_cast<long>(beepBits_.resetTracked());
  if (pendingBeeps_.empty()) return;
  if (sharded_ && pendingBeeps_.size() >= kScatterGrain) {
    // Parallel root resolution (read-only: non-compressing batched
    // finds), then a serial O(beeps) stamping pass. Roots do not depend
    // on compression or batching, so the stamped set matches the serial
    // path exactly.
    beepRoots_.resize(pendingBeeps_.size());
    const int tasks = arena_.shardCount();
    const std::size_t chunk =
        (pendingBeeps_.size() + tasks - 1) / static_cast<std::size_t>(tasks);
    runShards([this, chunk](int t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(lo + chunk, pendingBeeps_.size());
      if (lo >= hi) return;
      std::vector<int> nodes;
      std::vector<std::size_t> at;
      nodes.reserve(hi - lo);
      at.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        beepRoots_[i] = -1;
        const auto& [a, label] = pendingBeeps_[i];
        // Beep on the partition set = beep on its lead pin: the kernel's
        // first-match IS the set's lowest-indexed member, which is its
        // union-find word under the set-level dsu.
        const int p = kernels_->findLabelPin(arena_.labelsOf(a),
                                             static_cast<std::int8_t>(label));
        if (p >= 0 && p < ppa_) {
          nodes.push_back(pinNode(a, p));
          at.push_back(i);
        }
      }
      std::vector<int> roots(nodes.size());
      kernels_->resolveRoots(dsu_.data(), nodes.data(), nodes.size(),
                             roots.data());
      for (std::size_t j = 0; j < at.size(); ++j) beepRoots_[at[j]] = roots[j];
    });
    for (const int root : beepRoots_) {
      if (root >= 0) beepBits_.setTracked(root);
    }
  } else {
    scratchNodes_.clear();
    for (const auto& [a, label] : pendingBeeps_) {
      // Beep on the partition set = beep on its lead pin (first match).
      const int p = kernels_->findLabelPin(arena_.labelsOf(a),
                                           static_cast<std::int8_t>(label));
      if (p >= 0 && p < ppa_) scratchNodes_.push_back(pinNode(a, p));
    }
    beepRoots_.resize(scratchNodes_.size());
    kernels_->resolveRoots(dsu_.data(), scratchNodes_.data(),
                           scratchNodes_.size(), beepRoots_.data());
    for (const int root : beepRoots_) beepBits_.setTracked(root);
  }
  pendingBeeps_.clear();
}

void Comm::deliver() {
  const int n = region_->size();
  SimCounters& counters = simCounters();

  dirtyList_.clear();
  collectDirty();
  if (!rebindDirty_.empty()) {
    // A rebind() preceded this round: merge the structurally invalidated
    // amoebots with the protocol-dirty ones (deduplicated, so dirty
    // counters stay exact) before the incremental-vs-rebuild decision.
    std::vector<std::uint8_t> seen(n, 0);
    for (const int a : dirtyList_) seen[a] = 1;
    for (const int a : rebindDirty_) {
      if (!seen[a]) dirtyList_.push_back(a);
    }
    rebindDirty_.clear();
  }
  if (engine_ == CircuitEngine::Rebuild || !everDelivered_ ||
      static_cast<long>(dirtyList_.size()) * kRebuildDivisor >=
          static_cast<long>(n)) {
    if (sharded_)
      rebuildAllSharded();
    else
      rebuildAll();
    ++counters.rebuildRounds;
  } else if (dirtyList_.empty() || (sharded_ ? incrementalUpdateSharded()
                                             : incrementalUpdate())) {
    ++counters.incrementalRounds;
  } else {
    ++counters.rebuildRounds;  // traversal hit its budget and rebuilt
  }
  counters.unions += unionsScratch_;
  unionsScratch_ = 0;
  counters.dirtyAmoebots += static_cast<long>(dirtyList_.size());
  counters.amoebotRounds += n;
  everDelivered_ = true;

  scatterBeeps();
  ++rounds_;
  ++counters.delivers;
}

void Comm::rebind(const Region& newRegion,
                  std::span<const int> oldLocalOfNew) {
  const int oldN = region_->size();
  const int newN = newRegion.size();
  if (static_cast<int>(oldLocalOfNew.size()) != newN)
    throw std::invalid_argument(
        "Comm::rebind: mapping size does not match the new region");

  // Validate the whole mapping BEFORE touching any state: a rejected
  // rebind must leave the Comm exactly as it was (dirty tracking
  // included), so the caller can recover from the exception.
  std::vector<int> newLocalOfOld(oldN, -1);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    if (o < -1 || o >= oldN)
      throw std::invalid_argument("Comm::rebind: old local id out of range");
    if (o >= 0) {
      if (newLocalOfOld[o] != -1)
        throw std::invalid_argument(
            "Comm::rebind: duplicate old local id in mapping");
      newLocalOfOld[o] = i;
    }
  }

  // Flush mutations the protocol issued after its last deliver(): their
  // circuits were never recomputed, so the owning amoebots must join the
  // post-rebind dirty set. This also reconciles the arena's successor
  // deltas, which remap() copies verbatim.
  std::vector<int> oldDirty;
  arena_.takeDirty(&oldDirty);
  std::vector<std::uint8_t> oldDirtyFlag(oldN, 0);
  for (const int a : oldDirty) oldDirtyFlag[a] = 1;
  for (const int a : rebindDirty_) oldDirtyFlag[a] = 1;  // back-to-back rebinds
  rebindDirty_.clear();

  // Dirty iff newly attached, carried over undelivered mutations, or the
  // 6-neighborhood changed (a neighbor appeared, vanished, or is now a
  // different physical amoebot). Every surviving fragment of a circuit
  // that lost a pin contains a former neighbor of a removed amoebot --
  // covered here -- so the next deliver()'s affected-closure traversal
  // provably reaches all of it (see docs/ARCHITECTURE.md).
  std::vector<std::uint8_t> dirty(newN, 0);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    bool d = o < 0 || oldDirtyFlag[o];
    if (!d) {
      for (int di = 0; di < kNumDirs; ++di) {
        const int ob = region_->neighbor(o, static_cast<Dir>(di));
        const int nb = newRegion.neighbor(i, static_cast<Dir>(di));
        // Changed iff the slot gained a neighbor, lost one (a removed old
        // neighbor maps to -1, which must NOT compare equal to "empty"),
        // or now holds a different physical amoebot.
        const bool changed =
            ob < 0 ? nb >= 0 : (nb < 0 || newLocalOfOld[ob] != nb);
        if (changed) {
          d = true;
          break;
        }
      }
    }
    dirty[i] = d;
  }

  // Union-find carry-over: permute the surviving nodes, giving every old
  // circuit one deterministic surviving representative (the first member
  // in ascending new pin-node order; tree members are lead nodes, and a
  // non-lead pin is its own degenerate root, so the dsu_ invariant --
  // non-leads stay -1 -- survives the permutation). Circuits that lost
  // members are repaired by the traversal; the rest stay correct as-is.
  const std::size_t newPins = static_cast<std::size_t>(newN) * ppa_;
  std::vector<int> newDsu(newPins, -1);
  std::vector<int> repOfOldRoot(dsu_.size(), -1);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    if (o < 0) continue;
    for (int p = 0; p < ppa_; ++p) {
      const int node = i * ppa_ + p;
      int& rep = repOfOldRoot[findRootConst(o * ppa_ + p)];
      if (rep < 0) {
        rep = node;  // stays a root; its (negative) size grows below
      } else {
        newDsu[node] = rep;
        --newDsu[rep];
      }
    }
  }
  dsu_ = std::move(newDsu);

  arena_.remap(newN, oldLocalOfNew, shardCountFor(newN, simThreads_));
  sharded_ = arena_.shardCount() > 1;
  shards_.clear();
  inbox_.clear();
  pinVisited_.clear();
  if (sharded_) {
    const int shardCount = arena_.shardCount();
    shards_.resize(shardCount);
    for (Shard& s : shards_) s.outbox.resize(shardCount);
    inbox_.resize(shardCount);
    if (engine_ == CircuitEngine::Incremental)
      pinVisited_.assign(newPins, 0);
  }
  beepBits_.resize(newPins);  // invalidates all received() state
  if (engine_ == CircuitEngine::Incremental) {
    visitedBits_.resize(newPins);
    dirtyPinBits_.resize(newPins);
  }
  pendingBeeps_.clear();
  visitedPins_.clear();
  dirtyList_.clear();
  beepRoots_.clear();
  scratchNodes_.clear();
  for (int i = 0; i < newN; ++i) {
    if (dirty[i]) rebindDirty_.push_back(i);
  }
  region_ = &newRegion;
  buildLinkMap();
  rounds_ = 0;  // a rebind starts a new protocol execution
}

bool Comm::received(int local, int label) const {
  if (!everDelivered_) return false;
  // The kernel scans the whole 32-byte block; the arena keeps identity
  // values >= ppa_ in the tail, so a tail hit can only happen for an
  // out-of-range label and is rejected by the bound check -- identical
  // to the scalar per-pin scan on every table. The first match is the
  // set's lowest-indexed member: its lead, i.e. its union-find word.
  const int p = kernels_->findLabelPin(arena_.labelsOf(local),
                                       static_cast<std::int8_t>(label));
  if (p < 0 || p >= ppa_) return false;
  return beepBits_.test(findRoot(pinNode(local, p)));
}

bool Comm::receivedAny(int local) const {
  if (!everDelivered_) return false;
  // Every pin's circuit is its lead's circuit, so scanning the amoebot's
  // lead pins covers all of its partition sets.
  const HotPin* hot = arena_.hot();
  const int base = local * ppa_;
  for (int p = 0; p < ppa_; ++p) {
    if (hot[base + p].leadDelta == 0 &&
        beepBits_.test(findRoot(base + p)))
      return true;
  }
  return false;
}

void Comm::receivedBatch(std::span<const PinQuery> queries,
                         std::vector<char>* out) const {
  queryNodes_.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    queryNodes_[i] = pinNode(queries[i].local, pinIndex(queries[i].pin, lanes_));
  receivedNodes(queryNodes_, out);
}

void Comm::receivedNodes(std::span<const int> nodes,
                         std::vector<char>* out) const {
  out->assign(nodes.size(), 0);
  if (!everDelivered_ || nodes.empty()) return;
  queryLeads_.resize(nodes.size());
  queryRoots_.resize(nodes.size());
  const HotPin* hot = arena_.hot();
  if (sharded_ && nodes.size() >= kBatchGrain) {
    // Read-only parallel evaluation over index ranges: one HotPin load
    // maps each queried pin to its set's lead (the union-find word),
    // then non-compressing batched finds; disjoint output ranges. All
    // pins of a partition set share a circuit, so resolving the lead
    // equals resolving the queried pin.
    const int tasks = arena_.shardCount();
    const std::size_t chunk =
        (nodes.size() + tasks - 1) / static_cast<std::size_t>(tasks);
    const std::function<void(int)> task = [&](int t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(lo + chunk, nodes.size());
      if (lo >= hi) return;
      for (std::size_t i = lo; i < hi; ++i)
        queryLeads_[i] = nodes[i] + hot[nodes[i]].leadDelta;
      kernels_->resolveRoots(dsu_.data(), queryLeads_.data() + lo, hi - lo,
                             queryRoots_.data() + lo);
      for (std::size_t i = lo; i < hi; ++i)
        (*out)[i] = beepBits_.test(queryRoots_[i]) ? 1 : 0;
    };
    SimPool::instance().run(tasks, simThreads_, task);
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      queryLeads_[i] = nodes[i] + hot[nodes[i]].leadDelta;
    kernels_->resolveRoots(dsu_.data(), queryLeads_.data(), nodes.size(),
                           queryRoots_.data());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      (*out)[i] = beepBits_.test(queryRoots_[i]) ? 1 : 0;
  }
}

long parallelRounds(std::span<const long> executions) {
  if (executions.empty()) return 0;  // no sub-protocol ran, no sync beep
  long mx = 0;
  for (const long r : executions) mx = std::max(mx, r);
  return mx + 1;  // + global synchronization beep [26]
}

}  // namespace aspf

#include "sim/comm.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "sim/sim_counters.hpp"

namespace aspf {
namespace {

// Incremental updates win while the dirty set is a small fraction of the
// region; beyond n / kRebuildDivisor dirty amoebots the affected-component
// traversal approaches a full pass and the branch-free rebuild is cheaper.
constexpr int kRebuildDivisor = 4;

// The affected-component traversal also aborts once it has visited more
// than totalPins / kTraversalBudgetDivisor pins (a few dirty amoebots can
// sit on structure-spanning circuits, e.g. the global lane circuits of a
// PASC chain); past that point finishing the traversal costs more than
// the branch-free rebuild it would save. Half the arena is the break-even
// observed on the large suite: even a structure-spanning PASC chain only
// involves ~1/3 of the pins, so it stays on the incremental path and the
// untouched singleton/link circuits are never re-unioned.
constexpr std::size_t kTraversalBudgetDivisor = 2;

// Sharding gates. A Comm only shards when the region is big enough to
// amortize the pool fan-out (the divide & conquer recursion constructs
// many small sub-Comms per phase, which must stay plain serial), and each
// shard keeps a minimum width so boundary merges stay a perimeter term.
constexpr int kShardMinRegion = 512;    // below this: always serial
constexpr int kShardMinAmoebots = 256;  // minimum amoebots per shard

// Per-operation grains: a sharded Comm still runs tiny operations
// serially (identical results; the fan-out costs more than it saves).
constexpr int kDirtyDrainGrain = 1024;   // touched amoebots
constexpr std::size_t kScatterGrain = 512;   // queued beeps
constexpr std::size_t kBatchGrain = 512;     // received queries
constexpr std::size_t kSerialClosureGrain = 4096;  // affected pins

thread_local CircuitEngine tlsDefaultEngine = CircuitEngine::Incremental;
thread_local int tlsDefaultSimThreads = 1;

int shardCountFor(int n, int simThreads) {
  if (simThreads <= 1 || n < kShardMinRegion) return 1;
  return std::min(simThreads, std::max(2, n / kShardMinAmoebots));
}

// Init-list validators: members like ppa_(kNumDirs * lanes) and the
// shard geometry consume these values before the constructor body runs,
// so the range checks must fire first (out-of-range lanes would already
// overflow / mis-size the arena by then).
int checkedLanes(int lanes) {
  if (lanes < 1 || lanes > kMaxLanes)
    throw std::invalid_argument(
        "Comm: lanes must be in [1, " + std::to_string(kMaxLanes) +
        "], got " + std::to_string(lanes));
  return lanes;
}

int checkedSimThreads(int simThreads) {
  if (simThreads < 1 || simThreads > kMaxSimThreads)
    throw std::invalid_argument("Comm: sim-threads must be in [1, " +
                                std::to_string(kMaxSimThreads) + "], got " +
                                std::to_string(simThreads));
  return simThreads;
}

}  // namespace

CircuitEngine defaultCircuitEngine() noexcept { return tlsDefaultEngine; }
void setDefaultCircuitEngine(CircuitEngine engine) noexcept {
  tlsDefaultEngine = engine;
}

int defaultSimThreads() noexcept { return tlsDefaultSimThreads; }
void setDefaultSimThreads(int threads) noexcept {
  tlsDefaultSimThreads = std::clamp(threads, 1, kMaxSimThreads);
}

Comm::Comm(const Region& region, int lanes)
    : Comm(region, lanes, defaultCircuitEngine(), defaultSimThreads()) {}

Comm::Comm(const Region& region, int lanes, CircuitEngine engine)
    : Comm(region, lanes, engine, defaultSimThreads()) {}

Comm::Comm(const Region& region, int lanes, CircuitEngine engine,
           int simThreads)
    : region_(&region),
      lanes_(checkedLanes(lanes)),
      ppa_(kNumDirs * lanes),
      engine_(engine),
      simThreads_(checkedSimThreads(simThreads)),
      sharded_(shardCountFor(region.size(), simThreads) > 1),
      arena_(region.size(), lanes,
             shardCountFor(region.size(), simThreads)) {
  const std::size_t pins = static_cast<std::size_t>(region.size()) * ppa_;
  dsu_.assign(pins, -1);
  beepEpoch_.assign(pins, 0);
  if (engine_ == CircuitEngine::Incremental) {
    pinVisited_.assign(pins, 0);
    dirtyFlag_.assign(region.size(), 0);
  }
  if (sharded_) {
    const int shardCount = arena_.shardCount();
    shards_.resize(shardCount);
    for (Shard& s : shards_) s.outbox.resize(shardCount);
    inbox_.resize(shardCount);
  }
}

void Comm::runShards(const std::function<void(int)>& fn) {
  SimPool::instance().run(arena_.shardCount(), simThreads_, fn);
}

void Comm::resetPins() {
  if (sharded_) {
    runShards([this](int s) { arena_.resetAllShard(s); });
  } else {
    arena_.resetAll();
  }
}

void Comm::beep(int local, int label) {
  ++simCounters().beeps;
  pendingBeeps_.emplace_back(local, label);
}

int Comm::findRoot(int x) const {
  int r = x;
  while (dsu_[r] >= 0) r = dsu_[r];
  while (dsu_[x] >= 0) {
    const int next = dsu_[x];
    dsu_[x] = r;
    x = next;
  }
  return r;
}

int Comm::findRootConst(int x) const noexcept {
  while (dsu_[x] >= 0) x = dsu_[x];
  return x;
}

void Comm::unite(int a, int b, long* unions) {
  a = findRoot(a);
  b = findRoot(b);
  if (a == b) return;
  if (dsu_[a] > dsu_[b]) std::swap(a, b);
  dsu_[a] += dsu_[b];
  dsu_[b] = a;
  ++*unions;  // flushed into simCounters() once per deliver
}

void Comm::rebuildAll() {
  const int n = region_->size();
  std::fill(dsu_.begin(), dsu_.end(), -1);

  // Partition sets: union pins of an amoebot sharing a label.
  std::array<int, kNumDirs * kMaxLanes> firstWithLabel{};
  for (int a = 0; a < n; ++a) {
    firstWithLabel.fill(-1);
    const std::int8_t* labels = arena_.labelsOf(a);
    for (int p = 0; p < ppa_; ++p) {
      const int label = labels[p];
      if (firstWithLabel[label] < 0)
        firstWithLabel[label] = p;
      else
        unite(pinNode(a, firstWithLabel[label]), pinNode(a, p),
              &unionsScratch_);
    }
  }
  // External links: pin (a, d, lane) is wired to (b, opposite(d), lane).
  for (int a = 0; a < n; ++a) {
    for (int di = 0; di < 3; ++di) {  // E, NE, NW suffice (symmetry)
      const Dir d = static_cast<Dir>(di);
      const int b = region_->neighbor(a, d);
      if (b < 0) continue;
      for (int lane = 0; lane < lanes_; ++lane) {
        unite(pinNode(a, pinIndex({d, static_cast<std::uint8_t>(lane)}, lanes_)),
              pinNode(b, pinIndex({opposite(d), static_cast<std::uint8_t>(lane)},
                                  lanes_)),
              &unionsScratch_);
      }
    }
  }
}

void Comm::rebuildAllSharded() {
  // Phase A (parallel): each shard clears its own dsu range and unions
  // the edges whose BOTH endpoints it owns -- all intra-amoebot partition
  // edges plus the shard-internal links. Union-find chains can never
  // leave the shard (every union so far joined two in-shard pins), so
  // the shards touch disjoint dsu index ranges: race-free by
  // construction. Shard-crossing links are collected per shard.
  runShards([this](int s) {
    Shard& sc = shards_[s];
    const int lo = arena_.shardBegin(s);
    const int hi = arena_.shardEnd(s);
    std::fill(dsu_.begin() + static_cast<std::size_t>(lo) * ppa_,
              dsu_.begin() + static_cast<std::size_t>(hi) * ppa_, -1);
    std::array<int, kNumDirs * kMaxLanes> firstWithLabel{};
    for (int a = lo; a < hi; ++a) {
      firstWithLabel.fill(-1);
      const std::int8_t* labels = arena_.labelsOf(a);
      for (int p = 0; p < ppa_; ++p) {
        const int label = labels[p];
        if (firstWithLabel[label] < 0)
          firstWithLabel[label] = p;
        else
          unite(pinNode(a, firstWithLabel[label]), pinNode(a, p), &sc.unions);
      }
    }
    for (int a = lo; a < hi; ++a) {
      for (int di = 0; di < 3; ++di) {  // E, NE, NW suffice (symmetry)
        const int b = region_->neighbor(a, static_cast<Dir>(di));
        if (b < 0) continue;
        const int opp = di + 3;
        for (int lane = 0; lane < lanes_; ++lane) {
          const int x = pinNode(a, di * lanes_ + lane);
          const int y = pinNode(b, opp * lanes_ + lane);
          if (arena_.shardOf(b) == s)
            unite(x, y, &sc.unions);
          else
            sc.boundary.emplace_back(x, y);
        }
      }
    }
  });
  mergeShardBoundaries();
}

void Comm::mergeShardBoundaries() {
  // Serial, deterministic closing pass of both sharded engines: merge
  // the shard-crossing links in ascending shard order and roll the
  // per-shard union counts up. The total successful-union count is
  // |pins| - |circuits| no matter how the unions were ordered or
  // partitioned, so the counter matches the serial engine exactly.
  for (Shard& sc : shards_) {
    for (const auto& [x, y] : sc.boundary) unite(x, y, &unionsScratch_);
    sc.boundary.clear();
    unionsScratch_ += sc.unions;
    sc.unions = 0;
  }
}

bool Comm::serialClosureScan(std::size_t limit) {
  // Invariant: partition sets never span circuits, and the two pins of an
  // external link always share a circuit. Hence the circuits that can
  // change this round are exactly the connected components (under the
  // *previous* configurations) containing a pin of a dirty amoebot, and a
  // traversal of the old circuit graph from all dirty pins discovers every
  // pin whose component must be recomputed -- including both endpoints of
  // every external link it crosses. The traversal walks the arena's
  // circular partition-set lists (snapshot lists for dirty amoebots, the
  // unchanged current lists for clean ones), so each step emits O(1)
  // neighbors and the whole update costs O(affected pins * alpha).
  //
  // visitedPins_ doubles as the traversal worklist (scanned by cursor,
  // appended in place); when the scan finishes it is exactly the set of
  // pins whose components must be recomputed. Visiting also detaches the
  // pin from the union-find right away -- unions over the visited set
  // happen only after the traversal completes. Returns false once more
  // than `limit` pins are visited (the closure provably exceeds the
  // limit; no unions have happened yet, so the caller may roll the marks
  // back and take another path).
  auto visit = [&](int node) {
    if (!pinVisited_[node]) {
      pinVisited_[node] = 1;
      dsu_[node] = -1;
      visitedPins_.push_back(node);
    }
  };
  for (const int a : dirtyList_) {
    for (int p = 0; p < ppa_; ++p) visit(pinNode(a, p));
  }
  for (std::size_t i = 0; i < visitedPins_.size(); ++i) {
    if (visitedPins_.size() > limit) return false;
    const int node = visitedPins_[i];
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    // Next pin of the same (old) partition set: following the circular
    // list visits the whole set by the time all its members are scanned.
    const std::int8_t* oldNext =
        dirtyFlag_[a] ? arena_.snapshotNextOf(a) : arena_.nextOf(a);
    visit(base + oldNext[p]);
    const int di = p / lanes_;
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b >= 0) {
      visit(pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) *
                           lanes_ +
                       p % lanes_));
    }
  }
  return true;
}

void Comm::serialReunion() {
  // Recompute the affected components from the current configurations.
  // Every affected component's pins are in visitedPins_ (already detached
  // from the union-find), so all unions stay inside the visited set and
  // untouched circuits keep their roots. Partition sets re-form by uniting
  // each visited pin with its current circular successor (a set of size g
  // costs g unions, one redundant). Retires the visited marks and list.
  for (const int node : visitedPins_) {
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    unite(node, base + arena_.nextOf(a)[p], &unionsScratch_);
    const int di = p / lanes_;
    if (di >= 3) continue;  // process each link from its E/NE/NW endpoint
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b < 0) continue;
    unite(node, pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) *
                               lanes_ +
                           p % lanes_),
          &unionsScratch_);
  }
  for (const int node : visitedPins_) pinVisited_[node] = 0;
  visitedPins_.clear();
}

bool Comm::incrementalUpdate() {
  for (const int a : dirtyList_) dirtyFlag_[a] = 1;
  const std::size_t budget = dsu_.size() / kTraversalBudgetDivisor;
  if (!serialClosureScan(budget)) {
    for (const int node : visitedPins_) pinVisited_[node] = 0;
    for (const int a : dirtyList_) dirtyFlag_[a] = 0;
    visitedPins_.clear();
    rebuildAll();
    return false;
  }
  serialReunion();
  for (const int a : dirtyList_) dirtyFlag_[a] = 0;
  return true;
}

void Comm::chaseShard(int shard, std::size_t budget) {
  // One level of the sharded traversal: consume this shard's inbox and
  // chase every reachable in-shard pin to exhaustion (the level count is
  // therefore bounded by shard-boundary crossings, not circuit diameter);
  // pins discovered across a shard boundary go to that shard's outbox.
  // Duplicates across levels are possible (we cannot read another
  // shard's visited marks race-free) and are deduplicated by the owner.
  Shard& sc = shards_[shard];
  auto visitLocal = [&](int node) {
    if (!pinVisited_[node]) {
      pinVisited_[node] = 1;
      dsu_[node] = -1;
      sc.visited.push_back(node);
      sc.frontier.push_back(node);
    }
  };
  for (const int node : inbox_[shard]) visitLocal(node);
  inbox_[shard].clear();
  while (!sc.frontier.empty()) {
    // A shard past the global budget on its own can stop early: the
    // caller is guaranteed to abort this round to a full rebuild.
    if (sc.visited.size() > budget) {
      sc.frontier.clear();
      return;
    }
    const int node = sc.frontier.back();
    sc.frontier.pop_back();
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    const std::int8_t* oldNext =
        dirtyFlag_[a] ? arena_.snapshotNextOf(a) : arena_.nextOf(a);
    visitLocal(base + oldNext[p]);  // same amoebot: always in-shard
    const int di = p / lanes_;
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b >= 0) {
      const int nb =
          pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) * lanes_ +
                         p % lanes_);
      const int owner = arena_.shardOf(b);
      if (owner == shard)
        visitLocal(nb);
      else
        sc.outbox[owner].push_back(nb);
    }
  }
}

void Comm::reunionShard(int shard) {
  // Recompute the affected components from the current configurations,
  // shard-locally: all visited pins are detached, and every union whose
  // both endpoints this shard owns keeps its chains inside the shard.
  // Shard-crossing links are deferred to the serial boundary merge,
  // which needs only the boundary lists -- so this pass also retires the
  // visited set (mark clearing folded in to save a pool batch).
  Shard& sc = shards_[shard];
  for (const int node : sc.visited) {
    pinVisited_[node] = 0;
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    unite(node, base + arena_.nextOf(a)[p], &sc.unions);
    const int di = p / lanes_;
    if (di >= 3) continue;  // process each link from its E/NE/NW endpoint
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b < 0) continue;
    const int nb =
        pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) * lanes_ +
                       p % lanes_);
    if (arena_.shardOf(b) == shard)
      unite(node, nb, &sc.unions);
    else
      sc.boundary.emplace_back(node, nb);
  }
  sc.visited.clear();
}

bool Comm::incrementalUpdateSharded() {
  // Same closure, same re-union edge set, same fallback decision as
  // incrementalUpdate() -- only the execution order differs, and no
  // observable depends on it (see the determinism note in the header).
  const int shardCount = arena_.shardCount();
  for (const int a : dirtyList_) dirtyFlag_[a] = 1;

  // Small-closure fast path: sparse-frontier rounds (the paper's "one
  // amoebot reconfigures" pattern) repair circuits of a few thousand
  // pins, where the pool fan-out costs more than the repair. Chase the
  // closure serially up to a grain; only a closure that provably
  // exceeds it pays for the sharded traversal. Rolling back is cheap
  // and exact: no unions have happened yet, and re-detaching a pin
  // (dsu = -1) is idempotent, so clearing the visit marks suffices --
  // every serially-detached pin is in the closure and gets revisited.
  const std::size_t budget = dsu_.size() / kTraversalBudgetDivisor;
  const std::size_t grain = std::min(kSerialClosureGrain, budget);
  if (serialClosureScan(grain)) {
    serialReunion();
    for (const int a : dirtyList_) dirtyFlag_[a] = 0;
    return true;
  }
  for (const int node : visitedPins_) pinVisited_[node] = 0;
  visitedPins_.clear();
  if (grain == budget) {
    // The closure already exceeds the traversal budget -- the same
    // abort decision the serial engine takes.
    for (const int a : dirtyList_) dirtyFlag_[a] = 0;
    rebuildAllSharded();
    return false;
  }

  for (const int a : dirtyList_) {
    std::vector<int>& in = inbox_[arena_.shardOf(a)];
    for (int p = 0; p < ppa_; ++p) in.push_back(pinNode(a, p));
  }

  bool aborted = false;
  while (true) {
    runShards([this, budget](int s) { chaseShard(s, budget); });
    std::size_t total = 0;
    for (const Shard& sc : shards_) total += sc.visited.size();
    if (total > budget) {  // identical decision to the serial engine:
      aborted = true;      // abort iff |closure| > budget
      break;
    }
    bool pending = false;
    for (int s = 0; s < shardCount; ++s) {
      for (int t = 0; t < shardCount; ++t) {
        std::vector<int>& ob = shards_[s].outbox[t];
        if (ob.empty()) continue;
        inbox_[t].insert(inbox_[t].end(), ob.begin(), ob.end());
        ob.clear();
        pending = true;
      }
    }
    if (!pending) break;
  }

  if (aborted) {
    runShards([this](int s) {
      Shard& sc = shards_[s];
      for (const int node : sc.visited) pinVisited_[node] = 0;
      sc.visited.clear();
      sc.frontier.clear();
      for (std::vector<int>& ob : sc.outbox) ob.clear();
    });
    for (std::vector<int>& in : inbox_) in.clear();
    for (const int a : dirtyList_) dirtyFlag_[a] = 0;
    rebuildAllSharded();
    return false;
  }

  runShards([this](int s) { reunionShard(s); });
  mergeShardBoundaries();
  for (const int a : dirtyList_) dirtyFlag_[a] = 0;
  return true;
}

void Comm::collectDirty() {
  if (sharded_ && arena_.touchedCount() >= kDirtyDrainGrain) {
    runShards([this](int s) {
      shards_[s].dirty.clear();
      arena_.takeDirtyShard(s, &shards_[s].dirty);
    });
    // Concatenate in ascending shard order -- the exact order the serial
    // drain produces, so dirtyList_ is identical on both paths.
    for (const Shard& sc : shards_)
      dirtyList_.insert(dirtyList_.end(), sc.dirty.begin(), sc.dirty.end());
  } else {
    arena_.takeDirty(&dirtyList_);
  }
}

void Comm::scatterBeeps() {
  ++epoch_;
  if (sharded_ && pendingBeeps_.size() >= kScatterGrain) {
    // Parallel root resolution (read-only: non-compressing finds), then a
    // serial O(beeps) stamping pass. Roots do not depend on compression,
    // so the stamped set matches the serial path exactly.
    beepRoots_.resize(pendingBeeps_.size());
    const int tasks = arena_.shardCount();
    const std::size_t chunk =
        (pendingBeeps_.size() + tasks - 1) / static_cast<std::size_t>(tasks);
    runShards([this, chunk](int t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(lo + chunk, pendingBeeps_.size());
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& [a, label] = pendingBeeps_[i];
        const std::int8_t* labels = arena_.labelsOf(a);
        int root = -1;
        for (int p = 0; p < ppa_; ++p) {
          if (labels[p] == label) {
            root = findRootConst(pinNode(a, p));
            break;
          }
        }
        beepRoots_[i] = root;
      }
    });
    for (const int root : beepRoots_) {
      if (root >= 0) beepEpoch_[root] = epoch_;
    }
  } else {
    for (const auto& [a, label] : pendingBeeps_) {
      // Beep on the partition set = beep on any pin with that label.
      const std::int8_t* labels = arena_.labelsOf(a);
      for (int p = 0; p < ppa_; ++p) {
        if (labels[p] == label) {
          beepEpoch_[findRoot(pinNode(a, p))] = epoch_;
          break;
        }
      }
    }
  }
  pendingBeeps_.clear();
}

void Comm::deliver() {
  const int n = region_->size();
  SimCounters& counters = simCounters();

  dirtyList_.clear();
  collectDirty();
  if (!rebindDirty_.empty()) {
    // A rebind() preceded this round: merge the structurally invalidated
    // amoebots with the protocol-dirty ones (deduplicated, so dirty
    // counters stay exact) before the incremental-vs-rebuild decision.
    std::vector<std::uint8_t> seen(n, 0);
    for (const int a : dirtyList_) seen[a] = 1;
    for (const int a : rebindDirty_) {
      if (!seen[a]) dirtyList_.push_back(a);
    }
    rebindDirty_.clear();
  }
  if (engine_ == CircuitEngine::Rebuild || !everDelivered_ ||
      static_cast<long>(dirtyList_.size()) * kRebuildDivisor >=
          static_cast<long>(n)) {
    if (sharded_)
      rebuildAllSharded();
    else
      rebuildAll();
    ++counters.rebuildRounds;
  } else if (dirtyList_.empty() || (sharded_ ? incrementalUpdateSharded()
                                             : incrementalUpdate())) {
    ++counters.incrementalRounds;
  } else {
    ++counters.rebuildRounds;  // traversal hit its budget and rebuilt
  }
  counters.unions += unionsScratch_;
  unionsScratch_ = 0;
  counters.dirtyAmoebots += static_cast<long>(dirtyList_.size());
  counters.amoebotRounds += n;
  everDelivered_ = true;

  scatterBeeps();
  ++rounds_;
  ++counters.delivers;
}

void Comm::rebind(const Region& newRegion,
                  std::span<const int> oldLocalOfNew) {
  const int oldN = region_->size();
  const int newN = newRegion.size();
  if (static_cast<int>(oldLocalOfNew.size()) != newN)
    throw std::invalid_argument(
        "Comm::rebind: mapping size does not match the new region");

  // Validate the whole mapping BEFORE touching any state: a rejected
  // rebind must leave the Comm exactly as it was (dirty tracking
  // included), so the caller can recover from the exception.
  std::vector<int> newLocalOfOld(oldN, -1);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    if (o < -1 || o >= oldN)
      throw std::invalid_argument("Comm::rebind: old local id out of range");
    if (o >= 0) {
      if (newLocalOfOld[o] != -1)
        throw std::invalid_argument(
            "Comm::rebind: duplicate old local id in mapping");
      newLocalOfOld[o] = i;
    }
  }

  // Flush mutations the protocol issued after its last deliver(): their
  // circuits were never recomputed, so the owning amoebots must join the
  // post-rebind dirty set. This also reconciles the arena's successor
  // lists, which remap() copies verbatim.
  std::vector<int> oldDirty;
  arena_.takeDirty(&oldDirty);
  std::vector<std::uint8_t> oldDirtyFlag(oldN, 0);
  for (const int a : oldDirty) oldDirtyFlag[a] = 1;
  for (const int a : rebindDirty_) oldDirtyFlag[a] = 1;  // back-to-back rebinds
  rebindDirty_.clear();

  // Dirty iff newly attached, carried over undelivered mutations, or the
  // 6-neighborhood changed (a neighbor appeared, vanished, or is now a
  // different physical amoebot). Every surviving fragment of a circuit
  // that lost a pin contains a former neighbor of a removed amoebot --
  // covered here -- so the next deliver()'s affected-closure traversal
  // provably reaches all of it (see docs/ARCHITECTURE.md).
  std::vector<std::uint8_t> dirty(newN, 0);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    bool d = o < 0 || oldDirtyFlag[o];
    if (!d) {
      for (int di = 0; di < kNumDirs; ++di) {
        const int ob = region_->neighbor(o, static_cast<Dir>(di));
        const int nb = newRegion.neighbor(i, static_cast<Dir>(di));
        // Changed iff the slot gained a neighbor, lost one (a removed old
        // neighbor maps to -1, which must NOT compare equal to "empty"),
        // or now holds a different physical amoebot.
        const bool changed =
            ob < 0 ? nb >= 0 : (nb < 0 || newLocalOfOld[ob] != nb);
        if (changed) {
          d = true;
          break;
        }
      }
    }
    dirty[i] = d;
  }

  // Union-find carry-over: permute the surviving pin nodes, giving every
  // old circuit one deterministic surviving representative (the first
  // member in ascending new pin-node order). Circuits that lost members
  // are repaired by the traversal; the rest stay correct as-is.
  const std::size_t newPins = static_cast<std::size_t>(newN) * ppa_;
  std::vector<int> newDsu(newPins, -1);
  std::vector<int> repOfOldRoot(dsu_.size(), -1);
  for (int i = 0; i < newN; ++i) {
    const int o = oldLocalOfNew[i];
    if (o < 0) continue;
    for (int p = 0; p < ppa_; ++p) {
      const int node = i * ppa_ + p;
      int& rep = repOfOldRoot[findRootConst(o * ppa_ + p)];
      if (rep < 0) {
        rep = node;  // stays a root; its (negative) size grows below
      } else {
        newDsu[node] = rep;
        --newDsu[rep];
      }
    }
  }
  dsu_ = std::move(newDsu);

  arena_.remap(newN, oldLocalOfNew, shardCountFor(newN, simThreads_));
  sharded_ = arena_.shardCount() > 1;
  shards_.clear();
  inbox_.clear();
  if (sharded_) {
    const int shardCount = arena_.shardCount();
    shards_.resize(shardCount);
    for (Shard& s : shards_) s.outbox.resize(shardCount);
    inbox_.resize(shardCount);
  }
  beepEpoch_.assign(newPins, 0);  // invalidates all received() state
  if (engine_ == CircuitEngine::Incremental) {
    pinVisited_.assign(newPins, 0);
    dirtyFlag_.assign(newN, 0);
  }
  pendingBeeps_.clear();
  visitedPins_.clear();
  dirtyList_.clear();
  beepRoots_.clear();
  for (int i = 0; i < newN; ++i) {
    if (dirty[i]) rebindDirty_.push_back(i);
  }
  region_ = &newRegion;
  rounds_ = 0;  // a rebind starts a new protocol execution
}

bool Comm::received(int local, int label) const {
  if (!everDelivered_) return false;
  const std::int8_t* labels = arena_.labelsOf(local);
  for (int p = 0; p < ppa_; ++p) {
    if (labels[p] == label)
      return beepEpoch_[findRoot(pinNode(local, p))] == epoch_;
  }
  return false;
}

bool Comm::receivedAny(int local) const {
  if (!everDelivered_) return false;
  for (int p = 0; p < ppa_; ++p) {
    if (beepEpoch_[findRoot(pinNode(local, p))] == epoch_) return true;
  }
  return false;
}

void Comm::receivedBatch(std::span<const PinQuery> queries,
                         std::vector<char>* out) const {
  out->assign(queries.size(), 0);
  if (!everDelivered_) return;
  if (sharded_ && queries.size() >= kBatchGrain) {
    // Read-only parallel evaluation over index ranges: non-compressing
    // finds, disjoint output ranges. All pins of a partition set share a
    // circuit, so resolving the queried pin directly equals the serial
    // label-scan path.
    const int tasks = arena_.shardCount();
    const std::size_t chunk =
        (queries.size() + tasks - 1) / static_cast<std::size_t>(tasks);
    const std::function<void(int)> task = [&](int t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(lo + chunk, queries.size());
      for (std::size_t i = lo; i < hi; ++i) {
        const int node =
            pinNode(queries[i].local, pinIndex(queries[i].pin, lanes_));
        (*out)[i] = beepEpoch_[findRootConst(node)] == epoch_ ? 1 : 0;
      }
    };
    SimPool::instance().run(tasks, simThreads_, task);
  } else {
    // Same pin-direct resolution as the parallel path (with compression,
    // since this thread owns the Comm), so batch size and thread count
    // can never flip a result.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const int node =
          pinNode(queries[i].local, pinIndex(queries[i].pin, lanes_));
      (*out)[i] = beepEpoch_[findRoot(node)] == epoch_ ? 1 : 0;
    }
  }
}

long parallelRounds(std::span<const long> executions) {
  if (executions.empty()) return 0;  // no sub-protocol ran, no sync beep
  long mx = 0;
  for (const long r : executions) mx = std::max(mx, r);
  return mx + 1;  // + global synchronization beep [26]
}

}  // namespace aspf

#include "sim/comm.hpp"

#include <algorithm>
#include <cassert>

#include "sim/sim_counters.hpp"

namespace aspf {

Comm::Comm(const Region& region, int lanes)
    : region_(&region),
      lanes_(lanes),
      pinsPerAmoebot_(kNumDirs * lanes),
      pins_(static_cast<std::size_t>(region.size()), PinConfig(lanes)),
      rootBeeped_() {
  dsu_.assign(static_cast<std::size_t>(region.size()) * pinsPerAmoebot_, -1);
}

void Comm::resetPins() {
  for (auto& pc : pins_) pc.reset();
}

void Comm::beep(int local, int label) {
  ++simCounters().beeps;
  pendingBeeps_.emplace_back(local, label);
}

int Comm::findRoot(int x) const {
  int r = x;
  while (dsu_[r] >= 0) r = dsu_[r];
  while (dsu_[x] >= 0) {
    const int next = dsu_[x];
    dsu_[x] = r;
    x = next;
  }
  return r;
}

void Comm::deliver() {
  const int n = region_->size();
  std::fill(dsu_.begin(), dsu_.end(), -1);
  auto unite = [&](int a, int b) {
    a = findRoot(a);
    b = findRoot(b);
    if (a == b) return;
    if (dsu_[a] > dsu_[b]) std::swap(a, b);
    dsu_[a] += dsu_[b];
    dsu_[b] = a;
  };

  // Partition sets: union pins of an amoebot sharing a label.
  std::array<int, kNumDirs * kMaxLanes> firstWithLabel{};
  for (int a = 0; a < n; ++a) {
    firstWithLabel.fill(-1);
    const PinConfig& pc = pins_[a];
    for (int p = 0; p < pinsPerAmoebot_; ++p) {
      const int label = pc.labelAt(p);
      if (firstWithLabel[label] < 0)
        firstWithLabel[label] = p;
      else
        unite(pinNode(a, firstWithLabel[label]), pinNode(a, p));
    }
  }
  // External links: pin (a, d, lane) is wired to (b, opposite(d), lane).
  for (int a = 0; a < n; ++a) {
    for (int di = 0; di < 3; ++di) {  // E, NE, NW suffice (symmetry)
      const Dir d = static_cast<Dir>(di);
      const int b = region_->neighbor(a, d);
      if (b < 0) continue;
      for (int lane = 0; lane < lanes_; ++lane) {
        unite(pinNode(a, pinIndex({d, static_cast<std::uint8_t>(lane)}, lanes_)),
              pinNode(b, pinIndex({opposite(d), static_cast<std::uint8_t>(lane)},
                                  lanes_)));
      }
    }
  }

  rootBeeped_.assign(dsu_.size(), 0);
  for (const auto& [a, label] : pendingBeeps_) {
    // Beep on the partition set = beep on any pin with that label.
    const PinConfig& pc = pins_[a];
    for (int p = 0; p < pinsPerAmoebot_; ++p) {
      if (pc.labelAt(p) == label) {
        rootBeeped_[findRoot(pinNode(a, p))] = 1;
        break;
      }
    }
  }
  pendingBeeps_.clear();
  ++rounds_;
  ++simCounters().delivers;
}

bool Comm::received(int local, int label) const {
  const PinConfig& pc = pins_[local];
  for (int p = 0; p < pinsPerAmoebot_; ++p) {
    if (pc.labelAt(p) == label)
      return rootBeeped_[findRoot(pinNode(local, p))] != 0;
  }
  return false;
}

bool Comm::receivedAny(int local) const {
  for (int p = 0; p < pinsPerAmoebot_; ++p) {
    if (rootBeeped_[findRoot(pinNode(local, p))] != 0) return true;
  }
  return false;
}

long parallelRounds(std::span<const long> executions) {
  long mx = 0;
  for (const long r : executions) mx = std::max(mx, r);
  return mx + 1;  // + global synchronization beep [26]
}

}  // namespace aspf

#include "sim/comm.hpp"

#include <algorithm>
#include <cassert>

#include "sim/sim_counters.hpp"

namespace aspf {
namespace {

// Incremental updates win while the dirty set is a small fraction of the
// region; beyond n / kRebuildDivisor dirty amoebots the affected-component
// traversal approaches a full pass and the branch-free rebuild is cheaper.
constexpr int kRebuildDivisor = 4;

// The affected-component traversal also aborts once it has visited more
// than totalPins / kTraversalBudgetDivisor pins (a few dirty amoebots can
// sit on structure-spanning circuits, e.g. the global lane circuits of a
// PASC chain); past that point finishing the traversal costs more than
// the branch-free rebuild it would save. Half the arena is the break-even
// observed on the large suite: even a structure-spanning PASC chain only
// involves ~1/3 of the pins, so it stays on the incremental path and the
// untouched singleton/link circuits are never re-unioned.
constexpr std::size_t kTraversalBudgetDivisor = 2;

thread_local CircuitEngine tlsDefaultEngine = CircuitEngine::Incremental;

}  // namespace

CircuitEngine defaultCircuitEngine() noexcept { return tlsDefaultEngine; }
void setDefaultCircuitEngine(CircuitEngine engine) noexcept {
  tlsDefaultEngine = engine;
}

Comm::Comm(const Region& region, int lanes)
    : Comm(region, lanes, defaultCircuitEngine()) {}

Comm::Comm(const Region& region, int lanes, CircuitEngine engine)
    : region_(&region),
      lanes_(lanes),
      ppa_(kNumDirs * lanes),
      engine_(engine),
      arena_(region.size(), lanes) {
  const std::size_t pins = static_cast<std::size_t>(region.size()) * ppa_;
  dsu_.assign(pins, -1);
  beepEpoch_.assign(pins, 0);
  if (engine_ == CircuitEngine::Incremental) {
    pinVisited_.assign(pins, 0);
    dirtyFlag_.assign(region.size(), 0);
  }
}

void Comm::resetPins() { arena_.resetAll(); }

void Comm::beep(int local, int label) {
  ++simCounters().beeps;
  pendingBeeps_.emplace_back(local, label);
}

int Comm::findRoot(int x) const {
  int r = x;
  while (dsu_[r] >= 0) r = dsu_[r];
  while (dsu_[x] >= 0) {
    const int next = dsu_[x];
    dsu_[x] = r;
    x = next;
  }
  return r;
}

void Comm::unite(int a, int b) {
  a = findRoot(a);
  b = findRoot(b);
  if (a == b) return;
  if (dsu_[a] > dsu_[b]) std::swap(a, b);
  dsu_[a] += dsu_[b];
  dsu_[b] = a;
  ++unionsScratch_;  // flushed into simCounters() once per deliver
}

void Comm::rebuildAll() {
  const int n = region_->size();
  std::fill(dsu_.begin(), dsu_.end(), -1);

  // Partition sets: union pins of an amoebot sharing a label.
  std::array<int, kNumDirs * kMaxLanes> firstWithLabel{};
  for (int a = 0; a < n; ++a) {
    firstWithLabel.fill(-1);
    const std::int8_t* labels = arena_.labelsOf(a);
    for (int p = 0; p < ppa_; ++p) {
      const int label = labels[p];
      if (firstWithLabel[label] < 0)
        firstWithLabel[label] = p;
      else
        unite(pinNode(a, firstWithLabel[label]), pinNode(a, p));
    }
  }
  // External links: pin (a, d, lane) is wired to (b, opposite(d), lane).
  for (int a = 0; a < n; ++a) {
    for (int di = 0; di < 3; ++di) {  // E, NE, NW suffice (symmetry)
      const Dir d = static_cast<Dir>(di);
      const int b = region_->neighbor(a, d);
      if (b < 0) continue;
      for (int lane = 0; lane < lanes_; ++lane) {
        unite(pinNode(a, pinIndex({d, static_cast<std::uint8_t>(lane)}, lanes_)),
              pinNode(b, pinIndex({opposite(d), static_cast<std::uint8_t>(lane)},
                                  lanes_)));
      }
    }
  }
}

bool Comm::incrementalUpdate() {
  // Invariant: partition sets never span circuits, and the two pins of an
  // external link always share a circuit. Hence the circuits that can
  // change this round are exactly the connected components (under the
  // *previous* configurations) containing a pin of a dirty amoebot, and a
  // traversal of the old circuit graph from all dirty pins discovers every
  // pin whose component must be recomputed -- including both endpoints of
  // every external link it crosses. The traversal walks the arena's
  // circular partition-set lists (snapshot lists for dirty amoebots, the
  // unchanged current lists for clean ones), so each step emits O(1)
  // neighbors and the whole update costs O(affected pins * alpha).
  for (const int a : dirtyList_) dirtyFlag_[a] = 1;

  // visitedPins_ doubles as the traversal worklist (scanned by cursor,
  // appended in place); when the scan finishes it is exactly the set of
  // pins whose components must be recomputed. Visiting also detaches the
  // pin from the union-find right away -- unions over the visited set
  // happen only after the traversal completes.
  auto visit = [&](int node) {
    if (!pinVisited_[node]) {
      pinVisited_[node] = 1;
      dsu_[node] = -1;
      visitedPins_.push_back(node);
    }
  };
  const std::size_t budget = dsu_.size() / kTraversalBudgetDivisor;
  auto abortToRebuild = [&] {
    for (const int node : visitedPins_) pinVisited_[node] = 0;
    for (const int a : dirtyList_) dirtyFlag_[a] = 0;
    visitedPins_.clear();
    rebuildAll();
    return false;
  };

  for (const int a : dirtyList_) {
    for (int p = 0; p < ppa_; ++p) visit(pinNode(a, p));
  }
  for (std::size_t i = 0; i < visitedPins_.size(); ++i) {
    if (visitedPins_.size() > budget) return abortToRebuild();
    const int node = visitedPins_[i];
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    // Next pin of the same (old) partition set: following the circular
    // list visits the whole set by the time all its members are scanned.
    const std::int8_t* oldNext =
        dirtyFlag_[a] ? arena_.snapshotNextOf(a) : arena_.nextOf(a);
    visit(base + oldNext[p]);
    const int di = p / lanes_;
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b >= 0) {
      visit(pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) *
                           lanes_ +
                       p % lanes_));
    }
  }

  // Recompute the affected components from the current configurations.
  // Every affected component's pins are in visitedPins_ (already detached
  // from the union-find), so all unions stay inside the visited set and
  // untouched circuits keep their roots. Partition sets re-form by uniting
  // each visited pin with its current circular successor (a set of size g
  // costs g unions, one redundant).
  for (const int node : visitedPins_) {
    const int a = node / ppa_;
    const int p = node % ppa_;
    const int base = a * ppa_;
    unite(node, base + arena_.nextOf(a)[p]);
    const int di = p / lanes_;
    if (di >= 3) continue;  // process each link from its E/NE/NW endpoint
    const int b = region_->neighbor(a, static_cast<Dir>(di));
    if (b < 0) continue;
    unite(node, pinNode(b, static_cast<int>(opposite(static_cast<Dir>(di))) *
                               lanes_ +
                           p % lanes_));
  }

  for (const int node : visitedPins_) pinVisited_[node] = 0;
  for (const int a : dirtyList_) dirtyFlag_[a] = 0;
  visitedPins_.clear();
  return true;
}

void Comm::deliver() {
  const int n = region_->size();
  SimCounters& counters = simCounters();

  dirtyList_.clear();
  arena_.takeDirty(&dirtyList_);
  if (engine_ == CircuitEngine::Rebuild || !everDelivered_ ||
      static_cast<long>(dirtyList_.size()) * kRebuildDivisor >=
          static_cast<long>(n)) {
    rebuildAll();
    ++counters.rebuildRounds;
  } else if (dirtyList_.empty() || incrementalUpdate()) {
    ++counters.incrementalRounds;
  } else {
    ++counters.rebuildRounds;  // traversal hit its budget and rebuilt
  }
  counters.unions += unionsScratch_;
  unionsScratch_ = 0;
  counters.dirtyAmoebots += static_cast<long>(dirtyList_.size());
  counters.amoebotRounds += n;
  everDelivered_ = true;

  ++epoch_;
  for (const auto& [a, label] : pendingBeeps_) {
    // Beep on the partition set = beep on any pin with that label.
    const std::int8_t* labels = arena_.labelsOf(a);
    for (int p = 0; p < ppa_; ++p) {
      if (labels[p] == label) {
        beepEpoch_[findRoot(pinNode(a, p))] = epoch_;
        break;
      }
    }
  }
  pendingBeeps_.clear();
  ++rounds_;
  ++counters.delivers;
}

bool Comm::received(int local, int label) const {
  if (!everDelivered_) return false;
  const std::int8_t* labels = arena_.labelsOf(local);
  for (int p = 0; p < ppa_; ++p) {
    if (labels[p] == label)
      return beepEpoch_[findRoot(pinNode(local, p))] == epoch_;
  }
  return false;
}

bool Comm::receivedAny(int local) const {
  if (!everDelivered_) return false;
  for (int p = 0; p < ppa_; ++p) {
    if (beepEpoch_[findRoot(pinNode(local, p))] == epoch_) return true;
  }
  return false;
}

long parallelRounds(std::span<const long> executions) {
  if (executions.empty()) return 0;  // no sub-protocol ran, no sync beep
  long mx = 0;
  for (const long r : executions) mx = std::max(mx, r);
  return mx + 1;  // + global synchronization beep [26]
}

}  // namespace aspf

#include "primitives/centroid.hpp"

#include "primitives/root_prune.hpp"

namespace aspf {

CentroidResult computeQCentroids(Comm& comm, const EulerTour& tour,
                                 std::span<const char> inQ) {
  const Region& region = comm.region();
  const int n = region.size();
  CentroidResult result;
  result.isCentroid.assign(n, 0);

  // Pass 1: parents with respect to the root (Lemma 20).
  const RootPruneResult rooted = rootAndPrune(comm, tour, inQ);
  result.qCount = rooted.qCount;
  result.rounds = rooted.rounds;

  if (tour.edgeCount() == 0) {
    if (tour.root >= 0 && inQ[tour.root]) result.isCentroid[tour.root] = 1;
    return result;
  }
  if (result.qCount == 0) return result;

  // Pass 2: ETT again, with the root broadcasting |Q| bit by bit.
  const std::vector<int> marks = canonicalMarks(tour, inQ);
  EttOptions options;
  options.broadcastW = true;
  const EttResult ett = runEtt(comm, tour, marks, options);
  result.rounds += ett.rounds;

  const std::int64_t q = static_cast<std::int64_t>(ett.totalWeight);
  for (int u = 0; u < n; ++u) {
    if (!inQ[u]) continue;
    bool centroid = true;
    for (int d = 0; d < 6; ++d) {
      if (tour.instanceOfOutEdge[u][d] < 0) continue;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      // Corollary 22: size of v's component after removing u.
      const std::int64_t size = (rooted.parent[u] == v)
                                    ? q - ett.diff[u][d]
                                    : -ett.diff[u][d];
      // Streaming comparison 2*size <= |Q| in the amoebots; plain here.
      if (2 * size > q) {
        centroid = false;
        break;
      }
    }
    result.isCentroid[u] = centroid ? 1 : 0;
  }
  return result;
}

}  // namespace aspf

#pragma once
// Q-centroid primitive (Section 3.4, Lemma 23): a node u in Q is a
// Q-centroid iff removing u splits the tree into components with at most
// |Q|/2 nodes of Q each. Computed with two ETT passes: the first roots and
// prunes (parents), the second recomputes prefix sums while the root
// broadcasts |Q| bit by bit; each node compares the component sizes around
// it against |Q|/2 in streaming fashion.
#include <span>

#include "ett/ett_runner.hpp"

namespace aspf {

struct CentroidResult {
  std::vector<char> isCentroid;  // per region-local id
  std::uint64_t qCount = 0;
  long rounds = 0;
};

CentroidResult computeQCentroids(Comm& comm, const EulerTour& tour,
                                 std::span<const char> inQ);

}  // namespace aspf

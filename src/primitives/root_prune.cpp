#include "primitives/root_prune.hpp"

namespace aspf {

RootPruneResult rootAndPrune(Comm& comm, const EulerTour& tour,
                             std::span<const char> inQ) {
  const Region& region = comm.region();
  const int n = region.size();
  RootPruneResult result;
  result.parent.assign(n, -2);
  result.inVQ.assign(n, 0);
  result.degQ.assign(n, 0);
  result.inAug.assign(n, 0);

  const std::vector<int> marks = canonicalMarks(tour, inQ);
  const EttResult ett = runEtt(comm, tour, marks);
  result.qCount = ett.totalWeight;
  result.rounds = ett.rounds;

  if (tour.edgeCount() == 0) {
    // Single-node tree: the root survives iff it is in Q itself (Lemma 19).
    if (tour.root >= 0 && inQ[tour.root]) {
      result.inVQ[tour.root] = 1;
      result.parent[tour.root] = -1;
    }
    return result;
  }

  for (int u = 0; u < n; ++u) {
    bool touched = false;     // u has at least one tree edge (is in T)
    bool anyNonZero = false;  // some incident difference is non-zero
    int parentDir = -1;
    int deg = 0;
    for (int d = 0; d < 6; ++d) {
      if (tour.instanceOfOutEdge[u][d] < 0) continue;
      touched = true;
      const std::int64_t diff = ett.diff[u][d];
      if (diff != 0) {
        anyNonZero = true;
        ++deg;  // neighbor in this direction is in V_Q (Lemma 26)
      }
      if (diff > 0) parentDir = d;  // Corollary 18: positive -> parent
    }
    if (!touched) continue;
    const bool isRoot = u == tour.root;
    const bool inVQ = isRoot ? result.qCount > 0 : anyNonZero;
    result.inVQ[u] = inVQ ? 1 : 0;
    if (!inVQ) continue;
    result.degQ[u] = deg;
    result.inAug[u] = deg >= 3 ? 1 : 0;
    if (isRoot)
      result.parent[u] = -1;
    else
      result.parent[u] =
          region.neighbor(u, static_cast<Dir>(parentDir));
  }
  return result;
}

}  // namespace aspf

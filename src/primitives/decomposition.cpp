#include "primitives/decomposition.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "primitives/centroid.hpp"
#include "primitives/election.hpp"

namespace aspf {
namespace {

struct Subtree {
  std::vector<int> members;  // region-local ids
  int root = -1;             // r_Z
  int callingCentroid = -1;  // DT parent of the centroid elected here
};

}  // namespace

DecompositionResult decomposeAtCentroids(const Region& region,
                                         const TreeAdj& tree, int root,
                                         std::span<const char> inQPrime,
                                         int lanes) {
  const int n = region.size();
  DecompositionResult result;
  result.depth.assign(n, -1);
  result.parentInDT.assign(n, -2);

  std::vector<char> removed(n, 0);

  // Collect the component of `start` within the tree, skipping removed
  // nodes; returns members and whether it contains a Q' node.
  auto collectComponent = [&](int start, std::vector<int>& members) -> bool {
    members.clear();
    bool hasQ = false;
    std::vector<int> stack{start};
    std::vector<char> seen(n, 0);
    seen[start] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      members.push_back(u);
      hasQ = hasQ || inQPrime[u] != 0;
      for (int d = 0; d < 6; ++d) {
        if (!tree.edge[u][d]) continue;
        const int v = region.neighbor(u, static_cast<Dir>(d));
        if (v >= 0 && !removed[v] && !seen[v]) {
          seen[v] = 1;
          stack.push_back(v);
        }
      }
    }
    return hasQ;
  };

  std::vector<Subtree> level;
  {
    Subtree whole;
    whole.root = root;
    whole.callingCentroid = -1;
    if (!collectComponent(root, whole.members))
      throw std::invalid_argument("decomposeAtCentroids: Q' is empty");
    level.push_back(std::move(whole));
  }

  int depth = 0;
  while (!level.empty()) {
    std::vector<Subtree> next;
    std::vector<long> roundsPerSubtree;
    for (const Subtree& z : level) {
      // Tree adjacency restricted to the component.
      TreeAdj sub = TreeAdj::empty(n);
      std::vector<char> inZ(n, 0);
      for (const int u : z.members) inZ[u] = 1;
      for (const int u : z.members) {
        for (int d = 0; d < 6; ++d) {
          if (!tree.edge[u][d]) continue;
          const int v = region.neighbor(u, static_cast<Dir>(d));
          if (v >= 0 && inZ[v]) sub.edge[u][d] = 1;
        }
      }
      std::vector<char> subQ(n, 0);
      for (const int u : z.members) subQ[u] = inQPrime[u];

      const EulerTour tour = buildEulerTour(region, sub, z.root);
      Comm comm(region, lanes);
      const CentroidResult centroids = computeQCentroids(comm, tour, subQ);
      const ElectionResult elected =
          electFromQ(comm, tour, centroids.isCentroid);
      // Splitting beeps: each neighbor component checks Q'-emptiness on a
      // subtree circuit, and learns its new root (2 rounds).
      comm.chargeRounds(2);
      roundsPerSubtree.push_back(comm.rounds());

      const int c = elected.elected;
      result.depth[c] = depth;
      result.parentInDT[c] = z.callingCentroid;
      removed[c] = 1;
      for (int d = 0; d < 6; ++d) {
        if (!sub.edge[c][d]) continue;
        const int v = region.neighbor(c, static_cast<Dir>(d));
        if (v < 0 || removed[v]) continue;
        Subtree child;
        child.root = v;
        child.callingCentroid = c;
        if (collectComponent(v, child.members))
          next.push_back(std::move(child));
      }
    }
    result.rounds += parallelRounds(roundsPerSubtree);
    level = std::move(next);
    ++depth;
  }
  result.height = depth;
  return result;
}

}  // namespace aspf

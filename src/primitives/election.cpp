#include "primitives/election.hpp"

#include <stdexcept>

#include "ett/ett_runner.hpp"

namespace aspf {
namespace {

std::uint8_t primaryLane(Dir travel) noexcept {
  return static_cast<int>(travel) < 3 ? 0 : 2;
}

}  // namespace

ElectionResult electFromQ(Comm& comm, const EulerTour& tour,
                          std::span<const char> inQ) {
  ElectionResult result;

  if (tour.edgeCount() == 0) {
    if (tour.root < 0 || !inQ[tour.root])
      throw std::invalid_argument("electFromQ: Q empty on single-node tree");
    result.elected = tour.root;
    result.rounds = 1;
    comm.chargeRounds(1);
    return result;
  }

  const std::vector<int> marks = canonicalMarks(tour, inQ);
  const int edges = tour.edgeCount();

  // Is some tour edge marked at all?
  bool anyMark = false;
  std::vector<char> edgeMarked(edges, 0);
  for (int i = 0; i < edges; ++i) {
    const int u = tour.stops[i];
    if (marks[u] >= 0 && tour.outDir[i] == static_cast<Dir>(marks[u]) &&
        tour.instanceOfOutEdge[u][marks[u]] == i) {
      edgeMarked[i] = 1;
      anyMark = true;
    }
  }
  if (!anyMark) throw std::invalid_argument("electFromQ: Q is empty");

  // Build the subpath circuits on the primary lane: instance i joins its
  // in-pin (edge e_{i-1}) with its out-pin (edge e_i) unless one of them is
  // a marked (removed) edge.
  comm.resetPins();
  auto inPinOf = [&](int i) {  // pin of instance i toward its predecessor
    const Dir travel = tour.outDir[i - 1];
    return Pin{opposite(travel), primaryLane(travel)};
  };
  auto outPinOf = [&](int i) {
    const Dir travel = tour.outDir[i];
    return Pin{travel, primaryLane(travel)};
  };
  for (int i = 1; i < edges; ++i) {  // interior instances
    if (edgeMarked[i - 1] || edgeMarked[i]) continue;
    const int u = tour.stops[i];
    const Pin pins[] = {inPinOf(i), outPinOf(i)};
    comm.pins(u).join(pins);
  }

  // The root beeps into the first subpath. If the very first tour edge is
  // marked, the first subpath is trivial and the root elects itself.
  if (edgeMarked[0]) {
    result.elected = tour.root;
    result.rounds = 1;
    comm.chargeRounds(1);
    return result;
  }
  comm.beepPin(tour.stops[0], outPinOf(0));
  comm.deliver();
  result.rounds = 1;

  // The elected node is the one owning the instance whose *outgoing* edge
  // is marked and whose in-pin received the root's beep.
  for (int i = 1; i < edges; ++i) {
    if (!edgeMarked[i]) continue;
    const int u = tour.stops[i];
    if (comm.receivedPin(u, inPinOf(i))) {
      result.elected = u;
      return result;
    }
  }
  throw std::logic_error("electFromQ: beep vanished (internal error)");
}

}  // namespace aspf

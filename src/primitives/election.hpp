#pragma once
// Election primitive (Section 3.3, Lemma 21): given a tree rooted at r and a
// non-empty set Q, elect the unique node of Q whose marked tour edge comes
// first on the Euler tour. Implemented exactly as in the paper: the marked
// edges are removed from the tour, splitting it into subpaths; every subpath
// forms one circuit; r beeps on the first subpath and the node at its far
// end is elected. Costs O(1) rounds.
#include <span>

#include "ett/euler_tour.hpp"
#include "sim/comm.hpp"

namespace aspf {

struct ElectionResult {
  int elected = -1;  // region-local id
  long rounds = 0;
};

ElectionResult electFromQ(Comm& comm, const EulerTour& tour,
                          std::span<const char> inQ);

}  // namespace aspf

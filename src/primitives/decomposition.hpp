#pragma once
// Q'-centroid decomposition (Section 3.4, Lemma 31): recursively decompose
// the tree at elected Q'-centroids; all recursions of a level run in
// parallel (disjoint circuits), so the whole decomposition tree DT(T) of
// height O(log|Q'|) is computed within O(log^2 |Q'|) rounds.
//
// Each level: per active subtree Z (a component left after removing the
// centroids chosen so far, with Q' intersecting Z), run the centroid
// primitive, elect one centroid, split Z at it, and continue on the
// neighbor components that still contain Q' nodes.
#include <span>

#include "ett/euler_tour.hpp"
#include "sim/comm.hpp"

namespace aspf {

struct DecompositionResult {
  /// depth[u] = depth of u in the decomposition tree DT (root depth 0);
  /// -1 for nodes not in Q'.
  std::vector<int> depth;
  /// Decomposition-tree parent (the centroid of the calling recursion);
  /// -1 for the DT root, -2 for nodes not in Q'.
  std::vector<int> parentInDT;
  int height = 0;  // number of levels
  long rounds = 0;
};

/// `tree` must be a tree spanning (at least) all nodes of Q'; `root` is the
/// designated node r; inQPrime must be non-empty. `lanes` is the lane count
/// for the internal Comms (>= 4).
DecompositionResult decomposeAtCentroids(const Region& region,
                                         const TreeAdj& tree, int root,
                                         std::span<const char> inQPrime,
                                         int lanes = 4);

}  // namespace aspf

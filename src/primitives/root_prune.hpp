#pragma once
// Root & prune primitive (Section 3.2, Lemma 20): given a tree T, a node r,
// and a set Q, root T at r and prune every subtree without a node in Q.
// Afterwards each node knows whether it survived (V_Q), its parent, its
// degree within the pruned tree T_Q, and whether it belongs to the
// augmentation set A_Q = { u in V_Q : deg_Q(u) >= 3 } (Lemma 26).
#include <span>

#include "ett/ett_runner.hpp"

namespace aspf {

struct RootPruneResult {
  /// parent[u] = region-local parent id; -1 for the root; -2 for nodes
  /// pruned away or outside the tree.
  std::vector<int> parent;
  std::vector<char> inVQ;
  /// Degree within T_Q (0 for pruned nodes).
  std::vector<int> degQ;
  /// u in A_Q  iff  deg_Q(u) >= 3.
  std::vector<char> inAug;
  std::uint64_t qCount = 0;
  long rounds = 0;
};

/// inQ is indexed by region-local id. The tour must be rooted at r.
RootPruneResult rootAndPrune(Comm& comm, const EulerTour& tour,
                             std::span<const char> inQ);

}  // namespace aspf

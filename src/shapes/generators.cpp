#include "shapes/generators.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace aspf {
namespace shapes {
namespace {

using CoordSet = std::unordered_set<Coord, CoordHash>;

AmoebotStructure fromSet(const CoordSet& set) {
  // aspf-lint: allow(unordered-iter) drained into a vector and sorted on
  // the next line, so the hash order never reaches an observable
  std::vector<Coord> coords(set.begin(), set.end());
  std::sort(coords.begin(), coords.end());
  return AmoebotStructure::fromCoords(std::move(coords));
}

}  // namespace

AmoebotStructure parallelogram(int width, int height) {
  if (width < 1 || height < 1)
    throw std::invalid_argument("parallelogram: dimensions must be >= 1");
  std::vector<Coord> coords;
  coords.reserve(static_cast<std::size_t>(width) * height);
  for (int r = 0; r < height; ++r)
    for (int q = 0; q < width; ++q) coords.push_back({q, r});
  return AmoebotStructure::fromCoords(std::move(coords));
}

AmoebotStructure triangle(int side) {
  if (side < 1) throw std::invalid_argument("triangle: side must be >= 1");
  std::vector<Coord> coords;
  for (int r = 0; r < side; ++r)
    for (int q = 0; q < side - r; ++q) coords.push_back({q, r});
  return AmoebotStructure::fromCoords(std::move(coords));
}

AmoebotStructure hexagon(int radius) {
  if (radius < 0) throw std::invalid_argument("hexagon: radius must be >= 0");
  std::vector<Coord> coords;
  for (int r = -radius; r <= radius; ++r) {
    for (int q = -radius; q <= radius; ++q) {
      if (std::abs(q + r) <= radius) coords.push_back({q, r});
    }
  }
  return AmoebotStructure::fromCoords(std::move(coords));
}

AmoebotStructure line(int n, Axis axis) {
  if (n < 1) throw std::invalid_argument("line: n must be >= 1");
  const Dir step = dirsOf(axis)[0];
  std::vector<Coord> coords;
  Coord c{0, 0};
  for (int i = 0; i < n; ++i) {
    coords.push_back(c);
    c = c.neighbor(step);
  }
  return AmoebotStructure::fromCoords(std::move(coords));
}

AmoebotStructure comb(int teeth, int toothLength, int pitch) {
  if (teeth < 1 || toothLength < 0 || pitch < 1)
    throw std::invalid_argument("comb: bad parameters");
  CoordSet set;
  const int width = (teeth - 1) * pitch + 1;
  for (int q = 0; q < width; ++q) set.insert({q, 0});
  for (int t = 0; t < teeth; ++t) {
    Coord c{t * pitch, 0};
    for (int i = 0; i < toothLength; ++i) {
      c = c.neighbor(Dir::NE);
      set.insert(c);
    }
  }
  return fromSet(set);
}

AmoebotStructure staircase(int steps, int stepSize) {
  if (steps < 1 || stepSize < 1)
    throw std::invalid_argument("staircase: bad parameters");
  CoordSet set;
  Coord corner{0, 0};
  for (int s = 0; s < steps; ++s) {
    Coord c = corner;
    for (int i = 0; i < stepSize; ++i) {
      set.insert(c);
      c = c.neighbor(Dir::E);
    }
    for (int i = 0; i <= stepSize; ++i) {
      set.insert(c);
      if (i < stepSize) c = c.neighbor(Dir::NE);
    }
    corner = c;
  }
  return fromSet(set);
}

AmoebotStructure zigzag(int segments, int segmentLength) {
  if (segments < 1 || segmentLength < 1)
    throw std::invalid_argument("zigzag: bad parameters");
  CoordSet set;
  Coord c{0, 0};
  set.insert(c);
  for (int s = 0; s < segments; ++s) {
    const Dir step = (s % 2 == 0) ? Dir::E : Dir::NE;
    for (int i = 0; i < segmentLength; ++i) {
      c = c.neighbor(step);
      set.insert(c);
    }
  }
  return fromSet(set);
}

AmoebotStructure diamondChain(int count, int radius) {
  if (count < 1 || radius < 1)
    throw std::invalid_argument("diamondChain: bad parameters");
  CoordSet set;
  // Consecutive hexagon centers sit 2*radius + 2 apart on the x-axis; the
  // single node between two adjacent hexagon tips is the bridge.
  for (int h = 0; h < count; ++h) {
    const Coord center{h * (2 * radius + 2), 0};
    for (int r = -radius; r <= radius; ++r) {
      for (int q = -radius; q <= radius; ++q) {
        if (std::abs(q + r) <= radius) set.insert({center.q + q, center.r + r});
      }
    }
    if (h + 1 < count) set.insert({center.q + radius + 1, 0});
  }
  return fromSet(set);
}

AmoebotStructure fillHoles(std::vector<Coord> coords) {
  CoordSet set(coords.begin(), coords.end());
  if (set.empty()) throw std::invalid_argument("fillHoles: empty structure");
  std::int32_t qmin = std::numeric_limits<std::int32_t>::max(), qmax = -qmin;
  std::int32_t rmin = qmin, rmax = -qmin;
  // aspf-lint: allow(unordered-iter) commutative min/max fold; the
  // bounding box is the same in any iteration order
  for (const Coord c : set) {
    qmin = std::min(qmin, c.q);
    qmax = std::max(qmax, c.q);
    rmin = std::min(rmin, c.r);
    rmax = std::max(rmax, c.r);
  }
  qmin -= 1;
  qmax += 1;
  rmin -= 1;
  rmax += 1;
  // Flood the outside; anything empty and not reached is a hole -> fill it.
  CoordSet outside;
  std::queue<Coord> q;
  auto push = [&](Coord c) {
    if (c.q < qmin || c.q > qmax || c.r < rmin || c.r > rmax) return;
    if (set.contains(c) || outside.contains(c)) return;
    outside.insert(c);
    q.push(c);
  };
  push({qmin, rmin});
  for (std::int32_t qq = qmin; qq <= qmax; ++qq) {
    push({qq, rmin});
    push({qq, rmax});
  }
  for (std::int32_t rr = rmin; rr <= rmax; ++rr) {
    push({qmin, rr});
    push({qmax, rr});
  }
  while (!q.empty()) {
    const Coord c = q.front();
    q.pop();
    for (Dir d : kAllDirs) push(c.neighbor(d));
  }
  for (std::int32_t rr = rmin; rr <= rmax; ++rr) {
    for (std::int32_t qq = qmin; qq <= qmax; ++qq) {
      const Coord c{qq, rr};
      if (!set.contains(c) && !outside.contains(c)) set.insert(c);
    }
  }
  return fromSet(set);
}

AmoebotStructure randomBlob(int targetSize, std::uint64_t seed) {
  if (targetSize < 1)
    throw std::invalid_argument("randomBlob: targetSize must be >= 1");
  Rng rng(seed);
  CoordSet set{{0, 0}};
  std::vector<Coord> frontier;  // empty nodes adjacent to the blob
  CoordSet inFrontier;
  auto expandFrontier = [&](Coord c) {
    for (Dir d : kAllDirs) {
      const Coord nb = c.neighbor(d);
      if (!set.contains(nb) && inFrontier.insert(nb).second)
        frontier.push_back(nb);
    }
  };
  expandFrontier({0, 0});
  while (static_cast<int>(set.size()) < targetSize && !frontier.empty()) {
    const std::size_t pick = rng.below(frontier.size());
    const Coord c = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    inFrontier.erase(c);
    set.insert(c);
    expandFrontier(c);
  }
  // aspf-lint: allow(unordered-iter) fillHoles re-canonicalizes through
  // fromSet, which sorts; hash order never reaches an observable
  std::vector<Coord> coords(set.begin(), set.end());
  return fillHoles(std::move(coords));
}

AmoebotStructure fuzzBlob(int targetSize, std::uint64_t seed) {
  if (targetSize < 1)
    throw std::invalid_argument("fuzzBlob: targetSize must be >= 1");
  // Decorrelated from randomBlob's stream so fuzzBlob(s, k) never mirrors
  // randomBlob(s, k); the mix constant is fixed forever (fuzz instances
  // are replayed by seed).
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xF0E1D2C3B4A59687ULL);
  std::set<Coord> occupied{{0, 0}};
  std::set<Coord> frontier;  // empty cells adjacent to the blob, ordered
  auto expandFrontier = [&](Coord c) {
    for (Dir d : kAllDirs) {
      const Coord nb = c.neighbor(d);
      if (!occupied.contains(nb)) frontier.insert(nb);
    }
  };
  expandFrontier({0, 0});
  const auto isOccupied = [&](Coord c) { return occupied.contains(c); };
  std::vector<Coord> valid;
  while (static_cast<int>(occupied.size()) < targetSize) {
    // Only single-arc frontier cells are attachable this step; multi-arc
    // (concave-contact) cells stay in the frontier and typically become
    // attachable once a neighbor joins.
    valid.clear();
    for (const Coord c : frontier) {
      if (neighborArcs(c, isOccupied) == 1) valid.push_back(c);
    }
    if (valid.empty()) break;  // unreachable: a boundary extreme is valid
    const Coord c = valid[rng.below(valid.size())];
    frontier.erase(c);
    occupied.insert(c);
    expandFrontier(c);
  }
  return AmoebotStructure::fromCoords(
      std::vector<Coord>(occupied.begin(), occupied.end()));
}

AmoebotStructure randomSpider(int arms, int armLength, std::uint64_t seed) {
  if (arms < 1 || armLength < 1)
    throw std::invalid_argument("randomSpider: bad parameters");
  Rng rng(seed);
  CoordSet set{{0, 0}};
  for (int a = 0; a < arms; ++a) {
    Coord c{0, 0};
    Dir heading = static_cast<Dir>(rng.below(6));
    for (int i = 0; i < armLength; ++i) {
      // Mostly keep heading; occasionally veer one step.
      const auto veer = rng.below(8);
      if (veer == 0)
        heading = ccw(heading);
      else if (veer == 1)
        heading = cw(heading);
      c = c.neighbor(heading);
      set.insert(c);
      // Thicken to keep the arm robustly connected.
      set.insert(c.neighbor(Dir::E));
    }
  }
  // aspf-lint: allow(unordered-iter) fillHoles re-canonicalizes through
  // fromSet, which sorts; hash order never reaches an observable
  std::vector<Coord> coords(set.begin(), set.end());
  return fillHoles(std::move(coords));
}

}  // namespace shapes
}  // namespace aspf

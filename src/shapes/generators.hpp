#pragma once
// Generators for hole-free amoebot structures used by tests, examples and
// benches: regular shapes (parallelogram, triangle, hexagon, line), the
// adversarial comb/staircase shapes (deep portal trees), and seeded random
// blobs (random growth with hole filling).
#include <cstdint>
#include <vector>

#include "sim/structure.hpp"

namespace aspf {
namespace shapes {

/// Parallelogram spanned by the x-axis (width) and y-axis (height).
AmoebotStructure parallelogram(int width, int height);

/// Upward triangle with the given side length.
AmoebotStructure triangle(int side);

/// Hexagon with the given radius (radius 0 = single amoebot);
/// n = 3r(r+1) + 1.
AmoebotStructure hexagon(int radius);

/// Straight line of n amoebots along the given axis.
AmoebotStructure line(int n, Axis axis = Axis::X);

/// Comb: a spine along the x-axis with vertical teeth every `pitch` columns.
/// Adversarial for distance problems (large diameter, skinny portals).
AmoebotStructure comb(int teeth, int toothLength, int pitch = 2);

/// Staircase of `steps` steps, each `stepSize` wide/high. Maximizes portal
/// counts relative to n.
AmoebotStructure staircase(int steps, int stepSize);

/// Zigzag snake: `segments` straight runs of `segmentLength` amoebots each,
/// alternating between the E and NE directions. Thin (width 1), huge
/// diameter (~segments * segmentLength), and its portal trees degenerate
/// toward paths -- the adversarial regime for the divide & conquer split.
AmoebotStructure zigzag(int segments, int segmentLength);

/// Chain of `count` hexagons of the given radius, consecutive hexagons
/// connected by a single-amoebot bridge. Combines fat regions (many
/// amoebots per portal) with 1-wide cuts, so region merging crosses
/// minimal portals between large sub-instances. Hole-free by construction.
AmoebotStructure diamondChain(int count, int radius);

/// Random hole-free blob with at least `targetSize` amoebots: randomized
/// boundary growth from the origin, followed by filling all enclosed holes
/// (so the result is hole-free by construction; may slightly exceed
/// targetSize).
AmoebotStructure randomBlob(int targetSize, std::uint64_t seed);

/// Number of maximal runs ("arcs") of occupied cells in the cyclic
/// 6-neighborhood of c. In the triangular grid two cyclically consecutive
/// neighbors of a cell are themselves adjacent, which makes this the local
/// simple-cell criterion shared by the accretion generators and the
/// dynamic-timeline structure mutations:
///   - an EMPTY cell with exactly one occupied arc can be attached without
///     creating a hole (its empty neighbors stay connected to each other
///     around it) while keeping the structure connected;
///   - an OCCUPIED cell with exactly one occupied arc (necessarily <= 5
///     occupied neighbors; 6 count as zero arcs) can be detached without
///     disconnecting the structure (the arc reroutes every path through
///     it) or creating a hole (it has an empty neighbor to join the
///     outer complement).
template <class OccupiedFn>
int neighborArcs(Coord c, OccupiedFn&& occupied) {
  int arcs = 0;
  bool prev = occupied(c.neighbor(static_cast<Dir>(kNumDirs - 1)));
  for (int d = 0; d < kNumDirs; ++d) {
    const bool cur = occupied(c.neighbor(static_cast<Dir>(d)));
    if (cur && !prev) ++arcs;
    prev = cur;
  }
  return arcs;
}

/// Random connected hole-free blob of EXACTLY `targetSize` amoebots, grown
/// one cell at a time by seeded boundary accretion: every step attaches a
/// uniformly random boundary cell whose occupied neighbors form a single
/// arc (see neighborArcs), so the structure is connected and hole-free
/// after every step -- no post-hoc hole filling, unlike randomBlob, which
/// makes the growth dynamics (and the resulting outlines) genuinely
/// different per seed. Deterministic per (targetSize, seed); the
/// property-based fuzz conformance tier draws its instances from here.
AmoebotStructure fuzzBlob(int targetSize, std::uint64_t seed);

/// Random hole-free "spider": several random-walk arms from the origin,
/// thickened by 1; sparse, high-diameter instances. Hole-filled.
AmoebotStructure randomSpider(int arms, int armLength, std::uint64_t seed);

/// Fills every hole of an arbitrary coordinate set (adds the enclosed empty
/// nodes), returning a hole-free structure.
AmoebotStructure fillHoles(std::vector<Coord> coords);

}  // namespace shapes
}  // namespace aspf

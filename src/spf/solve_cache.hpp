#pragma once
// Cross-query memoization for the multi-source polylog pipeline (the
// SPPF-style "forest sharing" of the serving tier): one SolveCache per
// QuerySession remembers work whose inputs did not change between
// queries, so a warm solve skips the recompute entirely.
//
// Three units are cached, all keyed on the substrate's structure epoch
// (Comm::structureEpoch(), bumped by every rebind) so any structure
// mutation invalidates everything derived from the old geometry:
//
//  - portals:     the top-region PortalDecomposition per split axis. A
//                 pure value (no Comm involved), valid for the whole
//                 epoch regardless of sources/destinations.
//  - preprocess:  the Q'/augmentation phase (portalRootAndPrune on the
//                 warm substrate) keyed by (lanes, axis, root portal,
//                 portal-level source bitmap). Hits when the source set
//                 changes amoebots but not portals.
//  - forest:      the entire pre-prune pipeline keyed by (lanes, axis,
//                 exact source set). In shortestPathForest the
//                 destination set is consumed only by the single-source
//                 shortcut and the final pruneForestToDestinations, so
//                 the pre-prune forest -- and every model-cost number it
//                 produces -- is a pure function of this key. This is the
//                 unit that fires on every destination-only query.
//
// Mid-protocol primitives (PASC iterations inside portalDecompose /
// lineSpf / mergeForests) are deliberately NOT independent cache units:
// replaying one would have to leave the exact pin configurations the
// skipped execution would have left on the shared Comm for the steps that
// follow it, which is the recompute we are trying to skip. The cache
// therefore only memoizes units whose downstream consumers take *values*
// (forests, rooted portal state), never live pin state; see the contract
// notes in pasc_chain.hpp / portal_primitives.hpp.
//
// Determinism contract (the hard part): a hit must be observationally
// identical to a miss. Three ingredients make that true:
//  1. rounds / delivers / beeps of a skipped execution are functions of
//     protocol control flow, never of leftover substrate pin state (every
//     execution starts with resetPins()), so each entry records them at
//     insert time and a hit replays them into the result and the
//     thread-local SimCounters.
//  2. A hit leaves the substrate's pin state untouched. That is safe
//     because every miss path begins with resetPins(), which normalizes
//     arbitrary leftover configurations -- exactly the guarantee the warm
//     substrate already relies on between queries.
//  3. What a hit legitimately changes is *simulator effort*: union-find
//     unions and incremental/rebuild round counts on the substrate depend
//     on prior pin state and are skipped, not replayed. Those counters
//     (warm_unions et al.) are execution-resource stamps already excluded
//     from the byte-identity contract, like --engine and --sim-threads.
//
// Thread model: one cache per QuerySession, installed via the
// thread-local activeSolveCache() around warm solves only (cold oracle
// solves never see it), mirroring the defaultCircuitEngine() idiom. No
// unordered containers: every unit is a small bounded vector scanned
// linearly with exact key compares and deterministic FIFO eviction.
#include <cstdint>
#include <vector>

#include "portals/portal_primitives.hpp"
#include "portals/portals.hpp"
#include "spf/forest.hpp"

namespace aspf {

/// Lookup-level counters, surfaced in the serving report (cache_* keys).
/// Deterministic for a fixed (scenario, query stream, options) tuple but
/// excluded from equalDeterministic: like wall-time they describe how the
/// answer was produced, not the answer.
struct SolveCacheStats {
  long hits = 0;           ///< lookups answered from a live entry
  long misses = 0;         ///< lookups that fell through to a recompute
  long invalidations = 0;  ///< entries dropped by structure-epoch changes
  long savedUnions = 0;    ///< recorded union-find work of skipped runs
};

class SolveCache {
 public:
  /// Q'/augmentation preprocessing unit: the rooted portal state plus the
  /// recorded model/simulator cost of producing it.
  struct PreprocessEntry {
    // key (within the cache's current epoch)
    int lanes = 0;
    Axis axis = Axis::X;
    int rootPortal = -1;
    std::vector<char> portalInQ;
    // value
    PortalRootPruneResult rooted;
    long rounds = 0;    // preprocessing-phase rounds (incl. charged sync)
    long delivers = 0;  // control-flow determined: replayed on hits
    long beeps = 0;     // control-flow determined: replayed on hits
    long unions = 0;    // state-dependent: counted as saved, NOT replayed
  };

  /// Whole pre-prune pipeline unit (the per-query workhorse).
  struct ForestEntry {
    // key (within the cache's current epoch)
    int lanes = 0;
    Axis axis = Axis::X;
    std::vector<int> sources;  // sorted region locals (natural scan order)
    // value
    std::vector<int> parent;  // pre-prune forest over region locals
    long rounds = 0;          // pre-prune pipeline rounds
    ForestResult::Phases phases;  // prune field left zero
    long delivers = 0;
    long beeps = 0;
    long unions = 0;
  };

  /// All finders first reconcile the cache with `epoch`: if it moved, every
  /// entry is dropped (counted as invalidations) before the lookup runs.
  /// Returned pointers stay valid until the next store into the same unit
  /// or a lookup at a different epoch.
  const PortalDecomposition* findPortals(std::uint64_t epoch, Axis axis);
  const PortalDecomposition* storePortals(std::uint64_t epoch, Axis axis,
                                          PortalDecomposition decomp);

  const PreprocessEntry* findPreprocess(std::uint64_t epoch, int lanes,
                                        Axis axis, int rootPortal,
                                        const std::vector<char>& portalInQ);
  void storePreprocess(std::uint64_t epoch, PreprocessEntry entry);

  const ForestEntry* findForest(std::uint64_t epoch, int lanes, Axis axis,
                                const std::vector<int>& sources);
  void storeForest(std::uint64_t epoch, ForestEntry entry);

  /// Fault injection for the oracle self-test (--serve-cache-fault): makes
  /// every live forest entry stale -- rounds and delivers off by one, the
  /// first tree edge rewired to a bogus extra root -- so the next hit MUST
  /// diverge from the cold oracle and take the exit-2 path. A no-op on an
  /// empty cache (the plant needs a prior query with the same source set).
  void corruptForTest();

  const SolveCacheStats& stats() const noexcept { return stats_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  void syncEpoch(std::uint64_t epoch);

  std::uint64_t epoch_ = 0;
  bool everSynced_ = false;
  SolveCacheStats stats_;
  std::vector<Axis> portalAxes_;  // parallel to portalDecomps_
  std::vector<PortalDecomposition> portalDecomps_;
  std::vector<PreprocessEntry> preprocess_;
  std::vector<ForestEntry> forests_;
};

/// The calling thread's active cache, or nullptr (the default -- cold
/// solves and non-serving paths). shortestPathForest consults it only when
/// also given a warm substrate; installed per warm solve via the RAII
/// guard below, mirroring setDefaultCircuitEngine().
SolveCache* activeSolveCache() noexcept;
void setActiveSolveCache(SolveCache* cache) noexcept;

/// Scoped install/restore of the thread-local active cache.
class ScopedSolveCache {
 public:
  explicit ScopedSolveCache(SolveCache* cache) noexcept
      : prev_(activeSolveCache()) {
    setActiveSolveCache(cache);
  }
  ~ScopedSolveCache() { setActiveSolveCache(prev_); }
  ScopedSolveCache(const ScopedSolveCache&) = delete;
  ScopedSolveCache& operator=(const ScopedSolveCache&) = delete;

 private:
  SolveCache* prev_;
};

}  // namespace aspf

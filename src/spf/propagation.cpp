#include "spf/propagation.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "pasc/pasc_tree.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

struct SideGeometry {
  bool bIsSouth = true;  // canonical: is B below the portal row?
  // Directions (in structure coordinates) leading from B toward the portal
  // row along the two cross axes.
  Dir towardPAlongY{};
  Dir towardPAlongZ{};
};

}  // namespace

PropagationResult propagateForest(const Region& region,
                                  const PortalDecomposition& decomp,
                                  int portalId,
                                  const std::vector<int>& parentAP,
                                  int lanes) {
  const int n = region.size();
  PropagationResult result;
  result.parent = parentAP;

  std::vector<char> inB(n, 0);
  std::vector<char> inP(n, 0);
  bool anyB = false;
  for (int u = 0; u < n; ++u) {
    inB[u] = parentAP[u] == -2 ? 1 : 0;
    anyB = anyB || inB[u];
  }
  for (const int u : decomp.members[portalId]) {
    if (inB[u])
      throw std::invalid_argument("propagateForest: portal not covered");
    inP[u] = 1;
  }
  if (!anyB) return result;

  const Frame& frame = decomp.frame;
  const std::int32_t portalRow =
      frame.apply(region.coordOf(decomp.members[portalId].front())).r;

  // Which side is B on? Inspect any B amoebot adjacent to the portal.
  SideGeometry geo;
  {
    bool found = false;
    for (const int p : decomp.members[portalId]) {
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(p, d);
        if (v >= 0 && inB[v]) {
          geo.bIsSouth = frame.apply(region.coordOf(v)).r < portalRow;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found)
      throw std::invalid_argument("propagateForest: B not adjacent to P");
  }
  // Canonical northward y-step is NE, z-step is NW (southward: SW/SE).
  geo.towardPAlongY =
      frame.applyInverse(geo.bIsSouth ? Dir::NE : Dir::SW);
  geo.towardPAlongZ =
      frame.applyInverse(geo.bIsSouth ? Dir::NW : Dir::SE);

  // ---- Phase 1: visibility region B'.
  // For each cross axis, walk within B u P: u in B is visible iff marching
  // toward the portal row stays in B and hits a P amoebot. (These are the
  // cross-axis portal circuits of P u B; one beep round each.)
  std::vector<int> projY(n, -1), projZ(n, -1);
  for (int u = 0; u < n; ++u) {
    if (!inB[u]) continue;
    for (int axisCase = 0; axisCase < 2; ++axisCase) {
      const Dir step = axisCase == 0 ? geo.towardPAlongY : geo.towardPAlongZ;
      int cur = u;
      int hit = -1;
      while (true) {
        cur = region.neighbor(cur, step);
        if (cur < 0) break;
        if (inP[cur]) {
          hit = cur;
          break;
        }
        if (!inB[cur]) break;  // left B u P
      }
      (axisCase == 0 ? projY : projZ)[u] = hit;
    }
  }
  long phase1Rounds = 1;  // the two visibility beep rounds run in parallel

  // dist(S, p) for p in P: PASC on the A u P forest; the P amoebots
  // forward their bits on the cross-portal circuits concurrently.
  {
    Comm comm(region, lanes);
    std::vector<int> forest(parentAP);
    for (int u = 0; u < n; ++u) {
      if (forest[u] == -2) continue;
    }
    const TreePascResult dist = runPascForest(comm, forest);
    phase1Rounds += comm.rounds();

    for (int u = 0; u < n; ++u) {
      if (!inB[u]) continue;
      const bool visY = projY[u] >= 0, visZ = projZ[u] >= 0;
      if (!visY && !visZ) continue;  // B'' -> phase 2
      if (visY && !visZ) {
        result.parent[u] = region.neighbor(u, geo.towardPAlongY);
      } else if (visZ && !visY) {
        result.parent[u] = region.neighbor(u, geo.towardPAlongZ);
      } else {
        // Lemma 46: compare the forwarded distances bit by bit.
        result.parent[u] = dist.depth[projZ[u]] <= dist.depth[projY[u]]
                               ? region.neighbor(u, geo.towardPAlongZ)
                               : region.neighbor(u, geo.towardPAlongY);
      }
    }
  }

  // ---- Phase 2: components of B'' = B \ vis(P).
  std::vector<char> inB2(n, 0);
  for (int u = 0; u < n; ++u)
    inB2[u] = inB[u] && projY[u] < 0 && projZ[u] < 0 ? 1 : 0;

  std::vector<int> component(n, -1);
  std::vector<std::vector<int>> comps;
  for (int u = 0; u < n; ++u) {
    if (!inB2[u] || component[u] != -1) continue;
    const int cid = static_cast<int>(comps.size());
    comps.emplace_back();
    std::vector<int> stack{u};
    component[u] = cid;
    while (!stack.empty()) {
      const int w = stack.back();
      stack.pop_back();
      comps[cid].push_back(w);
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(w, d);
        if (v >= 0 && inB2[v] && component[v] == -1) {
          component[v] = cid;
          stack.push_back(v);
        }
      }
    }
  }

  std::vector<long> compRounds;
  for (const auto& comp : comps) {
    // s_Z: "northernmost" (closest to the portal row, tie: westernmost)
    // member of Z adjacent to B'.
    int sZ = -1;
    Coord sZcc{};
    for (const int u : comp) {
      bool touchesB1 = false;
      for (Dir d : kAllDirs) {
        const int v = region.neighbor(u, d);
        if (v >= 0 && inB[v] && !inB2[v]) touchesB1 = true;
      }
      if (!touchesB1) continue;
      const Coord cc = frame.apply(region.coordOf(u));
      const bool better =
          sZ == -1 ||
          (geo.bIsSouth ? cc.r > sZcc.r : cc.r < sZcc.r) ||
          (cc.r == sZcc.r && cc.q < sZcc.q);
      if (better) {
        sZ = u;
        sZcc = cc;
      }
    }
    if (sZ < 0)
      throw std::logic_error("propagateForest: component without boundary");

    // Lemma 49: parent of s_Z is a northernmost neighbor in B'_Z.
    int best = -1;
    Coord bestCc{};
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(sZ, d);
      if (v < 0 || !inB[v] || inB2[v]) continue;
      const Coord cc = frame.apply(region.coordOf(v));
      const bool better =
          best == -1 || (geo.bIsSouth ? cc.r > bestCc.r : cc.r < bestCc.r);
      if (better) {
        best = v;
        bestCc = cc;
      }
    }
    result.parent[sZ] = best;

    // Shortest path tree inside Z with source s_Z (Lemma 48), D = Z.
    std::vector<int> globals;
    globals.reserve(comp.size());
    for (const int u : comp) globals.push_back(region.globalId(u));
    const Region zRegion = Region::of(region.structure(), globals);
    std::vector<char> all(zRegion.size(), 1);
    const SptResult spt = shortestPathTree(
        zRegion, zRegion.localOf(region.globalId(sZ)), all, lanes);
    compRounds.push_back(spt.rounds);
    for (int zu = 0; zu < zRegion.size(); ++zu) {
      const int u = region.localOf(zRegion.globalId(zu));
      if (u == sZ) continue;
      if (spt.parent[zu] >= 0)
        result.parent[u] =
            region.localOf(zRegion.globalId(spt.parent[zu]));
    }
  }

  result.rounds = phase1Rounds + parallelRounds(compRounds);
  return result;
}

}  // namespace aspf

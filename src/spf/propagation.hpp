#pragma once
// Propagation algorithm (Section 5.3, Lemma 50): a portal P of some axis
// divides the (sub)structure into sides A and B; given an S-shortest-path
// forest for A u P (S inside A u P), propagate it into B within O(log n)
// rounds.
//
// Phase 1 covers B' = B intersect vis(P): every amoebot of B that shares a
// cross-axis portal (within P u B) with a P-amoebot learns this from one
// beep per cross axis; amoebots visible along exactly one axis take the
// neighbor toward that projection as parent (Lemma 47); amoebots visible
// along both compare dist(S, proj_y) and dist(S, proj_z), forwarded bitwise
// along the portal circuits while PASC runs on the existing forest
// (Lemma 46). Phase 2 covers each component Z of B \ vis(P): all shortest
// paths into Z pass the "northernmost" boundary amoebot s_Z (Lemma 48),
// which adopts a boundary neighbor as parent (Lemma 49); the shortest path
// tree algorithm then runs inside Z with source s_Z.
#include <vector>

#include "portals/portals.hpp"
#include "sim/comm.hpp"

namespace aspf {

struct PropagationResult {
  std::vector<int> parent;  // full region: A u P unchanged, B filled in
  long rounds = 0;
};

/// decomp: portal decomposition of the portal's axis over `region`;
/// parentAP: -1 sources, >= 0 parents on A u P, -2 exactly on B. All
/// members of portal `portalId` must be covered by parentAP.
PropagationResult propagateForest(const Region& region,
                                  const PortalDecomposition& decomp,
                                  int portalId,
                                  const std::vector<int>& parentAP,
                                  int lanes = 4);

}  // namespace aspf

#include "spf/forest.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "primitives/root_prune.hpp"
#include "sim/sim_counters.hpp"
#include "spf/line_algorithm.hpp"
#include "spf/merging.hpp"
#include "spf/propagation.hpp"
#include "spf/regions.hpp"
#include "spf/solve_cache.hpp"
#include "spf/spt.hpp"

namespace aspf {
namespace {

/// Disjoint-set over region indices; the root index owns the merged state.
class RegionDsu {
 public:
  explicit RegionDsu(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  int unite(int a, int b) {  // returns the surviving root
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
    return a;
  }

 private:
  std::vector<int> parent_;
};

struct MergedRegion {
  std::vector<int> members;  // top-region-local ids
  std::vector<int> parent;   // sized n over the top region; -2 outside
  bool covered = false;      // forest covers all members (has sources)
};

/// Extends `base` (covering W) into E through the cut vertex m: every
/// shortest path between the two regions traverses m, so a shortest path
/// tree from m inside E grafts onto the forest (Section 5.4.3, phase 1).
/// Returns rounds spent; no-op if the base forest is empty.
long extendThroughCutVertex(const Region& top, const MergedRegion& from,
                            const MergedRegion& into, int m,
                            std::vector<int>& outParent, bool& valid,
                            int lanes) {
  valid = from.covered;
  outParent = from.parent;
  if (!valid) return 0;
  std::vector<int> globals;
  globals.reserve(into.members.size());
  for (const int u : into.members) globals.push_back(top.globalId(u));
  const Region eRegion = Region::of(top.structure(), globals);
  const std::vector<char> all(eRegion.size(), 1);
  const int mLocal = eRegion.localOf(top.globalId(m));
  const SptResult spt = shortestPathTree(eRegion, mLocal, all, lanes);
  for (int zu = 0; zu < eRegion.size(); ++zu) {
    const int u = top.localOf(eRegion.globalId(zu));
    if (u == m) continue;  // m keeps its parent in `from`
    if (spt.parent[zu] >= 0)
      outParent[u] = top.localOf(eRegion.globalId(spt.parent[zu]));
  }
  return spt.rounds;
}

}  // namespace

ForestResult pruneForestToDestinations(const Region& region,
                                       const std::vector<int>& parent,
                                       std::span<const char> isDest,
                                       int lanes) {
  const int n = region.size();
  ForestResult result;
  result.parent.assign(n, -2);

  std::vector<std::vector<int>> children(n);
  std::vector<int> roots;
  for (int u = 0; u < n; ++u) {
    if (parent[u] >= 0) children[parent[u]].push_back(u);
    if (parent[u] == -1) roots.push_back(u);
  }

  std::vector<long> perTree;
  for (const int s : roots) {
    // Gather the tree and run root & prune with Q = D on it.
    TreeAdj tree = TreeAdj::empty(n);
    std::vector<int> stack{s};
    std::vector<char> inQ(n, 0);
    inQ[s] = 0;
    bool any = false;
    std::vector<int> nodes;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      nodes.push_back(u);
      if (isDest[u]) {
        inQ[u] = 1;
        any = true;
      }
      for (const int c : children[u]) {
        tree.add(region, c, u);
        stack.push_back(c);
      }
    }
    result.parent[s] = -1;  // sources always remain (trivial tree allowed)
    if (!any) {
      perTree.push_back(2);  // the no-destination beep still costs a round
      continue;
    }
    const EulerTour tour = buildEulerTour(region, tree, s);
    Comm comm(region, lanes);
    const RootPruneResult pruned = rootAndPrune(comm, tour, inQ);
    perTree.push_back(comm.rounds());
    for (const int u : nodes) {
      if (pruned.inVQ[u] && u != s) result.parent[u] = pruned.parent[u];
    }
  }
  result.rounds = parallelRounds(perTree);
  return result;
}

ForestResult shortestPathForest(const Region& region,
                                std::span<const char> isSource,
                                std::span<const char> isDest, int lanes,
                                Axis splitAxis, Comm* substrate) {
  const int n = region.size();
  std::vector<int> sources;
  for (int u = 0; u < n; ++u)
    if (isSource[u]) sources.push_back(u);
  if (sources.empty())
    throw std::invalid_argument("shortestPathForest: no sources");
  if (!region.isConnectedInduced())
    throw std::invalid_argument("shortestPathForest: region is disconnected");

  ForestResult result;

  if (sources.size() == 1) {
    // (1, l)-SPF: the shortest path tree algorithm (Theorem 39).
    const SptResult spt =
        shortestPathTree(region, sources.front(), isDest, lanes);
    result.parent = spt.parent;
    result.rounds = spt.rounds;
    return result;
  }

  if (substrate) {
    if (&substrate->region() != &region)
      throw std::invalid_argument(
          "shortestPathForest: substrate is bound to a different region");
    if (substrate->lanes() != lanes)
      throw std::invalid_argument(
          "shortestPathForest: substrate lane count mismatch");
  }

  // --- Cross-query memoization (warm serving path only). Everything from
  // here to the final prune is a pure function of (structure epoch, lanes,
  // axis, source set) -- isDest is consumed only by the single-source
  // shortcut above and by pruneForestToDestinations below -- so a live
  // forest entry answers any destination-only query: replay the recorded
  // model costs (control-flow determined, hence exact) and run just the
  // prune. Skipping the substrate work is safe because every miss path
  // starts with resetPins(); see solve_cache.hpp for the full contract.
  SolveCache* const cache = substrate ? activeSolveCache() : nullptr;
  const std::uint64_t epoch = substrate ? substrate->structureEpoch() : 0;
  if (cache) {
    if (const SolveCache::ForestEntry* hit =
            cache->findForest(epoch, lanes, splitAxis, sources)) {
      SimCounters& counters = simCounters();
      counters.delivers += hit->delivers;
      counters.beeps += hit->beeps;
      result.rounds = hit->rounds;
      result.phases = hit->phases;  // prune filled below
      const ForestResult pruned =
          pruneForestToDestinations(region, hit->parent, isDest, lanes);
      result.parent = pruned.parent;
      result.rounds += pruned.rounds;
      result.phases.prune = pruned.rounds;
      return result;
    }
  }
  const SimCounters pipelineBase = cache ? simCounters() : SimCounters{};

  // --- 5.4.1: Q, augmentation, Q', and the region split.
  std::optional<PortalDecomposition> ownPortals;
  const PortalDecomposition* decompPtr =
      cache ? cache->findPortals(epoch, splitAxis) : nullptr;
  if (!decompPtr) {
    ownPortals.emplace(computePortals(region, splitAxis));
    decompPtr = cache ? cache->storePortals(epoch, splitAxis,
                                            std::move(*ownPortals))
                      : &*ownPortals;
  }
  const PortalDecomposition& decomp = *decompPtr;
  const int portals = decomp.portalCount();
  std::vector<char> portalInQ(portals, 0);
  for (const int s : sources) portalInQ[decomp.portalOf[s]] = 1;
  const int rootPortal = decomp.portalOf[sources.front()];

  // The preprocessing phase runs whole-region circuits: the one place a
  // persistent warm substrate slots in. resetPins() normalizes leftover
  // configurations (free on the cold path); rounds are accounted relative
  // to the entry mark so a reused Comm reports this execution only. A
  // cached execution (same portal-level source bitmap, e.g. a source
  // toggled on a portal that keeps another source) is replayed instead.
  const SolveCache::PreprocessEntry* preHit =
      cache ? cache->findPreprocess(epoch, lanes, splitAxis, rootPortal,
                                    portalInQ)
            : nullptr;
  PortalRootPruneResult rootedOwn;
  if (preHit) {
    SimCounters& counters = simCounters();
    counters.delivers += preHit->delivers;
    counters.beeps += preHit->beeps;
    result.rounds += preHit->rounds;
    result.phases.preprocessing = preHit->rounds;
  } else {
    std::optional<Comm> ownPre;
    if (!substrate) ownPre.emplace(region, lanes);
    Comm& preComm = substrate ? *substrate : *ownPre;
    const SimCounters preBaseCounters = cache ? simCounters() : SimCounters{};
    preComm.resetPins();
    const long preBase = preComm.rounds();
    preComm.chargeRounds(1);  // sources beep on their portal circuits
    rootedOwn =
        portalRootAndPrune(preComm, decomp, {}, rootPortal, portalInQ, true);
    const long preRounds = preComm.rounds() - preBase;
    result.rounds += preRounds;
    result.phases.preprocessing = preRounds;
    if (cache) {
      const SimCounters delta = simCounters() - preBaseCounters;
      SolveCache::PreprocessEntry entry;
      entry.lanes = lanes;
      entry.axis = splitAxis;
      entry.rootPortal = rootPortal;
      entry.portalInQ = portalInQ;
      entry.rooted = rootedOwn;
      entry.rounds = preRounds;
      entry.delivers = delta.delivers;
      entry.beeps = delta.beeps;
      entry.unions = delta.unions;
      cache->storePreprocess(epoch, std::move(entry));
    }
  }
  const PortalRootPruneResult& rooted = preHit ? preHit->rooted : rootedOwn;
  std::vector<char> portalInQPrime(portals, 0);
  for (int p = 0; p < portals; ++p)
    portalInQPrime[p] = (portalInQ[p] || rooted.inAug[p]) ? 1 : 0;

  RegionSplit split = splitAtPortals(region, decomp, rooted, portalInQPrime);
  result.rounds += split.rounds;
  result.phases.split = split.rounds;

  // --- 5.4.2: base case per region.
  const int regionCount = static_cast<int>(split.regions.size());
  std::vector<MergedRegion> state(regionCount);
  std::vector<long> baseRounds;
  for (int i = 0; i < regionCount; ++i) {
    const SubRegionInfo& info = split.regions[i];
    MergedRegion& st = state[i];
    st.members = info.members;
    st.parent.assign(n, -2);

    std::vector<int> globals;
    globals.reserve(info.members.size());
    for (const int u : info.members) globals.push_back(region.globalId(u));
    const Region sub = Region::of(region.structure(), globals);

    long rounds = 0;
    std::vector<std::vector<int>> candidates;  // forests over `sub` locals
    for (const auto& segment : info.segments) {
      std::vector<int> chain;
      std::vector<char> srcOnChain;
      bool any = false;
      for (const int u : segment.members) {
        chain.push_back(sub.localOf(region.globalId(u)));
        const char flag = isSource[u];
        srcOnChain.push_back(flag);
        any = any || flag;
      }
      if (!any) continue;
      const LineSpfResult line = lineSpf(sub, chain, srcOnChain, lanes);
      const PortalDecomposition subDecomp = computePortals(sub, decomp.axis);
      const PropagationResult prop = propagateForest(
          sub, subDecomp, subDecomp.portalOf[chain.front()], line.parent,
          lanes);
      rounds += line.rounds + prop.rounds;
      candidates.push_back(prop.parent);
    }
    if (candidates.size() == 2) {
      const MergeResult merged =
          mergeForests(sub, candidates[0], candidates[1], lanes);
      rounds += merged.rounds;
      candidates[0] = merged.parent;
    }
    if (!candidates.empty()) {
      st.covered = true;
      for (int zu = 0; zu < sub.size(); ++zu) {
        const int u = region.localOf(sub.globalId(zu));
        st.parent[u] = candidates[0][zu] >= 0
                           ? region.localOf(sub.globalId(candidates[0][zu]))
                           : candidates[0][zu];
      }
    }
    baseRounds.push_back(rounds);
  }
  result.rounds += parallelRounds(baseRounds);
  result.phases.base = parallelRounds(baseRounds);

  // --- 5.4.3/5.4.4: bottom-up merging along the Q'-centroid decomposition
  // tree of the portal graph.
  const PortalDecompositionResult dt =
      portalDecompose(region, decomp, rootPortal, portalInQPrime, lanes);

  RegionDsu dsu(regionCount);

  auto mergeRegions = [&](int rootA, int rootB,
                          std::vector<int> parent) -> int {
    const int survivor = dsu.unite(rootA, rootB);
    MergedRegion& a = state[rootA];
    MergedRegion& b = state[rootB];
    std::vector<int> members;
    members.reserve(a.members.size() + b.members.size());
    std::merge(a.members.begin(), a.members.end(), b.members.begin(),
               b.members.end(), std::back_inserter(members));
    members.erase(std::unique(members.begin(), members.end()), members.end());
    MergedRegion& out = state[survivor];
    out.members = std::move(members);
    out.parent = std::move(parent);
    out.covered = false;
    for (const int u : out.members) {
      if (out.parent[u] != -2) {
        out.covered = true;
        break;
      }
    }
    return survivor;
  };

  auto mergeAcrossMark = [&](int rootW, int rootE, int mark) -> long {
    MergedRegion& w = state[rootW];
    MergedRegion& e = state[rootE];
    std::vector<int> wStar, eStar;
    bool wValid = false, eValid = false;
    std::array<long, 2> sptRounds{};
    sptRounds[0] =
        extendThroughCutVertex(region, w, e, mark, wStar, wValid, lanes);
    sptRounds[1] =
        extendThroughCutVertex(region, e, w, mark, eStar, eValid, lanes);
    long rounds = parallelRounds(sptRounds);
    std::vector<int> mergedParent;
    if (wValid && eValid) {
      const MergeResult merged = mergeForests(region, wStar, eStar, lanes);
      rounds += merged.rounds;
      mergedParent = merged.parent;
    } else if (wValid) {
      mergedParent = std::move(wStar);
    } else if (eValid) {
      mergedParent = std::move(eStar);
    } else {
      mergedParent.assign(n, -2);
    }
    mergeRegions(rootW, rootE, std::move(mergedParent));
    return rounds;
  };

  auto mergeAtPortal = [&](int p) -> long {
    long rounds = 0;
    // Phase 1: per side, pair-merge the attached regions (marks separate
    // them); PASC parity picks disjoint pairs, halving the count per
    // iteration.
    std::array<int, 2> sideRoot{-1, -1};
    std::array<long, 2> sideRounds{};
    int sideIdx = 0;
    for (const PortalSideOrder& order : split.sides) {
      if (order.portal != p) continue;
      // Collapse to current roots (deeper merges never crossed this
      // portal, so entries stay distinct; collapse defensively anyway).
      std::vector<int> roots;
      std::vector<int> marks;
      for (std::size_t j = 0; j < order.regionIndex.size(); ++j) {
        const int r = dsu.find(order.regionIndex[j]);
        if (!roots.empty() && roots.back() == r) continue;
        if (!roots.empty()) marks.push_back(order.marks[j - 1]);
        roots.push_back(r);
      }
      long phase = 0;
      while (roots.size() > 1) {
        phase += 2;  // one PASC-parity iteration on the marked amoebots
        std::vector<int> nextRoots;
        std::vector<int> nextMarks;
        std::vector<long> pairRounds;
        for (std::size_t j = 0; j + 1 < roots.size(); j += 2) {
          pairRounds.push_back(
              mergeAcrossMark(roots[j], roots[j + 1], marks[j]));
          nextRoots.push_back(dsu.find(roots[j]));
          if (j + 2 < roots.size()) nextMarks.push_back(marks[j + 1]);
        }
        if (roots.size() % 2 == 1) nextRoots.push_back(roots.back());
        phase += parallelRounds(pairRounds);
        roots = std::move(nextRoots);
        marks = std::move(nextMarks);
      }
      const int which = order.northSide ? 0 : 1;
      sideRoot[which] = roots.empty() ? -1 : roots.front();
      sideRounds[which] += phase;
      ++sideIdx;
    }
    (void)sideIdx;
    rounds += std::max(sideRounds[0], sideRounds[1]);

    // Phase 2: merge the two sides across the portal with two propagations
    // and a merge (Section 5.4.3).
    const int rn = sideRoot[0] >= 0 ? dsu.find(sideRoot[0]) : -1;
    const int rs = sideRoot[1] >= 0 ? dsu.find(sideRoot[1]) : -1;
    if (rn < 0 || rs < 0 || rn == rs) return rounds;

    std::vector<int> members;
    std::merge(state[rn].members.begin(), state[rn].members.end(),
               state[rs].members.begin(), state[rs].members.end(),
               std::back_inserter(members));
    members.erase(std::unique(members.begin(), members.end()), members.end());
    std::vector<int> globals;
    globals.reserve(members.size());
    for (const int u : members) globals.push_back(region.globalId(u));
    const Region sub = Region::of(region.structure(), globals);
    const PortalDecomposition subDecomp = computePortals(sub, decomp.axis);
    const int subPortal =
        subDecomp.portalOf[sub.localOf(
            region.globalId(decomp.members[p].front()))];

    auto toSub = [&](const std::vector<int>& parentTop) {
      std::vector<int> parentSub(sub.size(), -2);
      for (int zu = 0; zu < sub.size(); ++zu) {
        const int u = region.localOf(sub.globalId(zu));
        const int pu = parentTop[u];
        parentSub[zu] =
            pu >= 0 ? sub.localOf(region.globalId(pu)) : pu;
      }
      return parentSub;
    };
    auto toTop = [&](const std::vector<int>& parentSub) {
      std::vector<int> parentTop(n, -2);
      for (int zu = 0; zu < sub.size(); ++zu) {
        const int u = region.localOf(sub.globalId(zu));
        const int pz = parentSub[zu];
        parentTop[u] = pz >= 0 ? region.localOf(sub.globalId(pz)) : pz;
      }
      return parentTop;
    };

    std::vector<std::vector<int>> candidates;
    for (const int side : {rn, rs}) {
      if (!state[side].covered) continue;
      const PropagationResult prop = propagateForest(
          sub, subDecomp, subPortal, toSub(state[side].parent), lanes);
      rounds += prop.rounds;
      candidates.push_back(prop.parent);
    }
    std::vector<int> mergedParent;
    if (candidates.size() == 2) {
      const MergeResult merged =
          mergeForests(sub, candidates[0], candidates[1], lanes);
      rounds += merged.rounds;
      mergedParent = toTop(merged.parent);
    } else if (candidates.size() == 1) {
      mergedParent = toTop(candidates[0]);
    } else {
      mergedParent.assign(n, -2);
    }
    mergeRegions(rn, rs, std::move(mergedParent));
    return rounds;
  };

  for (int depth = dt.height - 1; depth >= 0; --depth) {
    // The decomposition tree is recomputed every iteration (binary counter
    // technique of [26]); its rounds are charged per level.
    result.rounds += dt.rounds;
    result.phases.decomposition += dt.rounds;
    std::vector<long> perPortal;
    for (int p = 0; p < portals; ++p) {
      if (dt.depthOfPortal[p] != depth) continue;
      perPortal.push_back(mergeAtPortal(p));
    }
    if (!perPortal.empty()) {
      result.rounds += parallelRounds(perPortal);
      result.phases.merging += parallelRounds(perPortal);
    }
  }

  // All regions are now one; its forest covers the structure.
  const int finalRoot = dsu.find(0);
  for (int i = 0; i < regionCount; ++i) {
    if (dsu.find(i) != finalRoot)
      throw std::logic_error("shortestPathForest: regions failed to merge");
  }

  if (cache) {
    const SimCounters delta = simCounters() - pipelineBase;
    SolveCache::ForestEntry entry;
    entry.lanes = lanes;
    entry.axis = splitAxis;
    entry.sources = sources;
    entry.parent = state[finalRoot].parent;
    entry.rounds = result.rounds;   // pre-prune total
    entry.phases = result.phases;   // prune still zero here
    entry.delivers = delta.delivers;
    entry.beeps = delta.beeps;
    entry.unions = delta.unions;
    cache->storeForest(epoch, std::move(entry));
  }

  // --- Corollary 57: prune every tree to destination-covering branches.
  const ForestResult pruned =
      pruneForestToDestinations(region, state[finalRoot].parent, isDest, lanes);
  result.parent = pruned.parent;
  result.rounds += pruned.rounds;
  result.phases.prune = pruned.rounds;
  return result;
}

}  // namespace aspf

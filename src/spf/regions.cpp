#include "spf/regions.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

namespace aspf {
namespace {

// Node of the modified portal graph: either a plain (non-Q') portal or one
// (side, segment) subportal of a Q' portal.
struct SplitNode {
  int portal;
  bool isSubportal = false;
  bool northSide = false;
  int segment = 0;  // index along the side, west to east
};

}  // namespace

RegionSplit splitAtPortals(const Region& region,
                           const PortalDecomposition& decomp,
                           const PortalRootPruneResult& rooted,
                           std::span<const char> portalInQPrime) {
  RegionSplit out;
  out.rounds = 1;  // unmark-the-westernmost beep (Lemma 52)
  const int portals = decomp.portalCount();
  const Frame& frame = decomp.frame;

  auto canonQ = [&](int local) { return frame.apply(region.coordOf(local)).q; };
  auto canonR = [&](int local) { return frame.apply(region.coordOf(local)).r; };

  // --- Per Q' portal and side: marked connectors and segment boundaries.
  // segBoundaries[p][side] = positions (canonical q) of still-marked
  // amoebots, ascending; segments are [start..m1], [m1..m2], ..., [mk..end].
  struct SideSplit {
    bool exists = false;                // any cross edge on this side
    std::vector<int> marks;             // marked amoebots, west to east
  };
  std::vector<std::array<SideSplit, 2>> sideSplit(portals);  // [0]=N, [1]=S

  for (int p = 0; p < portals; ++p) {
    if (!portalInQPrime[p]) continue;
    const std::int32_t row = canonR(decomp.members[p].front());
    std::array<std::vector<int>, 2> connectors;  // V_Q connectors per side
    for (const auto& e : decomp.adj[p]) {
      const bool north = canonR(e.peerEnd) > row;
      sideSplit[p][north ? 0 : 1].exists = true;
      if (rooted.portalInVQ[e.peerPortal])
        connectors[north ? 0 : 1].push_back(e.selfEnd);
    }
    for (int side = 0; side < 2; ++side) {
      auto& cs = connectors[side];
      std::sort(cs.begin(), cs.end(),
                [&](int a, int b) { return canonQ(a) < canonQ(b); });
      // Unmark the westernmost; the rest stay marked and split the run.
      if (!cs.empty()) cs.erase(cs.begin());
      sideSplit[p][side].marks = cs;
    }
  }

  // --- Build the modified portal graph nodes.
  std::vector<SplitNode> nodes;
  // nodeOfPlain[p] for non-Q' portals; nodeOfSub[p][side][segment].
  std::vector<int> nodeOfPlain(portals, -1);
  std::map<std::tuple<int, int, int>, int> nodeOfSub;
  for (int p = 0; p < portals; ++p) {
    if (!portalInQPrime[p]) {
      nodeOfPlain[p] = static_cast<int>(nodes.size());
      nodes.push_back({p, false, false, 0});
      continue;
    }
    bool anySide = false;
    for (int side = 0; side < 2; ++side) {
      if (!sideSplit[p][side].exists) continue;
      anySide = true;
      const int segments =
          static_cast<int>(sideSplit[p][side].marks.size()) + 1;
      for (int seg = 0; seg < segments; ++seg) {
        nodeOfSub[{p, side, seg}] = static_cast<int>(nodes.size());
        nodes.push_back({p, true, side == 0, seg});
      }
    }
    if (!anySide) {
      // Isolated Q' portal (the whole structure is one portal): a single
      // subportal node so the region machinery still produces one region.
      nodeOfSub[{p, 0, 0}] = static_cast<int>(nodes.size());
      nodes.push_back({p, true, true, 0});
      sideSplit[p][0].exists = true;
    }
  }

  // Segment lookup: which segment of (p, side) contains a connector at
  // canonical position q? Boundary marks belong to the *eastern* segment
  // for edge assignment (their own V_Q edge), and to both segments as
  // members.
  auto segmentOf = [&](int p, int side, int connectorLocal) {
    const auto& marks = sideSplit[p][side].marks;
    const std::int32_t q = canonQ(connectorLocal);
    int seg = 0;
    for (const int m : marks) {
      if (q >= canonQ(m)) ++seg;
    }
    return seg;
  };

  auto nodeOfEndpoint = [&](int p, int connectorLocal, int peerLocal) {
    if (!portalInQPrime[p]) return nodeOfPlain[p];
    const bool north = canonR(peerLocal) > canonR(connectorLocal);
    const int side = north ? 0 : 1;
    const auto it =
        nodeOfSub.find({p, side, segmentOf(p, side, connectorLocal)});
    if (it == nodeOfSub.end())
      throw std::logic_error("splitAtPortals: missing subportal node");
    return it->second;
  };

  // --- Edges of the modified portal graph + components.
  std::vector<std::vector<int>> nodeAdj(nodes.size());
  for (int p = 0; p < portals; ++p) {
    for (const auto& e : decomp.adj[p]) {
      if (e.peerPortal < p) continue;  // each undirected edge once
      const int a = nodeOfEndpoint(p, e.selfEnd, e.peerEnd);
      const int b = nodeOfEndpoint(e.peerPortal, e.peerEnd, e.selfEnd);
      nodeAdj[a].push_back(b);
      nodeAdj[b].push_back(a);
    }
  }
  std::vector<int> componentOf(nodes.size(), -1);
  int componentCount = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (componentOf[i] != -1) continue;
    std::queue<int> q;
    q.push(static_cast<int>(i));
    componentOf[i] = componentCount;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const int v : nodeAdj[u]) {
        if (componentOf[v] == -1) {
          componentOf[v] = componentCount;
          q.push(v);
        }
      }
    }
    ++componentCount;
  }

  // --- Materialize regions: members are the union of node member sets.
  auto segmentMembers = [&](int p, int side, int seg) {
    const auto& run = decomp.members[p];
    const auto& marks = sideSplit[p][side].marks;
    // Boundaries by canonical q; run is stored west to east already.
    std::int32_t lo = canonQ(run.front()), hi = canonQ(run.back());
    if (seg > 0) lo = canonQ(marks[seg - 1]);
    if (seg < static_cast<int>(marks.size())) hi = canonQ(marks[seg]);
    std::vector<int> ms;
    for (const int u : run) {
      const std::int32_t q = canonQ(u);
      if (q >= lo && q <= hi) ms.push_back(u);
    }
    return ms;
  };

  out.regions.resize(componentCount);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SplitNode& node = nodes[i];
    SubRegionInfo& reg = out.regions[componentOf[i]];
    if (!node.isSubportal) {
      const auto& ms = decomp.members[node.portal];
      reg.members.insert(reg.members.end(), ms.begin(), ms.end());
    } else {
      SubRegionInfo::Segment seg;
      seg.portal = node.portal;
      seg.northSide = node.northSide;
      seg.members =
          segmentMembers(node.portal, node.northSide ? 0 : 1, node.segment);
      reg.members.insert(reg.members.end(), seg.members.begin(),
                         seg.members.end());
      reg.segments.push_back(std::move(seg));
    }
  }
  for (auto& reg : out.regions) {
    std::sort(reg.members.begin(), reg.members.end());
    reg.members.erase(std::unique(reg.members.begin(), reg.members.end()),
                      reg.members.end());
    if (reg.segments.size() > 2)
      throw std::logic_error(
          "splitAtPortals: region intersects more than two Q' portals");
  }

  // --- Side orders for the merging phase: regions along each side of each
  // Q' portal, west to east, separated by the marks.
  for (int p = 0; p < portals; ++p) {
    if (!portalInQPrime[p]) continue;
    for (int side = 0; side < 2; ++side) {
      if (!sideSplit[p][side].exists) continue;
      PortalSideOrder order;
      order.portal = p;
      order.northSide = side == 0;
      const int segments =
          static_cast<int>(sideSplit[p][side].marks.size()) + 1;
      for (int seg = 0; seg < segments; ++seg) {
        const auto it = nodeOfSub.find({p, side, seg});
        if (it == nodeOfSub.end()) continue;
        order.regionIndex.push_back(componentOf[it->second]);
      }
      order.marks = sideSplit[p][side].marks;
      out.sides.push_back(std::move(order));
    }
  }
  return out;
}

}  // namespace aspf

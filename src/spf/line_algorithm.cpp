#include "spf/line_algorithm.hpp"

#include <stdexcept>

#include "pasc/pasc_chain.hpp"

namespace aspf {

LineSpfResult lineSpf(const Region& region, std::span<const int> chainStops,
                      std::span<const char> isSourceOnChain, int lanes) {
  const int m = static_cast<int>(chainStops.size());
  if (static_cast<int>(isSourceOnChain.size()) != m)
    throw std::invalid_argument("lineSpf: source flags size mismatch");
  LineSpfResult result;
  result.parent.assign(region.size(), -2);

  std::vector<int> sourcePositions;
  for (int i = 0; i < m; ++i) {
    if (isSourceOnChain[i]) sourcePositions.push_back(i);
  }
  if (sourcePositions.empty())
    throw std::invalid_argument("lineSpf: no sources on the chain");
  for (const int i : sourcePositions) result.parent[chainStops[i]] = -1;

  // Segments between consecutive sources (and the two outer stubs). For
  // each, PASC runs from both end sources (or one, for stubs); every
  // interior amoebot compares the two distance streams and points toward
  // the nearer source. All segment executions are disjoint subchains of the
  // line and run in parallel.
  std::vector<long> segmentRounds;
  auto runSegment = [&](int from, int to, bool leftIsSource,
                        bool rightIsSource) {
    // Positions strictly between from and to are interior.
    if (to - from < 1) return;
    // The two directional PASC executions use disjoint circuits and run in
    // parallel (Lemma 40): separate Comms, max-round accounting.
    std::vector<std::uint64_t> distLeft, distRight;
    std::array<long, 2> dirRounds{};
    if (leftIsSource) {
      Comm comm(region, lanes);
      std::vector<int> stops(chainStops.begin() + from,
                             chainStops.begin() + to + 1);
      distLeft = runPascChain(comm, stops).value;
      dirRounds[0] = comm.rounds();
    }
    if (rightIsSource) {
      Comm comm(region, lanes);
      std::vector<int> stops(chainStops.rbegin() + (m - 1 - to),
                             chainStops.rbegin() + (m - from));
      distRight = runPascChain(comm, stops).value;
      dirRounds[1] = comm.rounds();
    }
    // Cover every non-source stop of the segment, including the outer stub
    // endpoints (the stubs have only one source end).
    for (int pos = from; pos <= to; ++pos) {
      if (isSourceOnChain[pos]) continue;
      const int u = chainStops[pos];
      const std::uint64_t dl =
          leftIsSource ? distLeft[pos - from] : ~std::uint64_t{0};
      const std::uint64_t dr =
          rightIsSource ? distRight[to - pos] : ~std::uint64_t{0};
      // Streaming comparison in the amoebots; tie -> west.
      result.parent[u] =
          dl <= dr ? chainStops[pos - 1] : chainStops[pos + 1];
    }
    segmentRounds.push_back(std::max(dirRounds[0], dirRounds[1]));
  };

  // Outer stubs.
  runSegment(0, sourcePositions.front(), false, true);
  runSegment(sourcePositions.back(), m - 1, true, false);
  for (std::size_t i = 0; i + 1 < sourcePositions.size(); ++i)
    runSegment(sourcePositions[i], sourcePositions[i + 1], true, true);

  result.rounds = parallelRounds(segmentRounds);
  return result;
}

}  // namespace aspf

#include "spf/merging.hpp"

#include <stdexcept>

#include "pasc/pasc_tree.hpp"

namespace aspf {

MergeResult mergeForests(const Region& region,
                         const std::vector<int>& parent1,
                         const std::vector<int>& parent2, int lanes) {
  const int n = region.size();
  if (static_cast<int>(parent1.size()) != n ||
      static_cast<int>(parent2.size()) != n)
    throw std::invalid_argument("mergeForests: parent size mismatch");
  MergeResult result;
  result.parent.assign(n, -2);

  // dist(S1, .) and dist(S2, .) via PASC on each forest; the two runs use
  // disjoint circuits (different pin lanes) and run in parallel.
  std::array<long, 2> runs{};
  Comm comm1(region, lanes), comm2(region, lanes);
  const TreePascResult d1 = runPascForest(comm1, parent1);
  const TreePascResult d2 = runPascForest(comm2, parent2);
  runs[0] = comm1.rounds();
  runs[1] = comm2.rounds();
  result.rounds = parallelRounds(runs);

  for (int u = 0; u < n; ++u) {
    const bool in1 = parent1[u] != -2, in2 = parent2[u] != -2;
    if (!in1 && !in2) continue;
    if (in1 && parent1[u] == -1) {
      result.parent[u] = -1;  // u in S1 (distance 0, can only win)
      continue;
    }
    if (in2 && parent2[u] == -1) {
      result.parent[u] = -1;
      continue;
    }
    if (!in2) {
      result.parent[u] = parent1[u];
      continue;
    }
    if (!in1) {
      result.parent[u] = parent2[u];
      continue;
    }
    // Lemma 41: the nearer forest's parent is feasible (streaming compare).
    result.parent[u] = d1.depth[u] <= d2.depth[u] ? parent1[u] : parent2[u];
  }
  return result;
}

}  // namespace aspf

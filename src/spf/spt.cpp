#include "spf/spt.hpp"

#include <stdexcept>

#include "portals/portal_primitives.hpp"
#include "primitives/root_prune.hpp"

namespace aspf {

SptResult shortestPathTree(const Region& region, int source,
                           std::span<const char> isDest, int lanes) {
  const int n = region.size();
  SptResult result;
  result.parent.assign(n, -2);
  if (n == 1) {
    result.parent[source] = -1;
    return result;
  }

  // Per axis: root & prune the portal graph at portal(s) with
  // Q = { portals containing destinations }.
  std::array<PortalDecomposition, 3> decomp{
      computePortals(region, Axis::X), computePortals(region, Axis::Y),
      computePortals(region, Axis::Z)};
  std::array<PortalRootPruneResult, 3> rooted;
  std::array<long, 3> axisRounds{};
  for (int a = 0; a < 3; ++a) {
    std::vector<char> portalHasDest(decomp[a].portalCount(), 0);
    for (int u = 0; u < n; ++u) {
      if (isDest[u]) portalHasDest[decomp[a].portalOf[u]] = 1;
    }
    Comm comm(region, lanes);
    comm.chargeRounds(1);  // destinations beep on their portal circuits
    rooted[a] = portalRootAndPrune(comm, decomp[a], {},
                                   decomp[a].portalOf[source], portalHasDest);
    axisRounds[a] = comm.rounds();
  }
  // The three axis executions share no partition sets (constant pins per
  // axis); they run in parallel.
  result.rounds += parallelRounds(axisRounds);

  // Parent choice by Equation (1): v is feasible iff the edge's own axis
  // contributes 0 (same portal) and on both other axes portal(v) is the
  // parent of portal(u). Amoebots whose relevant portals were pruned cannot
  // verify the relation and skip the candidate (Lemma 38 guarantees that
  // amoebots on shortest paths to destinations never need pruned portals).
  std::vector<int> chosen(n, -2);
  chosen[source] = -1;
  for (int u = 0; u < n; ++u) {
    if (u == source) continue;
    for (Dir d : kAllDirs) {
      const int v = region.neighbor(u, d);
      if (v < 0) continue;
      const Axis own = axisOf(d);
      bool feasible = true;
      for (const Axis axis : kAllAxes) {
        if (axis == own) continue;  // same portal: contributes 0
        const int a = static_cast<int>(axis);
        const int pu = decomp[a].portalOf[u];
        const int pv = decomp[a].portalOf[v];
        if (!rooted[a].portalInVQ[pu] ||
            rooted[a].parentPortal[pu] != pv) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        chosen[u] = v;
        break;
      }
    }
  }

  // Final root & prune on the parent forest: extract the tree rooted at s,
  // prune subtrees without destinations; detached components receive no
  // signals and drop out.
  TreeAdj forest = TreeAdj::empty(n);
  std::vector<char> inComponent(n, 0);
  {
    // Component of s in the undirected parent graph.
    std::vector<std::vector<int>> children(n);
    for (int u = 0; u < n; ++u) {
      if (chosen[u] >= 0) children[chosen[u]].push_back(u);
    }
    std::vector<int> stack{source};
    inComponent[source] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const int c : children[u]) {
        if (!inComponent[c]) {
          inComponent[c] = 1;
          forest.add(region, c, u);
          stack.push_back(c);
        }
      }
    }
  }
  std::vector<char> inQ(n, 0);
  for (int u = 0; u < n; ++u) inQ[u] = isDest[u] && inComponent[u] ? 1 : 0;
  // All destinations lie in s's component (Lemma 38).
  for (int u = 0; u < n; ++u) {
    if (isDest[u] && !inComponent[u])
      throw std::logic_error("SPT: destination escaped the source tree");
  }

  const EulerTour tour = buildEulerTour(region, forest, source);
  Comm finalComm(region, lanes);
  const RootPruneResult pruned = rootAndPrune(finalComm, tour, inQ);
  result.rounds += finalComm.rounds();

  for (int u = 0; u < n; ++u) {
    if (!pruned.inVQ[u]) continue;
    result.parent[u] = u == source ? -1 : pruned.parent[u];
  }
  result.parent[source] = -1;
  return result;
}

}  // namespace aspf

#pragma once
// Shortest path tree algorithm (Section 4, Theorem 39): computes an
// ({s},D)-shortest-path forest within O(log l) rounds, l = |D|.
//
// Outline: root all three (implicit) portal graphs at s with the root &
// prune primitive (Q = portals containing destinations). By Lemma 11 an
// amoebot v is a feasible parent of u iff they share one axis portal and,
// on the two remaining axes, v's portal is the parent of u's portal
// (Equation 1). Every amoebot that can verify this picks a parent; a final
// root & prune on the resulting parent forest extracts the tree rooted at s
// and prunes branches without destinations (components that never hear a
// signal drop out).
//
// SPSP (|D| = 1) runs in O(1) rounds, SSSP (D = X) in O(log n) rounds.
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct SptResult {
  /// parent[u]: region-local parent toward s; -1 for s itself; -2 for
  /// amoebots outside the final tree.
  std::vector<int> parent;
  long rounds = 0;
};

/// isDest[u] per region-local id; D must be non-empty. The region must be
/// connected and hole-free.
SptResult shortestPathTree(const Region& region, int source,
                           std::span<const char> isDest, int lanes = 4);

}  // namespace aspf

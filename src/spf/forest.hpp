#pragma once
// Shortest path forest algorithm (Section 5.4, Theorem 56 / Corollary 57):
// computes an (S,D)-shortest-path forest for k sources within
// O(log n log^2 k) rounds.
//
// Pipeline: compute Q' = (source portals) u (augmentation set); split the
// structure into regions intersecting <= 2 Q' portals (Lemma 52); solve
// each region with line algorithm + propagation (+ merge, Lemma 54);
// iteratively merge regions bottom-up along the Q'-centroid decomposition
// tree of the portal graph -- pairwise along each portal side via
// PASC-parity pairing, then across the portal with two propagations and a
// merge (Lemma 55). A final root & prune on every tree discards branches
// without destinations (Corollary 57).
#include <span>

#include "sim/comm.hpp"

namespace aspf {

struct ForestResult {
  /// parent[u]: -1 for sources, parent toward the closest source for
  /// forest members, -2 for amoebots pruned from the forest.
  std::vector<int> parent;
  long rounds = 0;

  /// Per-phase breakdown of `rounds` (zero when the single-source shortcut
  /// is taken): Q'/augmentation preprocessing, region split, per-region
  /// base case, decomposition-tree recomputations, portal merging, final
  /// destination pruning.
  struct Phases {
    long preprocessing = 0;
    long split = 0;
    long base = 0;
    long decomposition = 0;
    long merging = 0;
    long prune = 0;
  } phases;
};

/// `splitAxis` selects the portal direction used for Q'/regions (the paper
/// fixes one w.l.o.g.; the ablation bench compares all three).
///
/// `substrate` (optional) is a persistent whole-region Comm used for the
/// Q'/augmentation preprocessing phase -- the dynamic-timeline warm path:
/// after a Comm::rebind onto a mutated structure, the carried-over
/// union-find repairs only the affected portal circuits instead of
/// rebuilding all of them. Must be bound to `region` with the same lane
/// count. The divide & conquer recursion still builds its per-sub-region
/// Comms from scratch (sub-regions change shape between epochs), as does
/// the per-tree prune; results and round counts are bit-identical with
/// and without a substrate. Ignored by the single-source shortcut.
ForestResult shortestPathForest(const Region& region,
                                std::span<const char> isSource,
                                std::span<const char> isDest, int lanes = 4,
                                Axis splitAxis = Axis::X,
                                Comm* substrate = nullptr);

/// Final step of both forest algorithms: per-tree root & prune with Q = D
/// (all trees in parallel). Exposed for the naive baseline.
ForestResult pruneForestToDestinations(const Region& region,
                                       const std::vector<int>& parent,
                                       std::span<const char> isDest,
                                       int lanes = 4);

}  // namespace aspf

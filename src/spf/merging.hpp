#pragma once
// Merging algorithm (Section 5.2, Lemma 42): merges an S1- and an
// S2-shortest-path forest into an (S1 u S2)-shortest-path forest within
// O(log n) rounds. PASC runs on both forests in parallel (Corollary 5),
// every amoebot compares dist(S1, u) and dist(S2, u) bit by bit and keeps
// the parent of the nearer forest (Lemma 41).
#include <vector>

#include "sim/region.hpp"

namespace aspf {

struct MergeResult {
  std::vector<int> parent;  // -1 roots (sources), -2 uncovered by both
  long rounds = 0;
};

/// parent1/parent2: -1 for sources, -2 for uncovered amoebots. An amoebot
/// covered by only one forest keeps that forest's parent.
MergeResult mergeForests(const Region& region,
                         const std::vector<int>& parent1,
                         const std::vector<int>& parent2, int lanes = 4);

}  // namespace aspf

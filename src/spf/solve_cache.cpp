#include "spf/solve_cache.hpp"

#include <utility>

namespace aspf {
namespace {

// Bounded per-unit entry counts: serving streams revisit a handful of
// source sets per epoch, so a small window captures the recurrence while
// keeping lookups a trivially deterministic linear scan. Eviction is FIFO
// (drop the oldest entry), also deterministic.
constexpr std::size_t kMaxPreprocessEntries = 64;
constexpr std::size_t kMaxForestEntries = 64;

thread_local SolveCache* tlsActiveSolveCache = nullptr;

}  // namespace

void SolveCache::syncEpoch(std::uint64_t epoch) {
  if (everSynced_ && epoch == epoch_) return;
  if (everSynced_) {
    stats_.invalidations +=
        static_cast<long>(portalDecomps_.size() + preprocess_.size() +
                          forests_.size());
    portalAxes_.clear();
    portalDecomps_.clear();
    preprocess_.clear();
    forests_.clear();
  }
  epoch_ = epoch;
  everSynced_ = true;
}

const PortalDecomposition* SolveCache::findPortals(std::uint64_t epoch,
                                                   Axis axis) {
  syncEpoch(epoch);
  for (std::size_t i = 0; i < portalAxes_.size(); ++i) {
    if (portalAxes_[i] == axis) {
      ++stats_.hits;
      return &portalDecomps_[i];
    }
  }
  ++stats_.misses;
  return nullptr;
}

const PortalDecomposition* SolveCache::storePortals(std::uint64_t epoch,
                                                    Axis axis,
                                                    PortalDecomposition
                                                        decomp) {
  syncEpoch(epoch);
  portalAxes_.push_back(axis);  // at most one entry per axis per epoch
  portalDecomps_.push_back(std::move(decomp));
  return &portalDecomps_.back();
}

const SolveCache::PreprocessEntry* SolveCache::findPreprocess(
    std::uint64_t epoch, int lanes, Axis axis, int rootPortal,
    const std::vector<char>& portalInQ) {
  syncEpoch(epoch);
  for (const PreprocessEntry& e : preprocess_) {
    if (e.lanes == lanes && e.axis == axis && e.rootPortal == rootPortal &&
        e.portalInQ == portalInQ) {
      ++stats_.hits;
      stats_.savedUnions += e.unions;
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void SolveCache::storePreprocess(std::uint64_t epoch, PreprocessEntry entry) {
  syncEpoch(epoch);
  if (preprocess_.size() >= kMaxPreprocessEntries)
    preprocess_.erase(preprocess_.begin());
  preprocess_.push_back(std::move(entry));
}

const SolveCache::ForestEntry* SolveCache::findForest(
    std::uint64_t epoch, int lanes, Axis axis,
    const std::vector<int>& sources) {
  syncEpoch(epoch);
  for (const ForestEntry& e : forests_) {
    if (e.lanes == lanes && e.axis == axis && e.sources == sources) {
      ++stats_.hits;
      stats_.savedUnions += e.unions;
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void SolveCache::storeForest(std::uint64_t epoch, ForestEntry entry) {
  syncEpoch(epoch);
  if (forests_.size() >= kMaxForestEntries) forests_.erase(forests_.begin());
  forests_.push_back(std::move(entry));
}

void SolveCache::corruptForTest() {
  for (ForestEntry& e : forests_) {
    ++e.rounds;
    ++e.delivers;
    for (int& p : e.parent) {
      if (p >= 0) {
        p = -1;  // a bogus extra root: still a well-formed forest
        break;
      }
    }
  }
}

SolveCache* activeSolveCache() noexcept { return tlsActiveSolveCache; }

void setActiveSolveCache(SolveCache* cache) noexcept {
  tlsActiveSolveCache = cache;
}

}  // namespace aspf

#pragma once
// Region decomposition for the divide & conquer forest algorithm
// (Section 5.4.1, Lemma 52). The structure is split at every portal of
// Q' = Q u A_Q (Q = portals containing sources): first into the two sides
// of each Q' portal, then -- within each side -- at the still-marked
// connector amoebots, so that every resulting region intersects one or two
// (sub)portals of Q'. Adjacent regions along a portal side overlap exactly
// in a marked amoebot; regions across a portal share the portal segment.
#include <span>
#include <vector>

#include "portals/portal_primitives.hpp"

namespace aspf {

struct SubRegionInfo {
  std::vector<int> members;  // region-local ids (of the parent region)
  /// Q' (sub)portal segments of this region: (portal id, member run).
  struct Segment {
    int portal;
    bool northSide;            // which side's split produced it
    std::vector<int> members;  // west -> east
  };
  std::vector<Segment> segments;  // size 1 or 2 (Lemma 52)
};

struct PortalSideOrder {
  int portal;
  bool northSide;
  /// Regions attached to this side of the portal, west to east; adjacent
  /// entries are separated by the marked amoebot with the same index.
  std::vector<int> regionIndex;
  std::vector<int> marks;  // size regionIndex.size() - 1
};

struct RegionSplit {
  std::vector<SubRegionInfo> regions;
  std::vector<PortalSideOrder> sides;  // one per (Q' portal, non-empty side)
  long rounds = 0;                     // O(1) (Lemma 52)
};

/// `rooted` must come from portalRootAndPrune over the full portal graph
/// with Q = source portals (it provides V_Q and the augmentation);
/// portalInQPrime = Q u A_Q.
RegionSplit splitAtPortals(const Region& region,
                           const PortalDecomposition& decomp,
                           const PortalRootPruneResult& rooted,
                           std::span<const char> portalInQPrime);

}  // namespace aspf

#pragma once
// Line algorithm (Section 5.1, Lemma 40): an S-shortest-path forest for a
// line of amoebots. The closest source of every amoebot is the next source
// in one of the two directions, so PASC runs from every source in both
// directions up to the next source (all 2k executions in parallel), and
// every amoebot compares its two candidate distances bit by bit.
#include <span>

#include "sim/region.hpp"

namespace aspf {

struct LineSpfResult {
  /// parent[u]: -1 sources, neighbor toward the closest source otherwise,
  /// -2 for amoebots not on the chain.
  std::vector<int> parent;
  long rounds = 0;
};

/// chainStops: the line, west to east (region-local ids, consecutive stops
/// adjacent); isSource indexed by *chain position*.
LineSpfResult lineSpf(const Region& region, std::span<const int> chainStops,
                      std::span<const char> isSourceOnChain, int lanes = 4);

}  // namespace aspf

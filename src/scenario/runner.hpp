#pragma once
// Batch executor behind `aspf-run`: runs a list of scenarios through any
// subset of the three algorithms on a thread pool and produces a
// BenchReport.
//
// Determinism: each scenario is materialized from its own seed inside the
// worker that claims it (structure build + S/D placement draw from a
// scenario-private Rng stream; the simulator's counters are thread_local),
// so results are independent of thread count and scheduling. Two runs with
// the same scenarios, algorithms and lanes produce identical rounds,
// parents, counters and checker verdicts -- only wall-time and RSS vary,
// and `timing = false` zeroes those for byte-stable output (the CI
// determinism check relies on this).
//
// Failure containment: an algorithm that throws or fails the checker is
// recorded on its AlgoRun (`error`, `checker_ok = false`) instead of
// aborting the batch.
#include <array>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/scenario.hpp"
#include "scenario/timeline.hpp"
#include "sim/comm.hpp"

namespace aspf::scenario {

enum class Algo {
  Polylog,  // divide & conquer forest, O(log n log^2 k) (Theorem 56)
  Wave,     // beep-wave BFS baseline, eccentricity(S) + O(1)
  Naive,    // SSSP-per-source + merge baseline, O(k log n)
};

inline constexpr std::array<Algo, 3> kAllAlgos{Algo::Polylog, Algo::Wave,
                                               Algo::Naive};

std::string_view toString(Algo algo);
bool algoFromString(std::string_view tag, Algo* out);

struct RunOptions {
  std::vector<Algo> algos{Algo::Polylog, Algo::Wave, Algo::Naive};
  int threads = 0;    // 0 => hardware_concurrency
  int lanes = 4;      // pin lanes for the circuit protocols
  bool check = true;  // run the five-property checker on every result
  bool timing = true; // measure wall-time + peak RSS (false => zeros)
  // Circuit engine for every Comm of the batch. Rebuild is the
  // from-scratch differential-testing path; both engines produce
  // identical deterministic report fields except the engine counters.
  CircuitEngine engine = CircuitEngine::Incremental;
  // Intra-simulator worker threads per Comm (the sharded circuit
  // substrate). Orthogonal to `threads`, which parallelizes across
  // scenarios: sim-threads splits one deliver() across shards. Every
  // deterministic report field is bit-identical at any sim-thread count.
  int simThreads = 1;
  // Cross-query solve cache for the serving tier (spf/solve_cache.hpp):
  // memoizes the polylog pre-prune pipeline across warm queries. Changes
  // no deterministic report field (CI cmp-enforced); only the substrate
  // effort counters and the cache_* stats differ. Ignored outside
  // --serve.
  bool serveCache = true;
};

/// Progress hook, called after each finished scenario (from worker
/// threads, serialized by the runner). May be empty.
using ProgressFn = std::function<void(const ScenarioReport&)>;

/// Executes the batch; `suiteName` only labels the report.
BenchReport runBatch(std::string suiteName,
                     const std::vector<Scenario>& scenarios,
                     const RunOptions& options,
                     const ProgressFn& progress = {});

/// Peak resident set size of this process in kilobytes (VmHWM), or 0 where
/// unsupported. VmHWM is a process-wide high-water mark and NEVER
/// decreases on its own -- without a reset, the second batch of a process
/// inherits the first batch's peak. The batch runners therefore call
/// resetPeakRss() at batch start, making totals.peak_rss_kb batch-scoped
/// wherever the kernel supports the reset (see below).
long peakRssKb();

/// Best-effort reset of the VmHWM high-water mark (writes "5" to
/// /proc/self/clear_refs). Returns true if the kernel accepted the reset;
/// false where unsupported (non-Linux, restricted /proc), in which case
/// peakRssKb() keeps its process-lifetime semantics. The batch runners
/// check the result: on a failed reset they emit peak_rss_kb = 0
/// ("unavailable") rather than mis-attributing the process-wide peak to
/// the batch.
bool resetPeakRss();

/// Progress hook for timeline batches, called after each finished timeline
/// (serialized by the runner). May be empty.
using TimelineProgressFn = std::function<void(const TimelineReport&)>;

/// The dynamic epoch loop. For every timeline: materialize epoch 0, then
/// per epoch (mutate first for epochs >= 1) solve every selected algorithm
/// twice --
///   WARM on persistent substrate Comms that survive the whole timeline
///   (one lanes-1 Comm for the wave, one lanes-L Comm for the polylog
///   preprocessing phase), Comm::rebind()-ed onto each mutated structure
///   so the circuit repair is incremental, and
///   COLD from scratch, the differential oracle --
/// check the warm forest with the five-property checker, and record the
/// per-epoch model fields plus the warm-vs-cold substrate counter deltas
/// (EpochRun). Determinism matches runBatch: every deterministic field is
/// bit-identical across runs, `threads` (timelines are distributed over
/// the pool; each timeline is sequential) and `sim-threads`.
///
/// `maxEpochs` > 0 truncates every timeline to that many epochs (including
/// epoch 0); 0 runs them in full. The returned report carries the records
/// in `timelines` (its `scenarios` section is empty).
BenchReport runTimelineBatch(std::string suiteName,
                             const std::vector<Timeline>& timelines,
                             const RunOptions& options, int maxEpochs = 0,
                             const TimelineProgressFn& progress = {});

}  // namespace aspf::scenario

#include "scenario/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace aspf::scenario {

std::string_view toString(Shape shape) {
  switch (shape) {
    case Shape::Parallelogram: return "parallelogram";
    case Shape::Triangle: return "triangle";
    case Shape::Hexagon: return "hexagon";
    case Shape::Line: return "line";
    case Shape::Comb: return "comb";
    case Shape::Staircase: return "staircase";
    case Shape::RandomBlob: return "blob";
    case Shape::RandomSpider: return "spider";
    case Shape::Zigzag: return "zigzag";
    case Shape::DiamondChain: return "diamondchain";
    case Shape::FuzzBlob: return "fuzzblob";
  }
  return "?";
}

bool shapeFromString(std::string_view tag, Shape* out) {
  for (const Shape s :
       {Shape::Parallelogram, Shape::Triangle, Shape::Hexagon, Shape::Line,
        Shape::Comb, Shape::Staircase, Shape::RandomBlob, Shape::RandomSpider,
        Shape::Zigzag, Shape::DiamondChain, Shape::FuzzBlob}) {
    if (tag == toString(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

namespace {

/// Which shape families consume the second parameter b.
bool usesB(Shape shape) {
  switch (shape) {
    case Shape::Parallelogram:
    case Shape::Comb:
    case Shape::Staircase:
    case Shape::RandomSpider:
    case Shape::Zigzag:
    case Shape::DiamondChain:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string canonicalName(const Scenario& sc) {
  std::string name{toString(sc.shape)};
  name += std::to_string(sc.a);
  if (usesB(sc.shape)) name += "x" + std::to_string(sc.b);
  name += "_k" + std::to_string(sc.k) + "_l" + std::to_string(sc.l) + "_s" +
          std::to_string(sc.seed);
  return name;
}

Scenario make(Shape shape, int a, int b, int k, int l, std::uint64_t seed) {
  Scenario sc;
  sc.shape = shape;
  sc.a = a;
  sc.b = b;
  sc.k = k;
  sc.l = l;
  sc.seed = seed;
  sc.name = canonicalName(sc);
  return sc;
}

AmoebotStructure buildShape(const Scenario& sc) {
  switch (sc.shape) {
    case Shape::Parallelogram:
      return shapes::parallelogram(sc.a, sc.b);
    case Shape::Triangle:
      return shapes::triangle(sc.a);
    case Shape::Hexagon:
      return shapes::hexagon(sc.a);
    case Shape::Line:
      return shapes::line(sc.a);
    case Shape::Comb:
      return shapes::comb(sc.a, sc.b);
    case Shape::Staircase:
      return shapes::staircase(sc.a, sc.b);
    case Shape::RandomBlob:
      return shapes::randomBlob(sc.a, sc.seed);
    case Shape::RandomSpider:
      return shapes::randomSpider(sc.a, sc.b, sc.seed);
    case Shape::Zigzag:
      return shapes::zigzag(sc.a, sc.b);
    case Shape::DiamondChain:
      return shapes::diamondChain(sc.a, sc.b);
    case Shape::FuzzBlob:
      return shapes::fuzzBlob(sc.a, sc.seed);
  }
  throw std::invalid_argument("buildShape: unknown shape family");
}

ScenarioInstance placeSourcesAndDests(const Region& region,
                                      const Scenario& sc) {
  // Frozen seed derivation (golden-splitmix mix + offset): the conformance
  // matrix instances recorded since PR 1 depend on it bit-for-bit.
  Rng rng(sc.seed * 0x9E3779B97F4A7C15ULL + 0xA5A5A5A5ULL);
  ScenarioInstance inst;
  const int n = region.size();
  const int k = std::min(sc.k, n);
  const int l = std::min(sc.l, n);
  inst.isSource.assign(n, 0);
  inst.isDest.assign(n, 0);
  while (static_cast<int>(inst.sources.size()) < k) {
    const int u = static_cast<int>(rng.below(n));
    if (!inst.isSource[u]) {
      inst.isSource[u] = 1;
      inst.sources.push_back(u);
    }
  }
  while (static_cast<int>(inst.destinations.size()) < l) {
    const int u = static_cast<int>(rng.below(n));
    if (!inst.isDest[u]) {
      inst.isDest[u] = 1;
      inst.destinations.push_back(u);
    }
  }
  return inst;
}

BuiltScenario::BuiltScenario(const Scenario& sc)
    : scenario_(sc),
      structure_(std::make_unique<AmoebotStructure>(buildShape(sc))),
      region_(std::make_unique<Region>(Region::whole(*structure_))),
      instance_(placeSourcesAndDests(*region_, sc)) {}

}  // namespace aspf::scenario

#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "sim/sim_counters.hpp"
#include "spf/forest.hpp"

namespace aspf::scenario {

std::string_view toString(Algo algo) {
  switch (algo) {
    case Algo::Polylog: return "polylog";
    case Algo::Wave: return "wave";
    case Algo::Naive: return "naive";
  }
  return "?";
}

bool algoFromString(std::string_view tag, Algo* out) {
  for (const Algo a : kAllAlgos) {
    if (tag == toString(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

long peakRssKb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

namespace {

AlgoRun runOne(const BuiltScenario& built, Algo algo,
               const RunOptions& options) {
  AlgoRun run;
  run.algo = std::string(toString(algo));
  const Region& region = built.region();
  const ScenarioInstance& inst = built.instance();

  const SimCounters before = simCounters();
  const auto start = std::chrono::steady_clock::now();
  std::vector<int> parent;
  try {
    switch (algo) {
      case Algo::Polylog: {
        const ForestResult r =
            shortestPathForest(region, inst.isSource, inst.isDest,
                               options.lanes);
        run.rounds = r.rounds;
        run.hasPhases = true;
        run.phases = {r.phases.preprocessing, r.phases.split, r.phases.base,
                      r.phases.decomposition, r.phases.merging,
                      r.phases.prune};
        parent = r.parent;
        break;
      }
      case Algo::Wave: {
        const BfsWaveResult r =
            bfsWaveForest(region, inst.sources, inst.destinations);
        run.rounds = r.rounds;
        parent = r.parent;
        break;
      }
      case Algo::Naive: {
        const NaiveForestResult r = naiveSequentialForest(
            region, inst.isSource, inst.isDest, options.lanes);
        run.rounds = r.rounds;
        parent = r.parent;
        break;
      }
    }
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  const auto stop = std::chrono::steady_clock::now();
  const SimCounters delta = simCounters() - before;
  run.delivers = delta.delivers;
  run.beeps = delta.beeps;
  run.unions = delta.unions;
  run.incrRounds = delta.incrementalRounds;
  run.rebuildRounds = delta.rebuildRounds;
  run.dirtyFrac = delta.amoebotRounds > 0
                      ? static_cast<double>(delta.dirtyAmoebots) /
                            static_cast<double>(delta.amoebotRounds)
                      : 0.0;
  if (options.timing) {
    run.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }

  if (run.error.empty()) {
    if (options.check) {
      const ForestCheck check = checkShortestPathForest(
          region, parent, inst.sources, inst.destinations);
      run.checkerOk = check.ok;
      if (!check.ok) run.error = check.error;
    } else {
      run.checkerOk = true;  // unchecked runs are reported as trusted
    }
  }
  return run;
}

}  // namespace

BenchReport runBatch(std::string suiteName,
                     const std::vector<Scenario>& scenarios,
                     const RunOptions& options, const ProgressFn& progress) {
  BenchReport report;
  report.suite = std::move(suiteName);
  for (const Algo a : options.algos)
    report.algos.emplace_back(toString(a));
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads =
      std::min(threads, std::max(1, static_cast<int>(scenarios.size())));
  report.threads = threads;
  report.simThreads = std::clamp(options.simThreads, 1, kMaxSimThreads);
  report.lanes = options.lanes;
  report.check = options.check;
  report.timing = options.timing;
  report.engine = options.engine == CircuitEngine::Rebuild ? "rebuild"
                                                           : "incremental";
  report.scenarios.resize(scenarios.size());

  const auto batchStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::mutex progressMutex;
  auto worker = [&] {
    setDefaultCircuitEngine(options.engine);       // thread_local
    setDefaultSimThreads(report.simThreads);       // thread_local
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      const BuiltScenario built(scenarios[i]);
      ScenarioReport& sr = report.scenarios[i];
      sr.scenario = scenarios[i];
      sr.n = built.n();
      sr.kEff = static_cast<int>(built.instance().sources.size());
      sr.lEff = static_cast<int>(built.instance().destinations.size());
      for (const Algo a : options.algos)
        sr.runs.push_back(runOne(built, a, options));
      if (progress) {
        const std::lock_guard<std::mutex> lock(progressMutex);
        progress(sr);
      }
    }
  };

  if (threads == 1) {
    const CircuitEngine savedEngine = defaultCircuitEngine();
    const int savedSimThreads = defaultSimThreads();
    worker();
    setDefaultCircuitEngine(savedEngine);  // don't leak into the caller
    setDefaultSimThreads(savedSimThreads);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.timing) {
    const auto batchStop = std::chrono::steady_clock::now();
    report.totalWallMs =
        std::chrono::duration<double, std::milli>(batchStop - batchStart)
            .count();
    report.peakRssKb = peakRssKb();
  }
  return report;
}

}  // namespace aspf::scenario

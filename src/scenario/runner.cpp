#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "scenario/serve.hpp"
#include "sim/sim_counters.hpp"
#include "sim/simd_kernels.hpp"
#include "spf/forest.hpp"

namespace aspf::scenario {

std::string_view toString(Algo algo) {
  switch (algo) {
    case Algo::Polylog: return "polylog";
    case Algo::Wave: return "wave";
    case Algo::Naive: return "naive";
  }
  return "?";
}

bool algoFromString(std::string_view tag, Algo* out) {
  for (const Algo a : kAllAlgos) {
    if (tag == toString(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

long peakRssKb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f)) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

bool resetPeakRss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (!f) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

namespace {

AlgoRun runOne(const BuiltScenario& built, Algo algo,
               const RunOptions& options) {
  AlgoRun run;
  run.algo = std::string(toString(algo));
  const Region& region = built.region();
  const ScenarioInstance& inst = built.instance();

  const SimCounters before = simCounters();
  const auto start = std::chrono::steady_clock::now();
  std::vector<int> parent;
  try {
    switch (algo) {
      case Algo::Polylog: {
        const ForestResult r =
            shortestPathForest(region, inst.isSource, inst.isDest,
                               options.lanes);
        run.rounds = r.rounds;
        run.hasPhases = true;
        run.phases = {r.phases.preprocessing, r.phases.split, r.phases.base,
                      r.phases.decomposition, r.phases.merging,
                      r.phases.prune};
        parent = r.parent;
        break;
      }
      case Algo::Wave: {
        const BfsWaveResult r =
            bfsWaveForest(region, inst.sources, inst.destinations);
        run.rounds = r.rounds;
        parent = r.parent;
        break;
      }
      case Algo::Naive: {
        const NaiveForestResult r = naiveSequentialForest(
            region, inst.isSource, inst.isDest, options.lanes);
        run.rounds = r.rounds;
        parent = r.parent;
        break;
      }
    }
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  const auto stop = std::chrono::steady_clock::now();
  const SimCounters delta = simCounters() - before;
  run.delivers = delta.delivers;
  run.beeps = delta.beeps;
  run.unions = delta.unions;
  run.incrRounds = delta.incrementalRounds;
  run.rebuildRounds = delta.rebuildRounds;
  run.dirtyFrac = delta.amoebotRounds > 0
                      ? static_cast<double>(delta.dirtyAmoebots) /
                            static_cast<double>(delta.amoebotRounds)
                      : 0.0;
  run.blockCompares = delta.blockCompares;
  run.bitsetWordsScanned = delta.bitsetWordsScanned;
  if (options.timing) {
    run.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }

  if (run.error.empty()) {
    if (options.check) {
      const ForestCheck check = checkShortestPathForest(
          region, parent, inst.sources, inst.destinations);
      run.checkerOk = check.ok;
      if (!check.ok) run.error = check.error;
    } else {
      run.checkerOk = true;  // unchecked runs are reported as trusted
    }
  }
  return run;
}

}  // namespace

BenchReport runBatch(std::string suiteName,
                     const std::vector<Scenario>& scenarios,
                     const RunOptions& options, const ProgressFn& progress) {
  BenchReport report;
  report.suite = std::move(suiteName);
  for (const Algo a : options.algos)
    report.algos.emplace_back(toString(a));
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads =
      std::min(threads, std::max(1, static_cast<int>(scenarios.size())));
  report.threads = threads;
  report.simThreads = std::clamp(options.simThreads, 1, kMaxSimThreads);
  report.lanes = options.lanes;
  report.check = options.check;
  report.timing = options.timing;
  report.engine = options.engine == CircuitEngine::Rebuild ? "rebuild"
                                                           : "incremental";
  report.simdIsa = simd::isaName(simd::activeIsa());
  report.scenarios.resize(scenarios.size());

  // A failed VmHWM reset (non-Linux, restricted /proc) would leave
  // peak_rss_kb a process-wide monotone value mis-attributed to this
  // batch; report 0 ("unavailable") instead.
  const bool rssScoped = options.timing && resetPeakRss();
  const auto batchStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::mutex progressMutex;
  auto worker = [&] {
    setDefaultCircuitEngine(options.engine);       // thread_local
    setDefaultSimThreads(report.simThreads);       // thread_local
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      const BuiltScenario built(scenarios[i]);
      ScenarioReport& sr = report.scenarios[i];
      sr.scenario = scenarios[i];
      sr.n = built.n();
      sr.kEff = static_cast<int>(built.instance().sources.size());
      sr.lEff = static_cast<int>(built.instance().destinations.size());
      for (const Algo a : options.algos)
        sr.runs.push_back(runOne(built, a, options));
      if (progress) {
        const std::lock_guard<std::mutex> lock(progressMutex);
        progress(sr);
      }
    }
  };

  if (threads == 1) {
    const CircuitEngine savedEngine = defaultCircuitEngine();
    const int savedSimThreads = defaultSimThreads();
    worker();
    setDefaultCircuitEngine(savedEngine);  // don't leak into the caller
    setDefaultSimThreads(savedSimThreads);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.timing) {
    const auto batchStop = std::chrono::steady_clock::now();
    report.totalWallMs =
        std::chrono::duration<double, std::milli>(batchStop - batchStart)
            .count();
    report.peakRssKb = rssScoped ? peakRssKb() : 0;
  }
  return report;
}

namespace {

EpochRun runEpochAlgo(const TimelineState& state, Algo algo,
                      const RunOptions& options, Comm* substrate) {
  EpochRun run;
  run.algo = std::string(toString(algo));

  const auto solveEpoch = [&](Comm* comm) {
    return solveInstance(state.region(), state.sources(),
                         state.destinations(), state.isSource(),
                         state.isDest(), algo, options, comm);
  };
  const auto start = std::chrono::steady_clock::now();
  const InstanceSolve warm = solveEpoch(substrate);
  const auto stop = std::chrono::steady_clock::now();
  // Without a substrate the "warm" solve already IS a cold from-scratch
  // solve; repeating the identical deterministic computation would buy
  // nothing (run-to-run determinism is covered by the CI two-run byte
  // compare), and the naive baseline dominates the suite's wall time.
  const InstanceSolve cold = substrate ? solveEpoch(nullptr) : warm;

  run.rounds = warm.rounds;
  run.delivers = warm.delta.delivers;
  run.beeps = warm.delta.beeps;
  run.warmUnions = warm.delta.unions;
  run.coldUnions = cold.delta.unions;
  run.warmIncrRounds = warm.delta.incrementalRounds;
  run.warmRebuildRounds = warm.delta.rebuildRounds;
  run.coldIncrRounds = cold.delta.incrementalRounds;
  run.coldRebuildRounds = cold.delta.rebuildRounds;
  if (options.timing) {
    run.wallMs =
        std::chrono::duration<double, std::milli>(stop - start).count();
  }
  if (!warm.error.empty()) {
    run.error = "warm: " + warm.error;
  } else if (!cold.error.empty()) {
    run.error = "cold: " + cold.error;
  }
  // The differential oracle: the warm solve must reproduce the cold solve
  // bit-for-bit at the model level (forest, rounds, delivers, beeps) --
  // only the substrate counters may differ, that being the point.
  run.warmMatchesCold =
      run.error.empty() && warm.parent == cold.parent &&
      warm.rounds == cold.rounds &&
      warm.delta.delivers == cold.delta.delivers &&
      warm.delta.beeps == cold.delta.beeps;

  if (run.error.empty()) {
    if (options.check) {
      const ForestCheck check =
          checkShortestPathForest(state.region(), warm.parent,
                                  state.sources(), state.destinations());
      run.checkerOk = check.ok;
      if (!check.ok) run.error = check.error;
    } else {
      run.checkerOk = true;  // unchecked runs are reported as trusted
    }
  }
  return run;
}

TimelineReport runTimeline(const Timeline& timeline,
                           const RunOptions& options, int simThreads,
                           int maxEpochs) {
  TimelineReport tr;
  tr.name = timeline.name;
  tr.base = timeline.base;
  tr.seed = timeline.seed;

  TimelineState state(timeline);
  const bool wantWave =
      std::find(options.algos.begin(), options.algos.end(), Algo::Wave) !=
      options.algos.end();
  const bool wantPolylog =
      std::find(options.algos.begin(), options.algos.end(), Algo::Polylog) !=
      options.algos.end();

  // The persistent warm substrates -- the state this whole subsystem
  // exists to exercise. Same construction parameters as the cold solves'
  // own Comms, so warm and cold counters are directly comparable.
  std::optional<Comm> waveComm;
  std::optional<Comm> forestComm;
  if (wantWave)
    waveComm.emplace(state.region(), 1, options.engine, simThreads);
  if (wantPolylog)
    forestComm.emplace(state.region(), options.lanes, options.engine,
                       simThreads);

  int epochCount = timeline.epochs();
  if (maxEpochs > 0) epochCount = std::min(epochCount, maxEpochs);
  for (int e = 0; e < epochCount; ++e) {
    EpochReport er;
    er.epoch = e;
    if (e > 0) {
      const EpochDelta delta = state.advance();
      er.mutation = std::string(toString(delta.kind));
      er.applied = delta.applied;
      if (waveComm) waveComm->rebind(state.region(), delta.oldLocalOfNew);
      if (forestComm) forestComm->rebind(state.region(), delta.oldLocalOfNew);
    }
    er.n = state.n();
    er.kEff = static_cast<int>(state.sources().size());
    er.lEff = static_cast<int>(state.destinations().size());
    for (const Algo a : options.algos) {
      Comm* substrate = nullptr;
      if (a == Algo::Wave && waveComm) substrate = &*waveComm;
      if (a == Algo::Polylog && forestComm) substrate = &*forestComm;
      er.runs.push_back(runEpochAlgo(state, a, options, substrate));
    }
    tr.epochs.push_back(std::move(er));
  }
  return tr;
}

}  // namespace

BenchReport runTimelineBatch(std::string suiteName,
                             const std::vector<Timeline>& timelines,
                             const RunOptions& options, int maxEpochs,
                             const TimelineProgressFn& progress) {
  BenchReport report;
  report.suite = std::move(suiteName);
  for (const Algo a : options.algos)
    report.algos.emplace_back(toString(a));
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads =
      std::min(threads, std::max(1, static_cast<int>(timelines.size())));
  report.threads = threads;
  report.simThreads = std::clamp(options.simThreads, 1, kMaxSimThreads);
  report.lanes = options.lanes;
  report.check = options.check;
  report.timing = options.timing;
  report.engine = options.engine == CircuitEngine::Rebuild ? "rebuild"
                                                           : "incremental";
  report.simdIsa = simd::isaName(simd::activeIsa());
  report.timelines.resize(timelines.size());

  const bool rssScoped = options.timing && resetPeakRss();  // see runBatch
  const auto batchStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::mutex progressMutex;
  auto worker = [&] {
    setDefaultCircuitEngine(options.engine);  // thread_local: the cold
    setDefaultSimThreads(report.simThreads);  // solves' internal Comms
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= timelines.size()) return;
      report.timelines[i] =
          runTimeline(timelines[i], options, report.simThreads, maxEpochs);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progressMutex);
        progress(report.timelines[i]);
      }
    }
  };

  if (threads == 1) {
    const CircuitEngine savedEngine = defaultCircuitEngine();
    const int savedSimThreads = defaultSimThreads();
    worker();
    setDefaultCircuitEngine(savedEngine);  // don't leak into the caller
    setDefaultSimThreads(savedSimThreads);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.timing) {
    const auto batchStop = std::chrono::steady_clock::now();
    report.totalWallMs =
        std::chrono::duration<double, std::milli>(batchStop - batchStart)
            .count();
    report.peakRssKb = rssScoped ? peakRssKb() : 0;
  }
  return report;
}

}  // namespace aspf::scenario

#include "scenario/timeline.hpp"

#include <stdexcept>

#include "shapes/generators.hpp"

namespace aspf::scenario {

std::string_view toString(MutationKind kind) {
  switch (kind) {
    case MutationKind::AttachPatch: return "attach";
    case MutationKind::DetachPatch: return "detach";
    case MutationKind::AddDest: return "add-dest";
    case MutationKind::RemoveDest: return "remove-dest";
    case MutationKind::RelocateDest: return "relocate-dest";
    case MutationKind::ToggleSource: return "toggle-source";
  }
  return "?";
}

bool mutationKindFromString(std::string_view tag, MutationKind* out) {
  for (const MutationKind k : kAllMutationKinds) {
    if (tag == toString(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

const Coord& nth(const std::set<Coord>& set, std::size_t index) {
  auto it = set.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(index));
  return *it;
}

}  // namespace

std::optional<Coord> attachCellStep(std::set<Coord>& occupied, Rng& rng) {
  const auto isOccupied = [&occupied](Coord c) {
    return occupied.contains(c);
  };
  std::set<Coord> boundary;
  for (const Coord c : occupied) {
    for (const Dir d : kAllDirs) {
      const Coord nb = c.neighbor(d);
      if (!occupied.contains(nb)) boundary.insert(nb);
    }
  }
  std::vector<Coord> valid;
  for (const Coord c : boundary) {
    if (shapes::neighborArcs(c, isOccupied) == 1) valid.push_back(c);
  }
  if (valid.empty()) return std::nullopt;
  const Coord picked = valid[rng.below(valid.size())];
  occupied.insert(picked);
  return picked;
}

std::optional<Coord> detachCellStep(std::set<Coord>& occupied,
                                    const std::set<Coord>& protectedA,
                                    const std::set<Coord>& protectedB,
                                    Rng& rng) {
  if (static_cast<int>(occupied.size()) <= kMinDynamicN) return std::nullopt;
  const auto isOccupied = [&occupied](Coord c) {
    return occupied.contains(c);
  };
  std::vector<Coord> valid;
  for (const Coord c : occupied) {
    if (protectedA.contains(c) || protectedB.contains(c)) continue;
    if (shapes::neighborArcs(c, isOccupied) == 1) valid.push_back(c);
  }
  if (valid.empty()) return std::nullopt;
  const Coord picked = valid[rng.below(valid.size())];
  occupied.erase(picked);
  return picked;
}

MaterializedEpoch materializeEpoch(const std::set<Coord>& occupied,
                                   const std::set<Coord>& sourceCoords,
                                   const std::set<Coord>& destCoords) {
  MaterializedEpoch out;
  out.structure = std::make_unique<AmoebotStructure>(
      AmoebotStructure::fromCoords(
          std::vector<Coord>(occupied.begin(), occupied.end())));
  out.region = std::make_unique<Region>(Region::whole(*out.structure));
  const int n = out.region->size();
  out.isSource.assign(n, 0);
  out.isDest.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    const Coord c = out.structure->coordOf(i);
    if (sourceCoords.contains(c)) {
      out.isSource[i] = 1;
      out.sources.push_back(i);
    }
    if (destCoords.contains(c)) {
      out.isDest[i] = 1;
      out.dests.push_back(i);
    }
  }
  return out;
}

TimelineState::TimelineState(const Timeline& timeline)
    : timeline_(&timeline),
      // Own stream, decorrelated from the base scenario's placement
      // stream; the derivation is frozen (epoch sequences are replayed
      // by timeline name alone).
      rng_(timeline.seed * 0x9E3779B97F4A7C15ULL + 0xD6E8FEB86659FD93ULL) {
  const BuiltScenario built(timeline.base);
  const AmoebotStructure& st = built.structure();
  for (int i = 0; i < built.n(); ++i) occupied_.insert(st.coordOf(i));
  for (const int s : built.instance().sources)
    sourceCoords_.insert(st.coordOf(s));
  for (const int t : built.instance().destinations)
    destCoords_.insert(st.coordOf(t));
  materialize();
}

void TimelineState::materialize() {
  MaterializedEpoch epoch =
      materializeEpoch(occupied_, sourceCoords_, destCoords_);
  structure_ = std::move(epoch.structure);
  region_ = std::move(epoch.region);
  sources_ = std::move(epoch.sources);
  dests_ = std::move(epoch.dests);
  isSource_ = std::move(epoch.isSource);
  isDest_ = std::move(epoch.isDest);
}

EpochDelta TimelineState::advance() {
  if (done())
    throw std::logic_error("TimelineState::advance: past the last epoch");
  const Mutation& mutation = timeline_->mutations[epoch_];
  EpochDelta delta;
  delta.epoch = ++epoch_;
  delta.kind = mutation.kind;

  // Primitive steps. Candidate pools are enumerated in sorted coordinate
  // order and indexed with the timeline Rng, so the whole epoch sequence
  // is a pure function of (timeline, seed). A step with an empty pool is
  // skipped (not counted in `applied`). The structure steps are the shared
  // single-arc primitives (also driven by the serving layer).
  const auto attachOne = [&]() -> bool {
    if (!attachCellStep(occupied_, rng_)) return false;
    ++delta.attached;
    return true;
  };

  const auto detachOne = [&]() -> bool {
    if (!detachCellStep(occupied_, sourceCoords_, destCoords_, rng_))
      return false;
    ++delta.detached;
    return true;
  };

  const auto addDestOne = [&]() -> bool {
    std::vector<Coord> pool;
    for (const Coord c : occupied_) {
      if (!destCoords_.contains(c)) pool.push_back(c);
    }
    if (pool.empty()) return false;
    destCoords_.insert(pool[rng_.below(pool.size())]);
    return true;
  };

  const auto removeDestOne = [&](bool keepOne) -> bool {
    if (destCoords_.size() <= (keepOne ? 1u : 0u)) return false;
    destCoords_.erase(nth(destCoords_, rng_.below(destCoords_.size())));
    return true;
  };

  const auto toggleSourceOne = [&]() -> bool {
    const bool remove = (rng_.next() & 1) != 0 && sourceCoords_.size() > 1;
    if (remove) {
      sourceCoords_.erase(nth(sourceCoords_, rng_.below(sourceCoords_.size())));
      return true;
    }
    std::vector<Coord> pool;
    for (const Coord c : occupied_) {
      if (!sourceCoords_.contains(c)) pool.push_back(c);
    }
    if (pool.empty()) return false;
    sourceCoords_.insert(pool[rng_.below(pool.size())]);
    return true;
  };

  for (int step = 0; step < mutation.count; ++step) {
    bool applied = false;
    switch (mutation.kind) {
      case MutationKind::AttachPatch: applied = attachOne(); break;
      case MutationKind::DetachPatch: applied = detachOne(); break;
      case MutationKind::AddDest: applied = addDestOne(); break;
      case MutationKind::RemoveDest:
        applied = removeDestOne(/*keepOne=*/true);
        break;
      case MutationKind::RelocateDest:
        applied = removeDestOne(/*keepOne=*/false) && addDestOne();
        break;
      case MutationKind::ToggleSource: applied = toggleSourceOne(); break;
    }
    if (applied) ++delta.applied;
  }

  // Re-materialize; the outgoing structure/region stay alive until the
  // next advance() so Comm::rebind can consult old adjacency.
  prevStructure_ = std::move(structure_);
  prevRegion_ = std::move(region_);
  materialize();

  delta.oldLocalOfNew.resize(static_cast<std::size_t>(n()));
  for (int i = 0; i < n(); ++i)
    delta.oldLocalOfNew[i] = prevStructure_->idOf(structure_->coordOf(i));

  // Safety net: the mutation rules preserve these by construction.
  if (sources_.empty() || dests_.empty() || !structure_->isConnected() ||
      !structure_->isHoleFree()) {
    throw std::logic_error("TimelineState::advance: epoch " +
                           std::to_string(epoch_) + " of " + timeline_->name +
                           " broke a structure invariant");
  }
  return delta;
}

}  // namespace aspf::scenario

#pragma once
// Named scenario registry: the suites every harness component selects
// workloads from. A suite is an ordered, deterministic list of scenarios;
// the registry is built once (no runtime randomness -- random *shapes* draw
// only from their scenario seed), so suite contents are stable across
// processes, platforms and PRs. Adding a scenario to a suite is a reviewed
// change to the perf trajectory, not an accident.
//
//   conformance  the 64-scenario cross-algorithm matrix from PR 1
//                (tests/conformance aliases this; names are frozen)
//   smoke        one small instance per shape family; finishes in seconds
//                with all three algorithms -- the CI sweep and the
//                committed BENCH_smoke.json baseline
//   large        large-n instances (n ~ 1.2k..4.2k) across the families,
//                polylog-focused perf tracking; BENCH_large.json is the
//                committed trajectory point and the CI perf-sanity anchor
//   huge         production-scale instances (n >= 100k per shape family);
//                only tractable with the incremental circuit engine
//
// Thread-safety: the registry is immutable after first use; concurrent
// lookups are safe (C++11 magic statics).
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"

namespace aspf::scenario {

struct Suite {
  std::string name;
  std::string description;
  std::vector<Scenario> scenarios;
};

/// All registered suites, in registry order.
const std::vector<Suite>& suites();

/// Suite by name, or nullptr.
const Suite* findSuite(std::string_view name);

/// Scenario by its stable name, searched across all suites; or nullptr.
const Scenario* findScenario(std::string_view name);

/// The PR-1 conformance matrix: {8 shape families x 4 (k,l) x 2 seeds}.
/// Scenario names (e.g. `comb10x8_k5_l12_s2`) are frozen; tests replay
/// instances by name.
std::vector<Scenario> conformanceMatrix();

/// A CLI-selectable sweep: the cross product of (k, l, seed) over one
/// shape. Scenario names follow the canonical scheme.
struct SweepSpec {
  Shape shape = Shape::Hexagon;
  int a = 0;
  int b = 0;
  std::vector<int> ks{1};
  std::vector<int> ls{1};
  std::vector<std::uint64_t> seeds{1};
};

std::vector<Scenario> buildSweep(const SweepSpec& spec);

}  // namespace aspf::scenario

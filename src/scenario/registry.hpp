#pragma once
// Named scenario registry: the suites every harness component selects
// workloads from. A suite is an ordered, deterministic list of scenarios;
// the registry is built once (no runtime randomness -- random *shapes* draw
// only from their scenario seed), so suite contents are stable across
// processes, platforms and PRs. Adding a scenario to a suite is a reviewed
// change to the perf trajectory, not an accident.
//
//   conformance  the 64-scenario cross-algorithm matrix from PR 1
//                (tests/conformance aliases this; names are frozen)
//   smoke        one small instance per shape family; finishes in seconds
//                with all three algorithms -- the CI sweep and the
//                committed BENCH_smoke.json baseline
//   large        large-n instances (n ~ 1.2k..4.2k) across the families,
//                polylog-focused perf tracking; BENCH_large.json is the
//                committed trajectory point and the CI perf-sanity anchor
//   huge         production-scale instances (n >= 100k per shape family);
//                only tractable with the incremental circuit engine
//   fuzz         the property-based tier: 32 seeded fuzzBlob instances
//                (pure accretion growth, no hand-designed family bias)
//                that the FuzzConformance suite replays
//
// The registry also holds the *dynamic* timelines (timeline.hpp): one
// mutation script per shape family, 8-12 epochs each, run by the
// epoch-loop runner and `aspf-run --timeline`.
//
// Registration rejects duplicate names with std::invalid_argument at
// build time (registerSuite): a colliding scenario name would make
// `--scenario`/gtest replay ambiguous, which previously only a test
// caught after the fact.
//
// Thread-safety: the registry is immutable after first use; concurrent
// lookups are safe (C++11 magic statics).
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/timeline.hpp"

namespace aspf::scenario {

struct Suite {
  std::string name;
  std::string description;
  std::vector<Scenario> scenarios;
};

/// All registered suites, in registry order.
const std::vector<Suite>& suites();

/// Suite by name, or nullptr.
const Suite* findSuite(std::string_view name);

/// Scenario by its stable name, searched across all suites; or nullptr.
const Scenario* findScenario(std::string_view name);

/// Appends `suite` to `all` after validating it against everything already
/// registered. Throws std::invalid_argument on a duplicate suite name, a
/// duplicate scenario name within the suite, or a scenario name that an
/// earlier suite already binds to a DIFFERENT scenario (the same scenario
/// may appear in several suites -- smoke deliberately reuses instances).
/// The registry builder routes every suite through here, so a name
/// collision fails fast at first registry use instead of silently
/// last-writer-winning in the by-name lookups.
void registerSuite(std::vector<Suite>& all, Suite suite);

/// The dynamic-timeline registry (`aspf-run --timeline`): one timeline
/// per shape family, 8-12 epochs each, every epoch checker-validated by
/// the dynamic tier. Names are stable (`dyn_<base scenario name>`) and
/// unique (same std::invalid_argument guard as the scenario suites).
const std::vector<Timeline>& timelines();

/// Timeline by its stable name, or nullptr.
const Timeline* findTimeline(std::string_view name);

/// The PR-1 conformance matrix: {8 shape families x 4 (k,l) x 2 seeds}.
/// Scenario names (e.g. `comb10x8_k5_l12_s2`) are frozen; tests replay
/// instances by name.
std::vector<Scenario> conformanceMatrix();

/// A CLI-selectable sweep: the cross product of (k, l, seed) over one
/// shape. Scenario names follow the canonical scheme.
struct SweepSpec {
  Shape shape = Shape::Hexagon;
  int a = 0;
  int b = 0;
  std::vector<int> ks{1};
  std::vector<int> ls{1};
  std::vector<std::uint64_t> seeds{1};
};

std::vector<Scenario> buildSweep(const SweepSpec& spec);

}  // namespace aspf::scenario

#pragma once
// Dynamic scenario timelines: the vocabulary for SPF workloads over
// *mutating* amoebot structures. A Timeline pins a base Scenario (epoch 0)
// plus an ordered script of seeded structure/instance mutations; epoch e
// (1-based) applies mutations[e-1] and re-solves. Everything derives from
// the timeline's own seed -- like Scenario, a timeline name replays the
// exact same epoch sequence on every platform, at any thread or sim-thread
// count, with either circuit engine.
//
// Mutation semantics (all deterministic given the state + the timeline
// Rng stream):
//   AttachPatch   grow the boundary by `count` cells, each a uniformly
//                 random empty cell whose occupied neighbors form a single
//                 arc (shapes::neighborArcs) -- connectivity and
//                 hole-freeness are preserved after EVERY cell, which is
//                 what lets the warm circuit substrate repair rather than
//                 rebuild.
//   DetachPatch   shrink the boundary by `count` cells, each a uniformly
//                 random occupied non-source/non-destination cell whose
//                 occupied neighbors form a single arc (same invariant,
//                 from the occupied side). Never shrinks below 8 amoebots.
//   AddDest       mark `count` uniformly random non-destination cells.
//   RemoveDest    unmark `count` uniformly random destinations, always
//                 keeping at least one.
//   RelocateDest  RemoveDest + AddDest, `count` times (|D| preserved).
//   ToggleSource  `count` times: one Rng bit decides add-vs-remove; adds a
//                 uniformly random non-source cell, or removes a uniformly
//                 random source -- always keeping at least one source.
// A mutation step whose candidate pool is empty is skipped (recorded in
// the EpochDelta counts), so timelines never fail on degenerate states.
//
// TimelineState is the materialized, epoch-stepped instance. Structure ids
// are canonical (coordinates in sorted order), so every epoch is a
// plain BuiltScenario-style (structure, region, S/D) snapshot; advance()
// additionally reports the old-local-of-new id mapping that
// Comm::rebind() needs for the warm substrate, and keeps the previous
// epoch's structure alive until the NEXT advance() so rebinding can
// consult old adjacency.
//
// Thread-safety: value semantics, no global state; distinct TimelineStates
// may live on distinct threads (the dynamic runner walks one timeline per
// worker).
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace aspf::scenario {

/// DetachPatch / detachCellStep never shrink a structure below this many
/// amoebots: tiny regions degenerate (every cell becomes a cut or an S/D
/// member) and the solver edge cases below it are covered by unit tests.
inline constexpr int kMinDynamicN = 8;

// --- Shared mutation primitives ------------------------------------------
//
// The single-arc structure-mutation steps and the coordinate-set
// materializer are the vocabulary BOTH dynamic layers speak: TimelineState
// applies them from its seeded epoch script, and the serving layer's
// QuerySession (serve.hpp) applies them from its own query stream between
// query groups. Candidate pools are enumerated in sorted coordinate order
// and indexed with the caller's Rng, so either caller's sequence is a pure
// function of its seed.

/// Grows the boundary by one cell: a uniformly random empty neighbor cell
/// whose occupied neighbors form a single arc (shapes::neighborArcs), so
/// connectivity and hole-freeness are preserved. Returns the attached
/// coordinate, or nullopt when no candidate exists.
std::optional<Coord> attachCellStep(std::set<Coord>& occupied, Rng& rng);

/// Shrinks the boundary by one cell: a uniformly random occupied cell, not
/// in either protected set (sources/destinations), whose occupied
/// neighbors form a single arc. Never shrinks below kMinDynamicN. Returns
/// the detached coordinate, or nullopt when no candidate exists.
std::optional<Coord> detachCellStep(std::set<Coord>& occupied,
                                    const std::set<Coord>& protectedA,
                                    const std::set<Coord>& protectedB,
                                    Rng& rng);

/// A materialized (structure, whole-structure region, S/D instance)
/// snapshot of coordinate-keyed mutation state. Local ids are canonical
/// (sorted coordinate order), matching BuiltScenario's derivation.
struct MaterializedEpoch {
  std::unique_ptr<AmoebotStructure> structure;
  std::unique_ptr<Region> region;
  std::vector<int> sources;
  std::vector<int> dests;
  std::vector<char> isSource;
  std::vector<char> isDest;
};

MaterializedEpoch materializeEpoch(const std::set<Coord>& occupied,
                                   const std::set<Coord>& sourceCoords,
                                   const std::set<Coord>& destCoords);

enum class MutationKind {
  AttachPatch,
  DetachPatch,
  AddDest,
  RemoveDest,
  RelocateDest,
  ToggleSource,
};

inline constexpr std::array<MutationKind, 6> kAllMutationKinds{
    MutationKind::AttachPatch,  MutationKind::DetachPatch,
    MutationKind::AddDest,      MutationKind::RemoveDest,
    MutationKind::RelocateDest, MutationKind::ToggleSource,
};

/// Canonical tag (`attach`, `detach`, `add-dest`, `remove-dest`,
/// `relocate-dest`, `toggle-source`) used in reports and test names.
std::string_view toString(MutationKind kind);
bool mutationKindFromString(std::string_view tag, MutationKind* out);

struct Mutation {
  MutationKind kind = MutationKind::AttachPatch;
  int count = 1;  // primitive steps applied by this epoch's mutation

  bool operator==(const Mutation&) const = default;
};

struct Timeline {
  std::string name;  // stable id, e.g. `dyn_comb10x8_k5_l12_s1`
  Scenario base;     // the epoch-0 instance
  std::vector<Mutation> mutations;  // epoch e applies mutations[e - 1]
  std::uint64_t seed = 1;           // drives all mutation randomness

  /// Total epoch count including epoch 0.
  int epochs() const noexcept {
    return static_cast<int>(mutations.size()) + 1;
  }

  bool operator==(const Timeline&) const = default;
};

/// What one advance() did: the mutation kind, how many primitive steps
/// actually applied (pool-empty steps are skipped), and the warm-rebind
/// id mapping.
struct EpochDelta {
  int epoch = 0;  // the epoch just entered (>= 1)
  MutationKind kind = MutationKind::AttachPatch;
  int applied = 0;   // primitive steps that found a candidate
  int attached = 0;  // amoebots added (AttachPatch)
  int detached = 0;  // amoebots removed (DetachPatch)
  /// oldLocalOfNew[i]: previous-epoch local id of the amoebot now at
  /// local id i, or -1 if newly attached (Comm::rebind's mapping).
  std::vector<int> oldLocalOfNew;
};

class TimelineState {
 public:
  explicit TimelineState(const Timeline& timeline);

  const Timeline& timeline() const noexcept { return *timeline_; }
  int epoch() const noexcept { return epoch_; }
  bool done() const noexcept {
    return epoch_ >= static_cast<int>(timeline_->mutations.size());
  }

  const AmoebotStructure& structure() const noexcept { return *structure_; }
  const Region& region() const noexcept { return *region_; }
  int n() const noexcept { return region_->size(); }
  const std::vector<int>& sources() const noexcept { return sources_; }
  const std::vector<int>& destinations() const noexcept { return dests_; }
  const std::vector<char>& isSource() const noexcept { return isSource_; }
  const std::vector<char>& isDest() const noexcept { return isDest_; }

  /// Applies the next mutation and rebuilds the structure/region/instance.
  /// The previous epoch's structure and region stay alive until the next
  /// advance() (or destruction), so callers may Comm::rebind() against
  /// the returned mapping right away. Throws std::logic_error if called
  /// past the last epoch or if a mutation ever breaks the connectivity /
  /// hole-freeness invariants (the mutation rules make that impossible;
  /// the check is the dynamic tier's safety net).
  EpochDelta advance();

 private:
  void materialize();  // coords_/S/D sets -> structure/region/instance

  const Timeline* timeline_;
  Rng rng_;
  int epoch_ = 0;

  // Mutation-side state, keyed by coordinate so it survives re-indexing.
  std::set<Coord> occupied_;
  std::set<Coord> sourceCoords_;
  std::set<Coord> destCoords_;

  // Materialized epoch (current ids follow sorted coordinate order).
  std::unique_ptr<AmoebotStructure> structure_;
  std::unique_ptr<Region> region_;
  std::unique_ptr<AmoebotStructure> prevStructure_;
  std::unique_ptr<Region> prevRegion_;
  std::vector<int> sources_;
  std::vector<int> dests_;
  std::vector<char> isSource_;
  std::vector<char> isDest_;
};

}  // namespace aspf::scenario

#include "scenario/registry.hpp"

namespace aspf::scenario {

std::vector<Scenario> conformanceMatrix() {
  struct ShapeSpec {
    Shape shape;
    int a, b;
  };
  // n is ~100-180 per shape: large enough for nontrivial portal trees and
  // region merging, small enough that the full sweep stays in CI budget.
  const ShapeSpec shapeSpecs[] = {
      {Shape::Parallelogram, 16, 8}, {Shape::Triangle, 14, 0},
      {Shape::Hexagon, 6, 0},        {Shape::Line, 96, 0},
      {Shape::Comb, 10, 8},          {Shape::Staircase, 8, 4},
      {Shape::RandomBlob, 140, 0},   {Shape::RandomSpider, 4, 18},
  };
  struct KlSpec {
    int k, l;
  };
  // From SSSP-ish (k=1) through the many-source regime where the divide &
  // conquer depth (log^2 k factor) is actually exercised.
  const KlSpec klSpecs[] = {{1, 6}, {2, 8}, {5, 12}, {12, 20}};
  const std::uint64_t seeds[] = {1, 2};

  std::vector<Scenario> matrix;
  for (const auto& ss : shapeSpecs) {
    for (const auto& kl : klSpecs) {
      for (const std::uint64_t seed : seeds) {
        matrix.push_back(make(ss.shape, ss.a, ss.b, kl.k, kl.l, seed));
      }
    }
  }
  return matrix;
}

namespace {

std::vector<Scenario> smokeSuite() {
  // One compact instance per shape family (n ~ 60..250), k in the
  // multi-source regime so the divide & conquer path is exercised. Small
  // enough that {polylog, wave, naive} x all scenarios finishes in seconds;
  // this is the sweep CI runs and the BENCH_smoke.json trajectory tracks.
  return {
      make(Shape::Parallelogram, 16, 8, 4, 8, 1),
      make(Shape::Triangle, 14, 0, 2, 6, 1),
      make(Shape::Hexagon, 6, 0, 5, 12, 1),
      make(Shape::Line, 96, 0, 4, 8, 1),
      make(Shape::Comb, 10, 8, 5, 12, 1),
      make(Shape::Staircase, 8, 4, 2, 8, 1),
      make(Shape::RandomBlob, 140, 0, 5, 12, 1),
      make(Shape::RandomSpider, 4, 18, 2, 8, 1),
      make(Shape::Zigzag, 12, 8, 4, 8, 1),
      make(Shape::DiamondChain, 4, 4, 4, 8, 1),
  };
}

std::vector<Scenario> largeSuite() {
  // Large-n perf tracking (n ~ 1.2k..4.2k). The thin families (line,
  // zigzag, spider, comb) stress diameter-bound baselines and deep portal
  // trees; the fat ones (hexagon, blob, parallelogram) stress the circuit
  // substrate itself.
  return {
      make(Shape::Hexagon, 24, 0, 16, 32, 1),         // n = 1801
      make(Shape::Hexagon, 32, 0, 16, 32, 1),         // n = 3169
      make(Shape::Parallelogram, 64, 32, 16, 32, 1),  // n = 2048
      make(Shape::Line, 2048, 0, 8, 16, 1),
      make(Shape::Comb, 16, 32, 8, 16, 1),
      make(Shape::Staircase, 24, 6, 8, 16, 1),
      make(Shape::RandomBlob, 2000, 0, 16, 32, 1),
      make(Shape::RandomSpider, 8, 40, 8, 16, 1),
      make(Shape::Zigzag, 48, 8, 8, 16, 1),
      make(Shape::DiamondChain, 10, 6, 8, 16, 1),
  };
}

std::vector<Scenario> hugeSuite() {
  // Production-scale instances: n >= 100k for every shape family, only
  // reachable with the incremental circuit engine (a from-scratch
  // deliver() would pay Theta(n * lanes) per round). k/l stay moderate so
  // the decomposition depth is exercised without multiplying the sweep
  // cost; the thin families (line, zigzag, comb) have diameters ~1e5, so
  // prefer `--algo polylog,naive` there unless you can spare the
  // eccentricity-bound wave run.
  return {
      make(Shape::Parallelogram, 500, 200, 8, 16, 1),  // n = 100000
      make(Shape::Triangle, 447, 0, 8, 16, 1),         // n = 100128
      make(Shape::Hexagon, 183, 0, 8, 16, 1),          // n = 101017
      make(Shape::Line, 100000, 0, 4, 8, 1),
      make(Shape::Comb, 500, 199, 8, 16, 1),           // n = 100499
      make(Shape::Staircase, 1000, 50, 8, 16, 1),      // n = 100001 (short
                                                       // steps: max corners)
      make(Shape::RandomBlob, 100000, 0, 8, 16, 1),    // n ~ 1.01e5
      make(Shape::RandomSpider, 150, 1000, 8, 16, 1),  // n ~ 1.10e5
      make(Shape::Zigzag, 500, 200, 8, 16, 1),         // n = 100001 (long
                                                       // segments)
      make(Shape::DiamondChain, 34, 31, 8, 16, 1),     // n = 101251
  };
}

std::vector<Suite> buildSuites() {
  std::vector<Suite> all;
  all.push_back({"conformance",
                 "the 64-scenario cross-algorithm matrix (PR 1; names frozen)",
                 conformanceMatrix()});
  all.push_back({"smoke",
                 "one small instance per shape family; the CI sweep",
                 smokeSuite()});
  all.push_back({"large",
                 "large-n perf instances across all shape families",
                 largeSuite()});
  all.push_back({"huge",
                 "production-scale instances (n >= 100k per shape family)",
                 hugeSuite()});
  return all;
}

}  // namespace

const std::vector<Suite>& suites() {
  static const std::vector<Suite> all = buildSuites();
  return all;
}

const Suite* findSuite(std::string_view name) {
  for (const Suite& s : suites()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Scenario* findScenario(std::string_view name) {
  for (const Suite& suite : suites()) {
    for (const Scenario& sc : suite.scenarios) {
      if (sc.name == name) return &sc;
    }
  }
  return nullptr;
}

std::vector<Scenario> buildSweep(const SweepSpec& spec) {
  std::vector<Scenario> out;
  for (const int k : spec.ks) {
    for (const int l : spec.ls) {
      for (const std::uint64_t seed : spec.seeds) {
        out.push_back(make(spec.shape, spec.a, spec.b, k, l, seed));
      }
    }
  }
  return out;
}

}  // namespace aspf::scenario

#include "scenario/registry.hpp"

#include <set>
#include <stdexcept>
#include <string>

namespace aspf::scenario {

std::vector<Scenario> conformanceMatrix() {
  struct ShapeSpec {
    Shape shape;
    int a, b;
  };
  // n is ~100-180 per shape: large enough for nontrivial portal trees and
  // region merging, small enough that the full sweep stays in CI budget.
  const ShapeSpec shapeSpecs[] = {
      {Shape::Parallelogram, 16, 8}, {Shape::Triangle, 14, 0},
      {Shape::Hexagon, 6, 0},        {Shape::Line, 96, 0},
      {Shape::Comb, 10, 8},          {Shape::Staircase, 8, 4},
      {Shape::RandomBlob, 140, 0},   {Shape::RandomSpider, 4, 18},
  };
  struct KlSpec {
    int k, l;
  };
  // From SSSP-ish (k=1) through the many-source regime where the divide &
  // conquer depth (log^2 k factor) is actually exercised.
  const KlSpec klSpecs[] = {{1, 6}, {2, 8}, {5, 12}, {12, 20}};
  const std::uint64_t seeds[] = {1, 2};

  std::vector<Scenario> matrix;
  for (const auto& ss : shapeSpecs) {
    for (const auto& kl : klSpecs) {
      for (const std::uint64_t seed : seeds) {
        matrix.push_back(make(ss.shape, ss.a, ss.b, kl.k, kl.l, seed));
      }
    }
  }
  return matrix;
}

void registerSuite(std::vector<Suite>& all, Suite suite) {
  for (const Suite& existing : all) {
    if (existing.name == suite.name)
      throw std::invalid_argument("registerSuite: duplicate suite name '" +
                                  suite.name + "'");
  }
  std::set<std::string> inSuite;
  for (const Scenario& sc : suite.scenarios) {
    if (!inSuite.insert(sc.name).second)
      throw std::invalid_argument("registerSuite: duplicate scenario name '" +
                                  sc.name + "' within suite '" + suite.name +
                                  "'");
    for (const Suite& existing : all) {
      for (const Scenario& other : existing.scenarios) {
        if (other.name == sc.name && !(other == sc))
          throw std::invalid_argument(
              "registerSuite: scenario name '" + sc.name + "' in suite '" +
              suite.name + "' is already bound to a different scenario by "
              "suite '" + existing.name + "'");
      }
    }
  }
  all.push_back(std::move(suite));
}

namespace {

std::vector<Scenario> smokeSuite() {
  // One compact instance per shape family (n ~ 60..250), k in the
  // multi-source regime so the divide & conquer path is exercised. Small
  // enough that {polylog, wave, naive} x all scenarios finishes in seconds;
  // this is the sweep CI runs and the BENCH_smoke.json trajectory tracks.
  return {
      make(Shape::Parallelogram, 16, 8, 4, 8, 1),
      make(Shape::Triangle, 14, 0, 2, 6, 1),
      make(Shape::Hexagon, 6, 0, 5, 12, 1),
      make(Shape::Line, 96, 0, 4, 8, 1),
      make(Shape::Comb, 10, 8, 5, 12, 1),
      make(Shape::Staircase, 8, 4, 2, 8, 1),
      make(Shape::RandomBlob, 140, 0, 5, 12, 1),
      make(Shape::RandomSpider, 4, 18, 2, 8, 1),
      make(Shape::Zigzag, 12, 8, 4, 8, 1),
      make(Shape::DiamondChain, 4, 4, 4, 8, 1),
  };
}

std::vector<Scenario> largeSuite() {
  // Large-n perf tracking (n ~ 1.2k..4.2k). The thin families (line,
  // zigzag, spider, comb) stress diameter-bound baselines and deep portal
  // trees; the fat ones (hexagon, blob, parallelogram) stress the circuit
  // substrate itself.
  return {
      make(Shape::Hexagon, 24, 0, 16, 32, 1),         // n = 1801
      make(Shape::Hexagon, 32, 0, 16, 32, 1),         // n = 3169
      make(Shape::Parallelogram, 64, 32, 16, 32, 1),  // n = 2048
      make(Shape::Line, 2048, 0, 8, 16, 1),
      make(Shape::Comb, 16, 32, 8, 16, 1),
      make(Shape::Staircase, 24, 6, 8, 16, 1),
      make(Shape::RandomBlob, 2000, 0, 16, 32, 1),
      make(Shape::RandomSpider, 8, 40, 8, 16, 1),
      make(Shape::Zigzag, 48, 8, 8, 16, 1),
      make(Shape::DiamondChain, 10, 6, 8, 16, 1),
  };
}

std::vector<Scenario> hugeSuite() {
  // Production-scale instances: n >= 100k for every shape family, only
  // reachable with the incremental circuit engine (a from-scratch
  // deliver() would pay Theta(n * lanes) per round). k/l stay moderate so
  // the decomposition depth is exercised without multiplying the sweep
  // cost; the thin families (line, zigzag, comb) have diameters ~1e5, so
  // prefer `--algo polylog,naive` there unless you can spare the
  // eccentricity-bound wave run.
  return {
      make(Shape::Parallelogram, 500, 200, 8, 16, 1),  // n = 100000
      make(Shape::Triangle, 447, 0, 8, 16, 1),         // n = 100128
      make(Shape::Hexagon, 183, 0, 8, 16, 1),          // n = 101017
      make(Shape::Line, 100000, 0, 4, 8, 1),
      make(Shape::Comb, 500, 199, 8, 16, 1),           // n = 100499
      make(Shape::Staircase, 1000, 50, 8, 16, 1),      // n = 100001 (short
                                                       // steps: max corners)
      make(Shape::RandomBlob, 100000, 0, 8, 16, 1),    // n ~ 1.01e5
      make(Shape::RandomSpider, 150, 1000, 8, 16, 1),  // n ~ 1.10e5
      make(Shape::Zigzag, 500, 200, 8, 16, 1),         // n = 100001 (long
                                                       // segments)
      make(Shape::DiamondChain, 34, 31, 8, 16, 1),     // n = 101251
  };
}

std::vector<Scenario> fuzzSuite() {
  // The property-based tier: 32 pure-accretion blobs, sizes ~100..320,
  // k/l swept over the instance regimes by deterministic formulas. No
  // hand-designed family bias -- the point is to hit region/portal shapes
  // nobody thought to draw. Replayed by the FuzzConformance tests.
  std::vector<Scenario> out;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const int s = static_cast<int>(seed);
    const int a = 96 + 7 * s;             // 103..320 amoebots, exact
    const int k = 1 + (s * 3) % 11;       // 1..11 sources
    const int l = 2 + (s * 5) % 17;       // 2..18 destinations
    out.push_back(make(Shape::FuzzBlob, a, 0, k, l, seed));
  }
  return out;
}

std::vector<Suite> buildSuites() {
  std::vector<Suite> all;
  registerSuite(all, {"conformance",
                      "the 64-scenario cross-algorithm matrix (PR 1; names "
                      "frozen)",
                      conformanceMatrix()});
  registerSuite(all, {"smoke",
                      "one small instance per shape family; the CI sweep",
                      smokeSuite()});
  registerSuite(all, {"large",
                      "large-n perf instances across all shape families",
                      largeSuite()});
  registerSuite(all, {"huge",
                      "production-scale instances (n >= 100k per shape "
                      "family)",
                      hugeSuite()});
  registerSuite(all, {"fuzz",
                      "32 seeded accretion blobs; the property-based "
                      "conformance tier",
                      fuzzSuite()});
  return all;
}

// Mutation scripts for the dynamic timelines. Three archetypes, assigned
// round-robin over the shape families so each family stresses a different
// mix; every script exercises every mutation kind at least once and has
// 8-11 mutations (9-12 epochs including epoch 0).
std::vector<Mutation> growthScript() {
  using K = MutationKind;
  return {{K::AttachPatch, 5},  {K::AddDest, 2},      {K::AttachPatch, 7},
          {K::ToggleSource, 1}, {K::DetachPatch, 3},  {K::AttachPatch, 6},
          {K::RelocateDest, 1}, {K::RemoveDest, 1},   {K::AttachPatch, 8},
          {K::DetachPatch, 2}};
}

std::vector<Mutation> churnScript() {
  using K = MutationKind;
  return {{K::DetachPatch, 4},  {K::AttachPatch, 4}, {K::ToggleSource, 2},
          {K::DetachPatch, 5},  {K::RelocateDest, 2}, {K::AttachPatch, 5},
          {K::RemoveDest, 2},   {K::AddDest, 3},      {K::DetachPatch, 3},
          {K::AttachPatch, 3},  {K::ToggleSource, 1}};
}

std::vector<Mutation> instanceScript() {
  using K = MutationKind;
  return {{K::AddDest, 4},      {K::ToggleSource, 2}, {K::RelocateDest, 3},
          {K::RemoveDest, 2},   {K::AttachPatch, 4},  {K::ToggleSource, 2},
          {K::DetachPatch, 4},  {K::RelocateDest, 2}};
}

std::vector<Timeline> buildTimelines() {
  // One timeline per shape family over the smoke-sized bases (the epoch
  // loop re-solves every epoch warm AND cold across all algorithms, so
  // the tier must stay CI-sized).
  std::vector<Timeline> all;
  const std::vector<Scenario> bases = smokeSuite();
  for (std::size_t i = 0; i < bases.size(); ++i) {
    Timeline t;
    t.base = bases[i];
    t.name = "dyn_" + bases[i].name;
    t.seed = static_cast<std::uint64_t>(i + 1);
    switch (i % 3) {
      case 0: t.mutations = growthScript(); break;
      case 1: t.mutations = churnScript(); break;
      default: t.mutations = instanceScript(); break;
    }
    for (const Timeline& existing : all) {
      if (existing.name == t.name)
        throw std::invalid_argument(
            "buildTimelines: duplicate timeline name '" + t.name + "'");
    }
    all.push_back(std::move(t));
  }
  return all;
}

}  // namespace

const std::vector<Suite>& suites() {
  static const std::vector<Suite> all = buildSuites();
  return all;
}

const Suite* findSuite(std::string_view name) {
  for (const Suite& s : suites()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Scenario* findScenario(std::string_view name) {
  for (const Suite& suite : suites()) {
    for (const Scenario& sc : suite.scenarios) {
      if (sc.name == name) return &sc;
    }
  }
  return nullptr;
}

const std::vector<Timeline>& timelines() {
  static const std::vector<Timeline> all = buildTimelines();
  return all;
}

const Timeline* findTimeline(std::string_view name) {
  for (const Timeline& t : timelines()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<Scenario> buildSweep(const SweepSpec& spec) {
  std::vector<Scenario> out;
  for (const int k : spec.ks) {
    for (const int l : spec.ls) {
      for (const std::uint64_t seed : spec.seeds) {
        out.push_back(make(spec.shape, spec.a, spec.b, k, l, seed));
      }
    }
  }
  return out;
}

}  // namespace aspf::scenario

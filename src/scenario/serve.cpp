#include "scenario/serve.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "baselines/bfs_wave.hpp"
#include "baselines/checker.hpp"
#include "baselines/naive_forest.hpp"
#include "sim/simd_kernels.hpp"
#include "spf/forest.hpp"

namespace aspf::scenario {

std::string_view toString(QueryKind kind) {
  switch (kind) {
    case QueryKind::DestSwap: return "dest-swap";
    case QueryKind::DestAdd: return "dest-add";
    case QueryKind::DestRemove: return "dest-remove";
    case QueryKind::ToggleSource: return "toggle-source";
  }
  return "?";
}

bool queryKindFromString(std::string_view tag, QueryKind* out) {
  for (const QueryKind k : kAllQueryKinds) {
    if (tag == toString(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

InstanceSolve solveInstance(const Region& region,
                            const std::vector<int>& sources,
                            const std::vector<int>& destinations,
                            const std::vector<char>& isSource,
                            const std::vector<char>& isDest, Algo algo,
                            const RunOptions& options, Comm* substrate) {
  InstanceSolve out;
  const SimCounters before = simCounters();
  try {
    switch (algo) {
      case Algo::Polylog: {
        const ForestResult r = shortestPathForest(
            region, isSource, isDest, options.lanes, Axis::X, substrate);
        out.rounds = r.rounds;
        out.parent = r.parent;
        break;
      }
      case Algo::Wave: {
        const BfsWaveResult r =
            bfsWaveForest(region, sources, destinations, substrate);
        out.rounds = r.rounds;
        out.parent = r.parent;
        break;
      }
      case Algo::Naive: {
        // No persistent whole-region protocol phase to warm: the naive
        // baseline is SSSP-per-source with per-protocol Comms throughout.
        const NaiveForestResult r =
            naiveSequentialForest(region, isSource, isDest, options.lanes);
        out.rounds = r.rounds;
        out.parent = r.parent;
        break;
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.delta = simCounters() - before;
  return out;
}

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (p in (0, 100]).
double nearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::clamp<std::size_t>(rank, 1, sorted.size()) - 1];
}

}  // namespace

QuerySession::QuerySession(const Scenario& scenario, const ServeSpec& spec,
                           const RunOptions& options, int simThreads)
    : spec_(spec),
      options_(options),
      simThreads_(simThreads),
      // Own stream, decorrelated from both the scenario's placement stream
      // and the timeline stream (distinct additive constant).
      rng_(spec.seed * 0x9E3779B97F4A7C15ULL + 0x8CB92BA72F3D8DD7ULL),
      scenario_(scenario) {
  if (spec_.mix.empty())
    spec_.mix.assign(kAllQueryKinds.begin(), kAllQueryKinds.end());
  if (spec_.mutateCells < 1) spec_.mutateCells = 1;

  const BuiltScenario built(scenario);
  const AmoebotStructure& st = built.structure();
  for (int i = 0; i < built.n(); ++i) occupied_.insert(st.coordOf(i));
  for (const int s : built.instance().sources)
    sourceCoords_.insert(st.coordOf(s));
  for (const int t : built.instance().destinations)
    destCoords_.insert(st.coordOf(t));
  materialize();
  initialN_ = region_->size();

  const auto want = [&](Algo a) {
    return std::find(options_.algos.begin(), options_.algos.end(), a) !=
           options_.algos.end();
  };
  if (want(Algo::Wave))
    waveComm_.emplace(*region_, 1, options_.engine, simThreads_);
  if (want(Algo::Polylog))
    forestComm_.emplace(*region_, options_.lanes, options_.engine,
                        simThreads_);
}

void QuerySession::materialize() {
  MaterializedEpoch epoch =
      materializeEpoch(occupied_, sourceCoords_, destCoords_);
  structure_ = std::move(epoch.structure);
  region_ = std::move(epoch.region);
  sources_ = std::move(epoch.sources);
  dests_ = std::move(epoch.dests);
  isSource_ = std::move(epoch.isSource);
  isDest_ = std::move(epoch.isDest);
}

void QuerySession::mutateStructure(ServingReport* sv) {
  for (int c = 0; c < spec_.mutateCells; ++c) {
    const bool detach = (rng_.next() & 1) != 0;
    if (detach) {
      if (detachCellStep(occupied_, sourceCoords_, destCoords_, rng_))
        ++sv->detached;
    } else {
      if (attachCellStep(occupied_, rng_)) ++sv->attached;
    }
  }
  ++sv->structureMutations;

  prevStructure_ = std::move(structure_);
  prevRegion_ = std::move(region_);
  materialize();

  std::vector<int> oldLocalOfNew(static_cast<std::size_t>(region_->size()));
  for (int i = 0; i < region_->size(); ++i)
    oldLocalOfNew[i] = prevStructure_->idOf(structure_->coordOf(i));
  if (waveComm_) waveComm_->rebind(*region_, oldLocalOfNew);
  if (forestComm_) forestComm_->rebind(*region_, oldLocalOfNew);
}

bool QuerySession::addRandomDest() {
  const int n = region_->size();
  const int eligible = n - static_cast<int>(dests_.size());
  if (eligible <= 0) return false;
  int r = static_cast<int>(rng_.below(static_cast<std::size_t>(eligible)));
  int picked = -1;
  for (int i = 0; i < n; ++i) {
    if (isDest_[i]) continue;
    if (r == 0) {
      picked = i;
      break;
    }
    --r;
  }
  isDest_[picked] = 1;
  dests_.insert(std::lower_bound(dests_.begin(), dests_.end(), picked),
                picked);
  destCoords_.insert(structure_->coordOf(picked));
  return true;
}

bool QuerySession::removeDestAt(std::size_t index) {
  const int picked = dests_[index];
  dests_.erase(dests_.begin() + static_cast<std::ptrdiff_t>(index));
  isDest_[picked] = 0;
  destCoords_.erase(structure_->coordOf(picked));
  return true;
}

bool QuerySession::applyQuery(QueryKind kind) {
  const int n = region_->size();
  switch (kind) {
    case QueryKind::DestSwap: {
      if (dests_.empty()) return false;
      removeDestAt(rng_.below(dests_.size()));
      // After the removal at least one non-destination cell exists.
      return addRandomDest();
    }
    case QueryKind::DestAdd:
      return addRandomDest();
    case QueryKind::DestRemove: {
      if (dests_.size() <= 1) return false;
      return removeDestAt(rng_.below(dests_.size()));
    }
    case QueryKind::ToggleSource: {
      // The Rng bit is consumed even when the chosen direction then finds
      // no candidate (same contract as the timeline's toggle-source).
      const bool remove = (rng_.next() & 1) != 0 && sources_.size() > 1;
      if (remove) {
        const std::size_t index = rng_.below(sources_.size());
        const int picked = sources_[index];
        sources_.erase(sources_.begin() +
                       static_cast<std::ptrdiff_t>(index));
        isSource_[picked] = 0;
        sourceCoords_.erase(structure_->coordOf(picked));
        return true;
      }
      const int eligible = n - static_cast<int>(sources_.size());
      if (eligible <= 0) return false;
      int r = static_cast<int>(rng_.below(static_cast<std::size_t>(eligible)));
      int picked = -1;
      for (int i = 0; i < n; ++i) {
        if (isSource_[i]) continue;
        if (r == 0) {
          picked = i;
          break;
        }
        --r;
      }
      isSource_[picked] = 1;
      sources_.insert(
          std::lower_bound(sources_.begin(), sources_.end(), picked), picked);
      sourceCoords_.insert(structure_->coordOf(picked));
      return true;
    }
  }
  return false;
}

ServingReport QuerySession::run() {
  ServingReport sv;
  sv.scenario = scenario_;
  sv.n = initialN_;
  sv.queries = spec_.queries;
  sv.seed = spec_.seed;
  sv.mutateEvery = spec_.mutateEvery;
  for (const QueryKind k : spec_.mix) sv.mix.emplace_back(toString(k));

  const std::size_t algoCount = options_.algos.size();
  sv.runs.resize(algoCount);
  std::vector<std::vector<double>> latencies(algoCount);
  std::vector<double> okWallMs(algoCount, 0.0);
  for (std::size_t ai = 0; ai < algoCount; ++ai) {
    sv.runs[ai].algo = std::string(toString(options_.algos[ai]));
    sv.runs[ai].checkerOk = true;
    sv.runs[ai].warmMatchesCold = true;
  }

  for (int q = 0; q < spec_.queries; ++q) {
    if (spec_.mutateEvery > 0 && q > 0 && q % spec_.mutateEvery == 0)
      mutateStructure(&sv);
    const QueryKind kind = spec_.mix[rng_.below(spec_.mix.size())];
    if (applyQuery(kind)) ++sv.sdApplied;

    for (std::size_t ai = 0; ai < algoCount; ++ai) {
      const Algo algo = options_.algos[ai];
      Comm* substrate = nullptr;
      if (algo == Algo::Wave && waveComm_) substrate = &*waveComm_;
      if (algo == Algo::Polylog && forestComm_) substrate = &*forestComm_;
      // Query boundary: drop any undelivered beeps and invalidate stale
      // received() state; pins and the union-find survive (the warm part).
      if (substrate) substrate->clearPending();

      const bool useCache = options_.serveCache && algo == Algo::Polylog &&
                            substrate != nullptr;
      // The stale-entry plant runs BEFORE this query's warm solve: a hit
      // then replays corrupted state and the oracle below must trip.
      if (useCache && q == spec_.cacheFaultQuery) solveCache_.corruptForTest();

      const auto start = std::chrono::steady_clock::now();
      InstanceSolve warm;
      {
        // Installed for the warm solve only; the cold solve below must
        // never see the cache -- it IS the independent recompute.
        const ScopedSolveCache cacheGuard(useCache ? &solveCache_ : nullptr);
        warm = solveInstance(*region_, sources_, dests_, isSource_, isDest_,
                             algo, options_, substrate);
      }
      const auto stop = std::chrono::steady_clock::now();
      // Without a substrate the "warm" solve already IS a cold solve;
      // repeating the identical deterministic computation buys nothing.
      const InstanceSolve cold =
          substrate ? solveInstance(*region_, sources_, dests_, isSource_,
                                    isDest_, algo, options_, nullptr)
                    : warm;
      if (q == spec_.faultQuery && !warm.parent.empty())
        warm.parent[0] = -3;  // forced oracle divergence (CI exit-2 path)

      ServeRun& run = sv.runs[ai];
      run.rounds += warm.rounds;
      run.delivers += warm.delta.delivers;
      run.beeps += warm.delta.beeps;
      run.warmUnions += warm.delta.unions;
      run.coldUnions += cold.delta.unions;
      run.warmIncrRounds += warm.delta.incrementalRounds;
      run.warmRebuildRounds += warm.delta.rebuildRounds;
      run.coldIncrRounds += cold.delta.incrementalRounds;
      run.coldRebuildRounds += cold.delta.rebuildRounds;

      std::string error;
      if (!warm.error.empty()) {
        error = "warm: " + warm.error;
      } else if (!cold.error.empty()) {
        error = "cold: " + cold.error;
      }
      // The differential oracle: warm must reproduce cold bit-for-bit at
      // the model level; only the substrate counters may differ.
      const bool matches = error.empty() && warm.parent == cold.parent &&
                           warm.rounds == cold.rounds &&
                           warm.delta.delivers == cold.delta.delivers &&
                           warm.delta.beeps == cold.delta.beeps;
      if (!matches) run.warmMatchesCold = false;

      bool checkOk = true;
      if (error.empty() && options_.check) {
        const ForestCheck check = checkShortestPathForest(*region_,
                                                          warm.parent,
                                                          sources_, dests_);
        if (!check.ok) {
          checkOk = false;
          error = check.error;
        }
      }
      if (!checkOk || !error.empty()) run.checkerOk = false;
      if (!error.empty() && run.error.empty())
        run.error = "query " + std::to_string(q) + ": " + error;
      const bool success = matches && checkOk && error.empty();
      if (success) ++run.queriesOk;

      if (options_.timing) {
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        run.wallMs += ms;  // whole stream, failures included
        // Failed / diverged / checker-rejected queries contribute no
        // latency sample and never inflate the throughput numerator or
        // denominator: percentiles and q/s describe successful queries.
        if (success) {
          okWallMs[ai] += ms;
          latencies[ai].push_back(ms);
        }
      }
    }
  }

  sv.finalN = region_->size();
  for (std::size_t ai = 0; ai < algoCount; ++ai) {
    ServeRun& run = sv.runs[ai];
    if (options_.algos[ai] == Algo::Polylog && forestComm_ &&
        options_.serveCache) {
      const SolveCacheStats& stats = solveCache_.stats();
      run.cacheEnabled = true;
      run.cacheHits = stats.hits;
      run.cacheMisses = stats.misses;
      run.cacheInvalidations = stats.invalidations;
      run.cacheSavedUnions = stats.savedUnions;
    }
    if (!options_.timing) continue;
    if (run.queriesOk > 0 && okWallMs[ai] > 0.0)
      run.queriesPerSec =
          static_cast<double>(run.queriesOk) / (okWallMs[ai] / 1000.0);
    std::sort(latencies[ai].begin(), latencies[ai].end());
    run.latencyMsP50 = nearestRank(latencies[ai], 50.0);
    run.latencyMsP90 = nearestRank(latencies[ai], 90.0);
    run.latencyMsP99 = nearestRank(latencies[ai], 99.0);
  }
  return sv;
}

ServingReport runServeSession(const Scenario& scenario, const ServeSpec& spec,
                              const RunOptions& options, int simThreads) {
  return QuerySession(scenario, spec, options, simThreads).run();
}

BenchReport runServeBatch(std::string suiteName,
                          const std::vector<Scenario>& scenarios,
                          const ServeSpec& spec, const RunOptions& options,
                          const ServeProgressFn& progress) {
  BenchReport report;
  report.suite = std::move(suiteName);
  for (const Algo a : options.algos)
    report.algos.emplace_back(toString(a));
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads =
      std::min(threads, std::max(1, static_cast<int>(scenarios.size())));
  report.threads = threads;
  report.simThreads = std::clamp(options.simThreads, 1, kMaxSimThreads);
  report.lanes = options.lanes;
  report.check = options.check;
  report.timing = options.timing;
  report.engine = options.engine == CircuitEngine::Rebuild ? "rebuild"
                                                           : "incremental";
  report.simdIsa = simd::isaName(simd::activeIsa());
  report.serveCache = options.serveCache;
  report.serving.resize(scenarios.size());

  // peak_rss_kb is batch-scoped VmHWM. When the reset is unavailable
  // (non-Linux, unwritable /proc/self/clear_refs) the counter would
  // silently mis-attribute the monotone process-wide peak to this batch,
  // so the field is forced to 0 ("unavailable") instead.
  const bool rssScoped = options.timing && resetPeakRss();
  const auto batchStart = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::mutex progressMutex;
  auto worker = [&] {
    setDefaultCircuitEngine(options.engine);  // thread_local: the cold
    setDefaultSimThreads(report.simThreads);  // solves' internal Comms
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      report.serving[i] =
          runServeSession(scenarios[i], spec, options, report.simThreads);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progressMutex);
        progress(report.serving[i]);
      }
    }
  };

  if (threads == 1) {
    const CircuitEngine savedEngine = defaultCircuitEngine();
    const int savedSimThreads = defaultSimThreads();
    worker();
    setDefaultCircuitEngine(savedEngine);  // don't leak into the caller
    setDefaultSimThreads(savedSimThreads);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.timing) {
    const auto batchStop = std::chrono::steady_clock::now();
    report.totalWallMs =
        std::chrono::duration<double, std::milli>(batchStop - batchStart)
            .count();
    report.peakRssKb = rssScoped ? peakRssKb() : 0;
  }
  return report;
}

}  // namespace aspf::scenario

#pragma once
// Query-serving mode: ONE persistent structure, MANY SPF queries.
//
// The static runner (runBatch) prices each instance from scratch; the
// dynamic runner (runTimelineBatch) re-solves after structure mutations.
// This layer models the third lifetime split: a structure that stays put
// (or mutates rarely) while the *query* -- which cells are sources, which
// are destinations -- changes per request. A QuerySession owns one
// materialized structure plus persistent warm substrate Comms (the same
// lanes-1 wave Comm / lanes-L polylog Comm the dynamic tier keeps), and
// resolves a seeded stream of queries against them:
//
//   per query   one S/D primitive drawn uniformly from the session's mix
//               (dest-swap, dest-add, dest-remove, toggle-source), applied
//               as a local-id update -- the structure, region and Comms
//               are untouched, which is the whole point;
//   per group   optionally (mutateEvery > 0), every mutateEvery-th query
//               first applies `mutateCells` single-arc structure steps
//               (the shared attachCellStep/detachCellStep primitives from
//               timeline.hpp), re-materializes, and Comm::rebind()s the
//               warm substrates over the mutation.
//
// Every query is resolved twice: WARM on the persistent substrate and
// COLD from scratch, the differential oracle -- the warm solve must
// reproduce the cold solve bit-for-bit (forest, rounds, delivers, beeps).
// The union counters tell the serving story: the wave protocol pins are
// singleton-only, so after the first query the warm substrate's circuits
// never change and warm unions stay ~0 per query while every cold solve
// pays the full ~n rebuild.
//
// Determinism matches the other runners: the query stream is a pure
// function of (scenario, ServeSpec), solves consume no session
// randomness, and every deterministic ServingReport field is
// bit-identical across runs, --threads, --sim-threads and platforms.
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/timeline.hpp"
#include "sim/comm.hpp"
#include "sim/sim_counters.hpp"
#include "spf/solve_cache.hpp"
#include "util/rng.hpp"

namespace aspf::scenario {

enum class QueryKind {
  DestSwap,      // remove one destination, add one non-destination
  DestAdd,       // mark one non-destination (skip if every cell is one)
  DestRemove,    // unmark one destination, always keeping at least one
  ToggleSource,  // one Rng bit: add a non-source / remove a source (|S|>1)
};

inline constexpr std::array<QueryKind, 4> kAllQueryKinds{
    QueryKind::DestSwap,
    QueryKind::DestAdd,
    QueryKind::DestRemove,
    QueryKind::ToggleSource,
};

/// Canonical tag (`dest-swap`, `dest-add`, `dest-remove`, `toggle-source`)
/// used in reports, --serve-mix and test names.
std::string_view toString(QueryKind kind);
bool queryKindFromString(std::string_view tag, QueryKind* out);

/// The seeded query stream a QuerySession resolves. A query whose
/// primitive finds no candidate (e.g. dest-add with every cell already a
/// destination) is skipped and not counted in ServingReport::sdApplied.
struct ServeSpec {
  int queries = 0;          // stream length; must be >= 1
  std::uint64_t seed = 1;   // drives kind picks, S/D picks and mutations
  /// Query kinds drawn uniformly per query; empty => all four.
  std::vector<QueryKind> mix{kAllQueryKinds.begin(), kAllQueryKinds.end()};
  int mutateEvery = 0;   // every Nth query mutates the structure; 0 = never
  int mutateCells = 4;   // single-arc primitive steps per mutation
  /// >= 0: corrupt the warm forest of that query after solving, forcing
  /// the differential oracle to report a divergence (the CI exit-2 path).
  int faultQuery = -1;
  /// >= 0: corrupt every live solve-cache entry right before that query's
  /// warm solve (SolveCache::corruptForTest), so a cache hit replays stale
  /// state and the oracle must diverge -- the cache's own exit-2 self-test.
  /// Only effective with the cache on and a prior query sharing the source
  /// set (pair with a dest-only mix to guarantee the hit).
  int cacheFaultQuery = -1;

  bool operator==(const ServeSpec&) const = default;
};

/// One solve of one (region, S/D) instance; `substrate` selects the warm
/// path (nullptr = cold from-scratch oracle). Shared by the dynamic epoch
/// runner and the query-serving loop.
struct InstanceSolve {
  std::vector<int> parent;
  long rounds = 0;
  SimCounters delta;
  std::string error;
};

InstanceSolve solveInstance(const Region& region,
                            const std::vector<int>& sources,
                            const std::vector<int>& destinations,
                            const std::vector<char>& isSource,
                            const std::vector<char>& isDest, Algo algo,
                            const RunOptions& options, Comm* substrate);

/// One structure, one query stream, persistent warm substrates. Construct,
/// then call run() exactly once (it consumes the stream). The session must
/// run on a thread whose default circuit engine / sim-thread count match
/// the options (runServeBatch's workers arrange this, like the other batch
/// runners).
class QuerySession {
 public:
  QuerySession(const Scenario& scenario, const ServeSpec& spec,
               const RunOptions& options, int simThreads);

  const Region& region() const noexcept { return *region_; }
  int n() const noexcept { return region_->size(); }

  /// Resolves the whole stream and returns the aggregated record: per-algo
  /// totals (rounds, delivers, beeps, warm/cold substrate counters), the
  /// all-queries warm-vs-cold verdict, and -- when timing is on -- the
  /// throughput and nearest-rank warm-latency percentiles.
  ServingReport run();

 private:
  void materialize();           // coord sets -> structure/region/instance
  void mutateStructure(ServingReport* sv);
  bool applyQuery(QueryKind kind);
  bool addRandomDest();
  bool removeDestAt(std::size_t index);

  ServeSpec spec_;
  RunOptions options_;
  int simThreads_;
  Rng rng_;
  Scenario scenario_;
  int initialN_ = 0;

  // Mutation-side state, keyed by coordinate (shared vocabulary with
  // TimelineState); the S/D sets shadow the local-id instance below so a
  // structure mutation can re-materialize without losing the query state.
  std::set<Coord> occupied_;
  std::set<Coord> sourceCoords_;
  std::set<Coord> destCoords_;

  // Materialized structure (canonical sorted-coordinate ids). The previous
  // structure stays alive across a mutation so rebinding can consult old
  // adjacency; sources_/dests_ are kept in ascending id order.
  std::unique_ptr<AmoebotStructure> structure_;
  std::unique_ptr<Region> region_;
  std::unique_ptr<AmoebotStructure> prevStructure_;
  std::unique_ptr<Region> prevRegion_;
  std::vector<int> sources_;
  std::vector<int> dests_;
  std::vector<char> isSource_;
  std::vector<char> isDest_;

  // The persistent warm substrates (same construction parameters as the
  // cold solves' own Comms, so warm and cold counters are comparable).
  std::optional<Comm> waveComm_;
  std::optional<Comm> forestComm_;

  // Cross-query memoization for the polylog warm path (RunOptions::
  // serveCache): installed via ScopedSolveCache around warm solves only,
  // never around the cold oracle. Structure mutations invalidate it
  // through the substrate's structure epoch.
  SolveCache solveCache_;
};

/// Convenience wrapper: one session, one record.
ServingReport runServeSession(const Scenario& scenario, const ServeSpec& spec,
                              const RunOptions& options, int simThreads);

/// Progress hook for serve batches, called after each finished session
/// (serialized by the runner). May be empty.
using ServeProgressFn = std::function<void(const ServingReport&)>;

/// Runs one QuerySession per scenario on a thread pool (sessions are
/// distributed over workers; each session is sequential) and returns the
/// records in BenchReport::serving (`scenarios` stays empty). Determinism
/// matches runBatch / runTimelineBatch.
BenchReport runServeBatch(std::string suiteName,
                          const std::vector<Scenario>& scenarios,
                          const ServeSpec& spec, const RunOptions& options,
                          const ServeProgressFn& progress = {});

}  // namespace aspf::scenario

#pragma once
// Minimal self-contained JSON value (null/bool/number/string/array/object)
// with an insertion-ordered object representation, a pretty-printer and a
// strict recursive-descent parser. Exists so the report pipeline has a
// dependency-free round-trip (emit -> parse -> validate) without pulling a
// third-party JSON library into the build.
//
// Numbers are stored as double; every quantity in the report schema
// (rounds, counters, milliseconds) fits a double exactly (< 2^53).
// Thread-safety: Json is a plain value type; distinct values can be used
// from distinct threads freely.
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aspf::scenario {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(double v) noexcept : type_(Type::Number), num_(v) {}
  Json(int v) noexcept : Json(static_cast<double>(v)) {}
  Json(long v) noexcept : Json(static_cast<double>(v)) {}
  Json(long long v) noexcept : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) noexcept : Json(static_cast<double>(v)) {}
  Json(std::string s) noexcept : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(const char* s) : type_(Type::String), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool isNull() const noexcept { return type_ == Type::Null; }
  bool isBool() const noexcept { return type_ == Type::Bool; }
  bool isNumber() const noexcept { return type_ == Type::Number; }
  bool isString() const noexcept { return type_ == Type::String; }
  bool isArray() const noexcept { return type_ == Type::Array; }
  bool isObject() const noexcept { return type_ == Type::Object; }

  bool asBool() const noexcept { return bool_; }
  double asNumber() const noexcept { return num_; }
  long long asInt() const noexcept { return static_cast<long long>(num_); }
  const std::string& asString() const noexcept { return str_; }

  // --- Array interface.
  void push(Json v) { arr_.push_back(std::move(v)); }
  std::size_t size() const noexcept {
    return type_ == Type::Object ? obj_.size() : arr_.size();
  }
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const noexcept { return arr_; }

  // --- Object interface (insertion-ordered; lookup is linear, which is
  // fine at report-schema sizes).
  Json& operator[](std::string_view key);
  /// Pointer to the member, or nullptr if absent.
  const Json* find(std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return obj_;
  }

  bool operator==(const Json& other) const;

  /// Serializes; indent = 0 emits a single line, indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Strict parser; throws std::runtime_error with offset info on any
  /// syntax error or trailing garbage.
  static Json parse(std::string_view text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace aspf::scenario

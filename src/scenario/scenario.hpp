#pragma once
// Scenario vocabulary shared by tests, benches and the `aspf-run` CLI.
//
// A Scenario pins one (shape, k, l, seed) SPF instance completely: the
// structure is rebuilt from the named generator and sources/destinations
// are placed with the seeded library Rng (xoshiro256**), so every run on
// every platform sees bit-identical instances. Scenario names are stable
// ids (`<shape-tag>_k<k>_l<l>_s<seed>`) and double as gtest param names
// and CLI selectors; any failure anywhere in the harness is replayable
// from the name alone.
//
// Thread-safety: everything here is pure value construction from the
// scenario's own seed -- no global state -- so scenarios can be built and
// instantiated concurrently from any number of threads.
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "shapes/generators.hpp"
#include "sim/region.hpp"

namespace aspf::scenario {

enum class Shape {
  Parallelogram,  // a x b
  Triangle,       // side a
  Hexagon,        // radius a
  Line,           // a amoebots
  Comb,           // a teeth of length b (adversarial portals)
  Staircase,      // a steps of size b (portal-heavy)
  RandomBlob,     // ~a amoebots, grown with the scenario seed
  RandomSpider,   // a arms of length b, thin high-diameter instance
  Zigzag,         // a segments of length b, thin huge-diameter snake
  DiamondChain,   // a hexagons of radius b joined by 1-wide bridges
  FuzzBlob,       // exactly a amoebots, pure single-arc accretion growth
};

/// Canonical lower-case tag used in scenario names and on the CLI
/// (`parallelogram`, `triangle`, ..., `zigzag`, `diamondchain`).
std::string_view toString(Shape shape);

/// Inverse of toString; returns false if the tag names no shape family.
bool shapeFromString(std::string_view tag, Shape* out);

struct Scenario {
  std::string name;        // stable id; doubles as the gtest param name
  Shape shape = Shape::Line;
  int a = 0;               // first shape parameter (see Shape)
  int b = 0;               // second shape parameter (unused for some shapes)
  int k = 1;               // requested |S| (clamped to n)
  int l = 1;               // requested |D| (clamped to n)
  std::uint64_t seed = 0;  // drives random shapes and S/D placement

  bool operator==(const Scenario&) const = default;
};

/// Builds a Scenario with the canonical auto-generated name
/// `<tag><a>[x<b>]_k<k>_l<l>_s<seed>` (e.g. `comb10x8_k5_l12_s2`).
Scenario make(Shape shape, int a, int b, int k, int l, std::uint64_t seed);

/// The canonical name `make` would assign; exposed so hand-built suites
/// (e.g. the conformance matrix with its historical tags) can stay in sync.
std::string canonicalName(const Scenario& sc);

/// Rebuilds the amoebot structure of a scenario (deterministic; random
/// shapes consume only the scenario seed).
AmoebotStructure buildShape(const Scenario& sc);

struct ScenarioInstance {
  std::vector<int> sources;
  std::vector<int> destinations;
  std::vector<char> isSource;
  std::vector<char> isDest;
};

/// Seeded placement: k distinct sources, l distinct destinations (the two
/// sets may overlap, which the SPF definition permits). Counts are clamped
/// to the region size so small shapes stay valid instances. The derivation
/// from the scenario seed is frozen -- changing it would silently re-deal
/// every recorded instance.
ScenarioInstance placeSourcesAndDests(const Region& region,
                                      const Scenario& sc);

/// A fully materialized scenario: structure, whole-structure region and
/// S/D placement, with stable addresses (safe to move around; the Region
/// points into the heap-allocated structure).
class BuiltScenario {
 public:
  explicit BuiltScenario(const Scenario& sc);

  const Scenario& scenario() const noexcept { return scenario_; }
  const AmoebotStructure& structure() const noexcept { return *structure_; }
  const Region& region() const noexcept { return *region_; }
  const ScenarioInstance& instance() const noexcept { return instance_; }
  int n() const noexcept { return region_->size(); }

 private:
  Scenario scenario_;
  std::unique_ptr<AmoebotStructure> structure_;
  std::unique_ptr<Region> region_;
  ScenarioInstance instance_;
};

}  // namespace aspf::scenario

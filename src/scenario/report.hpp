#pragma once
// The machine-readable perf report emitted by the runner and `aspf-run`.
//
// Schema (version 1; documented with examples in docs/BENCHMARKS.md):
//
//   {
//     "schema_version": 1,
//     "tool": "aspf-run",
//     "suite": "<suite name or 'custom'>",
//     "config": {"algos": [...], "threads": N, "sim_threads": N,
//                "lanes": N, "check": bool, "timing": bool,
//                "engine": "incremental|rebuild"},
//     "scenarios": [
//       {"name": ..., "shape": ..., "a": ..., "b": ..., "k": ..., "l": ...,
//        "seed": ..., "n": ..., "k_eff": ..., "l_eff": ...,
//        "runs": [
//          {"algo": "polylog|wave|naive", "rounds": R, "wall_ms": T,
//           "checker_ok": bool, "error": "",
//           "delivers": ..., "beeps": ..., "unions": ...,
//           "incr_rounds": ..., "rebuild_rounds": ..., "dirty_frac": ...,
//           "phases": {"preprocessing": ..., "split": ..., "base": ...,
//                      "decomposition": ..., "merging": ..., "prune": ...}}
//        ]}
//     ],
//     "totals": {"scenarios": ..., "runs": ..., "wall_ms": ...,
//                "peak_rss_kb": ...}
//   }
//
// "rounds" is the model cost (synchronous circuit rounds); "delivers" and
// "beeps" are simulator substrate counters (physical deliver() executions
// and queued beeps); "wall_ms" is host wall-clock. The incremental-engine
// counters describe substrate work: "unions" (union-find unions while
// (re)building circuits), "incr_rounds"/"rebuild_rounds" (delivers served
// by the incremental path vs. full rebuilds; they sum to "delivers"), and
// "dirty_frac" (truly-reconfigured amoebots per amoebot-round -- the
// locality the incremental engine exploits). `phases` appears only on runs
// that report a per-phase breakdown (the polylog forest). The engine
// counters and "config.engine" are optional on input (reports from PR <= 2
// predate them; they default to 0 / "incremental") and always emitted;
// "config.sim_threads" (the sharded substrate's worker count, PR 4) is
// optional the same way and defaults to 1. Like "config.threads" it is an
// execution-resource stamp, not a model field: every deterministic field
// is bit-identical at any sim-thread count, so equalDeterministic ignores
// it and the CI byte-identity check compares reports modulo that one
// config line. All
// numeric fields fit a double exactly. Reports round-trip: toJson -> dump
// -> Json::parse -> reportFromJson reproduces the struct bit-for-bit
// except for nothing -- wall-times are preserved verbatim.
#include <array>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "scenario/scenario.hpp"

namespace aspf::scenario {

inline constexpr int kReportSchemaVersion = 1;

inline constexpr std::array<const char*, 6> kPhaseNames{
    "preprocessing", "split", "base", "decomposition", "merging", "prune"};

struct AlgoRun {
  std::string algo;        // "polylog" | "wave" | "naive"
  long rounds = 0;         // synchronous circuit rounds (model cost)
  double wallMs = 0.0;     // host wall-clock, 0 when timing is disabled
  bool checkerOk = false;  // checker verdict (trusted-by-fiat when the
                           // report's config.check is false)
  std::string error;       // non-empty iff the run threw or failed checking
  long delivers = 0;       // simulator deliver() executions
  long beeps = 0;          // beeps queued on partition sets
  long unions = 0;         // union-find unions while (re)building circuits
  long incrRounds = 0;     // delivers served by the incremental path
  long rebuildRounds = 0;  // delivers that rebuilt circuits from scratch
  double dirtyFrac = 0.0;  // truly-reconfigured amoebots per amoebot-round
  bool hasPhases = false;  // true => `phases` is meaningful
  std::array<long, 6> phases{};  // indexed like kPhaseNames

  bool operator==(const AlgoRun&) const = default;
};

struct ScenarioReport {
  Scenario scenario;
  int n = 0;     // actual structure size
  int kEff = 0;  // |S| after clamping to n
  int lEff = 0;  // |D| after clamping to n
  std::vector<AlgoRun> runs;

  bool operator==(const ScenarioReport&) const = default;
};

struct BenchReport {
  int schemaVersion = kReportSchemaVersion;
  std::string suite;
  std::vector<std::string> algos;
  int threads = 1;
  int simThreads = 1;  // sharded-substrate workers per Comm (PR 4)
  int lanes = 4;
  bool check = true;   // false => checker was skipped; checker_ok fields
                       // report trust, not a verified verdict
  bool timing = true;
  std::string engine = "incremental";  // circuit engine the runs used
  std::vector<ScenarioReport> scenarios;
  double totalWallMs = 0.0;
  long peakRssKb = 0;

  bool operator==(const BenchReport&) const = default;
};

Json toJson(const BenchReport& report);

/// Structural schema check: returns true iff the document is a valid
/// version-1 report. On failure `error` (if non-null) names the offending
/// path. Used by `aspf-run --check` and the CI smoke job.
bool validateReport(const Json& doc, std::string* error);

/// Parses a validated document back into the struct form; throws
/// std::runtime_error with the validation message if the document does not
/// conform to the schema.
BenchReport reportFromJson(const Json& doc);

/// Compares the *deterministic* fields of two reports: suite, algos,
/// lanes, check, engine, and per scenario/run everything except wall-times,
/// RSS, the thread count and the timing flag. Returns true iff they match;
/// on mismatch `why` (if non-null) names the first differing path. Used by
/// `aspf-run --diff` and the CI perf-sanity step to catch round-count or
/// counter regressions against a committed BENCH_*.json.
///
/// With `modelOnly` the engine-specific fields (config.engine and the
/// per-run `unions` / `incr_rounds` / `rebuild_rounds` counters) are
/// excluded as well, leaving exactly the fields both circuit engines must
/// agree on -- `aspf-run --diff-model` and the CI engine-equivalence step
/// compare an incremental run against a rebuild-engine run this way.
/// (`dirty_frac` stays compared: dirty tracking is engine-independent.)
bool equalDeterministic(const BenchReport& a, const BenchReport& b,
                        std::string* why, bool modelOnly = false);

}  // namespace aspf::scenario

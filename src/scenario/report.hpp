#pragma once
// The machine-readable perf report emitted by the runner and `aspf-run`.
//
// Schema (version 1; documented with examples in docs/BENCHMARKS.md):
//
//   {
//     "schema_version": 1,
//     "tool": "aspf-run",
//     "suite": "<suite name or 'custom'>",
//     "config": {"algos": [...], "threads": N, "sim_threads": N,
//                "lanes": N, "check": bool, "timing": bool,
//                "engine": "incremental|rebuild", "simd": "<isa>",
//                "serve_cache": bool},
//     "scenarios": [
//       {"name": ..., "shape": ..., "a": ..., "b": ..., "k": ..., "l": ...,
//        "seed": ..., "n": ..., "k_eff": ..., "l_eff": ...,
//        "runs": [
//          {"algo": "polylog|wave|naive", "rounds": R, "wall_ms": T,
//           "checker_ok": bool, "error": "",
//           "delivers": ..., "beeps": ..., "unions": ...,
//           "incr_rounds": ..., "rebuild_rounds": ..., "dirty_frac": ...,
//           "block_compares": ..., "bitset_words_scanned": ...,
//           "phases": {"preprocessing": ..., "split": ..., "base": ...,
//                      "decomposition": ..., "merging": ..., "prune": ...}}
//        ]}
//     ],
//     "timelines": [            // optional: dynamic-timeline batches only
//       {"name": ..., "base": {"name", "shape", "a", "b", "k", "l",
//                              "seed"},
//        "timeline_seed": ...,
//        "epochs": [
//          {"epoch": E, "mutation": "none|attach|detach|add-dest|...",
//           "applied": ..., "n": ..., "k_eff": ..., "l_eff": ...,
//           "runs": [
//             {"algo": ..., "rounds": R, "wall_ms": T, "checker_ok": bool,
//              "error": "", "delivers": ..., "beeps": ...,
//              "warm_unions": ..., "cold_unions": ...,
//              "warm_incr_rounds": ..., "warm_rebuild_rounds": ...,
//              "cold_incr_rounds": ..., "cold_rebuild_rounds": ...,
//              "warm_matches_cold": bool}
//           ]}
//        ]}
//     ],
//     "serving": [             // optional: query-serving batches only
//       {"scenario": {"name", "shape", "a", "b", "k", "l", "seed"},
//        "n": ..., "final_n": ..., "queries": Q, "serve_seed": ...,
//        "mutate_every": ..., "mix": ["dest-swap", ...],
//        "sd_applied": ..., "structure_mutations": ...,
//        "attached": ..., "detached": ...,
//        "runs": [
//          {"algo": ..., "rounds": R, "wall_ms": T, "checker_ok": bool,
//           "error": "", "delivers": ..., "beeps": ...,
//           "warm_unions": ..., "cold_unions": ...,
//           "warm_incr_rounds": ..., "warm_rebuild_rounds": ...,
//           "cold_incr_rounds": ..., "cold_rebuild_rounds": ...,
//           "cache_hits": ..., "cache_misses": ...,          // optional
//           "cache_invalidations": ..., "cache_saved_unions": ...,
//           "queries_ok": ..., "warm_matches_cold": bool,
//           "queries_per_sec": ..., "latency_ms_p50": ...,
//           "latency_ms_p90": ..., "latency_ms_p99": ...}
//        ]}
//     ],
//     "totals": {"scenarios": ..., "runs": ..., "wall_ms": ...,
//                "peak_rss_kb": ...}
//   }
//
// "rounds" is the model cost (synchronous circuit rounds); "delivers" and
// "beeps" are simulator substrate counters (physical deliver() executions
// and queued beeps); "wall_ms" is host wall-clock.
// "totals.peak_rss_kb" is the BATCH-level peak resident set size: the
// process VmHWM high-water mark, reset (best-effort, via
// /proc/self/clear_refs) when the batch starts, so it measures this batch
// rather than inheriting the hungriest earlier batch of the process.
// Where the reset is unsupported the field is 0 ("unavailable") -- a
// process-lifetime peak would be mis-attributed to the batch (documented
// in docs/BENCHMARKS.md). There are deliberately NO
// per-scenario/per-run RSS fields: VmHWM is process-wide, so any
// finer-grained attribution would be monotone garbage across a batch. The incremental-engine
// counters describe substrate work: "unions" (union-find unions while
// (re)building circuits), "incr_rounds"/"rebuild_rounds" (delivers served
// by the incremental path vs. full rebuilds; they sum to "delivers"), and
// "dirty_frac" (truly-reconfigured amoebots per amoebot-round -- the
// locality the incremental engine exploits). `phases` appears only on runs
// that report a per-phase breakdown (the polylog forest). The engine
// counters and "config.engine" are optional on input (reports from PR <= 2
// predate them; they default to 0 / "incremental") and always emitted;
// "config.sim_threads" (the sharded substrate's worker count, PR 4) is
// optional the same way and defaults to 1. Like "config.threads" it is an
// execution-resource stamp, not a model field: every deterministic field
// is bit-identical at any sim-thread count, so equalDeterministic ignores
// it and the CI byte-identity check compares reports modulo that one
// config line. "config.simd" (the kernel ISA the dispatch table resolved:
// "scalar", "sse2" or "avx2") is the same kind of stamp -- optional on
// input (reports from PR <= 6 predate it, defaulting to ""), ignored by
// equalDeterministic, stripped by the CI byte-identity cmp. The per-run
// "block_compares" / "bitset_words_scanned" SIMD-plane counters (logical
// snapshot block compares; words zeroed by the tracked bitset resets) ARE
// ISA- and sim-thread-deterministic, but are optional on input and
// excluded from equalDeterministic so new binaries keep diffing clean
// against committed baselines that predate them. "config.serve_cache"
// (whether the serving tier's cross-query solve cache ran) and the
// serving runs' "cache_*" counters follow the same pattern: optional on
// input (pre-cache reports predate them; serve_cache defaults to true,
// the counters to absent), ignored by equalDeterministic, stripped by
// the CI cached-vs-uncached cmp. "totals.peak_rss_kb" is 0 when the
// VmHWM reset failed (the batch-scoped value is then unavailable and a
// process-wide one would be mis-attribution). All
// numeric fields fit a double exactly. Reports round-trip: toJson -> dump
// -> Json::parse -> reportFromJson reproduces the struct bit-for-bit
// except for nothing -- wall-times are preserved verbatim.
#include <array>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "scenario/scenario.hpp"

namespace aspf::scenario {

inline constexpr int kReportSchemaVersion = 1;

inline constexpr std::array<const char*, 6> kPhaseNames{
    "preprocessing", "split", "base", "decomposition", "merging", "prune"};

struct AlgoRun {
  std::string algo;        // "polylog" | "wave" | "naive"
  long rounds = 0;         // synchronous circuit rounds (model cost)
  double wallMs = 0.0;     // host wall-clock, 0 when timing is disabled
  bool checkerOk = false;  // checker verdict (trusted-by-fiat when the
                           // report's config.check is false)
  std::string error;       // non-empty iff the run threw or failed checking
  long delivers = 0;       // simulator deliver() executions
  long beeps = 0;          // beeps queued on partition sets
  long unions = 0;         // union-find unions while (re)building circuits
  long incrRounds = 0;     // delivers served by the incremental path
  long rebuildRounds = 0;  // delivers that rebuilt circuits from scratch
  double dirtyFrac = 0.0;  // truly-reconfigured amoebots per amoebot-round
  long blockCompares = 0;  // 32-byte snapshot block compares (dirty drain)
  long bitsetWordsScanned = 0;  // words zeroed by tracked bitset resets
  bool hasPhases = false;  // true => `phases` is meaningful
  std::array<long, 6> phases{};  // indexed like kPhaseNames

  bool operator==(const AlgoRun&) const = default;
};

struct ScenarioReport {
  Scenario scenario;
  int n = 0;     // actual structure size
  int kEff = 0;  // |S| after clamping to n
  int lEff = 0;  // |D| after clamping to n
  std::vector<AlgoRun> runs;

  bool operator==(const ScenarioReport&) const = default;
};

// --- Dynamic-timeline records (the `timelines` report section) -----------
//
// One EpochRun per (epoch, algorithm): the epoch is solved twice, WARM on
// the persistent rebound substrate and COLD from scratch as the
// differential oracle. `rounds`/`delivers`/`beeps`/`checker_ok` describe
// the warm solve; `warm_matches_cold` asserts the cold oracle reproduced
// the same forest and the same model-level fields bit-for-bit. The
// warm_*/cold_* counters are the substrate-cost delta the dynamic tier
// exists to measure (how much circuit (re)union work the carried-over
// union-find saves per epoch); like the AlgoRun engine counters they are
// deterministic at any thread/sim-thread count but excluded from
// `modelOnly` comparisons.

struct EpochRun {
  std::string algo;
  long rounds = 0;          // warm solve (equals cold when matches)
  double wallMs = 0.0;      // warm solve host wall-clock
  bool checkerOk = false;
  std::string error;        // non-empty iff a solve threw / check failed
  long delivers = 0;
  long beeps = 0;
  long warmUnions = 0;
  long coldUnions = 0;
  long warmIncrRounds = 0;
  long warmRebuildRounds = 0;
  long coldIncrRounds = 0;
  long coldRebuildRounds = 0;
  bool warmMatchesCold = false;

  bool operator==(const EpochRun&) const = default;
};

struct EpochReport {
  int epoch = 0;                    // 0 = the unmutated base instance
  std::string mutation = "none";    // MutationKind tag, "none" for epoch 0
  int applied = 0;                  // primitive mutation steps that landed
  int n = 0;
  int kEff = 0;
  int lEff = 0;
  std::vector<EpochRun> runs;

  bool operator==(const EpochReport&) const = default;
};

struct TimelineReport {
  std::string name;
  Scenario base;
  std::uint64_t seed = 0;  // the timeline's mutation seed
  std::vector<EpochReport> epochs;

  bool operator==(const TimelineReport&) const = default;
};

// --- Serving-mode records (the `serving` report section) -----------------
//
// One ServingReport per query-serving session (`aspf-run --serve`): one
// persistent structure, a seeded stream of S/D queries, every selected
// algorithm resolving every query WARM on a session-lifetime substrate
// Comm and COLD from scratch as the differential oracle. A ServeRun
// aggregates one algorithm's whole stream: totals of the warm model
// counters, the warm/cold union-savings counters (the amortization the
// serving mode exists to measure), the per-query oracle verdict count
// (`queries_ok`; `warm_matches_cold` iff every query matched), and the
// host-side serving metrics -- queries/sec plus nearest-rank per-query
// warm-latency percentiles -- which are timing fields: zeroed under
// `--no-timing`, ignored by equalDeterministic, varying run to run.

struct ServeRun {
  std::string algo;
  long rounds = 0;     // total warm rounds over all queries
  double wallMs = 0.0; // total warm solve wall-clock
  bool checkerOk = false;  // every checked query passed (trusted-by-fiat
                           // when config.check is false)
  std::string error;       // first error of the stream, if any
  long delivers = 0;       // warm totals
  long beeps = 0;
  long warmUnions = 0;
  long coldUnions = 0;
  long warmIncrRounds = 0;
  long warmRebuildRounds = 0;
  long coldIncrRounds = 0;
  long coldRebuildRounds = 0;
  long queriesOk = 0;           // queries whose warm solve matched cold
  bool warmMatchesCold = false; // queriesOk == queries and no error
  // Throughput/latency are computed over SUCCESSFUL queries only (failed
  // or diverged queries contribute no sample); wall_ms covers the whole
  // stream. All are timing fields: zeroed under --no-timing.
  double queriesPerSec = 0.0;
  double latencyMsP50 = 0.0;    // nearest-rank warm-latency percentiles
  double latencyMsP90 = 0.0;
  double latencyMsP99 = 0.0;
  // Cross-query solve-cache stats (the cache_* keys; emitted only when
  // the cache ran for this algo, i.e. the warm polylog path with
  // --serve-cache on). Deterministic for a fixed configuration but --
  // like the engine counters -- a statement about how the answers were
  // produced, so equalDeterministic ignores them and CI strips them
  // before the cached-vs-uncached byte compare.
  bool cacheEnabled = false;
  long cacheHits = 0;
  long cacheMisses = 0;
  long cacheInvalidations = 0;
  long cacheSavedUnions = 0;

  bool operator==(const ServeRun&) const = default;
};

struct ServingReport {
  Scenario scenario;        // the base instance the structure is built from
  int n = 0;                // structure size at session start
  int finalN = 0;           // structure size after the last query group
  int queries = 0;          // resolved queries
  std::uint64_t seed = 0;   // the serve stream's seed
  int mutateEvery = 0;      // structure mutation cadence (0 = static)
  std::vector<std::string> mix;  // QueryKind tags the stream draws from
  int sdApplied = 0;             // per-query S/D steps that landed
  int structureMutations = 0;    // query-group structure mutations applied
  int attached = 0;              // cells attached across the session
  int detached = 0;              // cells detached across the session
  std::vector<ServeRun> runs;

  bool operator==(const ServingReport&) const = default;
};

struct BenchReport {
  int schemaVersion = kReportSchemaVersion;
  std::string suite;
  std::vector<std::string> algos;
  int threads = 1;
  int simThreads = 1;  // sharded-substrate workers per Comm (PR 4)
  int lanes = 4;
  bool check = true;   // false => checker was skipped; checker_ok fields
                       // report trust, not a verified verdict
  bool timing = true;
  std::string engine = "incremental";  // circuit engine the runs used
  std::string simdIsa;  // kernel ISA stamp ("" = unrecorded; PR <= 6)
  // Whether the serving tier's cross-query solve cache was enabled
  // (config.serve_cache). A config stamp like engine/simd: optional on
  // input (absent = true in pre-cache reports), never compared by
  // equalDeterministic.
  bool serveCache = true;
  std::vector<ScenarioReport> scenarios;
  // Dynamic-timeline section (empty for plain scenario batches; the
  // `timelines` key is then omitted from the JSON, so pre-dynamic reports
  // and their byte-stable outputs are unchanged).
  std::vector<TimelineReport> timelines;
  // Query-serving section (`aspf-run --serve`); omitted from the JSON
  // when empty, exactly like `timelines`.
  std::vector<ServingReport> serving;
  double totalWallMs = 0.0;
  long peakRssKb = 0;

  bool operator==(const BenchReport&) const = default;
};

Json toJson(const BenchReport& report);

/// Structural schema check: returns true iff the document is a valid
/// version-1 report. On failure `error` (if non-null) names the offending
/// path. Used by `aspf-run --check` and the CI smoke job.
bool validateReport(const Json& doc, std::string* error);

/// Parses a validated document back into the struct form; throws
/// std::runtime_error with the validation message if the document does not
/// conform to the schema.
BenchReport reportFromJson(const Json& doc);

/// Compares the *deterministic* fields of two reports: suite, algos,
/// lanes, check, engine, and per scenario/run everything except wall-times,
/// RSS, the thread count, the timing flag, the config.simd ISA stamp and
/// the per-run block_compares / bitset_words_scanned counters (the last
/// two ARE deterministic but are skipped so new binaries diff clean
/// against baselines that predate them; for serving runs, also
/// excepting queries/sec and the latency percentiles -- host metrics --
/// and the cache_* stats, so --serve-cache on/off runs both diff clean
/// against one baseline). Returns true iff they match;
/// on mismatch `why` (if non-null) names the first differing path. Used by
/// `aspf-run --diff` and the CI perf-sanity step to catch round-count or
/// counter regressions against a committed BENCH_*.json.
///
/// With `modelOnly` the engine-specific fields (config.engine and the
/// per-run `unions` / `incr_rounds` / `rebuild_rounds` counters) are
/// excluded as well, leaving exactly the fields both circuit engines must
/// agree on -- `aspf-run --diff-model` and the CI engine-equivalence step
/// compare an incremental run against a rebuild-engine run this way.
/// (`dirty_frac` stays compared: dirty tracking is engine-independent.)
bool equalDeterministic(const BenchReport& a, const BenchReport& b,
                        std::string* why, bool modelOnly = false);

}  // namespace aspf::scenario

#include "scenario/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace aspf::scenario {

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object)
    throw std::runtime_error("Json: operator[] on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(std::string(key), Json());
  return obj_.back().second;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return num_ == other.num_;
    case Type::String: return str_ == other.str_;
    case Type::Array: return arr_ == other.arr_;
    case Type::Object: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Infinity literal; "%.17g" would emit `nan`/`inf`,
    // which no conforming parser (including ours) accepts. Null is the
    // only faithful representation, so the output stays valid JSON no
    // matter what a computed metric did.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    // Integral values (rounds, counters, kb) serialize without a fraction.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void appendIndent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: appendNumber(out, num_); return;
    case Type::String: appendEscaped(out, str_); return;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        if (indent) appendIndent(out, indent, depth + 1);
        arr_[i].dumpTo(out, indent, depth + 1);
      }
      if (indent) appendIndent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        if (indent) appendIndent(out, indent, depth + 1);
        appendEscaped(out, obj_[i].first);
        out += indent ? ": " : ":";
        obj_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (indent) appendIndent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  if (indent) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parseDocument() {
    Json v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return Json();
      default: return parseNumber();
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Report strings are ASCII; encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    // strtod overflows (e.g. "1e999") to +/-inf -- and would accept
    // `inf`/`nan` spellings outright if the token scanner ever let them
    // through. JSON numbers are finite by grammar; reject anything else.
    if (!std::isfinite(v)) fail("number is not finite");
    return Json(v);
  }

  Json parseArray() {
    expect('[');
    Json arr = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  Json parseObject() {
    expect('{');
    Json obj = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj[key] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace aspf::scenario

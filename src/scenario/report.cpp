#include "scenario/report.hpp"

#include <stdexcept>

#include "scenario/timeline.hpp"

namespace aspf::scenario {

Json toJson(const BenchReport& report) {
  Json doc = Json::object();
  doc["schema_version"] = Json(report.schemaVersion);
  doc["tool"] = Json("aspf-run");
  doc["suite"] = Json(report.suite);

  Json config = Json::object();
  Json algos = Json::array();
  for (const std::string& a : report.algos) algos.push(Json(a));
  config["algos"] = std::move(algos);
  config["threads"] = Json(report.threads);
  config["sim_threads"] = Json(report.simThreads);
  config["lanes"] = Json(report.lanes);
  config["check"] = Json(report.check);
  config["timing"] = Json(report.timing);
  config["engine"] = Json(report.engine);
  config["simd"] = Json(report.simdIsa);
  config["serve_cache"] = Json(report.serveCache);
  doc["config"] = std::move(config);

  Json scenarios = Json::array();
  for (const ScenarioReport& sr : report.scenarios) {
    Json s = Json::object();
    s["name"] = Json(sr.scenario.name);
    s["shape"] = Json(toString(sr.scenario.shape));
    s["a"] = Json(sr.scenario.a);
    s["b"] = Json(sr.scenario.b);
    s["k"] = Json(sr.scenario.k);
    s["l"] = Json(sr.scenario.l);
    s["seed"] = Json(sr.scenario.seed);
    s["n"] = Json(sr.n);
    s["k_eff"] = Json(sr.kEff);
    s["l_eff"] = Json(sr.lEff);
    Json runs = Json::array();
    for (const AlgoRun& r : sr.runs) {
      Json run = Json::object();
      run["algo"] = Json(r.algo);
      run["rounds"] = Json(r.rounds);
      run["wall_ms"] = Json(r.wallMs);
      run["checker_ok"] = Json(r.checkerOk);
      run["error"] = Json(r.error);
      run["delivers"] = Json(r.delivers);
      run["beeps"] = Json(r.beeps);
      run["unions"] = Json(r.unions);
      run["incr_rounds"] = Json(r.incrRounds);
      run["rebuild_rounds"] = Json(r.rebuildRounds);
      run["dirty_frac"] = Json(r.dirtyFrac);
      run["block_compares"] = Json(r.blockCompares);
      run["bitset_words_scanned"] = Json(r.bitsetWordsScanned);
      if (r.hasPhases) {
        Json phases = Json::object();
        for (std::size_t i = 0; i < kPhaseNames.size(); ++i)
          phases[kPhaseNames[i]] = Json(r.phases[i]);
        run["phases"] = std::move(phases);
      }
      runs.push(std::move(run));
    }
    s["runs"] = std::move(runs);
    scenarios.push(std::move(s));
  }
  doc["scenarios"] = std::move(scenarios);

  if (!report.timelines.empty()) {
    Json timelines = Json::array();
    for (const TimelineReport& tr : report.timelines) {
      Json t = Json::object();
      t["name"] = Json(tr.name);
      Json base = Json::object();
      base["name"] = Json(tr.base.name);
      base["shape"] = Json(toString(tr.base.shape));
      base["a"] = Json(tr.base.a);
      base["b"] = Json(tr.base.b);
      base["k"] = Json(tr.base.k);
      base["l"] = Json(tr.base.l);
      base["seed"] = Json(tr.base.seed);
      t["base"] = std::move(base);
      t["timeline_seed"] = Json(tr.seed);
      Json epochs = Json::array();
      for (const EpochReport& er : tr.epochs) {
        Json e = Json::object();
        e["epoch"] = Json(er.epoch);
        e["mutation"] = Json(er.mutation);
        e["applied"] = Json(er.applied);
        e["n"] = Json(er.n);
        e["k_eff"] = Json(er.kEff);
        e["l_eff"] = Json(er.lEff);
        Json runs = Json::array();
        for (const EpochRun& r : er.runs) {
          Json run = Json::object();
          run["algo"] = Json(r.algo);
          run["rounds"] = Json(r.rounds);
          run["wall_ms"] = Json(r.wallMs);
          run["checker_ok"] = Json(r.checkerOk);
          run["error"] = Json(r.error);
          run["delivers"] = Json(r.delivers);
          run["beeps"] = Json(r.beeps);
          run["warm_unions"] = Json(r.warmUnions);
          run["cold_unions"] = Json(r.coldUnions);
          run["warm_incr_rounds"] = Json(r.warmIncrRounds);
          run["warm_rebuild_rounds"] = Json(r.warmRebuildRounds);
          run["cold_incr_rounds"] = Json(r.coldIncrRounds);
          run["cold_rebuild_rounds"] = Json(r.coldRebuildRounds);
          run["warm_matches_cold"] = Json(r.warmMatchesCold);
          runs.push(std::move(run));
        }
        e["runs"] = std::move(runs);
        epochs.push(std::move(e));
      }
      t["epochs"] = std::move(epochs);
      timelines.push(std::move(t));
    }
    doc["timelines"] = std::move(timelines);
  }

  if (!report.serving.empty()) {
    Json serving = Json::array();
    for (const ServingReport& sv : report.serving) {
      Json s = Json::object();
      Json sc = Json::object();
      sc["name"] = Json(sv.scenario.name);
      sc["shape"] = Json(toString(sv.scenario.shape));
      sc["a"] = Json(sv.scenario.a);
      sc["b"] = Json(sv.scenario.b);
      sc["k"] = Json(sv.scenario.k);
      sc["l"] = Json(sv.scenario.l);
      sc["seed"] = Json(sv.scenario.seed);
      s["scenario"] = std::move(sc);
      s["n"] = Json(sv.n);
      s["final_n"] = Json(sv.finalN);
      s["queries"] = Json(sv.queries);
      s["serve_seed"] = Json(sv.seed);
      s["mutate_every"] = Json(sv.mutateEvery);
      Json mix = Json::array();
      for (const std::string& m : sv.mix) mix.push(Json(m));
      s["mix"] = std::move(mix);
      s["sd_applied"] = Json(sv.sdApplied);
      s["structure_mutations"] = Json(sv.structureMutations);
      s["attached"] = Json(sv.attached);
      s["detached"] = Json(sv.detached);
      Json runs = Json::array();
      for (const ServeRun& r : sv.runs) {
        Json run = Json::object();
        run["algo"] = Json(r.algo);
        run["rounds"] = Json(r.rounds);
        run["wall_ms"] = Json(r.wallMs);
        run["checker_ok"] = Json(r.checkerOk);
        run["error"] = Json(r.error);
        run["delivers"] = Json(r.delivers);
        run["beeps"] = Json(r.beeps);
        run["warm_unions"] = Json(r.warmUnions);
        run["cold_unions"] = Json(r.coldUnions);
        run["warm_incr_rounds"] = Json(r.warmIncrRounds);
        run["warm_rebuild_rounds"] = Json(r.warmRebuildRounds);
        run["cold_incr_rounds"] = Json(r.coldIncrRounds);
        run["cold_rebuild_rounds"] = Json(r.coldRebuildRounds);
        if (r.cacheEnabled) {  // solve-cache stats: warm polylog only.
          // Kept mid-object on purpose: never the last key, so the CI
          // cached-vs-uncached compare can strip these lines without
          // leaving a dangling-comma difference behind.
          run["cache_hits"] = Json(r.cacheHits);
          run["cache_misses"] = Json(r.cacheMisses);
          run["cache_invalidations"] = Json(r.cacheInvalidations);
          run["cache_saved_unions"] = Json(r.cacheSavedUnions);
        }
        run["queries_ok"] = Json(r.queriesOk);
        run["warm_matches_cold"] = Json(r.warmMatchesCold);
        run["queries_per_sec"] = Json(r.queriesPerSec);
        run["latency_ms_p50"] = Json(r.latencyMsP50);
        run["latency_ms_p90"] = Json(r.latencyMsP90);
        run["latency_ms_p99"] = Json(r.latencyMsP99);
        runs.push(std::move(run));
      }
      s["runs"] = std::move(runs);
      serving.push(std::move(s));
    }
    doc["serving"] = std::move(serving);
  }

  long runCount = 0;
  for (const ScenarioReport& sr : report.scenarios)
    runCount += static_cast<long>(sr.runs.size());
  Json totals = Json::object();
  totals["scenarios"] = Json(static_cast<long>(report.scenarios.size()));
  totals["runs"] = Json(runCount);
  totals["wall_ms"] = Json(report.totalWallMs);
  totals["peak_rss_kb"] = Json(report.peakRssKb);
  doc["totals"] = std::move(totals);
  return doc;
}

namespace {

class Validator {
 public:
  explicit Validator(std::string* error) : error_(error) {}

  bool fail(const std::string& path, const std::string& what) {
    if (error_) *error_ = path + ": " + what;
    return false;
  }

  const Json* need(const Json& obj, const std::string& path,
                   const std::string& key, Json::Type type) {
    const Json* v = obj.find(key);
    if (!v) {
      fail(path + "." + key, "missing");
      return nullptr;
    }
    if (v->type() != type) {
      fail(path + "." + key, "wrong type");
      return nullptr;
    }
    return v;
  }

  bool validateRun(const Json& run, const std::string& path) {
    if (!run.isObject()) return fail(path, "run must be an object");
    const Json* algo = need(run, path, "algo", Json::Type::String);
    if (!algo) return false;
    if (algo->asString() != "polylog" && algo->asString() != "wave" &&
        algo->asString() != "naive")
      return fail(path + ".algo", "unknown algorithm '" + algo->asString() + "'");
    for (const char* key : {"rounds", "wall_ms", "delivers", "beeps"}) {
      if (!need(run, path, key, Json::Type::Number)) return false;
    }
    // Engine counters are optional on input: reports written before the
    // incremental substrate (PR <= 2) predate them.
    for (const char* key :
         {"unions", "incr_rounds", "rebuild_rounds", "dirty_frac",
          "block_compares", "bitset_words_scanned"}) {
      if (const Json* v = run.find(key)) {
        if (v->type() != Json::Type::Number)
          return fail(path + "." + key, "wrong type");
      }
    }
    if (!need(run, path, "checker_ok", Json::Type::Bool)) return false;
    if (!need(run, path, "error", Json::Type::String)) return false;
    if (const Json* phases = run.find("phases")) {
      if (!phases->isObject()) return fail(path + ".phases", "wrong type");
      for (const char* name : kPhaseNames) {
        if (!need(*phases, path + ".phases", name, Json::Type::Number))
          return false;
      }
    }
    return true;
  }

  bool validateScenario(const Json& s, const std::string& path) {
    if (!s.isObject()) return fail(path, "scenario must be an object");
    const Json* name = need(s, path, "name", Json::Type::String);
    if (!name) return false;
    const Json* shape = need(s, path, "shape", Json::Type::String);
    if (!shape) return false;
    Shape parsed;
    if (!shapeFromString(shape->asString(), &parsed))
      return fail(path + ".shape", "unknown shape '" + shape->asString() + "'");
    for (const char* key :
         {"a", "b", "k", "l", "seed", "n", "k_eff", "l_eff"}) {
      if (!need(s, path, key, Json::Type::Number)) return false;
    }
    const Json* runs = need(s, path, "runs", Json::Type::Array);
    if (!runs) return false;
    if (runs->size() == 0) return fail(path + ".runs", "empty");
    for (std::size_t i = 0; i < runs->size(); ++i) {
      if (!validateRun(runs->at(i), path + ".runs[" + std::to_string(i) + "]"))
        return false;
    }
    return true;
  }

  bool validateEpochRun(const Json& run, const std::string& path) {
    if (!run.isObject()) return fail(path, "epoch run must be an object");
    const Json* algo = need(run, path, "algo", Json::Type::String);
    if (!algo) return false;
    if (algo->asString() != "polylog" && algo->asString() != "wave" &&
        algo->asString() != "naive")
      return fail(path + ".algo",
                  "unknown algorithm '" + algo->asString() + "'");
    for (const char* key :
         {"rounds", "wall_ms", "delivers", "beeps", "warm_unions",
          "cold_unions", "warm_incr_rounds", "warm_rebuild_rounds",
          "cold_incr_rounds", "cold_rebuild_rounds"}) {
      if (!need(run, path, key, Json::Type::Number)) return false;
    }
    if (!need(run, path, "checker_ok", Json::Type::Bool)) return false;
    if (!need(run, path, "warm_matches_cold", Json::Type::Bool)) return false;
    if (!need(run, path, "error", Json::Type::String)) return false;
    return true;
  }

  bool validateTimeline(const Json& t, const std::string& path) {
    if (!t.isObject()) return fail(path, "timeline must be an object");
    if (!need(t, path, "name", Json::Type::String)) return false;
    const Json* base = need(t, path, "base", Json::Type::Object);
    if (!base) return false;
    if (!need(*base, path + ".base", "name", Json::Type::String)) return false;
    const Json* shape = need(*base, path + ".base", "shape",
                             Json::Type::String);
    if (!shape) return false;
    Shape parsed;
    if (!shapeFromString(shape->asString(), &parsed))
      return fail(path + ".base.shape",
                  "unknown shape '" + shape->asString() + "'");
    for (const char* key : {"a", "b", "k", "l", "seed"}) {
      if (!need(*base, path + ".base", key, Json::Type::Number)) return false;
    }
    if (!need(t, path, "timeline_seed", Json::Type::Number)) return false;
    const Json* epochs = need(t, path, "epochs", Json::Type::Array);
    if (!epochs) return false;
    if (epochs->size() == 0) return fail(path + ".epochs", "empty");
    for (std::size_t i = 0; i < epochs->size(); ++i) {
      const std::string ep = path + ".epochs[" + std::to_string(i) + "]";
      const Json& e = epochs->at(i);
      if (!e.isObject()) return fail(ep, "epoch must be an object");
      for (const char* key : {"epoch", "applied", "n", "k_eff", "l_eff"}) {
        if (!need(e, ep, key, Json::Type::Number)) return false;
      }
      const Json* mutation = need(e, ep, "mutation", Json::Type::String);
      if (!mutation) return false;
      MutationKind kind;
      if (mutation->asString() != "none" &&
          !mutationKindFromString(mutation->asString(), &kind))
        return fail(ep + ".mutation",
                    "unknown mutation '" + mutation->asString() + "'");
      const Json* runs = need(e, ep, "runs", Json::Type::Array);
      if (!runs) return false;
      if (runs->size() == 0) return fail(ep + ".runs", "empty");
      for (std::size_t j = 0; j < runs->size(); ++j) {
        if (!validateEpochRun(runs->at(j),
                              ep + ".runs[" + std::to_string(j) + "]"))
          return false;
      }
    }
    return true;
  }

  bool validateServeRun(const Json& run, const std::string& path) {
    if (!run.isObject()) return fail(path, "serve run must be an object");
    const Json* algo = need(run, path, "algo", Json::Type::String);
    if (!algo) return false;
    if (algo->asString() != "polylog" && algo->asString() != "wave" &&
        algo->asString() != "naive")
      return fail(path + ".algo",
                  "unknown algorithm '" + algo->asString() + "'");
    for (const char* key :
         {"rounds", "wall_ms", "delivers", "beeps", "warm_unions",
          "cold_unions", "warm_incr_rounds", "warm_rebuild_rounds",
          "cold_incr_rounds", "cold_rebuild_rounds", "queries_ok",
          "queries_per_sec", "latency_ms_p50", "latency_ms_p90",
          "latency_ms_p99"}) {
      if (!need(run, path, key, Json::Type::Number)) return false;
    }
    if (!need(run, path, "checker_ok", Json::Type::Bool)) return false;
    if (!need(run, path, "warm_matches_cold", Json::Type::Bool)) return false;
    if (!need(run, path, "error", Json::Type::String)) return false;
    // Solve-cache stats: optional as a group (emitted only for runs the
    // cache was live on; pre-cache reports predate them entirely), but if
    // one key is present all four must be.
    const bool anyCache = run.find("cache_hits") != nullptr ||
                          run.find("cache_misses") != nullptr ||
                          run.find("cache_invalidations") != nullptr ||
                          run.find("cache_saved_unions") != nullptr;
    if (anyCache) {
      for (const char* key : {"cache_hits", "cache_misses",
                              "cache_invalidations", "cache_saved_unions"}) {
        if (!need(run, path, key, Json::Type::Number)) return false;
      }
    }
    return true;
  }

  bool validateServing(const Json& s, const std::string& path) {
    if (!s.isObject()) return fail(path, "serving entry must be an object");
    const Json* scenario = need(s, path, "scenario", Json::Type::Object);
    if (!scenario) return false;
    if (!need(*scenario, path + ".scenario", "name", Json::Type::String))
      return false;
    const Json* shape =
        need(*scenario, path + ".scenario", "shape", Json::Type::String);
    if (!shape) return false;
    Shape parsed;
    if (!shapeFromString(shape->asString(), &parsed))
      return fail(path + ".scenario.shape",
                  "unknown shape '" + shape->asString() + "'");
    for (const char* key : {"a", "b", "k", "l", "seed"}) {
      if (!need(*scenario, path + ".scenario", key, Json::Type::Number))
        return false;
    }
    for (const char* key :
         {"n", "final_n", "queries", "serve_seed", "mutate_every",
          "sd_applied", "structure_mutations", "attached", "detached"}) {
      if (!need(s, path, key, Json::Type::Number)) return false;
    }
    const Json* queries = s.find("queries");
    if (queries->asInt() < 1) return fail(path + ".queries", "must be >= 1");
    const Json* mix = need(s, path, "mix", Json::Type::Array);
    if (!mix) return false;
    if (mix->size() == 0) return fail(path + ".mix", "empty");
    for (std::size_t i = 0; i < mix->size(); ++i) {
      const Json& m = mix->at(i);
      const std::string mp = path + ".mix[" + std::to_string(i) + "]";
      if (!m.isString()) return fail(mp, "wrong type");
      if (m.asString() != "dest-swap" && m.asString() != "dest-add" &&
          m.asString() != "dest-remove" && m.asString() != "toggle-source")
        return fail(mp, "unknown query kind '" + m.asString() + "'");
    }
    const Json* runs = need(s, path, "runs", Json::Type::Array);
    if (!runs) return false;
    if (runs->size() == 0) return fail(path + ".runs", "empty");
    for (std::size_t i = 0; i < runs->size(); ++i) {
      if (!validateServeRun(runs->at(i),
                            path + ".runs[" + std::to_string(i) + "]"))
        return false;
    }
    return true;
  }

  bool validate(const Json& doc) {
    if (!doc.isObject()) return fail("$", "document must be an object");
    const Json* version = need(doc, "$", "schema_version", Json::Type::Number);
    if (!version) return false;
    if (version->asInt() != kReportSchemaVersion)
      return fail("$.schema_version",
                  "unsupported version " + std::to_string(version->asInt()));
    if (!need(doc, "$", "tool", Json::Type::String)) return false;
    if (!need(doc, "$", "suite", Json::Type::String)) return false;

    const Json* config = need(doc, "$", "config", Json::Type::Object);
    if (!config) return false;
    const Json* algos = need(*config, "$.config", "algos", Json::Type::Array);
    if (!algos) return false;
    for (std::size_t i = 0; i < algos->size(); ++i) {
      if (!algos->at(i).isString())
        return fail("$.config.algos[" + std::to_string(i) + "]", "wrong type");
    }
    if (!need(*config, "$.config", "threads", Json::Type::Number)) return false;
    if (const Json* simThreads = config->find("sim_threads")) {
      // Optional (reports from PR <= 3 predate the sharded substrate).
      if (simThreads->type() != Json::Type::Number)
        return fail("$.config.sim_threads", "wrong type");
      if (simThreads->asInt() < 1)
        return fail("$.config.sim_threads", "must be >= 1");
    }
    if (!need(*config, "$.config", "lanes", Json::Type::Number)) return false;
    if (!need(*config, "$.config", "check", Json::Type::Bool)) return false;
    if (!need(*config, "$.config", "timing", Json::Type::Bool)) return false;
    if (const Json* engine = config->find("engine")) {  // optional (PR <= 2)
      if (!engine->isString())
        return fail("$.config.engine", "wrong type");
      if (engine->asString() != "incremental" &&
          engine->asString() != "rebuild")
        return fail("$.config.engine",
                    "unknown engine '" + engine->asString() + "'");
    }
    if (const Json* simdIsa = config->find("simd")) {  // optional (PR <= 6)
      if (!simdIsa->isString())
        return fail("$.config.simd", "wrong type");
    }
    if (const Json* serveCache = config->find("serve_cache")) {
      // Optional (pre-cache reports predate the serving solve cache).
      if (!serveCache->isBool())
        return fail("$.config.serve_cache", "wrong type");
    }

    const Json* scenarios = need(doc, "$", "scenarios", Json::Type::Array);
    if (!scenarios) return false;
    for (std::size_t i = 0; i < scenarios->size(); ++i) {
      if (!validateScenario(scenarios->at(i),
                            "$.scenarios[" + std::to_string(i) + "]"))
        return false;
    }

    if (const Json* timelines = doc.find("timelines")) {
      // Optional: present only on dynamic-timeline batches.
      if (!timelines->isArray()) return fail("$.timelines", "wrong type");
      for (std::size_t i = 0; i < timelines->size(); ++i) {
        if (!validateTimeline(timelines->at(i),
                              "$.timelines[" + std::to_string(i) + "]"))
          return false;
      }
    }

    if (const Json* serving = doc.find("serving")) {
      // Optional: present only on query-serving batches.
      if (!serving->isArray()) return fail("$.serving", "wrong type");
      for (std::size_t i = 0; i < serving->size(); ++i) {
        if (!validateServing(serving->at(i),
                             "$.serving[" + std::to_string(i) + "]"))
          return false;
      }
    }

    const Json* totals = need(doc, "$", "totals", Json::Type::Object);
    if (!totals) return false;
    for (const char* key : {"scenarios", "runs", "wall_ms", "peak_rss_kb"}) {
      if (!need(*totals, "$.totals", key, Json::Type::Number)) return false;
    }
    if (totals->find("scenarios")->asInt() !=
        static_cast<long long>(scenarios->size()))
      return fail("$.totals.scenarios", "does not match scenarios[] length");
    long long runCount = 0;
    for (const Json& s : scenarios->items()) {
      if (const Json* runs = s.find("runs")) runCount += runs->size();
    }
    if (totals->find("runs")->asInt() != runCount)
      return fail("$.totals.runs", "does not match the sum of runs[] lengths");
    return true;
  }

 private:
  std::string* error_;
};

}  // namespace

bool validateReport(const Json& doc, std::string* error) {
  return Validator(error).validate(doc);
}

BenchReport reportFromJson(const Json& doc) {
  std::string error;
  if (!validateReport(doc, &error))
    throw std::runtime_error("reportFromJson: " + error);

  BenchReport report;
  report.schemaVersion = static_cast<int>(doc.find("schema_version")->asInt());
  report.suite = doc.find("suite")->asString();
  const Json& config = *doc.find("config");
  for (const Json& a : config.find("algos")->items())
    report.algos.push_back(a.asString());
  report.threads = static_cast<int>(config.find("threads")->asInt());
  if (const Json* simThreads = config.find("sim_threads"))
    report.simThreads = static_cast<int>(simThreads->asInt());
  report.lanes = static_cast<int>(config.find("lanes")->asInt());
  report.check = config.find("check")->asBool();
  report.timing = config.find("timing")->asBool();
  if (const Json* engine = config.find("engine"))
    report.engine = engine->asString();
  if (const Json* simdIsa = config.find("simd"))
    report.simdIsa = simdIsa->asString();
  if (const Json* serveCache = config.find("serve_cache"))
    report.serveCache = serveCache->asBool();

  for (const Json& s : doc.find("scenarios")->items()) {
    ScenarioReport sr;
    sr.scenario.name = s.find("name")->asString();
    shapeFromString(s.find("shape")->asString(), &sr.scenario.shape);
    sr.scenario.a = static_cast<int>(s.find("a")->asInt());
    sr.scenario.b = static_cast<int>(s.find("b")->asInt());
    sr.scenario.k = static_cast<int>(s.find("k")->asInt());
    sr.scenario.l = static_cast<int>(s.find("l")->asInt());
    sr.scenario.seed = static_cast<std::uint64_t>(s.find("seed")->asInt());
    sr.n = static_cast<int>(s.find("n")->asInt());
    sr.kEff = static_cast<int>(s.find("k_eff")->asInt());
    sr.lEff = static_cast<int>(s.find("l_eff")->asInt());
    for (const Json& r : s.find("runs")->items()) {
      AlgoRun run;
      run.algo = r.find("algo")->asString();
      run.rounds = static_cast<long>(r.find("rounds")->asInt());
      run.wallMs = r.find("wall_ms")->asNumber();
      run.checkerOk = r.find("checker_ok")->asBool();
      run.error = r.find("error")->asString();
      run.delivers = static_cast<long>(r.find("delivers")->asInt());
      run.beeps = static_cast<long>(r.find("beeps")->asInt());
      if (const Json* v = r.find("unions"))
        run.unions = static_cast<long>(v->asInt());
      if (const Json* v = r.find("incr_rounds"))
        run.incrRounds = static_cast<long>(v->asInt());
      if (const Json* v = r.find("rebuild_rounds"))
        run.rebuildRounds = static_cast<long>(v->asInt());
      if (const Json* v = r.find("dirty_frac")) run.dirtyFrac = v->asNumber();
      if (const Json* v = r.find("block_compares"))
        run.blockCompares = static_cast<long>(v->asInt());
      if (const Json* v = r.find("bitset_words_scanned"))
        run.bitsetWordsScanned = static_cast<long>(v->asInt());
      if (const Json* phases = r.find("phases")) {
        run.hasPhases = true;
        for (std::size_t i = 0; i < kPhaseNames.size(); ++i)
          run.phases[i] =
              static_cast<long>(phases->find(kPhaseNames[i])->asInt());
      }
      sr.runs.push_back(std::move(run));
    }
    report.scenarios.push_back(std::move(sr));
  }

  if (const Json* timelines = doc.find("timelines")) {
    for (const Json& t : timelines->items()) {
      TimelineReport tr;
      tr.name = t.find("name")->asString();
      const Json& base = *t.find("base");
      tr.base.name = base.find("name")->asString();
      shapeFromString(base.find("shape")->asString(), &tr.base.shape);
      tr.base.a = static_cast<int>(base.find("a")->asInt());
      tr.base.b = static_cast<int>(base.find("b")->asInt());
      tr.base.k = static_cast<int>(base.find("k")->asInt());
      tr.base.l = static_cast<int>(base.find("l")->asInt());
      tr.base.seed = static_cast<std::uint64_t>(base.find("seed")->asInt());
      tr.seed =
          static_cast<std::uint64_t>(t.find("timeline_seed")->asInt());
      for (const Json& e : t.find("epochs")->items()) {
        EpochReport er;
        er.epoch = static_cast<int>(e.find("epoch")->asInt());
        er.mutation = e.find("mutation")->asString();
        er.applied = static_cast<int>(e.find("applied")->asInt());
        er.n = static_cast<int>(e.find("n")->asInt());
        er.kEff = static_cast<int>(e.find("k_eff")->asInt());
        er.lEff = static_cast<int>(e.find("l_eff")->asInt());
        for (const Json& r : e.find("runs")->items()) {
          EpochRun run;
          run.algo = r.find("algo")->asString();
          run.rounds = static_cast<long>(r.find("rounds")->asInt());
          run.wallMs = r.find("wall_ms")->asNumber();
          run.checkerOk = r.find("checker_ok")->asBool();
          run.error = r.find("error")->asString();
          run.delivers = static_cast<long>(r.find("delivers")->asInt());
          run.beeps = static_cast<long>(r.find("beeps")->asInt());
          run.warmUnions = static_cast<long>(r.find("warm_unions")->asInt());
          run.coldUnions = static_cast<long>(r.find("cold_unions")->asInt());
          run.warmIncrRounds =
              static_cast<long>(r.find("warm_incr_rounds")->asInt());
          run.warmRebuildRounds =
              static_cast<long>(r.find("warm_rebuild_rounds")->asInt());
          run.coldIncrRounds =
              static_cast<long>(r.find("cold_incr_rounds")->asInt());
          run.coldRebuildRounds =
              static_cast<long>(r.find("cold_rebuild_rounds")->asInt());
          run.warmMatchesCold = r.find("warm_matches_cold")->asBool();
          er.runs.push_back(std::move(run));
        }
        tr.epochs.push_back(std::move(er));
      }
      report.timelines.push_back(std::move(tr));
    }
  }

  if (const Json* serving = doc.find("serving")) {
    for (const Json& s : serving->items()) {
      ServingReport sv;
      const Json& sc = *s.find("scenario");
      sv.scenario.name = sc.find("name")->asString();
      shapeFromString(sc.find("shape")->asString(), &sv.scenario.shape);
      sv.scenario.a = static_cast<int>(sc.find("a")->asInt());
      sv.scenario.b = static_cast<int>(sc.find("b")->asInt());
      sv.scenario.k = static_cast<int>(sc.find("k")->asInt());
      sv.scenario.l = static_cast<int>(sc.find("l")->asInt());
      sv.scenario.seed = static_cast<std::uint64_t>(sc.find("seed")->asInt());
      sv.n = static_cast<int>(s.find("n")->asInt());
      sv.finalN = static_cast<int>(s.find("final_n")->asInt());
      sv.queries = static_cast<int>(s.find("queries")->asInt());
      sv.seed = static_cast<std::uint64_t>(s.find("serve_seed")->asInt());
      sv.mutateEvery = static_cast<int>(s.find("mutate_every")->asInt());
      for (const Json& m : s.find("mix")->items())
        sv.mix.push_back(m.asString());
      sv.sdApplied = static_cast<int>(s.find("sd_applied")->asInt());
      sv.structureMutations =
          static_cast<int>(s.find("structure_mutations")->asInt());
      sv.attached = static_cast<int>(s.find("attached")->asInt());
      sv.detached = static_cast<int>(s.find("detached")->asInt());
      for (const Json& r : s.find("runs")->items()) {
        ServeRun run;
        run.algo = r.find("algo")->asString();
        run.rounds = static_cast<long>(r.find("rounds")->asInt());
        run.wallMs = r.find("wall_ms")->asNumber();
        run.checkerOk = r.find("checker_ok")->asBool();
        run.error = r.find("error")->asString();
        run.delivers = static_cast<long>(r.find("delivers")->asInt());
        run.beeps = static_cast<long>(r.find("beeps")->asInt());
        run.warmUnions = static_cast<long>(r.find("warm_unions")->asInt());
        run.coldUnions = static_cast<long>(r.find("cold_unions")->asInt());
        run.warmIncrRounds =
            static_cast<long>(r.find("warm_incr_rounds")->asInt());
        run.warmRebuildRounds =
            static_cast<long>(r.find("warm_rebuild_rounds")->asInt());
        run.coldIncrRounds =
            static_cast<long>(r.find("cold_incr_rounds")->asInt());
        run.coldRebuildRounds =
            static_cast<long>(r.find("cold_rebuild_rounds")->asInt());
        run.queriesOk = static_cast<long>(r.find("queries_ok")->asInt());
        run.warmMatchesCold = r.find("warm_matches_cold")->asBool();
        run.queriesPerSec = r.find("queries_per_sec")->asNumber();
        run.latencyMsP50 = r.find("latency_ms_p50")->asNumber();
        run.latencyMsP90 = r.find("latency_ms_p90")->asNumber();
        run.latencyMsP99 = r.find("latency_ms_p99")->asNumber();
        if (const Json* hits = r.find("cache_hits")) {
          // Presence of the group (validated as all-or-nothing) marks the
          // run as cache-enabled.
          run.cacheEnabled = true;
          run.cacheHits = static_cast<long>(hits->asInt());
          run.cacheMisses = static_cast<long>(r.find("cache_misses")->asInt());
          run.cacheInvalidations =
              static_cast<long>(r.find("cache_invalidations")->asInt());
          run.cacheSavedUnions =
              static_cast<long>(r.find("cache_saved_unions")->asInt());
        }
        sv.runs.push_back(std::move(run));
      }
      report.serving.push_back(std::move(sv));
    }
  }

  const Json& totals = *doc.find("totals");
  report.totalWallMs = totals.find("wall_ms")->asNumber();
  report.peakRssKb = static_cast<long>(totals.find("peak_rss_kb")->asInt());
  return report;
}

namespace {

bool mismatch(std::string* why, const std::string& path) {
  if (why) *why = path;
  return false;
}

template <typename T>
bool sameField(const T& a, const T& b, const std::string& path,
               std::string* why) {
  if (a == b) return true;
  return mismatch(why, path);
}

}  // namespace

bool equalDeterministic(const BenchReport& a, const BenchReport& b,
                        std::string* why, bool modelOnly) {
  if (!sameField(a.suite, b.suite, "$.suite", why)) return false;
  if (!sameField(a.algos, b.algos, "$.config.algos", why)) return false;
  if (!sameField(a.lanes, b.lanes, "$.config.lanes", why)) return false;
  if (!sameField(a.check, b.check, "$.config.check", why)) return false;
  if (!modelOnly &&
      !sameField(a.engine, b.engine, "$.config.engine", why))
    return false;
  if (a.scenarios.size() != b.scenarios.size())
    return mismatch(why, "$.scenarios (length)");
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    const ScenarioReport& sa = a.scenarios[i];
    const ScenarioReport& sb = b.scenarios[i];
    const std::string path = "$.scenarios[" + std::to_string(i) + "]";
    if (!sameField(sa.scenario, sb.scenario, path + " (scenario)", why))
      return false;
    if (!sameField(sa.n, sb.n, path + ".n", why)) return false;
    if (!sameField(sa.kEff, sb.kEff, path + ".k_eff", why)) return false;
    if (!sameField(sa.lEff, sb.lEff, path + ".l_eff", why)) return false;
    if (sa.runs.size() != sb.runs.size())
      return mismatch(why, path + ".runs (length)");
    for (std::size_t j = 0; j < sa.runs.size(); ++j) {
      const AlgoRun& ra = sa.runs[j];
      const AlgoRun& rb = sb.runs[j];
      const std::string rp = path + ".runs[" + std::to_string(j) + "]";
      if (!sameField(ra.algo, rb.algo, rp + ".algo", why)) return false;
      if (!sameField(ra.rounds, rb.rounds, rp + ".rounds", why)) return false;
      if (!sameField(ra.checkerOk, rb.checkerOk, rp + ".checker_ok", why))
        return false;
      if (!sameField(ra.error, rb.error, rp + ".error", why)) return false;
      if (!sameField(ra.delivers, rb.delivers, rp + ".delivers", why))
        return false;
      if (!sameField(ra.beeps, rb.beeps, rp + ".beeps", why)) return false;
      if (!modelOnly) {
        if (!sameField(ra.unions, rb.unions, rp + ".unions", why))
          return false;
        if (!sameField(ra.incrRounds, rb.incrRounds, rp + ".incr_rounds",
                       why))
          return false;
        if (!sameField(ra.rebuildRounds, rb.rebuildRounds,
                       rp + ".rebuild_rounds", why))
          return false;
      }
      // aspf-lint: allow(float-field) exact dyadic ratio of two integer
      // counters; IEEE division is correctly rounded, so the comparison
      // is bit-deterministic on every platform
      if (!sameField(ra.dirtyFrac, rb.dirtyFrac, rp + ".dirty_frac", why))
        return false;
      if (!sameField(ra.hasPhases, rb.hasPhases, rp + ".phases (presence)",
                     why))
        return false;
      if (ra.hasPhases && !sameField(ra.phases, rb.phases, rp + ".phases", why))
        return false;
    }
  }
  if (a.timelines.size() != b.timelines.size())
    return mismatch(why, "$.timelines (length)");
  for (std::size_t i = 0; i < a.timelines.size(); ++i) {
    const TimelineReport& ta = a.timelines[i];
    const TimelineReport& tb = b.timelines[i];
    const std::string path = "$.timelines[" + std::to_string(i) + "]";
    if (!sameField(ta.name, tb.name, path + ".name", why)) return false;
    if (!sameField(ta.base, tb.base, path + ".base", why)) return false;
    if (!sameField(ta.seed, tb.seed, path + ".timeline_seed", why))
      return false;
    if (ta.epochs.size() != tb.epochs.size())
      return mismatch(why, path + ".epochs (length)");
    for (std::size_t e = 0; e < ta.epochs.size(); ++e) {
      const EpochReport& ea = ta.epochs[e];
      const EpochReport& eb = tb.epochs[e];
      const std::string ep = path + ".epochs[" + std::to_string(e) + "]";
      if (!sameField(ea.epoch, eb.epoch, ep + ".epoch", why)) return false;
      if (!sameField(ea.mutation, eb.mutation, ep + ".mutation", why))
        return false;
      if (!sameField(ea.applied, eb.applied, ep + ".applied", why))
        return false;
      if (!sameField(ea.n, eb.n, ep + ".n", why)) return false;
      if (!sameField(ea.kEff, eb.kEff, ep + ".k_eff", why)) return false;
      if (!sameField(ea.lEff, eb.lEff, ep + ".l_eff", why)) return false;
      if (ea.runs.size() != eb.runs.size())
        return mismatch(why, ep + ".runs (length)");
      for (std::size_t j = 0; j < ea.runs.size(); ++j) {
        const EpochRun& ra = ea.runs[j];
        const EpochRun& rb = eb.runs[j];
        const std::string rp = ep + ".runs[" + std::to_string(j) + "]";
        if (!sameField(ra.algo, rb.algo, rp + ".algo", why)) return false;
        if (!sameField(ra.rounds, rb.rounds, rp + ".rounds", why))
          return false;
        if (!sameField(ra.checkerOk, rb.checkerOk, rp + ".checker_ok", why))
          return false;
        if (!sameField(ra.error, rb.error, rp + ".error", why)) return false;
        if (!sameField(ra.delivers, rb.delivers, rp + ".delivers", why))
          return false;
        if (!sameField(ra.beeps, rb.beeps, rp + ".beeps", why)) return false;
        if (!sameField(ra.warmMatchesCold, rb.warmMatchesCold,
                       rp + ".warm_matches_cold", why))
          return false;
        if (!modelOnly) {
          // Substrate-cost deltas: deterministic at any thread setting,
          // but engine-specific (the rebuild engine has nothing to save).
          if (!sameField(ra.warmUnions, rb.warmUnions, rp + ".warm_unions",
                         why))
            return false;
          if (!sameField(ra.coldUnions, rb.coldUnions, rp + ".cold_unions",
                         why))
            return false;
          if (!sameField(ra.warmIncrRounds, rb.warmIncrRounds,
                         rp + ".warm_incr_rounds", why))
            return false;
          if (!sameField(ra.warmRebuildRounds, rb.warmRebuildRounds,
                         rp + ".warm_rebuild_rounds", why))
            return false;
          if (!sameField(ra.coldIncrRounds, rb.coldIncrRounds,
                         rp + ".cold_incr_rounds", why))
            return false;
          if (!sameField(ra.coldRebuildRounds, rb.coldRebuildRounds,
                         rp + ".cold_rebuild_rounds", why))
            return false;
        }
      }
    }
  }
  if (a.serving.size() != b.serving.size())
    return mismatch(why, "$.serving (length)");
  for (std::size_t i = 0; i < a.serving.size(); ++i) {
    const ServingReport& sa = a.serving[i];
    const ServingReport& sb = b.serving[i];
    const std::string path = "$.serving[" + std::to_string(i) + "]";
    if (!sameField(sa.scenario, sb.scenario, path + ".scenario", why))
      return false;
    if (!sameField(sa.n, sb.n, path + ".n", why)) return false;
    if (!sameField(sa.finalN, sb.finalN, path + ".final_n", why))
      return false;
    if (!sameField(sa.queries, sb.queries, path + ".queries", why))
      return false;
    if (!sameField(sa.seed, sb.seed, path + ".serve_seed", why)) return false;
    if (!sameField(sa.mutateEvery, sb.mutateEvery, path + ".mutate_every",
                   why))
      return false;
    if (!sameField(sa.mix, sb.mix, path + ".mix", why)) return false;
    if (!sameField(sa.sdApplied, sb.sdApplied, path + ".sd_applied", why))
      return false;
    if (!sameField(sa.structureMutations, sb.structureMutations,
                   path + ".structure_mutations", why))
      return false;
    if (!sameField(sa.attached, sb.attached, path + ".attached", why))
      return false;
    if (!sameField(sa.detached, sb.detached, path + ".detached", why))
      return false;
    if (sa.runs.size() != sb.runs.size())
      return mismatch(why, path + ".runs (length)");
    for (std::size_t j = 0; j < sa.runs.size(); ++j) {
      const ServeRun& ra = sa.runs[j];
      const ServeRun& rb = sb.runs[j];
      const std::string rp = path + ".runs[" + std::to_string(j) + "]";
      if (!sameField(ra.algo, rb.algo, rp + ".algo", why)) return false;
      if (!sameField(ra.rounds, rb.rounds, rp + ".rounds", why)) return false;
      if (!sameField(ra.checkerOk, rb.checkerOk, rp + ".checker_ok", why))
        return false;
      if (!sameField(ra.error, rb.error, rp + ".error", why)) return false;
      if (!sameField(ra.delivers, rb.delivers, rp + ".delivers", why))
        return false;
      if (!sameField(ra.beeps, rb.beeps, rp + ".beeps", why)) return false;
      if (!sameField(ra.queriesOk, rb.queriesOk, rp + ".queries_ok", why))
        return false;
      if (!sameField(ra.warmMatchesCold, rb.warmMatchesCold,
                     rp + ".warm_matches_cold", why))
        return false;
      // Timing-derived fields (wall_ms, queries_per_sec, latency
      // percentiles) are never compared: they vary run to run. The
      // cache_* stats (and config.serve_cache) are likewise never
      // compared: deterministic per configuration, but a --serve-cache
      // on/off pair must still diff clean against one baseline.
      if (!modelOnly) {
        if (!sameField(ra.warmUnions, rb.warmUnions, rp + ".warm_unions",
                       why))
          return false;
        if (!sameField(ra.coldUnions, rb.coldUnions, rp + ".cold_unions",
                       why))
          return false;
        if (!sameField(ra.warmIncrRounds, rb.warmIncrRounds,
                       rp + ".warm_incr_rounds", why))
          return false;
        if (!sameField(ra.warmRebuildRounds, rb.warmRebuildRounds,
                       rp + ".warm_rebuild_rounds", why))
          return false;
        if (!sameField(ra.coldIncrRounds, rb.coldIncrRounds,
                       rp + ".cold_incr_rounds", why))
          return false;
        if (!sameField(ra.coldRebuildRounds, rb.coldRebuildRounds,
                       rp + ".cold_rebuild_rounds", why))
          return false;
      }
    }
  }
  return true;
}

}  // namespace aspf::scenario

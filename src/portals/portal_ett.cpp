#include "portals/portal_ett.hpp"

#include <stdexcept>

namespace aspf {

std::int64_t PortalSubsetEtt::crossDiff(
    const Region& region, const PortalDecomposition::CrossEdge& e) const {
  const Dir d =
      dirBetween(region.coordOf(e.selfEnd), region.coordOf(e.peerEnd));
  return ett.diff[e.selfEnd][static_cast<int>(d)];
}

TreeAdj restrictedImplicitTree(const Region& region,
                               const PortalDecomposition& decomp,
                               std::span<const char> portalInSubset) {
  const bool all = portalInSubset.empty();
  if (all) return decomp.implicitTree;
  TreeAdj tree = TreeAdj::empty(region.size());
  for (int p = 0; p < decomp.portalCount(); ++p) {
    if (!portalInSubset[p]) continue;
    // Axis-parallel run edges.
    const auto& ms = decomp.members[p];
    for (std::size_t i = 0; i + 1 < ms.size(); ++i)
      tree.add(region, ms[i], ms[i + 1]);
    // Connecting edges to subset peers (added from the smaller id side to
    // avoid duplicates; TreeAdj::add is symmetric anyway).
    for (const auto& e : decomp.adj[p]) {
      if (e.peerPortal > p && portalInSubset[e.peerPortal])
        tree.add(region, e.selfEnd, e.peerEnd);
    }
  }
  return tree;
}

PortalSubsetEtt runPortalEtt(Comm& comm, const PortalDecomposition& decomp,
                             std::span<const char> portalInSubset,
                             int rootPortal, std::span<const char> portalInQ,
                             bool broadcastW) {
  const Region& region = comm.region();
  PortalSubsetEtt out;
  const TreeAdj tree =
      restrictedImplicitTree(region, decomp, portalInSubset);
  out.tour =
      buildEulerTour(region, tree, decomp.representative[rootPortal]);

  // Q-hat: representatives of Q portals inside the subset.
  std::vector<char> inQHat(region.size(), 0);
  for (int p = 0; p < decomp.portalCount(); ++p) {
    if (!portalInQ[p]) continue;
    if (!portalInSubset.empty() && !portalInSubset[p]) continue;
    inQHat[decomp.representative[p]] = 1;
  }

  EttOptions options;
  options.broadcastW = broadcastW;
  out.ett = runEtt(comm, out.tour, canonicalMarks(out.tour, inQHat), options);
  out.qCount = out.ett.totalWeight;
  if (out.tour.edgeCount() == 0) {
    // Single-amoebot tree: no tour edge can carry a mark; |Q| is simply
    // whether the lone portal (= the root) is in Q.
    out.qCount = inQHat[decomp.representative[rootPortal]] ? 1 : 0;
    out.ett.totalWeight = out.qCount;
  }
  out.rounds = out.ett.rounds;
  return out;
}

}  // namespace aspf

#pragma once
// Portal-level primitives (Section 3.5, Lemmas 33-37): root & prune,
// augmentation, election, Q-centroid and Q'-centroid decomposition on the
// portal graph, all executed through the implicit portal tree. Per-portal
// results are disseminated to the member amoebots on portal circuits
// (Figure 4a) and per-directed-edge circuits (Figure 4b); these
// constant-round broadcast steps are charged explicitly.
#include <span>

#include "portals/portal_ett.hpp"

namespace aspf {

/// Plain value type (no Comm/Region pointers, no live pin state): for a
/// fixed structure epoch it is a pure function of (decomp, subset, root,
/// Q), so the cross-query solve cache (spf/solve_cache.hpp) can store and
/// replay it -- `rounds` is control-flow determined and replays exactly.
struct PortalRootPruneResult {
  std::vector<char> portalInVQ;  // per portal
  /// parentPortal[p]: -1 for the root portal, -2 for pruned portals.
  std::vector<int> parentPortal;
  std::vector<int> degQ;   // degree within the pruned portal tree
  std::vector<char> inAug; // A_Q membership (degQ >= 3), if requested
  std::uint64_t qCount = 0;
  long rounds = 0;
};

/// Lemmas 33/34. portalInSubset empty = all portals.
PortalRootPruneResult portalRootAndPrune(
    Comm& comm, const PortalDecomposition& decomp,
    std::span<const char> portalInSubset, int rootPortal,
    std::span<const char> portalInQ, bool computeAugmentation = false);

struct PortalElectionResult {
  int electedPortal = -1;
  long rounds = 0;
};

/// Lemma 35: elects one portal of Q (non-empty within the subset).
PortalElectionResult portalElect(Comm& comm,
                                 const PortalDecomposition& decomp,
                                 std::span<const char> portalInSubset,
                                 int rootPortal,
                                 std::span<const char> portalInQ);

struct PortalCentroidResult {
  std::vector<char> isCentroid;  // per portal
  std::uint64_t qCount = 0;
  long rounds = 0;
};

/// Lemma 36.
PortalCentroidResult portalCentroids(Comm& comm,
                                     const PortalDecomposition& decomp,
                                     std::span<const char> portalInSubset,
                                     int rootPortal,
                                     std::span<const char> portalInQ);

struct PortalDecompositionResult {
  /// depthOfPortal[p] = depth in the portal decomposition tree DT(P);
  /// -1 for portals not in Q'.
  std::vector<int> depthOfPortal;
  std::vector<int> parentPortalInDT;  // -1 DT root, -2 not in Q'
  int height = 0;
  long rounds = 0;
};

/// Lemma 37: Q'-centroid decomposition of the portal graph.
PortalDecompositionResult portalDecompose(const Region& region,
                                          const PortalDecomposition& decomp,
                                          int rootPortal,
                                          std::span<const char> portalInQPrime,
                                          int lanes = 4);

}  // namespace aspf
